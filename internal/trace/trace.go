// Package trace generates the memory access streams of the paper's
// workloads. The real evaluation runs GraphBIG kernels on a
// Facebook-like graph plus SPEC2017/PARSEC irregular benchmarks
// (canneal, streamcluster, omnetpp, mcf) and a regular SPEC set; those
// binaries and inputs are not reproducible here, so each workload is
// replaced by a generator that reproduces the properties the paper's
// results depend on:
//
//   - footprint relative to the 8 MB LLC (drives LLC miss rate),
//   - spatial locality (drives row-buffer hits, prefetcher coverage,
//     and counter-cache hit rate — the regular/irregular divide),
//   - read/write mix (drives writeback traffic, e.g. omnetpp's heavy
//     writes vs streamcluster's ≤1% writeback ratio),
//   - load dependence (drives memory-level parallelism: pointer
//     chasing exposes the full miss latency).
//
// Graph kernels walk a real synthetic power-law graph in CSR form so
// repeated traversals see stable, cacheable neighbor sets.
package trace

import (
	"math/rand"
)

// Class partitions workloads the way the evaluation does.
type Class int

const (
	// Irregular workloads are the paper's primary set (Figs. 5, 16-22).
	Irregular Class = iota
	// Regular workloads are the Fig. 23 sensitivity set.
	Regular
	// Micro is the §III pointer-chasing microbenchmark.
	Micro
)

// Op is one unit of work: optional compute time followed by one memory
// access.
type Op struct {
	Think     int64  // compute time in ps before the access
	Addr      uint64 // byte address
	Write     bool
	Dependent bool   // address depended on the previous load (no MLP)
	PC        uint64 // synthetic program counter (prefetcher stream id)
	Instr     uint64 // instructions this op retires (compute + 1 memory)
}

// Stream produces an infinite, deterministic op sequence for one core.
// now is the core's current simulated time in picoseconds; most
// generators ignore it, but phase-modulated workloads use it so that
// phase boundaries fall at the same wall-clock instants under every
// scheme (otherwise normalized performance would compare different
// phase mixes).
type Stream interface {
	Next(now int64) Op
}

// Workload names a benchmark and builds per-core streams.
type Workload struct {
	Name  string
	Class Class
	// NewStreams returns one stream per core. Streams from one call
	// may share state (e.g. the graph workloads share one graph, as
	// GraphBIG runs multi-threaded); separate calls are independent.
	NewStreams func(seed int64, cores int) []Stream
}

const (
	blockSize = 64
	// instrPS is the compute time per instruction at 3.2 GHz, CPI 1.
	instrPS = 312
	// privateBase spaces multi-programmed instances 16 GB apart.
	privateBase = uint64(1) << 34
	sharedBase  = uint64(1) << 33
)

func instrsFor(think int64) uint64 { return 1 + uint64(think/instrPS) }

// ---------------------------------------------------------------------------
// Pointer chasing (mcf stand-in and the §III microbenchmark)
// ---------------------------------------------------------------------------

// lcgChase walks blocks of a region in a full-period LCG order,
// making every load's address depend on the previous load.
type lcgChase struct {
	base   uint64
	blocks uint64
	cur    uint64
	mul    uint64
	inc    uint64
	think  int64
	write  func(*rand.Rand) bool
	rng    *rand.Rand
	pc     uint64
}

func newLCGChase(base, footprint uint64, think int64, seed int64, writeFrac float64, pc uint64) *lcgChase {
	blocks := footprint / blockSize
	rng := rand.New(rand.NewSource(seed))
	c := &lcgChase{
		base:   base,
		blocks: blocks,
		cur:    rng.Uint64(),
		// Knuth's MMIX constants give a full-period LCG over the whole
		// uint64 state; the emitted block index is state mod blocks, so
		// the walk never falls into a short cycle regardless of the
		// footprint's block count.
		mul:   6364136223846793005,
		inc:   1442695040888963407,
		think: think,
		rng:   rng,
		pc:    pc,
	}
	if writeFrac > 0 {
		c.write = func(r *rand.Rand) bool { return r.Float64() < writeFrac }
	}
	return c
}

func (c *lcgChase) Next(_ int64) Op {
	c.cur = c.cur*c.mul + c.inc
	w := false
	if c.write != nil {
		w = c.write(c.rng)
	}
	return Op{
		Think:     c.think,
		Addr:      c.base + c.cur%c.blocks*blockSize,
		Write:     w,
		Dependent: true,
		PC:        c.pc,
		Instr:     instrsFor(c.think),
	}
}

// ---------------------------------------------------------------------------
// Random mix (canneal / omnetpp / streamcluster stand-ins)
// ---------------------------------------------------------------------------

// randomMix issues uniformly random block accesses with a configurable
// write fraction, dependence fraction, and think time.
type randomMix struct {
	base      uint64
	blocks    uint64
	writeFrac float64
	depFrac   float64
	think     int64
	rng       *rand.Rand
	pc        uint64
}

func (m *randomMix) Next(_ int64) Op {
	think := m.think/2 + int64(m.rng.Intn(int(m.think)+1))
	return Op{
		Think:     think,
		Addr:      m.base + uint64(m.rng.Int63n(int64(m.blocks)))*blockSize,
		Write:     m.rng.Float64() < m.writeFrac,
		Dependent: m.rng.Float64() < m.depFrac,
		PC:        m.pc + uint64(m.rng.Intn(8)), // several interleaved streams
		Instr:     instrsFor(think),
	}
}

// ---------------------------------------------------------------------------
// Graph workloads (GraphBIG stand-ins on a synthetic power-law graph)
// ---------------------------------------------------------------------------

// Graph is a CSR graph with a power-law degree distribution, standing
// in for the Facebook-like dataset of the paper.
type Graph struct {
	Offsets []uint32 // V+1
	Edges   []uint32 // E neighbor ids
	V       int
}

// GenGraph builds a deterministic power-law graph: a few hub vertices
// with huge degree and a long tail, like social networks.
func GenGraph(v, avgDeg int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	deg := make([]int, v)
	total := 0
	for i := range deg {
		// Pareto-ish: most vertices small, a few huge, mean ~avgDeg.
		d := 1 + int(float64(avgDeg)*0.6/(rng.Float64()*0.97+0.03))
		if d > v/10 {
			d = v / 10
		}
		deg[i] = d
		total += d
	}
	g := &Graph{
		Offsets: make([]uint32, v+1),
		Edges:   make([]uint32, total),
		V:       v,
	}
	pos := 0
	for i := 0; i < v; i++ {
		g.Offsets[i] = uint32(pos)
		for j := 0; j < deg[i]; j++ {
			g.Edges[pos] = uint32(rng.Intn(v))
			pos++
		}
	}
	g.Offsets[v] = uint32(pos)
	return g
}

// Degree returns vertex v's out-degree.
func (g *Graph) Degree(v int) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// graphKernelParams differentiates the GraphBIG kernels.
type graphKernelParams struct {
	neighborData   bool    // read 64B of per-neighbor vertex data (random access)
	neighborPairs  bool    // also read a second random neighbor (triangle counting)
	writePerVertex float64 // probability of writing own vertex data after a vertex
	writePerEdge   float64 // probability of writing neighbor data per edge (e.g. CC label push)
	think          int64   // compute per edge
}

// graphWalk iterates the core's partition of vertices, visiting edges.
// Address map: vertex data (64 B records), offsets (4 B), edges (4 B)
// live in disjoint regions above sharedBase.
type graphWalk struct {
	g       *Graph
	p       graphKernelParams
	rng     *rand.Rand
	core    int
	cores   int
	v       int // current vertex (within partition)
	e       int // next edge index of v
	end     int
	pending []Op
}

const (
	vtxDataOff = uint64(0)
	offsetsOff = uint64(1) << 31
	edgesOff   = uint64(1)<<31 + uint64(1)<<29
)

func (w *graphWalk) vertexAddr(v int) uint64 {
	return sharedBase + vtxDataOff + uint64(v)*blockSize
}
func (w *graphWalk) offsetAddr(v int) uint64 {
	return sharedBase + offsetsOff + uint64(v)*4
}
func (w *graphWalk) edgeAddr(e int) uint64 {
	return sharedBase + edgesOff + uint64(e)*4
}

func (w *graphWalk) Next(_ int64) Op {
	for len(w.pending) == 0 {
		w.fill()
	}
	op := w.pending[0]
	w.pending = w.pending[1:]
	return op
}

// fill expands the next edge (or vertex boundary) into ops.
func (w *graphWalk) fill() {
	if w.e >= w.end {
		// Finish the old vertex: optional write of own data.
		if w.end > 0 && w.rng.Float64() < w.p.writePerVertex {
			w.pending = append(w.pending, Op{
				Think: w.p.think,
				Addr:  w.vertexAddr(w.v),
				Write: true,
				PC:    400,
				Instr: instrsFor(w.p.think),
			})
		}
		// Advance to the next vertex in this core's stripe.
		w.v += w.cores
		if w.v >= w.g.V {
			w.v = w.core
		}
		w.e = int(w.g.Offsets[w.v])
		w.end = int(w.g.Offsets[w.v+1])
		// Read the offsets entry (sequential-ish across iterations).
		w.pending = append(w.pending, Op{
			Think: w.p.think,
			Addr:  w.offsetAddr(w.v),
			PC:    401,
			Instr: instrsFor(w.p.think),
		})
		return
	}
	// Read the edge entry. GraphBIG's System G framework keeps
	// adjacency in linked STL-style structures, so the edge read
	// depends on the previous load (pointer-chasing traversal).
	w.pending = append(w.pending, Op{
		Think:     w.p.think,
		Addr:      w.edgeAddr(w.e),
		Dependent: true,
		PC:        402,
		Instr:     instrsFor(w.p.think),
	})
	u := int(w.g.Edges[w.e])
	w.e++
	if w.p.neighborData {
		// ...then the neighbor's data: random, dependent on the edge load.
		w.pending = append(w.pending, Op{
			Think:     w.p.think,
			Addr:      w.vertexAddr(u),
			Dependent: true,
			Write:     w.rng.Float64() < w.p.writePerEdge,
			PC:        403,
			Instr:     instrsFor(w.p.think),
		})
	}
	if w.p.neighborPairs && w.e < w.end {
		// Triangle counting intersects adjacency lists: touch a second
		// neighbor of the same vertex for the pairwise check.
		u2 := int(w.g.Edges[w.e])
		w.pending = append(w.pending, Op{
			Think:     w.p.think,
			Addr:      w.vertexAddr(u2),
			Dependent: true,
			PC:        404,
			Instr:     instrsFor(w.p.think),
		})
	}
}

// sharedGraph caches one graph per (seed) so the four threads of a
// workload share it, like GraphBIG's multi-threaded runs.
func newGraphStreams(seed int64, cores int, p graphKernelParams) []Stream {
	g := GenGraph(200_000, 30, seed)
	out := make([]Stream, cores)
	for c := 0; c < cores; c++ {
		out[c] = &graphWalk{
			g:     g,
			p:     p,
			rng:   rand.New(rand.NewSource(seed ^ int64(c)<<8)),
			core:  c,
			cores: cores,
			v:     c - cores, // first fill() advances to vertex c
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Regular (streaming / stencil) workloads
// ---------------------------------------------------------------------------

// streamKernel reads one or more source arrays sequentially and
// optionally writes a destination array — lbm/bwaves-like behaviour
// that prefetchers largely cover. A small randFrac of accesses are
// dependent random reads (index arrays, boundary lookups): even
// "regular" SPEC workloads keep a residue of unprefetchable accesses,
// which is where counterless encryption loses its few percent
// (Fig. 23's 96.6%).
type streamKernel struct {
	base     uint64
	arrays   int
	stride   uint64 // bytes advanced per op within an array
	size     uint64 // bytes per array
	pos      uint64
	arr      int
	wrEvery  int // write the last array every n-th element (0 = never)
	n        int
	think    int64
	randFrac float64
	rng      *rand.Rand
}

func (s *streamKernel) Next(_ int64) Op {
	if s.rng != nil && s.rng.Float64() < s.randFrac {
		// Dependent random read into a side region (e.g. an index
		// table larger than the LLC).
		return Op{
			Think:     s.think,
			Addr:      s.base + s.size*uint64(s.arrays) + 1<<20 + uint64(s.rng.Int63n(int64(s.size)))/64*64,
			Dependent: true,
			PC:        599,
			Instr:     instrsFor(s.think),
		}
	}
	arrBase := s.base + uint64(s.arr)*(s.size+4096)
	addr := arrBase + s.pos
	write := false
	if s.wrEvery > 0 && s.arr == s.arrays-1 {
		s.n++
		write = s.n%s.wrEvery == 0
	}
	op := Op{
		Think: s.think,
		Addr:  addr,
		Write: write,
		PC:    500 + uint64(s.arr),
		Instr: instrsFor(s.think),
	}
	s.arr++
	if s.arr >= s.arrays {
		s.arr = 0
		s.pos += s.stride
		if s.pos >= s.size {
			s.pos = 0
		}
	}
	return op
}

// ---------------------------------------------------------------------------
// Phase modulation
// ---------------------------------------------------------------------------

// phased alternates an inner stream between an active phase and a
// lighter (compute-heavier) phase, in the way real applications move
// between memory-bound and compute-bound regions. The light phases are
// what give the epoch monitor (paper §IV-B) low-utilization epochs to
// run counter-mode writebacks in, even when the active phases saturate
// a 6.4 GB/s channel. Phases are a function of simulated time, so
// every scheme sees the same phase boundaries and windowed
// measurements stay comparable.
type phased struct {
	inner    Stream
	periodPS int64   // full phase cycle in ps
	duty     float64 // fraction of the cycle that is active
	lightMul int64   // think multiplier during the light phase
}

func (p *phased) Next(now int64) Op {
	op := p.inner.Next(now)
	pos := now % p.periodPS
	if float64(pos) >= p.duty*float64(p.periodPS) {
		op.Think *= p.lightMul
		op.Instr = instrsFor(op.Think)
	}
	return op
}

// withPhases wraps every stream of a factory in the standard phase
// pattern: 500 µs cycles (five 100 µs epochs), 70% active.
func withPhases(f func(int64, int) []Stream) func(int64, int) []Stream {
	return func(seed int64, cores int) []Stream {
		streams := f(seed, cores)
		for i, s := range streams {
			streams[i] = &phased{inner: s, periodPS: 500_000_000, duty: 0.7, lightMul: 8}
		}
		return streams
	}
}

// ---------------------------------------------------------------------------
// Workload registry
// ---------------------------------------------------------------------------

func perCore(f func(core int, base uint64, seed int64) Stream) func(int64, int) []Stream {
	return func(seed int64, cores int) []Stream {
		out := make([]Stream, cores)
		for c := 0; c < cores; c++ {
			out[c] = f(c, uint64(c+1)*privateBase, seed^int64(c)*0x9e37)
		}
		return out
	}
}

// MicroPointerChase is the §III microbenchmark: a 128 MB pointer chase
// with one outstanding access and no compute.
func MicroPointerChase() Workload {
	return Workload{
		Name:  "pchase128M",
		Class: Micro,
		NewStreams: perCore(func(core int, base uint64, seed int64) Stream {
			return newLCGChase(base, 128<<20, 0, seed, 0, 100)
		}),
	}
}

// IrregularSet returns the paper's primary workload set: four GraphBIG
// kernels plus canneal, streamcluster, omnetpp, and mcf stand-ins.
func IrregularSet() []Workload {
	return []Workload{
		{
			Name: "bfs", Class: Irregular,
			NewStreams: withPhases(func(seed int64, cores int) []Stream {
				return newGraphStreams(seed, cores, graphKernelParams{
					neighborData:   true,
					writePerVertex: 0.6, // frontier/visited updates
					think:          2600,
				})
			}),
		},
		{
			Name: "gcolor", Class: Irregular,
			NewStreams: withPhases(func(seed int64, cores int) []Stream {
				return newGraphStreams(seed, cores, graphKernelParams{
					neighborData:   true,
					writePerVertex: 1.0, // write own color once per vertex
					think:          3000,
				})
			}),
		},
		{
			Name: "ccomp", Class: Irregular,
			NewStreams: withPhases(func(seed int64, cores int) []Stream {
				return newGraphStreams(seed, cores, graphKernelParams{
					neighborData:   true,
					writePerVertex: 0.3,
					writePerEdge:   0.10, // label propagation writes
					think:          2400,
				})
			}),
		},
		{
			Name: "dcentr", Class: Irregular,
			NewStreams: withPhases(func(seed int64, cores int) []Stream {
				return newGraphStreams(seed, cores, graphKernelParams{
					neighborData:   true,
					writePerVertex: 1.0,
					think:          2200,
				})
			}),
		},
		{
			Name: "canneal", Class: Irregular,
			NewStreams: withPhases(perCore(func(core int, base uint64, seed int64) Stream {
				return &randomMix{
					base:      base,
					blocks:    (48 << 20) / blockSize,
					writeFrac: 0.30, // element swaps write both sides
					depFrac:   0.5,
					think:     1800,
					rng:       rand.New(rand.NewSource(seed)),
					pc:        200,
				}
			})),
		},
		{
			Name: "streamcluster", Class: Irregular,
			NewStreams: withPhases(perCore(func(core int, base uint64, seed int64) Stream {
				return &randomMix{
					base:      base,
					blocks:    (40 << 20) / blockSize,
					writeFrac: 0.002, // writebacks ≤1% of misses (§VI)
					depFrac:   0.2,
					think:     1350,
					rng:       rand.New(rand.NewSource(seed)),
					pc:        210,
				}
			})),
		},
		{
			Name: "omnetpp", Class: Irregular,
			NewStreams: withPhases(perCore(func(core int, base uint64, seed int64) Stream {
				return &randomMix{
					base:      base,
					blocks:    (56 << 20) / blockSize,
					writeFrac: 0.45, // event-queue churn: near write-per-read
					depFrac:   0.6,
					think:     1050,
					rng:       rand.New(rand.NewSource(seed)),
					pc:        220,
				}
			})),
		},
		{
			Name: "mcf", Class: Irregular,
			NewStreams: withPhases(perCore(func(core int, base uint64, seed int64) Stream {
				return newLCGChase(base, 96<<20, 900, seed, 0.05, 230)
			})),
		},
	}
}

// ExtendedGraphSet returns additional GraphBIG kernels beyond the
// paper's four, useful for sensitivity studies: PageRank (score reads
// and writes every vertex each sweep) and TriangleCount (pairwise
// neighbor intersection, the most read-intensive kernel).
func ExtendedGraphSet() []Workload {
	return []Workload{
		{
			Name: "pagerank", Class: Irregular,
			NewStreams: withPhases(func(seed int64, cores int) []Stream {
				return newGraphStreams(seed, cores, graphKernelParams{
					neighborData:   true,
					writePerVertex: 1.0, // new rank written every sweep
					writePerEdge:   0.0,
					think:          2000,
				})
			}),
		},
		{
			Name: "tcount", Class: Irregular,
			NewStreams: withPhases(func(seed int64, cores int) []Stream {
				return newGraphStreams(seed, cores, graphKernelParams{
					neighborData:  true,
					neighborPairs: true,
					think:         1800,
				})
			}),
		},
	}
}

// RegularSet returns the Fig. 23 regular-access workloads.
func RegularSet() []Workload {
	return []Workload{
		{
			Name: "lbm", Class: Regular,
			NewStreams: perCore(func(core int, base uint64, seed int64) Stream {
				return &streamKernel{base: base, arrays: 2, stride: 64, size: 64 << 20, wrEvery: 2, think: 9000, randFrac: 0.05, rng: rand.New(rand.NewSource(seed))}
			}),
		},
		{
			Name: "bwaves", Class: Regular,
			NewStreams: perCore(func(core int, base uint64, seed int64) Stream {
				return &streamKernel{base: base, arrays: 3, stride: 64, size: 48 << 20, wrEvery: 3, think: 11000, randFrac: 0.04, rng: rand.New(rand.NewSource(seed))}
			}),
		},
		{
			Name: "fotonik3d", Class: Regular,
			NewStreams: perCore(func(core int, base uint64, seed int64) Stream {
				return &streamKernel{base: base, arrays: 4, stride: 128, size: 32 << 20, wrEvery: 4, think: 10000, randFrac: 0.06, rng: rand.New(rand.NewSource(seed))}
			}),
		},
		{
			Name: "roms", Class: Regular,
			NewStreams: perCore(func(core int, base uint64, seed int64) Stream {
				return &streamKernel{base: base, arrays: 2, stride: 64, size: 96 << 20, wrEvery: 2, think: 12000, randFrac: 0.03, rng: rand.New(rand.NewSource(seed))}
			}),
		},
	}
}

// ByName finds a workload in the full registry.
func ByName(name string) (Workload, bool) {
	all := append(IrregularSet(), RegularSet()...)
	all = append(all, ExtendedGraphSet()...)
	all = append(all, MicroPointerChase())
	for _, w := range all {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

package trace

import (
	"testing"
)

func TestRegistry(t *testing.T) {
	irr := IrregularSet()
	if len(irr) != 8 {
		t.Errorf("irregular set has %d workloads, want 8", len(irr))
	}
	reg := RegularSet()
	if len(reg) != 4 {
		t.Errorf("regular set has %d workloads, want 4", len(reg))
	}
	names := map[string]bool{}
	for _, w := range append(irr, reg...) {
		if names[w.Name] {
			t.Errorf("duplicate workload name %q", w.Name)
		}
		names[w.Name] = true
	}
	for _, want := range []string{"bfs", "gcolor", "omnetpp", "mcf", "streamcluster", "canneal", "lbm"} {
		if !names[want] {
			t.Errorf("workload %q missing", want)
		}
	}
}

func TestByName(t *testing.T) {
	if w, ok := ByName("omnetpp"); !ok || w.Name != "omnetpp" {
		t.Error("ByName(omnetpp) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
	if w, ok := ByName("pchase128M"); !ok || w.Class != Micro {
		t.Error("microbenchmark not registered")
	}
}

func TestDeterminism(t *testing.T) {
	for _, w := range append(IrregularSet(), RegularSet()...) {
		s1 := w.NewStreams(42, 4)
		s2 := w.NewStreams(42, 4)
		for c := 0; c < 4; c++ {
			for i := 0; i < 200; i++ {
				a, b := s1[c].Next(0), s2[c].Next(0)
				if a != b {
					t.Fatalf("%s core %d op %d: %+v != %+v", w.Name, c, i, a, b)
				}
			}
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	w, _ := ByName("canneal")
	s1 := w.NewStreams(1, 1)[0]
	s2 := w.NewStreams(2, 1)[0]
	same := 0
	for i := 0; i < 100; i++ {
		if s1.Next(0).Addr == s2.Next(0).Addr {
			same++
		}
	}
	if same > 10 {
		t.Errorf("two seeds produced %d/100 identical addresses", same)
	}
}

// Multi-programmed workloads must keep cores in disjoint regions;
// graph workloads must share theirs.
func TestAddressSharing(t *testing.T) {
	footprint := func(w Workload) [4]map[uint64]bool {
		streams := w.NewStreams(7, 4)
		var seen [4]map[uint64]bool
		for c := range streams {
			seen[c] = map[uint64]bool{}
			for i := 0; i < 5000; i++ {
				seen[c][streams[c].Next(0).Addr/(1<<30)] = true // 1 GB granules
			}
		}
		return seen
	}
	mcf, _ := ByName("mcf")
	seen := footprint(mcf)
	for c := 1; c < 4; c++ {
		for g := range seen[c] {
			if seen[0][g] {
				t.Errorf("mcf cores 0 and %d share GB-granule %d", c, g)
			}
		}
	}
	bfs, _ := ByName("bfs")
	seen = footprint(bfs)
	shared := false
	for g := range seen[1] {
		if seen[0][g] {
			shared = true
		}
	}
	if !shared {
		t.Error("bfs cores do not share the graph region")
	}
}

// The workload classes must differ in measurable ways that the paper
// depends on: write ratios and dependence.
func TestWorkloadCharacter(t *testing.T) {
	mix := func(name string, n int) (writeFrac, depFrac float64) {
		w, ok := ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		s := w.NewStreams(3, 4)
		writes, deps := 0, 0
		for c := 0; c < 4; c++ {
			for i := 0; i < n; i++ {
				op := s[c].Next(0)
				if op.Write {
					writes++
				}
				if op.Dependent {
					deps++
				}
			}
		}
		total := float64(4 * n)
		return float64(writes) / total, float64(deps) / total
	}

	wOmnet, _ := mix("omnetpp", 5000)
	wStream, _ := mix("streamcluster", 5000)
	if wOmnet < 0.3 {
		t.Errorf("omnetpp write fraction = %.3f, want heavy writes", wOmnet)
	}
	if wStream > 0.01 {
		t.Errorf("streamcluster write fraction = %.3f, want ~0", wStream)
	}
	_, dMcf := mix("mcf", 5000)
	if dMcf < 0.99 {
		t.Errorf("mcf dependence = %.3f, want 1.0 (pointer chase)", dMcf)
	}
	wGc, _ := mix("gcolor", 20000)
	if wGc > 0.2 {
		t.Errorf("gcolor write fraction = %.3f, want small (one write per vertex)", wGc)
	}
}

// Regular workloads must be sequential (small positive strides), and
// the microbenchmark fully dependent with zero think time.
func TestRegularSequentiality(t *testing.T) {
	w, _ := ByName("lbm")
	s := w.NewStreams(1, 1)[0]
	// Track per-PC last addresses; strides within a streaming PC must
	// be constant. PC 599 is the documented random-residue stream
	// (about 5% of ops) and is excluded.
	last := map[uint64]uint64{}
	irregular, randomOps := 0, 0
	for i := 0; i < 10000; i++ {
		op := s.Next(0)
		if op.PC == 599 {
			randomOps++
			continue
		}
		if prev, ok := last[op.PC]; ok {
			stride := int64(op.Addr) - int64(prev)
			if stride < 0 || stride > 1024 {
				irregular++
			}
		}
		last[op.PC] = op.Addr
	}
	if irregular > 100 { // allow array wrap-arounds
		t.Errorf("lbm produced %d irregular strides in 10000 ops", irregular)
	}
	if randomOps < 200 || randomOps > 1200 {
		t.Errorf("random residue = %d ops, want ~5%%", randomOps)
	}
}

func TestMicroBenchmark(t *testing.T) {
	w := MicroPointerChase()
	s := w.NewStreams(1, 1)[0]
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		op := s.Next(0)
		if !op.Dependent {
			t.Fatal("microbenchmark op not dependent")
		}
		if op.Think != 0 {
			t.Fatal("microbenchmark has think time")
		}
		if op.Write {
			t.Fatal("microbenchmark writes")
		}
		seen[op.Addr] = true
	}
	// A 128 MB chase must touch many distinct blocks quickly.
	if len(seen) < 9000 {
		t.Errorf("only %d distinct addresses in 10000 dependent loads", len(seen))
	}
}

func TestGenGraph(t *testing.T) {
	g := GenGraph(1000, 10, 1)
	if g.V != 1000 {
		t.Errorf("V = %d", g.V)
	}
	if int(g.Offsets[g.V]) != len(g.Edges) {
		t.Error("offsets inconsistent with edge count")
	}
	totalDeg := 0
	maxDeg := 0
	for v := 0; v < g.V; v++ {
		d := g.Degree(v)
		if d < 1 {
			t.Fatalf("vertex %d has degree %d", v, d)
		}
		if d > maxDeg {
			maxDeg = d
		}
		totalDeg += d
	}
	avg := float64(totalDeg) / float64(g.V)
	if avg < 3 || avg > 60 {
		t.Errorf("average degree = %.1f, want near 10", avg)
	}
	// Power law: the max degree should far exceed the average. (The
	// V/10 degree cap truncates the tail for this small test graph.)
	if float64(maxDeg) < 4*avg {
		t.Errorf("max degree %d not heavy-tailed vs avg %.1f", maxDeg, avg)
	}
	for _, e := range g.Edges {
		if int(e) >= g.V {
			t.Fatal("edge endpoint out of range")
		}
	}
}

func TestInstrAccounting(t *testing.T) {
	w, _ := ByName("canneal")
	s := w.NewStreams(1, 1)[0]
	for i := 0; i < 100; i++ {
		op := s.Next(0)
		if op.Instr == 0 {
			t.Fatal("op retires zero instructions")
		}
		if op.Think < 0 {
			t.Fatal("negative think time")
		}
	}
}

func BenchmarkGraphWalk(b *testing.B) {
	w, _ := ByName("bfs")
	s := w.NewStreams(1, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s[i%4].Next(0)
	}
}

func BenchmarkRandomMix(b *testing.B) {
	w, _ := ByName("canneal")
	s := w.NewStreams(1, 1)[0]
	for i := 0; i < b.N; i++ {
		s.Next(0)
	}
}

func TestExtendedGraphSet(t *testing.T) {
	ext := ExtendedGraphSet()
	if len(ext) != 2 {
		t.Fatalf("extended set has %d workloads", len(ext))
	}
	for _, name := range []string{"pagerank", "tcount"} {
		w, ok := ByName(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		s := w.NewStreams(5, 2)
		for c := range s {
			for i := 0; i < 1000; i++ {
				op := s[c].Next(0)
				if op.Instr == 0 {
					t.Fatalf("%s: zero-instruction op", name)
				}
			}
		}
	}
	// Triangle counting must touch pairs: PC 404 ops exist.
	w, _ := ByName("tcount")
	s := w.NewStreams(5, 1)[0]
	pairs := 0
	for i := 0; i < 5000; i++ {
		if s.Next(0).PC == 404 {
			pairs++
		}
	}
	if pairs == 0 {
		t.Error("tcount issued no pairwise neighbor reads")
	}
	// PageRank writes every vertex.
	w, _ = ByName("pagerank")
	s = w.NewStreams(5, 1)[0]
	writes := 0
	for i := 0; i < 20000; i++ {
		if s.Next(0).Write {
			writes++
		}
	}
	if writes == 0 {
		t.Error("pagerank issued no writes")
	}
}

package cipher

import (
	"testing"

	"counterlight/internal/crypto/aes"
	"counterlight/internal/crypto/mix"
)

func testCounterMode(t *testing.T, backend string) *CounterMode {
	t.Helper()
	key := make([]byte, 16)
	key[0] = 0x42
	cm, err := NewCounterModeBackend(backend, key, 0xfeedface, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cm
}

func testCounterless(t *testing.T, backend string) *Counterless {
	t.Helper()
	dk := make([]byte, 16)
	dk[0] = 0x11
	tk := make([]byte, 16)
	tk[0] = 0x22
	cls, err := NewCounterlessBackend(backend, dk, tk, []byte("batch-mac"))
	if err != nil {
		t.Fatal(err)
	}
	return cls
}

// TestPadBatchMatchesPad checks the batched pad path against the
// single-pair entry points on every backend: PadBatch must reproduce
// Pad and the MAC OTP word exactly, and PadWithMAC must agree with
// Pad + OTP.
func TestPadBatchMatchesPad(t *testing.T) {
	for _, backend := range aes.BackendNames() {
		cm := testCounterMode(t, backend)
		const n = 9
		counters := make([]uint64, n)
		addrs := make([]uint64, n)
		for i := range counters {
			counters[i] = uint64(i * 3)
			addrs[i] = uint64(i) * 64
		}
		pads := make([]Block, n)
		otps := make([]mix.Word, n)
		var s BatchScratch
		cm.PadBatch(counters, addrs, pads, otps, &s)
		for i := 0; i < n; i++ {
			if want := cm.Pad(counters[i], addrs[i]); pads[i] != want {
				t.Fatalf("%s: PadBatch[%d] != Pad", backend, i)
			}
			if want := cm.OTP(counters[i], addrs[i], WordsPerBlock); otps[i] != want {
				t.Fatalf("%s: PadBatch macOTP[%d] != OTP", backend, i)
			}
			pad, otp := cm.PadWithMAC(counters[i], addrs[i])
			if pad != pads[i] || otp != otps[i] {
				t.Fatalf("%s: PadWithMAC[%d] disagrees with PadBatch", backend, i)
			}
		}
		// nil macOTPs skips the MAC words but not the pads; the same
		// scratch is reusable across batch sizes.
		pads2 := make([]Block, n)
		cm.PadBatch(counters[:4], addrs[:4], pads2, nil, &s)
		for i := 0; i < 4; i++ {
			if pads2[i] != pads[i] {
				t.Fatalf("%s: nil-macOTPs PadBatch[%d] diverges", backend, i)
			}
		}
	}
}

// TestMACFromOTP checks the split MAC entry point against the
// all-in-one MAC.
func TestMACFromOTP(t *testing.T) {
	cm := testCounterMode(t, aes.BackendRef)
	var plain Block
	for i := range plain {
		plain[i] = byte(i * 5)
	}
	want := cm.MAC(7, 128, plain, 7)
	otp := cm.OTP(7, 128, WordsPerBlock)
	if got := cm.MACFromOTP(otp, plain, 7); got != want {
		t.Fatalf("MACFromOTP = %#x, MAC = %#x", got, want)
	}
	_, otp2 := cm.PadWithMAC(7, 128)
	if got := cm.MACFromOTP(otp2, plain, 7); got != want {
		t.Fatalf("MACFromOTP(PadWithMAC otp) = %#x, MAC = %#x", got, want)
	}
}

// TestTweakBatchMatchesEncrypt checks the batched tweak derivation
// against a round trip through Encrypt/Decrypt: encrypting with the
// batch-derived tweaks by hand must reproduce Encrypt.
func TestTweakBatchMatchesEncrypt(t *testing.T) {
	for _, backend := range aes.BackendNames() {
		cls := testCounterless(t, backend)
		addrs := []uint64{0, 64, 128, 64 * 1000}
		tweaks := make([][WordsPerBlock][16]byte, len(addrs))
		var s BatchScratch
		cls.TweakBatch(addrs, tweaks, &s)
		for i, addr := range addrs {
			if want := cls.tweaks(addr); tweaks[i] != want {
				t.Fatalf("%s: TweakBatch[%d] != tweaks(%#x)", backend, i, addr)
			}
		}
	}
}

// TestCipherBackendsAgree cross-checks the full Counterless and
// CounterMode surfaces across every backend against the reference.
func TestCipherBackendsAgree(t *testing.T) {
	refCls := testCounterless(t, aes.BackendRef)
	refCm := testCounterMode(t, aes.BackendRef)
	var plain Block
	for i := range plain {
		plain[i] = byte(i*7 + 1)
	}
	const addr, ctr, meta = 3 * 64, 17, 17
	wantCt := refCls.Encrypt(addr, plain)
	wantMac := refCls.MAC(addr, wantCt, meta)
	wantCmCt := refCm.Encrypt(ctr, addr, plain)
	wantCmMac := refCm.MAC(ctr, addr, plain, meta)
	for _, backend := range aes.BackendNames() {
		cls := testCounterless(t, backend)
		cm := testCounterMode(t, backend)
		if ct := cls.Encrypt(addr, plain); ct != wantCt {
			t.Fatalf("%s: Counterless.Encrypt diverges from ref", backend)
		}
		if got := cls.Decrypt(addr, wantCt); got != plain {
			t.Fatalf("%s: Counterless.Decrypt does not invert", backend)
		}
		if mac := cls.MAC(addr, wantCt, meta); mac != wantMac {
			t.Fatalf("%s: Counterless.MAC diverges from ref", backend)
		}
		if ct := cm.Encrypt(ctr, addr, plain); ct != wantCmCt {
			t.Fatalf("%s: CounterMode.Encrypt diverges from ref", backend)
		}
		if mac := cm.MAC(ctr, addr, plain, meta); mac != wantCmMac {
			t.Fatalf("%s: CounterMode.MAC diverges from ref", backend)
		}
		if cls.Backend() != backend || cm.Backend() != backend {
			t.Fatalf("Backend() does not report %q", backend)
		}
	}
}

// The single-pair cipher entry points are the engine's per-op inner
// loop; they must not allocate on any backend.
func TestCipherNoAllocs(t *testing.T) {
	for _, backend := range aes.BackendNames() {
		cls := testCounterless(t, backend)
		cm := testCounterMode(t, backend)
		var plain Block
		ct := cls.Encrypt(64, plain)
		checks := map[string]func(){
			"Counterless.Encrypt": func() { cls.Encrypt(64, plain) },
			"Counterless.Decrypt": func() { cls.Decrypt(64, ct) },
			"Counterless.MAC":     func() { cls.MAC(64, ct, 5) },
			"CounterMode.Pad":     func() { cm.Pad(9, 64) },
			"CounterMode.PadWithMAC": func() {
				cm.PadWithMAC(9, 64)
			},
			"CounterMode.MAC":        func() { cm.MAC(9, 64, plain, 9) },
			"CounterMode.CounterAES": func() { cm.CounterAES(9) },
		}
		for name, fn := range checks {
			if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
				t.Errorf("%s/%s allocates %.1f per op, want 0", backend, name, allocs)
			}
		}
	}
}

package cipher

import "counterlight/internal/obs/prof"

// SetProbes attaches profiler probes to the counter-mode engine: pad
// observes per-pad derivation latency (single and batched paths
// alike), mac observes MACFromOTP latency. Nil probes (or never
// calling SetProbes) keep the hot path at one nil check per site.
// Not safe to call concurrently with encryption, matching the
// engine's own single-owner contract.
func (c *CounterMode) SetProbes(pad, mac *prof.Probe) {
	c.padProbe = pad
	c.macProbe = mac
}

// SetMACProbe attaches a profiler probe observing counterless MAC64
// latency. Same ownership rules as SetProbes.
func (c *Counterless) SetMACProbe(mac *prof.Probe) {
	c.macProbe = mac
}

package cipher

import (
	"math/rand"
	"testing"
	"testing/quick"

	"counterlight/internal/crypto/mix"
)

func testKeys(t *testing.T) (*Counterless, *CounterMode) {
	t.Helper()
	cl, err := NewCounterless(make([]byte, 16), make([]byte, 16), []byte("mac-key"))
	if err != nil {
		t.Fatal(err)
	}
	cm, err := NewCounterMode(make([]byte, 16), 0x1234, nil)
	if err != nil {
		t.Fatal(err)
	}
	return cl, cm
}

func randBlock(rng *rand.Rand) Block {
	var b Block
	rng.Read(b[:])
	return b
}

func TestBlockWordAccessors(t *testing.T) {
	var b Block
	for i := range b {
		b[i] = byte(i)
	}
	w := b.Word(2)
	if w[0] != 32 || w[15] != 47 {
		t.Errorf("Word(2) = %v", w)
	}
	var w2 [16]byte
	for i := range w2 {
		w2[i] = 0xAA
	}
	b.SetWord(2, w2)
	if b[32] != 0xAA || b[47] != 0xAA || b[31] != 31 || b[48] != 48 {
		t.Error("SetWord wrote wrong range")
	}
	words := b.Words64()
	if words[0] != 0x0706050403020100 {
		t.Errorf("Words64[0] = %#x", words[0])
	}
}

func TestXOR(t *testing.T) {
	f := func(a, b Block) bool {
		c := a.XOR(b)
		return c.XOR(b) == a && c.XOR(a) == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCounterlessRoundTrip(t *testing.T) {
	cl, _ := testKeys(t)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 100; i++ {
		addr := uint64(rng.Intn(1<<30)) &^ 63
		plain := randBlock(rng)
		ct := cl.Encrypt(addr, plain)
		if ct == plain {
			t.Fatal("ciphertext equals plaintext")
		}
		if got := cl.Decrypt(addr, ct); got != plain {
			t.Fatalf("round trip failed at addr %#x", addr)
		}
	}
}

// Same plaintext at different addresses must produce different
// ciphertexts (the address tweak).
func TestCounterlessAddressTweak(t *testing.T) {
	cl, _ := testKeys(t)
	var plain Block
	c1 := cl.Encrypt(0, plain)
	c2 := cl.Encrypt(64, plain)
	if c1 == c2 {
		t.Error("ciphertext identical across addresses")
	}
}

// Counterless is deterministic per (addr, data): writing the same data
// to the same address yields the same ciphertext. This is exactly the
// property enabling the ciphertext side-channel (§IV-D) and why
// counterless mode needs per-VM keys.
func TestCounterlessDeterministic(t *testing.T) {
	cl, _ := testKeys(t)
	var plain Block
	plain[0] = 42
	if cl.Encrypt(128, plain) != cl.Encrypt(128, plain) {
		t.Error("counterless encryption not deterministic")
	}
}

// Within a block, equal words must encrypt differently (the α^j word
// tweak of Fig. 2a).
func TestCounterlessWordTweak(t *testing.T) {
	cl, _ := testKeys(t)
	var plain Block // all four words identical (zero)
	ct := cl.Encrypt(0, plain)
	for j := 1; j < WordsPerBlock; j++ {
		if ct.Word(j) == ct.Word(0) {
			t.Errorf("word %d ciphertext equals word 0", j)
		}
	}
}

func TestCounterlessMAC(t *testing.T) {
	cl, _ := testKeys(t)
	rng := rand.New(rand.NewSource(11))
	ct := randBlock(rng)
	m := cl.MAC(4096, ct, 77)
	if cl.MAC(4096, ct, 77) != m {
		t.Error("MAC not deterministic")
	}
	if cl.MAC(4160, ct, 77) == m {
		t.Error("MAC ignores address")
	}
	if cl.MAC(4096, ct, 78) == m {
		t.Error("MAC ignores EncryptionMetadata")
	}
	ct2 := ct
	ct2[0] ^= 1
	if cl.MAC(4096, ct2, 77) == m {
		t.Error("MAC ignores data")
	}
}

func TestNewCounterlessErrors(t *testing.T) {
	if _, err := NewCounterless(make([]byte, 5), make([]byte, 16), []byte("k")); err == nil {
		t.Error("want error for bad data key")
	}
	if _, err := NewCounterless(make([]byte, 16), make([]byte, 5), []byte("k")); err == nil {
		t.Error("want error for bad tweak key")
	}
	if _, err := NewCounterless(make([]byte, 16), make([]byte, 16), nil); err == nil {
		t.Error("want error for empty MAC key")
	}
}

func TestCounterModeRoundTrip(t *testing.T) {
	_, cm := testKeys(t)
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 100; i++ {
		addr := uint64(rng.Intn(1<<30)) &^ 63
		counter := rng.Uint64()
		plain := randBlock(rng)
		ct := cm.Encrypt(counter, addr, plain)
		if got := cm.Decrypt(counter, addr, ct); got != plain {
			t.Fatalf("round trip failed (addr=%#x ctr=%d)", addr, counter)
		}
	}
}

// The nonce property: the same data written with different counters
// must yield different ciphertexts. This is why counters may never be
// reused (paper §II-B).
func TestCounterModeNoncePrevention(t *testing.T) {
	_, cm := testKeys(t)
	var plain Block
	c1 := cm.Encrypt(1, 0, plain)
	c2 := cm.Encrypt(2, 0, plain)
	if c1 == c2 {
		t.Error("different counters gave identical ciphertext")
	}
}

// Decrypting with the wrong counter must give garbage, not plaintext.
func TestCounterModeWrongCounter(t *testing.T) {
	_, cm := testKeys(t)
	rng := rand.New(rand.NewSource(13))
	plain := randBlock(rng)
	ct := cm.Encrypt(7, 4096, plain)
	if cm.Decrypt(8, 4096, ct) == plain {
		t.Error("wrong counter still decrypted correctly")
	}
}

// The OTP weakness the paper describes in Fig. 10: XOR of two
// ciphertexts under the same (counter, addr) equals XOR of the
// plaintexts. Our engine must reproduce this (it is inherent to CTR),
// because the replay attack analysis depends on it.
func TestCounterModeOTPXORProperty(t *testing.T) {
	_, cm := testKeys(t)
	rng := rand.New(rand.NewSource(14))
	p1, p2 := randBlock(rng), randBlock(rng)
	c1 := cm.Encrypt(5, 0, p1)
	c2 := cm.Encrypt(5, 0, p2)
	if c1.XOR(c2) != p1.XOR(p2) {
		t.Error("CTR XOR property violated")
	}
}

func TestCounterModeMAC(t *testing.T) {
	_, cm := testKeys(t)
	rng := rand.New(rand.NewSource(15))
	plain := randBlock(rng)
	m := cm.MAC(9, 4096, plain, 9)
	if cm.MAC(9, 4096, plain, 9) != m {
		t.Error("MAC not deterministic")
	}
	if cm.MAC(10, 4096, plain, 9) == m {
		t.Error("MAC ignores counter")
	}
	if cm.MAC(9, 8192, plain, 9) == m {
		t.Error("MAC ignores address")
	}
	if cm.MAC(9, 4096, plain, 10) == m {
		t.Error("MAC ignores EncryptionMetadata")
	}
	p2 := plain
	p2[63] ^= 0x80
	if cm.MAC(9, 4096, p2, 9) == m {
		t.Error("MAC ignores data")
	}
}

// The bit-flipping weakness of counter mode (§II-B): flipping bit k of
// the ciphertext flips exactly bit k of the decrypted plaintext. The
// MAC must catch it, but the cipher itself must exhibit the property.
func TestCounterModeBitFlipping(t *testing.T) {
	_, cm := testKeys(t)
	rng := rand.New(rand.NewSource(16))
	plain := randBlock(rng)
	ct := cm.Encrypt(3, 0, plain)
	ct[17] ^= 0x10
	dec := cm.Decrypt(3, 0, ct)
	want := plain
	want[17] ^= 0x10
	if dec != want {
		t.Error("bit-flip did not map 1:1 onto plaintext")
	}
}

// Counterless must NOT have the bit-flipping property: flipping one
// ciphertext bit must scramble the containing word.
func TestCounterlessBitFlipScrambles(t *testing.T) {
	cl, _ := testKeys(t)
	rng := rand.New(rand.NewSource(17))
	plain := randBlock(rng)
	ct := cl.Encrypt(0, plain)
	ct[17] ^= 0x10
	dec := cl.Decrypt(0, ct)
	diff := 0
	for i := 16; i < 32; i++ { // word 1 contains byte 17
		x := dec[i] ^ plain[i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff < 30 {
		t.Errorf("only %d bits differ in the tampered word, want avalanche (>=30)", diff)
	}
}

// The memoization contract: CounterAES for equal counter values is
// equal regardless of address, so one memoized entry serves millions
// of blocks (paper §I "a single counter value can be simultaneously
// used by many data blocks").
func TestCounterAESIndependentOfAddress(t *testing.T) {
	_, cm := testKeys(t)
	w1 := cm.CounterAES(42)
	w2 := cm.CounterAES(42)
	if w1 != w2 {
		t.Error("CounterAES not deterministic")
	}
	if cm.CounterAES(43) == w1 {
		t.Error("CounterAES ignores counter value")
	}
}

// Counter and address AES domains must not collide: the same numeric
// value as counter and as address must produce different AES results.
func TestDomainSeparation(t *testing.T) {
	_, cm := testKeys(t)
	if cm.CounterAES(1000) == cm.AddrAES(1000) {
		t.Error("counter and address AES domains collide")
	}
}

// Pad must equal the concatenation of the four word OTPs.
func TestPadMatchesOTP(t *testing.T) {
	_, cm := testKeys(t)
	pad := cm.Pad(11, 1<<20)
	for j := 0; j < WordsPerBlock; j++ {
		if pad.Word(j) != cm.OTP(11, 1<<20, j).Bytes() {
			t.Errorf("pad word %d mismatch", j)
		}
	}
}

// Linear combiner variant must still round-trip.
func TestCounterModeLinearCombiner(t *testing.T) {
	cm, err := NewCounterMode(make([]byte, 16), 0x99, mix.Linear)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(18))
	plain := randBlock(rng)
	ct := cm.Encrypt(5, 256, plain)
	if cm.Decrypt(5, 256, ct) != plain {
		t.Error("linear-combiner round trip failed")
	}
}

func TestCounterModeRounds(t *testing.T) {
	cm128, _ := NewCounterMode(make([]byte, 16), 1, nil)
	cm256, _ := NewCounterMode(make([]byte, 32), 1, nil)
	if cm128.Rounds() != 10 || cm256.Rounds() != 14 {
		t.Errorf("rounds = %d/%d, want 10/14", cm128.Rounds(), cm256.Rounds())
	}
	cl128, _ := NewCounterless(make([]byte, 16), make([]byte, 16), []byte("k"))
	if cl128.Rounds() != 10 {
		t.Errorf("counterless rounds = %d", cl128.Rounds())
	}
}

func TestNewCounterModeErrors(t *testing.T) {
	if _, err := NewCounterMode(make([]byte, 7), 1, nil); err == nil {
		t.Error("want error for bad key size")
	}
}

func TestMulAlpha(t *testing.T) {
	// Doubling 1 gives 2; doubling with the top bit set folds 0x87.
	var one [16]byte
	one[0] = 1
	two := mulAlpha(one)
	if two[0] != 2 {
		t.Errorf("mulAlpha(1)[0] = %d", two[0])
	}
	var top [16]byte
	top[15] = 0x80
	red := mulAlpha(top)
	if red[0] != 0x87 {
		t.Errorf("mulAlpha(top)[0] = %#x, want 0x87", red[0])
	}
	for i := 1; i < 16; i++ {
		if red[i] != 0 {
			t.Errorf("mulAlpha(top)[%d] = %#x, want 0", i, red[i])
		}
	}
}

// Property: round trips for arbitrary blocks, addresses, counters.
func TestQuickRoundTrips(t *testing.T) {
	cl, cm := testKeys(t)
	f := func(plain Block, addrRaw, counter uint64) bool {
		addr := addrRaw &^ 63
		if cl.Decrypt(addr, cl.Encrypt(addr, plain)) != plain {
			return false
		}
		return cm.Decrypt(counter, addr, cm.Encrypt(counter, addr, plain)) == plain
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCounterlessDecrypt(b *testing.B) {
	cl, _ := NewCounterless(make([]byte, 16), make([]byte, 16), []byte("k"))
	var blk Block
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		blk = cl.Decrypt(0, blk)
	}
	_ = blk
}

func BenchmarkCounterModeDecrypt(b *testing.B) {
	cm, _ := NewCounterMode(make([]byte, 16), 1, nil)
	var blk Block
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		blk = cm.Decrypt(7, 0, blk)
	}
	_ = blk
}

package cipher_test

import (
	"fmt"

	"counterlight/internal/cipher"
)

// Counterless (AES-XTS-style) encryption is deterministic per
// (address, data): the cipher input is the data itself, which is why
// decryption can only start after the data arrives (paper §III).
func ExampleCounterless() {
	eng, err := cipher.NewCounterless(make([]byte, 16), make([]byte, 16), []byte("mac-key"))
	if err != nil {
		panic(err)
	}
	var plain cipher.Block
	copy(plain[:], []byte("hello, memory"))

	ct := eng.Encrypt(0x1000, plain)
	back := eng.Decrypt(0x1000, ct)
	fmt.Println(string(back[:13]))
	// Same data, same address: same ciphertext (the determinism that
	// forces per-VM keys, §IV-D).
	fmt.Println(ct == eng.Encrypt(0x1000, plain))
	// Output:
	// hello, memory
	// true
}

// Counter mode derives a one-time pad from (counter, address); the pad
// is computable before the data arrives, which is the latency
// advantage Counter-light retains.
func ExampleCounterMode() {
	eng, err := cipher.NewCounterMode(make([]byte, 16), 42, nil)
	if err != nil {
		panic(err)
	}
	var plain cipher.Block
	copy(plain[:], []byte("hello, memory"))

	ct1 := eng.Encrypt(1, 0x1000, plain) // counter 1
	ct2 := eng.Encrypt(2, 0x1000, plain) // counter 2: fresh pad
	back := eng.Decrypt(1, 0x1000, ct1)
	fmt.Println(string(back[:13]))
	fmt.Println(ct1 == ct2)
	// Output:
	// hello, memory
	// false
}

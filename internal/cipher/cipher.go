// Package cipher implements the two memory-encryption engines the
// paper combines, operating on 64-byte memory blocks:
//
//   - Counterless (paper §II-A, Fig. 2a): AES-XTS-style. Each 16-byte
//     word is encrypted with a data-dependent AES whose tweak comes
//     from the block address, as in Intel TME/SGX2 and AMD SEV. The
//     per-block MAC is a SHA-3 hash (as in Intel MKTME).
//
//   - CounterMode (paper §II-B, Fig. 2b): AES-CTR-style. A one-time
//     pad is derived from the block's write counter and the word
//     address, and XORed with the data. The per-block MAC is the XOR
//     of a truncated OTP with a GF(2^64) dot product of the plaintext
//     (as in SGX1's MEE / Synergy).
//
// Both engines are purely functional: timing belongs to internal/core.
package cipher

import (
	"encoding/binary"
	"fmt"

	"counterlight/internal/crypto/aes"
	"counterlight/internal/crypto/gf"
	"counterlight/internal/crypto/keccak"
	"counterlight/internal/crypto/mix"
)

// BlockSize is the memory block (cache line) size in bytes.
const BlockSize = 64

// WordsPerBlock is the number of 16-byte AES words per memory block.
const WordsPerBlock = BlockSize / aes.BlockSize

// Block is one 64-byte memory block.
type Block [BlockSize]byte

// Word returns the block's j-th 16-byte word as an array.
func (b *Block) Word(j int) [16]byte {
	var w [16]byte
	copy(w[:], b[16*j:16*j+16])
	return w
}

// SetWord stores w into the block's j-th 16-byte word.
func (b *Block) SetWord(j int, w [16]byte) {
	copy(b[16*j:16*j+16], w[:])
}

// Words64 returns the block as eight 64-bit little-endian words, the
// granularity of the MAC dot product (one word per memory chip).
func (b *Block) Words64() [8]uint64 {
	var w [8]uint64
	for i := range w {
		w[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return w
}

// XOR returns b ^ o.
func (b Block) XOR(o Block) Block {
	for i := range b {
		b[i] ^= o[i]
	}
	return b
}

// ---------------------------------------------------------------------------
// Counterless engine (AES-XTS style)
// ---------------------------------------------------------------------------

// Counterless encrypts blocks in the counterless (XTS) mode.
type Counterless struct {
	dataKey  *aes.Cipher
	tweakKey *aes.Cipher
	macKey   []byte
}

// NewCounterless builds a counterless engine. dataKey and tweakKey
// must be valid AES key lengths (16, 24, or 32 bytes); both halves of
// the XTS key pair conventionally have the same size.
func NewCounterless(dataKey, tweakKey, macKey []byte) (*Counterless, error) {
	dk, err := aes.New(dataKey)
	if err != nil {
		return nil, fmt.Errorf("cipher: data key: %w", err)
	}
	tk, err := aes.New(tweakKey)
	if err != nil {
		return nil, fmt.Errorf("cipher: tweak key: %w", err)
	}
	if len(macKey) == 0 {
		return nil, fmt.Errorf("cipher: empty MAC key")
	}
	return &Counterless{dataKey: dk, tweakKey: tk, macKey: append([]byte(nil), macKey...)}, nil
}

// Rounds reports the AES round count of the data cipher, which drives
// the latency model (10 for AES-128, 14 for AES-256).
func (c *Counterless) Rounds() int { return c.dataKey.Rounds() }

// tweak computes the encrypted tweak for the block at addr, then the
// per-word tweaks T_j = T ⊗ α^j in GF(2^128) (Fig. 2a's
// "Tweak(Address) ⊗ α^j").
func (c *Counterless) tweaks(addr uint64) [WordsPerBlock][16]byte {
	var in [16]byte
	binary.LittleEndian.PutUint64(in[:], addr/BlockSize)
	t := c.tweakKey.EncryptBlock(in)
	var out [WordsPerBlock][16]byte
	for j := 0; j < WordsPerBlock; j++ {
		out[j] = t
		t = mulAlpha(t)
	}
	return out
}

// mulAlpha doubles a 16-byte value in GF(2^128) with the XTS
// polynomial x^128 + x^7 + x^2 + x + 1, little-endian bit order.
func mulAlpha(t [16]byte) [16]byte {
	var out [16]byte
	carry := byte(0)
	for i := 0; i < 16; i++ {
		out[i] = t[i]<<1 | carry
		carry = t[i] >> 7
	}
	if carry != 0 {
		out[0] ^= 0x87
	}
	return out
}

// Encrypt encrypts a block stored at byte address addr:
// C_j = AES_k1(P_j ⊕ T_j) ⊕ T_j for each 16-byte word.
func (c *Counterless) Encrypt(addr uint64, plain Block) Block {
	tw := c.tweaks(addr)
	var ct Block
	for j := 0; j < WordsPerBlock; j++ {
		w := plain.Word(j)
		for i := range w {
			w[i] ^= tw[j][i]
		}
		w = c.dataKey.EncryptBlock(w)
		for i := range w {
			w[i] ^= tw[j][i]
		}
		ct.SetWord(j, w)
	}
	return ct
}

// Decrypt inverts Encrypt. The AES here is data-dependent: it can only
// start after the ciphertext arrives, which is the latency problem the
// paper characterizes in §III.
func (c *Counterless) Decrypt(addr uint64, ct Block) Block {
	tw := c.tweaks(addr)
	var plain Block
	for j := 0; j < WordsPerBlock; j++ {
		w := ct.Word(j)
		for i := range w {
			w[i] ^= tw[j][i]
		}
		w = c.dataKey.DecryptBlock(w)
		for i := range w {
			w[i] ^= tw[j][i]
		}
		plain.SetWord(j, w)
	}
	return plain
}

// MAC computes the 64-bit counterless-mode MAC: SHA-3 over the
// ciphertext, address, and EncryptionMetadata (paper §IV-C adds
// EncryptionMetadata as an input to the SHA-3 used for the counterless
// MAC; the MAC stays 64 bits "to keep hardware regular").
func (c *Counterless) MAC(addr uint64, ct Block, encMeta uint32) uint64 {
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:], addr)
	binary.LittleEndian.PutUint32(hdr[8:], encMeta)
	return keccak.MAC64(c.macKey, hdr[:], ct[:])
}

// ---------------------------------------------------------------------------
// Counter-mode engine (AES-CTR style with OTP combining)
// ---------------------------------------------------------------------------

// Combiner merges the counter-only AES result with the address-only
// AES result into a one-time pad (Fig. 15). mix.Linear reproduces
// RMCC; mix.Nonlinear is Counter-light's hardened variant.
type Combiner func(counterAES, addrAES mix.Word) mix.Word

// CounterMode encrypts blocks with a counter-derived one-time pad.
// Per §IV-D, a single global key serves all VMs in counter mode, which
// is what makes the AES memoization table viable.
type CounterMode struct {
	key     *aes.Cipher
	macKeys []uint64
	combine Combiner
}

// NewCounterMode builds a counter-mode engine. key must be a valid AES
// key; macSecret seeds the GF(2^64) dot-product key schedule; combine
// selects the OTP combining logic (nil means mix.Nonlinear).
func NewCounterMode(key []byte, macSecret uint64, combine Combiner) (*CounterMode, error) {
	k, err := aes.New(key)
	if err != nil {
		return nil, fmt.Errorf("cipher: counter-mode key: %w", err)
	}
	if combine == nil {
		combine = mix.Nonlinear
	}
	return &CounterMode{
		key:     k,
		macKeys: gf.KeySchedule(macSecret, 9), // 8 data words + 1 metadata word
		combine: combine,
	}, nil
}

// Rounds reports the AES round count (latency model input).
func (c *CounterMode) Rounds() int { return c.key.Rounds() }

// CounterAES is the counter-only AES of Fig. 4: AES over the padded
// counter value. Its results are what the memoization table stores —
// a single counter value's result serves every block that currently
// holds that counter value.
func (c *CounterMode) CounterAES(counter uint64) mix.Word {
	var in [16]byte
	binary.LittleEndian.PutUint64(in[:], counter)
	in[15] = 0xC7 // domain separator: counter input
	return mix.FromBytes(c.key.EncryptBlock(in))
}

// AddrAES is the address-only AES of Fig. 4 for one 16-byte word
// address. It depends only on the address, so hardware computes it
// while the data is in flight.
func (c *CounterMode) AddrAES(wordAddr uint64) mix.Word {
	var in [16]byte
	binary.LittleEndian.PutUint64(in[:], wordAddr)
	in[15] = 0xAD // domain separator: address input
	return mix.FromBytes(c.key.EncryptBlock(in))
}

// OTP produces the one-time pad for word j of the block at addr,
// written with counter value counter.
func (c *CounterMode) OTP(counter, addr uint64, j int) mix.Word {
	return c.combine(c.CounterAES(counter), c.AddrAES(addr+uint64(16*j)))
}

// Pad returns the full 64-byte pad for a block.
func (c *CounterMode) Pad(counter, addr uint64) Block {
	var pad Block
	ctrAES := c.CounterAES(counter)
	for j := 0; j < WordsPerBlock; j++ {
		w := c.combine(ctrAES, c.AddrAES(addr+uint64(16*j)))
		pad.SetWord(j, w.Bytes())
	}
	return pad
}

// Encrypt XORs the plaintext with the pad. Decryption is identical.
func (c *CounterMode) Encrypt(counter, addr uint64, plain Block) Block {
	return plain.XOR(c.Pad(counter, addr))
}

// Decrypt inverts Encrypt. Because the pad depends only on (counter,
// addr), it can be ready before the data arrives — the core of the
// paper's latency advantage.
func (c *CounterMode) Decrypt(counter, addr uint64, ct Block) Block {
	return ct.XOR(c.Pad(counter, addr))
}

// MAC computes the 64-bit counter-mode MAC: a truncated OTP XORed with
// a GF(2^64) dot product over the plaintext words and the
// EncryptionMetadata (paper §II-B and §IV-C; the counter value is the
// EncryptionMetadata in counter mode, so it enters through both the
// OTP and the dot product).
func (c *CounterMode) MAC(counter, addr uint64, plain Block, encMeta uint32) uint64 {
	// A dedicated OTP word (index WordsPerBlock, beyond the data
	// words) keeps the MAC pad independent of the data pads.
	otp := c.OTP(counter, addr, WordsPerBlock)
	words := plain.Words64()
	inputs := make([]uint64, 0, 9)
	inputs = append(inputs, words[:]...)
	inputs = append(inputs, uint64(encMeta))
	return otp.Lo ^ gf.DotProduct(inputs, c.macKeys)
}

// Package cipher implements the two memory-encryption engines the
// paper combines, operating on 64-byte memory blocks:
//
//   - Counterless (paper §II-A, Fig. 2a): AES-XTS-style. Each 16-byte
//     word is encrypted with a data-dependent AES whose tweak comes
//     from the block address, as in Intel TME/SGX2 and AMD SEV. The
//     per-block MAC is a SHA-3 hash (as in Intel MKTME).
//
//   - CounterMode (paper §II-B, Fig. 2b): AES-CTR-style. A one-time
//     pad is derived from the block's write counter and the word
//     address, and XORed with the data. The per-block MAC is the XOR
//     of a truncated OTP with a GF(2^64) dot product of the plaintext
//     (as in SGX1's MEE / Synergy).
//
// Both engines are parameterized by an aes.Backend (ref, ttable, or
// stdlib — all bit-exact) and batch their AES work: one engine call
// issues one EncryptBlocks over every block it needs, which is where a
// hardware-class backend gets its pipelining win. The batch entry
// points (PadBatch, TweakBatch) extend that to many memory blocks per
// call with caller-owned buffers.
//
// The engines carry per-instance scratch buffers to keep the hot path
// allocation-free, so a Counterless or CounterMode value must not be
// used by more than one goroutine at a time (internal/core engines are
// single-threaded; internal/mcpool serializes per shard).
//
// Both engines are purely functional: timing belongs to internal/core.
package cipher

import (
	"encoding/binary"
	"fmt"

	"counterlight/internal/crypto/aes"
	"counterlight/internal/crypto/gf"
	"counterlight/internal/crypto/keccak"
	"counterlight/internal/crypto/mix"
	"counterlight/internal/obs/prof"
)

// BlockSize is the memory block (cache line) size in bytes.
const BlockSize = 64

// WordsPerBlock is the number of 16-byte AES words per memory block.
const WordsPerBlock = BlockSize / aes.BlockSize

// Block is one 64-byte memory block.
type Block [BlockSize]byte

// Word returns the block's j-th 16-byte word as an array.
func (b *Block) Word(j int) [16]byte {
	var w [16]byte
	copy(w[:], b[16*j:16*j+16])
	return w
}

// SetWord stores w into the block's j-th 16-byte word.
func (b *Block) SetWord(j int, w [16]byte) {
	copy(b[16*j:16*j+16], w[:])
}

// Words64 returns the block as eight 64-bit little-endian words, the
// granularity of the MAC dot product (one word per memory chip).
func (b *Block) Words64() [8]uint64 {
	var w [8]uint64
	for i := range w {
		w[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return w
}

// XOR returns b ^ o.
func (b Block) XOR(o Block) Block {
	for i := range b {
		b[i] ^= o[i]
	}
	return b
}

// BatchScratch amortizes the intermediate AES buffers of the batch
// entry points (PadBatch, TweakBatch). The zero value is ready to use;
// the buffers grow to the largest batch seen and are then reused. The
// methods never retain caller-supplied slices, but one scratch must
// not serve two concurrent callers.
type BatchScratch struct {
	in, out []byte
}

// grow returns n-byte in/out views, reallocating only when the batch
// outgrows every previous one.
func (s *BatchScratch) grow(n int) (in, out []byte) {
	if cap(s.in) < n {
		s.in = make([]byte, n)
		s.out = make([]byte, n)
	}
	return s.in[:n], s.out[:n]
}

// ---------------------------------------------------------------------------
// Counterless engine (AES-XTS style)
// ---------------------------------------------------------------------------

// Counterless encrypts blocks in the counterless (XTS) mode. It is not
// safe for concurrent use: the batch scratch is per-instance.
type Counterless struct {
	dataKey  aes.Backend
	tweakKey aes.Backend
	backend  string
	macKey   []byte

	// Scratch for the four-word batched data AES and the single-block
	// tweak AES of one Encrypt/Decrypt call.
	sin, sout [BlockSize]byte
	tin, tout [16]byte

	macProbe *prof.Probe // optional MAC64 latency probe (SetMACProbe)
}

// NewCounterless builds a counterless engine on the process-default
// AES backend. dataKey and tweakKey must be valid AES key lengths (16,
// 24, or 32 bytes); both halves of the XTS key pair conventionally
// have the same size.
func NewCounterless(dataKey, tweakKey, macKey []byte) (*Counterless, error) {
	return NewCounterlessBackend("", dataKey, tweakKey, macKey)
}

// NewCounterlessBackend is NewCounterless on an explicit AES backend
// (empty selects the process default, aes.DefaultBackend).
func NewCounterlessBackend(backend string, dataKey, tweakKey, macKey []byte) (*Counterless, error) {
	if backend == "" {
		backend = aes.DefaultBackend()
	}
	dk, err := aes.NewBackend(backend, dataKey)
	if err != nil {
		return nil, fmt.Errorf("cipher: data key: %w", err)
	}
	tk, err := aes.NewBackend(backend, tweakKey)
	if err != nil {
		return nil, fmt.Errorf("cipher: tweak key: %w", err)
	}
	if len(macKey) == 0 {
		return nil, fmt.Errorf("cipher: empty MAC key")
	}
	return &Counterless{
		dataKey:  dk,
		tweakKey: tk,
		backend:  backend,
		macKey:   append([]byte(nil), macKey...),
	}, nil
}

// Backend reports the AES backend name this engine runs on.
func (c *Counterless) Backend() string { return c.backend }

// Rounds reports the AES round count of the data cipher, which drives
// the latency model (10 for AES-128, 14 for AES-256).
func (c *Counterless) Rounds() int { return c.dataKey.Rounds() }

// tweak computes the encrypted tweak for the block at addr, then the
// per-word tweaks T_j = T ⊗ α^j in GF(2^128) (Fig. 2a's
// "Tweak(Address) ⊗ α^j").
func (c *Counterless) tweaks(addr uint64) [WordsPerBlock][16]byte {
	c.tin = [16]byte{}
	binary.LittleEndian.PutUint64(c.tin[:], addr/BlockSize)
	c.tweakKey.Encrypt(c.tout[:], c.tin[:])
	t := c.tout
	var out [WordsPerBlock][16]byte
	for j := 0; j < WordsPerBlock; j++ {
		out[j] = t
		t = mulAlpha(t)
	}
	return out
}

// TweakBatch fills tweaks[i] with the per-word tweaks of the block at
// addrs[i], batching every tweak-key AES into one EncryptBlocks call.
// tweaks is caller-owned (len >= len(addrs)); s amortizes the AES
// buffers and no slice is retained.
func (c *Counterless) TweakBatch(addrs []uint64, tweaks [][WordsPerBlock][16]byte, s *BatchScratch) {
	if len(tweaks) < len(addrs) {
		panic("cipher: TweakBatch output shorter than input")
	}
	in, out := s.grow(len(addrs) * 16)
	for i, addr := range addrs {
		for k := 0; k < 16; k++ {
			in[16*i+k] = 0
		}
		binary.LittleEndian.PutUint64(in[16*i:], addr/BlockSize)
	}
	c.tweakKey.EncryptBlocks(out, in)
	for i := range addrs {
		t := [16]byte(out[16*i : 16*i+16])
		for j := 0; j < WordsPerBlock; j++ {
			tweaks[i][j] = t
			t = mulAlpha(t)
		}
	}
}

// mulAlpha doubles a 16-byte value in GF(2^128) with the XTS
// polynomial x^128 + x^7 + x^2 + x + 1, little-endian bit order.
func mulAlpha(t [16]byte) [16]byte {
	var out [16]byte
	carry := byte(0)
	for i := 0; i < 16; i++ {
		out[i] = t[i]<<1 | carry
		carry = t[i] >> 7
	}
	if carry != 0 {
		out[0] ^= 0x87
	}
	return out
}

// Encrypt encrypts a block stored at byte address addr:
// C_j = AES_k1(P_j ⊕ T_j) ⊕ T_j for each 16-byte word. All four word
// AES computations go out as one batch.
func (c *Counterless) Encrypt(addr uint64, plain Block) Block {
	tw := c.tweaks(addr)
	for j := 0; j < WordsPerBlock; j++ {
		for i := 0; i < 16; i++ {
			c.sin[16*j+i] = plain[16*j+i] ^ tw[j][i]
		}
	}
	c.dataKey.EncryptBlocks(c.sout[:], c.sin[:])
	var ct Block
	for j := 0; j < WordsPerBlock; j++ {
		for i := 0; i < 16; i++ {
			ct[16*j+i] = c.sout[16*j+i] ^ tw[j][i]
		}
	}
	return ct
}

// Decrypt inverts Encrypt. The AES here is data-dependent: it can only
// start after the ciphertext arrives, which is the latency problem the
// paper characterizes in §III.
func (c *Counterless) Decrypt(addr uint64, ct Block) Block {
	tw := c.tweaks(addr)
	for j := 0; j < WordsPerBlock; j++ {
		for i := 0; i < 16; i++ {
			c.sin[16*j+i] = ct[16*j+i] ^ tw[j][i]
		}
	}
	c.dataKey.DecryptBlocks(c.sout[:], c.sin[:])
	var plain Block
	for j := 0; j < WordsPerBlock; j++ {
		for i := 0; i < 16; i++ {
			plain[16*j+i] = c.sout[16*j+i] ^ tw[j][i]
		}
	}
	return plain
}

// MAC computes the 64-bit counterless-mode MAC: SHA-3 over the
// ciphertext, address, and EncryptionMetadata (paper §IV-C adds
// EncryptionMetadata as an input to the SHA-3 used for the counterless
// MAC; the MAC stays 64 bits "to keep hardware regular").
func (c *Counterless) MAC(addr uint64, ct Block, encMeta uint32) uint64 {
	t0 := c.macProbe.Start()
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:], addr)
	binary.LittleEndian.PutUint32(hdr[8:], encMeta)
	m := keccak.MAC64(c.macKey, hdr[:], ct[:])
	c.macProbe.Done(t0)
	return m
}

// ---------------------------------------------------------------------------
// Counter-mode engine (AES-CTR style with OTP combining)
// ---------------------------------------------------------------------------

// Combiner merges the counter-only AES result with the address-only
// AES result into a one-time pad (Fig. 15). mix.Linear reproduces
// RMCC; mix.Nonlinear is Counter-light's hardened variant.
type Combiner func(counterAES, addrAES mix.Word) mix.Word

// padBlocks is the AES block count of one full pad derivation: the
// counter block, one block per data word, and the MAC's dedicated OTP
// word (index WordsPerBlock).
const padBlocks = WordsPerBlock + 2

// CounterMode encrypts blocks with a counter-derived one-time pad.
// Per §IV-D, a single global key serves all VMs in counter mode, which
// is what makes the AES memoization table viable. It is not safe for
// concurrent use: the pad scratch is per-instance.
type CounterMode struct {
	key     aes.Backend
	backend string
	macKeys []uint64
	combine Combiner

	// Scratch for one pad derivation (pin/pout) and for the
	// single-block CounterAES/AddrAES entry points (ain/aout).
	pin, pout [padBlocks * 16]byte
	ain, aout [16]byte

	// Optional profiler probes (SetProbes): per-pad derivation latency
	// and MAC latency.
	padProbe *prof.Probe
	macProbe *prof.Probe
}

// NewCounterMode builds a counter-mode engine on the process-default
// AES backend. key must be a valid AES key; macSecret seeds the
// GF(2^64) dot-product key schedule; combine selects the OTP combining
// logic (nil means mix.Nonlinear).
func NewCounterMode(key []byte, macSecret uint64, combine Combiner) (*CounterMode, error) {
	return NewCounterModeBackend("", key, macSecret, combine)
}

// NewCounterModeBackend is NewCounterMode on an explicit AES backend
// (empty selects the process default, aes.DefaultBackend).
func NewCounterModeBackend(backend string, key []byte, macSecret uint64, combine Combiner) (*CounterMode, error) {
	if backend == "" {
		backend = aes.DefaultBackend()
	}
	k, err := aes.NewBackend(backend, key)
	if err != nil {
		return nil, fmt.Errorf("cipher: counter-mode key: %w", err)
	}
	if combine == nil {
		combine = mix.Nonlinear
	}
	return &CounterMode{
		key:     k,
		backend: backend,
		macKeys: gf.KeySchedule(macSecret, 9), // 8 data words + 1 metadata word
		combine: combine,
	}, nil
}

// Backend reports the AES backend name this engine runs on.
func (c *CounterMode) Backend() string { return c.backend }

// Rounds reports the AES round count (latency model input).
func (c *CounterMode) Rounds() int { return c.key.Rounds() }

// putPadInput serializes one AES input block: the 64-bit value, zero
// padding, and the domain-separator byte.
func putPadInput(dst []byte, v uint64, domain byte) {
	binary.LittleEndian.PutUint64(dst[0:8], v)
	for i := 8; i < 15; i++ {
		dst[i] = 0
	}
	dst[15] = domain
}

// Domain separators of the two AES input classes (Fig. 4).
const (
	domainCounter = 0xC7 // counter input
	domainAddr    = 0xAD // address input
)

// CounterAES is the counter-only AES of Fig. 4: AES over the padded
// counter value. Its results are what the memoization table stores —
// a single counter value's result serves every block that currently
// holds that counter value.
func (c *CounterMode) CounterAES(counter uint64) mix.Word {
	putPadInput(c.ain[:], counter, domainCounter)
	c.key.Encrypt(c.aout[:], c.ain[:])
	return mix.FromBytes(c.aout)
}

// AddrAES is the address-only AES of Fig. 4 for one 16-byte word
// address. It depends only on the address, so hardware computes it
// while the data is in flight.
func (c *CounterMode) AddrAES(wordAddr uint64) mix.Word {
	putPadInput(c.ain[:], wordAddr, domainAddr)
	c.key.Encrypt(c.aout[:], c.ain[:])
	return mix.FromBytes(c.aout)
}

// OTP produces the one-time pad for word j of the block at addr,
// written with counter value counter.
func (c *CounterMode) OTP(counter, addr uint64, j int) mix.Word {
	return c.combine(c.CounterAES(counter), c.AddrAES(addr+uint64(16*j)))
}

// fillPadInputs writes the n AES input blocks of one pad derivation
// into dst: the counter block, then word addresses addr, addr+16, ...
// (block WordsPerBlock+1, when requested, is the MAC's dedicated OTP
// word at addr+16*WordsPerBlock).
func fillPadInputs(dst []byte, counter, addr uint64, n int) {
	putPadInput(dst[0:16], counter, domainCounter)
	for j := 1; j < n; j++ {
		putPadInput(dst[16*j:16*j+16], addr+uint64(16*(j-1)), domainAddr)
	}
}

// padInto derives the block pad (and, when macOTP is non-nil, the
// MAC's dedicated OTP word) with a single batched AES call.
func (c *CounterMode) padInto(pad *Block, counter, addr uint64, macOTP *mix.Word) {
	t0 := c.padProbe.Start()
	n := 1 + WordsPerBlock
	if macOTP != nil {
		n = padBlocks
	}
	fillPadInputs(c.pin[:16*n], counter, addr, n)
	c.key.EncryptBlocks(c.pout[:16*n], c.pin[:16*n])
	ctrAES := mix.FromBytes([16]byte(c.pout[0:16]))
	for j := 0; j < WordsPerBlock; j++ {
		w := c.combine(ctrAES, mix.FromBytes([16]byte(c.pout[16*(j+1):16*(j+2)])))
		pad.SetWord(j, w.Bytes())
	}
	if macOTP != nil {
		*macOTP = c.combine(ctrAES, mix.FromBytes([16]byte(c.pout[16*(WordsPerBlock+1):16*(WordsPerBlock+2)])))
	}
	c.padProbe.Done(t0)
}

// Pad returns the full 64-byte pad for a block: one batched AES over
// the counter block and the four word-address blocks.
func (c *CounterMode) Pad(counter, addr uint64) Block {
	var pad Block
	c.padInto(&pad, counter, addr, nil)
	return pad
}

// PadWithMAC returns the block pad plus the MAC's dedicated OTP word
// (OTP(counter, addr, WordsPerBlock)) from one six-block batched AES
// call — everything a verified counter-mode read needs.
func (c *CounterMode) PadWithMAC(counter, addr uint64) (Block, mix.Word) {
	var pad Block
	var macOTP mix.Word
	c.padInto(&pad, counter, addr, &macOTP)
	return pad, macOTP
}

// PadBatch fills pads[i] — and macOTPs[i], when macOTPs is non-nil —
// for each (counters[i], addrs[i]) pair, batching the whole batch's
// AES (six blocks per pair) into one EncryptBlocks call. pads and
// macOTPs are caller-owned (len >= len(counters)); s amortizes the AES
// buffers. No caller slice is retained.
func (c *CounterMode) PadBatch(counters, addrs []uint64, pads []Block, macOTPs []mix.Word, s *BatchScratch) {
	n := len(counters)
	if len(addrs) != n {
		panic("cipher: PadBatch counters/addrs length mismatch")
	}
	if len(pads) < n || (macOTPs != nil && len(macOTPs) < n) {
		panic("cipher: PadBatch output shorter than input")
	}
	t0 := c.padProbe.Start()
	in, out := s.grow(n * padBlocks * 16)
	for i := 0; i < n; i++ {
		fillPadInputs(in[i*padBlocks*16:(i+1)*padBlocks*16], counters[i], addrs[i], padBlocks)
	}
	c.key.EncryptBlocks(out, in)
	for i := 0; i < n; i++ {
		base := i * padBlocks * 16
		ctrAES := mix.FromBytes([16]byte(out[base : base+16]))
		for j := 0; j < WordsPerBlock; j++ {
			w := c.combine(ctrAES, mix.FromBytes([16]byte(out[base+16*(j+1):base+16*(j+2)])))
			pads[i].SetWord(j, w.Bytes())
		}
		if macOTPs != nil {
			macOTPs[i] = c.combine(ctrAES, mix.FromBytes([16]byte(out[base+16*(WordsPerBlock+1):base+16*(WordsPerBlock+2)])))
		}
	}
	c.padProbe.DoneN(t0, n)
}

// Encrypt XORs the plaintext with the pad. Decryption is identical.
func (c *CounterMode) Encrypt(counter, addr uint64, plain Block) Block {
	return plain.XOR(c.Pad(counter, addr))
}

// Decrypt inverts Encrypt. Because the pad depends only on (counter,
// addr), it can be ready before the data arrives — the core of the
// paper's latency advantage.
func (c *CounterMode) Decrypt(counter, addr uint64, ct Block) Block {
	return ct.XOR(c.Pad(counter, addr))
}

// MAC computes the 64-bit counter-mode MAC: a truncated OTP XORed with
// a GF(2^64) dot product over the plaintext words and the
// EncryptionMetadata (paper §II-B and §IV-C; the counter value is the
// EncryptionMetadata in counter mode, so it enters through both the
// OTP and the dot product).
func (c *CounterMode) MAC(counter, addr uint64, plain Block, encMeta uint32) uint64 {
	// A dedicated OTP word (index WordsPerBlock, beyond the data
	// words) keeps the MAC pad independent of the data pads.
	return c.MACFromOTP(c.OTP(counter, addr, WordsPerBlock), plain, encMeta)
}

// MACFromOTP is MAC with the dedicated OTP word already in hand (the
// last word PadWithMAC and PadBatch emit), so a verified read pays for
// that AES exactly once.
func (c *CounterMode) MACFromOTP(otp mix.Word, plain Block, encMeta uint32) uint64 {
	t0 := c.macProbe.Start()
	words := plain.Words64()
	var inputs [9]uint64
	copy(inputs[:], words[:])
	inputs[8] = uint64(encMeta)
	m := otp.Lo ^ gf.DotProduct(inputs[:], c.macKeys)
	c.macProbe.Done(t0)
	return m
}

package cipher

import (
	"bytes"
	"testing"

	"counterlight/internal/crypto/aes"
)

// FuzzCipherBackends cross-checks every AES backend against the
// reference implementation on the full cipher surface: counterless
// Encrypt/Decrypt/MAC and counter-mode Pad/PadWithMAC/Encrypt/MAC, for
// fuzzed keys, addresses, counters, and block contents. Any divergence
// between backends is a correctness bug in the faster backend (or in
// the batching glue), so the target fails loudly on the first mismatch.
func FuzzCipherBackends(f *testing.F) {
	f.Add([]byte("0123456789abcdef"), uint64(0), uint64(0), []byte(""), uint32(0))
	f.Add([]byte("counter-light-key-material!!...."), uint64(64), uint64(7), []byte("attack at dawn"), uint32(7))
	f.Add([]byte{0xff}, uint64(1<<40), uint64(1<<32-2), bytes.Repeat([]byte{0xa5}, 64), uint32(1<<32-1))
	f.Fuzz(func(t *testing.T, keyMat []byte, addr, counter uint64, data []byte, encMeta uint32) {
		// Derive the three key inputs from the fuzzed material: key
		// length cycles through 128/192/256-bit AES.
		keyLen := 16 + 8*(len(keyMat)%3)
		dataKey := make([]byte, keyLen)
		tweakKey := make([]byte, keyLen)
		macSecret := uint64(0x5eed)
		for i := 0; i < keyLen; i++ {
			if len(keyMat) > 0 {
				dataKey[i] = keyMat[i%len(keyMat)]
			}
			tweakKey[i] = dataKey[i] ^ 0x5c
			macSecret = macSecret*131 + uint64(dataKey[i])
		}
		var plain Block
		copy(plain[:], data)

		refCls, err := NewCounterlessBackend(aes.BackendRef, dataKey, tweakKey, []byte("fuzz-mac"))
		if err != nil {
			t.Fatal(err)
		}
		refCm, err := NewCounterModeBackend(aes.BackendRef, dataKey, macSecret, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantCt := refCls.Encrypt(addr, plain)
		wantClsMAC := refCls.MAC(addr, wantCt, encMeta)
		wantPad := refCm.Pad(counter, addr)
		wantCmCt := refCm.Encrypt(counter, addr, plain)
		wantCmMAC := refCm.MAC(counter, addr, plain, encMeta)
		wantCtrAES := refCm.CounterAES(counter)

		for _, backend := range aes.BackendNames() {
			cls, err := NewCounterlessBackend(backend, dataKey, tweakKey, []byte("fuzz-mac"))
			if err != nil {
				t.Fatal(err)
			}
			cm, err := NewCounterModeBackend(backend, dataKey, macSecret, nil)
			if err != nil {
				t.Fatal(err)
			}
			if ct := cls.Encrypt(addr, plain); ct != wantCt {
				t.Errorf("%s: Counterless.Encrypt diverges from ref", backend)
			}
			if got := cls.Decrypt(addr, wantCt); got != plain {
				t.Errorf("%s: Counterless.Decrypt(Encrypt(p)) != p", backend)
			}
			if mac := cls.MAC(addr, wantCt, encMeta); mac != wantClsMAC {
				t.Errorf("%s: Counterless.MAC diverges from ref", backend)
			}
			if pad := cm.Pad(counter, addr); pad != wantPad {
				t.Errorf("%s: CounterMode.Pad diverges from ref", backend)
			}
			pad, otp := cm.PadWithMAC(counter, addr)
			if pad != wantPad {
				t.Errorf("%s: PadWithMAC pad diverges from Pad", backend)
			}
			if want := cm.OTP(counter, addr, WordsPerBlock); otp != want {
				t.Errorf("%s: PadWithMAC OTP diverges from OTP", backend)
			}
			if ct := cm.Encrypt(counter, addr, plain); ct != wantCmCt {
				t.Errorf("%s: CounterMode.Encrypt diverges from ref", backend)
			}
			if got := cm.Decrypt(counter, addr, wantCmCt); got != plain {
				t.Errorf("%s: CounterMode.Decrypt(Encrypt(p)) != p", backend)
			}
			if mac := cm.MAC(counter, addr, plain, encMeta); mac != wantCmMAC {
				t.Errorf("%s: CounterMode.MAC diverges from ref", backend)
			}
			if got := cm.MACFromOTP(otp, plain, encMeta); got != wantCmMAC {
				t.Errorf("%s: MACFromOTP diverges from MAC", backend)
			}
			if got := cm.CounterAES(counter); got != wantCtrAES {
				t.Errorf("%s: CounterAES diverges from ref", backend)
			}
		}
	})
}

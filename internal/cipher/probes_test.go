package cipher

import (
	"testing"

	"counterlight/internal/crypto/mix"
	"counterlight/internal/obs/prof"
)

// TestProbesObserveAndPreserveOutput: attaching probes must leave
// every output bit-identical and must actually count the hot-path
// calls (batched pads count per pad, not per call).
func TestProbesObserveAndPreserveOutput(t *testing.T) {
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(i)
	}
	plain, err := NewCounterMode(key, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	probed, err := NewCounterMode(key, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	pf := prof.New(probed.Backend())
	probed.SetProbes(pf.PadBatch, pf.MAC)

	const n = 32
	counters := make([]uint64, n)
	addrs := make([]uint64, n)
	for i := range counters {
		counters[i] = uint64(i + 1)
		addrs[i] = uint64(i) * 64
	}
	var s1, s2 BatchScratch
	padsA := make([]Block, n)
	padsB := make([]Block, n)
	otpsA := make([]mix.Word, n)
	otpsB := make([]mix.Word, n)
	plain.PadBatch(counters, addrs, padsA, otpsA, &s1)
	probed.PadBatch(counters, addrs, padsB, otpsB, &s2)
	for i := range padsA {
		if padsA[i] != padsB[i] || otpsA[i] != otpsB[i] {
			t.Fatalf("pad %d differs with probes attached", i)
		}
	}
	// One batched call is one observation; DoneN normalizes the
	// elapsed time to per-pad latency.
	if got := pf.PadBatch.Count(); got != 1 {
		t.Fatalf("pad probe counted %d, want 1 (one observation per batch call)", got)
	}

	var blk Block
	blk[0] = 0xAB
	if plain.MAC(3, 64, blk, 3) != probed.MAC(3, 64, blk, 3) {
		t.Fatal("MAC differs with probes attached")
	}
	if pf.MAC.Count() == 0 {
		t.Fatal("MAC probe never fired")
	}

	// Counterless MAC probe.
	k2 := make([]byte, 16)
	cl, err := NewCounterless(key, k2, []byte("mac-key"))
	if err != nil {
		t.Fatal(err)
	}
	cl2, err := NewCounterless(key, k2, []byte("mac-key"))
	if err != nil {
		t.Fatal(err)
	}
	cl2.SetMACProbe(pf.MAC)
	before := pf.MAC.Count()
	if cl.MAC(64, blk, 7) != cl2.MAC(64, blk, 7) {
		t.Fatal("counterless MAC differs with probe attached")
	}
	if pf.MAC.Count() != before+1 {
		t.Fatal("counterless MAC probe never fired")
	}
}

// TestProbedPadNoAllocs extends the cipher alloc gate to the probed
// configuration: sampling must not add steady-state allocations.
func TestProbedPadNoAllocs(t *testing.T) {
	key := make([]byte, 16)
	cm, err := NewCounterMode(key, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	pf := prof.New(cm.Backend())
	cm.SetProbes(pf.PadBatch, pf.MAC)

	var ctr uint64
	if allocs := testing.AllocsPerRun(500, func() {
		ctr++
		pad, otp := cm.PadWithMAC(ctr, 64)
		var blk Block
		blk[0] = pad[0]
		_ = cm.MACFromOTP(otp, blk, uint32(ctr))
	}); allocs != 0 {
		t.Errorf("probed PadWithMAC+MAC allocates %.1f per op, want 0", allocs)
	}
}

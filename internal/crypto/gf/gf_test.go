package gf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestClMul64Basics(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{2, 2, 0, 4},
		{0xffffffffffffffff, 1, 0, 0xffffffffffffffff},
		{1 << 63, 2, 1, 0},
		{1 << 63, 1 << 63, 1 << 62, 0},
	}
	for _, c := range cases {
		hi, lo := ClMul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("ClMul64(%#x,%#x) = (%#x,%#x), want (%#x,%#x)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestClMulCommutative(t *testing.T) {
	f := func(a, b uint64) bool {
		h1, l1 := ClMul64(a, b)
		h2, l2 := ClMul64(b, a)
		return h1 == h2 && l1 == l2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Carry-less multiplication distributes over XOR.
func TestClMulDistributive(t *testing.T) {
	f := func(a, b, c uint64) bool {
		h1, l1 := ClMul64(a, b^c)
		h2, l2 := ClMul64(a, b)
		h3, l3 := ClMul64(a, c)
		return h1 == (h2^h3) && l1 == (l2^l3)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulFieldAxioms(t *testing.T) {
	one := func(a uint64) bool { return Mul(a, 1) == a && Mul(1, a) == a }
	if err := quick.Check(one, nil); err != nil {
		t.Error("identity:", err)
	}
	comm := func(a, b uint64) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(comm, nil); err != nil {
		t.Error("commutativity:", err)
	}
	assoc := func(a, b, c uint64) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
	if err := quick.Check(assoc, &quick.Config{MaxCount: 200}); err != nil {
		t.Error("associativity:", err)
	}
	distr := func(a, b, c uint64) bool { return Mul(a, b^c) == Mul(a, b)^Mul(a, c) }
	if err := quick.Check(distr, nil); err != nil {
		t.Error("distributivity:", err)
	}
	zero := func(a uint64) bool { return Mul(a, 0) == 0 }
	if err := quick.Check(zero, nil); err != nil {
		t.Error("zero:", err)
	}
}

// In a field there are no zero divisors: a,b != 0 => a*b != 0.
func TestMulNoZeroDivisors(t *testing.T) {
	f := func(a, b uint64) bool {
		if a == 0 || b == 0 {
			return true
		}
		return Mul(a, b) != 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Fermat: a^(2^64-1) == 1 for a != 0, i.e. a^(2^64) == a.
// Pow's exponent is uint64 so we check a^(2^64 - 1) * a == a via
// Pow(a, 2^64-1) == 1.
func TestMulFermat(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		a := rng.Uint64()
		if a == 0 {
			continue
		}
		if got := Pow(a, ^uint64(0)); got != 1 {
			t.Fatalf("a^(2^64-1) = %#x, want 1 (a=%#x)", got, a)
		}
	}
}

func TestPow(t *testing.T) {
	if Pow(5, 0) != 1 {
		t.Error("a^0 != 1")
	}
	if Pow(5, 1) != 5 {
		t.Error("a^1 != a")
	}
	if Pow(5, 2) != Mul(5, 5) {
		t.Error("a^2 != a*a")
	}
	if Pow(5, 5) != Mul(Mul(Mul(Mul(5, 5), 5), 5), 5) {
		t.Error("a^5 wrong")
	}
}

func TestDotProduct(t *testing.T) {
	data := []uint64{1, 2, 3}
	keys := []uint64{10, 20, 30}
	want := Mul(1, 10) ^ Mul(2, 20) ^ Mul(3, 30)
	if got := DotProduct(data, keys); got != want {
		t.Errorf("DotProduct = %#x, want %#x", got, want)
	}
}

func TestDotProductPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on length mismatch")
		}
	}()
	DotProduct([]uint64{1}, []uint64{1, 2})
}

// A dot-product MAC with power keys is a polynomial evaluation; it must
// detect any single-word change (no two distinct single-word messages
// collide under a random nonzero key).
func TestDotProductDetectsChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	keys := KeySchedule(rng.Uint64(), 8)
	data := make([]uint64, 8)
	for i := range data {
		data[i] = rng.Uint64()
	}
	base := DotProduct(data, keys)
	for i := 0; i < 8; i++ {
		mod := append([]uint64(nil), data...)
		mod[i] ^= 1 << uint(rng.Intn(64))
		if DotProduct(mod, keys) == base {
			t.Errorf("single-bit change in word %d not detected", i)
		}
	}
}

func TestKeySchedule(t *testing.T) {
	keys := KeySchedule(7, 4)
	if keys[0] != 7 {
		t.Errorf("keys[0] = %#x, want 7", keys[0])
	}
	if keys[1] != Mul(7, 7) {
		t.Error("keys[1] != k^2")
	}
	if keys[3] != Pow(7, 4) {
		t.Error("keys[3] != k^4")
	}
	// Zero secret must still give usable (nonzero) keys.
	for i, k := range KeySchedule(0, 4) {
		if k == 0 {
			t.Errorf("KeySchedule(0)[%d] = 0", i)
		}
	}
}

func BenchmarkMul(b *testing.B) {
	x := uint64(0x123456789abcdef0)
	for i := 0; i < b.N; i++ {
		x = Mul(x, 0x9e3779b97f4a7c15)
	}
	_ = x
}

func BenchmarkDotProduct8(b *testing.B) {
	keys := KeySchedule(12345, 8)
	data := make([]uint64, 8)
	for i := range data {
		data[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	for i := 0; i < b.N; i++ {
		DotProduct(data, keys)
	}
}

// Package gf implements carry-less multiplication and arithmetic in
// GF(2^64), used by the counter-mode MAC construction.
//
// Under counter mode (paper §II-B, after SGX1's MEE), each block's MAC
// is the bitwise XOR of a truncated one-time pad with a truncated
// Galois-field dot product of the plaintext words and secret keys:
//
//	MAC = trunc(OTP) ⊕ Σ_i (D_i ⊗ K_i)   over GF(2^64)
//
// This keeps the MAC unforgeable without knowing the key while letting
// the expensive AES part (the OTP) be computed from the counter alone.
package gf

import "math/bits"

// reductionPoly is the low half of the irreducible polynomial
// x^64 + x^4 + x^3 + x + 1 used to reduce products into GF(2^64).
const reductionPoly = 0x1b

// ClMul64 returns the 128-bit carry-less product of a and b as
// (hi, lo).
func ClMul64(a, b uint64) (hi, lo uint64) {
	for i := 0; i < 64; i++ {
		if b&(1<<i) != 0 {
			lo ^= a << i
			if i != 0 {
				hi ^= a >> (64 - i)
			}
		}
	}
	return hi, lo
}

// Mul multiplies two elements of GF(2^64) modulo
// x^64 + x^4 + x^3 + x + 1.
func Mul(a, b uint64) uint64 {
	hi, lo := ClMul64(a, b)
	// Reduce the high 64 bits: x^64 ≡ x^4 + x^3 + x + 1.
	// Folding hi once can carry out at most 4 bits, so fold twice.
	h2, l2 := ClMul64(hi, reductionPoly)
	lo ^= l2
	_, l3 := ClMul64(h2, reductionPoly)
	return lo ^ l3
}

// Add adds two field elements (XOR).
func Add(a, b uint64) uint64 { return a ^ b }

// Pow raises a to the k-th power in GF(2^64) by square-and-multiply.
func Pow(a uint64, k uint64) uint64 {
	result := uint64(1)
	base := a
	for k > 0 {
		if k&1 == 1 {
			result = Mul(result, base)
		}
		base = Mul(base, base)
		k >>= 1
	}
	return result
}

// DotProduct computes Σ_i data[i] ⊗ keys[i] over GF(2^64). The two
// slices must have equal length. This models the MAC dot product whose
// eight partial products are computed in parallel in hardware
// (paper §IV-D, "the eight products summed together ... can be
// calculated in parallel").
func DotProduct(data, keys []uint64) uint64 {
	if len(data) != len(keys) {
		panic("gf: dot product length mismatch")
	}
	var acc uint64
	for i := range data {
		acc ^= Mul(data[i], keys[i])
	}
	return acc
}

// KeySchedule derives n MAC keys from a single secret as successive
// powers k, k^2, k^3, ... (a standard universal-hash key schedule; any
// nonzero secret yields nonzero keys).
func KeySchedule(secret uint64, n int) []uint64 {
	if secret == 0 {
		secret = 1 // zero would make the MAC ignore all data words
	}
	keys := make([]uint64, n)
	cur := uint64(1)
	for i := 0; i < n; i++ {
		cur = Mul(cur, secret)
		keys[i] = cur
	}
	return keys
}

// Weight returns the Hamming weight of a field element, used by tests
// to sanity-check diffusion properties.
func Weight(a uint64) int { return bits.OnesCount64(a) }

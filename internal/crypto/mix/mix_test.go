package mix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"counterlight/internal/crypto/aes"
)

func TestWordBytesRoundTrip(t *testing.T) {
	f := func(hi, lo uint64) bool {
		w := Word{hi, lo}
		return FromBytes(w.Bytes()) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotL(t *testing.T) {
	w := Word{0x8000000000000000, 0x0000000000000001}
	if got := w.RotL(0); got != w {
		t.Errorf("RotL(0) changed value: %v", got)
	}
	// Bit 127 wraps to bit 0; bit 0 moves to bit 1.
	if got := w.RotL(1); got != (Word{0x0000000000000000, 0x0000000000000003}) {
		t.Errorf("RotL(1) = %+v", got)
	}
	if got := w.RotL(64); got != (Word{0x0000000000000001, 0x8000000000000000}) {
		t.Errorf("RotL(64) = %+v", got)
	}
	if got := w.RotL(128); got != w {
		t.Errorf("RotL(128) != identity: %+v", got)
	}
}

// RotL composes additively: RotL(a).RotL(b) == RotL(a+b).
func TestRotLComposes(t *testing.T) {
	f := func(hi, lo uint64, a, b uint8) bool {
		w := Word{hi, lo}
		return w.RotL(uint(a)).RotL(uint(b)) == w.RotL(uint(a)+uint(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// RotL preserves popcount (it is a permutation of bits).
func TestRotLPreservesBits(t *testing.T) {
	f := func(hi, lo uint64, n uint8) bool {
		w := Word{hi, lo}
		r := w.RotL(uint(n))
		return popcount(w) == popcount(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func popcount(w Word) int {
	n := 0
	for x := w.Hi; x != 0; x &= x - 1 {
		n++
	}
	for x := w.Lo; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Linear must be linear: L(a^b, c) == L(a,c) ^ L(b,c). This is the
// precise weakness the paper calls out in RMCC's combiner.
func TestLinearIsLinear(t *testing.T) {
	f := func(a1h, a1l, a2h, a2l, ch, cl uint64) bool {
		a1, a2, c := Word{a1h, a1l}, Word{a2h, a2l}, Word{ch, cl}
		left := Linear(a1.XOR(a2), c)
		right := Linear(a1, c).XOR(Linear(a2, c))
		return left == right
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Nonlinear must NOT be linear. We verify that the linearity relation
// fails for essentially all random triples.
func TestNonlinearIsNotLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	violations := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		a1 := Word{rng.Uint64(), rng.Uint64()}
		a2 := Word{rng.Uint64(), rng.Uint64()}
		c := Word{rng.Uint64(), rng.Uint64()}
		left := Nonlinear(c, a1.XOR(a2))
		right := Nonlinear(c, a1).XOR(Nonlinear(c, a2))
		if left != right {
			violations++
		}
	}
	if violations < trials-1 {
		t.Errorf("Nonlinear behaved linearly in %d/%d trials", trials-violations, trials)
	}
}

// Nonlinear must be deterministic and depend on both inputs.
func TestNonlinearDependsOnBothInputs(t *testing.T) {
	c := Word{1, 2}
	a := Word{3, 4}
	base := Nonlinear(c, a)
	if Nonlinear(c, a) != base {
		t.Error("not deterministic")
	}
	if Nonlinear(Word{1, 3}, a) == base {
		t.Error("ignores counter input")
	}
	if Nonlinear(c, Word{3, 5}) == base {
		t.Error("ignores address input")
	}
}

// Avalanche: flipping one input bit of Nonlinear should flip many
// output bits on average (diffusion via barrel shift + S-box).
func TestNonlinearAvalanche(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	totalDiff := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		c := Word{rng.Uint64(), rng.Uint64()}
		a := Word{rng.Uint64(), rng.Uint64()}
		base := Nonlinear(c, a)
		bit := uint(rng.Intn(128))
		c2 := c
		if bit < 64 {
			c2.Lo ^= 1 << bit
		} else {
			c2.Hi ^= 1 << (bit - 64)
		}
		totalDiff += popcount(base.XOR(Nonlinear(c2, a)))
	}
	avg := float64(totalDiff) / trials
	// The single S-box layer gives partial avalanche; require a
	// meaningful spread, not cryptographic perfection.
	if avg < 8 {
		t.Errorf("average output flip = %.1f bits, want >= 8", avg)
	}
}

// The combiner must be invertible given the counter input is known
// only through AES — but for a fixed counter-AES value, different
// addresses must give different OTPs (no OTP reuse across addresses).
func TestNonlinearNoOTPCollisions(t *testing.T) {
	c := Word{0xdeadbeef, 0xcafebabe}
	seen := map[Word]uint64{}
	for addr := uint64(0); addr < 2000; addr++ {
		a := Word{addr * 0x9e3779b97f4a7c15, addr}
		otp := Nonlinear(c, a)
		if prev, ok := seen[otp]; ok {
			t.Fatalf("OTP collision between addr inputs %d and %d", prev, addr)
		}
		seen[otp] = addr
	}
}

func TestSBoxMatchesAES(t *testing.T) {
	for i := 0; i < 256; i++ {
		if SBox(byte(i)) != aes.SBox(byte(i)) {
			t.Fatalf("SBox(%#x) mismatch", i)
		}
	}
	if SBox(0) != 0x63 {
		t.Errorf("SBox(0) = %#x, want 0x63", SBox(0))
	}
}

func TestLinearKnownValues(t *testing.T) {
	// Multiplying by 1 (lo bit set) returns the counter word.
	c := Word{0x0123456789abcdef, 0xfedcba9876543210}
	if got := Linear(c, Word{0, 1}); got != c {
		t.Errorf("Linear(c, 1) = %+v, want %+v", got, c)
	}
	// Multiplying by 2 shifts left by one (mod 2^128 truncation).
	want := Word{c.Hi<<1 | c.Lo>>63, c.Lo << 1}
	if got := Linear(c, Word{0, 2}); got != want {
		t.Errorf("Linear(c, 2) = %+v, want %+v", got, want)
	}
	// Multiplying by 0 gives 0.
	if got := Linear(c, Word{0, 0}); got != (Word{}) {
		t.Errorf("Linear(c, 0) = %+v, want zero", got)
	}
}

func BenchmarkLinear(b *testing.B) {
	c := Word{0x0123456789abcdef, 0xfedcba9876543210}
	a := Word{0x1111111111111111, 0x2222222222222222}
	for i := 0; i < b.N; i++ {
		c = Linear(c, a)
	}
	_ = c
}

func BenchmarkNonlinear(b *testing.B) {
	c := Word{0x0123456789abcdef, 0xfedcba9876543210}
	a := Word{0x1111111111111111, 0x2222222222222222}
	for i := 0; i < b.N; i++ {
		c = Nonlinear(c, a)
	}
	_ = c
}

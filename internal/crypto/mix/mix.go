// Package mix implements the logic that combines the counter-only AES
// result with the address-only AES result to form the final one-time
// pad (paper Fig. 15).
//
// RMCC combines the two 128-bit AES outputs with carry-less
// multiplication and truncation — a linear operation (Fig. 15a).
// Counter-light replaces it with barrel shifting for diffusion and a
// nonlinear S-box layer for confusion (Fig. 15b), because linearity
// makes the algebraic system of §IV-F much easier to set up and solve.
//
// Both variants are implemented so that internal/attack can contrast
// their algebraic complexity and the ablation benches can compare them.
package mix

import "counterlight/internal/crypto/aes"

// Word is a 128-bit value handled as (hi, lo) uint64 halves.
type Word struct {
	Hi, Lo uint64
}

// XOR returns w ^ o.
func (w Word) XOR(o Word) Word { return Word{w.Hi ^ o.Hi, w.Lo ^ o.Lo} }

// RotL rotates the 128-bit word left by n bits (the barrel shifter).
func (w Word) RotL(n uint) Word {
	n %= 128
	if n == 0 {
		return w
	}
	if n == 64 {
		return Word{w.Lo, w.Hi}
	}
	if n < 64 {
		return Word{
			Hi: w.Hi<<n | w.Lo>>(64-n),
			Lo: w.Lo<<n | w.Hi>>(64-n),
		}
	}
	n -= 64
	return Word{
		Hi: w.Lo<<n | w.Hi>>(64-n),
		Lo: w.Hi<<n | w.Lo>>(64-n),
	}
}

// Bytes returns the big-endian byte representation.
func (w Word) Bytes() [16]byte {
	var b [16]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(w.Hi >> (56 - 8*i))
		b[8+i] = byte(w.Lo >> (56 - 8*i))
	}
	return b
}

// FromBytes parses a big-endian 16-byte value.
func FromBytes(b [16]byte) Word {
	var w Word
	for i := 0; i < 8; i++ {
		w.Hi = w.Hi<<8 | uint64(b[i])
		w.Lo = w.Lo<<8 | uint64(b[8+i])
	}
	return w
}

// Linear is RMCC's combining function (Fig. 15a): the low 128 bits of
// the carry-less product of the counter-AES and address-AES results.
// Every output bit is an XOR of products of one counter bit and one
// address bit — linear in each input given the other, which is what
// the paper criticizes.
func Linear(counterAES, addrAES Word) Word {
	// 128x128 carry-less multiply, truncated to the low 128 bits.
	var hi, lo uint64
	shiftedHi, shiftedLo := counterAES.Hi, counterAES.Lo
	mulBit := func(bit uint64) {
		if bit != 0 {
			hi ^= shiftedHi
			lo ^= shiftedLo
		}
		// shift multiplicand left by one within 128 bits
		shiftedHi = shiftedHi<<1 | shiftedLo>>63
		shiftedLo <<= 1
	}
	for i := 0; i < 64; i++ {
		mulBit(addrAES.Lo >> i & 1)
	}
	for i := 0; i < 64; i++ {
		mulBit(addrAES.Hi >> i & 1)
	}
	return Word{hi, lo}
}

// Nonlinear is Counter-light's combining function (Fig. 15b):
//
//  1. barrel-shift the counter-AES result by an amount taken from the
//     address-AES result and XOR with the address-AES result,
//  2. spread each bit across the word with two fixed rotations
//     (diffusion: t ^= rotl(t,29) ^ rotl(t,71)),
//  3. pass every byte through the AES S-box (confusion),
//  4. diffuse once more and barrel-shift by a second address-derived
//     amount, folding the original counter-AES result back in.
//
// The S-box layer makes every output bit a high-degree boolean
// function of the inputs, defeating the linear-system attack of §IV-F;
// the rotation network ensures a single flipped input bit reaches
// several S-boxes (avalanche), which the tests verify.
func Nonlinear(counterAES, addrAES Word) Word {
	shift1 := uint(addrAES.Lo & 127)
	shift2 := uint(addrAES.Hi & 127)
	t := counterAES.RotL(shift1).XOR(addrAES)
	t = t.XOR(t.RotL(29)).XOR(t.RotL(71))
	tb := t.Bytes()
	for i := range tb {
		tb[i] = SBox(tb[i])
	}
	v := FromBytes(tb)
	v = v.XOR(v.RotL(13))
	return v.RotL(shift2).XOR(counterAES)
}

// SBox exposes the AES S-box for the attack model, which needs the
// exact boolean circuit of the combining logic.
func SBox(b byte) byte { return aes.SBox(b) }

package aes

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestBackendsBitExact drives every registered backend over random
// keys and blocks and requires byte-identical output: FIPS-197 AES is
// AES, whichever implementation computes it.
func TestBackendsBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, keyLen := range []int{16, 24, 32} {
		for trial := 0; trial < 50; trial++ {
			key := make([]byte, keyLen)
			rng.Read(key)
			ref, err := NewBackend(BackendRef, key)
			if err != nil {
				t.Fatal(err)
			}
			var pt [BlockSize]byte
			rng.Read(pt[:])
			var want [BlockSize]byte
			ref.Encrypt(want[:], pt[:])
			for _, name := range BackendNames() {
				b, err := NewBackend(name, key)
				if err != nil {
					t.Fatalf("NewBackend(%q): %v", name, err)
				}
				var ct [BlockSize]byte
				b.Encrypt(ct[:], pt[:])
				if ct != want {
					t.Fatalf("%s: keyLen=%d Encrypt diverges from ref", name, keyLen)
				}
				var back [BlockSize]byte
				b.Decrypt(back[:], ct[:])
				if back != pt {
					t.Fatalf("%s: keyLen=%d Decrypt does not invert Encrypt", name, keyLen)
				}
			}
		}
	}
}

// TestBackendBatchMatchesSingle checks EncryptBlocks/DecryptBlocks
// against a loop of single-block calls, including the dst == src
// aliasing the contract allows.
func TestBackendBatchMatchesSingle(t *testing.T) {
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(i * 7)
	}
	src := make([]byte, 6*BlockSize)
	for i := range src {
		src[i] = byte(i * 31)
	}
	for _, name := range BackendNames() {
		b, err := NewBackend(name, key)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, len(src))
		for i := 0; i < len(src); i += BlockSize {
			b.Encrypt(want[i:], src[i:])
		}
		got := make([]byte, len(src))
		b.EncryptBlocks(got, src)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: EncryptBlocks != per-block Encrypt", name)
		}
		// In-place batch.
		inplace := append([]byte(nil), src...)
		b.EncryptBlocks(inplace, inplace)
		if !bytes.Equal(inplace, want) {
			t.Fatalf("%s: in-place EncryptBlocks diverges", name)
		}
		b.DecryptBlocks(inplace, inplace)
		if !bytes.Equal(inplace, src) {
			t.Fatalf("%s: DecryptBlocks does not invert EncryptBlocks", name)
		}
		if b.Rounds() != 10 {
			t.Fatalf("%s: Rounds() = %d for AES-128, want 10", name, b.Rounds())
		}
	}
}

// TestBackendRegistry pins the registry surface: the three names, the
// default, and loud errors for unknown names and bad keys.
func TestBackendRegistry(t *testing.T) {
	want := []string{BackendRef, BackendStdlib, BackendTTable}
	got := BackendNames()
	if len(got) != len(want) {
		t.Fatalf("BackendNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BackendNames() = %v, want %v", got, want)
		}
	}
	if _, err := NewBackend("nope", make([]byte, 16)); err == nil {
		t.Fatal("NewBackend(nope) did not error")
	}
	if err := SetDefaultBackend("nope"); err == nil {
		t.Fatal("SetDefaultBackend(nope) did not error")
	}
	for _, name := range BackendNames() {
		if _, err := NewBackend(name, make([]byte, 7)); err == nil {
			t.Fatalf("%s: 7-byte key did not error", name)
		}
	}
	old := DefaultBackend()
	defer func() {
		if err := SetDefaultBackend(old); err != nil {
			t.Fatal(err)
		}
	}()
	if err := SetDefaultBackend(BackendStdlib); err != nil {
		t.Fatal(err)
	}
	b, err := NewBackend("", make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.(stdBackend); !ok {
		t.Fatalf("empty name resolved to %T, want stdBackend", b)
	}
}

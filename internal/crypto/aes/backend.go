package aes

// The backend seam: every consumer of AES in this repository (the XTS
// and CTR engines in internal/cipher, and through them the functional
// engine and the mcpool shards) reaches the block cipher through the
// Backend interface instead of a concrete implementation. Three
// backends register here:
//
//   - "ref": the textbook round-by-round cipher (encryptSlow), the
//     bit-exactness anchor everything else is compared against. The
//     differential oracle in internal/check always recomputes through
//     this backend regardless of what the engine under test runs.
//   - "ttable": the T-table path (encryptFast), the repo's historical
//     default — selecting it reproduces the seed behavior bit for bit
//     at the seed's speed.
//   - "stdlib": crypto/aes from the standard library, which dispatches
//     to AES-NI/NEON on real hardware — the hardware-class pad
//     generator the paper's latency model assumes.
//
// All three are bit-exact (FIPS-197 AES is AES); the conformance
// goldens, FuzzCipherBackends, and the check harness's independent
// recomputation enforce that continuously.

import (
	stdaes "crypto/aes"
	stdcipher "crypto/cipher"
	"fmt"
	"os"
	"sort"
)

// Backend is a block cipher with an expanded key schedule. Encrypt and
// Decrypt process exactly one 16-byte block; EncryptBlocks and
// DecryptBlocks process len/16 independent blocks in one call, the
// entry point batched pad generation rides on. dst and src must be
// multiples of BlockSize and may alias exactly (dst == src) but not
// partially overlap. Implementations never retain dst or src.
type Backend interface {
	// Rounds reports the AES round count (10/12/14), the latency
	// model's cipher-delay input.
	Rounds() int
	Encrypt(dst, src []byte)
	Decrypt(dst, src []byte)
	EncryptBlocks(dst, src []byte)
	DecryptBlocks(dst, src []byte)
}

// Registered backend names.
const (
	BackendRef    = "ref"
	BackendTTable = "ttable"
	BackendStdlib = "stdlib"
)

// builders maps a backend name to its constructor. The map is written
// only by this file's init; lookups are read-only afterwards.
var builders = map[string]func(key []byte) (Backend, error){
	BackendRef: func(key []byte) (Backend, error) {
		c, err := New(key)
		if err != nil {
			return nil, err
		}
		return refBackend{c}, nil
	},
	BackendTTable: func(key []byte) (Backend, error) {
		c, err := New(key)
		if err != nil {
			return nil, err
		}
		return ttableBackend{c}, nil
	},
	BackendStdlib: func(key []byte) (Backend, error) {
		b, err := stdaes.NewCipher(key)
		if err != nil {
			return nil, fmt.Errorf("aes: %w", err)
		}
		return stdBackend{b: b, rounds: 6 + len(key)/4}, nil
	},
}

// defaultBackend is the process-wide backend used when a caller
// passes an empty name. It starts from the CL_CIPHER environment
// variable (empty means "ttable", the seed behavior) and is overridden
// by the CLIs' -cipher flag via SetDefaultBackend. Set it before
// building engines; it is not synchronized for concurrent mutation.
var defaultBackend = func() string {
	if v := os.Getenv("CL_CIPHER"); v != "" {
		return v
	}
	return BackendTTable
}()

// DefaultBackend returns the current process-wide default backend
// name. The value is reported verbatim: an unknown name (e.g. a typo
// in CL_CIPHER) surfaces as a loud NewBackend error at engine
// construction instead of a silent fallback.
func DefaultBackend() string { return defaultBackend }

// SetDefaultBackend installs the process-wide default, rejecting
// unknown names. Call it once at startup, before engines are built.
func SetDefaultBackend(name string) error {
	if _, ok := builders[name]; !ok {
		return fmt.Errorf("aes: unknown cipher backend %q (have %v)", name, BackendNames())
	}
	defaultBackend = name
	return nil
}

// BackendNames lists the registered backends, sorted.
func BackendNames() []string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewBackend builds the named backend for a 16, 24, or 32 byte key.
// An empty name selects the process default (DefaultBackend).
func NewBackend(name string, key []byte) (Backend, error) {
	if name == "" {
		name = defaultBackend
	}
	build, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("aes: unknown cipher backend %q (have %v)", name, BackendNames())
	}
	return build(key)
}

// checkBlocks validates a batch call's geometry once, so the per-block
// loops can index without re-checking.
func checkBlocks(dst, src []byte) int {
	if len(src)%BlockSize != 0 || len(dst) < len(src) {
		panic("aes: batch length not a multiple of the block size")
	}
	return len(src) / BlockSize
}

// refBackend dispatches to the textbook cipher.
type refBackend struct{ c *Cipher }

func (b refBackend) Rounds() int             { return b.c.rounds }
func (b refBackend) Encrypt(dst, src []byte) { b.c.encryptSlow(dst, src) }
func (b refBackend) Decrypt(dst, src []byte) { b.c.decryptSlow(dst, src) }

func (b refBackend) EncryptBlocks(dst, src []byte) {
	n := checkBlocks(dst, src)
	for i := 0; i < n; i++ {
		b.c.encryptSlow(dst[i*BlockSize:], src[i*BlockSize:])
	}
}

func (b refBackend) DecryptBlocks(dst, src []byte) {
	n := checkBlocks(dst, src)
	for i := 0; i < n; i++ {
		b.c.decryptSlow(dst[i*BlockSize:], src[i*BlockSize:])
	}
}

// ttableBackend dispatches to the T-table cipher.
type ttableBackend struct{ c *Cipher }

func (b ttableBackend) Rounds() int             { return b.c.rounds }
func (b ttableBackend) Encrypt(dst, src []byte) { b.c.encryptFast(dst, src) }
func (b ttableBackend) Decrypt(dst, src []byte) { b.c.decryptFast(dst, src) }

func (b ttableBackend) EncryptBlocks(dst, src []byte) { b.c.EncryptBlocks(dst, src) }
func (b ttableBackend) DecryptBlocks(dst, src []byte) { b.c.DecryptBlocks(dst, src) }

// stdBackend wraps crypto/aes, which uses the hardware AES
// instructions where the platform has them.
type stdBackend struct {
	b      stdcipher.Block
	rounds int
}

func (b stdBackend) Rounds() int             { return b.rounds }
func (b stdBackend) Encrypt(dst, src []byte) { b.b.Encrypt(dst, src) }
func (b stdBackend) Decrypt(dst, src []byte) { b.b.Decrypt(dst, src) }

func (b stdBackend) EncryptBlocks(dst, src []byte) {
	n := checkBlocks(dst, src)
	for i := 0; i < n; i++ {
		b.b.Encrypt(dst[i*BlockSize:(i+1)*BlockSize], src[i*BlockSize:(i+1)*BlockSize])
	}
}

func (b stdBackend) DecryptBlocks(dst, src []byte) {
	n := checkBlocks(dst, src)
	for i := 0; i < n; i++ {
		b.b.Decrypt(dst[i*BlockSize:(i+1)*BlockSize], src[i*BlockSize:(i+1)*BlockSize])
	}
}

package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// FIPS-197 Appendix C known-answer vectors.
func TestFIPS197Vectors(t *testing.T) {
	cases := []struct{ name, key, plain, cipher string }{
		{"AES-128", "000102030405060708090a0b0c0d0e0f",
			"00112233445566778899aabbccddeeff", "69c4e0d86a7b0430d8cdb78070b4c55a"},
		{"AES-192", "000102030405060708090a0b0c0d0e0f1011121314151617",
			"00112233445566778899aabbccddeeff", "dda97ca4864cdfe06eaf70a0ec0d7191"},
		{"AES-256", "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
			"00112233445566778899aabbccddeeff", "8ea2b7ca516745bfeafc49904b496089"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := New(unhex(t, tc.key))
			if err != nil {
				t.Fatal(err)
			}
			got := make([]byte, 16)
			c.Encrypt(got, unhex(t, tc.plain))
			if want := unhex(t, tc.cipher); !bytes.Equal(got, want) {
				t.Errorf("encrypt = %x, want %x", got, want)
			}
			back := make([]byte, 16)
			c.Decrypt(back, got)
			if want := unhex(t, tc.plain); !bytes.Equal(back, want) {
				t.Errorf("decrypt = %x, want %x", back, want)
			}
		})
	}
}

// FIPS-197 Appendix B example (AES-128 with a different key).
func TestAppendixB(t *testing.T) {
	c, err := New(unhex(t, "2b7e151628aed2a6abf7158809cf4f3c"))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	c.Encrypt(got, unhex(t, "3243f6a8885a308d313198a2e0370734"))
	if want := unhex(t, "3925841d02dc09fbdc118597196a0b32"); !bytes.Equal(got, want) {
		t.Errorf("encrypt = %x, want %x", got, want)
	}
}

func TestInvalidKeySizes(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 23, 25, 31, 33, 64} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Errorf("New with %d-byte key: want error, got nil", n)
		}
	}
}

func TestRounds(t *testing.T) {
	for _, tc := range []struct{ keyLen, rounds int }{{16, 10}, {24, 12}, {32, 14}} {
		c, err := New(make([]byte, tc.keyLen))
		if err != nil {
			t.Fatal(err)
		}
		if got := c.Rounds(); got != tc.rounds {
			t.Errorf("Rounds(keyLen=%d) = %d, want %d", tc.keyLen, got, tc.rounds)
		}
	}
}

// TestAgainstStdlib cross-checks encryption of random blocks under
// random keys against crypto/aes for all three key sizes.
func TestAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, keyLen := range []int{16, 24, 32} {
		for trial := 0; trial < 50; trial++ {
			key := make([]byte, keyLen)
			rng.Read(key)
			ours, err := New(key)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := stdaes.NewCipher(key)
			if err != nil {
				t.Fatal(err)
			}
			src := make([]byte, 16)
			rng.Read(src)
			got := make([]byte, 16)
			want := make([]byte, 16)
			ours.Encrypt(got, src)
			ref.Encrypt(want, src)
			if !bytes.Equal(got, want) {
				t.Fatalf("keyLen=%d trial=%d: encrypt mismatch: got %x want %x", keyLen, trial, got, want)
			}
			back := make([]byte, 16)
			ours.Decrypt(back, got)
			if !bytes.Equal(back, src) {
				t.Fatalf("keyLen=%d trial=%d: roundtrip mismatch", keyLen, trial)
			}
		}
	}
}

// Property: Decrypt(Encrypt(x)) == x for arbitrary keys and blocks.
func TestQuickRoundTrip(t *testing.T) {
	f := func(key [32]byte, block [16]byte, sizeSel uint8) bool {
		keyLen := []int{16, 24, 32}[int(sizeSel)%3]
		c, err := New(key[:keyLen])
		if err != nil {
			return false
		}
		return c.DecryptBlock(c.EncryptBlock(block)) == block
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: encryption is a bijection — distinct plaintexts map to
// distinct ciphertexts under the same key.
func TestQuickInjective(t *testing.T) {
	c, err := New(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b [16]byte) bool {
		if a == b {
			return true
		}
		return c.EncryptBlock(a) != c.EncryptBlock(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: flipping any single plaintext bit changes the ciphertext
// (and by avalanche, changes many bits — we check at least 30 of 128).
func TestAvalanche(t *testing.T) {
	c, err := New(unhex(t, "000102030405060708090a0b0c0d0e0f"))
	if err != nil {
		t.Fatal(err)
	}
	var base [16]byte
	rng := rand.New(rand.NewSource(7))
	rng.Read(base[:])
	ct0 := c.EncryptBlock(base)
	for bit := 0; bit < 128; bit++ {
		mod := base
		mod[bit/8] ^= 1 << (bit % 8)
		ct1 := c.EncryptBlock(mod)
		diff := 0
		for i := range ct0 {
			x := ct0[i] ^ ct1[i]
			for ; x != 0; x &= x - 1 {
				diff++
			}
		}
		if diff < 30 {
			t.Errorf("bit %d: only %d ciphertext bits flipped, want >=30", bit, diff)
		}
	}
}

func TestSboxIsPermutation(t *testing.T) {
	var seen [256]bool
	for i := 0; i < 256; i++ {
		if seen[sbox[i]] {
			t.Fatalf("sbox value %#x repeated", sbox[i])
		}
		seen[sbox[i]] = true
		if invSbox[sbox[i]] != byte(i) {
			t.Fatalf("invSbox[sbox[%#x]] = %#x", i, invSbox[sbox[i]])
		}
	}
	// Spot-check the canonical corner entries.
	if sbox[0x00] != 0x63 || sbox[0x01] != 0x7c || sbox[0xff] != 0x16 {
		t.Errorf("sbox corners wrong: %#x %#x %#x", sbox[0], sbox[1], sbox[0xff])
	}
}

func TestMulGF(t *testing.T) {
	// FIPS-197 §4.2 example: {57} x {83} = {c1}.
	if got := mulGF(0x57, 0x83); got != 0xc1 {
		t.Errorf("mulGF(0x57,0x83) = %#x, want 0xc1", got)
	}
	// Identity and zero.
	for i := 0; i < 256; i++ {
		if mulGF(byte(i), 1) != byte(i) || mulGF(byte(i), 0) != 0 {
			t.Fatalf("mulGF identity/zero failed at %d", i)
		}
	}
}

func TestEncryptPanicsOnShortBlock(t *testing.T) {
	c, _ := New(make([]byte, 16))
	defer func() {
		if recover() == nil {
			t.Error("want panic on short block")
		}
	}()
	c.Encrypt(make([]byte, 8), make([]byte, 8))
}

func BenchmarkEncryptAES128(b *testing.B) {
	c, _ := New(make([]byte, 16))
	var blk [16]byte
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		blk = c.EncryptBlock(blk)
	}
	_ = blk
}

func BenchmarkEncryptAES256(b *testing.B) {
	c, _ := New(make([]byte, 32))
	var blk [16]byte
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		blk = c.EncryptBlock(blk)
	}
	_ = blk
}

// The T-table fast path must agree with the textbook reference on
// random inputs for every key size.
func TestFastMatchesTextbook(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for _, keyLen := range []int{16, 24, 32} {
		for trial := 0; trial < 100; trial++ {
			key := make([]byte, keyLen)
			rng.Read(key)
			c, err := New(key)
			if err != nil {
				t.Fatal(err)
			}
			src := make([]byte, 16)
			rng.Read(src)
			fast := make([]byte, 16)
			slow := make([]byte, 16)
			c.encryptFast(fast, src)
			c.encryptSlow(slow, src)
			if !bytes.Equal(fast, slow) {
				t.Fatalf("keyLen=%d: encrypt fast/slow mismatch", keyLen)
			}
			c.decryptFast(fast, src)
			c.decryptSlow(slow, src)
			if !bytes.Equal(fast, slow) {
				t.Fatalf("keyLen=%d: decrypt fast/slow mismatch", keyLen)
			}
		}
	}
}

func BenchmarkEncryptSlowAES128(b *testing.B) {
	c, _ := New(make([]byte, 16))
	blk := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.encryptSlow(blk, blk)
	}
}

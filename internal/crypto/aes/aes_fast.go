package aes

// T-table implementation: the classic software AES that folds
// SubBytes, ShiftRows, and MixColumns of one round into four table
// lookups and three XORs per column. Encrypt/Decrypt dispatch to this
// path; the textbook transformations in aes.go remain as the reference
// implementation, and the equivalence test keeps them in lockstep.

var (
	te0, te1, te2, te3 [256]uint32 // encryption tables
	td0, td1, td2, td3 [256]uint32 // decryption tables
)

func init() {
	for i := 0; i < 256; i++ {
		s := sbox[i]
		s2 := mulGF(s, 2)
		s3 := s2 ^ s
		w := uint32(s2)<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(s3)
		te0[i] = w
		te1[i] = w>>8 | w<<24
		te2[i] = w>>16 | w<<16
		te3[i] = w>>24 | w<<8

		q := invSbox[i]
		w = uint32(mulGF(q, 14))<<24 | uint32(mulGF(q, 9))<<16 |
			uint32(mulGF(q, 13))<<8 | uint32(mulGF(q, 11))
		td0[i] = w
		td1[i] = w>>8 | w<<24
		td2[i] = w>>16 | w<<16
		td3[i] = w>>24 | w<<8
	}
}

// invMixWord applies InvMixColumns to one big-endian column word,
// used to derive the equivalent-inverse-cipher key schedule.
func invMixWord(w uint32) uint32 {
	b0, b1, b2, b3 := byte(w>>24), byte(w>>16), byte(w>>8), byte(w)
	return uint32(mulGF(b0, 14)^mulGF(b1, 11)^mulGF(b2, 13)^mulGF(b3, 9))<<24 |
		uint32(mulGF(b0, 9)^mulGF(b1, 14)^mulGF(b2, 11)^mulGF(b3, 13))<<16 |
		uint32(mulGF(b0, 13)^mulGF(b1, 9)^mulGF(b2, 14)^mulGF(b3, 11))<<8 |
		uint32(mulGF(b0, 11)^mulGF(b1, 13)^mulGF(b2, 9)^mulGF(b3, 14))
}

// expandDec derives the equivalent-inverse-cipher round keys: the
// encryption schedule reversed, with InvMixColumns applied to every
// round key except the first and last.
func (c *Cipher) expandDec() {
	n := 4 * (c.rounds + 1)
	d := make([]uint32, n)
	for r := 0; r <= c.rounds; r++ {
		for j := 0; j < 4; j++ {
			w := c.enc[4*(c.rounds-r)+j]
			if r != 0 && r != c.rounds {
				w = invMixWord(w)
			}
			d[4*r+j] = w
		}
	}
	c.dec = d
}

// encryptFast is the T-table cipher over big-endian column words.
func (c *Cipher) encryptFast(dst, src []byte) {
	rk := c.enc
	s0 := be32(src[0:]) ^ rk[0]
	s1 := be32(src[4:]) ^ rk[1]
	s2 := be32(src[8:]) ^ rk[2]
	s3 := be32(src[12:]) ^ rk[3]

	k := 4
	for r := 1; r < c.rounds; r++ {
		t0 := te0[s0>>24] ^ te1[s1>>16&0xff] ^ te2[s2>>8&0xff] ^ te3[s3&0xff] ^ rk[k]
		t1 := te0[s1>>24] ^ te1[s2>>16&0xff] ^ te2[s3>>8&0xff] ^ te3[s0&0xff] ^ rk[k+1]
		t2 := te0[s2>>24] ^ te1[s3>>16&0xff] ^ te2[s0>>8&0xff] ^ te3[s1&0xff] ^ rk[k+2]
		t3 := te0[s3>>24] ^ te1[s0>>16&0xff] ^ te2[s1>>8&0xff] ^ te3[s2&0xff] ^ rk[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	// Final round: SubBytes + ShiftRows only.
	o0 := uint32(sbox[s0>>24])<<24 | uint32(sbox[s1>>16&0xff])<<16 | uint32(sbox[s2>>8&0xff])<<8 | uint32(sbox[s3&0xff])
	o1 := uint32(sbox[s1>>24])<<24 | uint32(sbox[s2>>16&0xff])<<16 | uint32(sbox[s3>>8&0xff])<<8 | uint32(sbox[s0&0xff])
	o2 := uint32(sbox[s2>>24])<<24 | uint32(sbox[s3>>16&0xff])<<16 | uint32(sbox[s0>>8&0xff])<<8 | uint32(sbox[s1&0xff])
	o3 := uint32(sbox[s3>>24])<<24 | uint32(sbox[s0>>16&0xff])<<16 | uint32(sbox[s1>>8&0xff])<<8 | uint32(sbox[s2&0xff])
	putBE32(dst[0:], o0^rk[k])
	putBE32(dst[4:], o1^rk[k+1])
	putBE32(dst[8:], o2^rk[k+2])
	putBE32(dst[12:], o3^rk[k+3])
}

// decryptFast is the T-table equivalent inverse cipher.
func (c *Cipher) decryptFast(dst, src []byte) {
	rk := c.dec
	s0 := be32(src[0:]) ^ rk[0]
	s1 := be32(src[4:]) ^ rk[1]
	s2 := be32(src[8:]) ^ rk[2]
	s3 := be32(src[12:]) ^ rk[3]

	k := 4
	for r := 1; r < c.rounds; r++ {
		t0 := td0[s0>>24] ^ td1[s3>>16&0xff] ^ td2[s2>>8&0xff] ^ td3[s1&0xff] ^ rk[k]
		t1 := td0[s1>>24] ^ td1[s0>>16&0xff] ^ td2[s3>>8&0xff] ^ td3[s2&0xff] ^ rk[k+1]
		t2 := td0[s2>>24] ^ td1[s1>>16&0xff] ^ td2[s0>>8&0xff] ^ td3[s3&0xff] ^ rk[k+2]
		t3 := td0[s3>>24] ^ td1[s2>>16&0xff] ^ td2[s1>>8&0xff] ^ td3[s0&0xff] ^ rk[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	o0 := uint32(invSbox[s0>>24])<<24 | uint32(invSbox[s3>>16&0xff])<<16 | uint32(invSbox[s2>>8&0xff])<<8 | uint32(invSbox[s1&0xff])
	o1 := uint32(invSbox[s1>>24])<<24 | uint32(invSbox[s0>>16&0xff])<<16 | uint32(invSbox[s3>>8&0xff])<<8 | uint32(invSbox[s2&0xff])
	o2 := uint32(invSbox[s2>>24])<<24 | uint32(invSbox[s1>>16&0xff])<<16 | uint32(invSbox[s0>>8&0xff])<<8 | uint32(invSbox[s3&0xff])
	o3 := uint32(invSbox[s3>>24])<<24 | uint32(invSbox[s2>>16&0xff])<<16 | uint32(invSbox[s1>>8&0xff])<<8 | uint32(invSbox[s0&0xff])
	putBE32(dst[0:], o0^rk[k])
	putBE32(dst[4:], o1^rk[k+1])
	putBE32(dst[8:], o2^rk[k+2])
	putBE32(dst[12:], o3^rk[k+3])
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func putBE32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

// Package aes implements the Advanced Encryption Standard (FIPS-197)
// from first principles: the S-box is derived from the GF(2^8) inverse
// and affine transform, and the cipher runs the textbook round
// structure (SubBytes, ShiftRows, MixColumns, AddRoundKey).
//
// The implementation exists so that the memory-encryption engines in
// this repository own their full cipher stack; it is validated against
// the standard library and the FIPS-197 vectors in the tests. It is a
// functional model, not a constant-time production cipher.
package aes

import "fmt"

// BlockSize is the AES block size in bytes (128 bits).
const BlockSize = 16

// sbox and invSbox are the AES substitution tables, computed in init
// from the multiplicative inverse in GF(2^8) followed by the FIPS-197
// affine transform.
var (
	sbox    [256]byte
	invSbox [256]byte
)

func init() {
	// Build log/antilog tables for GF(2^8) with the AES polynomial
	// x^8 + x^4 + x^3 + x + 1 (0x11b), generator 3.
	var exp [256]byte
	var log [256]byte
	x := byte(1)
	for i := 0; i < 255; i++ {
		exp[i] = x
		log[x] = byte(i)
		// multiply x by generator 3 = x * 2 + x
		x = mulGF(x, 3)
	}
	inv := func(b byte) byte {
		if b == 0 {
			return 0
		}
		return exp[(255-int(log[b]))%255]
	}
	rotl8 := func(b byte, n uint) byte { return b<<n | b>>(8-n) }
	for i := 0; i < 256; i++ {
		q := inv(byte(i))
		s := q ^ rotl8(q, 1) ^ rotl8(q, 2) ^ rotl8(q, 3) ^ rotl8(q, 4) ^ 0x63
		sbox[i] = s
		invSbox[s] = byte(i)
	}
}

// SBox applies the AES S-box to one byte. It is exported for the
// nonlinear OTP combining logic (internal/crypto/mix) and for the
// algebraic attack model, which need the exact substitution circuit.
func SBox(b byte) byte { return sbox[b] }

// InvSBox applies the inverse AES S-box to one byte.
func InvSBox(b byte) byte { return invSbox[b] }

// mulGF multiplies two elements of GF(2^8) modulo x^8+x^4+x^3+x+1.
func mulGF(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

// Cipher is an AES block cipher with an expanded key schedule.
type Cipher struct {
	enc    []uint32 // round keys, 4*(rounds+1) words
	dec    []uint32 // equivalent-inverse-cipher round keys
	rounds int
}

// New creates an AES cipher for a 16, 24, or 32 byte key
// (AES-128, AES-192, AES-256 respectively).
func New(key []byte) (*Cipher, error) {
	var rounds int
	switch len(key) {
	case 16:
		rounds = 10
	case 24:
		rounds = 12
	case 32:
		rounds = 14
	default:
		return nil, fmt.Errorf("aes: invalid key size %d", len(key))
	}
	c := &Cipher{rounds: rounds}
	c.expandKey(key)
	c.expandDec()
	return c, nil
}

// Rounds reports the number of rounds (10, 12, or 14), used by the
// latency model to scale cipher delay (paper §III: 14/10 × 10 ns).
func (c *Cipher) Rounds() int { return c.rounds }

func (c *Cipher) expandKey(key []byte) {
	nk := len(key) / 4
	n := 4 * (c.rounds + 1)
	w := make([]uint32, n)
	for i := 0; i < nk; i++ {
		w[i] = uint32(key[4*i])<<24 | uint32(key[4*i+1])<<16 | uint32(key[4*i+2])<<8 | uint32(key[4*i+3])
	}
	rcon := uint32(1) << 24
	for i := nk; i < n; i++ {
		t := w[i-1]
		switch {
		case i%nk == 0:
			t = subWord(rotWord(t)) ^ rcon
			rcon = uint32(mulGF(byte(rcon>>24), 2)) << 24
		case nk > 6 && i%nk == 4:
			t = subWord(t)
		}
		w[i] = w[i-nk] ^ t
	}
	c.enc = w
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 | uint32(sbox[w&0xff])
}

// state is the AES 4x4 byte state in column-major order
// (state[4*c+r] = row r, column c), matching FIPS-197.
type state [16]byte

func (s *state) addRoundKey(rk []uint32) {
	for c := 0; c < 4; c++ {
		w := rk[c]
		s[4*c+0] ^= byte(w >> 24)
		s[4*c+1] ^= byte(w >> 16)
		s[4*c+2] ^= byte(w >> 8)
		s[4*c+3] ^= byte(w)
	}
}

func (s *state) subBytes() {
	for i := range s {
		s[i] = sbox[s[i]]
	}
}

func (s *state) invSubBytes() {
	for i := range s {
		s[i] = invSbox[s[i]]
	}
}

func (s *state) shiftRows() {
	// Row r is shifted left by r positions.
	s[1], s[5], s[9], s[13] = s[5], s[9], s[13], s[1]
	s[2], s[6], s[10], s[14] = s[10], s[14], s[2], s[6]
	s[3], s[7], s[11], s[15] = s[15], s[3], s[7], s[11]
}

func (s *state) invShiftRows() {
	s[1], s[5], s[9], s[13] = s[13], s[1], s[5], s[9]
	s[2], s[6], s[10], s[14] = s[10], s[14], s[2], s[6]
	s[3], s[7], s[11], s[15] = s[7], s[11], s[15], s[3]
}

func (s *state) mixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c+0] = mulGF(a0, 2) ^ mulGF(a1, 3) ^ a2 ^ a3
		s[4*c+1] = a0 ^ mulGF(a1, 2) ^ mulGF(a2, 3) ^ a3
		s[4*c+2] = a0 ^ a1 ^ mulGF(a2, 2) ^ mulGF(a3, 3)
		s[4*c+3] = mulGF(a0, 3) ^ a1 ^ a2 ^ mulGF(a3, 2)
	}
}

func (s *state) invMixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c+0] = mulGF(a0, 14) ^ mulGF(a1, 11) ^ mulGF(a2, 13) ^ mulGF(a3, 9)
		s[4*c+1] = mulGF(a0, 9) ^ mulGF(a1, 14) ^ mulGF(a2, 11) ^ mulGF(a3, 13)
		s[4*c+2] = mulGF(a0, 13) ^ mulGF(a1, 9) ^ mulGF(a2, 14) ^ mulGF(a3, 11)
		s[4*c+3] = mulGF(a0, 11) ^ mulGF(a1, 13) ^ mulGF(a2, 9) ^ mulGF(a3, 14)
	}
}

// Encrypt encrypts one 16-byte block; dst and src may overlap.
func (c *Cipher) Encrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: input not full block")
	}
	c.encryptFast(dst, src)
}

// encryptSlow is the textbook round-by-round cipher, kept as the
// reference implementation the T-table path is tested against.
func (c *Cipher) encryptSlow(dst, src []byte) {
	var s state
	copy(s[:], src[:BlockSize])
	s.addRoundKey(c.enc[0:4])
	for r := 1; r < c.rounds; r++ {
		s.subBytes()
		s.shiftRows()
		s.mixColumns()
		s.addRoundKey(c.enc[4*r : 4*r+4])
	}
	s.subBytes()
	s.shiftRows()
	s.addRoundKey(c.enc[4*c.rounds : 4*c.rounds+4])
	copy(dst[:BlockSize], s[:])
}

// Decrypt decrypts one 16-byte block; dst and src may overlap.
func (c *Cipher) Decrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: input not full block")
	}
	c.decryptFast(dst, src)
}

// decryptSlow is the straightforward inverse cipher (FIPS-197 §5.3)
// with the encryption round keys applied in reverse order — the
// reference for the T-table path.
func (c *Cipher) decryptSlow(dst, src []byte) {
	var s state
	copy(s[:], src[:BlockSize])
	s.addRoundKey(c.enc[4*c.rounds : 4*c.rounds+4])
	for r := c.rounds - 1; r >= 1; r-- {
		s.invShiftRows()
		s.invSubBytes()
		s.addRoundKey(c.enc[4*r : 4*r+4])
		s.invMixColumns()
	}
	s.invShiftRows()
	s.invSubBytes()
	s.addRoundKey(c.enc[0:4])
	copy(dst[:BlockSize], s[:])
}

// EncryptBlocks encrypts len(src)/16 independent blocks in one call
// (ECB over the batch) — the batch entry point pad generation uses.
// dst and src may alias exactly but not partially overlap.
func (c *Cipher) EncryptBlocks(dst, src []byte) {
	if len(src)%BlockSize != 0 || len(dst) < len(src) {
		panic("aes: batch length not a multiple of the block size")
	}
	for i := 0; i < len(src); i += BlockSize {
		c.encryptFast(dst[i:], src[i:])
	}
}

// DecryptBlocks is the batch inverse of EncryptBlocks.
func (c *Cipher) DecryptBlocks(dst, src []byte) {
	if len(src)%BlockSize != 0 || len(dst) < len(src) {
		panic("aes: batch length not a multiple of the block size")
	}
	for i := 0; i < len(src); i += BlockSize {
		c.decryptFast(dst[i:], src[i:])
	}
}

// EncryptBlock is a convenience that returns the ciphertext of a
// 16-byte array value.
func (c *Cipher) EncryptBlock(src [16]byte) [16]byte {
	var out [16]byte
	c.Encrypt(out[:], src[:])
	return out
}

// DecryptBlock is the array-value inverse of EncryptBlock.
func (c *Cipher) DecryptBlock(src [16]byte) [16]byte {
	var out [16]byte
	c.Decrypt(out[:], src[:])
	return out
}

// Package keccak implements the Keccak-f[1600] permutation and the
// SHA-3 hash functions (FIPS-202) from first principles.
//
// Counterless memory encryption (Intel MKTME and kin) computes each
// block's MAC with SHA-3 over the data (paper §II-A); Counter-light
// reuses that construction for blocks in counterless mode, adding the
// EncryptionMetadata word as an extra input (paper §IV-C). This
// package provides the hash; internal/cipher builds the MACs.
package keccak

import "encoding/binary"

// roundConstants are the 24 iota-round constants of Keccak-f[1600].
var roundConstants = [24]uint64{
	0x0000000000000001, 0x0000000000008082, 0x800000000000808a,
	0x8000000080008000, 0x000000000000808b, 0x0000000080000001,
	0x8000000080008081, 0x8000000000008009, 0x000000000000008a,
	0x0000000000000088, 0x0000000080008009, 0x000000008000000a,
	0x000000008000808b, 0x800000000000008b, 0x8000000000008089,
	0x8000000000008003, 0x8000000000008002, 0x8000000000000080,
	0x000000000000800a, 0x800000008000000a, 0x8000000080008081,
	0x8000000000008080, 0x0000000080000001, 0x8000000080008008,
}

// rotationOffsets[x][y] are the rho-step rotation amounts.
var rotationOffsets = [5][5]uint{
	{0, 36, 3, 41, 18},
	{1, 44, 10, 45, 2},
	{62, 6, 43, 15, 61},
	{28, 55, 25, 21, 56},
	{27, 20, 39, 8, 14},
}

// State is the 5x5 lane state of Keccak-f[1600]; State[x][y] is lane
// (x, y) per the FIPS-202 coordinate convention.
type State [5][5]uint64

// Permute applies the full 24-round Keccak-f[1600] permutation in place.
func (a *State) Permute() {
	for round := 0; round < 24; round++ {
		// Theta.
		var c, d [5]uint64
		for x := 0; x < 5; x++ {
			c[x] = a[x][0] ^ a[x][1] ^ a[x][2] ^ a[x][3] ^ a[x][4]
		}
		for x := 0; x < 5; x++ {
			d[x] = c[(x+4)%5] ^ rotl64(c[(x+1)%5], 1)
			for y := 0; y < 5; y++ {
				a[x][y] ^= d[x]
			}
		}
		// Rho and Pi.
		var b State
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				b[y][(2*x+3*y)%5] = rotl64(a[x][y], rotationOffsets[x][y])
			}
		}
		// Chi.
		for x := 0; x < 5; x++ {
			for y := 0; y < 5; y++ {
				a[x][y] = b[x][y] ^ (^b[(x+1)%5][y] & b[(x+2)%5][y])
			}
		}
		// Iota.
		a[0][0] ^= roundConstants[round]
	}
}

func rotl64(v uint64, n uint) uint64 {
	if n == 0 {
		return v
	}
	return v<<n | v>>(64-n)
}

// Hash is a sponge-based SHA-3 hash with a fixed output size.
type Hash struct {
	state  State
	rate   int // rate in bytes
	outLen int
	buf    []byte // pending absorb input, len < rate
}

// New256 returns a SHA3-256 hash (rate 136, 32-byte digest).
func New256() *Hash { return &Hash{rate: 136, outLen: 32} }

// New512 returns a SHA3-512 hash (rate 72, 64-byte digest).
func New512() *Hash { return &Hash{rate: 72, outLen: 64} }

// Write absorbs p into the sponge. It never fails.
func (h *Hash) Write(p []byte) (int, error) {
	n := len(p)
	h.buf = append(h.buf, p...)
	for len(h.buf) >= h.rate {
		h.absorb(h.buf[:h.rate])
		h.buf = h.buf[h.rate:]
	}
	return n, nil
}

func (h *Hash) absorb(block []byte) {
	for i := 0; i < h.rate/8; i++ {
		lane := binary.LittleEndian.Uint64(block[8*i:])
		x, y := i%5, i/5
		h.state[x][y] ^= lane
	}
	h.state.Permute()
}

// Sum finalizes a copy of the sponge and appends the digest to b,
// so the Hash can keep absorbing afterwards (matching hash.Hash).
func (h *Hash) Sum(b []byte) []byte {
	clone := *h
	clone.buf = append([]byte(nil), h.buf...)
	// SHA-3 domain padding: 0x06 ... 0x80 (pad10*1 with suffix 01).
	pad := make([]byte, clone.rate-len(clone.buf))
	pad[0] = 0x06
	pad[len(pad)-1] |= 0x80
	clone.buf = append(clone.buf, pad...)
	clone.absorb(clone.buf)
	// Squeeze. Both supported output lengths fit in one rate block.
	out := make([]byte, clone.rate)
	for i := 0; i < clone.rate/8; i++ {
		x, y := i%5, i/5
		binary.LittleEndian.PutUint64(out[8*i:], clone.state[x][y])
	}
	return append(b, out[:h.outLen]...)
}

// Reset returns the hash to its initial state.
func (h *Hash) Reset() {
	h.state = State{}
	h.buf = nil
}

// Size returns the digest length in bytes.
func (h *Hash) Size() int { return h.outLen }

// BlockSize returns the sponge rate in bytes.
func (h *Hash) BlockSize() int { return h.rate }

// Sum256 computes the SHA3-256 digest of data in one call.
func Sum256(data []byte) [32]byte {
	h := New256()
	h.Write(data)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Sum512 computes the SHA3-512 digest of data in one call.
func Sum512(data []byte) [64]byte {
	h := New512()
	h.Write(data)
	var out [64]byte
	copy(out[:], h.Sum(nil))
	return out
}

// MAC64 computes a 64-bit MAC as the first 8 bytes of
// SHA3-256(key || data...), the construction the counterless mode
// uses for its per-block integrity check.
//
// It is on the engine's per-read/per-write hot path (the counterless
// MAC and every ctrblock tree-node MAC), so unlike the general Hash it
// runs the sponge on the stack with a fixed rate-sized buffer and
// performs no allocation. TestMAC64MatchesHash keeps it in lockstep
// with the Hash-based construction.
func MAC64(key []byte, data ...[]byte) uint64 {
	var s State
	var buf [136]byte // SHA3-256 rate
	n := mac64Absorb(&s, &buf, 0, key)
	for _, d := range data {
		n = mac64Absorb(&s, &buf, n, d)
	}
	// SHA-3 domain padding: 0x06 ... 0x80 (pad10*1 with suffix 01).
	buf[n] = 0x06
	for i := n + 1; i < len(buf); i++ {
		buf[i] = 0
	}
	buf[len(buf)-1] |= 0x80
	mac64Block(&s, &buf)
	// The first 8 squeezed bytes are lane (0, 0), little-endian.
	return s[0][0]
}

// mac64Absorb streams p into the sponge through the rate buffer,
// permuting whenever the buffer fills; it returns the new fill level.
func mac64Absorb(s *State, buf *[136]byte, n int, p []byte) int {
	for len(p) > 0 {
		c := copy(buf[n:], p)
		p = p[c:]
		n += c
		if n == len(buf) {
			mac64Block(s, buf)
			n = 0
		}
	}
	return n
}

// mac64Block XORs one full rate block into the state and permutes —
// Hash.absorb for the fixed SHA3-256 rate, without the slice plumbing.
func mac64Block(s *State, buf *[136]byte) {
	for i := 0; i < len(buf)/8; i++ {
		lane := binary.LittleEndian.Uint64(buf[8*i:])
		s[i%5][i/5] ^= lane
	}
	s.Permute()
}

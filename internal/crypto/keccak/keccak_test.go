package keccak

import (
	"bytes"
	stdsha3 "crypto/sha3"
	"encoding/binary"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

func fromHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// NIST FIPS-202 known-answer tests.
func TestSHA3KnownAnswers(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
		f    func([]byte) []byte
	}{
		{"256-empty", "",
			"a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a",
			func(b []byte) []byte { d := Sum256(b); return d[:] }},
		{"256-abc", "abc",
			"3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532",
			func(b []byte) []byte { d := Sum256(b); return d[:] }},
		{"512-empty", "",
			"a69f73cca23a9ac5c8b567dc185a756e97c982164fe25859e0d1dcc1475c80a615b2123af1f5f94c11e3e9402c3ac558f500199d95b6d3e301758586281dcd26",
			func(b []byte) []byte { d := Sum512(b); return d[:] }},
		{"512-abc", "abc",
			"b751850b1a57168a5693cd924b6b096e08f621827444f70d884f5d0240d2712e10e116e9192af3c91a7ec57647e3934057340b4cf408d5a56592f8274eec53f0",
			func(b []byte) []byte { d := Sum512(b); return d[:] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.f([]byte(tc.in))
			if want := fromHex(t, tc.want); !bytes.Equal(got, want) {
				t.Errorf("got %x\nwant %x", got, want)
			}
		})
	}
}

// Cross-check against the standard library for random inputs of many
// lengths, including multi-block and rate-boundary sizes.
func TestAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lengths := []int{0, 1, 7, 8, 63, 64, 71, 72, 73, 135, 136, 137, 200, 271, 272, 273, 1000, 4096}
	for _, n := range lengths {
		data := make([]byte, n)
		rng.Read(data)
		got := Sum256(data)
		want := stdsha3.Sum256(data)
		if got != want {
			t.Errorf("Sum256 len=%d mismatch", n)
		}
		got512 := Sum512(data)
		want512 := stdsha3.Sum512(data)
		if got512 != want512 {
			t.Errorf("Sum512 len=%d mismatch", n)
		}
	}
}

// Incremental writes must equal a single write.
func TestIncrementalWrite(t *testing.T) {
	data := make([]byte, 1000)
	rand.New(rand.NewSource(3)).Read(data)
	h := New256()
	for i := 0; i < len(data); i += 17 {
		end := i + 17
		if end > len(data) {
			end = len(data)
		}
		h.Write(data[i:end])
	}
	var whole [32]byte
	copy(whole[:], h.Sum(nil))
	if whole != Sum256(data) {
		t.Error("incremental write digest differs from one-shot")
	}
}

// Sum must not consume state: calling Sum twice, or Sum then Write,
// must behave like hash.Hash.
func TestSumIsNonDestructive(t *testing.T) {
	h := New256()
	h.Write([]byte("hello"))
	d1 := h.Sum(nil)
	d2 := h.Sum(nil)
	if !bytes.Equal(d1, d2) {
		t.Error("two Sums differ")
	}
	h.Write([]byte(" world"))
	d3 := h.Sum(nil)
	want := Sum256([]byte("hello world"))
	if !bytes.Equal(d3, want[:]) {
		t.Error("Write after Sum gives wrong digest")
	}
}

func TestReset(t *testing.T) {
	h := New512()
	h.Write([]byte("garbage"))
	h.Reset()
	h.Write([]byte("abc"))
	got := h.Sum(nil)
	want := Sum512([]byte("abc"))
	if !bytes.Equal(got, want[:]) {
		t.Error("Reset did not clear state")
	}
}

func TestSizes(t *testing.T) {
	if New256().Size() != 32 || New256().BlockSize() != 136 {
		t.Error("SHA3-256 sizes wrong")
	}
	if New512().Size() != 64 || New512().BlockSize() != 72 {
		t.Error("SHA3-512 sizes wrong")
	}
}

// Property: different inputs give different MAC64 values with a key
// (collision would require a 64-bit hash collision in ~200 samples,
// which is effectively impossible).
func TestMAC64Distinct(t *testing.T) {
	key := []byte("0123456789abcdef")
	seen := map[uint64][]byte{}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		msg := make([]byte, 64)
		rng.Read(msg)
		m := MAC64(key, msg)
		if prev, ok := seen[m]; ok && !bytes.Equal(prev, msg) {
			t.Fatalf("MAC64 collision between distinct messages")
		}
		seen[m] = msg
	}
}

// MAC64 must depend on the key and on every data segment.
func TestMAC64Inputs(t *testing.T) {
	a := MAC64([]byte("key1"), []byte("data"))
	if b := MAC64([]byte("key2"), []byte("data")); a == b {
		t.Error("MAC64 ignores key")
	}
	if b := MAC64([]byte("key1"), []byte("datb")); a == b {
		t.Error("MAC64 ignores data")
	}
	multi := MAC64([]byte("key1"), []byte("da"), []byte("ta"))
	if multi != a {
		t.Error("MAC64 segmentation should not matter")
	}
}

// Property: the permutation is a bijection — applying it to two
// different states never yields the same state (checked via quick by
// injecting a difference into one lane).
func TestPermuteInjective(t *testing.T) {
	f := func(s State, lane uint8, delta uint64) bool {
		if delta == 0 {
			return true
		}
		s2 := s
		x, y := int(lane)%5, int(lane/5)%5
		s2[x][y] ^= delta
		s.Permute()
		s2.Permute()
		return s != s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSum256_64B(b *testing.B) {
	data := make([]byte, 64)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		Sum256(data)
	}
}

// TestMAC64MatchesHash keeps the stack-based MAC64 in lockstep with
// the general Hash construction it specializes, across buffer-boundary
// lengths (the rate is 136; 135/136/137 exercise the padding edges).
func TestMAC64MatchesHash(t *testing.T) {
	key := []byte("mac64-lockstep-key")
	for _, n := range []int{0, 1, 8, 63, 119, 135, 136, 137, 271, 272, 300} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i * 17)
		}
		h := New256()
		h.Write(key)
		h.Write(data[:n/2])
		h.Write(data[n/2:])
		want := binary.LittleEndian.Uint64(h.Sum(nil))
		if got := MAC64(key, data[:n/2], data[n/2:]); got != want {
			t.Fatalf("len %d: MAC64 = %#x, Hash-based = %#x", n, got, want)
		}
	}
}

// MAC64 sits on the engine's per-op hot path; it must not allocate.
func TestMAC64NoAllocs(t *testing.T) {
	key := []byte("alloc-key")
	var hdr [12]byte
	var ct [64]byte
	allocs := testing.AllocsPerRun(100, func() {
		MAC64(key, hdr[:], ct[:])
	})
	if allocs != 0 {
		t.Fatalf("MAC64 allocates %.1f times per call, want 0", allocs)
	}
}

// Package cache models set-associative caches with LRU replacement,
// write-back/write-allocate policy, and in-flight fill tracking.
//
// The same structure serves the L1/L2/L3 data caches of the core model
// and the 64 KB 32-way counter cache of the memory controller
// (Table I). Lines carry a readyAt timestamp so that a demand access
// to a block whose fill (e.g. a prefetch) is still in flight stalls
// only until the fill completes instead of issuing a duplicate memory
// request — the mechanism by which prefetching hides decryption
// latency for regular workloads (paper §III).
package cache

import (
	"fmt"

	"counterlight/internal/obs"
)

// Line states are implicit: a line is valid if tag != invalidTag.
const invalidTag = ^uint64(0)

type line struct {
	tag     uint64
	dirty   bool
	readyAt int64 // simulated time (ps) when the fill completes
	lastUse uint64
}

// Stats counts cache events.
type Stats struct {
	Hits       uint64 // includes hits on in-flight lines
	Misses     uint64
	Writebacks uint64 // dirty evictions
	Evictions  uint64 // all evictions
}

// Cache is a single-level set-associative cache (tag store only; data
// values live in the functional memory model). Event counts live in
// obs instruments so a registry can export them mid-run; Stats()
// stays the legacy view over the same storage.
type Cache struct {
	sets      int
	ways      int
	blockSize uint64
	lines     []line // sets*ways, row-major by set
	useClock  uint64

	hits       obs.Counter
	misses     obs.Counter
	writebacks obs.Counter
	evictions  obs.Counter
}

// New builds a cache of the given total size in bytes. size must be
// ways*blockSize*2^k for some k (power-of-two set count).
func New(size, blockSize uint64, ways int) (*Cache, error) {
	if blockSize == 0 || ways <= 0 || size == 0 {
		return nil, fmt.Errorf("cache: invalid geometry size=%d block=%d ways=%d", size, blockSize, ways)
	}
	linesTotal := size / blockSize
	if linesTotal == 0 || linesTotal%uint64(ways) != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible into %d ways of %d-byte blocks", size, ways, blockSize)
	}
	sets := linesTotal / uint64(ways)
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	c := &Cache{
		sets:      int(sets),
		ways:      ways,
		blockSize: blockSize,
		lines:     make([]line, int(sets)*ways),
	}
	for i := range c.lines {
		c.lines[i].tag = invalidTag
	}
	return c, nil
}

// Sets and Ways expose the geometry.
func (c *Cache) Sets() int { return c.sets }
func (c *Cache) Ways() int { return c.ways }

// Stats returns a copy of the event counters (a thin view over the
// obs instruments).
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:       c.hits.Value(),
		Misses:     c.misses.Value(),
		Writebacks: c.writebacks.Value(),
		Evictions:  c.evictions.Value(),
	}
}

// ResetStats zeroes the counters (per measurement window).
func (c *Cache) ResetStats() {
	c.hits.Reset()
	c.misses.Reset()
	c.writebacks.Reset()
	c.evictions.Reset()
}

// RegisterMetrics exposes the cache's counters through a registry
// under the given labels (e.g. level=l1, core=0).
func (c *Cache) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.RegisterCounter("cache_hits_total", &c.hits, labels...)
	reg.RegisterCounter("cache_misses_total", &c.misses, labels...)
	reg.RegisterCounter("cache_writebacks_total", &c.writebacks, labels...)
	reg.RegisterCounter("cache_evictions_total", &c.evictions, labels...)
}

func (c *Cache) setFor(addr uint64) (setBase int, tag uint64) {
	blk := addr / c.blockSize
	return int(blk%uint64(c.sets)) * c.ways, blk / uint64(c.sets)
}

// Lookup probes the cache at simulated time now. On a hit it returns
// readyAt, the time at which the line's data is available (now for
// resident lines, the fill-completion time for in-flight lines). On a
// miss the caller is expected to fetch the block and Insert it.
func (c *Cache) Lookup(addr uint64, now int64) (hit bool, readyAt int64) {
	base, tag := c.setFor(addr)
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].tag == tag {
			c.hits.Inc()
			c.useClock++
			c.lines[i].lastUse = c.useClock
			r := c.lines[i].readyAt
			if r < now {
				r = now
			}
			return true, r
		}
	}
	c.misses.Inc()
	return false, 0
}

// Contains probes without touching statistics or LRU state.
func (c *Cache) Contains(addr uint64) bool {
	base, tag := c.setFor(addr)
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].tag == tag {
			return true
		}
	}
	return false
}

// Eviction describes a block displaced by Insert.
type Eviction struct {
	Addr  uint64
	Dirty bool
}

// Insert fills the block at addr, with the data becoming available at
// readyAt. If an LRU victim must be displaced, it is returned so the
// caller can issue the writeback (when dirty). Inserting an
// already-present block refreshes its readyAt and dirty state.
func (c *Cache) Insert(addr uint64, readyAt int64, dirty bool) (ev Eviction, evicted bool) {
	base, tag := c.setFor(addr)
	c.useClock++
	// Refresh if present.
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].tag == tag {
			c.lines[i].dirty = c.lines[i].dirty || dirty
			if readyAt < c.lines[i].readyAt {
				c.lines[i].readyAt = readyAt
			}
			c.lines[i].lastUse = c.useClock
			return Eviction{}, false
		}
	}
	// Find invalid way or LRU victim.
	victim := base
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].tag == invalidTag {
			victim = i
			break
		}
		if c.lines[i].lastUse < c.lines[victim].lastUse {
			victim = i
		}
	}
	if c.lines[victim].tag != invalidTag {
		c.evictions.Inc()
		if c.lines[victim].dirty {
			c.writebacks.Inc()
		}
		ev = Eviction{
			Addr:  c.addrOf(victim, c.lines[victim].tag),
			Dirty: c.lines[victim].dirty,
		}
		evicted = true
	}
	c.lines[victim] = line{tag: tag, dirty: dirty, readyAt: readyAt, lastUse: c.useClock}
	return ev, evicted
}

func (c *Cache) addrOf(lineIdx int, tag uint64) uint64 {
	set := uint64(lineIdx / c.ways)
	return (tag*uint64(c.sets) + set) * c.blockSize
}

// Write marks the block dirty if present, returning whether it hit.
// (Write misses are handled by the caller as read-for-ownership plus
// Insert with dirty=true.)
func (c *Cache) Write(addr uint64, now int64) (hit bool, readyAt int64) {
	base, tag := c.setFor(addr)
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].tag == tag {
			c.hits.Inc()
			c.useClock++
			c.lines[i].lastUse = c.useClock
			c.lines[i].dirty = true
			r := c.lines[i].readyAt
			if r < now {
				r = now
			}
			return true, r
		}
	}
	c.misses.Inc()
	return false, 0
}

// Invalidate drops the block if present, returning its dirty state.
func (c *Cache) Invalidate(addr uint64) (wasDirty, wasPresent bool) {
	base, tag := c.setFor(addr)
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].tag == tag {
			wasDirty = c.lines[i].dirty
			c.lines[i] = line{tag: invalidTag}
			return wasDirty, true
		}
	}
	return false, false
}

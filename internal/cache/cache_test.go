package cache

import (
	"math/rand"
	"testing"
)

func mustNew(t *testing.T, size, block uint64, ways int) *Cache {
	t.Helper()
	c, err := New(size, block, ways)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewErrors(t *testing.T) {
	cases := []struct {
		size, block uint64
		ways        int
	}{
		{0, 64, 4},
		{1024, 0, 4},
		{1024, 64, 0},
		{1024, 64, 5},   // 16 lines not divisible by 5
		{3 * 64, 64, 1}, // 3 sets: not a power of two
	}
	for _, tc := range cases {
		if _, err := New(tc.size, tc.block, tc.ways); err == nil {
			t.Errorf("New(%d,%d,%d): want error", tc.size, tc.block, tc.ways)
		}
	}
}

func TestGeometry(t *testing.T) {
	c := mustNew(t, 64*1024, 64, 32) // the counter cache of Table I
	if c.Sets() != 32 || c.Ways() != 32 {
		t.Errorf("geometry = %dx%d, want 32 sets x 32 ways", c.Sets(), c.Ways())
	}
}

func TestMissThenHit(t *testing.T) {
	c := mustNew(t, 1024, 64, 2)
	if hit, _ := c.Lookup(0, 0); hit {
		t.Error("cold cache must miss")
	}
	c.Insert(0, 100, false)
	hit, ready := c.Lookup(0, 200)
	if !hit {
		t.Error("inserted block must hit")
	}
	if ready != 200 {
		t.Errorf("resident line readyAt = %d, want now (200)", ready)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// Accessing an in-flight line returns the fill completion time.
func TestInFlightFill(t *testing.T) {
	c := mustNew(t, 1024, 64, 2)
	c.Insert(0, 5000, false) // fill completes at t=5000
	hit, ready := c.Lookup(0, 1000)
	if !hit || ready != 5000 {
		t.Errorf("in-flight lookup = (%v, %d), want (true, 5000)", hit, ready)
	}
	// After the fill completes, no extra delay.
	if _, ready := c.Lookup(0, 6000); ready != 6000 {
		t.Errorf("post-fill readyAt = %d, want 6000", ready)
	}
}

func TestSameSetDifferentTags(t *testing.T) {
	c := mustNew(t, 1024, 64, 2) // 8 sets
	// Addresses 0 and 8*64 share set 0 with different tags.
	c.Insert(0, 0, false)
	c.Insert(8*64, 0, false)
	if hit, _ := c.Lookup(0, 0); !hit {
		t.Error("way 0 lost")
	}
	if hit, _ := c.Lookup(8*64, 0); !hit {
		t.Error("way 1 lost")
	}
}

func TestLRUEviction(t *testing.T) {
	c := mustNew(t, 2*64, 64, 2) // one set, two ways
	c.Insert(0, 0, false)
	c.Insert(64, 0, false)
	c.Lookup(0, 0) // make 64 the LRU
	ev, evicted := c.Insert(128, 0, false)
	if !evicted || ev.Addr != 64 {
		t.Errorf("eviction = %+v (%v), want addr 64", ev, evicted)
	}
	if c.Contains(64) {
		t.Error("evicted block still present")
	}
	if !c.Contains(0) || !c.Contains(128) {
		t.Error("wrong block evicted")
	}
}

func TestDirtyWritebackOnEviction(t *testing.T) {
	c := mustNew(t, 2*64, 64, 2)
	c.Insert(0, 0, true) // dirty
	c.Insert(64, 0, false)
	c.Insert(128, 0, false) // evicts 0 (LRU)
	s := c.Stats()
	if s.Writebacks != 1 || s.Evictions != 1 {
		t.Errorf("stats = %+v, want 1 writeback / 1 eviction", s)
	}
}

func TestWriteMarksDirty(t *testing.T) {
	c := mustNew(t, 2*64, 64, 2)
	c.Insert(0, 0, false)
	if hit, _ := c.Write(0, 0); !hit {
		t.Fatal("write to present block must hit")
	}
	c.Insert(64, 0, false)
	ev, _ := c.Insert(128, 0, false) // evicts 0
	if !ev.Dirty {
		t.Error("written block evicted clean")
	}
}

func TestWriteMiss(t *testing.T) {
	c := mustNew(t, 2*64, 64, 2)
	if hit, _ := c.Write(0, 0); hit {
		t.Error("write to absent block must miss")
	}
}

func TestInsertRefreshesExisting(t *testing.T) {
	c := mustNew(t, 2*64, 64, 2)
	c.Insert(0, 1000, false)
	// Re-inserting (e.g. a demand fill racing a prefetch) must not
	// evict anything and keeps the earlier ready time.
	if _, evicted := c.Insert(0, 500, true); evicted {
		t.Error("re-insert caused eviction")
	}
	if hit, ready := c.Lookup(0, 0); !hit || ready != 500 {
		t.Errorf("refreshed line = hit=%v ready=%d, want 500", hit, ready)
	}
}

func TestInvalidate(t *testing.T) {
	c := mustNew(t, 2*64, 64, 2)
	c.Insert(0, 0, true)
	dirty, present := c.Invalidate(0)
	if !dirty || !present {
		t.Errorf("Invalidate = (%v,%v), want dirty and present", dirty, present)
	}
	if c.Contains(0) {
		t.Error("block still present after invalidate")
	}
	if _, present := c.Invalidate(0); present {
		t.Error("double invalidate reported present")
	}
}

// The model invariant: hit rate of a small cache under a working set
// larger than the cache must be low; under a smaller working set high.
func TestWorkingSetBehaviour(t *testing.T) {
	c := mustNew(t, 64*1024, 64, 16)
	rng := rand.New(rand.NewSource(50))
	// Working set 4x the cache: thrash.
	for i := 0; i < 100000; i++ {
		addr := uint64(rng.Intn(4*1024)) * 64
		if hit, _ := c.Lookup(addr, 0); !hit {
			c.Insert(addr, 0, false)
		}
	}
	big := c.Stats()
	bigRate := float64(big.Hits) / float64(big.Hits+big.Misses)
	c.ResetStats()
	// Working set 1/4 the cache: nearly all hits.
	for i := 0; i < 100000; i++ {
		addr := uint64(rng.Intn(256)) * 64
		if hit, _ := c.Lookup(addr, 0); !hit {
			c.Insert(addr, 0, false)
		}
	}
	small := c.Stats()
	smallRate := float64(small.Hits) / float64(small.Hits+small.Misses)
	if bigRate > 0.5 {
		t.Errorf("thrash hit rate = %.2f, want < 0.5", bigRate)
	}
	if smallRate < 0.95 {
		t.Errorf("resident hit rate = %.2f, want > 0.95", smallRate)
	}
}

func TestNextLinePrefetcher(t *testing.T) {
	p := NewNextLine(64, 2)
	got := p.Observe(100, 0) // block 64..127
	if len(got) != 2 || got[0] != 128 || got[1] != 192 {
		t.Errorf("NextLine.Observe = %v, want [128 192]", got)
	}
}

func TestStridePrefetcherDetectsStreams(t *testing.T) {
	p := NewStride(64, 2)
	// Constant stride of 256 bytes; needs 3 accesses to gain confidence.
	if got := p.Observe(0, 1); got != nil {
		t.Errorf("first access prefetched %v", got)
	}
	if got := p.Observe(256, 1); len(got) != 0 {
		t.Errorf("second access prefetched %v", got)
	}
	got := p.Observe(512, 1)
	if len(got) != 2 || got[0] != 768 || got[1] != 1024 {
		t.Errorf("third access = %v, want [768 1024]", got)
	}
}

func TestStridePrefetcherSilentOnRandom(t *testing.T) {
	p := NewStride(64, 2)
	rng := rand.New(rand.NewSource(51))
	issued := 0
	for i := 0; i < 1000; i++ {
		issued += len(p.Observe(uint64(rng.Intn(1<<30)), 1))
	}
	if issued > 10 {
		t.Errorf("stride prefetcher issued %d prefetches on a random stream", issued)
	}
}

func TestStridePrefetcherPerStream(t *testing.T) {
	p := NewStride(64, 1)
	// Two interleaved streams with different strides must both train.
	p.Observe(0, 1)
	p.Observe(1<<20, 2)
	p.Observe(64, 1)
	p.Observe(1<<20+128, 2)
	got1 := p.Observe(128, 1)
	got2 := p.Observe(1<<20+256, 2)
	if len(got1) != 1 || got1[0] != 192 {
		t.Errorf("stream 1 prefetch = %v", got1)
	}
	if len(got2) != 1 || got2[0] != 1<<20+384 {
		t.Errorf("stream 2 prefetch = %v", got2)
	}
}

func TestCompositePrefetcher(t *testing.T) {
	c := &Composite{Prefetchers: []Prefetcher{NewNextLine(64, 1), NewNextLine(64, 2)}}
	got := c.Observe(0, 0)
	if len(got) != 3 {
		t.Errorf("composite returned %v", got)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	c, _ := New(1<<20, 64, 16)
	c.Insert(0, 0, false)
	for i := 0; i < b.N; i++ {
		c.Lookup(0, int64(i))
	}
}

func BenchmarkLookupInsertChurn(b *testing.B) {
	c, _ := New(1<<16, 64, 16)
	for i := 0; i < b.N; i++ {
		addr := uint64(i%8192) * 64
		if hit, _ := c.Lookup(addr, 0); !hit {
			c.Insert(addr, 0, i%3 == 0)
		}
	}
}

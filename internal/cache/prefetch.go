package cache

// Prefetcher suggests block addresses to fetch ahead of the demand
// stream. The core model feeds every demand access through Observe and
// issues fills for the returned addresses (Table I: next-line
// prefetchers at L1/L2 and stride prefetchers with degree 1 at L1 and
// degree 2 at L2).
type Prefetcher interface {
	// Observe is called with each demand access (by block-aligned
	// address and an access-stream identifier, e.g. a synthetic PC)
	// and returns the addresses to prefetch.
	Observe(addr uint64, stream uint64) []uint64
}

// NextLine prefetches the next Degree sequential blocks after each
// demand access.
type NextLine struct {
	BlockSize uint64
	Degree    int
}

// NewNextLine returns a next-line prefetcher with the given degree.
func NewNextLine(blockSize uint64, degree int) *NextLine {
	return &NextLine{BlockSize: blockSize, Degree: degree}
}

// Observe implements Prefetcher.
func (p *NextLine) Observe(addr uint64, _ uint64) []uint64 {
	out := make([]uint64, 0, p.Degree)
	base := addr - addr%p.BlockSize
	for i := 1; i <= p.Degree; i++ {
		out = append(out, base+uint64(i)*p.BlockSize)
	}
	return out
}

// strideEntry tracks one access stream's last address and stride.
type strideEntry struct {
	last      uint64
	stride    int64
	confident bool
}

// Stride detects constant-stride streams per stream identifier and
// prefetches Degree blocks ahead along the stride. Irregular
// (pointer-chasing) streams never build confidence, so the prefetcher
// stays silent for them — the distinction at the heart of the paper's
// regular-vs-irregular results.
type Stride struct {
	BlockSize uint64
	Degree    int
	table     map[uint64]*strideEntry
}

// NewStride returns a stride prefetcher with the given degree.
func NewStride(blockSize uint64, degree int) *Stride {
	return &Stride{
		BlockSize: blockSize,
		Degree:    degree,
		table:     make(map[uint64]*strideEntry),
	}
}

// Observe implements Prefetcher.
func (p *Stride) Observe(addr uint64, stream uint64) []uint64 {
	var out []uint64
	e, ok := p.table[stream]
	if !ok {
		// Bound the table like hardware would; a few streams per core.
		if len(p.table) > 256 {
			for k := range p.table {
				delete(p.table, k)
				break
			}
		}
		p.table[stream] = &strideEntry{last: addr}
		return nil
	}
	stride := int64(addr) - int64(e.last)
	if stride == e.stride && stride != 0 {
		// Two consecutive equal deltas confirm the stream.
		e.confident = true
		out = make([]uint64, 0, p.Degree)
		for i := 1; i <= p.Degree; i++ {
			target := int64(addr) + stride*int64(i)
			if target >= 0 {
				out = append(out, uint64(target))
			}
		}
	} else {
		e.confident = false
		e.stride = stride
	}
	e.last = addr
	return out
}

// Composite fans a demand access out to several prefetchers.
type Composite struct {
	Prefetchers []Prefetcher
}

// Observe implements Prefetcher by concatenating all suggestions.
func (p *Composite) Observe(addr uint64, stream uint64) []uint64 {
	var out []uint64
	for _, pf := range p.Prefetchers {
		out = append(out, pf.Observe(addr, stream)...)
	}
	return out
}

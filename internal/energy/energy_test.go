package energy

import (
	"math"
	"testing"
)

func TestNewMeterErrors(t *testing.T) {
	if _, err := NewMeter(Params{ActivatePJ: -1}); err == nil {
		t.Error("want error for negative parameter")
	}
	if _, err := NewMeter(DefaultParams()); err != nil {
		t.Error(err)
	}
}

func TestDynamicEnergy(t *testing.T) {
	p := Params{ActivatePJ: 10, ReadPJ: 3, WritePJ: 4, BackgroundMW: 0}
	m, _ := NewMeter(p)
	m.AddActivate()
	m.AddActivate()
	m.AddRead()
	m.AddWrite()
	if got := m.DynamicPJ(); math.Abs(got-27) > 1e-9 {
		t.Errorf("DynamicPJ = %v, want 27", got)
	}
	a, r, w := m.Counts()
	if a != 2 || r != 1 || w != 1 {
		t.Errorf("counts = %d/%d/%d", a, r, w)
	}
}

func TestBackgroundEnergy(t *testing.T) {
	m, _ := NewMeter(Params{BackgroundMW: 2000})
	// 2000 mW = 2000 pJ/ns; 1 µs = 1000 ns -> 2e6 pJ.
	got := m.BackgroundPJ(1_000_000_000) // 1 ms in ps? No: 1e9 ps = 1 ms... use 1e6 ps = 1 µs
	_ = got
	if got := m.BackgroundPJ(1_000_000); math.Abs(got-2_000_000) > 1 {
		t.Errorf("BackgroundPJ(1µs) = %v, want 2e6", got)
	}
}

func TestTotalAndPerInstruction(t *testing.T) {
	m, _ := NewMeter(Params{ReadPJ: 100, BackgroundMW: 1000})
	m.AddRead()
	total := m.TotalPJ(1000) // 1 ns background = 1000 pJ
	if math.Abs(total-1100) > 1e-9 {
		t.Errorf("TotalPJ = %v, want 1100", total)
	}
	if got := m.PerInstructionPJ(1000, 11); math.Abs(got-100) > 1e-9 {
		t.Errorf("PerInstructionPJ = %v, want 100", got)
	}
	if m.PerInstructionPJ(1000, 0) != 0 {
		t.Error("zero instructions must not divide by zero")
	}
}

// The paper's energy argument: for a fixed amount of work, a run that
// finishes sooner uses less total energy because background dominates.
func TestIdleDominatedSavings(t *testing.T) {
	p := DefaultParams()
	fast, _ := NewMeter(p)
	slow, _ := NewMeter(p)
	for i := 0; i < 1000; i++ {
		fast.AddRead()
		slow.AddRead()
	}
	eFast := fast.TotalPJ(10_000_000) // 10 µs
	eSlow := slow.TotalPJ(11_000_000) // 10% slower
	if eSlow <= eFast {
		t.Error("slower run must cost more energy")
	}
	saving := 1 - eFast/eSlow
	if saving < 0.05 {
		t.Errorf("energy saving = %.3f, want >= 5%% for a 10%% speedup (idle-dominated)", saving)
	}
}

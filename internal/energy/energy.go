// Package energy models DRAM energy in the style of DRAMPower (paper
// §V uses Ramulator + DRAMPower): per-operation energies for
// activates, reads, writes, and precharges, plus background power that
// accrues with wall-clock time.
//
// The paper's Fig. 19 result — Counter-light saves ~5% DRAM energy per
// instruction versus counterless — comes almost entirely from finishing
// sooner: "idle power dominates in the large memory systems typical in
// server systems." The defaults below put background power at the same
// order as a loaded channel's dynamic power so that property holds.
package energy

import "fmt"

// Params holds the energy model constants. Values are representative
// of a DDR4/DDR5-era device scaled to one 128 GB channel; what matters
// for the figures is the dynamic:background ratio, not absolute joules.
type Params struct {
	ActivatePJ   float64 // per row activation (ACT+PRE pair amortized)
	ReadPJ       float64 // per 64B read burst
	WritePJ      float64 // per 64B write burst
	BackgroundMW float64 // background (idle + refresh) power in milliwatts
}

// DefaultParams returns the model constants used by the evaluation.
func DefaultParams() Params {
	return Params{
		ActivatePJ:   2500, // ~2.5 nJ per activate/precharge pair
		ReadPJ:       1500,
		WritePJ:      1600,
		BackgroundMW: 2000, // 2 W background for a large-capacity channel
	}
}

// Meter accumulates energy from DRAM event counts and elapsed time.
type Meter struct {
	p         Params
	activates uint64
	reads     uint64
	writes    uint64
}

// NewMeter creates a meter with the given parameters.
func NewMeter(p Params) (*Meter, error) {
	if p.ActivatePJ < 0 || p.ReadPJ < 0 || p.WritePJ < 0 || p.BackgroundMW < 0 {
		return nil, fmt.Errorf("energy: negative parameter")
	}
	return &Meter{p: p}, nil
}

// AddActivate, AddRead, AddWrite record DRAM events.
func (m *Meter) AddActivate() { m.activates++ }
func (m *Meter) AddRead()     { m.reads++ }
func (m *Meter) AddWrite()    { m.writes++ }

// Counts returns the recorded event counts (activates, reads, writes).
func (m *Meter) Counts() (uint64, uint64, uint64) { return m.activates, m.reads, m.writes }

// DynamicPJ returns the dynamic energy so far in picojoules.
func (m *Meter) DynamicPJ() float64 {
	return float64(m.activates)*m.p.ActivatePJ +
		float64(m.reads)*m.p.ReadPJ +
		float64(m.writes)*m.p.WritePJ
}

// BackgroundPJ returns the background energy accrued over elapsedPS
// picoseconds of simulated time.
func (m *Meter) BackgroundPJ(elapsedPS int64) float64 {
	// mW = pJ/ns; elapsed ns = ps / 1000.
	return m.p.BackgroundMW * float64(elapsedPS) / 1000.0
}

// TotalPJ returns dynamic plus background energy for a run that took
// elapsedPS picoseconds.
func (m *Meter) TotalPJ(elapsedPS int64) float64 {
	return m.DynamicPJ() + m.BackgroundPJ(elapsedPS)
}

// PerInstructionPJ divides total energy by the instruction count.
func (m *Meter) PerInstructionPJ(elapsedPS int64, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return m.TotalPJ(elapsedPS) / float64(instructions)
}

package scorecard

import (
	"math"
	"strings"
	"testing"

	"counterlight/internal/figures"
)

func TestCheckGrades(t *testing.T) {
	c := Check{Paper: 1.0, Measured: 1.01, Tolerance: 0.02}
	if !c.Pass() || c.Grade() != "PASS" {
		t.Errorf("within tolerance: %v %s", c.Pass(), c.Grade())
	}
	c.Measured = 1.03
	if c.Pass() || c.Grade() != "CLOSE" {
		t.Errorf("within 2x tolerance: %v %s", c.Pass(), c.Grade())
	}
	c.Measured = 1.10
	if c.Grade() != "DEVIATES" {
		t.Errorf("far out: %s", c.Grade())
	}
	c.Measured = math.NaN()
	if c.Grade() != "MISSING" || c.Pass() {
		t.Errorf("NaN: %v %s", c.Pass(), c.Grade())
	}
}

func TestReportString(t *testing.T) {
	r := Report{Checks: []Check{
		{Figure: "FigX", Metric: "m", Paper: 1, Measured: 1, Tolerance: 0.1, Note: "n"},
		{Figure: "FigY", Metric: "m2", Paper: 2, Measured: 9, Tolerance: 0.1},
	}}
	s := r.String()
	if !strings.Contains(s, "PASS") || !strings.Contains(s, "DEVIATES") {
		t.Errorf("rendering:\n%s", s)
	}
	if r.Passed() != 1 {
		t.Errorf("passed = %d", r.Passed())
	}
}

func TestParseNum(t *testing.T) {
	if v := parseNum("0.25"); v != 0.25 {
		t.Errorf("plain = %v", v)
	}
	if v := parseNum("36.0%"); math.Abs(v-0.36) > 1e-12 {
		t.Errorf("percent = %v", v)
	}
	if !math.IsNaN(parseNum("n/a")) {
		t.Error("garbage should be NaN")
	}
}

func TestExtractors(t *testing.T) {
	f := figures.Figure{
		Columns: []string{"workload", "perf", "util"},
		Rows: [][]string{
			{"omnetpp", "0.500", "96.0%"},
			{"mean", "0.900", "22.0%"},
		},
	}
	if v := meanOf(f, "perf"); v != 0.9 {
		t.Errorf("meanOf perf = %v", v)
	}
	if v := meanOf(f, "util"); math.Abs(v-0.22) > 1e-12 {
		t.Errorf("meanOf util = %v", v)
	}
	if !math.IsNaN(meanOf(f, "nope")) {
		t.Error("missing column should be NaN")
	}
	if v := cellOf(f, "omnetpp", "perf"); v != 0.5 {
		t.Errorf("cellOf = %v", v)
	}
	if !math.IsNaN(cellOf(f, "ghost", "perf")) {
		t.Error("missing row should be NaN")
	}
}

// The full scorecard is exercised end to end in quick mode; on this
// simulator most checks should pass or land close.
func TestBuildQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment matrix")
	}
	r := figures.NewRunner(true)
	rep, err := Build(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Checks) < 12 {
		t.Fatalf("only %d checks", len(rep.Checks))
	}
	bad := 0
	for _, c := range rep.Checks {
		t.Logf("%-7s %-42s paper=%.3f measured=%.3f %s", c.Figure, c.Metric, c.Paper, c.Measured, c.Grade())
		if c.Grade() == "DEVIATES" || c.Grade() == "MISSING" {
			bad++
		}
	}
	if bad > len(rep.Checks)/3 {
		t.Errorf("%d/%d checks deviate", bad, len(rep.Checks))
	}
}

// Package scorecard grades the reproduction: it encodes the paper's
// published headline numbers per figure, extracts the corresponding
// measured values from a figures.Runner, and reports how close each
// reproduction target landed. cmd/clreport renders the result.
//
// Grades are deliberately coarse — the substrate is a purpose-built
// simulator, not the authors' gem5 — so each check carries its own
// tolerance and a note about which property (ordering, ratio, trend)
// it actually guards.
package scorecard

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"counterlight/internal/figures"
)

// Check is one paper-vs-measured comparison.
type Check struct {
	Figure    string
	Metric    string
	Paper     float64
	Measured  float64
	Tolerance float64 // absolute tolerance on the comparison scale
	Note      string
}

// Pass reports whether the measured value is within tolerance.
func (c Check) Pass() bool {
	return !math.IsNaN(c.Measured) && math.Abs(c.Measured-c.Paper) <= c.Tolerance
}

// Grade returns "PASS", "CLOSE" (within 2x tolerance), or "DEVIATES".
func (c Check) Grade() string {
	if math.IsNaN(c.Measured) {
		return "MISSING"
	}
	d := math.Abs(c.Measured - c.Paper)
	switch {
	case d <= c.Tolerance:
		return "PASS"
	case d <= 2*c.Tolerance:
		return "CLOSE"
	default:
		return "DEVIATES"
	}
}

// Report is the full scorecard.
type Report struct {
	Checks []Check
}

// Passed counts checks that pass outright.
func (r Report) Passed() int {
	n := 0
	for _, c := range r.Checks {
		if c.Pass() {
			n++
		}
	}
	return n
}

// String renders the scorecard as a text table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %-42s %8s %9s %9s  %s\n",
		"figure", "metric", "paper", "measured", "grade", "note")
	for _, c := range r.Checks {
		fmt.Fprintf(&b, "%-7s %-42s %8.3f %9.3f %9s  %s\n",
			c.Figure, c.Metric, c.Paper, c.Measured, c.Grade(), c.Note)
	}
	fmt.Fprintf(&b, "\n%d/%d checks pass\n", r.Passed(), len(r.Checks))
	return b.String()
}

// meanOf extracts the named column's value from a figure's "mean" row.
func meanOf(f figures.Figure, column string) float64 {
	col := -1
	for i, c := range f.Columns {
		if c == column {
			col = i
			break
		}
	}
	if col < 0 {
		return math.NaN()
	}
	for _, row := range f.Rows {
		if row[0] != "mean" || col >= len(row) {
			continue
		}
		return parseNum(row[col])
	}
	return math.NaN()
}

// cellOf extracts a specific workload row's column value.
func cellOf(f figures.Figure, rowLabel, column string) float64 {
	col := -1
	for i, c := range f.Columns {
		if c == column {
			col = i
			break
		}
	}
	if col < 0 {
		return math.NaN()
	}
	for _, row := range f.Rows {
		if row[0] == rowLabel && col < len(row) {
			return parseNum(row[col])
		}
	}
	return math.NaN()
}

// parseNum handles both "0.941" and "36.0%" cells.
func parseNum(s string) float64 {
	pct := strings.HasSuffix(s, "%")
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return math.NaN()
	}
	if pct {
		v /= 100
	}
	return v
}

// Build runs the experiments (through the memoizing runner) and grades
// them against the paper's published numbers.
func Build(r *figures.Runner) (Report, error) {
	var rep Report
	add := func(c Check) { rep.Checks = append(rep.Checks, c) }

	fig5, err := r.Fig5()
	if err != nil {
		return rep, err
	}
	add(Check{"Fig5", "counterless mean perf (AES-128)", 0.91, meanOf(fig5, "AES-128"), 0.02,
		"Sec III: irregular workloads drop to 91%"})
	add(Check{"Fig5", "counterless mean perf (AES-256)", 0.87, meanOf(fig5, "AES-256"), 0.02,
		"Sec III: 13% average slowdown under AES-256"})

	fig8, err := r.Fig8()
	if err != nil {
		return rep, err
	}
	add(Check{"Fig8", "fraction of misses with late counter", 0.22, meanOf(fig8, "counter late"), 0.08,
		"counter can arrive after data for a significant minority"})

	fig9, err := r.Fig9()
	if err != nil {
		return rep, err
	}
	single := meanOf(fig9, "single-counter")
	cls := meanOf(fig9, "counterless")
	add(Check{"Fig9", "single-counter overhead ~= counterless", 0.0, single - cls, 0.04,
		"the one counter access alone costs about as much as counterless (7% vs 9%)"})

	fig16, err := r.Fig16()
	if err != nil {
		return rep, err
	}
	cl128 := meanOf(fig16, "counterlight-128")
	cls128 := meanOf(fig16, "counterless-128")
	cl256 := meanOf(fig16, "counterlight-256")
	cls256 := meanOf(fig16, "counterless-256")
	add(Check{"Fig16", "counter-light mean perf (AES-128)", 0.98, cl128, 0.02,
		"headline: <=2% average slowdown"})
	add(Check{"Fig16", "improvement over counterless (AES-128)", 0.086, cl128/cls128 - 1, 0.03,
		"paper: 8.6%"})
	add(Check{"Fig16", "improvement over counterless (AES-256)", 0.130, cl256/cls256 - 1, 0.04,
		"paper: 13.0%; grows with AES latency"})

	fig19, err := r.Fig19()
	if err != nil {
		return rep, err
	}
	add(Check{"Fig19", "energy/instr vs counterless", 0.949, meanOf(fig19, "normalized energy/instr"), 0.03,
		"paper: 5.1% average energy saving"})

	fig20, err := r.Fig20()
	if err != nil {
		return rep, err
	}
	add(Check{"Fig20", "counter-light ~ counterless under stress", 1.0,
		meanOf(fig20, "counterlight") / meanOf(fig20, "counterless"), 0.06,
		"paper: within 1.4% worst case; ours lands slightly ahead"})

	fig21, err := r.Fig21()
	if err != nil {
		return rep, err
	}
	add(Check{"Fig21", "counterless WBs @6.4, th=10%", 1.00, meanOf(fig21, "th=10%@6.4"), 0.02,
		"paper: 100%"})
	add(Check{"Fig21", "counterless WBs @6.4, th=60%", 0.91, meanOf(fig21, "th=60%@6.4"), 0.10,
		"paper: 91%"})
	add(Check{"Fig21", "counterless WBs @6.4, th=80%", 0.70, meanOf(fig21, "th=80%@6.4"), 0.25,
		"paper: ~70%; trend must be monotone"})

	fig23, err := r.Fig23()
	if err != nil {
		return rep, err
	}
	add(Check{"Fig23", "regular counterless @25.6", 0.966, meanOf(fig23, "counterless@25.6"), 0.02,
		"paper: 96.6%"})
	add(Check{"Fig23", "regular counter-light @25.6", 0.995, meanOf(fig23, "counterlight@25.6"), 0.01,
		"paper: 99.5%"})

	abl, err := r.AblationNoSwitch()
	if err != nil {
		return rep, err
	}
	add(Check{"AblA", "omnetpp without switching (vs counterless)", 0.49, cellOf(abl, "omnetpp", "without switch"), 0.20,
		"paper: omnetpp loses 51% without the dynamic switch"})

	return rep, nil
}

// Package cluster is the multi-controller topology layer: it routes
// requests across N mcpool.Pool controllers (channels/sockets) behind
// one request plane, promotes the per-controller queue-watermark
// degradation (the paper's §IV-B bandwidth monitor) into a
// cluster-level admission policy, and survives node kill/restart
// through the internal/nvm sharded-journal recovery path.
//
// Routing is address-interleaved with a pluggable InterleaveFunc:
// every block — data, counter block, tree path — is owned by exactly
// one node, and within the node by exactly one mcpool shard, so the
// single-owner discipline that makes the sharded pool sound extends
// unchanged to the cluster.
//
// Degradation composes in two stages. A node whose queues sit past
// the watermark is already shedding counter/tree work per §IV-B (Auto
// writes demote to counterless); the cluster layer watches that
// signal — plus node liveness — and once more than MaxDegradedFrac of
// the nodes are degraded or down, stops absorbing entirely:
// SubmitWait returns ErrOverloaded, which the HTTP request plane maps
// to 429. Draining (graceful shutdown) rejects with ErrDraining after
// fencing all admitted work through FlushBarrier.
package cluster

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"

	"counterlight/internal/cipher"
	"counterlight/internal/core"
	"counterlight/internal/crypto/aes"
	"counterlight/internal/mcpool"
	"counterlight/internal/nvm"
	"counterlight/internal/obs"
	"counterlight/internal/obs/flight"
	"counterlight/internal/obs/prof"
)

// Submission errors, in decreasing severity of what the caller should
// do about them. All are shed-and-retry class — none indicates data
// loss.
var (
	// ErrClosed: the cluster has been closed; no retry will succeed.
	ErrClosed = errors.New("cluster: closed")
	// ErrDraining: graceful shutdown is fencing in-flight work; the
	// request plane maps this to 503 with Retry-After.
	ErrDraining = errors.New("cluster: draining")
	// ErrOverloaded: the admission policy rejected the request because
	// too many nodes are degraded or down (429).
	ErrOverloaded = errors.New("cluster: overloaded: too many nodes degraded")
	// ErrNodeDown: the owning node is killed; requests for its address
	// range fail until Restart (503).
	ErrNodeDown = errors.New("cluster: node down")
)

// InterleaveFunc maps a block-aligned byte address to the node that
// owns it. It must be pure: the same address must always route to the
// same node for a given node count.
type InterleaveFunc func(addr uint64, nodes int) int

// BlockInterleave routes consecutive 64-byte blocks round-robin
// across the nodes, the cluster-level analogue of the DRAM channel
// interleave.
//
// It is usually the wrong default: mcpool interleaves its shards by
// block too, so when gcd(nodes, shards) > 1 the two levels alias —
// with 2 nodes of 2 shards, node 1 only ever receives odd blocks,
// which all land on its shard 1, and shard 0 starves. New therefore
// defaults to StripedInterleave(shards) instead.
func BlockInterleave(addr uint64, nodes int) int {
	return int((addr / cipher.BlockSize) % uint64(nodes))
}

// StripedInterleave assigns runs of stripe consecutive blocks to each
// node in turn: node = (block/stripe) mod nodes. With stripe equal to
// the per-node shard count, a node's owned blocks cycle through all
// of its shards, so the cluster- and pool-level interleaves compose
// instead of aliasing.
func StripedInterleave(stripe int) InterleaveFunc {
	if stripe < 1 {
		stripe = 1
	}
	return func(addr uint64, nodes int) int {
		return int((addr / cipher.BlockSize / uint64(stripe)) % uint64(nodes))
	}
}

// Config sizes the cluster.
type Config struct {
	// Nodes is the controller count (default 2).
	Nodes int
	// Interleave routes addresses to nodes. Default:
	// StripedInterleave(Node.Shards), which composes with the pool's
	// own block interleave instead of aliasing it.
	Interleave InterleaveFunc
	// MaxDegradedFrac is the admission knee: once MORE than this
	// fraction of the nodes is degraded (shedding past its watermark)
	// or down, new submissions are rejected with ErrOverloaded. 0
	// means the default 0.5; negative disables cluster-level
	// admission entirely (per-node behavior is unchanged).
	MaxDegradedFrac float64
	// Node is the per-node pool template. Shards, queue depths, the
	// watermark policy, Journal/Persist, and engine options apply to
	// every node identically. When Profile is set or AdaptiveWatermark
	// demands one, each node gets its OWN profiler (same backend) so
	// per-node latency estimates don't mix across controllers.
	Node mcpool.Config
	// Flight is recorded into by the cluster (kills, restarts,
	// recoveries) and attached to every node pool. Overrides
	// Node.Flight when set.
	Flight *flight.Ring
	// BreakRecovery is the teeth knob, test-only: Restart drops the
	// newest durable journal record of every shard before recovering,
	// so the restarted node silently loses its most recent durable
	// write — which a read-back oracle (check.ClusterReplay) must
	// catch as stale data.
	BreakRecovery bool
}

// node is one controller slot. pool is nil while the node is down;
// gen counts restarts (metrics for each incarnation are registered
// under a distinct gen label in the node's stable registry).
type node struct {
	id  int
	mu  sync.RWMutex
	gen int

	pool     *mcpool.Pool
	profiler *prof.Profiler
	reg      *obs.Registry

	// Chaos-verification state (meaningful when the node template has
	// Journal+Persist): plogs is the durable per-shard journal bytes
	// captured at the last Kill (what the next Restart recovers from),
	// baseline the durable bytes the CURRENT incarnation started from,
	// segs the closed service segments (see Segment).
	plogs    [][]byte
	baseline [][]byte
	segs     []Segment
	recovery []nvm.ShardRecovery // last Restart's report
}

// Segment is one uninterrupted service interval of a node: from pool
// creation (or restart) to Kill. Baseline is the durable per-shard
// journal state the interval's engines started from, Journals the
// per-shard applied-op journals of the interval, and Plogs the
// durable journal bytes at the interval's end. Verify replays each
// segment from its baseline and demands bit-identical responses.
type Segment struct {
	Baseline [][]byte
	Journals [][]mcpool.Applied
	Plogs    [][]byte
}

// Cluster routes requests across its nodes.
type Cluster struct {
	cfg   Config
	nodes []*node
	rec   *flight.Ring

	draining atomic.Bool
	closed   atomic.Bool

	admitted    obs.Counter // submissions past admission
	shed        obs.Counter // rejected by the admission policy
	downSubmits obs.Counter // routed to a dead node
	kills       obs.Counter
	restarts    obs.Counter
	nodesUp     obs.Gauge
	nodesDeg    obs.Gauge // degraded-or-down at last admission check
	reg         *obs.Registry
}

// New builds a cluster of cfg.Nodes freshly started pools.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2
	}
	if cfg.Interleave == nil {
		stripe := cfg.Node.Shards
		if stripe <= 0 {
			stripe = 8 // mcpool's default shard count
		}
		cfg.Interleave = StripedInterleave(stripe)
	}
	if cfg.MaxDegradedFrac == 0 {
		cfg.MaxDegradedFrac = 0.5
	}
	if cfg.Flight == nil {
		cfg.Flight = cfg.Node.Flight
	}
	cfg.Node.Flight = cfg.Flight
	// Pin the engine options now: verification rebuilds engines from
	// the same options, so the mcpool defaulting must happen once,
	// here, not invisibly inside each mcpool.New.
	if cfg.Node.Engine == (core.EngineOptions{}) {
		cfg.Node.Engine = core.DefaultEngineOptions()
	}
	c := &Cluster{cfg: cfg, rec: cfg.Flight, reg: obs.NewRegistry(), nodes: make([]*node, cfg.Nodes)}
	c.registerMetrics()
	for i := range c.nodes {
		n := &node{id: i, reg: obs.NewRegistry()}
		if err := c.startNode(n, nil); err != nil {
			for _, m := range c.nodes {
				if m != nil && m.pool != nil {
					m.pool.Close()
				}
			}
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		c.nodes[i] = n
	}
	c.nodesUp.Set(int64(cfg.Nodes))
	return c, nil
}

// startNode builds node n's pool (a fresh incarnation), recovering
// from plogs when non-nil. Caller holds n.mu or owns n exclusively.
func (c *Cluster) startNode(n *node, plogs [][]byte) error {
	ncfg := c.cfg.Node
	if ncfg.Profile != nil || ncfg.AdaptiveWatermark {
		backend := ncfg.Engine.Cipher
		if backend == "" {
			backend = aes.DefaultBackend()
		}
		n.profiler = prof.New(backend)
		ncfg.Profile = n.profiler
	}
	pool, err := mcpool.New(ncfg)
	if err != nil {
		return err
	}
	if plogs != nil {
		rep, err := nvm.RecoverShards(pool, plogs, c.rec)
		if err != nil {
			pool.Close()
			return err
		}
		n.recovery = rep
	}
	labels := []obs.Label{obs.L("node", strconv.Itoa(n.id)), obs.L("gen", strconv.Itoa(n.gen))}
	pool.RegisterMetrics(n.reg, labels...)
	n.pool = pool
	n.baseline = plogs
	return nil
}

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// NodeOf returns the node that owns addr.
func (c *Cluster) NodeOf(addr uint64) int {
	return c.cfg.Interleave(addr, len(c.nodes))
}

// degraded reports whether node i is down or shedding past its
// watermark — the unit the admission policy counts.
func (n *node) degraded() bool {
	n.mu.RLock()
	p := n.pool
	n.mu.RUnlock()
	return p == nil || p.Shedding()
}

// Up reports whether node i is serving.
func (c *Cluster) Up(i int) bool {
	n := c.nodes[i]
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.pool != nil
}

// admit applies the cluster-level §IV-B analogue: nodes past their
// watermark are already shedding counter/tree work per request; once
// more than MaxDegradedFrac of the nodes are degraded or down, the
// cluster stops absorbing and rejects outright.
func (c *Cluster) admit() bool {
	frac := c.cfg.MaxDegradedFrac
	if frac < 0 {
		return true
	}
	deg := 0
	for _, n := range c.nodes {
		if n.degraded() {
			deg++
		}
	}
	c.nodesDeg.Set(int64(deg))
	return float64(deg) <= frac*float64(len(c.nodes))
}

// SubmitWait routes one request to its owning node and blocks for the
// response. Admission and liveness failures come back as Response.Err
// (ErrDraining, ErrOverloaded, ErrNodeDown, ErrClosed) — all
// shed-and-retry class, none fatal to the cluster.
func (c *Cluster) SubmitWait(req mcpool.Request) mcpool.Response {
	if c.closed.Load() {
		return mcpool.Response{Err: ErrClosed}
	}
	if c.draining.Load() {
		return mcpool.Response{Err: ErrDraining}
	}
	if !c.admit() {
		c.shed.Inc()
		return mcpool.Response{Err: ErrOverloaded}
	}
	n := c.nodes[c.NodeOf(req.Addr)]
	n.mu.RLock()
	pool := n.pool
	n.mu.RUnlock()
	if pool == nil {
		c.downSubmits.Inc()
		return mcpool.Response{Err: ErrNodeDown}
	}
	c.admitted.Inc()
	resp := pool.SubmitWait(req)
	if errors.Is(resp.Err, mcpool.ErrClosed) {
		// Lost the race with a concurrent Kill: the node died under the
		// request. Same contract as arriving after the kill.
		c.downSubmits.Inc()
		resp.Err = ErrNodeDown
	}
	return resp
}

// Read is shorthand for a read SubmitWait.
func (c *Cluster) Read(addr uint64) mcpool.Response {
	return c.SubmitWait(mcpool.Request{Kind: mcpool.OpRead, Addr: addr})
}

// Kill abruptly takes node i out of service, the soak/chaos mode's
// power-cut analogue: the pool closes (queued work drains, in-flight
// responses deliver), volatile state — memoization tables, profiler
// estimates — dies with it, and only the durable per-shard journal
// bytes survive for Restart to recover from. Requests routed to the
// node fail with ErrNodeDown until then. With Journal on, the
// incarnation's applied-op journal is captured as a closed Segment
// first, so chaos verification can still replay the killed interval.
func (c *Cluster) Kill(i int) error {
	n := c.nodes[i]
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.pool == nil {
		return fmt.Errorf("cluster: node %d is already down", i)
	}
	pool := n.pool
	pool.Close()
	shards := pool.NumShards()
	seg := Segment{Baseline: n.baseline}
	if c.cfg.Node.Journal {
		seg.Journals = make([][]mcpool.Applied, shards)
		for s := 0; s < shards; s++ {
			seg.Journals[s] = pool.JournalOf(s)
		}
	}
	if c.cfg.Node.Persist {
		seg.Plogs = make([][]byte, shards)
		for s := 0; s < shards; s++ {
			seg.Plogs[s] = pool.PersistedJournal(s)
		}
	}
	n.segs = append(n.segs, seg)
	n.plogs = seg.Plogs
	n.pool = nil
	n.profiler = nil
	c.kills.Inc()
	c.nodesUp.Set(c.countUp())
	c.rec.Record(flight.KindCrash, -1, uint64(i), int64(len(n.segs)), int64(n.gen))
	return nil
}

// Restart brings a killed node back: a fresh pool (empty memoization,
// fresh profiler — exactly what survives a real power cycle) recovered
// from the durable journals the Kill captured, via the internal/nvm
// redo path. Returns the per-shard recovery report.
func (c *Cluster) Restart(i int) ([]nvm.ShardRecovery, error) {
	n := c.nodes[i]
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.pool != nil {
		return nil, fmt.Errorf("cluster: node %d is already up", i)
	}
	plogs := n.plogs
	if plogs == nil && c.cfg.Node.Persist {
		plogs = make([][]byte, c.shardCount())
	}
	if c.cfg.BreakRecovery && plogs != nil {
		plogs = dropNewestRecords(plogs)
	}
	n.gen++
	if err := c.startNode(n, plogs); err != nil {
		n.gen--
		return nil, fmt.Errorf("cluster: node %d restart: %w", i, err)
	}
	c.restarts.Inc()
	c.nodesUp.Set(c.countUp())
	c.rec.Record(flight.KindNote, -1, uint64(i), int64(n.gen), int64(len(n.segs)))
	return n.recovery, nil
}

// dropNewestRecords is BreakRecovery's intentional bug: every shard's
// journal loses its newest durable record before recovery sees it.
func dropNewestRecords(plogs [][]byte) [][]byte {
	out := make([][]byte, len(plogs))
	for i, raw := range plogs {
		entries, _, err := mcpool.DecodeJournal(raw)
		if err != nil && err != mcpool.ErrTorn {
			out[i] = raw
			continue
		}
		var buf []byte
		for _, e := range entries[:max(0, len(entries)-1)] {
			buf = mcpool.AppendEntry(buf, e)
		}
		out[i] = buf
	}
	return out
}

func (c *Cluster) shardCount() int {
	if c.cfg.Node.Shards > 0 {
		return c.cfg.Node.Shards
	}
	return 8 // mcpool's default
}

func (c *Cluster) countUp() int64 {
	var up int64
	for _, n := range c.nodes {
		if n.pool != nil {
			up++
		}
	}
	return up
}

// Flush fences every live node (mcpool.Flush semantics per node).
func (c *Cluster) Flush() {
	for _, n := range c.nodes {
		n.mu.RLock()
		pool := n.pool
		n.mu.RUnlock()
		if pool != nil {
			pool.Flush()
		}
	}
}

// FlushBarrier flushes every live node and marks its durable epoch,
// returning per-node per-shard durable seqs (nil entry for a node
// that is down — its durable epoch is whatever its Kill captured).
func (c *Cluster) FlushBarrier() [][]uint64 {
	out := make([][]uint64, len(c.nodes))
	for i, n := range c.nodes {
		n.mu.RLock()
		pool := n.pool
		n.mu.RUnlock()
		if pool != nil {
			out[i] = pool.FlushBarrier()
		}
	}
	return out
}

// Drain fences the cluster for graceful shutdown: new submissions are
// rejected with ErrDraining from this call on, while everything
// already admitted drains and is marked durable via FlushBarrier — so
// the per-shard journals cover every acknowledged request. Returns
// the per-node durable flush epochs. The monitoring/verification
// surfaces stay functional after Drain; Close tears the pools down.
func (c *Cluster) Drain() [][]uint64 {
	c.draining.Store(true)
	return c.FlushBarrier()
}

// Draining reports whether Drain has been called.
func (c *Cluster) Draining() bool { return c.draining.Load() }

// Close drains and stops every node. Safe to call more than once.
func (c *Cluster) Close() {
	if c.closed.Swap(true) {
		return
	}
	c.draining.Store(true)
	for _, n := range c.nodes {
		n.mu.Lock()
		if n.pool != nil {
			n.pool.Close()
		}
		n.mu.Unlock()
	}
}

// Aggregate sums every live node's pool aggregate plus the cluster
// frontend's own accounting.
type Aggregate struct {
	mcpool.Aggregate
	Admitted    uint64
	Shed        uint64 // rejected by the admission policy
	DownSubmits uint64 // routed to a dead node
	Kills       uint64
	Restarts    uint64
	NodesUp     int
}

// Aggregate snapshots the cluster-wide totals. Counters of killed
// incarnations are frozen in their node registries but not re-summed
// here: Aggregate answers "what is the cluster doing now".
func (c *Cluster) Aggregate() Aggregate {
	var a Aggregate
	for _, n := range c.nodes {
		n.mu.RLock()
		pool := n.pool
		n.mu.RUnlock()
		if pool == nil {
			continue
		}
		na := pool.Aggregate()
		a.NodesUp++
		a.Reads += na.Reads
		a.Writes += na.Writes
		a.CounterModeWrites += na.CounterModeWrites
		a.CounterlessWrites += na.CounterlessWrites
		a.MemoHits += na.MemoHits
		a.MemoMisses += na.MemoMisses
		a.Corrections += na.Corrections
		a.EntropyResolved += na.EntropyResolved
		a.DUEs += na.DUEs
		a.MACFailures += na.MACFailures
		a.ModeSwitches += na.ModeSwitches
		a.DegradedWrites += na.DegradedWrites
		a.Submitted += na.Submitted
		a.Completed += na.Completed
		a.Batches += na.Batches
		a.Contention += na.Contention
		if na.MaxQueueDepth > a.MaxQueueDepth {
			a.MaxQueueDepth = na.MaxQueueDepth
		}
	}
	a.Admitted = c.admitted.Value()
	a.Shed = c.shed.Value()
	a.DownSubmits = c.downSubmits.Value()
	a.Kills = c.kills.Value()
	a.Restarts = c.restarts.Value()
	return a
}

// Sample reads the cluster's instantaneous load: the per-shard queue
// depths of every node concatenated in node order (a down node
// contributes zeros, keeping the column layout stable for CSV
// timelines), plus the summed counters.
func (c *Cluster) Sample() mcpool.Sample {
	var out mcpool.Sample
	shards := c.shardCount()
	for _, n := range c.nodes {
		n.mu.RLock()
		pool := n.pool
		n.mu.RUnlock()
		if pool == nil {
			out.QueueDepths = append(out.QueueDepths, make([]int, shards)...)
			continue
		}
		s := pool.Sample()
		out.QueueDepths = append(out.QueueDepths, s.QueueDepths...)
		out.TotalDepth += s.TotalDepth
		out.Submitted += s.Submitted
		out.Completed += s.Completed
		out.Degraded += s.Degraded
		out.Batches += s.Batches
	}
	return out
}

// Watermarks returns each live node's current effective watermark
// (-1 for a node that is down).
func (c *Cluster) Watermarks() []int {
	out := make([]int, len(c.nodes))
	for i, n := range c.nodes {
		n.mu.RLock()
		pool := n.pool
		n.mu.RUnlock()
		if pool == nil {
			out[i] = -1
			continue
		}
		out[i] = pool.Watermark()
	}
	return out
}

// Profilers returns every live node's current profiler, indexed by
// node (nil for down or unprofiled nodes). A restart replaces a
// node's profiler — volatile state dies with the incarnation — so
// callers should re-read per use, not cache.
func (c *Cluster) Profilers() []*prof.Profiler {
	out := make([]*prof.Profiler, len(c.nodes))
	for i, n := range c.nodes {
		n.mu.RLock()
		out[i] = n.profiler
		n.mu.RUnlock()
	}
	return out
}

// SubmitP99 returns the worst live node's submit→wait p99 estimate in
// nanoseconds (0 when unprofiled) — the cluster-level SLO input.
func (c *Cluster) SubmitP99() int64 {
	var worst int64
	for _, pf := range c.Profilers() {
		if pf == nil {
			continue
		}
		if p99 := int64(pf.SubmitWait.Snapshot().P99); p99 > worst {
			worst = p99
		}
	}
	return worst
}

// WatermarkMoves sums adaptive-watermark adjustments across live
// nodes (0 for static watermarks or an all-down cluster).
func (c *Cluster) WatermarkMoves() uint64 {
	var moves uint64
	for _, n := range c.nodes {
		n.mu.RLock()
		pool := n.pool
		n.mu.RUnlock()
		if pool != nil {
			moves += pool.WatermarkMoves()
		}
	}
	return moves
}

// AttributionSummary merges per-op latency attribution across every
// live node's shards (nil when attribution is off).
func (c *Cluster) AttributionSummary() []obs.StageSummary {
	if !c.cfg.Node.Attribution {
		return nil
	}
	var as []*obs.Attributor
	for _, n := range c.nodes {
		n.mu.RLock()
		pool := n.pool
		n.mu.RUnlock()
		if pool == nil {
			continue
		}
		for s := 0; s < pool.NumShards(); s++ {
			as = append(as, pool.ShardAttribution(s))
		}
	}
	return obs.SummarizeAttributors(as)
}

// Registry returns the cluster's own registry (admission counters,
// node liveness gauges).
func (c *Cluster) Registry() *obs.Registry { return c.reg }

// NodeRegistry returns node i's registry. The registry is stable
// across restarts; each incarnation's pool metrics carry a gen label,
// so a killed incarnation's series stay visible, frozen at their
// final values.
func (c *Cluster) NodeRegistry(i int) *obs.Registry { return c.nodes[i].reg }

// LastRecovery returns node i's most recent restart recovery report
// (nil if the node never restarted).
func (c *Cluster) LastRecovery(i int) []nvm.ShardRecovery {
	n := c.nodes[i]
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.recovery
}

func (c *Cluster) registerMetrics() {
	c.reg.RegisterCounter("cluster_admitted_total", &c.admitted)
	c.reg.RegisterCounter("cluster_shed_total", &c.shed)
	c.reg.RegisterCounter("cluster_node_down_submits_total", &c.downSubmits)
	c.reg.RegisterCounter("cluster_kills_total", &c.kills)
	c.reg.RegisterCounter("cluster_restarts_total", &c.restarts)
	c.reg.RegisterGauge("cluster_nodes_up", &c.nodesUp)
	c.reg.RegisterGauge("cluster_degraded_nodes", &c.nodesDeg)
}

package cluster

// Chaos verification: prove that a cluster's history — including
// every kill/restart — replays bit-identically. Each node's life is a
// sequence of Segments (incarnations); within one segment the
// per-shard journal is a total order over that shard's blocks, and
// the incarnation began either empty (gen 0) or from an Entry.Apply
// redo of its durable baseline. Both starting states have EMPTY
// volatile tables (memoization, profiler estimates), so re-executing
// the segment's journal on a fresh engine seeded the same way is
// fully deterministic and must reproduce every journaled response —
// plaintext, ReadInfo, and stored mode — bit for bit.
//
// Cross-checking re-execution (semantic redo of requests) against the
// durable journal (Entry.Apply of snapshotted codewords) is the
// point: the former proves the pool applied what it acknowledged, the
// latter proves the durable log captured exactly the state a restart
// will rebuild. A divergence in either direction is a Mismatch.

import (
	"fmt"

	"counterlight/internal/core"
	"counterlight/internal/epoch"
	"counterlight/internal/mcpool"
)

// Mismatch is one verification failure, located by node incarnation
// (Seg), shard, and journal seq.
type Mismatch struct {
	Node   int
	Seg    int // segment index; == number of closed segments for the live one
	Shard  int
	Seq    uint64 // journal seq of the diverging op (0 for state diffs)
	Detail string
}

func (m Mismatch) String() string {
	return fmt.Sprintf("node %d seg %d shard %d seq %d: %s", m.Node, m.Seg, m.Shard, m.Seq, m.Detail)
}

// Verify replays every node's full segment history. Requires the node
// template to run with Journal and Persist on.
func (c *Cluster) Verify() ([]Mismatch, error) {
	var all []Mismatch
	for i := range c.nodes {
		ms, err := c.VerifyNode(i)
		if err != nil {
			return all, err
		}
		all = append(all, ms...)
	}
	return all, nil
}

// History returns node i's full segment history: every closed
// segment plus — when the node is live — a snapshot of the current
// incarnation, its journal trimmed to the durable log's last seq so
// the pair is consistent even under traffic. The live snapshot is
// capped by snapshot order: apply() appends to the in-memory journal
// and the durable log under one shard lock, so a journal snapshot
// taken after the plog snapshot covers every seq the plog has.
func (c *Cluster) History(i int) []Segment {
	n := c.nodes[i]
	n.mu.RLock()
	defer n.mu.RUnlock()
	segs := append([]Segment(nil), n.segs...)
	if n.pool == nil {
		return segs
	}
	shards := n.pool.NumShards()
	live := Segment{Baseline: n.baseline, Plogs: make([][]byte, shards), Journals: make([][]mcpool.Applied, shards)}
	for sh := 0; sh < shards; sh++ {
		live.Plogs[sh] = n.pool.PersistedJournal(sh)
		live.Journals[sh], live.Plogs[sh] = trimToPlog(n.pool.JournalOf(sh), live.Plogs[sh])
	}
	return append(segs, live)
}

// VerifyNode replays node i's closed segments plus — when the node is
// live — its current incarnation. The live segment's final-state diff
// against the live shard engines runs only once the cluster is
// draining (quiesced); under traffic the replay still checks every
// journaled response against the durable log captured at the same
// seq.
func (c *Cluster) VerifyNode(i int) ([]Mismatch, error) {
	if !c.cfg.Node.Journal || !c.cfg.Node.Persist {
		return nil, fmt.Errorf("cluster: verification needs Journal and Persist in the node config")
	}
	n := c.nodes[i]
	n.mu.RLock()
	nsegs := len(n.segs)
	pool := n.pool
	n.mu.RUnlock()
	segs := c.History(i)

	var ms []Mismatch
	for segIdx, seg := range segs {
		var finalEng func(sh int, fn func(*core.Engine))
		if pool != nil && segIdx == nsegs && c.draining.Load() {
			finalEng = func(sh int, fn func(*core.Engine)) { pool.WithShardEngine(sh, fn) }
		}
		for sh := range seg.Journals {
			var base []byte
			if seg.Baseline != nil {
				base = seg.Baseline[sh]
			}
			ms = append(ms, c.verifyShard(i, segIdx, sh, base, seg.Journals[sh], seg.Plogs[sh], finalEng)...)
		}
	}
	return ms, nil
}

// trimToPlog drops journal entries newer than the plog's last durable
// seq, pairing the two snapshots at a single point in the shard's
// apply order.
func trimToPlog(journal []mcpool.Applied, plog []byte) ([]mcpool.Applied, []byte) {
	entries, off, err := mcpool.DecodeJournal(plog)
	if err != nil && err != mcpool.ErrTorn {
		return journal, plog
	}
	plog = plog[:off]
	var last uint64
	if len(entries) > 0 {
		last = entries[len(entries)-1].Seq
	}
	for len(journal) > 0 && journal[len(journal)-1].Seq > last {
		journal = journal[:len(journal)-1]
	}
	return journal, plog
}

// verifyShard checks one (segment, shard): re-execute the in-memory
// journal from the baseline, demanding bit-identical responses, then
// diff the re-executed end state against an engine rebuilt purely
// from the durable journal bytes — and, when finalEng is set, against
// the live engine itself. base is the shard's durable baseline bytes
// (nil for a first incarnation).
func (c *Cluster) verifyShard(nodeID, segIdx, sh int, base []byte, journal []mcpool.Applied, plog []byte, finalEng func(int, func(*core.Engine))) []Mismatch {
	mm := func(seq uint64, format string, args ...any) Mismatch {
		return Mismatch{Node: nodeID, Seg: segIdx, Shard: sh, Seq: seq, Detail: fmt.Sprintf(format, args...)}
	}
	replay, err := c.freshEngine()
	if err != nil {
		return []Mismatch{mm(0, "replay engine: %v", err)}
	}
	if err := applyRaw(replay, base); err != nil {
		return []Mismatch{mm(0, "baseline redo: %v", err)}
	}
	for _, a := range journal {
		if d := reexecute(replay, a); d != "" {
			// The shard's state has diverged; later ops would cascade.
			return []Mismatch{mm(a.Seq, "%s", d)}
		}
	}
	var ms []Mismatch
	durable, err := c.freshEngine()
	if err != nil {
		return []Mismatch{mm(0, "durable engine: %v", err)}
	}
	if err := applyRaw(durable, plog); err != nil {
		ms = append(ms, mm(0, "durable redo: %v", err))
	} else if d := diffState(replay, durable); d != "" {
		ms = append(ms, mm(0, "re-executed state vs durable log: %s", d))
	}
	if finalEng != nil {
		finalEng(sh, func(liveE *core.Engine) {
			if d := diffState(replay, liveE); d != "" {
				ms = append(ms, mm(0, "re-executed state vs live engine: %s", d))
			}
		})
	}
	return ms
}

func (c *Cluster) freshEngine() (*core.Engine, error) {
	return core.NewEngine(c.cfg.Node.Engine)
}

// applyRaw redoes a raw durable journal onto eng, tolerating a torn
// tail (truncated, exactly as recovery would).
func applyRaw(eng *core.Engine, raw []byte) error {
	entries, _, err := mcpool.DecodeJournal(raw)
	if err != nil && err != mcpool.ErrTorn {
		return err
	}
	for _, e := range entries {
		if err := e.Apply(eng); err != nil {
			return err
		}
	}
	return nil
}

// reexecute applies one journaled request to the replay engine and
// compares against the journaled response. Returns "" on bit-identity
// or a mismatch description. Mirrors mcpool's apply: the journal
// records the RESOLVED mode for Auto writes, so replay never needs
// the queue state; Degraded is the one load-dependent field and is
// not compared.
func reexecute(eng *core.Engine, a mcpool.Applied) string {
	req, want := a.Req, a.Resp
	switch req.Kind {
	case mcpool.OpRead:
		plain, info, err := eng.Read(req.Addr)
		switch {
		case (err == nil) != (want.Err == nil):
			return fmt.Sprintf("read %#x: replay err=%v, journaled err=%v", req.Addr, err, want.Err)
		case plain != want.Plain:
			return fmt.Sprintf("read %#x: plaintext differs from journaled response", req.Addr)
		case info != want.Info:
			return fmt.Sprintf("read %#x: ReadInfo %+v, journaled %+v", req.Addr, info, want.Info)
		}
	case mcpool.OpWrite:
		err := eng.WriteAs(req.VM, req.Addr, req.Data, req.Mode)
		if (err == nil) != (want.Err == nil) {
			return fmt.Sprintf("write %#x: replay err=%v, journaled err=%v", req.Addr, err, want.Err)
		}
		applied := req.Mode
		if err == nil && eng.IsPermanentCounterless(req.Addr) {
			applied = epoch.Counterless
		}
		if applied != want.Mode {
			return fmt.Sprintf("write %#x: replay stored %v, journal says %v", req.Addr, applied, want.Mode)
		}
	case mcpool.OpFault:
		err := eng.InjectFault(req.Addr, req.Chip, req.Pattern)
		if (err == nil) != (want.Err == nil) {
			return fmt.Sprintf("fault %#x: replay err=%v, journaled err=%v", req.Addr, err, want.Err)
		}
	default:
		return fmt.Sprintf("unknown journaled op kind %d", req.Kind)
	}
	return ""
}

// diffState compares two engines' full durable state surface:
// presence, stored codeword, counter, VM ownership, and
// permanent-counterless marking of every block.
func diffState(got, want *core.Engine) string {
	gb, wb := got.Blocks(), want.Blocks()
	if len(gb) != len(wb) {
		return fmt.Sprintf("%d blocks vs %d", len(gb), len(wb))
	}
	for _, a := range wb {
		wcw, wok := want.Snapshot(a)
		gcw, gok := got.Snapshot(a)
		switch {
		case wok != gok || wcw != gcw:
			return fmt.Sprintf("block %#x codeword differs", a)
		case want.Counters().Counter(a) != got.Counters().Counter(a):
			return fmt.Sprintf("block %#x counter %d vs %d", a, got.Counters().Counter(a), want.Counters().Counter(a))
		case want.IsPermanentCounterless(a) != got.IsPermanentCounterless(a):
			return fmt.Sprintf("block %#x permanent-counterless differs", a)
		case want.VMOf(a) != got.VMOf(a):
			return fmt.Sprintf("block %#x vm %d vs %d", a, got.VMOf(a), want.VMOf(a))
		}
	}
	return ""
}

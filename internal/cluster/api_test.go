package cluster

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"counterlight/internal/mcpool"
)

func apiServer(t *testing.T, cfg Config) (*Cluster, *httptest.Server) {
	t.Helper()
	c := testCluster(t, cfg)
	srv := httptest.NewServer(NewAPI(c).Handler())
	t.Cleanup(srv.Close)
	return c, srv
}

func postJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// The happy path over the wire: write a block, read it back, flush.
func TestAPIWriteReadFlush(t *testing.T) {
	_, srv := apiServer(t, Config{Nodes: 2, Node: mcpool.Config{Shards: 1, Watermark: -1, Journal: true, Persist: true}})
	payload := bytes.Repeat([]byte{0xAB}, 64)

	resp := postJSON(t, srv.URL+"/v1/submit", submitRequest{Op: "write", Addr: 64, Data: hex.EncodeToString(payload)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("write status %d", resp.StatusCode)
	}
	var out submitResponse
	decodeBody(t, resp, &out)
	if out.Node != 1 || out.Mode != "counter" {
		t.Fatalf("write response %+v", out)
	}

	resp, err := http.Get(srv.URL + "/v1/read?addr=64")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read status %d", resp.StatusCode)
	}
	decodeBody(t, resp, &out)
	if out.Plain != hex.EncodeToString(payload) {
		t.Fatalf("read returned %q", out.Plain)
	}

	resp = postJSON(t, srv.URL+"/v1/flush", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush status %d", resp.StatusCode)
	}
	var fl struct {
		Seqs [][]uint64 `json:"durable_seqs"`
	}
	decodeBody(t, resp, &fl)
	if len(fl.Seqs) != 2 {
		t.Fatalf("flush barrier %v", fl.Seqs)
	}
}

// Malformed requests are the caller's fault: 400, never a submit.
func TestAPIBadRequests(t *testing.T) {
	_, srv := apiServer(t, Config{Nodes: 1, Node: mcpool.Config{Shards: 1, Watermark: -1}})
	for _, sr := range []submitRequest{
		{Op: "transmogrify", Addr: 0},
		{Op: "write", Addr: 0, Data: "zz"},
		{Op: "write", Addr: 0, Data: hex.EncodeToString(make([]byte, 65))},
		{Op: "write", Addr: 0, Mode: "quantum"},
	} {
		resp := postJSON(t, srv.URL+"/v1/submit", sr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%+v: status %d, want 400", sr, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/read?addr=notanaddr")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad addr: status %d, want 400", resp.StatusCode)
	}
	// A read of a never-written block is served and fails in the data
	// plane: 422, not a capacity signal.
	resp, err = http.Get(srv.URL + "/v1/read?addr=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unwritten read: status %d, want 422", resp.StatusCode)
	}
}

// Capacity errors map onto transport codes: a dead node serves 503,
// an overloaded cluster 429, a draining cluster 503 everywhere.
func TestAPICapacityStatus(t *testing.T) {
	c, srv := apiServer(t, Config{Nodes: 2, MaxDegradedFrac: -1, Node: mcpool.Config{Shards: 1, Watermark: -1}})
	if err := c.Kill(0); err != nil {
		t.Fatal(err)
	}
	resp := postJSON(t, srv.URL+"/v1/submit", submitRequest{Op: "read", Addr: 0})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dead node: status %d, want 503", resp.StatusCode)
	}

	var topo struct {
		Nodes    []topologyNode `json:"nodes"`
		Draining bool           `json:"draining"`
	}
	tr, err := http.Get(srv.URL + "/v1/topology")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, tr, &topo)
	if len(topo.Nodes) != 2 || topo.Nodes[0].Up || !topo.Nodes[1].Up {
		t.Fatalf("topology after kill: %+v", topo)
	}

	over, srv2 := apiServer(t, Config{Nodes: 2, MaxDegradedFrac: 0.4, Node: mcpool.Config{Shards: 1, Watermark: -1}})
	if err := over.Kill(0); err != nil {
		t.Fatal(err)
	}
	resp = postJSON(t, srv2.URL+"/v1/submit", submitRequest{Op: "read", Addr: 64})
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded: status %d, want 429", resp.StatusCode)
	}

	c.Drain()
	resp = postJSON(t, srv.URL+"/v1/submit", submitRequest{Op: "read", Addr: 64})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 without Retry-After")
	}
	resp.Body.Close()
	resp = postJSON(t, srv.URL+"/v1/flush", struct{}{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining flush: status %d, want 503", resp.StatusCode)
	}
}

package cluster

// The cluster's HTTP request plane: a small JSON API that clserve
// mounts next to the observability surface, turning the cluster into
// a standing network service. Admission outcomes map onto transport
// status codes the way a load balancer expects them to:
//
//	ErrOverloaded → 429 (shed: too many nodes degraded, retry later)
//	ErrDraining   → 503 + Retry-After (graceful shutdown in progress)
//	ErrNodeDown   → 503 (the owning node is down until restart)
//	ErrClosed     → 503
//
// Data plane errors (a DUE on read, an out-of-range address) are the
// caller's problem, not capacity signals: 422 and 400 respectively.

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"counterlight/internal/cipher"
	"counterlight/internal/epoch"
	"counterlight/internal/mcpool"
)

// API serves the cluster request plane. Mount with Routes.
type API struct {
	c *Cluster
}

// NewAPI wraps c.
func NewAPI(c *Cluster) *API { return &API{c: c} }

// Routes registers the request plane onto mux.
func (a *API) Routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/submit", a.handleSubmit)
	mux.HandleFunc("GET /v1/read", a.handleRead)
	mux.HandleFunc("POST /v1/flush", a.handleFlush)
	mux.HandleFunc("GET /v1/topology", a.handleTopology)
}

// Handler returns a standalone handler for the request plane.
func (a *API) Handler() http.Handler {
	mux := http.NewServeMux()
	a.Routes(mux)
	return mux
}

// submitRequest is the wire form of one operation.
type submitRequest struct {
	Op   string `json:"op"`             // "read" | "write" | "fault"
	Addr uint64 `json:"addr"`           // block-aligned byte address
	Data string `json:"data,omitempty"` // write: hex payload, ≤128 hex chars, zero-padded
	Mode string `json:"mode,omitempty"` // write: "counter" | "counterless" (ignored with auto)
	Auto bool   `json:"auto,omitempty"` // write: let the watermark policy pick the mode
	VM   int    `json:"vm,omitempty"`   // write: owning VM
	Chip int    `json:"chip,omitempty"` // fault: target chip
	Patt uint64 `json:"pattern,omitempty"`
}

type submitResponse struct {
	Node     int    `json:"node"`
	Mode     string `json:"mode,omitempty"`
	Degraded bool   `json:"degraded,omitempty"`
	Plain    string `json:"plain,omitempty"`
	Error    string `json:"error,omitempty"`
}

func (a *API) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sr submitRequest
	if err := json.NewDecoder(r.Body).Decode(&sr); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	req, err := sr.toRequest()
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	a.serve(w, req)
}

func (a *API) handleRead(w http.ResponseWriter, r *http.Request) {
	addr, err := strconv.ParseUint(r.URL.Query().Get("addr"), 0, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "addr: want a block-aligned address, decimal or 0x-hex")
		return
	}
	a.serve(w, mcpool.Request{Kind: mcpool.OpRead, Addr: addr})
}

func (a *API) serve(w http.ResponseWriter, req mcpool.Request) {
	resp := a.c.SubmitWait(req)
	if code, capacity := statusOf(resp.Err); resp.Err != nil && capacity {
		if code == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		httpError(w, code, resp.Err.Error())
		return
	}
	out := submitResponse{Node: a.c.NodeOf(req.Addr)}
	if resp.Err != nil {
		// A data-plane failure: the request was served and the answer
		// is "your data is bad" (DUE, MAC failure, range error).
		out.Error = resp.Err.Error()
		writeJSON(w, http.StatusUnprocessableEntity, out)
		return
	}
	out.Mode = resp.Mode.String()
	out.Degraded = resp.Degraded
	if req.Kind == mcpool.OpRead {
		out.Plain = hex.EncodeToString(resp.Plain[:])
	}
	writeJSON(w, http.StatusOK, out)
}

func (a *API) handleFlush(w http.ResponseWriter, r *http.Request) {
	if a.c.Draining() {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, ErrDraining.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"durable_seqs": a.c.FlushBarrier()})
}

type topologyNode struct {
	ID        int  `json:"id"`
	Up        bool `json:"up"`
	Degraded  bool `json:"degraded"`
	Watermark int  `json:"watermark"`
	Gen       int  `json:"gen"`
}

func (a *API) handleTopology(w http.ResponseWriter, r *http.Request) {
	wms := a.c.Watermarks()
	nodes := make([]topologyNode, a.c.Nodes())
	for i := range nodes {
		n := a.c.nodes[i]
		n.mu.RLock()
		gen := n.gen
		n.mu.RUnlock()
		nodes[i] = topologyNode{
			ID:        i,
			Up:        a.c.Up(i),
			Degraded:  n.degraded(),
			Watermark: wms[i],
			Gen:       gen,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"nodes":      nodes,
		"shards":     a.c.shardCount(),
		"draining":   a.c.Draining(),
		"interleave": "striped",
	})
}

func (sr submitRequest) toRequest() (mcpool.Request, error) {
	req := mcpool.Request{Addr: sr.Addr, VM: sr.VM}
	switch sr.Op {
	case "read":
		req.Kind = mcpool.OpRead
	case "write":
		req.Kind = mcpool.OpWrite
		if sr.Auto {
			req.Auto = true
		} else {
			switch sr.Mode {
			case "counter", "":
				req.Mode = epoch.CounterMode
			case "counterless":
				req.Mode = epoch.Counterless
			default:
				return req, fmt.Errorf("mode: want counter or counterless, got %q", sr.Mode)
			}
		}
		raw, err := hex.DecodeString(sr.Data)
		if err != nil {
			return req, fmt.Errorf("data: want hex: %v", err)
		}
		if len(raw) > cipher.BlockSize {
			return req, fmt.Errorf("data: %d bytes exceeds the %d-byte block", len(raw), cipher.BlockSize)
		}
		copy(req.Data[:], raw)
	case "fault":
		req.Kind = mcpool.OpFault
		req.Chip = sr.Chip
		req.Pattern = sr.Patt
	default:
		return req, fmt.Errorf("op: want read, write, or fault, got %q", sr.Op)
	}
	return req, nil
}

// statusOf maps a submission error onto its transport status;
// capacity is true for admission/liveness failures (the request never
// reached an engine).
func statusOf(err error) (code int, capacity bool) {
	switch {
	case err == nil:
		return http.StatusOK, false
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests, true
	case errors.Is(err, ErrDraining), errors.Is(err, ErrNodeDown), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable, true
	default:
		return http.StatusUnprocessableEntity, false
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

package cluster

import (
	"errors"
	"sync"
	"testing"
	"time"

	"counterlight/internal/core"
	"counterlight/internal/mcpool"
	"counterlight/internal/obs/flight"
)

func testCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	if cfg.Node.Engine == (core.EngineOptions{}) {
		cfg.Node.Engine = core.DefaultEngineOptions()
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// Routing is pure and total: every address maps to exactly one node,
// and consecutive blocks interleave round-robin.
func TestBlockInterleave(t *testing.T) {
	for nodes := 1; nodes <= 5; nodes++ {
		for b := uint64(0); b < 64; b++ {
			if got, want := BlockInterleave(b*64, nodes), int(b%uint64(nodes)); got != want {
				t.Fatalf("block %d over %d nodes routed to %d, want %d", b, nodes, got, want)
			}
			// Intra-block offsets stay on the block's node.
			if BlockInterleave(b*64+63, nodes) != BlockInterleave(b*64, nodes) {
				t.Fatalf("block %d: offsets split across nodes", b)
			}
		}
	}
}

// A cluster serves a deterministic schedule exactly like a single
// pool would: every write lands, every read returns the last write.
func TestClusterServesSchedule(t *testing.T) {
	c := testCluster(t, Config{Nodes: 3, Node: mcpool.Config{Shards: 2, Watermark: -1}})
	sched := mcpool.Schedule(mcpool.ScheduleConfig{Ops: 2000, Blocks: 256, ReadFraction: 0.3, Seed: 7})
	last := map[uint64][64]byte{}
	for _, req := range sched {
		resp := c.SubmitWait(req)
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
		if req.Kind == mcpool.OpWrite {
			last[req.Addr] = req.Data
		}
	}
	for addr, want := range last {
		resp := c.Read(addr)
		if resp.Err != nil {
			t.Fatalf("read %#x: %v", addr, resp.Err)
		}
		if resp.Plain != want {
			t.Fatalf("read %#x returned wrong payload", addr)
		}
	}
	a := c.Aggregate()
	if a.NodesUp != 3 || a.Writes == 0 || a.Reads == 0 {
		t.Fatalf("aggregate looks wrong: %+v", a)
	}
}

// The admission policy: with MaxDegradedFrac 0.4 on a 2-node cluster,
// one node down (1/2 > 0.4) rejects EVERYTHING with ErrOverloaded —
// including requests the surviving node could serve. Disabling
// admission (negative frac) degrades per-address instead: dead-node
// addresses fail ErrNodeDown, live-node addresses keep working.
func TestAdmissionPolicy(t *testing.T) {
	c := testCluster(t, Config{Nodes: 2, MaxDegradedFrac: 0.4, Node: mcpool.Config{Shards: 1, Watermark: -1}})
	if resp := c.SubmitWait(mcpool.Request{Kind: mcpool.OpWrite, Addr: 0, Data: [64]byte{1}}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if err := c.Kill(0); err != nil {
		t.Fatal(err)
	}
	for _, addr := range []uint64{0, 64} { // node 0 and node 1 addresses
		if resp := c.SubmitWait(mcpool.Request{Kind: mcpool.OpRead, Addr: addr}); !errors.Is(resp.Err, ErrOverloaded) {
			t.Fatalf("addr %#x past the degraded knee: err %v, want ErrOverloaded", addr, resp.Err)
		}
	}
	if got := c.Aggregate(); got.Shed != 2 {
		t.Fatalf("shed counter %d, want 2", got.Shed)
	}

	open := testCluster(t, Config{Nodes: 2, MaxDegradedFrac: -1, Node: mcpool.Config{Shards: 1, Watermark: -1}})
	if resp := open.SubmitWait(mcpool.Request{Kind: mcpool.OpWrite, Addr: 64, Data: [64]byte{2}}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if err := open.Kill(0); err != nil {
		t.Fatal(err)
	}
	if resp := open.Read(0); !errors.Is(resp.Err, ErrNodeDown) {
		t.Fatalf("dead-node read: err %v, want ErrNodeDown", resp.Err)
	}
	if resp := open.Read(64); resp.Err != nil {
		t.Fatalf("live-node read with admission disabled: %v", resp.Err)
	}
	if got := open.Aggregate(); got.DownSubmits != 1 {
		t.Fatalf("down-submit counter %d, want 1", got.DownSubmits)
	}
}

// Drain fences: in-flight work is flushed durable, new submissions
// are refused, and the fence is permanent until Close.
func TestDrain(t *testing.T) {
	c := testCluster(t, Config{Nodes: 2, Node: mcpool.Config{Shards: 2, Watermark: -1, Journal: true, Persist: true}})
	for _, req := range mcpool.Schedule(mcpool.ScheduleConfig{Ops: 300, Blocks: 128, Seed: 9}) {
		if resp := c.SubmitWait(req); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	seqs := c.Drain()
	if len(seqs) != 2 || seqs[0] == nil || seqs[1] == nil {
		t.Fatalf("drain barrier seqs %v", seqs)
	}
	if !c.Draining() {
		t.Fatal("Draining false after Drain")
	}
	if resp := c.SubmitWait(mcpool.Request{Kind: mcpool.OpRead}); !errors.Is(resp.Err, ErrDraining) {
		t.Fatalf("post-drain submit: err %v, want ErrDraining", resp.Err)
	}
	// Drained means durable: every journaled seq is at or below the
	// barrier, and verification over the fenced history is clean.
	ms, err := c.Verify()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		t.Errorf("mismatch: %s", m)
	}
}

// The full chaos cycle, serially: traffic, kill, traffic around the
// hole, restart (recovering through internal/nvm), more traffic,
// drain — then the whole multi-segment history must verify bit-clean
// and every acknowledged write must read back.
func TestKillRestartVerify(t *testing.T) {
	rec := flight.NewRing(256)
	c := testCluster(t, Config{
		Nodes:           2,
		MaxDegradedFrac: -1,
		Flight:          rec,
		Node:            mcpool.Config{Shards: 2, Watermark: -1, Journal: true, Persist: true},
	})
	sched := mcpool.Schedule(mcpool.ScheduleConfig{Ops: 3000, Blocks: 256, ReadFraction: 0.25, Seed: 21})
	last := map[uint64][64]byte{}
	run := func(reqs []mcpool.Request) {
		t.Helper()
		for _, req := range reqs {
			resp := c.SubmitWait(req)
			if errors.Is(resp.Err, ErrNodeDown) {
				continue // the hole: rejected, not acknowledged
			}
			if resp.Err != nil {
				if _, ok := last[req.Addr]; req.Kind == mcpool.OpRead && !ok {
					// The block's only write bounced off the dead
					// node, so this read of it is allowed to fail.
					continue
				}
				t.Fatal(resp.Err)
			}
			if req.Kind == mcpool.OpWrite {
				last[req.Addr] = req.Data
			}
		}
	}
	run(sched[:1000])
	if err := c.Kill(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(1); err == nil {
		t.Fatal("double kill succeeded")
	}
	run(sched[1000:2000]) // node 1's share bounces off ErrNodeDown
	reps, err := c.Restart(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("recovery reports for %d shards, want 2", len(reps))
	}
	for _, rep := range reps {
		if rep.Torn {
			t.Errorf("shard %d: torn recovery from a cleanly killed node", rep.Shard)
		}
		if rep.Replayed == 0 {
			t.Errorf("shard %d: nothing recovered", rep.Shard)
		}
	}
	run(sched[2000:])
	c.Drain()

	ms, err := c.Verify()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		t.Errorf("mismatch: %s", m)
	}
	c.draining.Store(false) // reopen for the read-back oracle
	for addr, want := range last {
		resp := c.Read(addr)
		if resp.Err != nil {
			t.Fatalf("read %#x after chaos: %v", addr, resp.Err)
		}
		if resp.Plain != want {
			t.Fatalf("read %#x: stale or wrong data after kill/restart", addr)
		}
	}
	a := c.Aggregate()
	if a.Kills != 1 || a.Restarts != 1 || a.NodesUp != 2 {
		t.Fatalf("chaos accounting: %+v", a)
	}
}

// BreakRecovery is the verification teeth: dropping the newest
// durable record before recovery MUST surface as stale data on
// read-back. If this test fails, the chaos campaign's oracle has no
// teeth.
func TestRestartBreakRecoveryDetected(t *testing.T) {
	c := testCluster(t, Config{
		Nodes:           1,
		MaxDegradedFrac: -1,
		BreakRecovery:   true,
		Node:            mcpool.Config{Shards: 1, Watermark: -1, Journal: true, Persist: true},
	})
	w := func(b byte) {
		t.Helper()
		if resp := c.SubmitWait(mcpool.Request{Kind: mcpool.OpWrite, Addr: 0, Data: [64]byte{b}}); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	w(1)
	w(2) // the newest durable record — BreakRecovery will eat it
	c.FlushBarrier()
	if err := c.Kill(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Restart(0); err != nil {
		t.Fatal(err)
	}
	resp := c.Read(0)
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp.Plain == ([64]byte{2}) {
		t.Fatal("broken recovery returned fresh data — the oracle cannot detect lost writes")
	}
	if resp.Plain != ([64]byte{1}) {
		t.Fatalf("broken recovery returned neither generation: %v", resp.Plain[:4])
	}
}

// Chaos under real concurrency (run with -race): submitters hammer
// the cluster while a controller kills and restarts a node
// mid-traffic. Acknowledged history must verify bit-clean afterwards.
func TestClusterChaosConcurrent(t *testing.T) {
	c := testCluster(t, Config{
		Nodes:           2,
		MaxDegradedFrac: -1,
		Node:            mcpool.Config{Shards: 2, QueueDepth: 64, Watermark: -1, Journal: true, Persist: true},
	})
	sched := mcpool.Schedule(mcpool.ScheduleConfig{Ops: 4000, Blocks: 256, ReadFraction: 0.3, Seed: 33})
	const workers = 4
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, req := range sched {
				// Partition by block so each block's op order is one
				// goroutine's program order.
				if int(req.Addr/64)%workers != g {
					continue
				}
				for {
					resp := c.SubmitWait(req)
					if errors.Is(resp.Err, ErrNodeDown) || errors.Is(resp.Err, ErrOverloaded) {
						time.Sleep(200 * time.Microsecond)
						continue
					}
					if resp.Err != nil {
						t.Errorf("op %d: %v", i, resp.Err)
					}
					break
				}
			}
		}(g)
	}
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(5 * time.Millisecond)
		if err := c.Kill(1); err != nil {
			t.Error(err)
			return
		}
		time.Sleep(5 * time.Millisecond)
		if _, err := c.Restart(1); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
	<-killed
	c.Drain()
	ms, err := c.Verify()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		t.Errorf("mismatch: %s", m)
	}
	if a := c.Aggregate(); a.Kills != 1 || a.Restarts != 1 {
		t.Fatalf("chaos accounting: %+v", a)
	}
}

// Sample keeps a stable column layout across node death: a down node
// contributes zero-depth shard columns, not a shorter row.
func TestSampleStableColumns(t *testing.T) {
	c := testCluster(t, Config{Nodes: 2, MaxDegradedFrac: -1, Node: mcpool.Config{Shards: 3, Watermark: -1}})
	if got := len(c.Sample().QueueDepths); got != 6 {
		t.Fatalf("sample columns %d, want 6", got)
	}
	if err := c.Kill(0); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Sample().QueueDepths); got != 6 {
		t.Fatalf("sample columns after kill %d, want 6", got)
	}
	if wm := c.Watermarks(); wm[0] != -1 {
		t.Fatalf("dead node watermark %d, want -1", wm[0])
	}
}

package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue[int]
	if _, _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue returned ok")
	}
	if _, _, ok := q.Peek(); ok {
		t.Error("Peek on empty queue returned ok")
	}
	if q.Len() != 0 {
		t.Error("empty queue has nonzero length")
	}
}

func TestTimeOrdering(t *testing.T) {
	var q Queue[string]
	q.Push(30, "c")
	q.Push(10, "a")
	q.Push(20, "b")
	var got []string
	for {
		_, v, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, v)
	}
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("order = %v", got)
	}
}

// Equal timestamps pop in insertion order (determinism).
func TestFIFOTieBreak(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 100; i++ {
		q.Push(42, i)
	}
	for i := 0; i < 100; i++ {
		_, v, ok := q.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d = %d (ok=%v)", i, v, ok)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	var q Queue[int]
	q.Push(5, 99)
	tm, v, ok := q.Peek()
	if !ok || tm != 5 || v != 99 {
		t.Fatalf("Peek = (%d,%d,%v)", tm, v, ok)
	}
	if q.Len() != 1 {
		t.Error("Peek removed the event")
	}
}

func TestRandomizedOrdering(t *testing.T) {
	var q Queue[int64]
	rng := rand.New(rand.NewSource(80))
	times := make([]int64, 1000)
	for i := range times {
		times[i] = int64(rng.Intn(10000))
		q.Push(times[i], times[i])
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for i := range times {
		tm, v, ok := q.Pop()
		if !ok || tm != times[i] || v != times[i] {
			t.Fatalf("pop %d: got (%d,%d), want %d", i, tm, v, times[i])
		}
	}
}

// Interleaved push/pop keeps the heap invariant.
func TestInterleaved(t *testing.T) {
	var q Queue[int64]
	rng := rand.New(rand.NewSource(81))
	last := int64(-1)
	inFlight := 0
	for i := 0; i < 10000; i++ {
		if inFlight == 0 || rng.Intn(2) == 0 {
			// Push something at or after the last popped time to
			// mimic event-driven causality.
			q.Push(last+int64(rng.Intn(100))+1, 0)
			inFlight++
		} else {
			tm, _, ok := q.Pop()
			if !ok {
				t.Fatal("unexpected empty")
			}
			if tm < last {
				t.Fatalf("time went backwards: %d after %d", tm, last)
			}
			last = tm
			inFlight--
		}
	}
}

func BenchmarkPushPop(b *testing.B) {
	var q Queue[int]
	for i := 0; i < b.N; i++ {
		q.Push(int64(i%977), i)
		if q.Len() > 64 {
			q.Pop()
		}
	}
}

// Package sim provides the discrete-event kernel of the simulator: a
// deterministic time-ordered event queue. Ties at the same timestamp
// are broken by insertion order, so multi-core interleavings are fully
// reproducible for a given seed.
package sim

import "container/heap"

// Queue is a time-ordered priority queue of payloads of type T.
// The zero value is ready to use.
type Queue[T any] struct {
	h eventHeap[T]
	n uint64 // insertion sequence for deterministic tie-breaks
}

type event[T any] struct {
	time    int64
	seq     uint64
	payload T
}

type eventHeap[T any] []event[T]

func (h eventHeap[T]) Len() int { return len(h) }
func (h eventHeap[T]) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap[T]) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap[T]) Push(x any)   { *h = append(*h, x.(event[T])) }
func (h *eventHeap[T]) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Push schedules payload at the given time.
func (q *Queue[T]) Push(time int64, payload T) {
	q.n++
	heap.Push(&q.h, event[T]{time: time, seq: q.n, payload: payload})
}

// Pop removes and returns the earliest event. ok is false when empty.
func (q *Queue[T]) Pop() (time int64, payload T, ok bool) {
	if len(q.h) == 0 {
		var zero T
		return 0, zero, false
	}
	e := heap.Pop(&q.h).(event[T])
	return e.time, e.payload, true
}

// Peek returns the earliest event without removing it.
func (q *Queue[T]) Peek() (time int64, payload T, ok bool) {
	if len(q.h) == 0 {
		var zero T
		return 0, zero, false
	}
	return q.h[0].time, q.h[0].payload, true
}

// Len returns the number of pending events.
func (q *Queue[T]) Len() int { return len(q.h) }

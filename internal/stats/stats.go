// Package stats provides the measurement plumbing shared by the
// simulator: counters, fixed-bin histograms (Fig. 8's arrival-delta
// distribution), and normalized-performance helpers used by every
// figure of the evaluation.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-bin histogram over int64 samples (picoseconds
// in the simulator). Bin i covers [edges[i-1], edges[i]); samples
// below the first edge land in bin 0 and samples at or above the last
// edge land in the overflow bin.
type Histogram struct {
	edges  []int64
	counts []uint64
	total  uint64
}

// NewHistogram builds a histogram with the given ascending bin edges.
func NewHistogram(edges ...int64) (*Histogram, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("stats: histogram needs at least one edge")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, fmt.Errorf("stats: histogram edges not ascending at %d", i)
		}
	}
	return &Histogram{
		edges:  append([]int64(nil), edges...),
		counts: make([]uint64, len(edges)+1),
	}, nil
}

// FromBins reconstructs a Histogram from edges and per-bin counts
// (len(edges)+1 entries, the last being the overflow bin). It is the
// bridge from the atomic obs.Histogram back to this package's view
// type.
func FromBins(edges []int64, counts []uint64) (*Histogram, error) {
	h, err := NewHistogram(edges...)
	if err != nil {
		return nil, err
	}
	if len(counts) != len(edges)+1 {
		return nil, fmt.Errorf("stats: %d counts for %d edges (want %d)", len(counts), len(edges), len(edges)+1)
	}
	copy(h.counts, counts)
	for _, c := range counts {
		h.total += c
	}
	return h, nil
}

// Add records one sample.
func (h *Histogram) Add(v int64) {
	i := sort.Search(len(h.edges), func(i int) bool { return v < h.edges[i] })
	h.counts[i]++
	h.total++
}

// Bins returns the per-bin counts: len(edges)+1 entries, the last
// being the overflow bin.
func (h *Histogram) Bins() []uint64 { return append([]uint64(nil), h.counts...) }

// Fractions returns each bin's share of the total (zeros when empty).
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	for i, c := range h.counts {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() uint64 { return h.total }

// FractionAbove returns the share of samples >= v.
func (h *Histogram) FractionAbove(v int64) float64 {
	if h.total == 0 {
		return 0
	}
	// Conservative: count whole bins whose lower edge >= v.
	var n uint64
	for i := range h.counts {
		lower := int64(math.MinInt64)
		if i > 0 {
			lower = h.edges[i-1]
		}
		if lower >= v {
			n += h.counts[i]
		}
	}
	return float64(n) / float64(h.total)
}

// String renders the histogram for logs.
func (h *Histogram) String() string {
	var b strings.Builder
	for i, c := range h.counts {
		switch {
		case i == 0:
			fmt.Fprintf(&b, "(-inf,%d): %d\n", h.edges[0], c)
		case i == len(h.edges):
			fmt.Fprintf(&b, "[%d,+inf): %d\n", h.edges[len(h.edges)-1], c)
		default:
			fmt.Fprintf(&b, "[%d,%d): %d\n", h.edges[i-1], h.edges[i], c)
		}
	}
	return b.String()
}

// Mean of recorded samples via per-bin midpoints is too lossy for our
// use; the simulator tracks exact sums separately with Accumulator.

// Accumulator tracks count/sum/min/max of a stream of int64 samples.
type Accumulator struct {
	N        uint64
	Sum      int64
	Min, Max int64
}

// Add records a sample.
func (a *Accumulator) Add(v int64) {
	if a.N == 0 || v < a.Min {
		a.Min = v
	}
	if a.N == 0 || v > a.Max {
		a.Max = v
	}
	a.N++
	a.Sum += v
}

// Mean returns the average, or 0 with no samples.
func (a *Accumulator) Mean() float64 {
	if a.N == 0 {
		return 0
	}
	return float64(a.Sum) / float64(a.N)
}

// GeoMean returns the geometric mean of a slice of positive values —
// the conventional way to average normalized performance across
// workloads.
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// Mean returns the arithmetic mean.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

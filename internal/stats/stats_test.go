package stats

import (
	"math"
	"testing"
)

func TestNewHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(); err == nil {
		t.Error("want error for no edges")
	}
	if _, err := NewHistogram(5, 5); err == nil {
		t.Error("want error for non-ascending edges")
	}
	if _, err := NewHistogram(10, 5); err == nil {
		t.Error("want error for descending edges")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Bins: (-inf,0) [0,10) [10,20) [20,+inf)
	for _, v := range []int64{-5, -1} {
		h.Add(v)
	}
	for _, v := range []int64{0, 5, 9} {
		h.Add(v)
	}
	h.Add(10)
	for _, v := range []int64{20, 100} {
		h.Add(v)
	}
	want := []uint64{2, 3, 1, 2}
	got := h.Bins()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bin %d = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Total() != 8 {
		t.Errorf("total = %d, want 8", h.Total())
	}
}

func TestHistogramFractions(t *testing.T) {
	h, _ := NewHistogram(0)
	if f := h.Fractions(); f[0] != 0 || f[1] != 0 {
		t.Error("empty histogram fractions must be zero")
	}
	h.Add(-1)
	h.Add(1)
	h.Add(2)
	f := h.Fractions()
	if math.Abs(f[0]-1.0/3) > 1e-12 || math.Abs(f[1]-2.0/3) > 1e-12 {
		t.Errorf("fractions = %v", f)
	}
}

func TestFractionAbove(t *testing.T) {
	h, _ := NewHistogram(0, 10)
	h.Add(-5) // bin 0
	h.Add(5)  // bin 1
	h.Add(15) // bin 2
	h.Add(25) // bin 2
	if got := h.FractionAbove(10); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("FractionAbove(10) = %v, want 0.5", got)
	}
	if got := h.FractionAbove(0); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("FractionAbove(0) = %v, want 0.75", got)
	}
}

func TestHistogramString(t *testing.T) {
	h, _ := NewHistogram(0, 10)
	h.Add(5)
	s := h.String()
	if s == "" {
		t.Error("empty String()")
	}
}

func TestAccumulator(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 {
		t.Error("empty mean must be 0")
	}
	for _, v := range []int64{10, -5, 20} {
		a.Add(v)
	}
	if a.N != 3 || a.Sum != 25 || a.Min != -5 || a.Max != 20 {
		t.Errorf("accumulator = %+v", a)
	}
	if math.Abs(a.Mean()-25.0/3) > 1e-12 {
		t.Errorf("mean = %v", a.Mean())
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("empty geomean must be 0")
	}
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %v, want 4", g)
	}
	if g := GeoMean([]float64{1, 1, 1}); math.Abs(g-1) > 1e-12 {
		t.Errorf("GeoMean(1,1,1) = %v", g)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Error("non-positive values must yield 0")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean must be 0")
	}
	if m := Mean([]float64{1, 2, 3}); math.Abs(m-2) > 1e-12 {
		t.Errorf("Mean = %v", m)
	}
}

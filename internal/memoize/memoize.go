// Package memoize implements RMCC's AES memoization table (paper
// §II-C, Fig. 4) and its self-reinforcing counter-update policy.
//
// The table records the counter-only AES results of recently used
// counter *values*. A single counter value is shared by many data
// blocks, so a small table (128 entries, ~4 KB) can serve ≥90% of LLC
// read misses even for irregular workloads. When a block's counter is
// known (for Counter-light, the instant the ECC parity decodes), a
// table hit replaces the 10–14 ns AES recomputation with a ~2 ns
// lookup-and-combine (Fig. 4 and §IV-D's latency budget).
//
// The update policy is what keeps the hit rate high ("RMCC enhances
// the counter update policy for LLC writebacks to increase the counter
// value to values whose results are memoized"): writebacks snap a
// block's counter up to the current global write value W instead of
// incrementing it. W is an even value that advances by 2 every
// EpochWrites writebacks, so the live blocks of a long window share a
// handful of W values, all resident in the table. A block rewritten
// twice while W is unchanged cannot reuse W (counters are nonces), so
// it takes the odd value W+1, which is not memoized — a rare, bounded
// source of misses.
package memoize

import (
	"sync/atomic"

	"counterlight/internal/crypto/mix"
	"counterlight/internal/obs"
)

// DefaultEpochWrites is the default number of writebacks between
// advances of the global write value.
const DefaultEpochWrites = 4096

// ComputeFunc produces the counter-only AES result for a counter
// value. It is the slow path a table hit avoids.
type ComputeFunc func(counter uint64) mix.Word

// Table is a fixed-capacity memoization table with LRU replacement.
// The entry for counter value 0 is pinned: every block that has never
// been written since boot holds counter 0, so evicting it would hurt
// cold reads across the whole address space.
type Table struct {
	capacity int
	compute  ComputeFunc
	entries  map[uint32]*node
	head     *node // most recently used
	tail     *node // least recently used
	free     *node // evicted nodes, recycled by insert (next-linked)

	writeValue    uint32 // W: even, strictly increasing
	epochWrites   int    // writebacks per W advance
	writesInEpoch int

	hits, misses obs.Counter
	// lookups packs (hits << 32 | misses) in one word so HitRate can
	// snapshot both sides with a single atomic load: two separate
	// loads can tear across a concurrent lookup or ResetStats and
	// report a ratio no real instant ever had. Each half wraps after
	// 2^32 lookups — beyond any single measurement window.
	lookups atomic.Uint64

	// onEvict, when set, observes every LRU eviction (the tracer's
	// memo_evict event). It runs inside the table's write path, so it
	// must be cheap and must not call back into the table.
	onEvict func(counter uint32)
}

type node struct {
	key        uint32
	val        mix.Word
	pinned     bool
	prev, next *node
}

// New creates a table with the given entry capacity (the paper uses
// 128 entries / 4 KB) and writeback epoch length (DefaultEpochWrites
// if epochWrites <= 0). compute supplies the counter-only AES.
func New(capacity, epochWrites int, compute ComputeFunc) *Table {
	if capacity < 2 {
		capacity = 2
	}
	if epochWrites <= 0 {
		epochWrites = DefaultEpochWrites
	}
	t := &Table{
		capacity:    capacity,
		compute:     compute,
		entries:     make(map[uint32]*node, capacity),
		writeValue:  2,
		epochWrites: epochWrites,
	}
	t.insert(0, true) // never-written blocks
	t.insert(2, false)
	return t
}

// Lookup returns the memoized AES result for the counter value. hit
// reports whether the value was in the table; on a miss the result is
// computed from scratch (the caller charges the full AES latency).
// Read misses do not insert: a missed value is block-specific (an odd
// overflow value or an evicted old W) and inserting it would evict a
// W value serving many blocks.
func (t *Table) Lookup(counter uint32) (w mix.Word, hit bool) {
	if n, ok := t.entries[counter]; ok {
		t.hits.Inc()
		t.lookups.Add(1 << 32)
		t.moveToFront(n)
		return n.val, true
	}
	t.misses.Inc()
	t.lookups.Add(1)
	return t.compute(uint64(counter)), false
}

// Peek reports whether the value is memoized without updating LRU
// order or statistics (used by the latency model's decision logic).
func (t *Table) Peek(counter uint32) bool {
	_, ok := t.entries[counter]
	return ok
}

// NextWriteCounter implements the self-reinforcing update policy. The
// returned value always strictly exceeds old. In the common case it is
// the memoized global write value W; a block already at or beyond W
// (rewritten within the same write epoch) takes old+1 and drags W
// forward if it has fallen behind.
func (t *Table) NextWriteCounter(old uint32) uint32 {
	t.writesInEpoch++
	if t.writesInEpoch >= t.epochWrites {
		t.writesInEpoch = 0
		t.advanceW(t.writeValue + 2)
	}
	if old < t.writeValue {
		return t.writeValue
	}
	v := old + 1
	// Rewrites within the same epoch (old == W or W+1) take the odd
	// overflow value without disturbing W. Only a block far ahead of W
	// (e.g. counters imported from elsewhere) drags W forward so the
	// system converges back to sharing.
	if old >= t.writeValue+2 {
		t.advanceW((old + 3) &^ 1)
	}
	return v
}

func (t *Table) advanceW(w uint32) {
	t.writeValue = w
	t.insert(w, false)
}

// WriteValue exposes the current global write value W.
func (t *Table) WriteValue() uint32 { return t.writeValue }

// Hits and Misses report lookup statistics (thin views over the obs
// instruments).
func (t *Table) Hits() uint64   { return t.hits.Value() }
func (t *Table) Misses() uint64 { return t.misses.Value() }

// HitRate returns hits/(hits+misses), or 0 before any lookup. The
// hit/miss pair is read with one atomic load, so the ratio always
// reflects a state the table actually passed through and stays within
// [0, 1] no matter how lookups and resets interleave with the call.
func (t *Table) HitRate() float64 {
	h, m := t.LookupCounts()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// LookupCounts returns an atomically consistent (hits, misses)
// snapshot — unlike reading Hits and Misses separately, the two
// numbers are guaranteed to come from the same instant.
func (t *Table) LookupCounts() (hits, misses uint64) {
	v := t.lookups.Load()
	return v >> 32, v & 0xffffffff
}

// ResetStats clears the hit/miss counters (per-measurement-window
// accounting) without touching the table contents.
func (t *Table) ResetStats() {
	t.hits.Reset()
	t.misses.Reset()
	t.lookups.Store(0)
}

// RegisterMetrics exposes the table's counters through a registry
// under the given labels.
func (t *Table) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.RegisterCounter("memo_hits_total", &t.hits, labels...)
	reg.RegisterCounter("memo_misses_total", &t.misses, labels...)
}

// SetEvictHook installs (or clears, with nil) an eviction observer.
func (t *Table) SetEvictHook(fn func(counter uint32)) { t.onEvict = fn }

// Len returns the number of memoized values.
func (t *Table) Len() int { return len(t.entries) }

func (t *Table) insert(counter uint32, pinned bool) mix.Word {
	if n, ok := t.entries[counter]; ok {
		t.moveToFront(n)
		return n.val
	}
	if len(t.entries) >= t.capacity {
		t.evict()
	}
	// Reuse an evicted node when one is free: a table at capacity
	// evicts on every insert, so the steady state (one advanceW per
	// write epoch) recycles a single node forever instead of
	// allocating — which is what keeps the engine write path at zero
	// allocs/op.
	n := t.free
	if n != nil {
		t.free = n.next
		*n = node{key: counter, val: t.compute(uint64(counter)), pinned: pinned}
	} else {
		n = &node{key: counter, val: t.compute(uint64(counter)), pinned: pinned}
	}
	t.entries[counter] = n
	t.pushFront(n)
	return n.val
}

func (t *Table) evict() {
	victim := t.tail
	for victim != nil && victim.pinned {
		victim = victim.prev
	}
	if victim == nil {
		return
	}
	t.unlink(victim)
	delete(t.entries, victim.key)
	if t.onEvict != nil {
		t.onEvict(victim.key)
	}
	victim.next = t.free
	t.free = victim
}

func (t *Table) pushFront(n *node) {
	n.prev = nil
	n.next = t.head
	if t.head != nil {
		t.head.prev = n
	}
	t.head = n
	if t.tail == nil {
		t.tail = n
	}
}

func (t *Table) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		t.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		t.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (t *Table) moveToFront(n *node) {
	if t.head == n {
		return
	}
	t.unlink(n)
	t.pushFront(n)
}

package memoize

import (
	"sync"
	"testing"

	"counterlight/internal/crypto/mix"
)

// TestHitRateConcurrentSnapshot is the regression for the torn
// HitRate read. One goroutine performs strict {miss, hit} lookup
// pairs under a mutex (the same serialization the sharded engine's
// per-shard lock provides) with occasional ResetStats calls between
// pairs, so at every consistent instant hits ≤ misses and therefore
// the true hit rate never exceeds 0.5. Unsynchronized readers hammer
// HitRate the whole time: with the old two-load implementation a read
// could pair pre-reset hits with post-reset misses and report a rate
// near 1.0; the single-load snapshot pins every observation to a
// state the table actually passed through.
func TestHitRateConcurrentSnapshot(t *testing.T) {
	table := New(4, 0, func(c uint64) mix.Word {
		return mix.Word{Hi: c, Lo: ^c}
	})

	pairs := 200_000
	if testing.Short() {
		pairs = 40_000
	}

	var mu sync.Mutex
	done := make(chan struct{})
	var wg sync.WaitGroup
	var failed sync.Once
	var badRate float64

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				rate := table.HitRate()
				if rate < 0 || rate > 1 {
					failed.Do(func() { badRate = rate })
					return
				}
				// The schedule's invariant: hits never exceed misses.
				if rate > 0.5 {
					failed.Do(func() { badRate = rate })
					return
				}
				h, m := table.LookupCounts()
				if h > m {
					failed.Do(func() { badRate = float64(h) / float64(h+m) })
					return
				}
			}
		}()
	}

	// The new-table contents are {0 (pinned), 2}: Lookup(0) always
	// hits, Lookup(5) always misses (read misses do not insert).
	for i := 0; i < pairs; i++ {
		mu.Lock()
		table.Lookup(5)
		table.Lookup(0)
		if i%97 == 0 {
			table.ResetStats()
		}
		mu.Unlock()
	}
	close(done)
	wg.Wait()

	if badRate != 0 {
		t.Fatalf("HitRate observed an inconsistent snapshot: %v (want a value ≤ 0.5 from some real instant)", badRate)
	}
	if rate := table.HitRate(); rate < 0 || rate > 0.5 {
		t.Fatalf("final HitRate = %v out of [0, 0.5]", rate)
	}
}

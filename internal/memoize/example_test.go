package memoize_test

import (
	"fmt"

	"counterlight/internal/crypto/mix"
	"counterlight/internal/memoize"
)

// The memoization table turns the counter-only AES of recently used
// counter values into a 2 ns lookup. The write policy guarantees the
// value a writeback assigns is already in the table, so the block's
// next read hits.
func Example() {
	table := memoize.New(128, 0, func(c uint64) mix.Word {
		return mix.Word{Hi: c, Lo: ^c} // stands in for AES(counter)
	})

	// A writeback advances a block's counter to the memoized global
	// write value W.
	newCounter := table.NextWriteCounter(0)

	// The next read of that block finds its counter-AES memoized.
	_, hit := table.Lookup(newCounter)
	fmt.Println("hit after writeback:", hit)

	// A counter value nothing wrote recently misses (and is computed
	// from scratch, paying the full AES latency).
	_, hit = table.Lookup(0xDEAD)
	fmt.Println("hit on stale value:", hit)
	// Output:
	// hit after writeback: true
	// hit on stale value: false
}

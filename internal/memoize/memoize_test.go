package memoize

import (
	"math/rand"
	"testing"

	"counterlight/internal/cipher"
	"counterlight/internal/crypto/mix"
)

// fake compute function: cheap, distinct per counter, and counts calls.
func counter2word(calls *int) ComputeFunc {
	return func(c uint64) mix.Word {
		if calls != nil {
			*calls++
		}
		return mix.Word{Hi: c * 0x9e3779b97f4a7c15, Lo: ^c}
	}
}

func TestLookupHitMiss(t *testing.T) {
	tb := New(8, 0, counter2word(nil))
	// 0 and the initial W (2) are pre-seeded.
	if _, hit := tb.Lookup(0); !hit {
		t.Error("value 0 should be seeded")
	}
	if _, hit := tb.Lookup(2); !hit {
		t.Error("initial W should be seeded")
	}
	if _, hit := tb.Lookup(42); hit {
		t.Error("lookup of 42 must miss")
	}
	// Read misses do not insert.
	if _, hit := tb.Lookup(42); hit {
		t.Error("read miss must not populate the table")
	}
	if tb.Hits() != 2 || tb.Misses() != 2 {
		t.Errorf("hits=%d misses=%d, want 2/2", tb.Hits(), tb.Misses())
	}
	if hr := tb.HitRate(); hr != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", hr)
	}
}

// Missed lookups still return the correct (computed) value.
func TestLookupMissComputes(t *testing.T) {
	calls := 0
	tb := New(8, 0, counter2word(&calls))
	w, hit := tb.Lookup(7)
	if hit {
		t.Fatal("7 must miss")
	}
	if w != counter2word(nil)(7) {
		t.Errorf("missed lookup returned wrong word: %+v", w)
	}
	// Hit path must return the identical word without recomputing.
	calls = 0
	w2, hit := tb.Lookup(0)
	if !hit || w2 != counter2word(nil)(0) {
		t.Error("hit returned wrong word")
	}
	if calls != 0 {
		t.Error("hit path recomputed AES")
	}
}

func TestLRUEvictionProtectsPinnedZero(t *testing.T) {
	tb := New(3, 0, counter2word(nil)) // holds 0 (pinned), 2, and one more
	// Drive W forward so new values are inserted and eviction happens.
	for i := 0; i < 10; i++ {
		tb.advanceW(tb.writeValue + 2)
	}
	if !tb.Peek(0) {
		t.Error("pinned value 0 was evicted")
	}
	if !tb.Peek(tb.WriteValue()) {
		t.Error("current W not resident")
	}
	if tb.Len() > 3 {
		t.Errorf("len = %d exceeds capacity", tb.Len())
	}
}

func TestPeekDoesNotCountOrReorder(t *testing.T) {
	tb := New(4, 0, counter2word(nil))
	tb.ResetStats()
	tb.Peek(0)
	tb.Peek(99)
	if tb.Hits() != 0 || tb.Misses() != 0 {
		t.Error("Peek must not touch statistics")
	}
}

// The update policy invariants: always strictly greater than old, and
// in the common case (old < W) memoized.
func TestNextWriteCounterInvariants(t *testing.T) {
	tb := New(128, 64, counter2word(nil))
	rng := rand.New(rand.NewSource(40))
	for i := 0; i < 10000; i++ {
		w := tb.WriteValue()
		old := uint32(rng.Intn(int(w) + 2))
		v := tb.NextWriteCounter(old)
		if v <= old {
			t.Fatalf("NextWriteCounter(%d) = %d, not strictly greater", old, v)
		}
		if old < w && !tb.Peek(v) {
			t.Fatalf("common-case write counter %d not memoized (old=%d W=%d)", v, old, w)
		}
	}
}

// Two different blocks written in the same epoch share the same W
// (that sharing is what makes one memoized value serve many blocks).
func TestNextWriteCounterSharing(t *testing.T) {
	tb := New(128, 1024, counter2word(nil))
	v1 := tb.NextWriteCounter(0)
	v2 := tb.NextWriteCounter(0)
	if v1 != v2 {
		t.Errorf("two blocks with old=0 got different write values: %d, %d", v1, v2)
	}
	// Rewriting a block already at W must still advance (nonce rule).
	v3 := tb.NextWriteCounter(v1)
	if v3 <= v1 {
		t.Errorf("rewrite at W must produce a larger counter: %d -> %d", v1, v3)
	}
}

// W advances on the epoch boundary.
func TestEpochAdvance(t *testing.T) {
	tb := New(128, 10, counter2word(nil))
	w0 := tb.WriteValue()
	for i := 0; i < 10; i++ {
		tb.NextWriteCounter(0)
	}
	if tb.WriteValue() <= w0 {
		t.Error("W did not advance after an epoch of writes")
	}
	if !tb.Peek(tb.WriteValue()) {
		t.Error("advanced W not memoized")
	}
}

// A block that ran ahead of W drags W forward so the system converges.
func TestRunawayBlockDragsW(t *testing.T) {
	tb := New(128, 1<<30, counter2word(nil))
	v := tb.NextWriteCounter(1000)
	if v != 1001 {
		t.Errorf("runaway write got %d, want 1001", v)
	}
	if tb.WriteValue() <= 1000 {
		t.Errorf("W = %d, should have been dragged past the runaway block", tb.WriteValue())
	}
}

// The paper's headline property (§IV-D): ≥90% of read lookups hit even
// under an irregular access pattern, because the policy concentrates
// live counters on few values. Simulate: many blocks, random rewrites,
// random reads.
func TestIrregularWorkloadHitRate(t *testing.T) {
	tb := New(128, DefaultEpochWrites, counter2word(nil))
	rng := rand.New(rand.NewSource(41))
	const blocks = 100000
	ctr := make([]uint32, blocks) // current counter per block (0 = never written)
	for i := 0; i < 500000; i++ {
		b := rng.Intn(blocks)
		ctr[b] = tb.NextWriteCounter(ctr[b])
	}
	tb.ResetStats()
	for i := 0; i < 200000; i++ {
		b := rng.Intn(blocks)
		tb.Lookup(ctr[b])
	}
	if hr := tb.HitRate(); hr < 0.90 {
		t.Errorf("irregular-workload hit rate = %.3f, want >= 0.90", hr)
	}
}

func TestCapacityFloor(t *testing.T) {
	tb := New(0, 0, counter2word(nil))
	if tb.capacity != 2 {
		t.Errorf("capacity floor = %d, want 2", tb.capacity)
	}
}

// Integration sanity: the table must return the same word as the real
// counter-mode engine computes, so decryption through the table is
// identical to decryption from scratch.
func TestMatchesRealCipher(t *testing.T) {
	cm, err := cipher.NewCounterMode(make([]byte, 16), 0xBEEF, nil)
	if err != nil {
		t.Fatal(err)
	}
	tb := New(128, 0, cm.CounterAES)
	w, _ := tb.Lookup(77)
	if w != cm.CounterAES(77) {
		t.Error("memoized counter AES differs from engine's")
	}
	w2, hit := tb.Lookup(0)
	if !hit || w2 != cm.CounterAES(0) {
		t.Error("seeded counter AES differs from engine's")
	}
}

func BenchmarkLookupHit(b *testing.B) {
	tb := New(128, 0, counter2word(nil))
	for i := 0; i < b.N; i++ {
		tb.Lookup(0)
	}
}

func BenchmarkNextWriteCounter(b *testing.B) {
	tb := New(128, 0, counter2word(nil))
	for i := 0; i < b.N; i++ {
		tb.NextWriteCounter(0)
	}
}

package nvm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"counterlight/internal/cipher"
	"counterlight/internal/core"
	"counterlight/internal/ctrblock"
	"counterlight/internal/epoch"
	"counterlight/internal/fault"
	"counterlight/internal/mcpool"
	"counterlight/internal/obs/flight"
)

// ErrCrashed is returned by every Engine entry point once the domain
// has lost power. Nothing volatile survives; call Recover on the
// Domain to come back up.
var ErrCrashed = errors.New("nvm: domain crashed (power failure)")

// Config sizes the NVM engine.
type Config struct {
	// Engine configures the wrapped core engine; the zero value means
	// core.DefaultEngineOptions().
	Engine core.EngineOptions
	// PendingLimit bounds the write-pending metadata queue (default
	// 32): dirty counter/ownership entries accumulated since the last
	// flush. Reaching the limit forces an implicit flush — the
	// backpressure that keeps recovery's replay window bounded.
	PendingLimit int
	// SnapshotChunk is the byte granularity of snapshot persistence
	// (default 128); each chunk is one crash-injectable step.
	SnapshotChunk int
	// Flight records crash and recovery events. Nil disables.
	Flight *flight.Ring
	// BreakRecovery is the test-only teeth-check knob: recovery drops
	// the last durable journal entry, deliberately losing the newest
	// metadata update. The crash campaign must catch and shrink it.
	BreakRecovery bool
}

func (c *Config) setDefaults() {
	if c.Engine.AESKeyBytes == 0 {
		c.Engine = core.DefaultEngineOptions()
	}
	if c.PendingLimit <= 0 {
		c.PendingLimit = 32
	}
	if c.SnapshotChunk <= 0 {
		c.SnapshotChunk = 128
	}
}

// blockMeta is the write-pending metadata image of one block: what a
// snapshot persists and recovery forces back.
type blockMeta struct {
	ctr    uint32
	vm     int
	permCL bool
}

// Engine wraps a core.Engine with the NVM persistence protocol:
// journal append (two steps) → data persist (one step) → pending
// metadata, with explicit or backpressure-forced flushes. Everything
// outside the Domain is volatile and dies at the crash point.
type Engine struct {
	cfg Config
	eng *core.Engine
	dom *Domain
	mon *epoch.Monitor

	seq     uint64 // journal sequence of the last applied mutation
	lastTag int64  // highest op tag journaled (-1 none)
	meta    map[uint64]blockMeta
	pending map[uint64]struct{}
	encBuf  []byte

	implicitFlushes uint64
}

// New builds an NVM engine over a fresh persistence domain.
func New(cfg Config) (*Engine, error) {
	cfg.setDefaults()
	eng, err := core.NewEngine(cfg.Engine)
	if err != nil {
		return nil, fmt.Errorf("nvm: %w", err)
	}
	return &Engine{
		cfg:     cfg,
		eng:     eng,
		dom:     NewDomain(cfg.Flight),
		lastTag: -1,
		meta:    make(map[uint64]blockMeta),
		pending: make(map[uint64]struct{}),
		encBuf:  make([]byte, 0, 256),
	}, nil
}

// Core exposes the wrapped volatile engine (reads, state diffs).
func (n *Engine) Core() *core.Engine { return n.eng }

// Domain exposes the durable side — what survives the crash and what
// Recover rebuilds from.
func (n *Engine) Domain() *Domain { return n.dom }

// SetMonitor attaches an epoch monitor whose timeline state is
// included in metadata snapshots (persisted at flush, restored by
// recovery via RecoveryReport.Monitor).
func (n *Engine) SetMonitor(m *epoch.Monitor) { n.mon = m }

// ArmCrash arms a crash point on the domain.
func (n *Engine) ArmCrash(cp *fault.CrashPoint) { n.dom.ArmCrash(cp) }

// Crashed reports whether the domain has lost power.
func (n *Engine) Crashed() bool { return n.dom.crashed }

// Seq returns the journal sequence of the last applied mutation.
func (n *Engine) Seq() uint64 { return n.seq }

// LastTag returns the highest op tag journaled (-1 before any).
func (n *Engine) LastTag() int64 { return n.lastTag }

// PendingLen returns the write-pending metadata queue depth.
func (n *Engine) PendingLen() int { return len(n.pending) }

// ImplicitFlushes counts backpressure-forced flushes.
func (n *Engine) ImplicitFlushes() uint64 { return n.implicitFlushes }

// Write applies one write op with NVM persistence: volatile apply,
// journal append (resolved counter/mode/codeword), data persist,
// pending-queue update, possibly a forced flush. tag is the caller's
// op index, carried into the journal. Returns ErrCrashed if power
// failed before or during persistence (the volatile apply may have
// happened; it is gone either way).
func (n *Engine) Write(tag int64, vm int, addr uint64, plain cipher.Block, mode epoch.Mode) error {
	if n.dom.crashed {
		return ErrCrashed
	}
	if err := n.eng.WriteAs(vm, addr, plain, mode); err != nil {
		return err
	}
	return n.logApplied(tag, mcpool.Entry{Kind: mcpool.OpWrite, Addr: addr})
}

// InjectFault applies one fault op with NVM persistence: the
// post-fault codeword is journaled and persisted like a write's.
func (n *Engine) InjectFault(tag int64, addr uint64, chip int, pattern uint64) error {
	if n.dom.crashed {
		return ErrCrashed
	}
	if err := n.eng.InjectFault(addr, chip, pattern); err != nil {
		return err
	}
	return n.logApplied(tag, mcpool.Entry{Kind: mcpool.OpFault, Addr: addr, Chip: chip, Pattern: pattern})
}

// Read serves a read from the volatile engine; reads touch no durable
// state and take no persistence steps.
func (n *Engine) Read(addr uint64) (cipher.Block, core.ReadInfo, error) {
	if n.dom.crashed {
		return cipher.Block{}, core.ReadInfo{}, ErrCrashed
	}
	return n.eng.Read(addr)
}

// logApplied journals one applied mutation with its resolved state,
// persists the data codeword, and marks the metadata dirty.
func (n *Engine) logApplied(tag int64, e mcpool.Entry) error {
	cw, ok := n.eng.Snapshot(e.Addr)
	n.seq++
	e.Seq = n.seq
	e.VM = n.eng.VMOf(e.Addr)
	e.Ctr = n.eng.Counters().Counter(e.Addr)
	e.PermCL = n.eng.IsPermanentCounterless(e.Addr)
	e.Tag, e.HasTag = tag, true
	e.Mode = epoch.CounterMode
	if ok {
		e.CW, e.HasCW = cw, true
		e.Meta = cw.DecodeMeta()
		if e.Meta == ctrblock.CounterlessFlag {
			e.Mode = epoch.Counterless
		}
	}
	n.meta[e.Addr] = blockMeta{ctr: e.Ctr, vm: e.VM, permCL: e.PermCL}
	if tag > n.lastTag {
		n.lastTag = tag
	}
	n.encBuf = mcpool.AppendEntry(n.encBuf[:0], e)
	n.dom.appendJournal(n.encBuf, n.seq)
	n.dom.persistData(e.Addr, cw, n.seq)
	n.pending[e.Addr] = struct{}{}
	if len(n.pending) >= n.cfg.PendingLimit {
		n.implicitFlushes++
		n.flush()
	}
	if n.dom.crashed {
		return ErrCrashed
	}
	return nil
}

// Flush drains the write-pending metadata queue: the full metadata
// table (plus the epoch monitor's timeline, if attached) is
// snapshotted into the alternate slot and the journal truncated.
func (n *Engine) Flush() error {
	if n.dom.crashed {
		return ErrCrashed
	}
	n.flush()
	if n.dom.crashed {
		return ErrCrashed
	}
	return nil
}

func (n *Engine) flush() {
	n.dom.writeSnapshot(n.encodeSnapshot(), n.seq, n.cfg.SnapshotChunk)
	if !n.dom.crashed {
		clear(n.pending)
	}
}

// Snapshot wire format: "nvs1", seq, lastTag, flags (bit0 = monitor
// state present), optional monitor timeline, block count, then per
// block (sorted by address) addr/ctr/vm/flags.
const snapFlagMonitor = 1 << 0

func (n *Engine) encodeSnapshot() []byte {
	buf := []byte{'n', 'v', 's', '1'}
	buf = binary.AppendUvarint(buf, n.seq)
	buf = binary.AppendVarint(buf, n.lastTag)
	var flags byte
	if n.mon != nil {
		flags |= snapFlagMonitor
	}
	buf = append(buf, flags)
	if n.mon != nil {
		st := n.mon.ExportState()
		buf = binary.AppendVarint(buf, st.EpochStart)
		buf = binary.AppendUvarint(buf, st.Accesses)
		buf = append(buf, byte(st.Mode), byte(st.StartMode), byte(st.NextFromStart))
		buf = binary.AppendUvarint(buf, st.Closed)
	}
	addrs := make([]uint64, 0, len(n.meta))
	for a := range n.meta {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	buf = binary.AppendUvarint(buf, uint64(len(addrs)))
	for _, a := range addrs {
		m := n.meta[a]
		buf = binary.AppendUvarint(buf, a)
		buf = binary.AppendUvarint(buf, uint64(m.ctr))
		buf = binary.AppendUvarint(buf, uint64(m.vm))
		var bf byte
		if m.permCL {
			bf |= 1
		}
		buf = append(buf, bf)
	}
	return buf
}

type snapBlock struct {
	addr uint64
	meta blockMeta
}

type snapshot struct {
	seq     uint64
	lastTag int64
	monitor *epoch.State
	blocks  []snapBlock
}

func decodeSnapshot(data []byte) (snapshot, error) {
	var s snapshot
	if len(data) < 4 || string(data[:4]) != "nvs1" {
		return s, errors.New("nvm: snapshot magic mismatch")
	}
	r := &snapReader{b: data, off: 4}
	s.seq = r.uvarint()
	s.lastTag = r.varint()
	flags := r.u8()
	if flags&^byte(snapFlagMonitor) != 0 {
		return s, fmt.Errorf("nvm: snapshot has unknown flags %#x", flags)
	}
	if flags&snapFlagMonitor != 0 {
		st := epoch.State{EpochStart: r.varint(), Accesses: r.uvarint()}
		st.Mode = epoch.Mode(r.u8())
		st.StartMode = epoch.Mode(r.u8())
		st.NextFromStart = epoch.Mode(r.u8())
		st.Closed = r.uvarint()
		s.monitor = &st
	}
	nb := r.uvarint()
	if nb > uint64(len(data)) { // ≥4 bytes per block: cheap sanity bound
		return s, fmt.Errorf("nvm: snapshot block count %d implausible", nb)
	}
	s.blocks = make([]snapBlock, 0, nb)
	for i := uint64(0); i < nb; i++ {
		var b snapBlock
		b.addr = r.uvarint()
		b.meta.ctr = uint32(r.uvarint())
		b.meta.vm = int(r.uvarint())
		b.meta.permCL = r.u8()&1 != 0
		s.blocks = append(s.blocks, b)
	}
	if r.bad {
		return s, errors.New("nvm: snapshot truncated")
	}
	if r.off != len(data) {
		return s, fmt.Errorf("nvm: snapshot has %d trailing bytes", len(data)-r.off)
	}
	return s, nil
}

type snapReader struct {
	b   []byte
	off int
	bad bool
}

func (r *snapReader) u8() byte {
	if r.bad || r.off >= len(r.b) {
		r.bad = true
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *snapReader) uvarint() uint64 {
	if r.bad {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.off += n
	return v
}

func (r *snapReader) varint() int64 {
	if r.bad {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.off += n
	return v
}

// RecoveryReport describes what recovery found and rebuilt.
type RecoveryReport struct {
	Slot     int    // snapshot slot recovered from (-1: none committed)
	SlotSeq  uint64 // journal seq the snapshot covers
	TornSlot bool   // a written slot failed its MAC (crash mid-flush)
	TornTail bool   // journal tail was torn mid-append and truncated
	Replayed int    // journal entries replayed
	Blocks   int    // blocks present after recovery
	LastTag  int64  // highest durable op tag (-1: nothing durable)

	// Monitor is the epoch timeline persisted by the last committed
	// flush, for the caller to RestoreState into a rebuilt monitor.
	Monitor *epoch.State
}

// Recover rebuilds an NVM engine from a crashed domain: pick the
// newest MAC-valid snapshot slot (a torn slot falls back to the
// previous one at the cost of a longer replay), restore the durable
// data region, then redo-replay the journal's valid prefix, forcing
// each entry's journaled counter/ownership/codeword state. The
// returned engine shares the domain and can continue serving.
func Recover(dom *Domain, cfg Config) (*Engine, RecoveryReport, error) {
	cfg.setDefaults()
	dom.PowerCycle()
	rep := RecoveryReport{Slot: -1, LastTag: -1}
	eng, err := core.NewEngine(cfg.Engine)
	if err != nil {
		return nil, rep, fmt.Errorf("nvm: %w", err)
	}
	n := &Engine{
		cfg:     cfg,
		eng:     eng,
		dom:     dom,
		lastTag: -1,
		meta:    make(map[uint64]blockMeta),
		pending: make(map[uint64]struct{}),
		encBuf:  make([]byte, 0, 256),
	}
	dom.rec = cfg.Flight

	best, torn := dom.bestSlot()
	rep.TornSlot = torn
	var snapSeq uint64
	if best >= 0 {
		snap, err := decodeSnapshot(dom.slots[best].buf)
		if err != nil {
			return nil, rep, err // MAC-valid slot must decode; this is corruption
		}
		rep.Slot, rep.SlotSeq = best, dom.slots[best].seq
		snapSeq = dom.slots[best].seq
		n.seq = snapSeq
		n.lastTag = snap.lastTag
		rep.Monitor = snap.monitor
		for _, b := range snap.blocks {
			if err := applyMeta(eng, b.addr, b.meta); err != nil {
				return nil, rep, err
			}
			n.meta[b.addr] = b.meta
		}
		dom.ping = 1 - best // next flush overwrites the other slot
	} else {
		dom.ping = 0
	}

	// Data region: codewords persisted in place. Journal replay below
	// re-restores any block with durable post-snapshot entries, so
	// last-entry-wins ordering holds regardless of map order here.
	for addr, cell := range dom.data {
		eng.Restore(addr, cell.cw)
	}

	entries, tornTail, err := dom.durableJournal()
	if err != nil {
		return nil, rep, err
	}
	rep.TornTail = tornTail
	if cfg.BreakRecovery && len(entries) > 0 {
		entries = entries[:len(entries)-1]
	}
	for _, e := range entries {
		if err := e.Apply(eng); err != nil {
			return nil, rep, err
		}
		if e.Kind != mcpool.OpRead {
			n.meta[e.Addr] = blockMeta{ctr: e.Ctr, vm: e.VM, permCL: e.PermCL}
			if e.Seq > snapSeq {
				// Not yet covered by a committed snapshot: dirty again,
				// exactly as before the crash (backpressure state).
				n.pending[e.Addr] = struct{}{}
			}
		}
		if e.Seq > n.seq {
			n.seq = e.Seq
		}
		if e.HasTag && e.Tag > n.lastTag {
			n.lastTag = e.Tag
		}
		rep.Replayed++
	}
	rep.Blocks = len(eng.Blocks())
	rep.LastTag = n.lastTag
	dom.rec.Record(flight.KindRecovery, -1, 0, int64(rep.Replayed), int64(rep.SlotSeq))
	return n, rep, nil
}

// applyMeta forces one block's snapshot metadata onto a fresh engine.
func applyMeta(eng *core.Engine, addr uint64, m blockMeta) error {
	if err := eng.BindVM(addr, m.vm); err != nil {
		return fmt.Errorf("nvm: snapshot block %#x: %w", addr, err)
	}
	if m.ctr != 0 {
		eng.Counters().ForceCounter(addr, m.ctr)
	}
	if m.permCL {
		eng.ForceCounterless(addr)
	}
	return nil
}

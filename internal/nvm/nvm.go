// Package nvm models a crash-consistent persistent-memory mode for
// the counter-light engine, after "From Ideal to Practice" (arXiv
// 2307.02050): once the persistence domain extends into NVM, data
// writebacks persist immediately but the counter/metadata machinery
// — the very state the paper's design keeps cheap — can miss the
// flush window and desync from data across a power failure.
//
// The model splits the persistence domain into three durable regions:
//
//   - a write-ahead journal of applied ops (mcpool's persistent wire
//     format), appended before the data codeword persists;
//   - the data region, one codeword per block, persisted in place
//     right after its journal record;
//   - two alternating metadata snapshot slots, each MAC-committed,
//     holding the full counter/ownership table plus the epoch
//     monitor's timeline state as of a flush.
//
// Dirty metadata sits in a bounded write-pending queue between
// flushes; filling it forces an implicit flush (backpressure). A
// flush writes the alternate snapshot slot chunk by chunk, commits it
// with a MAC, then truncates the journal — so a crash at any point
// leaves either a committed slot plus a replayable journal suffix, or
// a torn slot (detected by its MAC) plus the previous slot and the
// full journal.
//
// Crash injection is exact: every durable mutation is one or more
// persistence steps, and an armed fault.CrashPoint cuts power before
// the step it fires on. Journal appends take two steps so a crash can
// tear a record in half; recovery truncates the torn tail via the
// record CRCs.
package nvm

import (
	"counterlight/internal/crypto/keccak"
	"counterlight/internal/ecc"
	"counterlight/internal/fault"
	"counterlight/internal/mcpool"
	"counterlight/internal/obs/flight"
)

// snapshotMACKey commits snapshot slots; a torn slot fails its MAC.
var snapshotMACKey = []byte("nvm-snapshot-commit-key")

// dataCell is one durable data-region block: the codeword and the
// journal seq of the op that persisted it.
type dataCell struct {
	cw  ecc.CodeWord
	seq uint64
}

// slot is one metadata snapshot slot. A slot is valid iff its MAC
// matches its bytes; a crash mid-write leaves partial bytes under the
// stale MAC of the previous commit, which cannot verify.
type slot struct {
	buf []byte
	mac uint64
	seq uint64 // journal seq covered by the committed snapshot
}

// Domain is the durable side of the persistence boundary. Everything
// reachable from it survives a crash; everything in Engine does not.
type Domain struct {
	journal []byte
	data    map[uint64]dataCell
	slots   [2]slot
	ping    int // slot the next flush writes

	steps   uint64
	cp      *fault.CrashPoint
	crashed bool
	rec     *flight.Ring
}

// NewDomain creates an empty persistence domain. rec may be nil.
func NewDomain(rec *flight.Ring) *Domain {
	return &Domain{data: make(map[uint64]dataCell), rec: rec}
}

// ArmCrash installs (or clears, with nil) the crash point consulted
// before every persistence step.
func (d *Domain) ArmCrash(cp *fault.CrashPoint) { d.cp = cp }

// Crashed reports whether power has failed. A crashed domain rejects
// every durable mutation until PowerCycle.
func (d *Domain) Crashed() bool { return d.crashed }

// Steps returns the persistence steps executed so far — the crash
// campaign's coordinate space for CrashPoint.Step.
func (d *Domain) Steps() uint64 { return d.steps }

// PowerCycle clears the crashed state and disarms the crash point:
// the machine is back up and recovery may read the durable regions.
func (d *Domain) PowerCycle() {
	d.crashed = false
	d.cp = nil
}

// step accounts one persistence step and reports whether it completed.
// A firing crash point means power failed before the step's mutation
// reached the medium: the caller must not apply it.
func (d *Domain) step(seq uint64) bool {
	if d.crashed {
		return false
	}
	d.steps++
	if d.cp.Fire(d.steps) {
		d.crashed = true
		d.rec.Record(flight.KindCrash, -1, 0, int64(d.steps), int64(seq))
		return false
	}
	return true
}

// appendJournal persists one encoded record in two steps (two
// device-atomic halves). A crash between them tears the record: the
// bytes of the first half land, the CRC can never match, and recovery
// truncates the tail.
func (d *Domain) appendJournal(enc []byte, seq uint64) {
	half := len(enc) / 2
	if !d.step(seq) {
		return
	}
	d.journal = append(d.journal, enc[:half]...)
	if !d.step(seq) {
		return
	}
	d.journal = append(d.journal, enc[half:]...)
}

// persistData persists one block's codeword in place (one step).
func (d *Domain) persistData(addr uint64, cw ecc.CodeWord, seq uint64) {
	if !d.step(seq) {
		return
	}
	d.data[addr] = dataCell{cw: cw, seq: seq}
}

// writeSnapshot flushes the metadata snapshot: chunked writes into
// the alternate slot, a MAC commit, then journal truncation — each
// its own persistence step, so a crash can land mid-chunk (torn
// slot), between commit and truncation (idempotent replay), or
// before anything (previous slot intact).
func (d *Domain) writeSnapshot(buf []byte, seq uint64, chunk int) {
	if chunk <= 0 {
		chunk = 128
	}
	t := &d.slots[d.ping]
	for off := 0; off < len(buf); off += chunk {
		if !d.step(seq) {
			return
		}
		if off == 0 {
			// First chunk clobbers the slot: from here until the
			// commit the slot is torn and its stale MAC cannot verify.
			t.buf = t.buf[:0]
		}
		end := off + chunk
		if end > len(buf) {
			end = len(buf)
		}
		t.buf = append(t.buf, buf[off:end]...)
	}
	if !d.step(seq) {
		return // torn: partial (or stale-MAC'd complete) slot
	}
	t.mac = keccak.MAC64(snapshotMACKey, t.buf)
	t.seq = seq
	if !d.step(seq) {
		return // committed but journal kept: replay is idempotent
	}
	d.journal = d.journal[:0]
	d.ping = 1 - d.ping
}

// bestSlot picks the newest MAC-valid snapshot slot. It returns the
// slot index (-1 if none) and whether any written slot failed its MAC
// — the torn-mid-flush signature.
func (d *Domain) bestSlot() (best int, torn bool) {
	best = -1
	for i := range d.slots {
		s := &d.slots[i]
		if len(s.buf) == 0 && s.seq == 0 {
			continue // never written
		}
		if keccak.MAC64(snapshotMACKey, s.buf) != s.mac {
			torn = true
			continue
		}
		if best < 0 || s.seq > d.slots[best].seq {
			best = i
		}
	}
	return best, torn
}

// durableJournal decodes the journal's valid prefix. A torn tail is
// expected after a crash mid-append and reported as tornTail; any
// other decode error is genuine corruption.
func (d *Domain) durableJournal() (entries []mcpool.Entry, tornTail bool, err error) {
	entries, _, err = mcpool.DecodeJournal(d.journal)
	if err == mcpool.ErrTorn {
		return entries, true, nil
	}
	return entries, false, err
}

package nvm

import (
	"testing"

	"counterlight/internal/cipher"
	"counterlight/internal/core"
	"counterlight/internal/epoch"
	"counterlight/internal/fault"
	"counterlight/internal/obs/flight"
)

func newNVM(t *testing.T, cfg Config) *Engine {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func pay(i int) cipher.Block {
	var b cipher.Block
	for j := range b {
		b[j] = byte(i*31 + j)
	}
	return b
}

// mustWrite writes block i (addr i*64) with a derived payload,
// alternating modes so both counter and counterless paths persist.
func mustWrite(t *testing.T, n *Engine, tag int64, i int) {
	t.Helper()
	mode := epoch.CounterMode
	if i%3 == 2 {
		mode = epoch.Counterless
	}
	if err := n.Write(tag, 0, uint64(i)*64, pay(i), mode); err != nil {
		t.Fatalf("write block %d: %v", i, err)
	}
}

// diffEngines compares two engines over the union of their block sets:
// codeword, counter, ownership, and read-back must all match.
func diffEngines(t *testing.T, got, want *core.Engine) {
	t.Helper()
	wb, gb := want.Blocks(), got.Blocks()
	if len(wb) != len(gb) {
		t.Fatalf("recovered %d blocks, want %d", len(gb), len(wb))
	}
	for _, a := range wb {
		wcw, wok := want.Snapshot(a)
		gcw, gok := got.Snapshot(a)
		if wok != gok || wcw != gcw {
			t.Fatalf("block %#x codeword differs after recovery", a)
		}
		if w, g := want.Counters().Counter(a), got.Counters().Counter(a); w != g {
			t.Fatalf("block %#x counter %d, want %d", a, g, w)
		}
		if w, g := want.IsPermanentCounterless(a), got.IsPermanentCounterless(a); w != g {
			t.Fatalf("block %#x permCL %v, want %v", a, g, w)
		}
		if w, g := want.VMOf(a), got.VMOf(a); w != g {
			t.Fatalf("block %#x vm %d, want %d", a, g, w)
		}
		wp, _, werr := want.Read(a)
		gp, _, gerr := got.Read(a)
		if (werr == nil) != (gerr == nil) || (werr == nil && wp != gp) {
			t.Fatalf("block %#x read-back differs after recovery (%v vs %v)", a, gerr, werr)
		}
	}
}

// oracleFor replays the same writes on a bare engine.
func oracleFor(t *testing.T, blocks int) *core.Engine {
	t.Helper()
	e, err := core.NewEngine(core.DefaultEngineOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < blocks; i++ {
		mode := epoch.CounterMode
		if i%3 == 2 {
			mode = epoch.Counterless
		}
		if err := e.WriteAs(0, uint64(i)*64, pay(i), mode); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// Clean shutdown: flush, recover, everything identical — and the
// journal is empty because the flush truncated it.
func TestCleanShutdownRecovery(t *testing.T) {
	n := newNVM(t, Config{})
	for i := 0; i < 12; i++ {
		mustWrite(t, n, int64(i), i)
	}
	if err := n.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(n.Domain().journal) != 0 {
		t.Fatalf("journal holds %d bytes after flush, want 0", len(n.Domain().journal))
	}
	rec, rep, err := Recover(n.Domain(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 0 {
		t.Errorf("replayed %d entries after a clean flush, want 0", rep.Replayed)
	}
	if rep.Slot < 0 || rep.TornSlot || rep.TornTail {
		t.Errorf("clean recovery report: %+v", rep)
	}
	if rep.LastTag != 11 {
		t.Errorf("LastTag %d, want 11", rep.LastTag)
	}
	diffEngines(t, rec.Core(), oracleFor(t, 12))
}

// Golden: crash before anything persists — recovery comes up empty.
func TestCrashBeforeFirstFlushEmpty(t *testing.T) {
	n := newNVM(t, Config{})
	n.ArmCrash(&fault.CrashPoint{Step: 1})
	if err := n.Write(0, 0, 0, pay(0), epoch.CounterMode); err != ErrCrashed {
		t.Fatalf("write returned %v, want ErrCrashed", err)
	}
	if !n.Crashed() {
		t.Fatal("engine not crashed")
	}
	rec, rep, err := Recover(n.Domain(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Slot != -1 || rep.Replayed != 0 || rep.Blocks != 0 || rep.LastTag != -1 {
		t.Errorf("empty recovery report: %+v", rep)
	}
	if got := rec.Core().Blocks(); len(got) != 0 {
		t.Errorf("recovered %d blocks from an empty domain", len(got))
	}
}

// Golden: crash between the two journal halves tears the record; the
// torn tail is truncated and the write is (correctly) lost.
func TestCrashTornJournalTail(t *testing.T) {
	n := newNVM(t, Config{})
	mustWrite(t, n, 0, 0)
	// Steps so far: 3 (two journal halves + data persist). The next
	// write's second journal half is step 5.
	n.ArmCrash(&fault.CrashPoint{Step: 5})
	if err := n.Write(1, 0, 64, pay(1), epoch.CounterMode); err != ErrCrashed {
		t.Fatalf("write returned %v, want ErrCrashed", err)
	}
	rec, rep, err := Recover(n.Domain(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TornTail {
		t.Error("torn journal tail not reported")
	}
	if rep.Replayed != 1 || rep.LastTag != 0 {
		t.Errorf("report %+v, want 1 entry replayed, LastTag 0", rep)
	}
	diffEngines(t, rec.Core(), oracleFor(t, 1))
}

// Golden: crash after the journal append but before the data persist —
// redo replay restores the codeword from the journal entry alone.
func TestCrashBeforeDataPersist(t *testing.T) {
	n := newNVM(t, Config{})
	// Step 3 is the first write's data-persist step.
	n.ArmCrash(&fault.CrashPoint{Step: 3})
	if err := n.Write(0, 0, 0, pay(0), epoch.CounterMode); err != ErrCrashed {
		t.Fatalf("write returned %v, want ErrCrashed", err)
	}
	if _, ok := n.Domain().data[0]; ok {
		t.Fatal("data region persisted despite the crash")
	}
	rec, rep, err := Recover(n.Domain(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 1 || rep.LastTag != 0 {
		t.Errorf("report %+v, want 1 entry replayed covering tag 0", rep)
	}
	diffEngines(t, rec.Core(), oracleFor(t, 1))
}

// Golden: crash mid-flush tears the target snapshot slot. Recovery
// must detect the torn slot by its MAC, fall back to the previous
// committed slot, and rebuild the difference from the journal — which
// a crash mid-flush never truncated.
func TestCrashMidFlushTornSlot(t *testing.T) {
	n := newNVM(t, Config{SnapshotChunk: 16})
	for i := 0; i < 6; i++ {
		mustWrite(t, n, int64(i), i)
	}
	if err := n.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 6; i < 10; i++ {
		mustWrite(t, n, int64(i), i)
	}
	// Crash on the second snapshot chunk: the first chunk already
	// clobbered the slot, so its bytes cannot match any MAC.
	n.ArmCrash(&fault.CrashPoint{Step: n.Domain().Steps() + 2})
	if err := n.Flush(); err != ErrCrashed {
		t.Fatalf("flush returned %v, want ErrCrashed", err)
	}
	rec, rep, err := Recover(n.Domain(), Config{SnapshotChunk: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TornSlot {
		t.Error("torn snapshot slot not reported")
	}
	if rep.Slot < 0 {
		t.Fatal("no fallback slot found")
	}
	if rep.Replayed != 4 {
		t.Errorf("replayed %d journal entries, want the 4 post-flush writes", rep.Replayed)
	}
	if rep.LastTag != 9 {
		t.Errorf("LastTag %d, want 9", rep.LastTag)
	}
	diffEngines(t, rec.Core(), oracleFor(t, 10))
}

// Golden: the very first flush tears. No slot has ever committed, but
// the journal was never truncated either, so a full replay rebuilds
// everything.
func TestCrashMidFirstFlush(t *testing.T) {
	n := newNVM(t, Config{SnapshotChunk: 16})
	for i := 0; i < 5; i++ {
		mustWrite(t, n, int64(i), i)
	}
	n.ArmCrash(&fault.CrashPoint{Step: n.Domain().Steps() + 2})
	if err := n.Flush(); err != ErrCrashed {
		t.Fatalf("flush returned %v, want ErrCrashed", err)
	}
	rec, rep, err := Recover(n.Domain(), Config{SnapshotChunk: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TornSlot || rep.Slot != -1 {
		t.Errorf("report %+v, want torn slot and no committed slot", rep)
	}
	if rep.Replayed != 5 {
		t.Errorf("replayed %d, want full 5-entry journal", rep.Replayed)
	}
	diffEngines(t, rec.Core(), oracleFor(t, 5))
}

// Golden: backpressure. A full write-pending queue forces an implicit
// flush; a crash inside that flush must leave the queue's dirty state
// recoverable — the replayed entries past the last committed snapshot
// are marked pending again.
func TestCrashWithFullPendingQueue(t *testing.T) {
	n := newNVM(t, Config{PendingLimit: 4, SnapshotChunk: 16})
	for i := 0; i < 3; i++ {
		mustWrite(t, n, int64(i), i)
	}
	if n.PendingLen() != 3 {
		t.Fatalf("pending %d, want 3", n.PendingLen())
	}
	// The 4th write fills the queue and triggers the implicit flush;
	// crash on its second snapshot chunk (3 steps for the write itself,
	// then chunk writes).
	n.ArmCrash(&fault.CrashPoint{Step: n.Domain().Steps() + 3 + 2})
	if err := n.Write(3, 0, 3*64, pay(3), epoch.CounterMode); err != ErrCrashed {
		t.Fatalf("write returned %v, want ErrCrashed", err)
	}
	if n.ImplicitFlushes() != 1 {
		t.Fatalf("implicit flushes %d, want 1", n.ImplicitFlushes())
	}
	rec, rep, err := Recover(n.Domain(), Config{PendingLimit: 4, SnapshotChunk: 16})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 4 {
		t.Errorf("replayed %d, want 4", rep.Replayed)
	}
	// No snapshot ever committed, so every replayed block is dirty
	// again — the backpressure state the crash interrupted.
	if rec.PendingLen() != 4 {
		t.Errorf("recovered pending queue %d, want 4", rec.PendingLen())
	}
	diffEngines(t, rec.Core(), oracleFor(t, 4))
	// The recovered queue drains normally.
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if rec.PendingLen() != 0 {
		t.Errorf("pending %d after recovered flush, want 0", rec.PendingLen())
	}
}

// The epoch monitor's timeline state survives the flush/recover cycle.
func TestMonitorStatePersisted(t *testing.T) {
	n := newNVM(t, Config{})
	mon, err := epoch.NewMonitor(1000, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	n.SetMonitor(mon)
	now := int64(0)
	for i := 0; i < 40; i++ {
		mon.Record(now)
		now += 3
	}
	mustWrite(t, n, 0, 0)
	if err := n.Flush(); err != nil {
		t.Fatal(err)
	}
	n.ArmCrash(&fault.CrashPoint{Step: n.Domain().Steps() + 1})
	if err := n.Write(1, 0, 64, pay(1), epoch.CounterMode); err != ErrCrashed {
		t.Fatalf("write returned %v, want ErrCrashed", err)
	}
	_, rep, err := Recover(n.Domain(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Monitor == nil {
		t.Fatal("monitor state not recovered")
	}
	want := mon.ExportState()
	if *rep.Monitor != want {
		t.Errorf("recovered monitor state %+v, want %+v", *rep.Monitor, want)
	}
	mon2, err := epoch.NewMonitor(1000, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mon2.RestoreState(*rep.Monitor)
	if got := mon2.ExportState(); got != want {
		t.Errorf("round-tripped monitor state %+v, want %+v", got, want)
	}
}

// A recovered engine is a full engine: it keeps serving writes,
// flushing, and surviving further crashes.
func TestRecoveredEngineContinues(t *testing.T) {
	n := newNVM(t, Config{})
	for i := 0; i < 4; i++ {
		mustWrite(t, n, int64(i), i)
	}
	n.ArmCrash(&fault.CrashPoint{Step: n.Domain().Steps() + 2})
	if err := n.Write(4, 0, 4*64, pay(4), epoch.CounterMode); err != ErrCrashed {
		t.Fatal("crash point did not fire")
	}
	rec, _, err := Recover(n.Domain(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 8; i++ {
		mustWrite(t, rec, int64(i), i)
	}
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	rec2, rep, err := Recover(rec.Domain(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LastTag != 7 {
		t.Errorf("LastTag %d after second recovery, want 7", rep.LastTag)
	}
	diffEngines(t, rec2.Core(), oracleFor(t, 8))
}

// Fault injections persist like writes: the post-fault codeword is
// journaled, so recovery reproduces the corrupted block exactly.
func TestFaultPersistence(t *testing.T) {
	n := newNVM(t, Config{})
	mustWrite(t, n, 0, 0)
	if err := n.InjectFault(1, 0, 2, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	rec, rep, err := Recover(n.Domain(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 2 {
		t.Errorf("replayed %d, want write + fault", rep.Replayed)
	}
	want := oracleFor(t, 1)
	if err := want.InjectFault(0, 2, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	diffEngines(t, rec.Core(), want)
}

// The BreakRecovery knob must actually break recovery — the crash
// campaign's teeth check depends on it.
func TestBreakRecoveryLosesState(t *testing.T) {
	n := newNVM(t, Config{})
	for i := 0; i < 4; i++ {
		mustWrite(t, n, int64(i), i)
	}
	rec, rep, err := Recover(n.Domain(), Config{BreakRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != 3 {
		t.Errorf("broken recovery replayed %d entries, want 3 (one dropped)", rep.Replayed)
	}
	// Block 3's counter-mode write was the dropped entry: its counter
	// update is gone (the data region still holds the codeword, which
	// is exactly why a counter/metadata diff is needed to catch this
	// class of bug).
	want := oracleFor(t, 4)
	if got, exp := rec.Core().Counters().Counter(3*64), want.Counters().Counter(3*64); got == exp {
		t.Error("broken recovery reproduced the dropped entry's counter anyway")
	}
}

// Crash and recovery leave their marks in the flight recorder.
func TestFlightEvents(t *testing.T) {
	ring := flight.NewRing(64)
	n := newNVM(t, Config{Flight: ring})
	mustWrite(t, n, 0, 0)
	n.ArmCrash(&fault.CrashPoint{Step: n.Domain().Steps() + 1})
	if err := n.Write(1, 0, 64, pay(1), epoch.CounterMode); err != ErrCrashed {
		t.Fatal("crash point did not fire")
	}
	if _, _, err := Recover(n.Domain(), Config{Flight: ring}); err != nil {
		t.Fatal(err)
	}
	var sawCrash, sawRecovery bool
	for _, ev := range ring.Snapshot() {
		switch ev.Kind {
		case flight.KindCrash:
			sawCrash = true
		case flight.KindRecovery:
			sawRecovery = true
		}
	}
	if !sawCrash || !sawRecovery {
		t.Errorf("flight ring: crash=%v recovery=%v, want both", sawCrash, sawRecovery)
	}
}

// Every entry point rejects work after the crash.
func TestCrashedEngineRejects(t *testing.T) {
	n := newNVM(t, Config{})
	n.ArmCrash(&fault.CrashPoint{Step: 1})
	if err := n.Write(0, 0, 0, pay(0), epoch.CounterMode); err != ErrCrashed {
		t.Fatal("expected crash")
	}
	if err := n.Write(1, 0, 64, pay(1), epoch.CounterMode); err != ErrCrashed {
		t.Errorf("post-crash write returned %v", err)
	}
	if _, _, err := n.Read(0); err != ErrCrashed {
		t.Errorf("post-crash read returned %v", err)
	}
	if err := n.Flush(); err != ErrCrashed {
		t.Errorf("post-crash flush returned %v", err)
	}
	if err := n.InjectFault(2, 0, 0, 1); err != ErrCrashed {
		t.Errorf("post-crash fault returned %v", err)
	}
}

// Snapshot slots alternate: two flushes land in different slots, and
// recovery picks the newer one.
func TestSnapshotSlotAlternation(t *testing.T) {
	n := newNVM(t, Config{})
	mustWrite(t, n, 0, 0)
	if err := n.Flush(); err != nil {
		t.Fatal(err)
	}
	seq1 := n.Domain().slots[0].seq
	mustWrite(t, n, 1, 1)
	if err := n.Flush(); err != nil {
		t.Fatal(err)
	}
	if n.Domain().slots[1].seq <= seq1 {
		t.Errorf("second flush seq %d not newer than first %d (slot not alternated?)",
			n.Domain().slots[1].seq, seq1)
	}
	_, rep, err := Recover(n.Domain(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Slot != 1 {
		t.Errorf("recovered from slot %d, want the newer slot 1", rep.Slot)
	}
}

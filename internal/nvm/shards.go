package nvm

// Sharded-pool recovery: where Engine/Domain model one serial engine's
// persistence domain with step-granular crash injection, this file is
// the recovery path for the *sharded* controller (internal/mcpool).
// Each shard's persisted journal is an independent redo log in the
// same wire format the serial domain journals, so a killed node's
// durable state is exactly its per-shard journal bytes as of the last
// FlushBarrier — and recovery is DecodeJournal (torn tails truncated)
// plus Entry.Apply onto a fresh pool's shard engines.
//
// Replaying by redo, not re-execution, matters for the same reason it
// does in Recover: the memoization table's shared write value W dies
// with power, so a fresh engine re-executing the same writes would
// pick different counters. Entry.Apply forces the journaled codeword,
// counter, ownership, and permanent-counterless state instead, which
// reproduces the dead engine's durable state bit for bit.

import (
	"fmt"

	"counterlight/internal/core"
	"counterlight/internal/mcpool"
	"counterlight/internal/obs/flight"
)

// ShardRecovery describes one shard's rebuild from its persisted
// journal bytes.
type ShardRecovery struct {
	Shard    int
	Replayed int    // complete journal entries redo-applied
	Torn     bool   // an incomplete tail was truncated (crash mid-append)
	Seq      uint64 // apply seq after recovery (last durable entry, 0 if none)
}

// RecoverShards rebuilds a freshly created pool from the per-shard
// persisted journals of a dead one. journals[i] is shard i's raw
// persisted journal (mcpool.PersistedJournal bytes captured before the
// kill, or read back from stable storage); a torn tail is truncated, a
// corrupt record is an error. The pool must have the same shard count
// and must not have served traffic yet (mcpool.RestoreShard's
// contract); after a successful return it journals onward from each
// shard's recovered seq. Every shard's recovery is recorded into rec
// (KindRecovery, A = entries replayed, B = recovered seq); rec may be
// nil.
func RecoverShards(pool *mcpool.Pool, journals [][]byte, rec *flight.Ring) ([]ShardRecovery, error) {
	if len(journals) != pool.NumShards() {
		return nil, fmt.Errorf("nvm: %d shard journals for a %d-shard pool", len(journals), pool.NumShards())
	}
	out := make([]ShardRecovery, len(journals))
	for i, raw := range journals {
		entries, off, err := mcpool.DecodeJournal(raw)
		torn := false
		switch err {
		case nil:
		case mcpool.ErrTorn:
			torn = true
		default:
			return nil, fmt.Errorf("nvm: shard %d journal: %w", i, err)
		}
		var seq uint64
		if n := len(entries); n > 0 {
			seq = entries[n-1].Seq
		}
		if err := pool.RestoreShard(i, raw[:off], seq, func(eng *core.Engine) error {
			for _, e := range entries {
				if err := e.Apply(eng); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return nil, fmt.Errorf("nvm: shard %d: %w", i, err)
		}
		out[i] = ShardRecovery{Shard: i, Replayed: len(entries), Torn: torn, Seq: seq}
		rec.Record(flight.KindRecovery, int32(i), 0, int64(len(entries)), int64(seq))
	}
	return out, nil
}

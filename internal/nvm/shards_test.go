package nvm

import (
	"testing"

	"counterlight/internal/core"
	"counterlight/internal/mcpool"
	"counterlight/internal/obs/flight"
)

func shardPool(t *testing.T, opts core.EngineOptions) *mcpool.Pool {
	t.Helper()
	p, err := mcpool.New(mcpool.Config{Shards: 4, Watermark: -1, Persist: true, Engine: opts})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// RecoverShards round trip: run traffic through a persisted pool, take
// its per-shard journals at a FlushBarrier, "kill" it, and rebuild a
// fresh pool — every shard engine must match the dead one bit for bit
// (codeword, counter, ownership, permanent-counterless), and the
// recovered pool must serve reads and journal onward from the
// recovered seqs.
func TestRecoverShardsRoundTrip(t *testing.T) {
	opts := core.DefaultEngineOptions()
	opts.VMs = 2
	dead := shardPool(t, opts)
	sched := mcpool.Schedule(mcpool.ScheduleConfig{Ops: 3000, Blocks: 512, ReadFraction: 0.3, VMs: 2, Seed: 11})
	for _, req := range sched {
		if resp := dead.SubmitWait(req); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	seqs := dead.FlushBarrier()
	journals := make([][]byte, dead.NumShards())
	for s := range journals {
		journals[s] = dead.PersistedJournal(s)
	}

	rec := flight.NewRing(64)
	alive := shardPool(t, opts)
	defer alive.Close()
	reps, err := RecoverShards(alive, journals, rec)
	if err != nil {
		t.Fatal(err)
	}
	for s, rep := range reps {
		if rep.Torn {
			t.Errorf("shard %d: torn tail in a barrier-complete journal", s)
		}
		if rep.Seq != seqs[s] {
			t.Errorf("shard %d: recovered to seq %d, barrier said %d", s, rep.Seq, seqs[s])
		}
		if rep.Replayed == 0 {
			t.Errorf("shard %d: nothing replayed", s)
		}
	}
	if rec.Recorded() != uint64(alive.NumShards()) {
		t.Errorf("flight recorded %d recovery events, want %d", rec.Recorded(), alive.NumShards())
	}
	for s := 0; s < alive.NumShards(); s++ {
		dead.WithShardEngine(s, func(want *core.Engine) {
			alive.WithShardEngine(s, func(got *core.Engine) {
				diffEngines(t, got, want)
			})
		})
	}
	dead.Close()

	// The recovered pool is live: reads of recovered blocks succeed and
	// return the payloads the dead pool stored.
	want := map[uint64][64]byte{}
	for _, req := range sched {
		if req.Kind == mcpool.OpWrite {
			want[req.Addr] = req.Data
		}
	}
	for addr, data := range want {
		resp := alive.SubmitWait(mcpool.Request{Kind: mcpool.OpRead, Addr: addr})
		if resp.Err != nil {
			t.Fatalf("read %#x after recovery: %v", addr, resp.Err)
		}
		if resp.Plain != data {
			t.Fatalf("read %#x after recovery returned stale or wrong data", addr)
		}
	}
}

// A torn tail — the crash-mid-append signature — is truncated: the
// shard recovers to the last complete record and reports Torn.
func TestRecoverShardsTornTail(t *testing.T) {
	opts := core.DefaultEngineOptions()
	dead := shardPool(t, opts)
	for _, req := range mcpool.Schedule(mcpool.ScheduleConfig{Ops: 500, Blocks: 128, Seed: 5}) {
		if resp := dead.SubmitWait(req); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	dead.FlushBarrier()
	journals := make([][]byte, dead.NumShards())
	for s := range journals {
		journals[s] = dead.PersistedJournal(s)
	}
	dead.Close()

	whole, _, err := mcpool.DecodeJournal(journals[0])
	if err != nil || len(whole) < 2 {
		t.Fatalf("shard 0 journal: %d entries, err %v", len(whole), err)
	}
	journals[0] = journals[0][:len(journals[0])-3] // tear the last record

	alive := shardPool(t, opts)
	defer alive.Close()
	reps, err := RecoverShards(alive, journals, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reps[0].Torn {
		t.Error("shard 0: torn tail not reported")
	}
	if reps[0].Replayed != len(whole)-1 {
		t.Errorf("shard 0: replayed %d entries, want %d (torn record truncated)", reps[0].Replayed, len(whole)-1)
	}
	if reps[0].Seq != whole[len(whole)-2].Seq {
		t.Errorf("shard 0: recovered seq %d, want %d", reps[0].Seq, whole[len(whole)-2].Seq)
	}
	for s := 1; s < len(reps); s++ {
		if reps[s].Torn {
			t.Errorf("shard %d: spurious torn tail", s)
		}
	}
}

// Shard-count mismatches and corrupt records are refused outright —
// recovery must never silently rebuild half a topology.
func TestRecoverShardsRejects(t *testing.T) {
	opts := core.DefaultEngineOptions()
	pool := shardPool(t, opts)
	defer pool.Close()
	if _, err := RecoverShards(pool, make([][]byte, 2), nil); err == nil {
		t.Error("shard-count mismatch accepted")
	}
	bad := make([][]byte, pool.NumShards())
	bad[1] = []byte{9, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9} // CRC cannot match
	if _, err := RecoverShards(pool, bad, nil); err == nil {
		t.Error("corrupt journal record accepted")
	}
}

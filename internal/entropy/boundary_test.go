package entropy

import (
	"math/rand"
	"testing"

	"counterlight/internal/cipher"
)

// blockOf builds a 64-byte block from a byte-value histogram: counts[v]
// copies of byte v, in value order. The histogram view is exactly what
// Bits measures, so these blocks pin the classifier boundary precisely.
func blockOf(t *testing.T, counts map[byte]int) cipher.Block {
	t.Helper()
	var b cipher.Block
	i := 0
	for v := 0; v < 256; v++ {
		for n := counts[byte(v)]; n > 0; n-- {
			if i >= len(b) {
				t.Fatal("histogram exceeds 64 bytes")
			}
			b[i] = byte(v)
			i++
		}
	}
	if i != len(b) {
		t.Fatalf("histogram covers %d of 64 bytes", i)
	}
	return b
}

// TestClassifierBoundaryGoldens pins Bits and the 5.5-bit decision on
// dyadic histograms whose entropy is exact in float64, including
// blocks that land exactly ON the threshold — the paper's §IV-E
// plaintext-vs-garbage boundary must not drift with refactors.
func TestClassifierBoundaryGoldens(t *testing.T) {
	cases := []struct {
		name        string
		block       cipher.Block
		wantBits    float64 // exact (dyadic probabilities only)
		looksRandom bool
	}{
		{
			// Degenerate plaintext: one value. H = 0.
			name:        "all-zero",
			block:       blockOf(t, map[byte]int{0: 64}),
			wantBits:    0,
			looksRandom: false,
		},
		{
			// Perfectly uniform: 64 distinct values. H = log2(64) = 6,
			// the MaxBits ceiling.
			name: "all-distinct",
			block: func() cipher.Block {
				c := map[byte]int{}
				for v := 0; v < 64; v++ {
					c[byte(v)] = 1
				}
				return blockOf(t, c)
			}(),
			wantBits:    6,
			looksRandom: true,
		},
		{
			// 16 values twice + 32 singletons:
			// H = 32·(2/64)·log2(32) + 32·(1/64)·log2(64) = 2.5 + 3 = 5.5
			// — exactly the threshold, which classifies as random (≥).
			name: "exactly-threshold",
			block: func() cipher.Block {
				c := map[byte]int{}
				for v := 0; v < 16; v++ {
					c[byte(v)] = 2
				}
				for v := 16; v < 48; v++ {
					c[byte(v)] = 1
				}
				return blockOf(t, c)
			}(),
			wantBits:    5.5,
			looksRandom: true,
		},
		{
			// 17 values twice + 30 singletons:
			// H = 34·(1/32)·log2(32)·(1/2)·2 + 30·(1/64)·log2(64)
			//   = (34·5 + 30·6)/64 = 350/64 = 5.46875
			// — one pair more than the threshold histogram, so it
			// lands just below 5.5 and reads as plaintext.
			name: "just-below-threshold",
			block: func() cipher.Block {
				c := map[byte]int{}
				for v := 0; v < 17; v++ {
					c[byte(v)] = 2
				}
				for v := 17; v < 47; v++ {
					c[byte(v)] = 1
				}
				return blockOf(t, c)
			}(),
			wantBits:    5.46875,
			looksRandom: false,
		},
		{
			// Low-entropy-but-nonzero: a repeating 4-byte pattern
			// (0xDEADBEEF × 16). Four values, 16 each: H = 2 exactly.
			name: "repeating-word",
			block: blockOf(t, map[byte]int{
				0xDE: 16, 0xAD: 16, 0xBE: 16, 0xEF: 16,
			}),
			wantBits:    2,
			looksRandom: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Bits(tc.block); got != tc.wantBits {
				t.Errorf("Bits = %v, want exactly %v", got, tc.wantBits)
			}
			if got := LooksRandom(tc.block); got != tc.looksRandom {
				t.Errorf("LooksRandom = %v, want %v (%.6f bits vs %.1f threshold)",
					got, tc.looksRandom, Bits(tc.block), Threshold)
			}
		})
	}
}

// TestUniformRandomBlockGolden pins one seeded uniform-random block's
// entropy value: a drift in Bits shows up as a changed golden, not a
// silently moved boundary.
func TestUniformRandomBlockGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	var b cipher.Block
	rng.Read(b[:])
	got := Bits(b)
	// Value observed at pinning time for seed 55; uniform blocks sit
	// near but below the 6-bit ceiling because 64 draws collide. The
	// seed-55 histogram happens to be dyadic, so the value is exact.
	const want = 5.8125
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("Bits(random seed 55) = %.15f, want %.15f", got, want)
	}
	if !LooksRandom(b) {
		t.Fatal("seeded uniform block should classify as random")
	}
}

// FuzzEntropyClassifier checks the estimator's hard invariants on
// arbitrary blocks: Bits stays within [0, MaxBits], is invariant under
// byte permutations (it measures a histogram, not an arrangement), and
// Classify/LooksRandom agree with each other.
func FuzzEntropyClassifier(f *testing.F) {
	f.Add([]byte{}, int64(1))
	f.Add([]byte("the quick brown fox jumps over the lazy dog....!"), int64(2))
	f.Fuzz(func(t *testing.T, data []byte, permSeed int64) {
		var b cipher.Block
		copy(b[:], data)
		h := Bits(b)
		if h < 0 || h > MaxBits {
			t.Fatalf("Bits = %v outside [0, %v]", h, MaxBits)
		}
		if (h >= Threshold) != LooksRandom(b) {
			t.Fatalf("LooksRandom disagrees with Bits %v at threshold %v", h, Threshold)
		}
		// Permutation invariance.
		rng := rand.New(rand.NewSource(permSeed))
		p := b
		rng.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
		if hp := Bits(p); hp != h {
			t.Fatalf("entropy changed under permutation: %v -> %v (seed %d)", h, hp, permSeed)
		}
		// Classify must pick a NOT-random candidate, and only when
		// unique.
		cands := []cipher.Block{b, p}
		pick := Classify(cands)
		low := 0
		for _, c := range cands {
			if !LooksRandom(c) {
				low++
			}
		}
		switch {
		case low == 1 && (pick < 0 || LooksRandom(cands[pick])):
			t.Fatalf("Classify = %d with exactly one low-entropy candidate", pick)
		case low != 1 && pick != -1:
			t.Fatalf("Classify = %d should be inconclusive with %d low-entropy candidates", pick, low)
		}
	})
}

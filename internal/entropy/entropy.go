// Package entropy implements the byte-entropy estimator of paper
// §IV-E. Wrongly decrypted data is "the same as re-encrypting the
// already encrypted data" and therefore looks random: its Shannon
// entropy over the 64 bytes of a block approaches the theoretical
// maximum of log2(64) = 6 bits. Real program plaintext — pointers,
// small integers, text — repeats byte values and stays measurably
// lower. The paper uses a 5.5-bit cutoff: ≥99.9% of wrongly decrypted
// blocks measure ≥5.5 while original plaintexts measure <5.5, letting
// the error-correction path discard the hypothesis that decrypted to
// randomness and keep the one that decrypted to data.
package entropy

import (
	"math"

	"counterlight/internal/cipher"
)

// MaxBits is the maximum possible entropy of a 64-byte block measured
// at byte granularity: log2(64) = 6.
const MaxBits = 6.0

// Threshold is the paper's plaintext/garbage decision boundary.
const Threshold = 5.5

// Bits returns the Shannon entropy, in bits, of the byte-value
// distribution within one 64-byte block. The result lies in [0, 6]:
// 0 when all bytes are equal, 6 when all 64 bytes are distinct.
func Bits(b cipher.Block) float64 {
	var counts [256]uint8
	for _, v := range b {
		counts[v]++
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(len(b))
		h -= p * math.Log2(p)
	}
	return h
}

// LooksRandom reports whether the block's entropy is at or above the
// paper's 5.5-bit threshold, i.e. whether it is more plausibly a
// wrong decryption than real plaintext.
func LooksRandom(b cipher.Block) bool { return Bits(b) >= Threshold }

// Classify picks the plaintext candidate among blocks decrypted under
// competing hypotheses: it returns the index of the unique candidate
// that does NOT look random, or -1 when the test is inconclusive
// (zero or multiple low-entropy candidates). Inconclusive cases fall
// back to a detected uncorrectable error, adding only
// 2^-61 · (1 - 0.999) to the DUE probability (§IV-E).
func Classify(candidates []cipher.Block) int {
	chosen := -1
	for i, c := range candidates {
		if !LooksRandom(c) {
			if chosen != -1 {
				return -1 // ambiguous: more than one plausible plaintext
			}
			chosen = i
		}
	}
	return chosen
}

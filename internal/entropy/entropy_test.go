package entropy

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"counterlight/internal/cipher"
)

func TestBitsExtremes(t *testing.T) {
	var uniform cipher.Block // all zero bytes
	if got := Bits(uniform); got != 0 {
		t.Errorf("entropy of constant block = %v, want 0", got)
	}
	var distinct cipher.Block
	for i := range distinct {
		distinct[i] = byte(i)
	}
	if got := Bits(distinct); math.Abs(got-MaxBits) > 1e-9 {
		t.Errorf("entropy of distinct block = %v, want %v", got, MaxBits)
	}
}

func TestBitsTwoValues(t *testing.T) {
	var b cipher.Block
	for i := 32; i < 64; i++ {
		b[i] = 0xFF
	}
	if got := Bits(b); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("entropy of 50/50 block = %v, want 1.0", got)
	}
}

// Random (ciphertext-like) blocks almost always measure >= 5.5 bits.
func TestRandomBlocksLookRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	random := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		var b cipher.Block
		rng.Read(b[:])
		if LooksRandom(b) {
			random++
		}
	}
	if frac := float64(random) / trials; frac < 0.999 {
		t.Errorf("only %.4f of random blocks measured >= 5.5 bits, want >= 0.999", frac)
	}
}

// Program-like plaintext (pointers, counters, zero padding, text)
// measures below the threshold.
func TestPlaintextLooksStructured(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	structured := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		b := plausiblePlaintext(rng)
		if !LooksRandom(b) {
			structured++
		}
	}
	if frac := float64(structured) / trials; frac < 0.98 {
		t.Errorf("only %.4f of plaintext blocks measured < 5.5 bits, want >= 0.98", frac)
	}
}

// plausiblePlaintext synthesizes typical memory contents: 8-byte
// pointers sharing high bytes, small integers, text, zero runs.
func plausiblePlaintext(rng *rand.Rand) cipher.Block {
	var b cipher.Block
	switch rng.Intn(4) {
	case 0: // pointer array into one heap region
		base := uint64(0x7f3a_0000_0000) + uint64(rng.Intn(1<<20))
		for i := 0; i < 8; i++ {
			binary.LittleEndian.PutUint64(b[8*i:], base+uint64(rng.Intn(1<<16)))
		}
	case 1: // small integers
		for i := 0; i < 16; i++ {
			binary.LittleEndian.PutUint32(b[4*i:], uint32(rng.Intn(1000)))
		}
	case 2: // ASCII text
		const alphabet = "the quick brown fox jumps over lazy dog 0123456789"
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
	case 3: // struct with zero padding
		for i := 0; i < 24; i++ {
			b[i] = byte(rng.Intn(256))
		}
	}
	return b
}

// The §IV-E experiment end to end: decrypting a counter-mode
// ciphertext under the wrong mode yields >= 5.5 bits for ~all blocks,
// while the right mode restores the structured plaintext.
func TestWrongDecryptionHighEntropy(t *testing.T) {
	cm, err := cipher.NewCounterMode(make([]byte, 16), 0x77, nil)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cipher.NewCounterless(make([]byte, 16), make([]byte, 16), []byte("mac"))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(62))
	const trials = 500
	wrongHigh, rightLow := 0, 0
	for i := 0; i < trials; i++ {
		plain := plausiblePlaintext(rng)
		if LooksRandom(plain) {
			continue // skip the rare high-entropy plaintext
		}
		addr := uint64(rng.Intn(1<<28)) &^ 63
		ct := cm.Encrypt(9, addr, plain)
		// Wrong hypothesis: counterless decryption of a CTR ciphertext.
		wrong := cl.Decrypt(addr, ct)
		if LooksRandom(wrong) {
			wrongHigh++
		}
		right := cm.Decrypt(9, addr, ct)
		if !LooksRandom(right) {
			rightLow++
		}
	}
	if wrongHigh < 495 {
		t.Errorf("wrong-mode decryption looked random for %d/500, want ~all", wrongHigh)
	}
	if rightLow < 495 {
		t.Errorf("right-mode decryption looked structured for %d/500, want ~all", rightLow)
	}
}

func TestClassify(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	var randomBlk cipher.Block
	rng.Read(randomBlk[:])
	structured := plausiblePlaintext(rng)
	for !LooksRandom(randomBlk) {
		rng.Read(randomBlk[:])
	}
	for LooksRandom(structured) {
		structured = plausiblePlaintext(rng)
	}
	if got := Classify([]cipher.Block{randomBlk, structured}); got != 1 {
		t.Errorf("Classify = %d, want 1", got)
	}
	if got := Classify([]cipher.Block{structured, randomBlk}); got != 0 {
		t.Errorf("Classify = %d, want 0", got)
	}
	// Ambiguous: two structured candidates.
	if got := Classify([]cipher.Block{structured, structured}); got != -1 {
		t.Errorf("Classify ambiguous = %d, want -1", got)
	}
	// Inconclusive: all random.
	if got := Classify([]cipher.Block{randomBlk, randomBlk}); got != -1 {
		t.Errorf("Classify all-random = %d, want -1", got)
	}
}

func BenchmarkBits(b *testing.B) {
	var blk cipher.Block
	for i := range blk {
		blk[i] = byte(i * 7)
	}
	for i := 0; i < b.N; i++ {
		Bits(blk)
	}
}

package perf

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func snap(results ...Result) Snapshot {
	return Snapshot{
		Schema: SchemaVersion, Suite: "counterlight-bench",
		Go: "go1.24", OS: "linux", Arch: "amd64", MaxProcs: 8,
		Results: results,
	}
}

func TestRoundTrip(t *testing.T) {
	s := snap(
		Result{Name: "engine/read_hit", Iterations: 1000, NsPerOp: 1234.5, AllocsPerOp: 0},
		Result{Name: "mcpool/throughput_s8b32", NsPerOp: 900, AllocsPerOp: 3.5, OpsPerSec: 1.1e6,
			Extra: map[string]float64{"p99_ns": 50000}},
	)
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != SchemaVersion || len(got.Results) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Results[1].Extra["p99_ns"] != 50000 {
		t.Error("extra metrics lost in round trip")
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		s    Snapshot
		want string
	}{
		{"future schema", Snapshot{Schema: SchemaVersion + 1, Results: []Result{{Name: "a"}}}, "unsupported schema"},
		{"zero schema", Snapshot{Results: []Result{{Name: "a"}}}, "unsupported schema"},
		{"empty", Snapshot{Schema: 1}, "no results"},
		{"unnamed", Snapshot{Schema: 1, Results: []Result{{}}}, "empty name"},
		{"duplicate", Snapshot{Schema: 1, Results: []Result{{Name: "a"}, {Name: "a"}}}, "duplicate"},
	}
	for _, c := range cases {
		err := c.s.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err %v, want containing %q", c.name, err, c.want)
		}
	}
	if err := snap(Result{Name: "a"}).Validate(); err != nil {
		t.Errorf("valid snapshot rejected: %v", err)
	}
}

func TestCompareAndGrade(t *testing.T) {
	old := snap(
		Result{Name: "engine/read_hit", NsPerOp: 1000, AllocsPerOp: 0},
		Result{Name: "engine/write", NsPerOp: 2000, AllocsPerOp: 4},
		Result{Name: "mcpool/tp", NsPerOp: 500, AllocsPerOp: 2, OpsPerSec: 2e6},
		Result{Name: "gone", NsPerOp: 1, AllocsPerOp: 0},
	)
	new := snap(
		Result{Name: "engine/read_hit", NsPerOp: 1400, AllocsPerOp: 1}, // 40% slower AND allocs off zero
		Result{Name: "engine/write", NsPerOp: 2200, AllocsPerOp: 4},    // 10% slower
		Result{Name: "mcpool/tp", NsPerOp: 450, AllocsPerOp: 2, OpsPerSec: 2.2e6},
		Result{Name: "fresh", NsPerOp: 9, AllocsPerOp: 0},
	)
	deltas := Compare(old, new)

	find := func(name, metric string) Delta {
		for _, d := range deltas {
			if d.Name == name && d.Metric == metric {
				return d
			}
		}
		t.Fatalf("missing delta %s %s", name, metric)
		return Delta{}
	}
	if d := find("engine/read_hit", "ns/op"); math.Abs(d.Pct-0.4) > 1e-9 || !d.Gated {
		t.Errorf("read_hit ns/op delta %+v", d)
	}
	if d := find("engine/read_hit", "allocs/op"); !math.IsInf(d.Pct, 1) {
		t.Errorf("allocs climbing off zero should be +Inf, got %v", d.Pct)
	}
	if d := find("mcpool/tp", "ops/sec"); d.Gated || d.Pct > 0 {
		t.Errorf("throughput improvement should be ungated and negative: %+v", d)
	}

	removed, added := Missing(old, new)
	if len(removed) != 1 || removed[0] != "gone" || len(added) != 1 || added[0] != "fresh" {
		t.Errorf("missing: removed=%v added=%v", removed, added)
	}

	v := Grade(deltas, 0.10, 0.25)
	if v.OK() {
		t.Error("40% + Inf regressions should fail")
	}
	if len(v.Fails) != 2 { // read_hit ns/op and allocs/op
		t.Errorf("fails %+v, want 2", v.Fails)
	}
	// engine/write at exactly 10%: not strictly greater, so no warning;
	// 10.0001% would warn. Pin the boundary.
	for _, w := range v.Warns {
		if w.Name == "engine/write" {
			t.Errorf("exact-threshold delta should not warn: %+v", w)
		}
	}

	// Fail disabled: everything downgrades below fail.
	v = Grade(deltas, 0.10, 0)
	if !v.OK() {
		t.Error("fail<=0 must disable hard failure")
	}
}

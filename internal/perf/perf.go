// Package perf defines the repo's standardized performance-trajectory
// snapshot — the BENCH_<n>.json files — and the comparison logic that
// gates regressions.
//
// A snapshot is one run of the pinned benchmark suite (cmd/clbench
// -bench-json): engine ns/op and allocs/op, mcpool throughput at
// fixed shard/batch configurations, and clserve-style load-generator
// qps and latency percentiles. Snapshots are schema-versioned so a
// later PR can extend the suite without breaking clreport
// -bench-compare against older baselines: unknown names simply report
// as added/removed rather than failing.
//
// The trajectory convention: BENCH_0.json is the checked-in baseline;
// each perf-relevant PR appends BENCH_<n+1>.json (make bench-json
// picks the next free index), so the history of the hot path is
// diffable in-repo and CI can gate any new snapshot against the
// baseline.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// SchemaVersion is the current snapshot schema. Readers accept any
// version they know how to interpret; writers always emit the
// current one. Version 2 added the Cipher field (the AES backend the
// suite ran on); version-1 snapshots read back with Cipher empty,
// meaning the pre-seam T-table path.
const SchemaVersion = 2

// Result is one benchmark's numbers. NsPerOp is the primary
// regression-gated metric; AllocsPerOp is gated too (and is
// machine-independent, so it is the stable signal on noisy CI
// hardware). OpsPerSec is informational for throughput benches, and
// Extra carries suite-specific readings (latency percentiles, hit
// rates) that are reported but never gated.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations,omitempty"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	OpsPerSec   float64            `json:"ops_per_sec,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Snapshot is one BENCH_<n>.json: environment identity plus the
// pinned suite's results.
type Snapshot struct {
	Schema   int      `json:"schema"`
	Suite    string   `json:"suite"`
	Created  string   `json:"created,omitempty"` // RFC3339; informational only
	Go       string   `json:"go"`
	OS       string   `json:"os"`
	Arch     string   `json:"arch"`
	MaxProcs int      `json:"maxprocs"`
	Cipher   string   `json:"cipher,omitempty"` // AES backend (schema >= 2; empty = pre-seam ttable)
	Quick    bool     `json:"quick,omitempty"`  // reduced measurement windows
	Results  []Result `json:"results"`
}

// Validate rejects snapshots bench-compare cannot interpret.
func (s Snapshot) Validate() error {
	if s.Schema <= 0 || s.Schema > SchemaVersion {
		return fmt.Errorf("perf: unsupported schema %d (this build understands <= %d)", s.Schema, SchemaVersion)
	}
	if len(s.Results) == 0 {
		return fmt.Errorf("perf: snapshot has no results")
	}
	seen := make(map[string]bool, len(s.Results))
	for _, r := range s.Results {
		if r.Name == "" {
			return fmt.Errorf("perf: result with empty name")
		}
		if seen[r.Name] {
			return fmt.Errorf("perf: duplicate result %q", r.Name)
		}
		seen[r.Name] = true
	}
	return nil
}

// Write renders the snapshot as indented JSON.
func (s Snapshot) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteFile writes the snapshot to path.
func (s Snapshot) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = s.Write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Read parses and validates a snapshot.
func Read(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("perf: parsing snapshot: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Snapshot{}, err
	}
	return s, nil
}

// ReadFile reads and validates the snapshot at path.
func ReadFile(path string) (Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return Snapshot{}, err
	}
	defer f.Close()
	s, err := Read(f)
	if err != nil {
		return Snapshot{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Delta is one (benchmark, metric) comparison between two snapshots.
// Pct is the relative change in the regression direction: positive
// means worse (slower, more allocs, less throughput), negative means
// better.
type Delta struct {
	Name   string
	Metric string // "ns/op", "allocs/op", "ops/sec"
	Old    float64
	New    float64
	Pct    float64
	Gated  bool // counts toward the regression verdict
}

// Compare lines the two snapshots up benchmark by benchmark. Gated
// metrics are ns/op and allocs/op; ops/sec is reported (inverted so
// positive still means worse) but not gated, since it restates ns/op
// for throughput benches. Benchmarks present in only one snapshot are
// skipped — the suite is allowed to grow.
func Compare(old, new Snapshot) []Delta {
	oldBy := make(map[string]Result, len(old.Results))
	for _, r := range old.Results {
		oldBy[r.Name] = r
	}
	var out []Delta
	for _, nr := range new.Results {
		or, ok := oldBy[nr.Name]
		if !ok {
			continue
		}
		out = append(out, Delta{
			Name: nr.Name, Metric: "ns/op",
			Old: or.NsPerOp, New: nr.NsPerOp,
			Pct: relChange(or.NsPerOp, nr.NsPerOp), Gated: true,
		})
		out = append(out, Delta{
			Name: nr.Name, Metric: "allocs/op",
			Old: or.AllocsPerOp, New: nr.AllocsPerOp,
			Pct: relChange(or.AllocsPerOp, nr.AllocsPerOp), Gated: true,
		})
		if or.OpsPerSec > 0 && nr.OpsPerSec > 0 {
			out = append(out, Delta{
				Name: nr.Name, Metric: "ops/sec",
				Old: or.OpsPerSec, New: nr.OpsPerSec,
				// Throughput regresses downward; flip the sign so
				// positive means worse everywhere.
				Pct: relChange(nr.OpsPerSec, or.OpsPerSec),
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}

// relChange is (new-old)/old with the zero-baseline edge cases
// pinned: 0 -> 0 is no change; 0 -> x is an infinite regression
// (something that never happened now does — e.g. allocs/op climbing
// off zero), reported as +Inf so thresholds always trip.
func relChange(old, new float64) float64 {
	if old == new {
		return 0
	}
	if old == 0 {
		return math.Inf(1)
	}
	return (new - old) / old
}

// Missing reports suite drift: names in old absent from new, and
// names in new absent from old.
func Missing(old, new Snapshot) (removed, added []string) {
	newBy := make(map[string]bool, len(new.Results))
	for _, r := range new.Results {
		newBy[r.Name] = true
	}
	oldBy := make(map[string]bool, len(old.Results))
	for _, r := range old.Results {
		oldBy[r.Name] = true
		if !newBy[r.Name] {
			removed = append(removed, r.Name)
		}
	}
	for _, r := range new.Results {
		if !oldBy[r.Name] {
			added = append(added, r.Name)
		}
	}
	sort.Strings(removed)
	sort.Strings(added)
	return removed, added
}

// Verdict grades a comparison against warn/fail thresholds
// (fractions: 0.25 = 25%). A fail threshold <= 0 disables hard
// failure; gating looks only at Gated deltas.
type Verdict struct {
	Warns []Delta
	Fails []Delta
}

// Grade buckets every gated delta: Pct > fail is a failure, Pct >
// warn a warning. Ungated deltas never appear in the verdict.
func Grade(deltas []Delta, warn, fail float64) Verdict {
	var v Verdict
	for _, d := range deltas {
		if !d.Gated {
			continue
		}
		switch {
		case fail > 0 && d.Pct > fail:
			v.Fails = append(v.Fails, d)
		case warn > 0 && d.Pct > warn:
			v.Warns = append(v.Warns, d)
		}
	}
	return v
}

// OK reports whether the verdict allows the gate to pass.
func (v Verdict) OK() bool { return len(v.Fails) == 0 }

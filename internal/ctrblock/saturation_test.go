package ctrblock

import (
	"math/rand"
	"testing"
)

// Saturation-audit invariants for the split-counter overflow path
// (the satellite audit of the lost-update window): under any
// serialized Increment sequence, the incremented block's Full value
// advances by exactly one, no block's Full value ever regresses, and
// the reencrypt signal fires exactly when non-incremented blocks'
// values jump (the re-encryption obligation). A torn decode/writeback
// interleaving breaks the first two — the test pins the contract the
// shard lock in internal/mcpool exists to preserve.
func TestSplitIncrementFullMonotonic(t *testing.T) {
	var s SplitBlock
	rng := rand.New(rand.NewSource(7))

	var before [MinorsPerBlock]uint64
	for step := 0; step < 20_000; step++ {
		for i := range before {
			before[i] = s.Full(i)
		}
		i := rng.Intn(MinorsPerBlock)
		reencrypt, err := s.Increment(i)
		if err != nil {
			t.Fatal(err)
		}

		if got := s.Full(i); got != before[i]+1 {
			t.Fatalf("step %d: Full(%d) %d -> %d, want exactly +1", step, i, before[i], got)
		}
		if reencrypt {
			// Overflow: every minor reset, major advanced by one.
			for j := range s.Minors {
				if s.Minors[j] != 0 {
					t.Fatalf("step %d: minor %d = %d after overflow, want 0", step, j, s.Minors[j])
				}
			}
			for j := range before {
				if j == i {
					continue
				}
				if got := s.Full(j); got <= before[j] {
					t.Fatalf("step %d: bystander %d regressed %d -> %d on overflow", step, j, before[j], got)
				}
			}
		} else {
			// No overflow: every other block's value is untouched —
			// the ciphertexts stored under those counters stay valid.
			for j := range before {
				if j == i {
					continue
				}
				if got := s.Full(j); got != before[j] {
					t.Fatalf("step %d: increment of %d moved bystander %d: %d -> %d", step, i, j, before[j], got)
				}
			}
		}
	}
	if s.Major == 0 {
		t.Fatal("sequence never overflowed a minor; the invariants above were not exercised")
	}
}

// TestSplitLostUpdateWindow demonstrates concretely why Increment
// needs one exclusion scope around decode and writeback: replaying a
// stale decoded copy over a newer one silently discards increments
// and regresses full counter values (nonce reuse). The engine-side
// fix routes every counter block through a single shard so this
// interleaving cannot occur; the test documents the failure mode the
// routing prevents.
func TestSplitLostUpdateWindow(t *testing.T) {
	var stored SplitBlock
	for i := 0; i < 3; i++ {
		if _, err := stored.Increment(0); err != nil {
			t.Fatal(err)
		}
	}

	// Writer A decodes (snapshot), writer B increments and writes
	// back, then A increments its stale copy and writes back last.
	snapA := DecodeSplit(stored.Encode())
	if _, err := stored.Increment(1); err != nil { // B's update
		t.Fatal(err)
	}
	if _, err := snapA.Increment(0); err != nil {
		t.Fatal(err)
	}
	lost := DecodeSplit(snapA.Encode()) // A's stale writeback wins

	if lost.Full(1) >= stored.Full(1) {
		t.Fatalf("expected the torn interleaving to lose block 1's update (got %d, serialized %d) — if this no longer reproduces, the SplitBlock contract changed and the mcpool sharding rationale needs revisiting",
			lost.Full(1), stored.Full(1))
	}
}

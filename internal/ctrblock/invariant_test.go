package ctrblock

import (
	"math/rand"
	"testing"
)

// TestMetadataConstants pins the relationship the engine's 4-byte
// EncryptionMetadata encoding relies on: the counterless flag is the
// one value above CounterMax, and both fit the 32-bit field.
func TestMetadataConstants(t *testing.T) {
	if CounterlessFlag != CounterMax+1 {
		t.Errorf("CounterlessFlag = %d, want CounterMax+1 = %d",
			uint64(CounterlessFlag), uint64(CounterMax)+1)
	}
	if uint64(CounterlessFlag) != 1<<32-1 {
		t.Errorf("CounterlessFlag = %d does not fill the 32-bit field", uint64(CounterlessFlag))
	}
}

// TestCounterMonotonicityInvariant is the store-level half of the
// differential harness's per-block monotonicity probe: under a seeded
// random mix of legal jumps and illegal (stale, equal, over-max)
// updates, every block's counter only ever moves forward, rejected
// updates leave state untouched, and the tree stays verifiable
// throughout. The seed is printed on failure for replay.
func TestCounterMonotonicityInvariant(t *testing.T) {
	const seed = 77
	rng := rand.New(rand.NewSource(seed))
	s := newStore(t)

	const blocks = 32
	prev := make([]uint32, blocks)
	for step := 0; step < 500; step++ {
		bi := uint64(rng.Intn(blocks))
		addr := bi * testBlock
		switch rng.Intn(5) {
		case 0: // stale or equal value: must be rejected, state unchanged
			if err := s.Increment(addr, prev[bi]); err == nil && prev[bi] <= s.Counter(addr) {
				// Increment to the current value must fail; to a past
				// value likewise.
				t.Fatalf("seed %d step %d: non-increasing update accepted at block %d", seed, step, bi)
			}
		case 1: // beyond CounterMax: must be rejected
			if err := s.Increment(addr, CounterlessFlag); err == nil {
				t.Fatalf("seed %d step %d: counter reached the counterless flag", seed, step)
			}
		default: // legal forward jump (memoization-style strides included)
			next := s.Counter(addr) + 1 + uint32(rng.Intn(4096))
			if err := s.Increment(addr, next); err != nil {
				t.Fatalf("seed %d step %d: legal increment rejected: %v", seed, step, err)
			}
		}
		if got := s.Counter(addr); got < prev[bi] {
			t.Fatalf("seed %d step %d: counter moved backward %d -> %d at block %d",
				seed, step, prev[bi], got, bi)
		}
		prev[bi] = s.Counter(addr)
		if !s.VerifyCounter(addr) {
			t.Fatalf("seed %d step %d: tree verification failed after legitimate traffic", seed, step)
		}
	}
}

package ctrblock

import (
	"encoding/binary"
	"fmt"
)

// This file implements the physical split-counter layout (paper §II-C,
// after Yan et al. and Morphable Counters): a single 64-byte counter
// block serves 128 data blocks by storing one shared 64-bit major
// counter plus a small per-block minor counter, with the block's MAC
// inline:
//
//	bytes  0..7    major counter (shared by all 128 data blocks)
//	bytes  8..55   128 × 3-bit minor counters (48 bytes exactly)
//	bytes 56..63   MAC over the block (computed by the caller)
//
// A data block's full counter value is major*8 + minor. When a minor
// counter is about to overflow, the major counter increments and ALL
// minors reset — which changes every data block's full counter, so all
// 128 blocks must be re-encrypted (the classic split-counter overflow
// cost; rare in practice because 3 bits absorb 7 writes between
// overflows and the major bump re-arms all of them).
//
// The Store above tracks logical 32-bit counters directly; SplitBlock
// exists to show the representation is physically realizable in the
// 64-byte budget Fig. 12 assumes, and to let the simulator charge
// overflow re-encryption traffic when asked.

// MinorsPerBlock is the number of minor counters per split block.
const MinorsPerBlock = CountersPerBlock

// MinorBits is the width of each minor counter.
const MinorBits = 3

// MinorMax is the largest minor value (7 for 3-bit minors).
const MinorMax = 1<<MinorBits - 1

// SplitBlock is the decoded form of one 64-byte split-counter block.
type SplitBlock struct {
	Major  uint64
	Minors [MinorsPerBlock]uint8 // each in [0, MinorMax]
	MAC    uint64
}

// Full returns data block i's full counter value: major*8 + minor.
func (s *SplitBlock) Full(i int) uint64 {
	return s.Major*(MinorMax+1) + uint64(s.Minors[i])
}

// Increment advances data block i's counter. When the minor saturates,
// the major increments, every minor resets to zero, and reencrypt
// reports that all 128 data blocks must be re-encrypted with their new
// full counter values.
//
// Concurrency contract: the overflow path is a read-modify-write over
// the WHOLE block (major + all 128 minors), so decode, Increment, and
// writeback must happen under one exclusion scope per counter block.
// Interleaving two Increments between another's decode and writeback
// loses updates and can regress a block's Full value — internal/mcpool
// provides that scope by pinning each counter block's address range to
// one shard and applying ops under the shard lock.
func (s *SplitBlock) Increment(i int) (reencrypt bool, err error) {
	if i < 0 || i >= MinorsPerBlock {
		return false, fmt.Errorf("ctrblock: minor index %d out of range", i)
	}
	if s.Minors[i] < MinorMax {
		s.Minors[i]++
		return false, nil
	}
	s.Major++
	for j := range s.Minors {
		s.Minors[j] = 0
	}
	return true, nil
}

// Encode packs the split block into its physical 64-byte form.
func (s *SplitBlock) Encode() [64]byte {
	var out [64]byte
	binary.LittleEndian.PutUint64(out[0:], s.Major)
	// Pack 128 3-bit minors into bytes 8..55: minor i occupies bits
	// [3i, 3i+3) of the 384-bit field.
	for i, m := range s.Minors {
		bit := 3 * i
		byteIdx := 8 + bit/8
		shift := uint(bit % 8)
		v := uint16(m&MinorMax) << shift
		out[byteIdx] |= byte(v)
		if shift > 5 { // spills into the next byte
			out[byteIdx+1] |= byte(v >> 8)
		}
	}
	binary.LittleEndian.PutUint64(out[56:], s.MAC)
	return out
}

// DecodeSplit unpacks a physical split-counter block.
func DecodeSplit(raw [64]byte) SplitBlock {
	var s SplitBlock
	s.Major = binary.LittleEndian.Uint64(raw[0:])
	for i := range s.Minors {
		bit := 3 * i
		byteIdx := 8 + bit/8
		shift := uint(bit % 8)
		v := uint16(raw[byteIdx]) >> shift
		if shift > 5 {
			v |= uint16(raw[byteIdx+1]) << (8 - shift)
		}
		s.Minors[i] = uint8(v & MinorMax)
	}
	s.MAC = binary.LittleEndian.Uint64(raw[56:])
	return s
}

// SplitOverheadFraction returns the storage overhead of split counter
// blocks alone: one 64-byte block per 128 data blocks.
func SplitOverheadFraction() float64 { return 1.0 / CountersPerBlock }

package ctrblock

import (
	"math/rand"
	"testing"
)

const (
	testMem   = 1 << 26 // 64 MB data region
	testBlock = 64
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := New(testMem, testBlock)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewErrors(t *testing.T) {
	if _, err := New(0, 64); err == nil {
		t.Error("want error for zero memory")
	}
	if _, err := New(1<<20, 0); err == nil {
		t.Error("want error for zero block size")
	}
	if _, err := New(100, 64); err == nil {
		t.Error("want error for non-multiple memory size")
	}
}

func TestGeometry(t *testing.T) {
	s := newStore(t)
	// 64 MB / 64 B = 1 Mi data blocks; /128 = 8 Ki counter blocks;
	// levels: 8192 -> 1024 -> 128 -> 16 -> 2 -> 1.
	if got := s.levelBlocks[0]; got != 8192 {
		t.Errorf("counter blocks = %d, want 8192", got)
	}
	wantLevels := []uint64{8192, 1024, 128, 16, 2, 1}
	if s.Levels() != len(wantLevels) {
		t.Fatalf("levels = %d, want %d", s.Levels(), len(wantLevels))
	}
	for i, w := range wantLevels {
		if s.levelBlocks[i] != w {
			t.Errorf("level %d blocks = %d, want %d", i, s.levelBlocks[i], w)
		}
	}
}

// The split-counter metadata overhead must be small — the paper quotes
// 1.6% for counters plus tree. Our exact layout (1/128 for counters
// plus the 8-ary tree above) comes to about 0.9%.
func TestOverheadFraction(t *testing.T) {
	s := newStore(t)
	frac := float64(s.OverheadBytes()) / float64(testMem)
	if frac < 0.005 || frac > 0.02 {
		t.Errorf("metadata overhead = %.4f of memory, want ~0.9%%", frac)
	}
}

func TestCounterBlockAddrMapping(t *testing.T) {
	s := newStore(t)
	// Blocks 0..127 share the first counter block; block 128 starts the next.
	a0 := s.CounterBlockAddr(0)
	if a0 != testMem {
		t.Errorf("first counter block at %#x, want %#x", a0, uint64(testMem))
	}
	if s.CounterBlockAddr(127*64) != a0 {
		t.Error("block 127 should share counter block 0")
	}
	if s.CounterBlockAddr(128*64) != a0+64 {
		t.Error("block 128 should use counter block 1")
	}
	// Counter block addresses must be inside the metadata region.
	if a := s.CounterBlockAddr(testMem - 64); a < testMem || a >= testMem+s.OverheadBytes() {
		t.Errorf("counter block address %#x outside metadata region", a)
	}
}

func TestTreeNodeAddrs(t *testing.T) {
	s := newStore(t)
	nodes := s.TreeNodeAddrs(0)
	// 6 levels total; DRAM-resident tree nodes are levels 1..4 (the
	// top node lives on chip): 4 addresses.
	if len(nodes) != 4 {
		t.Fatalf("tree path length = %d, want 4", len(nodes))
	}
	for i, a := range nodes {
		if a < s.levelBase[i+1] || a >= s.levelBase[i+1]+s.levelBlocks[i+1]*testBlock {
			t.Errorf("node %d address %#x outside level %d region", i, a, i+1)
		}
	}
	// Different data addresses far apart must diverge at the bottom of
	// the tree; they converge only at the on-chip top node, which is
	// not part of the DRAM path.
	other := s.TreeNodeAddrs(testMem - 64)
	if nodes[0] == other[0] {
		t.Error("distant blocks share a level-1 node")
	}
	// Nearby addresses (same counter block) share the whole path.
	near := s.TreeNodeAddrs(64)
	for i := range nodes {
		if nodes[i] != near[i] {
			t.Errorf("level %d: neighbors diverge", i+1)
		}
	}
}

func TestIncrementAndRead(t *testing.T) {
	s := newStore(t)
	if s.Counter(4096) != 0 {
		t.Error("initial counter must be 0")
	}
	if err := s.Increment(4096, 1); err != nil {
		t.Fatal(err)
	}
	if s.Counter(4096) != 1 {
		t.Error("counter not updated")
	}
	// Non-monotonic updates must be rejected.
	if err := s.Increment(4096, 1); err == nil {
		t.Error("want error for equal counter")
	}
	if err := s.Increment(4096, 0); err == nil {
		t.Error("want error for decreasing counter")
	}
	// Jumping forward is fine (the memoization policy does this).
	if err := s.Increment(4096, 100); err != nil {
		t.Error(err)
	}
	// Exceeding CounterMax is rejected.
	if err := s.Increment(4096, 1<<32-1); err == nil {
		t.Error("want error beyond CounterMax")
	}
}

func TestVerifyFreshStore(t *testing.T) {
	s := newStore(t)
	for _, addr := range []uint64{0, 64, 4096, testMem - 64} {
		if !s.VerifyCounter(addr) {
			t.Errorf("fresh store fails verification at %#x", addr)
		}
	}
}

func TestVerifyAfterIncrements(t *testing.T) {
	s := newStore(t)
	rng := rand.New(rand.NewSource(30))
	addrs := make([]uint64, 200)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(testMem/64)) * 64
		if err := s.Increment(addrs[i], s.Counter(addrs[i])+uint32(rng.Intn(5)+1)); err != nil {
			t.Fatal(err)
		}
	}
	for _, a := range addrs {
		if !s.VerifyCounter(a) {
			t.Fatalf("verification fails at %#x after legitimate updates", a)
		}
	}
	// Untouched addresses must also still verify.
	if !s.VerifyCounter(63 * 64 * 128) {
		t.Error("untouched address fails verification")
	}
}

// Reproduce the Fig. 10 replay attack: capture {counter, MAC}, let the
// victim write (incrementing the counter), then replay the old pair.
// The tree must detect it.
func TestReplayDetected(t *testing.T) {
	s := newStore(t)
	const addr = 512 * 64
	// Initial writes.
	if err := s.Increment(addr, 5); err != nil {
		t.Fatal(err)
	}
	oldVal := s.Counter(addr)
	oldMAC := s.CounterBlockMAC(addr)
	// Victim writes again; counter advances and the tree path updates.
	if err := s.Increment(addr, 6); err != nil {
		t.Fatal(err)
	}
	if !s.VerifyCounter(addr) {
		t.Fatal("legitimate state must verify")
	}
	// Attacker replays the old counter and counter-block MAC.
	s.ReplayCounter(addr, oldVal, oldMAC)
	if s.VerifyCounter(addr) {
		t.Error("replayed counter passed verification — replay undetected")
	}
}

// Replaying only the counter value (without a consistent MAC) is the
// naive attack; it must also fail.
func TestCounterTamperDetected(t *testing.T) {
	s := newStore(t)
	const addr = 99 * 64
	if err := s.Increment(addr, 3); err != nil {
		t.Fatal(err)
	}
	mac := s.CounterBlockMAC(addr)
	s.ReplayCounter(addr, 2, mac) // stale value, current MAC
	if s.VerifyCounter(addr) {
		t.Error("tampered counter passed verification")
	}
}

// A replay in one subtree must not break verification of siblings.
func TestReplayIsolation(t *testing.T) {
	s := newStore(t)
	a1 := uint64(0)          // counter block 0
	a2 := uint64(130 * 64)   // counter block 1
	a3 := uint64(10000 * 64) // farther away
	for _, a := range []uint64{a1, a2, a3} {
		if err := s.Increment(a, 1); err != nil {
			t.Fatal(err)
		}
	}
	old := s.Counter(a1)
	oldMAC := s.CounterBlockMAC(a1)
	if err := s.Increment(a1, 9); err != nil {
		t.Fatal(err)
	}
	s.ReplayCounter(a1, old, oldMAC)
	if s.VerifyCounter(a1) {
		t.Error("replay undetected")
	}
	if !s.VerifyCounter(a2) || !s.VerifyCounter(a3) {
		t.Error("replay of one block broke verification of others")
	}
}

// The root must change on every writeback — that is the anti-replay
// anchor the CPU keeps on chip.
func TestRootAdvances(t *testing.T) {
	s := newStore(t)
	r0 := s.RootCounter()
	if err := s.Increment(0, 1); err != nil {
		t.Fatal(err)
	}
	if s.RootCounter() == r0 {
		t.Error("root counter did not advance on writeback")
	}
}

// Counters of distinct blocks are independent.
func TestCounterIndependence(t *testing.T) {
	s := newStore(t)
	if err := s.Increment(0, 7); err != nil {
		t.Fatal(err)
	}
	if s.Counter(64) != 0 {
		t.Error("incrementing block 0 changed block 1's counter")
	}
}

func TestTinyMemorySingleLevel(t *testing.T) {
	// 128 blocks -> 1 counter block -> tree is just the root.
	s, err := New(128*64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if s.Levels() != 1 {
		t.Fatalf("levels = %d, want 1", s.Levels())
	}
	if got := s.TreeNodeAddrs(0); len(got) != 0 {
		t.Errorf("tiny store tree path = %v, want empty", got)
	}
	if err := s.Increment(0, 1); err != nil {
		t.Fatal(err)
	}
	if !s.VerifyCounter(0) {
		t.Error("verification fails on tiny store")
	}
	old := s.Counter(0)
	oldMAC := s.CounterBlockMAC(0)
	if err := s.Increment(0, 2); err != nil {
		t.Fatal(err)
	}
	s.ReplayCounter(0, old, oldMAC)
	if s.VerifyCounter(0) {
		t.Error("replay undetected on tiny store")
	}
}

func BenchmarkIncrement(b *testing.B) {
	s, _ := New(testMem, testBlock)
	for i := 0; i < b.N; i++ {
		addr := uint64(i%(testMem/64)) * 64
		_ = s.Increment(addr, s.Counter(addr)+1)
	}
}

func BenchmarkVerifyCounter(b *testing.B) {
	s, _ := New(testMem, testBlock)
	_ = s.Increment(4096, 1)
	for i := 0; i < b.N; i++ {
		s.VerifyCounter(4096)
	}
}

// Property: any sequence of legitimate increments keeps every address
// verifiable, and a replay of any captured (counter, MAC) pair after a
// further write is always detected.
func TestQuickIncrementAndReplay(t *testing.T) {
	s := newStore(t)
	type snapshot struct {
		addr uint64
		val  uint32
		mac  uint64
	}
	var snaps []snapshot
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 300; i++ {
		addr := uint64(rng.Intn(testMem/64)) * 64
		if err := s.Increment(addr, s.Counter(addr)+1+uint32(rng.Intn(3))); err != nil {
			t.Fatal(err)
		}
		if !s.VerifyCounter(addr) {
			t.Fatalf("step %d: legitimate state fails verification", i)
		}
		if rng.Intn(4) == 0 {
			snaps = append(snaps, snapshot{addr, s.Counter(addr), s.CounterBlockMAC(addr)})
		}
	}
	// Advance every snapshotted address at least once more, then replay.
	for _, sn := range snaps {
		if err := s.Increment(sn.addr, s.Counter(sn.addr)+1); err != nil {
			t.Fatal(err)
		}
	}
	for i, sn := range snaps {
		s.ReplayCounter(sn.addr, sn.val, sn.mac)
		if s.VerifyCounter(sn.addr) {
			t.Fatalf("replay %d at %#x undetected", i, sn.addr)
		}
		// Repair by a legitimate write (fresh increment re-MACs the path).
		if err := s.Increment(sn.addr, s.Counter(sn.addr)+100); err != nil {
			t.Fatal(err)
		}
		if !s.VerifyCounter(sn.addr) {
			t.Fatalf("replay %d: repair failed", i)
		}
	}
}

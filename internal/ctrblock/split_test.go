package ctrblock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The layout must fit exactly: 8B major + 48B minors + 8B MAC = 64B.
func TestSplitLayoutBudget(t *testing.T) {
	if MinorsPerBlock*MinorBits != 384 {
		t.Fatalf("minor field = %d bits, want 384 (48 bytes)", MinorsPerBlock*MinorBits)
	}
	if 8+48+8 != 64 {
		t.Fatal("layout arithmetic broken")
	}
}

func TestSplitEncodeDecodeRoundTrip(t *testing.T) {
	f := func(major uint64, mac uint64, seed int64) bool {
		var s SplitBlock
		s.Major = major
		s.MAC = mac
		rng := rand.New(rand.NewSource(seed))
		for i := range s.Minors {
			s.Minors[i] = uint8(rng.Intn(MinorMax + 1))
		}
		return DecodeSplit(s.Encode()) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Every minor must land in distinct bits: flipping one minor changes
// the encoding, and no other minor's decode.
func TestSplitMinorIsolation(t *testing.T) {
	var s SplitBlock
	for i := 0; i < MinorsPerBlock; i++ {
		mod := s
		mod.Minors[i] = MinorMax
		dec := DecodeSplit(mod.Encode())
		if dec.Minors[i] != MinorMax {
			t.Fatalf("minor %d lost its value", i)
		}
		for j := range dec.Minors {
			if j != i && dec.Minors[j] != 0 {
				t.Fatalf("minor %d leaked into minor %d", i, j)
			}
		}
		if dec.Major != 0 || dec.MAC != 0 {
			t.Fatalf("minor %d leaked into major/MAC", i)
		}
	}
}

func TestSplitIncrement(t *testing.T) {
	var s SplitBlock
	// Seven increments stay within the minor.
	for k := 1; k <= MinorMax; k++ {
		re, err := s.Increment(5)
		if err != nil || re {
			t.Fatalf("increment %d: re=%v err=%v", k, re, err)
		}
		if s.Full(5) != uint64(k) {
			t.Fatalf("full counter = %d, want %d", s.Full(5), k)
		}
	}
	// The eighth overflows: major bump, all minors reset, re-encrypt.
	before0 := s.Full(0)
	re, err := s.Increment(5)
	if err != nil || !re {
		t.Fatalf("overflow: re=%v err=%v", re, err)
	}
	if s.Major != 1 {
		t.Errorf("major = %d, want 1", s.Major)
	}
	if s.Minors[5] != 0 {
		t.Errorf("minor not reset")
	}
	// Monotonicity must hold for the incremented block AND for every
	// untouched sibling (they are re-encrypted with larger counters).
	if s.Full(5) <= uint64(MinorMax) {
		t.Errorf("full counter did not advance across overflow: %d", s.Full(5))
	}
	if s.Full(0) <= before0 {
		t.Errorf("sibling counter went backwards: %d -> %d", before0, s.Full(0))
	}
}

func TestSplitIncrementBounds(t *testing.T) {
	var s SplitBlock
	if _, err := s.Increment(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := s.Increment(MinorsPerBlock); err == nil {
		t.Error("out-of-range index accepted")
	}
}

// Counters never repeat a (full value) for the same block across any
// increment sequence — the nonce property at the physical layer.
func TestSplitNonceProperty(t *testing.T) {
	var s SplitBlock
	rng := rand.New(rand.NewSource(60))
	seen := map[int]map[uint64]bool{}
	for i := 0; i < MinorsPerBlock; i++ {
		seen[i] = map[uint64]bool{s.Full(i): true}
	}
	for step := 0; step < 5000; step++ {
		i := rng.Intn(MinorsPerBlock)
		re, err := s.Increment(i)
		if err != nil {
			t.Fatal(err)
		}
		if re {
			// All blocks re-encrypted with new values; record them.
			for j := 0; j < MinorsPerBlock; j++ {
				if seen[j][s.Full(j)] {
					t.Fatalf("step %d: block %d reused counter %d after overflow", step, j, s.Full(j))
				}
				seen[j][s.Full(j)] = true
			}
			continue
		}
		if seen[i][s.Full(i)] {
			t.Fatalf("step %d: block %d reused counter %d", step, i, s.Full(i))
		}
		seen[i][s.Full(i)] = true
	}
}

// Overflow frequency: uniform writes across a block's 128 counters
// overflow roughly once per 128*(7+1)/2-ish writes — rare, which is
// what makes split counters cheap. Just sanity-check the order.
func TestSplitOverflowRarity(t *testing.T) {
	var s SplitBlock
	rng := rand.New(rand.NewSource(61))
	writes, overflows := 0, 0
	for writes < 100000 {
		re, _ := s.Increment(rng.Intn(MinorsPerBlock))
		writes++
		if re {
			overflows++
		}
	}
	rate := float64(overflows) / float64(writes)
	// With 3-bit minors and uniform traffic the overflow rate is
	// bounded well below 1 per 128 writes.
	if rate > 1.0/128 {
		t.Errorf("overflow rate %.5f too high", rate)
	}
	if overflows == 0 {
		t.Error("no overflows in 100k writes — increment logic suspicious")
	}
}

func TestSplitOverheadFraction(t *testing.T) {
	if got := SplitOverheadFraction(); got != 1.0/128 {
		t.Errorf("overhead = %v, want 1/128", got)
	}
}

func BenchmarkSplitEncode(b *testing.B) {
	var s SplitBlock
	for i := range s.Minors {
		s.Minors[i] = uint8(i % 8)
	}
	for i := 0; i < b.N; i++ {
		s.Encode()
	}
}

func BenchmarkSplitDecode(b *testing.B) {
	var s SplitBlock
	raw := s.Encode()
	for i := 0; i < b.N; i++ {
		DecodeSplit(raw)
	}
}

// Package ctrblock implements the counter storage of counter-mode
// memory encryption: split-counter blocks (one 64-byte block of
// counters serving 128 data blocks) and the integrity tree of counters
// that protects them against replay (paper §II-B, §IV-B).
//
// The package is both functional and address-accurate:
//
//   - Functionally, it stores every data block's write counter,
//     maintains per-node MACs through the tree, verifies counters
//     against replay, and detects counter-block replay — the attack of
//     Fig. 10 that forces Counter-light to keep tree updates on the
//     writeback path.
//
//   - For the performance model, it maps data-block addresses to
//     counter-block addresses and integrity-tree-node addresses in a
//     reserved region of physical memory, so the cache and DRAM models
//     see the same overhead traffic the paper measures (the ~1.6%
//     split-counter storage overhead, §IV-D).
//
// Tree layout: level 0 holds the counter blocks (128 data counters
// each). Each level-l node (l ≥ 1) holds one counter entry per child
// of level l-1, and a MAC binding its entries to its own protecting
// entry one level up. The single top-level node and the root counter
// live on chip, where they cannot be replayed; every entry on a path
// increments on a writeback, so replaying any {node, MAC} pair in DRAM
// is detected against the fresher parent entry.
package ctrblock

import (
	"encoding/binary"
	"fmt"

	"counterlight/internal/crypto/keccak"
)

// CountersPerBlock is how many data-block counters share one 64-byte
// counter block under the split-counter layout (paper §IV-B: "each
// counter block under Split Counters serves 128 data blocks").
const CountersPerBlock = 128

// TreeArity is the fan-in of the integrity tree (8-ary, following
// SGX1's tree over counter blocks).
const TreeArity = 8

// CounterMax is the maximum allowed counter value when the
// EncryptionMetadata is 4 bytes: 2^32 - 2. The next value, 2^32 - 1,
// is the counterless flag (paper §IV-C).
const CounterMax = 1<<32 - 2

// CounterlessFlag is the EncryptionMetadata value marking a block as
// counterless-encrypted.
const CounterlessFlag = 1<<32 - 1

// Store holds all counters and the integrity tree for one memory
// channel's data region.
type Store struct {
	blockSize  uint64
	dataBlocks uint64            // number of data blocks protected
	counters   map[uint64]uint32 // data block index -> write counter (absent = 0)

	// entries[l][j], l >= 1, is the counter protecting child j of
	// level l-1 (j indexes counter blocks when l == 1).
	entries []map[uint64]uint32
	// macs[0][cb] is the counter block MAC; macs[l][n] (l >= 1) is the
	// MAC of tree node (l, n).
	macs []map[uint64]uint64

	levelBlocks []uint64 // node count per level (level 0 = counter blocks)
	levelBase   []uint64 // base address of each metadata level in DRAM
	rootCounter uint32   // on-chip root; cannot be replayed
	macKey      []byte
	metaBytes   uint64 // total metadata footprint in bytes

	// Reusable scratch for the MAC walks. VerifyCounter + Increment run
	// on every counter-mode writeback (6-7 nodeMAC computations each),
	// so the gather/serialize buffers live on the Store instead of
	// being allocated per call. Uses never overlap: each nodeMAC call
	// fully consumes its gathered counters before the next gather.
	macBuf    [16 + 4*CountersPerBlock]byte
	cbScratch [CountersPerBlock]uint32
	neScratch [TreeArity]uint32
}

// zeroCounters backs storedMAC's never-written-node recomputation; it
// is read-only (all zeros) and shared by every Store.
var zeroCounters [CountersPerBlock]uint32

// New creates a counter store for a data region of memSize bytes with
// the given block size (normally 64).
func New(memSize, blockSize uint64) (*Store, error) {
	if blockSize == 0 || memSize == 0 || memSize%blockSize != 0 {
		return nil, fmt.Errorf("ctrblock: invalid geometry mem=%d block=%d", memSize, blockSize)
	}
	s := &Store{
		blockSize:  blockSize,
		dataBlocks: memSize / blockSize,
		counters:   make(map[uint64]uint32),
		macKey:     []byte("ctrblock-integrity-key"),
	}
	n := (s.dataBlocks + CountersPerBlock - 1) / CountersPerBlock
	base := memSize // metadata region starts right after data
	for {
		s.levelBlocks = append(s.levelBlocks, n)
		s.levelBase = append(s.levelBase, base)
		s.entries = append(s.entries, make(map[uint64]uint32)) // entries[0] unused
		s.macs = append(s.macs, make(map[uint64]uint64))
		base += n * blockSize
		if n == 1 {
			break
		}
		n = (n + TreeArity - 1) / TreeArity
	}
	s.metaBytes = base - memSize
	return s, nil
}

// Levels returns the number of metadata levels including the counter
// blocks (level 0) and all tree levels.
func (s *Store) Levels() int { return len(s.levelBlocks) }

// OverheadBytes returns the metadata storage footprint in bytes.
func (s *Store) OverheadBytes() uint64 { return s.metaBytes }

// blockIndex converts a data byte address to a data block index.
func (s *Store) blockIndex(addr uint64) uint64 { return addr / s.blockSize }

// Counter returns the current write counter of the data block at addr.
func (s *Store) Counter(addr uint64) uint32 { return s.counters[s.blockIndex(addr)] }

// CounterBlockAddr maps a data address to the address of the counter
// block holding its counter; this is the address the counter cache and
// DRAM model operate on.
func (s *Store) CounterBlockAddr(addr uint64) uint64 {
	return s.levelBase[0] + s.blockIndex(addr)/CountersPerBlock*s.blockSize
}

// TreeNodeAddrs returns the DRAM addresses of the integrity-tree nodes
// protecting the given data address, bottom-up. The top-level node
// (and the root counter) live on chip and are excluded. A writeback
// walks all of them; a counter-cache hit cuts the walk short.
func (s *Store) TreeNodeAddrs(addr uint64) []uint64 {
	idx := s.blockIndex(addr) / CountersPerBlock
	var out []uint64
	for level := 1; level < len(s.levelBlocks)-1; level++ {
		idx /= TreeArity
		out = append(out, s.levelBase[level]+idx*s.blockSize)
	}
	return out
}

// protectingEntry returns the counter protecting child j of level
// l-1 — entries[l][j], or the on-chip root when level l is above the
// top node level.
func (s *Store) protectingEntry(l int, j uint64) uint32 {
	if l >= len(s.levelBlocks) {
		return s.rootCounter
	}
	return s.entries[l][j]
}

// nodeMAC computes the MAC binding a node's counters to its level,
// index, and protecting entry one level up.
func (s *Store) nodeMAC(level int, idx uint64, counters []uint32, parentCtr uint32) uint64 {
	buf := s.macBuf[:16+4*len(counters)]
	binary.LittleEndian.PutUint32(buf[0:], uint32(level))
	binary.LittleEndian.PutUint64(buf[4:], idx)
	binary.LittleEndian.PutUint32(buf[12:], parentCtr)
	for i, c := range counters {
		binary.LittleEndian.PutUint32(buf[16+4*i:], c)
	}
	return keccak.MAC64(s.macKey, buf)
}

// counterBlockCounters gathers the 128 data counters in counter block
// cbIdx into the Store's scratch; the returned slice is valid until
// the next gather.
func (s *Store) counterBlockCounters(cbIdx uint64) []uint32 {
	out := s.cbScratch[:]
	base := cbIdx * CountersPerBlock
	for i := range out {
		out[i] = s.counters[base+uint64(i)]
	}
	return out
}

// nodeEntries gathers the TreeArity entries of tree node (level, idx)
// into the Store's scratch; the returned slice is valid until the
// next gather.
func (s *Store) nodeEntries(level int, idx uint64) []uint32 {
	out := s.neScratch[:]
	for i := range out {
		out[i] = s.entries[level][idx*TreeArity+uint64(i)]
	}
	return out
}

// storedMAC returns the stored MAC for node (level, idx); nodes never
// written still carry the MAC of their initial all-zero state.
func (s *Store) storedMAC(level int, idx uint64) uint64 {
	if m, ok := s.macs[level][idx]; ok {
		return m
	}
	zeros := zeroCounters[:TreeArity]
	if level == 0 {
		zeros = zeroCounters[:]
	}
	// Initial protecting entries are zero as well.
	return s.nodeMAC(level, idx, zeros, 0)
}

// VerifyCounter walks the tree from the counter block covering addr to
// the on-chip root, recomputing every MAC against the stored one
// (paper §II-B). It reports false on tampering or replay.
func (s *Store) VerifyCounter(addr uint64) bool {
	cbIdx := s.blockIndex(addr) / CountersPerBlock
	want := s.nodeMAC(0, cbIdx, s.counterBlockCounters(cbIdx), s.protectingEntry(1, cbIdx))
	if s.storedMAC(0, cbIdx) != want {
		return false
	}
	idx := cbIdx
	for level := 1; level < len(s.levelBlocks); level++ {
		idx /= TreeArity
		want := s.nodeMAC(level, idx, s.nodeEntries(level, idx), s.protectingEntry(level+1, idx))
		if s.storedMAC(level, idx) != want {
			return false
		}
	}
	return true
}

// Increment advances the data block's counter to newVal (which must
// exceed the current value and not exceed CounterMax), increments the
// protecting entries along the tree path including the on-chip root,
// and refreshes the affected MACs. This is the full writeback-path
// work whose traffic the paper's epoch switch avoids under high
// bandwidth utilization.
func (s *Store) Increment(addr uint64, newVal uint32) error {
	bi := s.blockIndex(addr)
	old := s.counters[bi]
	if newVal <= old {
		return fmt.Errorf("ctrblock: counter must increase (old=%d new=%d)", old, newVal)
	}
	if uint64(newVal) > CounterMax {
		return fmt.Errorf("ctrblock: counter %d exceeds max %d", newVal, uint64(CounterMax))
	}
	s.counters[bi] = newVal
	// Bump the protecting entry of every node on the path; the final
	// bump is the on-chip root.
	idx := bi / CountersPerBlock
	for level := 1; level < len(s.levelBlocks); level++ {
		s.entries[level][idx]++
		idx /= TreeArity
	}
	s.rootCounter++
	s.refreshPathMACs(bi / CountersPerBlock)
	return nil
}

// refreshPathMACs recomputes the MACs of the counter block and every
// tree node on its path after their contents changed.
func (s *Store) refreshPathMACs(cbIdx uint64) {
	s.macs[0][cbIdx] = s.nodeMAC(0, cbIdx, s.counterBlockCounters(cbIdx), s.protectingEntry(1, cbIdx))
	idx := cbIdx
	for level := 1; level < len(s.levelBlocks); level++ {
		idx /= TreeArity
		s.macs[level][idx] = s.nodeMAC(level, idx, s.nodeEntries(level, idx), s.protectingEntry(level+1, idx))
	}
}

// ForceCounter sets the data block's counter to exactly val and
// refreshes the tree path so VerifyCounter passes afterwards. Unlike
// Increment it accepts any value, including the current one: it is
// the NVM recovery hook, replaying a journaled counter onto a fresh
// store where the tree's absolute entry values are not recoverable
// (only per-path consistency matters — the on-chip root was lost with
// power anyway). Never use it on the writeback path.
func (s *Store) ForceCounter(addr uint64, val uint32) {
	bi := s.blockIndex(addr)
	s.counters[bi] = val
	// Bump the path entries exactly like Increment so replayed state
	// keeps the parents-fresher-than-children shape.
	idx := bi / CountersPerBlock
	for level := 1; level < len(s.levelBlocks); level++ {
		s.entries[level][idx]++
		idx /= TreeArity
	}
	s.rootCounter++
	s.refreshPathMACs(bi / CountersPerBlock)
}

// ReplayCounter models a physical replay attack: it reverts the data
// block's counter and the counter block's MAC to earlier captured
// values without touching the tree. VerifyCounter must subsequently
// fail; the security tests reproduce Fig. 10's attack with it.
func (s *Store) ReplayCounter(addr uint64, oldVal uint32, oldMAC uint64) {
	bi := s.blockIndex(addr)
	s.counters[bi] = oldVal
	s.macs[0][bi/CountersPerBlock] = oldMAC
}

// CounterBlockMAC exposes the stored MAC of the counter block covering
// addr (what an attacker with a bus probe captures for a replay).
func (s *Store) CounterBlockMAC(addr uint64) uint64 {
	return s.storedMAC(0, s.blockIndex(addr)/CountersPerBlock)
}

// RootCounter exposes the on-chip root value (diagnostics/tests).
func (s *Store) RootCounter() uint32 { return s.rootCounter }

package core

import (
	"math/rand"
	"strings"
	"testing"

	"counterlight/internal/cipher"
	"counterlight/internal/ctrblock"
	"counterlight/internal/ecc"
	"counterlight/internal/epoch"
)

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine(DefaultEngineOptions())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func randBlock(rng *rand.Rand) cipher.Block {
	var b cipher.Block
	rng.Read(b[:])
	return b
}

func TestNewEngineErrors(t *testing.T) {
	opts := DefaultEngineOptions()
	opts.AESKeyBytes = 7
	if _, err := NewEngine(opts); err == nil {
		t.Error("want error for bad key size")
	}
	opts = DefaultEngineOptions()
	opts.MemSize = 100
	if _, err := NewEngine(opts); err == nil {
		t.Error("want error for unaligned memory size")
	}
}

func TestAddressValidation(t *testing.T) {
	e := newEngine(t)
	if err := e.Write(3, cipher.Block{}, epoch.CounterMode); err == nil {
		t.Error("unaligned write accepted")
	}
	if err := e.Write(1<<40, cipher.Block{}, epoch.CounterMode); err == nil {
		t.Error("out-of-range write accepted")
	}
	if _, _, err := e.Read(64); err == nil {
		t.Error("read of unwritten block succeeded")
	}
}

func TestRoundTripBothModes(t *testing.T) {
	e := newEngine(t)
	rng := rand.New(rand.NewSource(90))
	for i := 0; i < 50; i++ {
		addr := uint64(rng.Intn(1<<14)) * 64
		plain := randBlock(rng)
		mode := epoch.CounterMode
		if i%2 == 1 {
			mode = epoch.Counterless
		}
		if err := e.Write(addr, plain, mode); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		got, info, err := e.Read(addr)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got != plain {
			t.Fatalf("round trip %d failed (mode %v)", i, mode)
		}
		if info.Mode != mode {
			t.Errorf("read %d: mode = %v, want %v", i, info.Mode, mode)
		}
		if info.Corrected {
			t.Errorf("read %d: spurious correction", i)
		}
	}
}

// Counter-mode blocks must carry their counter in the ECC metadata,
// matching the counter store (the property that eliminates the counter
// fetch on reads).
func TestMetadataMatchesCounterStore(t *testing.T) {
	e := newEngine(t)
	var plain cipher.Block
	const addr = 4096
	for i := 0; i < 5; i++ {
		if err := e.Write(addr, plain, epoch.CounterMode); err != nil {
			t.Fatal(err)
		}
		cw, _ := e.Snapshot(addr)
		if got, want := cw.DecodeMeta(), uint64(e.Counters().Counter(addr)); got != want {
			t.Fatalf("write %d: ECC meta %d != counter store %d", i, got, want)
		}
	}
}

// Counters must strictly increase across writes (nonce rule).
func TestCountersAdvance(t *testing.T) {
	e := newEngine(t)
	var plain cipher.Block
	last := uint32(0)
	for i := 0; i < 10; i++ {
		if err := e.Write(128, plain, epoch.CounterMode); err != nil {
			t.Fatal(err)
		}
		c := e.Counters().Counter(128)
		if c <= last {
			t.Fatalf("counter did not advance: %d -> %d", last, c)
		}
		last = c
	}
}

// Mode switching per block: counter -> counterless -> counter.
func TestModeSwitching(t *testing.T) {
	e := newEngine(t)
	rng := rand.New(rand.NewSource(91))
	const addr = 64 * 77
	for _, mode := range []epoch.Mode{epoch.CounterMode, epoch.Counterless, epoch.CounterMode} {
		plain := randBlock(rng)
		if err := e.Write(addr, plain, mode); err != nil {
			t.Fatal(err)
		}
		got, info, err := e.Read(addr)
		if err != nil || got != plain || info.Mode != mode {
			t.Fatalf("mode %v: err=%v match=%v gotMode=%v", mode, err, got == plain, info.Mode)
		}
	}
}

// The counterless flag must be the all-ones metadata.
func TestCounterlessFlagEncoding(t *testing.T) {
	e := newEngine(t)
	if err := e.Write(0, cipher.Block{}, epoch.Counterless); err != nil {
		t.Fatal(err)
	}
	cw, _ := e.Snapshot(0)
	if cw.DecodeMeta() != ctrblock.CounterlessFlag {
		t.Errorf("counterless meta = %#x, want %#x", cw.DecodeMeta(), uint64(ctrblock.CounterlessFlag))
	}
}

// Memoization: reads of counter-mode blocks written recently must hit
// the table (the write value W is memoized).
func TestMemoizationHitOnRead(t *testing.T) {
	e := newEngine(t)
	var plain cipher.Block
	if err := e.Write(256, plain, epoch.CounterMode); err != nil {
		t.Fatal(err)
	}
	_, info, err := e.Read(256)
	if err != nil {
		t.Fatal(err)
	}
	if !info.MemoHit {
		t.Error("read after write missed the memoization table")
	}
	if e.Stats().MemoHits == 0 {
		t.Error("memo hit not counted")
	}
}

// Single-chip faults in every position must be corrected in both modes.
func TestFaultCorrectionAllChips(t *testing.T) {
	e := newEngine(t)
	rng := rand.New(rand.NewSource(92))
	for _, mode := range []epoch.Mode{epoch.CounterMode, epoch.Counterless} {
		for chip := 0; chip < ecc.TotalChips; chip++ {
			addr := uint64(chip+1) * 640
			plain := randBlock(rng)
			if err := e.Write(addr, plain, mode); err != nil {
				t.Fatal(err)
			}
			if err := e.InjectFault(addr, chip, 0xBAD0+uint64(chip)); err != nil {
				t.Fatal(err)
			}
			got, info, err := e.Read(addr)
			if err != nil {
				t.Fatalf("mode %v chip %d: %v", mode, chip, err)
			}
			if got != plain {
				t.Fatalf("mode %v chip %d: wrong data after correction", mode, chip)
			}
			if !info.Corrected || info.BadChip != chip {
				t.Errorf("mode %v chip %d: info = %+v", mode, chip, info)
			}
		}
	}
	if e.Stats().Corrections == 0 || e.Stats().MACFailures == 0 {
		t.Error("correction stats not recorded")
	}
}

// Two-chip faults must come back as detected uncorrectable errors.
func TestDoubleFaultIsDUE(t *testing.T) {
	e := newEngine(t)
	rng := rand.New(rand.NewSource(93))
	plain := randBlock(rng)
	if err := e.Write(0, plain, epoch.CounterMode); err != nil {
		t.Fatal(err)
	}
	e.InjectFault(0, 1, rng.Uint64()|1)
	e.InjectFault(0, 5, rng.Uint64()|1)
	_, _, err := e.Read(0)
	if err == nil {
		t.Fatal("two-chip fault read succeeded")
	}
	if !strings.Contains(err.Error(), "uncorrectable") {
		t.Errorf("error = %v, want DUE", err)
	}
	if e.Stats().DUEs != 1 {
		t.Errorf("DUE count = %d, want 1", e.Stats().DUEs)
	}
}

func TestInjectFaultErrors(t *testing.T) {
	e := newEngine(t)
	if err := e.InjectFault(0, 0, 1); err == nil {
		t.Error("fault into unwritten block accepted")
	}
	e.Write(0, cipher.Block{}, epoch.CounterMode)
	if err := e.InjectFault(0, 17, 1); err == nil {
		t.Error("invalid chip accepted")
	}
}

// Fig. 10's counter replay before a writeback must be caught by the
// integrity tree on the write path.
func TestCounterReplayDetectedOnWrite(t *testing.T) {
	e := newEngine(t)
	var plain cipher.Block
	const addr = 64 * 1000
	if err := e.Write(addr, plain, epoch.CounterMode); err != nil {
		t.Fatal(err)
	}
	oldVal := e.Counters().Counter(addr)
	oldMAC := e.Counters().CounterBlockMAC(addr)
	if err := e.Write(addr, plain, epoch.CounterMode); err != nil {
		t.Fatal(err)
	}
	// Attacker replays the counter block to its pre-write state.
	e.Counters().ReplayCounter(addr, oldVal, oldMAC)
	err := e.Write(addr, plain, epoch.CounterMode)
	if err == nil {
		t.Fatal("write proceeded over a replayed counter")
	}
	if !strings.Contains(err.Error(), "replay") {
		t.Errorf("error = %v, want replay detection", err)
	}
}

// Whole-block replay is NOT detected — matching counterless security
// (§IV-F: "an attacker can always replay the whole data block").
func TestWholeBlockReplayUndetected(t *testing.T) {
	e := newEngine(t)
	rng := rand.New(rand.NewSource(94))
	const addr = 64 * 2000
	oldPlain := randBlock(rng)
	if err := e.Write(addr, oldPlain, epoch.Counterless); err != nil {
		t.Fatal(err)
	}
	snap, _ := e.Snapshot(addr)
	newPlain := randBlock(rng)
	if err := e.Write(addr, newPlain, epoch.Counterless); err != nil {
		t.Fatal(err)
	}
	e.Restore(addr, snap)
	got, _, err := e.Read(addr)
	if err != nil {
		t.Fatalf("replayed block read failed: %v", err)
	}
	if got != oldPlain {
		t.Error("replayed block did not decrypt to the old plaintext")
	}
}

// Tampering with a single chip is indistinguishable from a chip fault:
// chipkill silently heals it. Tampering with two chips is detected.
func TestTamperDetection(t *testing.T) {
	e := newEngine(t)
	rng := rand.New(rand.NewSource(95))
	plain := randBlock(rng)
	if err := e.Write(64, plain, epoch.Counterless); err != nil {
		t.Fatal(err)
	}
	e.InjectFault(64, 3, 0xFFFF)
	e.InjectFault(64, 8, 0xFFFF)
	if _, _, err := e.Read(64); err == nil {
		t.Error("multi-chip tamper went undetected")
	}
}

// ForceCounterless (faulty-rank fallback, §IV-E) pins future writes to
// counterless mode.
func TestForceCounterless(t *testing.T) {
	e := newEngine(t)
	e.ForceCounterless(128)
	if err := e.Write(128, cipher.Block{}, epoch.CounterMode); err != nil {
		t.Fatal(err)
	}
	_, info, err := e.Read(128)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode != epoch.Counterless {
		t.Errorf("forced block served in %v", info.Mode)
	}
	if e.Stats().CounterModeWrites != 0 {
		t.Error("counter-mode write recorded for a forced-counterless block")
	}
}

// A parity-chip fault on a counter-mode block exercises the
// counter-hypothesis path: the decoded metadata is garbage and the
// counter store supplies the right value.
func TestParityFaultRecoversViaCounterHypothesis(t *testing.T) {
	e := newEngine(t)
	rng := rand.New(rand.NewSource(96))
	plain := randBlock(rng)
	if err := e.Write(192, plain, epoch.CounterMode); err != nil {
		t.Fatal(err)
	}
	e.InjectFault(192, ecc.ParityChip, 0x123456789)
	got, info, err := e.Read(192)
	if err != nil {
		t.Fatal(err)
	}
	if got != plain || !info.Corrected || info.BadChip != ecc.ParityChip {
		t.Errorf("parity recovery: match=%v info=%+v", got == plain, info)
	}
	if info.Mode != epoch.CounterMode {
		t.Errorf("recovered mode = %v", info.Mode)
	}
}

// Statistics must add up across a mixed run.
func TestStatsAccounting(t *testing.T) {
	e := newEngine(t)
	rng := rand.New(rand.NewSource(97))
	for i := 0; i < 20; i++ {
		addr := uint64(i) * 64
		mode := epoch.CounterMode
		if i%4 == 0 {
			mode = epoch.Counterless
		}
		e.Write(addr, randBlock(rng), mode)
		e.Read(addr)
	}
	s := e.Stats()
	if s.Writes != 20 || s.Reads != 20 {
		t.Errorf("reads/writes = %d/%d", s.Reads, s.Writes)
	}
	if s.CounterModeWrites+s.CounterlessWrites != s.Writes {
		t.Error("mode write counts do not sum to total")
	}
	if s.CounterlessWrites != 5 {
		t.Errorf("counterless writes = %d, want 5", s.CounterlessWrites)
	}
}

package core

import (
	"testing"

	"counterlight/internal/trace"
)

// scripted is a trace.Stream fed from a fixed op list (repeats the
// last op forever so the simulator can fill its window).
type scripted struct {
	ops []trace.Op
	i   int
}

func (s *scripted) Next(_ int64) trace.Op {
	op := s.ops[s.i]
	if s.i < len(s.ops)-1 {
		s.i++
	}
	return op
}

func scriptedWorkload(ops []trace.Op) trace.Workload {
	return trace.Workload{
		Name: "scripted",
		NewStreams: func(seed int64, cores int) []trace.Stream {
			out := make([]trace.Stream, cores)
			for c := range out {
				cp := make([]trace.Op, len(ops))
				copy(cp, ops)
				out[c] = &scripted{ops: cp}
			}
			return out
		},
	}
}

func oneCore(scheme Scheme) Config {
	cfg := fastCfg(scheme)
	cfg.Cores = 1
	cfg.PrefetchEnabled = false
	cfg.WarmupTime = 10 * us
	cfg.WindowTime = 50 * us
	return cfg
}

// Dependent loads serialize: a chain of dependent misses to distinct
// blocks retires at most one per (miss latency), so the instruction
// count is bounded by window / missLatency.
func TestDependentChainSerializes(t *testing.T) {
	var ops []trace.Op
	for i := 0; i < 4096; i++ {
		ops = append(ops, trace.Op{
			Addr:      uint64(i) * 64 * 997 % (1 << 28), // scattered blocks
			Dependent: true,
			Instr:     1,
			PC:        1,
		})
	}
	cfg := oneCore(NoEnc)
	dep, err := Run(cfg, scriptedWorkload(ops))
	if err != nil {
		t.Fatal(err)
	}
	// The same ops, independent: MLP overlaps them.
	for i := range ops {
		ops[i].Dependent = false
	}
	indep, err := Run(cfg, scriptedWorkload(ops))
	if err != nil {
		t.Fatal(err)
	}
	if float64(indep.Instructions) < 2.5*float64(dep.Instructions) {
		t.Errorf("MLP speedup only %.2fx (dep=%d indep=%d)",
			float64(indep.Instructions)/float64(dep.Instructions),
			dep.Instructions, indep.Instructions)
	}
}

// The MLP window caps overlap: with MLP=1, independent loads serialize
// like dependent ones.
func TestMLPWindowCapsOverlap(t *testing.T) {
	var ops []trace.Op
	for i := 0; i < 4096; i++ {
		ops = append(ops, trace.Op{
			Addr:  uint64(i) * 64 * 997 % (1 << 28),
			Instr: 1,
			PC:    1,
		})
	}
	cfg := oneCore(NoEnc)
	cfg.MLP = 8
	wide, err := Run(cfg, scriptedWorkload(ops))
	if err != nil {
		t.Fatal(err)
	}
	cfg.MLP = 1
	narrow, err := Run(cfg, scriptedWorkload(ops))
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Instructions >= wide.Instructions {
		t.Errorf("MLP=1 (%d instr) not slower than MLP=8 (%d)", narrow.Instructions, wide.Instructions)
	}
}

// Cache-resident accesses never touch DRAM after warmup.
func TestResidentWorkingSetNoMisses(t *testing.T) {
	var ops []trace.Op
	for i := 0; i < 64; i++ { // 4 KB working set: L1-resident
		ops = append(ops, trace.Op{Addr: uint64(i) * 64, Instr: 1, PC: 1})
	}
	cfg := oneCore(NoEnc)
	r, err := Run(cfg, scriptedWorkload(ops))
	if err != nil {
		t.Fatal(err)
	}
	if r.LLCMisses != 0 {
		t.Errorf("resident working set produced %d LLC misses", r.LLCMisses)
	}
	if r.DRAM.Reads != 0 {
		t.Errorf("resident working set read DRAM %d times", r.DRAM.Reads)
	}
}

// Think time slows the instruction rate proportionally for a
// compute-bound script.
func TestThinkTimeScales(t *testing.T) {
	mk := func(think int64) trace.Workload {
		return scriptedWorkload([]trace.Op{{Addr: 0, Think: think, Instr: 1, PC: 1}})
	}
	cfg := oneCore(NoEnc)
	fast, err := Run(cfg, mk(1000))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(cfg, mk(4000))
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(fast.Instructions) / float64(slow.Instructions)
	if ratio < 2.0 || ratio > 4.5 {
		t.Errorf("4x think time changed throughput by %.2fx, want ~3-4x", ratio)
	}
}

// Writes are posted: a write-heavy script's core throughput is not
// gated by DRAM write completion (compare against making every write a
// dependent read of the same addresses).
func TestWritesArePosted(t *testing.T) {
	var writes, reads []trace.Op
	for i := 0; i < 4096; i++ {
		addr := uint64(i) * 64 * 997 % (1 << 28)
		writes = append(writes, trace.Op{Addr: addr, Write: true, Instr: 1, PC: 1})
		reads = append(reads, trace.Op{Addr: addr, Dependent: true, Instr: 1, PC: 1})
	}
	cfg := oneCore(NoEnc)
	w, err := Run(cfg, scriptedWorkload(writes))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(cfg, scriptedWorkload(reads))
	if err != nil {
		t.Fatal(err)
	}
	if w.Instructions <= r.Instructions {
		t.Errorf("posted writes (%d) not faster than dependent reads (%d)",
			w.Instructions, r.Instructions)
	}
}

// Under CounterLight, a block written in a counterless epoch reads
// back with the counterless (AES-after-data) latency; the same script
// in a quiet system keeps counter-mode latency. Verified through the
// blockMeta bookkeeping end to end via miss latency.
func TestCounterLightModeLatencyVisible(t *testing.T) {
	// Read-only script over a large region: all blocks stay at
	// counter 0 (counter mode, memo hit) -> near-zero decrypt latency.
	var ops []trace.Op
	for i := 0; i < 8192; i++ {
		ops = append(ops, trace.Op{Addr: uint64(i) * 64 * 991 % (1 << 28), Instr: 1, PC: 1})
	}
	cl := oneCore(CounterLight)
	rCL, err := Run(cl, scriptedWorkload(ops))
	if err != nil {
		t.Fatal(err)
	}
	cls := oneCore(Counterless)
	rCLS, err := Run(cls, scriptedWorkload(ops))
	if err != nil {
		t.Fatal(err)
	}
	delta := rCLS.AvgMissLatNS - rCL.AvgMissLatNS
	if delta < 5 {
		t.Errorf("counter-light read-path advantage = %.1f ns, want ~AES latency", delta)
	}
}

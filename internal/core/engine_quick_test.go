package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"counterlight/internal/cipher"
	"counterlight/internal/epoch"
)

// Property: under arbitrary interleavings of writes (random data,
// random mode) and reads across a set of addresses, a read always
// returns the most recently written data for that address, with the
// mode the write used.
func TestQuickReadAfterWrite(t *testing.T) {
	e, err := NewEngine(DefaultEngineOptions())
	if err != nil {
		t.Fatal(err)
	}
	shadow := map[uint64]cipher.Block{}
	modes := map[uint64]epoch.Mode{}
	rng := rand.New(rand.NewSource(2024))
	f := func(addrSeed uint16, data cipher.Block, useCounterless bool) bool {
		addr := uint64(addrSeed) * 64 % (1 << 20)
		mode := epoch.CounterMode
		if useCounterless {
			mode = epoch.Counterless
		}
		if err := e.Write(addr, data, mode); err != nil {
			t.Logf("write failed: %v", err)
			return false
		}
		shadow[addr] = data
		modes[addr] = mode
		// Read back a random previously written address.
		keys := make([]uint64, 0, len(shadow))
		for k := range shadow {
			keys = append(keys, k)
		}
		probe := keys[rng.Intn(len(keys))]
		got, info, err := e.Read(probe)
		if err != nil {
			t.Logf("read failed: %v", err)
			return false
		}
		if got != shadow[probe] {
			t.Logf("data mismatch at %#x", probe)
			return false
		}
		if info.Mode != modes[probe] {
			t.Logf("mode mismatch at %#x: %v vs %v", probe, info.Mode, modes[probe])
			return false
		}
		return !info.Corrected // no fault injected, no correction expected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: a single-chip fault at any position never changes the data
// a read returns (chipkill), regardless of mode or data.
func TestQuickFaultTransparency(t *testing.T) {
	e, err := NewEngine(DefaultEngineOptions())
	if err != nil {
		t.Fatal(err)
	}
	f := func(addrSeed uint16, data cipher.Block, chipSel uint8, pattern uint64, useCounterless bool) bool {
		if pattern == 0 {
			pattern = 1
		}
		addr := uint64(addrSeed) * 64 % (1 << 20)
		mode := epoch.CounterMode
		if useCounterless {
			mode = epoch.Counterless
		}
		if err := e.Write(addr, data, mode); err != nil {
			return false
		}
		chip := int(chipSel) % 10
		if err := e.InjectFault(addr, chip, pattern); err != nil {
			return false
		}
		got, info, err := e.Read(addr)
		if err != nil {
			t.Logf("read after fault failed: %v", err)
			return false
		}
		return got == data && info.Corrected && info.BadChip == chip
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

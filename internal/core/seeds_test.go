package core

import (
	"testing"

	"counterlight/internal/trace"
)

// Multi-seed runs: the headline comparison must be stable across
// seeds — Counter-light's advantage over counterless is not a
// single-seed artifact.
func TestRunSeedsStability(t *testing.T) {
	w, ok := trace.ByName("mcf")
	if !ok {
		t.Fatal("mcf missing")
	}
	cfg := fastCfg(CounterLight)
	cl, err := RunSeeds(cfg, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.PerSeed) != 3 || len(cl.Seeds) != 3 {
		t.Fatalf("per-seed results: %+v", cl)
	}
	cfg.Scheme = Counterless
	cls, err := RunSeeds(cfg, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Mean <= cls.Mean {
		t.Errorf("counter-light mean %.3f not above counterless %.3f", cl.Mean, cls.Mean)
	}
	// Seed-to-seed noise must be small relative to the effect.
	if cl.StdDev > 0.05 {
		t.Errorf("counter-light seed noise %.4f too large", cl.StdDev)
	}
	if cl.Min <= cls.Max {
		t.Logf("distributions overlap: cl=[%.3f,%.3f] cls=[%.3f,%.3f]",
			cl.Min, cl.Max, cls.Min, cls.Max)
	}
	// Distinct seeds must actually perturb the run.
	if cl.PerSeed[0] == cl.PerSeed[1] && cl.PerSeed[1] == cl.PerSeed[2] &&
		cl.Max-cl.Min == 0 && cl.StdDev == 0 {
		t.Log("warning: seeds produced identical results (deterministic workload?)")
	}
}

func TestRunSeedsDefaults(t *testing.T) {
	w, _ := trace.ByName("mcf")
	cfg := fastCfg(NoEnc)
	cfg.Seed = 0
	s, err := RunSeeds(cfg, w, 0) // n<1 coerces to 1
	if err != nil {
		t.Fatal(err)
	}
	if len(s.PerSeed) != 1 || s.Seeds[0] != 1 {
		t.Errorf("defaults: %+v", s)
	}
	if s.StdDev != 0 {
		t.Errorf("single seed stddev = %v", s.StdDev)
	}
}

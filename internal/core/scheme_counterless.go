package core

// counterlessPipeline is AES-XTS-style encryption (TME/SEV, paper
// §III): no counter traffic at all, but the data-dependent AES starts
// only after the data arrives, so every read miss pays the full cipher
// latency on the use path.
type counterlessPipeline struct {
	noCounterTraffic
	ctx MCContext
}

func (p *counterlessPipeline) ReadMiss(addr uint64, tm, dataDone int64, demand bool) int64 {
	return dataDone + p.ctx.Config().AESLat
}

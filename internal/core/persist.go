// NVM persistence hooks: the slices of engine state a crash-recovery
// path must force from a journal rather than re-derive. Counter
// values are forced through Counters().ForceCounter; the hooks here
// cover the side tables (VM key ownership) and expose the block set a
// recovery diff walks. See internal/nvm for the persistence domain
// that uses them.
package core

import (
	"fmt"
	"sort"
)

// BindVM records which VM's counterless key owns addr without
// performing a write. Recovery replays journaled ownership with it so
// post-recovery reads pick the right per-VM cipher.
func (e *Engine) BindVM(addr uint64, vm int) error {
	if err := e.checkAddr(addr); err != nil {
		return err
	}
	if vm < 0 || vm >= len(e.cls) {
		return fmt.Errorf("core: VM %d out of range [0,%d)", vm, len(e.cls))
	}
	e.vmOf[addr] = vm
	return nil
}

// VMOf returns the VM bound to addr (0 when never written).
func (e *Engine) VMOf(addr uint64) int { return e.vmOf[addr] }

// Blocks returns the sorted addresses of every block present in
// memory — the state surface a recovery diff walks.
func (e *Engine) Blocks() []uint64 {
	out := make([]uint64, 0, len(e.mem))
	for a := range e.mem {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

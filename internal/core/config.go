// Package core is the paper's primary contribution: the Counter-light
// memory controller. It has two halves:
//
//   - Engine (engine.go): the functional datapath. Real AES/SHA-3
//     encryption, OTP memoization, MAC construction, EncryptionMetadata
//     encoding into Synergy chipkill ECC, dual-hypothesis error
//     correction with entropy disambiguation, and integrity-tree
//     verified counter updates, over a simulated ECC DRAM array.
//
//   - Simulator (simulator.go): the timing model. Four out-of-order-ish
//     cores with prefetchers and an MLP window, a three-level cache
//     hierarchy, the counter cache, the memoization table, a banked
//     DRAM channel, and the epoch bandwidth monitor — everything
//     Table I configures — used to regenerate the paper's figures.
package core

import (
	"fmt"

	"counterlight/internal/epoch"
	"counterlight/internal/obs"
)

// Scheme selects the memory protection design under evaluation.
type Scheme int

const (
	// NoEnc is the unprotected baseline all figures normalize to.
	NoEnc Scheme = iota
	// Counterless is AES-XTS-style encryption (TME/SEV): no counter
	// traffic, but every LLC read miss pays the AES latency after the
	// data arrives (paper §III).
	Counterless
	// CounterMode is the RMCC baseline: split counters + integrity
	// tree + 64 KB counter cache + AES memoization (paper §II).
	CounterMode
	// CounterModeSingle is Fig. 9's diagnostic: counter mode where
	// each read miss fetches only the missing block's own counter and
	// all writeback counter/tree traffic is dropped, isolating the
	// latency cost of that one access.
	CounterModeSingle
	// CounterLight is the paper's design: EncryptionMetadata in the
	// ECC, no counter traffic on reads, epoch-switched writebacks.
	CounterLight
)

// String names the scheme for reports (the name it was registered
// under; see RegisterScheme).
func (s Scheme) String() string {
	if e, ok := lookupScheme(s); ok {
		return e.name
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// Times in picoseconds.
const (
	ns = int64(1000)
	us = int64(1_000_000)
	ms = int64(1_000_000_000)
)

// Config mirrors Table I plus the paper's design knobs.
type Config struct {
	Scheme Scheme

	// Cores and per-core limits.
	Cores int
	MLP   int // max outstanding LLC-bound loads per core (OoO window)

	// Cache hierarchy (sizes in bytes, latencies in ps).
	L1Size, L2Size, L3Size uint64
	L1Ways, L2Ways, L3Ways int
	L1Lat, L2Lat, L3Lat    int64
	BlockSize              uint64
	PrefetchEnabled        bool

	// Memory-encryption machinery.
	CounterCacheSize uint64
	CounterCacheWays int
	CounterCacheLat  int64
	MemoEntries      int   // memoization table entries (128 = 4 KB)
	MemoLat          int64 // memoized-OTP fetch+combine latency (2 ns, Fig. 4)
	MemoizeEnabled   bool
	AESLat           int64 // 10 ns for AES-128, 14 ns for AES-256
	SHA3Lat          int64
	ECCCheckLat      int64 // standard ECC check without encryption (1 ns)
	MetaDecodeLead   int64 // parity arrives this long before the full block (1.25 ns)
	OTPAfterDecode   int64 // decode->OTP via memo table (2 ns total, §IV-D)

	// DRAM.
	BandwidthGBs float64
	MemorySize   uint64
	// RefreshEnabled turns on tREFI/tRFC refresh modeling in the DRAM
	// channel (off by default, matching the evaluation's gem5 setup).
	RefreshEnabled bool

	// Epoch switching (§IV-B).
	EpochLen      int64
	Threshold     float64 // bandwidth utilization threshold
	DynamicSwitch bool    // false = never switch to counterless (ablation)

	// Simulation windows.
	WarmupTime int64
	WindowTime int64
	Seed       int64

	// Observability. None of these affect simulated timing or event
	// ordering; a run with and without them produces identical
	// Results.
	//
	// Obs, when set, receives every subsystem's metrics (labeled
	// scheme=<scheme>) in its registry, and — if its Trace is non-nil
	// — the pipeline's sim-time event stream. When nil, Run uses a
	// private observer so the Stats() views still work.
	Obs *obs.Observer
	// Epochs, when set, receives one obs.EpochSample at every closed
	// epoch boundary of the bandwidth monitor — the live-telemetry
	// seam the timeseries recorder and the monitoring server attach
	// through. When nil the simulator assembles no samples, keeping
	// the hot path allocation-free.
	Epochs obs.Publisher
	// Progress, when set, is called roughly every ProgressEvery
	// picoseconds of simulated time with a status sample (clsim's
	// stderr progress line).
	Progress func(ProgressInfo)
	// ProgressEvery is the simulated time between Progress calls
	// (default 1 ms).
	ProgressEvery int64
}

// ProgressInfo is the periodic status sample handed to
// Config.Progress.
type ProgressInfo struct {
	SimPS        int64      // current simulated time in ps
	Measuring    bool       // inside the measurement window?
	Instructions uint64     // instructions retired in the window so far
	IPC          float64    // per-core IPC over the window so far
	Mode         epoch.Mode // writeback mode currently in effect
}

// DefaultConfig returns Table I's configuration for the given scheme:
// 4 OoO cores at 3.2 GHz; 32 KB/1 MB/8 MB caches at 2/4/17 ns;
// next-line + stride prefetchers; 64 KB 32-way counter cache; 4 KB
// memoization table; AES-128 at 10 ns, SHA-3 at 1 ns; 128 GB of DRAM
// at 25.6 GB/s; 100 µs epochs with a 60% threshold.
func DefaultConfig(scheme Scheme) Config {
	return Config{
		Scheme: scheme,
		Cores:  4,
		MLP:    8,

		L1Size: 32 << 10, L1Ways: 8, L1Lat: 2 * ns,
		L2Size: 1 << 20, L2Ways: 16, L2Lat: 4 * ns,
		L3Size: 8 << 20, L3Ways: 16, L3Lat: 17 * ns,
		BlockSize:       64,
		PrefetchEnabled: true,

		CounterCacheSize: 64 << 10,
		CounterCacheWays: 32,
		CounterCacheLat:  2 * ns,
		MemoEntries:      128,
		MemoLat:          2 * ns,
		MemoizeEnabled:   true,
		AESLat:           10 * ns,
		SHA3Lat:          1 * ns,
		ECCCheckLat:      1 * ns,
		MetaDecodeLead:   1250, // 1.25 ns
		OTPAfterDecode:   2 * ns,

		BandwidthGBs: 25.6,
		MemorySize:   128 << 30,

		EpochLen:      100 * us,
		Threshold:     0.60,
		DynamicSwitch: true,

		WarmupTime: 4 * ms,
		WindowTime: 4 * ms,
		Seed:       1,
	}
}

// WithAES256 adjusts the cipher latency for 14-round AES-256
// (§III: 14/10 × 10 ns = 14 ns).
func (c Config) WithAES256() Config {
	c.AESLat = 14 * ns
	return c
}

// Validate rejects configurations the simulator cannot run.
func (c Config) Validate() error {
	if c.Cores <= 0 || c.MLP <= 0 {
		return fmt.Errorf("core: invalid cores=%d mlp=%d", c.Cores, c.MLP)
	}
	if c.BlockSize != 64 {
		return fmt.Errorf("core: block size must be 64, got %d", c.BlockSize)
	}
	if c.BandwidthGBs <= 0 || c.MemorySize == 0 {
		return fmt.Errorf("core: invalid memory config")
	}
	if c.Threshold <= 0 || c.Threshold > 1 {
		return fmt.Errorf("core: threshold %v out of (0,1]", c.Threshold)
	}
	if c.WindowTime <= 0 {
		return fmt.Errorf("core: window must be positive")
	}
	if _, ok := lookupScheme(c.Scheme); !ok {
		return fmt.Errorf("core: unknown scheme %d", int(c.Scheme))
	}
	return nil
}

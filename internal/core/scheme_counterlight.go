package core

import "counterlight/internal/epoch"

// counterLightPipeline is the paper's design (§IV): EncryptionMetadata
// rides in the block's ECC parity, so reads never fetch counters, and
// the epoch bandwidth monitor switches writebacks to counterless mode
// when the channel saturates.
type counterLightPipeline struct {
	counterTraffic
}

func newCounterLightPipeline(ctx MCContext) *counterLightPipeline {
	return &counterLightPipeline{counterTraffic: newCounterTraffic(ctx)}
}

func (p *counterLightPipeline) ReadMiss(addr uint64, tm, dataDone int64, demand bool) int64 {
	cfg := p.ctx.Config()
	// The counter (or flag) decodes from the ECC parity, which is
	// available MetaDecodeLead before the full block (§IV-D).
	meta := p.blockMeta(addr / cfg.BlockSize)
	if modeOf(uint64(meta)) == epoch.Counterless {
		return dataDone + cfg.AESLat // counterless block
	}
	decodeAt := dataDone - cfg.MetaDecodeLead
	// A memo hit yields the 2 ns decode-to-OTP path of §IV-D.
	otpReady := decodeAt + p.memoOTP(meta, cfg.OTPAfterDecode)
	return max(dataDone, otpReady)
}

func (p *counterLightPipeline) Writeback(addr uint64, tw int64) {
	ctx := p.ctx
	cfg := ctx.Config()
	mode := epoch.CounterMode
	if cfg.DynamicSwitch {
		mode = ctx.WritebackMode(tw)
	}
	ctx.CountWriteback(mode == epoch.Counterless)
	if mode == epoch.Counterless {
		p.meta[addr/cfg.BlockSize] = metaFlag
		return
	}
	// A block that went counterless re-enters counter mode on its
	// next counter-mode writeback (the counter keeps its old value
	// in the counter block and advances past it).
	ctx.PostCounterUpdate(tw+cfg.CounterCacheLat, addr)
}

package core

import (
	"math"
	"sync"

	"counterlight/internal/trace"
)

// SeedStats summarizes a multi-seed run: the mean and sample standard
// deviation of performance normalized to the NoEnc baseline, run
// pairwise on identical seeds. Published simulator results hide
// seed-to-seed variance; this is the robustness check a reviewer asks
// for.
type SeedStats struct {
	Seeds    []int64
	PerSeed  []float64 // normalized performance per seed
	Mean     float64
	StdDev   float64
	Min, Max float64
}

// RunSeeds runs the configuration against n seeds (1, 2, ..., n unless
// cfg.Seed is nonzero, in which case seeds start there) and reports
// the distribution of performance normalized to the no-encryption
// baseline on the same seed.
func RunSeeds(cfg Config, w trace.Workload, n int) (SeedStats, error) {
	return RunSeedsParallel(cfg, w, n, 1)
}

// RunSeedsParallel is RunSeeds with the per-seed simulation pairs
// fanned out across a bounded pool of workers goroutines (Run is
// re-entrant). The reported distribution is deterministic and ordered
// by seed regardless of the worker count.
func RunSeedsParallel(cfg Config, w trace.Workload, n, workers int) (SeedStats, error) {
	var out SeedStats
	if n < 1 {
		n = 1
	}
	if workers < 1 {
		workers = 1
	}
	start := cfg.Seed
	if start == 0 {
		start = 1
	}
	perSeed := make([]float64, n)
	errs := make([]error, n)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c := cfg
			c.Seed = start + int64(i)
			res, base, err := RunPair(c, w)
			if err != nil {
				errs[i] = err
				return
			}
			perSeed[i] = res.PerfNormalizedTo(base)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	for i := 0; i < n; i++ {
		out.Seeds = append(out.Seeds, start+int64(i))
		out.PerSeed = append(out.PerSeed, perSeed[i])
	}
	sum := 0.0
	out.Min, out.Max = out.PerSeed[0], out.PerSeed[0]
	for _, p := range out.PerSeed {
		sum += p
		out.Min = min(out.Min, p)
		out.Max = max(out.Max, p)
	}
	out.Mean = sum / float64(len(out.PerSeed))
	if len(out.PerSeed) > 1 {
		varSum := 0.0
		for _, p := range out.PerSeed {
			d := p - out.Mean
			varSum += d * d
		}
		out.StdDev = math.Sqrt(varSum / float64(len(out.PerSeed)-1))
	}
	return out, nil
}

package core

import (
	"fmt"

	"counterlight/internal/cipher"
	"counterlight/internal/crypto/aes"
	"counterlight/internal/crypto/mix"
	"counterlight/internal/ctrblock"
	"counterlight/internal/ecc"
	"counterlight/internal/entropy"
	"counterlight/internal/epoch"
	"counterlight/internal/memoize"
	"counterlight/internal/obs"
	"counterlight/internal/obs/prof"
)

// EngineOptions configures the functional engine.
type EngineOptions struct {
	MemSize     uint64 // bytes of protected data memory
	AESKeyBytes int    // 16 (AES-128) or 32 (AES-256)
	MemoEntries int
	// EntropyDisambiguation enables the §IV-E enhancement: when
	// correction is ambiguous between the two mode hypotheses, pick
	// the candidate whose plaintext does not look random.
	EntropyDisambiguation bool
	// VMs is the number of per-VM counterless keys to provision
	// (§IV-D: counterless mode needs per-VM keys to block the
	// ciphertext side channel; counter mode shares one global key
	// because the counter makes every ciphertext unique). 0 means 1.
	VMs int
	// CounterLimit overrides the maximum counter value (default
	// ctrblock.CounterMax). Lowering it lets tests exercise the
	// §IV-C saturation path: a block whose counter would exceed the
	// limit permanently switches to counterless mode.
	CounterLimit uint32
	// Cipher selects the AES backend the engine's ciphers run on
	// ("ref", "ttable", or "stdlib"; empty means the process default,
	// aes.DefaultBackend). All backends are bit-exact, so this choice
	// affects only host-side speed, never stored bytes or MACs.
	Cipher string
	// DisableCorrection skips the Fig. 14 trial-and-error correction
	// path entirely: a failed fast-path MAC check becomes an
	// immediate detected uncorrectable error. This is the
	// differential-verification harness's "known-bad mutation"
	// switch (internal/check): with correction off, any injected
	// fault must surface as an oracle divergence, proving the
	// harness detects missing ECC rather than silently passing.
	DisableCorrection bool
	// Profile attaches online profiler probes to the engine's hot
	// ciphers: pad-batch and MAC latency feed prof.Profiler's
	// estimators (and through them the mcpool adaptive-watermark
	// policy). Nil disables instrumentation at the cost of one nil
	// check per probe site. Purely observational — never affects
	// stored bytes or MACs.
	Profile *prof.Profiler
}

// DefaultEngineOptions uses a small (test-friendly) memory with the
// paper's table sizes.
func DefaultEngineOptions() EngineOptions {
	return EngineOptions{
		MemSize:               1 << 26, // 64 MB
		AESKeyBytes:           16,
		MemoEntries:           128,
		EntropyDisambiguation: true,
	}
}

// Engine is the functional Counter-light memory controller: it owns
// the keys, the counters and integrity tree, the memoization table,
// and a simulated ECC DRAM array, and moves real bytes through the
// full encrypt/MAC/ECC pipeline of Figs. 11-14.
type Engine struct {
	opts       EngineOptions
	cipherName string                // resolved AES backend name
	cls        []*cipher.Counterless // one per VM (§IV-D)
	cm         *cipher.CounterMode   // single global key
	ctrs       *ctrblock.Store
	memo       *memoize.Table
	mem        map[uint64]ecc.CodeWord // block-aligned address -> stored codeword

	// refCls/refCm are lazily built reference-backend twins of the
	// engine's ciphers (same keys, aes.BackendRef). The differential
	// oracle recomputes through them so a broken fast backend diverges
	// from the oracle instead of agreeing with itself.
	refCls []*cipher.Counterless
	refCm  *cipher.CounterMode

	// padCache is a direct-mapped cache of counter-mode pads keyed by
	// (counter, address) — the software analogue of the hardware
	// starting the OTP AES while data is in flight. Pads are pure
	// functions of (counter, address), so entries never go stale; a
	// mismatch simply recomputes. It serves two reuse patterns: the
	// MAC check and the decrypt of one read share a single pad
	// derivation, and mcpool's batch precompute (PrecomputeReadPads)
	// fills slots ahead of the reads that consume them.
	padCache [padCacheSize]padCacheEntry

	// Reusable gather/output buffers for PrecomputeReadPads: the batch
	// path must not allocate in steady state (buffers grow to the
	// largest batch seen, then stick).
	pcCtrs, pcAddrs []uint64
	pcPads          []cipher.Block
	pcOTPs          []mix.Word
	pcScratch       cipher.BatchScratch

	// permanentCounterless records blocks whose counters saturated
	// (§IV-C) or that were mapped out of a faulty rank (§IV-E).
	permanentCounterless map[uint64]bool
	// vmOf records which VM's counterless key encrypted each block
	// (counter-mode blocks all share the global key).
	vmOf map[uint64]int

	m      engineMetrics
	tracer *obs.Tracer // optional; the functional engine has no sim
	// clock, so events are stamped with the operation index instead
	// of picoseconds.
}

// engineMetrics holds the functional-path event counts as obs
// instruments; EngineStats stays the exported view type.
type engineMetrics struct {
	reads, writes     obs.Counter
	counterModeWrites obs.Counter
	counterlessWrites obs.Counter
	memoHits          obs.Counter
	memoMisses        obs.Counter
	corrections       obs.Counter
	entropyResolved   obs.Counter
	dues              obs.Counter
	macFailures       obs.Counter
	eccTrials         *obs.Histogram // trials per correction-path read
}

// EngineStats counts functional-path events.
type EngineStats struct {
	Reads, Writes        uint64
	CounterModeWrites    uint64
	CounterlessWrites    uint64
	MemoHits, MemoMisses uint64
	Corrections          uint64
	EntropyResolved      uint64
	DUEs                 uint64
	MACFailures          uint64 // reads whose fast-path MAC check failed
}

// padCacheSize is the number of direct-mapped pad-cache slots (a
// power of two; 64 bytes of pad plus tags per slot ≈ 24 KB total,
// comparable to the paper's on-chip table budgets).
const padCacheSize = 256

type padCacheEntry struct {
	ctr, addr uint64
	pad       cipher.Block
	otp       mix.Word // the MAC's dedicated OTP word
	valid     bool
}

// cmMACSecret seeds the counter-mode GF(2^64) MAC key schedule.
const cmMACSecret = 0x5eed0fc0de15BAD1

// clsMACKey is the counterless SHA-3 MAC key.
var clsMACKey = []byte("counterless-mac-key")

// clsKeysFor derives VM vm's deterministic counterless data/tweak key
// pair; newCounterless/ReferenceCounterlessCipher must build from the
// same bytes so the oracle twin matches the engine bit for bit.
func clsKeysFor(keyBytes, vm int) (dataKey, tweakKey []byte) {
	dataKey = make([]byte, keyBytes)
	dataKey[0] = 0x01
	dataKey[1] = byte(vm) // per-VM counterless key (§IV-D)
	tweakKey = make([]byte, keyBytes)
	tweakKey[0] = 0x02
	tweakKey[1] = byte(vm)
	return dataKey, tweakKey
}

// cmKeyFor derives the single global counter-mode key.
func cmKeyFor(keyBytes int) []byte {
	key := make([]byte, keyBytes)
	key[0] = 0x03
	return key
}

// NewEngine builds a functional engine with fresh random-free (zero)
// keys — determinism matters more than secrecy in a simulator; callers
// needing distinct keys can vary them via the cipher packages.
func NewEngine(opts EngineOptions) (*Engine, error) {
	if opts.AESKeyBytes != 16 && opts.AESKeyBytes != 32 {
		return nil, fmt.Errorf("core: AES key must be 16 or 32 bytes, got %d", opts.AESKeyBytes)
	}
	if opts.MemSize == 0 || opts.MemSize%64 != 0 {
		return nil, fmt.Errorf("core: invalid memory size %d", opts.MemSize)
	}
	if opts.VMs <= 0 {
		opts.VMs = 1
	}
	if opts.CounterLimit == 0 {
		opts.CounterLimit = ctrblock.CounterMax
	}
	backend := opts.Cipher
	if backend == "" {
		backend = aes.DefaultBackend()
	}
	cls := make([]*cipher.Counterless, opts.VMs)
	for vm := range cls {
		clsKey, tweakKey := clsKeysFor(opts.AESKeyBytes, vm)
		var err error
		cls[vm], err = cipher.NewCounterlessBackend(backend, clsKey, tweakKey, clsMACKey)
		if err != nil {
			return nil, err
		}
	}
	cm, err := cipher.NewCounterModeBackend(backend, cmKeyFor(opts.AESKeyBytes), cmMACSecret, nil)
	if err != nil {
		return nil, err
	}
	if pf := opts.Profile; pf != nil {
		cm.SetProbes(pf.PadBatch, pf.MAC)
		for _, c := range cls {
			c.SetMACProbe(pf.MAC)
		}
	}
	ctrs, err := ctrblock.New(opts.MemSize, 64)
	if err != nil {
		return nil, err
	}
	if opts.MemoEntries <= 0 {
		opts.MemoEntries = 128
	}
	// Trials per correction: ~10 per hypothesis, 2 hypotheses.
	eccTrials, err := obs.NewHistogram(10, 15, 20, 25)
	if err != nil {
		return nil, err
	}
	return &Engine{
		m:                    engineMetrics{eccTrials: eccTrials},
		opts:                 opts,
		cipherName:           backend,
		cls:                  cls,
		cm:                   cm,
		ctrs:                 ctrs,
		memo:                 memoize.New(opts.MemoEntries, 0, cm.CounterAES),
		mem:                  make(map[uint64]ecc.CodeWord),
		permanentCounterless: make(map[uint64]bool),
		vmOf:                 make(map[uint64]int),
	}, nil
}

// Stats returns a copy of the engine's counters (a thin view over
// the obs instruments).
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Reads:             e.m.reads.Value(),
		Writes:            e.m.writes.Value(),
		CounterModeWrites: e.m.counterModeWrites.Value(),
		CounterlessWrites: e.m.counterlessWrites.Value(),
		MemoHits:          e.m.memoHits.Value(),
		MemoMisses:        e.m.memoMisses.Value(),
		Corrections:       e.m.corrections.Value(),
		EntropyResolved:   e.m.entropyResolved.Value(),
		DUEs:              e.m.dues.Value(),
		MACFailures:       e.m.macFailures.Value(),
	}
}

// RegisterMetrics exposes the engine's counters through a registry
// under the given labels.
func (e *Engine) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.RegisterCounter("engine_reads_total", &e.m.reads, labels...)
	reg.RegisterCounter("engine_writes_total", &e.m.writes, labels...)
	reg.RegisterCounter("engine_counter_mode_writes_total", &e.m.counterModeWrites, labels...)
	reg.RegisterCounter("engine_counterless_writes_total", &e.m.counterlessWrites, labels...)
	reg.RegisterCounter("engine_memo_hits_total", &e.m.memoHits, labels...)
	reg.RegisterCounter("engine_memo_misses_total", &e.m.memoMisses, labels...)
	reg.RegisterCounter("engine_corrections_total", &e.m.corrections, labels...)
	reg.RegisterCounter("engine_entropy_resolved_total", &e.m.entropyResolved, labels...)
	reg.RegisterCounter("engine_dues_total", &e.m.dues, labels...)
	reg.RegisterCounter("engine_mac_failures_total", &e.m.macFailures, labels...)
	if e.m.eccTrials != nil {
		reg.RegisterHistogram("engine_ecc_trials", e.m.eccTrials, labels...)
	}
}

// SetTracer installs (or clears, with nil) the event tracer. Events
// are stamped with the engine's operation index (reads+writes so
// far), not picoseconds: the functional engine has no sim clock.
func (e *Engine) SetTracer(t *obs.Tracer) { e.tracer = t }

// opIndex is the engine's event timestamp: the number of operations
// completed or in flight.
func (e *Engine) opIndex() int64 {
	return int64(e.m.reads.Value() + e.m.writes.Value())
}

// Counters exposes the counter store (tests exercise replay attacks
// through it).
func (e *Engine) Counters() *ctrblock.Store { return e.ctrs }

// Memo exposes the memoization table.
func (e *Engine) Memo() *memoize.Table { return e.memo }

// CounterCipher exposes the counter-mode cipher. The verification
// oracle (internal/check) recomputes pads, counter-AES results, and
// MACs independently through it, so the RMCC memoization table can be
// checked word-for-word against direct AES.
func (e *Engine) CounterCipher() *cipher.CounterMode { return e.cm }

// CounterlessCipher exposes VM vm's counterless cipher (nil when vm
// is out of range), for the same independent-recomputation checks.
func (e *Engine) CounterlessCipher(vm int) *cipher.Counterless {
	if vm < 0 || vm >= len(e.cls) {
		return nil
	}
	return e.cls[vm]
}

// CipherBackend reports the resolved AES backend name the engine's
// ciphers run on (perf snapshots record it).
func (e *Engine) CipherBackend() string { return e.cipherName }

// ReferenceCounterCipher returns a counter-mode cipher with the
// engine's keys on the reference AES backend. The differential oracle
// recomputes through it so a fast backend is checked against an
// independent implementation, not against itself. Built lazily and
// cached; when the engine already runs the reference backend it is the
// engine's own cipher.
func (e *Engine) ReferenceCounterCipher() *cipher.CounterMode {
	if e.cipherName == aes.BackendRef {
		return e.cm
	}
	if e.refCm == nil {
		cm, err := cipher.NewCounterModeBackend(aes.BackendRef, cmKeyFor(e.opts.AESKeyBytes), cmMACSecret, nil)
		if err != nil {
			panic("core: reference counter cipher: " + err.Error())
		}
		e.refCm = cm
	}
	return e.refCm
}

// ReferenceCounterlessCipher is ReferenceCounterCipher for VM vm's
// counterless cipher (nil when vm is out of range).
func (e *Engine) ReferenceCounterlessCipher(vm int) *cipher.Counterless {
	if vm < 0 || vm >= len(e.cls) {
		return nil
	}
	if e.cipherName == aes.BackendRef {
		return e.cls[vm]
	}
	if e.refCls == nil {
		e.refCls = make([]*cipher.Counterless, len(e.cls))
	}
	if e.refCls[vm] == nil {
		dataKey, tweakKey := clsKeysFor(e.opts.AESKeyBytes, vm)
		cls, err := cipher.NewCounterlessBackend(aes.BackendRef, dataKey, tweakKey, clsMACKey)
		if err != nil {
			panic("core: reference counterless cipher: " + err.Error())
		}
		e.refCls[vm] = cls
	}
	return e.refCls[vm]
}

// padFor returns the counter-mode pad and MAC OTP word for (ctr,
// addr), serving from the direct-mapped pad cache when a prior MAC
// check, decrypt, or PrecomputeReadPads already derived it. On a miss
// it derives both with one six-block batched AES and fills the slot.
func (e *Engine) padFor(ctr, addr uint64) (cipher.Block, mix.Word) {
	slot := &e.padCache[(addr>>6)&(padCacheSize-1)]
	if slot.valid && slot.addr == addr && slot.ctr == ctr {
		return slot.pad, slot.otp
	}
	pad, otp := e.cm.PadWithMAC(ctr, addr)
	*slot = padCacheEntry{ctr: ctr, addr: addr, pad: pad, otp: otp, valid: true}
	return pad, otp
}

// PrecomputeReadPads derives the counter-mode pads for the given
// block addresses ahead of the reads that will consume them, batching
// all the AES into one EncryptBlocks call (six blocks per address) and
// filling the pad cache. Addresses that are unwritten, unaligned, in
// counterless mode, or already cached are skipped; the return value is
// the number of pads actually derived. Steady-state it performs no
// allocation: the gather buffers live on the engine.
//
// This is mcpool's pad-precompute stage: a shard collects the read
// addresses of a batch, precomputes here, and every subsequent
// Engine.Read hits the cache — the software analogue of the hardware
// overlapping OTP AES with the DRAM access (paper Fig. 2b).
func (e *Engine) PrecomputeReadPads(addrs []uint64) int {
	e.pcCtrs = e.pcCtrs[:0]
	e.pcAddrs = e.pcAddrs[:0]
	for _, addr := range addrs {
		if addr%64 != 0 || addr >= e.opts.MemSize {
			continue
		}
		cw, ok := e.mem[addr]
		if !ok {
			continue
		}
		meta := cw.DecodeMeta()
		if meta > ctrblock.CounterMax {
			continue // counterless block: no pad to precompute
		}
		if slot := &e.padCache[(addr>>6)&(padCacheSize-1)]; slot.valid && slot.addr == addr && slot.ctr == meta {
			continue
		}
		e.pcCtrs = append(e.pcCtrs, meta)
		e.pcAddrs = append(e.pcAddrs, addr)
	}
	n := len(e.pcCtrs)
	if n == 0 {
		return 0
	}
	if cap(e.pcPads) < n {
		e.pcPads = make([]cipher.Block, n)
		e.pcOTPs = make([]mix.Word, n)
	}
	pads, otps := e.pcPads[:n], e.pcOTPs[:n]
	e.cm.PadBatch(e.pcCtrs, e.pcAddrs, pads, otps, &e.pcScratch)
	for i := 0; i < n; i++ {
		addr := e.pcAddrs[i]
		slot := &e.padCache[(addr>>6)&(padCacheSize-1)]
		*slot = padCacheEntry{ctr: e.pcCtrs[i], addr: addr, pad: pads[i], otp: otps[i], valid: true}
	}
	return n
}

// IsPermanentCounterless reports whether the block has permanently
// switched to counterless mode (saturated counter, §IV-C, or
// ForceCounterless).
func (e *Engine) IsPermanentCounterless(addr uint64) bool { return e.permanentCounterless[addr] }

func (e *Engine) checkAddr(addr uint64) error {
	if addr%64 != 0 {
		return fmt.Errorf("core: address %#x not block aligned", addr)
	}
	if addr >= e.opts.MemSize {
		return fmt.Errorf("core: address %#x beyond memory size %#x", addr, e.opts.MemSize)
	}
	return nil
}

// Write encrypts and stores a block for VM 0. mode selects the
// writeback encryption mode the epoch monitor decided (paper §IV-B);
// blocks with saturated counters are forced counterless regardless.
func (e *Engine) Write(addr uint64, plain cipher.Block, mode epoch.Mode) error {
	return e.WriteAs(0, addr, plain, mode)
}

// WriteAs is Write on behalf of a specific VM. Counter-mode blocks
// share the single global key (§IV-D: the counter makes every
// ciphertext unique, so one key and one memoization table serve all
// VMs); counterless blocks use the VM's own key to block the
// ciphertext side channel.
func (e *Engine) WriteAs(vm int, addr uint64, plain cipher.Block, mode epoch.Mode) error {
	if err := e.checkAddr(addr); err != nil {
		return err
	}
	if vm < 0 || vm >= len(e.cls) {
		return fmt.Errorf("core: VM %d out of range [0,%d)", vm, len(e.cls))
	}
	e.m.writes.Inc()
	e.vmOf[addr] = vm
	if e.permanentCounterless[addr] {
		mode = epoch.Counterless
	}
	if mode == epoch.CounterMode {
		// Verify the counter path before trusting the old counter
		// (Fig. 10's attack is caught here), then advance it to a
		// memoized value.
		if !e.ctrs.VerifyCounter(addr) {
			return fmt.Errorf("core: integrity tree verification failed at %#x (counter replay?)", addr)
		}
		old := e.ctrs.Counter(addr)
		next := e.memo.NextWriteCounter(old)
		if next > e.opts.CounterLimit && old < e.opts.CounterLimit {
			// The shared write value W outran the limit while this
			// block's own counter still has headroom. Saturation is a
			// per-block condition (§IV-C), so take the unmemoized
			// plain increment instead of permanently degrading the
			// block to counterless — otherwise one hot W would
			// spuriously saturate every block it touches.
			next = old + 1
		}
		if next > e.opts.CounterLimit {
			// Counter saturated: this block is counterless forever
			// (until "reboot"; §IV-C).
			e.permanentCounterless[addr] = true
			mode = epoch.Counterless
			e.tracer.Emit(e.opIndex(), obs.PhaseInstant, obs.CatCtr, "counter_saturated",
				obs.A("addr", int64(addr)), obs.A("counter", int64(next)))
		} else {
			if err := e.ctrs.Increment(addr, next); err != nil {
				return fmt.Errorf("core: counter update: %w", err)
			}
			ct := e.cm.Encrypt(uint64(next), addr, plain)
			mac := e.cm.MAC(uint64(next), addr, plain, next)
			e.mem[addr] = ecc.Encode(ct, mac, uint64(next))
			e.m.counterModeWrites.Inc()
			return nil
		}
	}
	// Counterless writeback: EncryptionMetadata is the all-ones flag.
	cls := e.cls[vm]
	ct := cls.Encrypt(addr, plain)
	mac := cls.MAC(addr, ct, uint32(ctrblock.CounterlessFlag))
	e.mem[addr] = ecc.Encode(ct, mac, ctrblock.CounterlessFlag)
	e.m.counterlessWrites.Inc()
	return nil
}

// clsFor returns the counterless engine for the VM that owns addr
// (the real MC gets the key ID alongside the request; we keep it in a
// side table).
func (e *Engine) clsFor(addr uint64) *cipher.Counterless {
	return e.cls[e.vmOf[addr]]
}

// ReadInfo describes how a read was served.
type ReadInfo struct {
	Mode            epoch.Mode // encryption mode the block was in
	MemoHit         bool       // counter-AES served from the memoization table
	Corrected       bool       // error correction ran and succeeded
	BadChip         int        // corrected chip (-1 if none)
	EntropyResolved bool       // §IV-E disambiguation picked the candidate
}

// Read fetches, verifies, and decrypts the block at addr, running the
// fault-free fast path of Fig. 13 and falling back to the Fig. 14
// correction flow when the MAC check fails.
func (e *Engine) Read(addr uint64) (cipher.Block, ReadInfo, error) {
	info := ReadInfo{BadChip: -1}
	if err := e.checkAddr(addr); err != nil {
		return cipher.Block{}, info, err
	}
	cw, ok := e.mem[addr]
	if !ok {
		return cipher.Block{}, info, fmt.Errorf("core: read of unwritten block %#x", addr)
	}
	e.m.reads.Inc()

	// Fast path: decode EncryptionMetadata from the parity and check
	// the mode-appropriate MAC.
	meta := cw.DecodeMeta()
	ct := cw.Block()
	if mac, mode, ok := e.macFor(addr, ct, meta); ok && mac == cw.MAC {
		plain, memoHit := e.decrypt(addr, ct, meta)
		info.Mode = mode
		info.MemoHit = memoHit
		return plain, info, nil
	}
	e.m.macFailures.Inc()
	if e.opts.DisableCorrection {
		e.m.dues.Inc()
		e.tracer.Emit(e.opIndex(), obs.PhaseInstant, obs.CatECC, "due",
			obs.A("addr", int64(addr)), obs.A("correction_disabled", 1))
		return cipher.Block{}, info, fmt.Errorf("core: MAC check failed at %#x (correction disabled)", addr)
	}

	// Correction path: two EncryptionMetadata hypotheses (Fig. 14).
	res := ecc.Correct(cw, e.hypotheses(addr))
	e.m.eccTrials.Add(int64(res.Trials))
	e.tracer.Emit(e.opIndex(), obs.PhaseInstant, obs.CatECC, "correction_attempt",
		obs.A("addr", int64(addr)), obs.A("trials", int64(res.Trials)),
		obs.A("candidates", int64(len(res.Candidates))))
	if res.OK {
		e.m.corrections.Inc()
		e.tracer.Emit(e.opIndex(), obs.PhaseInstant, obs.CatECC, "hypothesis_chosen",
			obs.A("hypothesis", int64(res.Hypothesis)), obs.A("bad_chip", int64(res.BadChip)))
		plain, memoHit := e.decrypt(addr, res.Data, res.Meta)
		info.Mode = modeOf(res.Meta)
		info.MemoHit = memoHit
		info.Corrected = true
		info.BadChip = res.BadChip
		return plain, info, nil
	}
	// Ambiguity: try the entropy disambiguator (§IV-E) across the
	// matching candidates.
	if e.opts.EntropyDisambiguation && len(res.Candidates) > 1 {
		plains := make([]cipher.Block, len(res.Candidates))
		for i, c := range res.Candidates {
			plains[i], _ = e.decrypt(addr, c.Data, c.Meta)
		}
		if pick := entropy.Classify(plains); pick >= 0 {
			c := res.Candidates[pick]
			e.m.corrections.Inc()
			e.m.entropyResolved.Inc()
			e.tracer.Emit(e.opIndex(), obs.PhaseInstant, obs.CatECC, "hypothesis_chosen",
				obs.A("hypothesis", int64(c.Hypothesis)), obs.A("bad_chip", int64(c.BadChip)),
				obs.A("entropy_resolved", 1))
			info.Mode = modeOf(c.Meta)
			info.Corrected = true
			info.EntropyResolved = true
			info.BadChip = c.BadChip
			return plains[pick], info, nil
		}
	}
	e.m.dues.Inc()
	e.tracer.Emit(e.opIndex(), obs.PhaseInstant, obs.CatECC, "due",
		obs.A("addr", int64(addr)), obs.A("candidates", int64(len(res.Candidates))))
	return cipher.Block{}, info, fmt.Errorf("core: detected uncorrectable error at %#x (%d candidates)", addr, len(res.Candidates))
}

// macFor recomputes the MAC the block should carry given its decoded
// metadata, dispatching through the shared mode semantics. ok is false
// when the metadata is out of range (cannot be a legal counter), which
// routes the read to the correction path.
func (e *Engine) macFor(addr uint64, ct cipher.Block, meta uint64) (mac uint64, mode epoch.Mode, ok bool) {
	mc := e.modeFor(meta)
	mac, ok = mc.MAC(addr, ct, meta)
	return mac, mc.Mode(), ok
}

// decrypt applies the mode the metadata selects, going through the
// memoization table for counter mode exactly as the hardware would.
func (e *Engine) decrypt(addr uint64, ct cipher.Block, meta uint64) (cipher.Block, bool) {
	return e.modeFor(meta).Decrypt(addr, ct, meta)
}

// hypotheses builds the two Fig. 14 correction hypotheses: the counter
// value fetched from the counter block, and the counterless flag
// (order matters: the counter hypothesis is tried first).
func (e *Engine) hypotheses(addr uint64) []ecc.Hypothesis {
	return []ecc.Hypothesis{
		counterCipherPath{e}.Hypothesis(addr),
		counterlessCipherPath{e}.Hypothesis(addr),
	}
}

// InjectFault corrupts one chip of the stored block (for reliability
// tests and the secure_memory example). chip 0..7 are data chips, 8 is
// the MAC chip, 9 the parity chip.
func (e *Engine) InjectFault(addr uint64, chip int, pattern uint64) error {
	if err := e.checkAddr(addr); err != nil {
		return err
	}
	cw, ok := e.mem[addr]
	if !ok {
		return fmt.Errorf("core: no block at %#x", addr)
	}
	switch {
	case chip >= 0 && chip < ecc.DataChips:
		cw.Data[chip] ^= pattern
	case chip == ecc.MACChip:
		cw.MAC ^= pattern
	case chip == ecc.ParityChip:
		cw.Parity ^= pattern
	default:
		return fmt.Errorf("core: invalid chip %d", chip)
	}
	e.mem[addr] = cw
	return nil
}

// Snapshot captures the raw stored codeword (what a bus probe would
// see); Restore writes it back verbatim — together they model a
// physical replay of a whole data block, which Counter-light, like
// counterless encryption, does not detect (§IV-F).
func (e *Engine) Snapshot(addr uint64) (ecc.CodeWord, bool) {
	cw, ok := e.mem[addr]
	return cw, ok
}

// Restore implements the replay half of Snapshot.
func (e *Engine) Restore(addr uint64, cw ecc.CodeWord) {
	e.mem[addr] = cw
}

// ForceCounterless permanently switches a block (e.g. one in a rank
// diagnosed with a hard fault, §IV-E) to counterless mode.
func (e *Engine) ForceCounterless(addr uint64) { e.permanentCounterless[addr] = true }

package core

package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"counterlight/internal/cache"
	"counterlight/internal/crypto/mix"
	"counterlight/internal/dram"
	"counterlight/internal/epoch"
	"counterlight/internal/memoize"
	"counterlight/internal/obs"
	"counterlight/internal/obs/timeseries"
	"counterlight/internal/trace"
)

// TestMetricsMatchLegacyStats is the observability layer's ground
// truth: on one run, the registry's snapshot must agree exactly with
// the legacy Stats()-style accessors and Result fields fed by the
// same instruments.
func TestMetricsMatchLegacyStats(t *testing.T) {
	o := obs.NewObserver(1 << 12)
	cfg := fastCfg(CounterMode)
	cfg.WarmupTime = 0 // window == whole run, so history and counters align
	cfg.Obs = o
	w, ok := trace.ByName("mcf")
	if !ok {
		t.Fatal("mcf workload missing")
	}
	res, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	snap := o.Metrics.Snapshot()
	lbl := obs.L("scheme", "countermode")

	if got := snap.Value("sim_instructions_total", lbl); got != float64(res.Instructions) {
		t.Errorf("sim_instructions_total = %v, Result.Instructions = %d", got, res.Instructions)
	}
	if got := snap.Value("sim_llc_misses_total", lbl); got != float64(res.LLCMisses) {
		t.Errorf("sim_llc_misses_total = %v, Result.LLCMisses = %d", got, res.LLCMisses)
	}
	if got := snap.Value("dram_reads_total", lbl); got != float64(res.DRAM.Reads) {
		t.Errorf("dram_reads_total = %v, Result.DRAM.Reads = %d", got, res.DRAM.Reads)
	}
	if got := snap.Value("dram_writes_total", lbl); got != float64(res.DRAM.Writes) {
		t.Errorf("dram_writes_total = %v, Result.DRAM.Writes = %d", got, res.DRAM.Writes)
	}

	// Memo hits/misses: every table lookup happens on the simulator's
	// read path, so the table's counters and the window counters are
	// two views of the same stream.
	hits := snap.Value("memo_hits_total", lbl)
	misses := snap.Value("memo_misses_total", lbl)
	if hits != snap.Value("sim_memo_read_hits_total", lbl) {
		t.Errorf("memo_hits_total = %v != sim_memo_read_hits_total = %v",
			hits, snap.Value("sim_memo_read_hits_total", lbl))
	}
	if hits+misses == 0 {
		t.Fatal("no memo lookups recorded; workload too small for the parity check")
	}
	if rate := hits / (hits + misses); rate != res.MemoHitRate {
		t.Errorf("registry memo hit rate = %v, Result.MemoHitRate = %v", rate, res.MemoHitRate)
	}

	// Epoch mode switches: with no warmup, the monitor's window
	// counter must equal the timeline's mid-epoch switch count.
	var histSwitches float64
	for _, rec := range res.EpochHistory {
		if rec.SwitchedMid {
			histSwitches++
		}
	}
	if got := snap.Value("epoch_mid_switches_total", lbl); got != histSwitches {
		t.Errorf("epoch_mid_switches_total = %v, EpochHistory switches = %v", got, histSwitches)
	}

	// Counter-arrival histogram: registry and Result views of the
	// same bins.
	hs, ok := snap.Get("sim_counter_late_ps", lbl)
	if !ok {
		t.Fatal("sim_counter_late_ps missing from snapshot")
	}
	if hs.Value != float64(res.CounterLateHist.Total()) {
		t.Errorf("histogram total = %v, Result hist total = %d", hs.Value, res.CounterLateHist.Total())
	}
	resBins := res.CounterLateHist.Bins()
	for i := range resBins {
		if hs.Counts[i] != resBins[i] {
			t.Errorf("histogram bin %d = %d, Result bin = %d", i, hs.Counts[i], resBins[i])
		}
	}

	// The exposition paths must accept a real run's registry.
	var prom, js bytes.Buffer
	if err := snap.WritePrometheus(&prom); err != nil {
		t.Fatalf("prometheus exposition: %v", err)
	}
	if err := snap.WriteJSON(&js); err != nil {
		t.Fatalf("json exposition: %v", err)
	}
	if _, err := obs.ReadSnapshot(bytes.NewReader(js.Bytes())); err != nil {
		t.Fatalf("json round trip: %v", err)
	}
}

// TestTraceProducesPerfettoLoadableJSON runs with tracing on and
// checks the export is valid trace_event JSON with pipeline events.
func TestTraceProducesPerfettoLoadableJSON(t *testing.T) {
	o := obs.NewObserver(1 << 14)
	cfg := fastCfg(CounterLight)
	cfg.Obs = o
	w, _ := trace.ByName("mcf")
	if _, err := Run(cfg, w); err != nil {
		t.Fatal(err)
	}
	if o.Trace.Len() == 0 {
		t.Fatal("no trace events recorded")
	}
	var buf bytes.Buffer
	if err := o.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	names := make(map[string]int)
	for _, e := range doc.TraceEvents {
		names[e.Name]++
	}
	for _, want := range []string{"memo_hit", "event_queue_depth", "bus_backlog_ps"} {
		if names[want] == 0 {
			t.Errorf("no %q events in trace (have %v)", want, names)
		}
	}
}

// TestObservabilityDoesNotPerturbResults: a run with full
// observability enabled must produce bit-identical measurements to a
// bare run.
func TestObservabilityDoesNotPerturbResults(t *testing.T) {
	cfg := fastCfg(CounterLight)
	w, _ := trace.ByName("omnetpp")
	bare, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Obs = obs.NewObserver(1 << 12)
	cfg.Progress = func(ProgressInfo) {}
	observed, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Instructions != observed.Instructions || bare.LLCMisses != observed.LLCMisses ||
		bare.DRAM != observed.DRAM || bare.AvgMissLatNS != observed.AvgMissLatNS {
		t.Errorf("observability changed the run:\nbare:     %v\nobserved: %v", bare, observed)
	}
	if len(bare.EpochHistory) != len(observed.EpochHistory) {
		t.Errorf("epoch history diverged: %d vs %d records",
			len(bare.EpochHistory), len(observed.EpochHistory))
	}
}

// TestEpochPublisherDoesNotPerturbResults extends the observability
// invariant to the live-telemetry seam: attaching an epoch publisher
// (the timeseries recorder) must leave the Result bit-identical, while
// the recorder sees one well-formed sample per closed epoch.
func TestEpochPublisherDoesNotPerturbResults(t *testing.T) {
	cfg := fastCfg(CounterLight)
	cfg.BandwidthGBs = 6.4 // starve the channel so modes actually switch
	w, _ := trace.ByName("mcf")
	bare, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}

	rec := timeseries.NewRecorder(0)
	cfg.Epochs = rec
	cfg.Obs = obs.NewObserver(0)
	observed, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Instructions != observed.Instructions || bare.LLCMisses != observed.LLCMisses ||
		bare.DRAM != observed.DRAM || bare.AvgMissLatNS != observed.AvgMissLatNS ||
		bare.WBCounterless != observed.WBCounterless || bare.WBTotal != observed.WBTotal {
		t.Errorf("epoch publisher changed the run:\nbare:     %v\nobserved: %v", bare, observed)
	}

	ss := rec.Samples()
	if len(ss) == 0 {
		t.Fatal("recorder saw no epoch samples")
	}
	if len(ss) != len(observed.EpochHistory) {
		t.Errorf("recorder has %d samples, EpochHistory %d records", len(ss), len(observed.EpochHistory))
	}
	for i, s := range ss {
		if s.Epoch != uint64(i+1) {
			t.Fatalf("sample %d has epoch index %d", i, s.Epoch)
		}
		if h := observed.EpochHistory[i]; s.Utilization != h.Utilization ||
			s.Mode != h.StartMode.String() || s.SwitchedMid != h.SwitchedMid {
			t.Fatalf("sample %d disagrees with EpochHistory: %+v vs %+v", i, s, h)
		}
		if i > 0 && (s.TS <= ss[i-1].TS || s.MetaReads < ss[i-1].MetaReads ||
			s.ModeSwitches < ss[i-1].ModeSwitches) {
			t.Fatalf("sample %d not monotonic after %d", i, i-1)
		}
	}
	last := ss[len(ss)-1]
	if last.ModeSwitches == 0 {
		t.Error("no mode switches observed on the starved channel")
	}

	// The overhead-traffic counters are registered on the registry too.
	snap := cfg.Obs.Metrics.Snapshot()
	if got := snap.Value("sim_meta_reads_total", obs.L("scheme", "counterlight")); got != float64(last.MetaReads) {
		t.Errorf("sim_meta_reads_total = %v, last sample MetaReads = %d", got, last.MetaReads)
	}
}

// TestEpochSampleMetaTraffic: a counter-fetching scheme's samples must
// carry its counter-block/tree overhead traffic.
func TestEpochSampleMetaTraffic(t *testing.T) {
	cfg := fastCfg(CounterMode)
	rec := timeseries.NewRecorder(0)
	cfg.Epochs = rec
	w, _ := trace.ByName("mcf")
	if _, err := Run(cfg, w); err != nil {
		t.Fatal(err)
	}
	last, ok := rec.Last()
	if !ok {
		t.Fatal("no samples recorded")
	}
	if last.MetaReads == 0 {
		t.Error("countermode run recorded no counter/tree overhead reads")
	}
	if last.MemoHitRate == 0 {
		t.Error("countermode run recorded no RMCC hit rate")
	}
}

// TestStartWindowResetsCounterHist is the regression test for the
// warmup-pollution bug: startWindow reset dram/memo/missLat but left
// s.ctrHist holding warmup samples, skewing the Fig. 8 histogram.
func TestStartWindowResetsCounterHist(t *testing.T) {
	cfg := fastCfg(CounterMode)
	s := &simulator{cfg: cfg}
	s.o = obs.NewObserver(0)

	var err error
	if s.dram, err = dram.New(dram.DefaultConfig(cfg.BandwidthGBs)); err != nil {
		t.Fatal(err)
	}
	if s.mon, err = epoch.NewMonitor(cfg.EpochLen, s.dram.BurstTime(), cfg.Threshold); err != nil {
		t.Fatal(err)
	}
	s.memo = memoize.New(16, 0, func(c uint64) mix.Word { return mix.Word{Hi: c} })
	if s.l3, err = cache.New(4096, 64, 4); err != nil {
		t.Fatal(err)
	}
	if s.ctrC, err = cache.New(4096, 64, 4); err != nil {
		t.Fatal(err)
	}
	if s.ctrHist, err = obs.NewHistogram(0, 5*ns, 10*ns); err != nil {
		t.Fatal(err)
	}

	// Warmup-phase samples.
	s.ctrHist.Add(-2 * ns)
	s.ctrHist.Add(7 * ns)
	s.ctrHist.Add(20 * ns)
	s.instr.Add(5)
	s.mon.Record(0)

	s.startWindow()

	if got := s.ctrHist.Total(); got != 0 {
		t.Errorf("counter-arrival histogram kept %d warmup samples across startWindow", got)
	}
	if got := s.instr.Value(); got != 0 {
		t.Errorf("instruction counter kept %d across startWindow", got)
	}
	if !s.measuring {
		t.Error("startWindow did not enter measurement mode")
	}
}

package core

import (
	"fmt"

	"counterlight/internal/cache"
	"counterlight/internal/crypto/mix"
	"counterlight/internal/ctrblock"
	"counterlight/internal/dram"
	"counterlight/internal/energy"
	"counterlight/internal/epoch"
	"counterlight/internal/memoize"
	"counterlight/internal/obs"
	"counterlight/internal/sim"
	"counterlight/internal/stats"
	"counterlight/internal/trace"

	"strconv"
)

// Result is the measurement of one simulated window.
type Result struct {
	Scheme   Scheme
	Workload string

	WindowPS     int64
	Instructions uint64
	IPC          float64 // per core at 3.2 GHz

	LLCMisses     uint64
	LLCWritebacks uint64
	AvgMissLatNS  float64 // demand LLC miss latency, MC arrival -> data usable

	DRAM           dram.Stats
	BusUtilization float64
	EnergyPJ       float64
	EnergyPerInst  float64

	MemoHitRate float64

	// Counter-arrival distribution for counter-fetching schemes
	// (Fig. 8): counter-known time minus data-arrival time, one sample
	// per demand LLC miss. Bin edges in ns: <=0, (0,5], (5,10], >10.
	CounterLateHist *stats.Histogram
	CounterLateFrac float64 // fraction of misses where the counter arrived after the data

	// Writeback mode mix (Fig. 21), Counter-light only.
	WBCounterless uint64
	WBTotal       uint64

	// EpochHistory is the closed-epoch timeline from the bandwidth
	// monitor (whole run including warmup): per-epoch utilization and
	// writeback-mode decisions.
	EpochHistory []epoch.Record
}

// CounterlessWBFraction returns the share of writebacks that used
// counterless mode.
func (r Result) CounterlessWBFraction() float64 {
	if r.WBTotal == 0 {
		return 0
	}
	return float64(r.WBCounterless) / float64(r.WBTotal)
}

// PerfNormalizedTo divides this run's instruction throughput by a
// baseline run's — the paper's "performance normalized to X".
func (r Result) PerfNormalizedTo(base Result) float64 {
	if base.Instructions == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(base.Instructions)
}

// coreState is one simulated core's architectural state.
type coreState struct {
	stream       trace.Stream
	time         int64
	outstanding  []int64 // completion times of in-flight loads
	lastLoadDone int64
	done         bool
}

// event is one schedulable action. Everything that touches DRAM runs
// through the time-ordered queue so state mutations happen in (near)
// timestamp order: the FCFS bus and bank model would otherwise charge
// earlier requests for later-issued traffic that happened to be
// processed first.
type event struct {
	kind  int    // see evKind constants
	core  int    // evCore only
	addr  uint64 // data address (or write address for evDRAMWrite)
	level int    // evTreeWalk: next tree level to touch
	dirty bool   // evTreeWalk: writeback walk (dirty) vs read verify
}

const (
	evCore      = iota // a core issues its next op
	evWriteback        // an LLC writeback arrives at the MC
	evCounter          // counter-block update for a writeback
	evTreeWalk         // one integrity-tree level of a walk
	evDRAMWrite        // a posted DRAM write (dirty metadata eviction)
	evSample           // periodic observability sample (trace/progress)
)

// samplePeriod is how often the tracer samples queue depths (10 µs:
// ten samples per 100 µs epoch).
const samplePeriod = 10 * us

// simulator wires the hierarchy together for one run. All state is
// strictly per-run (the struct and everything it owns), so concurrent
// Run calls never share mutable state.
type simulator struct {
	cfg    Config
	q      sim.Queue[event]
	cores  []coreState
	l1, l2 []*cache.Cache
	pf     []cache.Prefetcher
	l3     *cache.Cache
	ctrC   *cache.Cache
	dram   *dram.Channel
	mon    *epoch.Monitor
	memo   *memoize.Table
	layout *ctrblock.Store // address geometry for counter/tree blocks

	// pipe is the scheme's MC pipeline: all per-scheme read/write
	// timing behavior lives behind it (see scheme.go).
	pipe SchemePipeline

	measuring bool
	missLat   stats.Accumulator

	// Window-scoped counters, registered in the observer's registry
	// (result() and the legacy accessors are views over them).
	instr     obs.Counter
	ctrHist   *obs.Histogram
	llcMiss   obs.Counter
	llcWB     obs.Counter
	wbCls     obs.Counter
	wbTotal   obs.Counter
	memoHitsW obs.Counter // window-scoped memo lookups on the read path
	memoRefsW obs.Counter

	// Observability plumbing (never affects timing).
	o             *obs.Observer
	tr            *obs.Tracer // nil when tracing is off
	now           int64       // timestamp of the event being processed
	qDepth        *obs.Gauge
	busBacklog    *obs.Gauge
	sampleEvery   int64 // 0 disables the evSample stream
	progressEvery int64
	lastProgress  int64

	// Live telemetry: pub receives one EpochSample per closed epoch
	// (nil when no recorder/server is attached, costing nothing).
	// metaReads/metaWrites count the scheme's counter-block and
	// integrity-tree DRAM traffic over the whole run — run-scoped,
	// like the epoch timeline, so adjacent samples difference cleanly.
	pub          obs.Publisher
	metaReads    obs.Counter
	metaWrites   obs.Counter
	modeSwitches uint64     // cumulative mode transitions (boundary + mid-epoch)
	lastEndMode  epoch.Mode // mode in effect when the previous epoch closed
	eccTrials    *obs.Histogram
}

// Run simulates the workload under the configuration and returns the
// measurement-window results. Run keeps no state outside the local
// simulator value, so it is safe to call concurrently from multiple
// goroutines (sweep runners fan scheme×workload matrices out across
// cores); concurrent runs sharing one cfg.Obs registry must use
// distinct scheme labels, as RunPair does.
func Run(cfg Config, w trace.Workload) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	s := &simulator{cfg: cfg}
	s.o = cfg.Obs
	if s.o == nil {
		s.o = obs.NewObserver(0)
	}
	s.tr = s.o.Trace
	s.pub = cfg.Epochs

	var err error
	if s.l3, err = cache.New(cfg.L3Size, cfg.BlockSize, cfg.L3Ways); err != nil {
		return Result{}, err
	}
	if s.ctrC, err = cache.New(cfg.CounterCacheSize, cfg.BlockSize, cfg.CounterCacheWays); err != nil {
		return Result{}, err
	}
	dcfg := dram.DefaultConfig(cfg.BandwidthGBs)
	if cfg.RefreshEnabled {
		dcfg.TREFI = 3_900_000 // 3.9 µs
		dcfg.TRFC = 350_000    // 350 ns
	}
	if s.dram, err = dram.New(dcfg); err != nil {
		return Result{}, err
	}
	if s.mon, err = epoch.NewMonitor(cfg.EpochLen, s.dram.BurstTime(), cfg.Threshold); err != nil {
		return Result{}, err
	}
	if s.layout, err = ctrblock.New(cfg.MemorySize, cfg.BlockSize); err != nil {
		return Result{}, err
	}
	// The timing model does not need real AES results; a cheap mixer
	// keeps the table's values distinct.
	s.memo = memoize.New(cfg.MemoEntries, 0, func(c uint64) mix.Word {
		return mix.Word{Hi: c * 0x9e3779b97f4a7c15, Lo: ^c}
	})
	s.ctrHist, err = obs.NewHistogram(0, 5*ns, 10*ns)
	if err != nil {
		return Result{}, err
	}
	if s.pipe, err = newSchemePipeline(&s.cfg, s); err != nil {
		return Result{}, err
	}

	streams := w.NewStreams(cfg.Seed, cfg.Cores)
	s.cores = make([]coreState, cfg.Cores)
	s.l1 = make([]*cache.Cache, cfg.Cores)
	s.l2 = make([]*cache.Cache, cfg.Cores)
	s.pf = make([]cache.Prefetcher, cfg.Cores)
	for c := 0; c < cfg.Cores; c++ {
		s.cores[c].stream = streams[c]
		if s.l1[c], err = cache.New(cfg.L1Size, cfg.BlockSize, cfg.L1Ways); err != nil {
			return Result{}, err
		}
		if s.l2[c], err = cache.New(cfg.L2Size, cfg.BlockSize, cfg.L2Ways); err != nil {
			return Result{}, err
		}
		s.pf[c] = &cache.Composite{Prefetchers: []cache.Prefetcher{
			cache.NewNextLine(cfg.BlockSize, 2),
			cache.NewStride(cfg.BlockSize, 2),
		}}
	}

	s.registerMetrics()

	warmupEnd := cfg.WarmupTime
	end := cfg.WarmupTime + cfg.WindowTime

	s.progressEvery = cfg.ProgressEvery
	if s.progressEvery <= 0 {
		s.progressEvery = ms
	}
	if s.tr != nil {
		s.sampleEvery = samplePeriod
	}
	if cfg.Progress != nil && (s.sampleEvery == 0 || s.progressEvery < s.sampleEvery) {
		s.sampleEvery = s.progressEvery
	}
	if s.sampleEvery > 0 {
		s.q.Push(s.sampleEvery, event{kind: evSample})
	}

	for c := range s.cores {
		s.q.Push(0, event{kind: evCore, core: c})
	}
	for {
		t, e, ok := s.q.Pop()
		if !ok {
			break
		}
		s.now = t
		if !s.measuring && t >= warmupEnd {
			s.startWindow()
		}
		switch e.kind {
		case evCore:
			if t >= end {
				s.cores[e.core].done = true
				continue
			}
			next := s.step(e.core)
			s.q.Push(next, event{kind: evCore, core: e.core})
		case evWriteback:
			// Posted traffic drains even past the window end so queued
			// work settles deterministically.
			s.mcWrite(e.addr, t)
		case evCounter:
			s.pipe.CounterUpdate(e.addr, t)
		case evTreeWalk:
			s.pipe.TreeWalkStep(e.addr, e.level, e.dirty, t)
		case evDRAMWrite:
			s.mon.Record(t)
			s.metaWrites.Inc()
			s.dram.Access(e.addr, t, true)
		case evSample:
			s.sample(t)
			if t < end {
				s.q.Push(t+s.sampleEvery, event{kind: evSample})
			}
		}
	}

	return s.result(w.Name), nil
}

// registerMetrics exposes every subsystem's counters through the
// observer's registry, labeled with the scheme so normalized pairs
// (RunPair, clsim -baseline) can share one registry, and wires the
// tracer into the components that emit events from inside.
func (s *simulator) registerMetrics() {
	reg := s.o.Metrics
	lbl := obs.L("scheme", s.cfg.Scheme.String())
	reg.RegisterCounter("sim_instructions_total", &s.instr, lbl)
	reg.RegisterCounter("sim_llc_misses_total", &s.llcMiss, lbl)
	reg.RegisterCounter("sim_llc_writebacks_total", &s.llcWB, lbl)
	reg.RegisterCounter("sim_wb_total", &s.wbTotal, lbl)
	reg.RegisterCounter("sim_wb_counterless_total", &s.wbCls, lbl)
	reg.RegisterCounter("sim_memo_read_hits_total", &s.memoHitsW, lbl)
	reg.RegisterCounter("sim_memo_read_refs_total", &s.memoRefsW, lbl)
	reg.RegisterHistogram("sim_counter_late_ps", s.ctrHist, lbl)
	s.qDepth = reg.Gauge("sim_event_queue_depth", lbl)
	s.busBacklog = reg.Gauge("sim_dram_bus_backlog_ps", lbl)

	s.dram.RegisterMetrics(reg, lbl)
	s.mon.RegisterMetrics(reg, lbl)
	s.memo.RegisterMetrics(reg, lbl)
	s.l3.RegisterMetrics(reg, lbl, obs.L("level", "l3"))
	s.ctrC.RegisterMetrics(reg, lbl, obs.L("level", "counter"))
	for c := range s.l1 {
		core := obs.L("core", strconv.Itoa(c))
		s.l1[c].RegisterMetrics(reg, lbl, obs.L("level", "l1"), core)
		s.l2[c].RegisterMetrics(reg, lbl, obs.L("level", "l2"), core)
	}

	reg.RegisterCounter("sim_meta_reads_total", &s.metaReads, lbl)
	reg.RegisterCounter("sim_meta_writes_total", &s.metaWrites, lbl)
	s.tr.RegisterMetrics(reg)

	// ECC trial distribution for the telemetry samples: present only
	// when a functional Engine shares this registry (the timing model
	// runs no correction trials itself).
	s.eccTrials = reg.FindHistogram("engine_ecc_trials", lbl)

	s.mon.SetTracer(s.tr)
	if s.pub != nil {
		s.mon.SetBoundaryHook(s.publishEpoch)
	}
	if s.tr != nil {
		s.memo.SetEvictHook(func(key uint32) {
			s.tr.Emit(s.now, obs.PhaseInstant, obs.CatMemo, "memo_evict",
				obs.A("counter", int64(key)))
		})
	}
}

// publishEpoch assembles and publishes the closed epoch's telemetry
// sample. It runs inside the monitor's roll and only reads simulator
// state, so — like the tracer — it cannot perturb the run.
func (s *simulator) publishEpoch(boundary int64, index uint64, rec epoch.Record) {
	if rec.StartMode != s.lastEndMode {
		s.modeSwitches++ // epoch-boundary transition
	}
	endMode := rec.StartMode
	if rec.SwitchedMid {
		endMode = epoch.Counterless
		s.modeSwitches++
	}
	s.lastEndMode = endMode

	es := obs.EpochSample{
		TS:           boundary,
		Epoch:        index,
		Utilization:  rec.Utilization,
		Mode:         rec.StartMode.String(),
		SwitchedMid:  rec.SwitchedMid,
		ModeSwitches: s.modeSwitches,
		MetaReads:    s.metaReads.Value(),
		MetaWrites:   s.metaWrites.Value(),
		QueueDepth:   int64(s.q.Len()),
		BusBacklogPS: s.dram.BusBacklog(boundary),
		Instructions: s.instr.Value(),
		Measuring:    s.measuring,
	}
	if refs := s.memoRefsW.Value(); refs > 0 {
		es.MemoHitRate = float64(s.memoHitsW.Value()) / float64(refs)
	}
	if s.eccTrials != nil {
		es.ECCTrials = s.eccTrials.Bins()
	}
	if s.measuring {
		if cycles := float64(boundary-s.cfg.WarmupTime) / 312.0; cycles > 0 {
			es.IPC = float64(es.Instructions) / float64(s.cfg.Cores) / cycles
		}
	}
	s.pub.PublishEpoch(es)
}

// sample is the periodic observability tick: queue-depth gauges and
// counter tracks for the tracer, plus the progress callback. It only
// reads simulator state, so it cannot perturb the run.
func (s *simulator) sample(t int64) {
	depth := int64(s.q.Len())
	backlog := s.dram.BusBacklog(t)
	s.qDepth.Set(depth)
	s.busBacklog.Set(backlog)
	s.tr.Emit(t, obs.PhaseCounter, obs.CatSim, "event_queue_depth", obs.A("value", depth))
	s.tr.Emit(t, obs.PhaseCounter, obs.CatDRAM, "bus_backlog_ps", obs.A("value", backlog))
	if s.cfg.Progress != nil && t-s.lastProgress >= s.progressEvery {
		s.lastProgress = t
		p := ProgressInfo{
			SimPS:        t,
			Measuring:    s.measuring,
			Instructions: s.instr.Value(),
			Mode:         s.mon.CurrentMode(),
		}
		if s.measuring {
			if cycles := float64(t-s.cfg.WarmupTime) / 312.0; cycles > 0 {
				p.IPC = float64(p.Instructions) / float64(s.cfg.Cores) / cycles
			}
		}
		s.cfg.Progress(p)
	}
}

// startWindow resets all window-scoped statistics at the end of warmup.
func (s *simulator) startWindow() {
	s.measuring = true
	s.dram.ResetStats()
	s.memo.ResetStats()
	s.mon.ResetStats()
	s.l3.ResetStats()
	s.ctrC.ResetStats()
	for c := range s.l1 {
		s.l1[c].ResetStats()
		s.l2[c].ResetStats()
	}
	s.instr.Reset()
	s.missLat = stats.Accumulator{}
	// Warmup samples must not pollute the Fig. 8 counter-arrival
	// histogram.
	s.ctrHist.Reset()
	s.llcMiss.Reset()
	s.llcWB.Reset()
	s.wbCls.Reset()
	s.wbTotal.Reset()
	s.memoHitsW.Reset()
	s.memoRefsW.Reset()
}

// step executes one op on core c and returns the core's next-ready time.
func (s *simulator) step(c int) int64 {
	core := &s.cores[c]
	op := core.stream.Next(core.time)
	t := core.time + op.Think
	if op.Dependent && core.lastLoadDone > t {
		t = core.lastLoadDone
	}
	// Retire completed loads; block when the MLP window is full.
	s.retire(core, t)
	if len(core.outstanding) >= s.cfg.MLP {
		earliest := core.outstanding[0]
		for _, v := range core.outstanding {
			if v < earliest {
				earliest = v
			}
		}
		if earliest > t {
			t = earliest
		}
		s.retire(core, t)
	}

	done := s.access(c, op.Addr, op.Write, op.PC, t)
	if !op.Write {
		core.outstanding = append(core.outstanding, done)
		core.lastLoadDone = done
	}
	if s.measuring {
		s.instr.Add(op.Instr)
	}
	// One issue slot per op (3.2 GHz cycle).
	core.time = t + 312
	return core.time
}

func (s *simulator) retire(core *coreState, now int64) {
	kept := core.outstanding[:0]
	for _, v := range core.outstanding {
		if v > now {
			kept = append(kept, v)
		}
	}
	core.outstanding = kept
}

// access walks the cache hierarchy and returns when the data is usable.
func (s *simulator) access(c int, addr uint64, write bool, pc uint64, t int64) int64 {
	cfg := &s.cfg
	addr -= addr % cfg.BlockSize

	// L1.
	t1 := t + cfg.L1Lat
	if write {
		if hit, ready := s.l1[c].Write(addr, t1); hit {
			return ready
		}
	} else if hit, ready := s.l1[c].Lookup(addr, t1); hit {
		return ready
	}

	// L1 miss: train prefetchers on the demand stream.
	if cfg.PrefetchEnabled {
		for _, pa := range s.pf[c].Observe(addr, pc) {
			s.prefetch(c, pa, t1)
		}
	}

	// L2.
	t2 := t1 + cfg.L2Lat
	if hit, ready := s.l2[c].Lookup(addr, t2); hit {
		s.fillL1(c, addr, ready, write)
		return ready
	}

	// L3.
	t3 := t2 + cfg.L3Lat
	if hit, ready := s.l3.Lookup(addr, t3); hit {
		s.fillL2(c, addr, ready)
		s.fillL1(c, addr, ready, write)
		return ready
	}

	// Demand LLC miss -> memory controller.
	ready := s.mcRead(addr, t3, true)
	s.fillL3(addr, ready)
	s.fillL2(c, addr, ready)
	s.fillL1(c, addr, ready, write)
	return ready
}

// prefetch issues a non-blocking fill into L2/L3 if absent everywhere.
func (s *simulator) prefetch(c int, addr uint64, t int64) {
	addr -= addr % s.cfg.BlockSize
	if s.l2[c].Contains(addr) || s.l3.Contains(addr) {
		return
	}
	ready := s.mcRead(addr, t+s.cfg.L2Lat, false)
	s.fillL3(addr, ready)
	s.fillL2(c, addr, ready)
}

func (s *simulator) fillL1(c int, addr uint64, ready int64, dirty bool) {
	if ev, ok := s.l1[c].Insert(addr, ready, dirty); ok && ev.Dirty {
		// Dirty L1 victim moves to L2 (mark or allocate dirty there).
		s.l2[c].Insert(ev.Addr, ready, true)
	}
}

func (s *simulator) fillL2(c int, addr uint64, ready int64) {
	if ev, ok := s.l2[c].Insert(addr, ready, false); ok && ev.Dirty {
		s.l3.Insert(ev.Addr, ready, true)
	}
}

func (s *simulator) fillL3(addr uint64, ready int64) {
	if ev, ok := s.l3.Insert(addr, ready, false); ok && ev.Dirty {
		// Post the writeback; it reaches the MC at the fill time and
		// is processed in global time order.
		s.q.Push(ready, event{kind: evWriteback, addr: ev.Addr})
	}
}

// mcRead is the memory controller's LLC-read-miss path: DRAM access
// plus the scheme pipeline's decryption timing (Figs. 7 and 13).
func (s *simulator) mcRead(addr uint64, tm int64, demand bool) int64 {
	s.mon.Record(tm)
	dataDone := s.dram.Access(addr, tm, false)
	ready := s.pipe.ReadMiss(addr, tm, dataDone, demand)
	if demand && s.measuring {
		s.llcMiss.Inc()
		s.missLat.Add(ready - tm)
	}
	return ready
}

// mcWrite is the LLC-writeback path (posted: consumes bandwidth, never
// stalls the core). The data write is charged here; the scheme
// pipeline adds its metadata traffic.
func (s *simulator) mcWrite(addr uint64, tw int64) {
	s.mon.Record(tw)
	s.dram.Access(addr, tw, true)
	if s.measuring {
		s.llcWB.Inc()
	}
	s.pipe.Writeback(addr, tw)
}

// traceMemo emits the memoization hit/miss event stream.
func (s *simulator) traceMemo(ctr uint32, hit bool) {
	if s.tr == nil {
		return
	}
	name := "memo_miss"
	if hit {
		name = "memo_hit"
	}
	s.tr.Emit(s.now, obs.PhaseInstant, obs.CatMemo, name, obs.A("counter", int64(ctr)))
}

// The simulator is the MCContext its scheme pipeline runs against.

func (s *simulator) Config() *Config { return &s.cfg }
func (s *simulator) Measuring() bool { return s.measuring }

func (s *simulator) DRAMRead(addr uint64, t int64) int64 {
	s.mon.Record(t)
	s.metaReads.Inc()
	return s.dram.Access(addr, t, false)
}

func (s *simulator) PostDRAMWrite(t int64, addr uint64) {
	s.q.Push(t, event{kind: evDRAMWrite, addr: addr})
}

func (s *simulator) PostCounterUpdate(t int64, addr uint64) {
	s.q.Push(t, event{kind: evCounter, addr: addr})
}

func (s *simulator) PostTreeWalk(t int64, addr uint64, level int, dirty bool) {
	s.q.Push(t, event{kind: evTreeWalk, addr: addr, level: level, dirty: dirty})
}

func (s *simulator) CounterCache() *cache.Cache { return s.ctrC }
func (s *simulator) Layout() *ctrblock.Store    { return s.layout }

func (s *simulator) MemoLookup(ctr uint32) bool {
	_, hit := s.memo.Lookup(ctr)
	s.traceMemo(ctr, hit)
	if s.measuring {
		s.memoRefsW.Inc()
		if hit {
			s.memoHitsW.Inc()
		}
	}
	return hit
}

func (s *simulator) NextWriteCounter(old uint32) uint32 {
	return s.memo.NextWriteCounter(old)
}

func (s *simulator) WritebackMode(t int64) epoch.Mode {
	return s.mon.WritebackMode(t)
}

func (s *simulator) CounterArrival(delta int64) {
	if s.measuring {
		s.ctrHist.Add(delta)
	}
}

func (s *simulator) CountWriteback(counterless bool) {
	if !s.measuring {
		return
	}
	s.wbTotal.Inc()
	if counterless {
		s.wbCls.Inc()
	}
}

// result assembles the window measurement.
func (s *simulator) result(workload string) Result {
	cfg := &s.cfg
	d := s.dram.Stats()
	meter, _ := energy.NewMeter(energy.DefaultParams())
	for i := uint64(0); i < d.RowMisses+d.RowConflicts; i++ {
		meter.AddActivate()
	}
	for i := uint64(0); i < d.Reads; i++ {
		meter.AddRead()
	}
	for i := uint64(0); i < d.Writes; i++ {
		meter.AddWrite()
	}
	totalPJ := meter.TotalPJ(cfg.WindowTime)

	ctrHist, _ := stats.FromBins(s.ctrHist.Edges(), s.ctrHist.Bins())
	r := Result{
		Scheme:          cfg.Scheme,
		Workload:        workload,
		WindowPS:        cfg.WindowTime,
		Instructions:    s.instr.Value(),
		IPC:             float64(s.instr.Value()) / float64(cfg.Cores) / (float64(cfg.WindowTime) / 312.0),
		LLCMisses:       s.llcMiss.Value(),
		LLCWritebacks:   s.llcWB.Value(),
		AvgMissLatNS:    s.missLat.Mean() / 1000.0,
		DRAM:            d,
		BusUtilization:  float64(d.BusBusyPS) / float64(cfg.WindowTime),
		EnergyPJ:        totalPJ,
		CounterLateHist: ctrHist,
		WBCounterless:   s.wbCls.Value(),
		WBTotal:         s.wbTotal.Value(),
	}
	if r.Instructions > 0 {
		r.EnergyPerInst = totalPJ / float64(r.Instructions)
	}
	if s.memoRefsW.Value() > 0 {
		r.MemoHitRate = float64(s.memoHitsW.Value()) / float64(s.memoRefsW.Value())
	}
	if ctrHist.Total() > 0 {
		r.CounterLateFrac = ctrHist.FractionAbove(0)
	}
	if r.BusUtilization > 1 {
		r.BusUtilization = 1
	}
	r.EpochHistory = s.mon.History()
	return r
}

// RunPair is a convenience for normalized results: it runs the scheme
// and the NoEnc baseline on the same workload and seed.
func RunPair(cfg Config, w trace.Workload) (scheme, baseline Result, err error) {
	scheme, err = Run(cfg, w)
	if err != nil {
		return
	}
	base := cfg
	base.Scheme = NoEnc
	baseline, err = Run(base, w)
	return
}

// String summarizes a result for logs.
func (r Result) String() string {
	return fmt.Sprintf("%s/%s: instr=%d ipc=%.3f llcMiss=%d wb=%d missLat=%.1fns util=%.2f",
		r.Workload, r.Scheme, r.Instructions, r.IPC, r.LLCMisses, r.LLCWritebacks,
		r.AvgMissLatNS, r.BusUtilization)
}

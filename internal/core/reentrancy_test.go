package core

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"counterlight/internal/trace"
)

// reentrancyCfg is fastCfg with an even smaller window so the
// concurrent matrix stays cheap under -race.
func reentrancyCfg(scheme Scheme, seed int64) Config {
	cfg := fastCfg(scheme)
	cfg.WarmupTime = 200 * us
	cfg.WindowTime = 300 * us
	cfg.Seed = seed
	return cfg
}

// sameResult compares every Result field a figure can read, including
// the counter-arrival histogram bins and the epoch timeline.
func sameResult(t *testing.T, label string, got, want Result) {
	t.Helper()
	gotHist, wantHist := got.CounterLateHist, want.CounterLateHist
	got.CounterLateHist, want.CounterLateHist = nil, nil
	gotEpochs, wantEpochs := got.EpochHistory, want.EpochHistory
	got.EpochHistory, want.EpochHistory = nil, nil
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: concurrent result diverged:\n got %+v\nwant %+v", label, got, want)
	}
	if !reflect.DeepEqual(gotHist.Bins(), wantHist.Bins()) {
		t.Errorf("%s: histogram bins diverged: %v vs %v", label, gotHist.Bins(), wantHist.Bins())
	}
	if !reflect.DeepEqual(gotEpochs, wantEpochs) {
		t.Errorf("%s: epoch history diverged (%d vs %d records)",
			label, len(gotEpochs), len(wantEpochs))
	}
}

// TestRunConcurrentMatchesSequential is the re-entrancy check: Run for
// every scheme at once, from multiple goroutines, must produce exactly
// the results the same configs produce one at a time. Run with -race
// (make race does) this also proves the runs share no mutable state.
func TestRunConcurrentMatchesSequential(t *testing.T) {
	schemes := []Scheme{NoEnc, Counterless, CounterMode, CounterLight}
	w, ok := trace.ByName("mcf")
	if !ok {
		t.Fatal("workload mcf missing")
	}

	seq := make([]Result, len(schemes))
	for i, sc := range schemes {
		var err error
		if seq[i], err = Run(reentrancyCfg(sc, 1), w); err != nil {
			t.Fatal(err)
		}
	}

	conc := make([]Result, len(schemes))
	errs := make([]error, len(schemes))
	var wg sync.WaitGroup
	for i, sc := range schemes {
		wg.Add(1)
		go func(i int, sc Scheme) {
			defer wg.Done()
			conc[i], errs[i] = Run(reentrancyCfg(sc, 1), w)
		}(i, sc)
	}
	wg.Wait()

	for i, sc := range schemes {
		if errs[i] != nil {
			t.Fatalf("%s: %v", sc, errs[i])
		}
		sameResult(t, sc.String(), conc[i], seq[i])
	}
}

// TestRunSeedsParallelMatchesSequential checks the worker-pool seed
// sweep reports the identical per-seed distribution in the identical
// order as the serial sweep.
func TestRunSeedsParallelMatchesSequential(t *testing.T) {
	w, ok := trace.ByName("mcf")
	if !ok {
		t.Fatal("workload mcf missing")
	}
	cfg := reentrancyCfg(CounterLight, 1)
	serial, err := RunSeeds(cfg, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSeedsParallel(cfg, w, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("seed sweep diverged:\nserial %+v\nparallel %+v", serial, par)
	}
}

// TestSchemeNamesRoundTrip checks the registry's name lookups agree
// with Scheme.String for every registered scheme.
func TestSchemeNamesRoundTrip(t *testing.T) {
	names := SchemeNames()
	if len(names) != 5 {
		t.Fatalf("SchemeNames = %v, want 5 entries", names)
	}
	for _, name := range names {
		sc, ok := SchemeByName(name)
		if !ok {
			t.Errorf("SchemeByName(%q) missing", name)
			continue
		}
		if got := sc.String(); got != name {
			t.Errorf("Scheme(%d).String() = %q, want %q", int(sc), got, name)
		}
	}
	if _, ok := SchemeByName("no-such-scheme"); ok {
		t.Error("SchemeByName accepted an unknown name")
	}
	if got := Scheme(99).String(); got != fmt.Sprintf("scheme(%d)", 99) {
		t.Errorf("unregistered String() = %q", got)
	}
}

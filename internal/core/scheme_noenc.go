package core

// noEncPipeline is the unprotected baseline: reads pay only the
// standard ECC check after the data arrives; writebacks carry no
// metadata traffic.
type noEncPipeline struct {
	noCounterTraffic
	ctx MCContext
}

func (p *noEncPipeline) ReadMiss(addr uint64, tm, dataDone int64, demand bool) int64 {
	return dataDone + p.ctx.Config().ECCCheckLat
}

package core_test

import (
	"fmt"

	"counterlight/internal/cipher"
	"counterlight/internal/core"
	"counterlight/internal/epoch"
)

// The functional engine: write under counter mode, read back through
// the ECC-decoded metadata, survive a chip failure.
func ExampleEngine() {
	engine, err := core.NewEngine(core.DefaultEngineOptions())
	if err != nil {
		panic(err)
	}
	var plain cipher.Block
	copy(plain[:], []byte("secret"))

	if err := engine.Write(0x1000, plain, epoch.CounterMode); err != nil {
		panic(err)
	}
	_ = engine.InjectFault(0x1000, 2, 0xFFFF) // chip 2 dies

	got, info, err := engine.Read(0x1000)
	if err != nil {
		panic(err)
	}
	fmt.Println(string(got[:6]), info.Corrected, info.BadChip)
	// Output: secret true 2
}

// The combined System picks writeback modes from the bandwidth monitor
// the way the real controller does (paper §IV-B).
func ExampleSystem() {
	sys, err := core.NewSystem(core.DefaultSystemOptions())
	if err != nil {
		panic(err)
	}
	var plain cipher.Block

	// Quiet system: counter mode.
	mode, err := sys.WriteAt(0, 0x2000, plain)
	if err != nil {
		panic(err)
	}
	fmt.Println("quiet:", mode)

	// Saturate the epoch, then write again: counterless.
	for i := uint64(0); i <= sys.Monitor().Threshold(); i++ {
		sys.Monitor().Record(int64(i))
	}
	mode, err = sys.WriteAt(int64(sys.Monitor().Threshold())+1, 0x2040, plain)
	if err != nil {
		panic(err)
	}
	fmt.Println("saturated:", mode)
	// Output:
	// quiet: counter
	// saturated: counterless
}

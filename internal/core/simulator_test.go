package core

import (
	"testing"

	"counterlight/internal/trace"
)

// fastCfg shrinks the hierarchy and windows so tests reach steady
// state (filled LLC, flowing writebacks) in well under a second.
func fastCfg(scheme Scheme) Config {
	cfg := DefaultConfig(scheme)
	cfg.L1Size = 16 << 10
	cfg.L2Size = 128 << 10
	cfg.L3Size = 1 << 20
	cfg.WarmupTime = 400 * us
	cfg.WindowTime = 600 * us
	return cfg
}

func mustRun(t *testing.T, cfg Config, name string) Result {
	t.Helper()
	w, ok := trace.ByName(name)
	if !ok {
		t.Fatalf("workload %s missing", name)
	}
	r, err := Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunValidatesConfig(t *testing.T) {
	w, _ := trace.ByName("mcf")
	bad := fastCfg(NoEnc)
	bad.Cores = 0
	if _, err := Run(bad, w); err == nil {
		t.Error("want error for zero cores")
	}
	bad = fastCfg(NoEnc)
	bad.BlockSize = 128
	if _, err := Run(bad, w); err == nil {
		t.Error("want error for non-64 block size")
	}
	bad = fastCfg(Scheme(99))
	if _, err := Run(bad, w); err == nil {
		t.Error("want error for unknown scheme")
	}
	bad = fastCfg(NoEnc)
	bad.Threshold = 0
	if _, err := Run(bad, w); err == nil {
		t.Error("want error for zero threshold")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := fastCfg(CounterLight)
	r1 := mustRun(t, cfg, "canneal")
	r2 := mustRun(t, cfg, "canneal")
	if r1.Instructions != r2.Instructions || r1.LLCMisses != r2.LLCMisses ||
		r1.DRAM != r2.DRAM || r1.WBCounterless != r2.WBCounterless {
		t.Errorf("runs differ:\n%+v\n%+v", r1, r2)
	}
}

func TestBasicSanity(t *testing.T) {
	r := mustRun(t, fastCfg(NoEnc), "mcf")
	if r.Instructions == 0 {
		t.Error("no instructions retired")
	}
	if r.LLCMisses == 0 {
		t.Error("no LLC misses for an out-of-cache workload")
	}
	if r.AvgMissLatNS < 20 || r.AvgMissLatNS > 2000 {
		t.Errorf("miss latency %.1f ns implausible", r.AvgMissLatNS)
	}
	if r.BusUtilization <= 0 || r.BusUtilization > 1 {
		t.Errorf("utilization %v out of range", r.BusUtilization)
	}
	if r.EnergyPJ <= 0 || r.EnergyPerInst <= 0 {
		t.Error("energy not accounted")
	}
}

// §III's central claim: counterless encryption slows down irregular
// workloads by adding the AES latency to every LLC read miss.
func TestCounterlessSlowdown(t *testing.T) {
	base := mustRun(t, fastCfg(NoEnc), "mcf")
	cls := mustRun(t, fastCfg(Counterless), "mcf")
	perf := cls.PerfNormalizedTo(base)
	if perf >= 0.99 {
		t.Errorf("counterless perf = %.3f, want visible slowdown", perf)
	}
	if perf < 0.80 {
		t.Errorf("counterless perf = %.3f, implausibly slow", perf)
	}
	// The added miss latency is the AES latency minus second-order
	// queueing relief (the slower scheme offers less load); the exact
	// ~9 ns delta is asserted by TestMicrobenchmarkAESDelta under
	// controlled single-core conditions.
	delta := cls.AvgMissLatNS - base.AvgMissLatNS
	if delta < 2 || delta > 15 {
		t.Errorf("counterless miss-latency delta = %.1f ns, want positive ~AES", delta)
	}
}

// AES-256 must hurt counterless more than AES-128 (Fig. 5).
func TestAES256HurtsMore(t *testing.T) {
	base := mustRun(t, fastCfg(NoEnc), "mcf")
	cls128 := mustRun(t, fastCfg(Counterless), "mcf")
	cls256 := mustRun(t, fastCfg(Counterless).WithAES256(), "mcf")
	p128 := cls128.PerfNormalizedTo(base)
	p256 := cls256.PerfNormalizedTo(base)
	if p256 >= p128 {
		t.Errorf("AES-256 perf %.3f not worse than AES-128 %.3f", p256, p128)
	}
}

// The headline result (Fig. 16): Counter-light beats counterless and
// approaches no-encryption for irregular workloads.
func TestCounterLightBeatsCounterless(t *testing.T) {
	for _, name := range []string{"mcf", "canneal"} {
		base := mustRun(t, fastCfg(NoEnc), name)
		cls := mustRun(t, fastCfg(Counterless), name)
		cl := mustRun(t, fastCfg(CounterLight), name)
		pCls := cls.PerfNormalizedTo(base)
		pCl := cl.PerfNormalizedTo(base)
		if pCl <= pCls {
			t.Errorf("%s: counter-light %.3f not better than counterless %.3f", name, pCl, pCls)
		}
		if pCl < 0.90 {
			t.Errorf("%s: counter-light perf %.3f, want >= 0.90", name, pCl)
		}
	}
}

// Counter-light adds no counter traffic on reads: its DRAM read count
// stays near the no-encryption baseline, while full counter mode reads
// substantially more (Fig. 1's comparison).
func TestCounterLightNoReadOverhead(t *testing.T) {
	base := mustRun(t, fastCfg(NoEnc), "streamcluster")
	cl := mustRun(t, fastCfg(CounterLight), "streamcluster")
	cm := mustRun(t, fastCfg(CounterMode), "streamcluster")
	clReads := float64(cl.DRAM.Reads) / float64(base.DRAM.Reads)
	cmReads := float64(cm.DRAM.Reads) / float64(base.DRAM.Reads)
	if clReads > 1.1 {
		t.Errorf("counter-light read traffic ratio = %.2f, want ~1", clReads)
	}
	if cmReads < clReads+0.05 {
		t.Errorf("counter mode read ratio %.2f not above counter-light %.2f", cmReads, clReads)
	}
}

// The Fig. 8 experiment: under counter mode, the counter sometimes
// arrives after the data.
func TestCounterArrivalDistribution(t *testing.T) {
	r := mustRun(t, fastCfg(CounterMode), "canneal")
	if r.CounterLateHist.Total() == 0 {
		t.Fatal("no counter-arrival samples collected")
	}
	if r.CounterLateHist.Total() != r.LLCMisses {
		t.Errorf("histogram samples %d != LLC misses %d", r.CounterLateHist.Total(), r.LLCMisses)
	}
	if r.CounterLateFrac <= 0 {
		t.Error("no misses with late counters — counter-cache misses should produce some")
	}
	if r.CounterLateFrac > 0.8 {
		t.Errorf("late-counter fraction %.2f implausibly high", r.CounterLateFrac)
	}
	// No-counter schemes must not collect samples.
	r2 := mustRun(t, fastCfg(CounterLight), "canneal")
	if r2.CounterLateHist.Total() != 0 {
		t.Error("counter-light collected counter-arrival samples")
	}
}

// The memoization table must serve >=90% of counter-mode decryptions
// (§IV-D).
func TestMemoHitRate(t *testing.T) {
	for _, sc := range []Scheme{CounterMode, CounterLight} {
		r := mustRun(t, fastCfg(sc), "canneal")
		if r.MemoHitRate < 0.90 {
			t.Errorf("%v memo hit rate = %.3f, want >= 0.90", sc, r.MemoHitRate)
		}
	}
}

// Disabling memoization must slow counter-mode schemes down.
func TestMemoizationAblation(t *testing.T) {
	on := mustRun(t, fastCfg(CounterLight), "mcf")
	cfg := fastCfg(CounterLight)
	cfg.MemoizeEnabled = false
	off, err := Run(cfg, mustWorkload(t, "mcf"))
	if err != nil {
		t.Fatal(err)
	}
	if off.Instructions >= on.Instructions {
		t.Errorf("memoization off (%d instr) not slower than on (%d)", off.Instructions, on.Instructions)
	}
}

func mustWorkload(t *testing.T, name string) trace.Workload {
	t.Helper()
	w, ok := trace.ByName(name)
	if !ok {
		t.Fatalf("workload %s missing", name)
	}
	return w
}

// Under bandwidth starvation, Counter-light's epoch monitor must push
// writebacks to counterless mode (Figs. 20/21); with ample bandwidth
// and few writes it must not.
func TestEpochSwitchUnderStress(t *testing.T) {
	stress := fastCfg(CounterLight)
	stress.BandwidthGBs = 6.4
	r := mustRun(t, stress, "omnetpp")
	if r.CounterlessWBFraction() < 0.5 {
		t.Errorf("6.4 GB/s omnetpp: counterless WB share = %.2f, want high", r.CounterlessWBFraction())
	}
	calm := fastCfg(CounterLight)
	r2 := mustRun(t, calm, "mcf")
	if r2.CounterlessWBFraction() > 0.2 {
		t.Errorf("25.6 GB/s mcf: counterless WB share = %.2f, want ~0", r2.CounterlessWBFraction())
	}
}

// Fig. 21's trend: lower thresholds switch more writebacks to
// counterless under the same starved channel.
func TestThresholdSweepTrend(t *testing.T) {
	frac := func(th float64) float64 {
		cfg := fastCfg(CounterLight)
		cfg.BandwidthGBs = 6.4
		cfg.Threshold = th
		return mustRun(t, cfg, "canneal").CounterlessWBFraction()
	}
	f10, f60, f80 := frac(0.10), frac(0.60), frac(0.80)
	if f10 < f60-0.01 || f60 < f80-0.01 {
		t.Errorf("threshold sweep not monotone: 10%%=%.2f 60%%=%.2f 80%%=%.2f", f10, f60, f80)
	}
	if f10 < 0.95 {
		t.Errorf("10%% threshold counterless share = %.2f, want ~1", f10)
	}
}

// The no-dynamic-switching ablation (§VI): a write-heavy workload
// collapses without the switch; the switch restores counterless-level
// performance.
func TestDynamicSwitchAblation(t *testing.T) {
	stress := fastCfg(CounterLight)
	stress.BandwidthGBs = 6.4
	withSwitch := mustRun(t, stress, "omnetpp")
	stress.DynamicSwitch = false
	noSwitch, err := Run(stress, mustWorkload(t, "omnetpp"))
	if err != nil {
		t.Fatal(err)
	}
	if float64(noSwitch.Instructions) > 0.95*float64(withSwitch.Instructions) {
		t.Errorf("disabling the switch did not hurt omnetpp: %d vs %d",
			noSwitch.Instructions, withSwitch.Instructions)
	}
}

// Under stress, Counter-light must stay close to counterless (Fig. 20:
// worst case within a couple percent).
func TestStressParityWithCounterless(t *testing.T) {
	for _, name := range []string{"omnetpp", "canneal"} {
		cfg := fastCfg(Counterless)
		cfg.BandwidthGBs = 6.4
		cls := mustRun(t, cfg, name)
		cfg.Scheme = CounterLight
		cl := mustRun(t, cfg, name)
		ratio := cl.PerfNormalizedTo(cls)
		if ratio < 0.95 {
			t.Errorf("%s at 6.4 GB/s: counter-light/counterless = %.3f, want >= 0.95", name, ratio)
		}
	}
}

// The §III microbenchmark: per-miss latency delta between counterless
// and no encryption equals the AES latency (the real-system 10 ns
// measurement).
func TestMicrobenchmarkAESDelta(t *testing.T) {
	cfg := fastCfg(NoEnc)
	cfg.Cores = 1
	cfg.PrefetchEnabled = false // the paper turns prefetching off
	base, err := Run(cfg, trace.MicroPointerChase())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scheme = Counterless
	cls, err := Run(cfg, trace.MicroPointerChase())
	if err != nil {
		t.Fatal(err)
	}
	delta := cls.AvgMissLatNS - base.AvgMissLatNS
	// 10 ns AES minus the 1 ns ECC check the unencrypted system pays.
	if delta < 8 || delta > 10.5 {
		t.Errorf("microbenchmark per-miss delta = %.2f ns, want ~9", delta)
	}
}

func TestRunPair(t *testing.T) {
	w, _ := trace.ByName("mcf")
	scheme, base, err := RunPair(fastCfg(Counterless), w)
	if err != nil {
		t.Fatal(err)
	}
	if base.Scheme != NoEnc || scheme.Scheme != Counterless {
		t.Error("RunPair schemes wrong")
	}
	if scheme.PerfNormalizedTo(base) <= 0 {
		t.Error("normalized perf not positive")
	}
}

func TestResultString(t *testing.T) {
	r := mustRun(t, fastCfg(NoEnc), "mcf")
	if r.String() == "" {
		t.Error("empty String()")
	}
}

func TestSchemeString(t *testing.T) {
	names := map[Scheme]string{
		NoEnc: "noenc", Counterless: "counterless", CounterMode: "countermode",
		CounterModeSingle: "countermode-single", CounterLight: "counterlight",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %s, want %s", int(s), s.String(), want)
		}
	}
	if Scheme(42).String() == "" {
		t.Error("unknown scheme has empty name")
	}
}

func BenchmarkSimulatorMcf(b *testing.B) {
	w, _ := trace.ByName("mcf")
	cfg := fastCfg(CounterLight)
	cfg.WarmupTime = 100 * us
	cfg.WindowTime = 200 * us
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, w); err != nil {
			b.Fatal(err)
		}
	}
}

// Refresh adds a small latency tail but must not change the results
// qualitatively.
func TestRefreshModeling(t *testing.T) {
	cfg := fastCfg(NoEnc)
	off := mustRun(t, cfg, "mcf")
	cfg.RefreshEnabled = true
	on := mustRun(t, cfg, "mcf")
	if on.DRAM.Refreshes == 0 {
		t.Error("refresh enabled but no refresh waits recorded")
	}
	if on.AvgMissLatNS <= off.AvgMissLatNS {
		t.Errorf("refresh did not add latency: %.1f vs %.1f", on.AvgMissLatNS, off.AvgMissLatNS)
	}
	if on.AvgMissLatNS > off.AvgMissLatNS*1.25 {
		t.Errorf("refresh added implausible latency: %.1f vs %.1f", on.AvgMissLatNS, off.AvgMissLatNS)
	}
}

package core

import (
	"fmt"

	"counterlight/internal/cipher"
	"counterlight/internal/epoch"
)

// System glues the functional Engine to the epoch bandwidth monitor:
// callers issue timestamped reads and writes, and the writeback
// encryption mode is chosen the way the real controller would (paper
// §IV-B), instead of being passed in manually. It is the complete
// functional Counter-light controller in one object.
type System struct {
	*Engine
	mon *epoch.Monitor
}

// SystemOptions configures a System.
type SystemOptions struct {
	Engine EngineOptions
	// EpochLen is the monitor epoch in picoseconds (default 100 µs).
	EpochLen int64
	// AccessTime is the channel occupancy of one 64-byte access in
	// picoseconds (default 2500 ps = 25.6 GB/s).
	AccessTime int64
	// Threshold is the utilization fraction above which writebacks
	// switch to counterless mode (default 0.60).
	Threshold float64
}

// DefaultSystemOptions mirrors Table I.
func DefaultSystemOptions() SystemOptions {
	return SystemOptions{
		Engine:     DefaultEngineOptions(),
		EpochLen:   100 * us,
		AccessTime: 2500,
		Threshold:  0.60,
	}
}

// NewSystem builds the combined controller.
func NewSystem(opts SystemOptions) (*System, error) {
	if opts.EpochLen == 0 {
		opts.EpochLen = 100 * us
	}
	if opts.AccessTime == 0 {
		opts.AccessTime = 2500
	}
	if opts.Threshold == 0 {
		opts.Threshold = 0.60
	}
	e, err := NewEngine(opts.Engine)
	if err != nil {
		return nil, err
	}
	mon, err := epoch.NewMonitor(opts.EpochLen, opts.AccessTime, opts.Threshold)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &System{Engine: e, mon: mon}, nil
}

// Monitor exposes the bandwidth monitor (diagnostics).
func (s *System) Monitor() *epoch.Monitor { return s.mon }

// WriteAt performs a writeback at simulated time now: the monitor's
// current decision picks the encryption mode, and the access is
// counted toward the epoch's utilization. It reports the mode used.
func (s *System) WriteAt(now int64, addr uint64, plain cipher.Block) (epoch.Mode, error) {
	mode := s.mon.WritebackMode(now)
	s.mon.Record(now)
	if mode == epoch.CounterMode {
		// Counter-mode writebacks also cost counter/tree accesses;
		// charge a representative two extra accesses to the monitor
		// (counter block + one tree level — the cached common case).
		s.mon.Record(now)
		s.mon.Record(now)
	}
	if err := s.Engine.Write(addr, plain, mode); err != nil {
		return mode, err
	}
	return mode, nil
}

// ReadAt performs a read miss at simulated time now, counting the
// access toward the epoch's utilization. Counter-light reads never add
// counter traffic (the metadata rides in the ECC), so exactly one
// access is recorded.
func (s *System) ReadAt(now int64, addr uint64) (cipher.Block, ReadInfo, error) {
	s.mon.Record(now)
	return s.Engine.Read(addr)
}

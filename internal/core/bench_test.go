package core

import (
	"testing"

	"counterlight/internal/cipher"
	"counterlight/internal/epoch"
	"counterlight/internal/trace"
)

// benchEngine builds a small engine with a pre-written working set so
// read benchmarks never hit the unwritten-block error path.
func benchEngine(b *testing.B, blocks int) *Engine {
	b.Helper()
	opts := DefaultEngineOptions()
	opts.MemSize = 1 << 22
	eng, err := NewEngine(opts)
	if err != nil {
		b.Fatal(err)
	}
	var data cipher.Block
	for i := 0; i < blocks; i++ {
		data[0] = byte(i)
		if err := eng.Write(uint64(i)*64, data, epoch.CounterMode); err != nil {
			b.Fatal(err)
		}
	}
	return eng
}

// BenchmarkEngineRead measures the fast-path read: fetch, MAC check,
// decrypt. The working set fits the memo table region, so this is the
// common (hit) case.
func BenchmarkEngineRead(b *testing.B) {
	const blocks = 256
	eng := benchEngine(b, blocks)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.Read(uint64(i%blocks) * 64); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineWriteCounter measures a counter-mode writeback:
// counter bump, integrity-tree touch, encrypt, MAC, ECC encode.
func BenchmarkEngineWriteCounter(b *testing.B) {
	benchmarkEngineWrite(b, epoch.CounterMode)
}

// BenchmarkEngineWriteCounterless measures a counterless writeback —
// the paper's cheap path: no counter traffic at all.
func BenchmarkEngineWriteCounterless(b *testing.B) {
	benchmarkEngineWrite(b, epoch.Counterless)
}

func benchmarkEngineWrite(b *testing.B, mode epoch.Mode) {
	const blocks = 256
	eng := benchEngine(b, blocks)
	var data cipher.Block
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data[0] = byte(i)
		if err := eng.Write(uint64(i%blocks)*64, data, mode); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMemoHitRate measures the §IV-D memoization claim directly:
// one full counter-light run; the hit rate is reported as a metric.
func BenchmarkMemoHitRate(b *testing.B) {
	w, ok := trace.ByName("canneal")
	if !ok {
		b.Fatal("canneal missing")
	}
	cfg := DefaultConfig(CounterLight)
	cfg.WarmupTime /= 2
	cfg.WindowTime /= 2
	var hit float64
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg, w)
		if err != nil {
			b.Fatal(err)
		}
		hit = res.MemoHitRate
	}
	b.ReportMetric(hit, "hit-rate")
}

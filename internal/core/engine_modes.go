package core

import (
	"counterlight/internal/cipher"
	"counterlight/internal/ctrblock"
	"counterlight/internal/ecc"
	"counterlight/internal/epoch"
)

// modeCipher is the functional counterpart of SchemePipeline: the
// per-mode verify/decrypt semantics one stored block obeys, selected
// by its decoded EncryptionMetadata. The timing pipelines (scheme.go)
// and the Engine dispatch through the same modeOf, so the two layers
// cannot drift on what a metadata value means.
type modeCipher interface {
	// Mode names the encryption mode this cipher implements.
	Mode() epoch.Mode
	// MAC recomputes the MAC the stored block should carry given its
	// decoded metadata; ok is false when the metadata cannot be legal
	// for this mode, which routes the read to the correction path.
	MAC(addr uint64, ct cipher.Block, meta uint64) (mac uint64, ok bool)
	// Decrypt recovers the plaintext, going through the memoization
	// table exactly as the hardware would; memoHit reports whether the
	// OTP came from the table.
	Decrypt(addr uint64, ct cipher.Block, meta uint64) (plain cipher.Block, memoHit bool)
	// Hypothesis is this mode's half of the Fig. 14 dual-hypothesis
	// error correction.
	Hypothesis(addr uint64) ecc.Hypothesis
}

// modeFor selects the functional cipher path for a decoded metadata
// value — the Engine-side analogue of newSchemePipeline's dispatch.
func (e *Engine) modeFor(meta uint64) modeCipher {
	if modeOf(meta) == epoch.Counterless {
		return counterlessCipherPath{e}
	}
	return counterCipherPath{e}
}

// counterCipherPath is counter-mode (AES-CTR, SGX1-style) semantics:
// one global key, OTP from counter‖address, MAC over the plaintext.
type counterCipherPath struct{ e *Engine }

func (p counterCipherPath) Mode() epoch.Mode { return epoch.CounterMode }

func (p counterCipherPath) MAC(addr uint64, ct cipher.Block, meta uint64) (uint64, bool) {
	if meta > ctrblock.CounterMax {
		return 0, false
	}
	// Counter-mode MAC is computed over the plaintext, which the MC
	// obtains by XORing the (pre-computable) pad. The pad and the MAC's
	// OTP word come from one batched derivation through the pad cache;
	// the Decrypt that follows a successful check reuses the same slot,
	// so a verified read pays for the pad AES exactly once.
	pad, otp := p.e.padFor(meta, addr)
	return p.e.cm.MACFromOTP(otp, ct.XOR(pad), uint32(meta)), true
}

func (p counterCipherPath) Decrypt(addr uint64, ct cipher.Block, meta uint64) (cipher.Block, bool) {
	e := p.e
	_, hit := e.memo.Lookup(uint32(meta))
	if hit {
		e.m.memoHits.Inc()
	} else {
		e.m.memoMisses.Inc()
	}
	pad, _ := e.padFor(meta, addr)
	return ct.XOR(pad), hit
}

func (p counterCipherPath) Hypothesis(addr uint64) ecc.Hypothesis {
	e := p.e
	return ecc.Hypothesis{
		Name: "counter",
		Meta: uint64(e.ctrs.Counter(addr)),
		MAC: func(ct cipher.Block, meta uint64) uint64 {
			plain := e.cm.Decrypt(meta, addr, ct)
			return e.cm.MAC(meta, addr, plain, uint32(meta))
		},
	}
}

// counterlessCipherPath is counterless (AES-XTS, TME/SEV-style)
// semantics: per-VM key, data-dependent cipher, SHA-3 MAC over the
// ciphertext.
type counterlessCipherPath struct{ e *Engine }

func (p counterlessCipherPath) Mode() epoch.Mode { return epoch.Counterless }

func (p counterlessCipherPath) MAC(addr uint64, ct cipher.Block, meta uint64) (uint64, bool) {
	return p.e.clsFor(addr).MAC(addr, ct, uint32(meta)), true
}

func (p counterlessCipherPath) Decrypt(addr uint64, ct cipher.Block, _ uint64) (cipher.Block, bool) {
	return p.e.clsFor(addr).Decrypt(addr, ct), false
}

func (p counterlessCipherPath) Hypothesis(addr uint64) ecc.Hypothesis {
	e := p.e
	return ecc.Hypothesis{
		Name: "counterless",
		Meta: ctrblock.CounterlessFlag,
		MAC: func(ct cipher.Block, meta uint64) uint64 {
			return e.clsFor(addr).MAC(addr, ct, uint32(meta))
		},
	}
}

package core

import (
	"testing"

	"counterlight/internal/trace"
)

// TestCalibrationProbe logs normalized performance per workload and
// scheme; run with -v to inspect. Skipped in -short mode.
func TestCalibrationProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	for _, w := range trace.IrregularSet() {
		cfg := DefaultConfig(NoEnc)
		cfg.WarmupTime = 4 * ms
		cfg.WindowTime = 2 * ms
		base, err := Run(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-14s noenc: %s", w.Name, base)
		for _, sc := range []Scheme{Counterless, CounterMode, CounterModeSingle, CounterLight} {
			c2 := cfg
			c2.Scheme = sc
			r, err := Run(c2, w)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%-14s %-18s perf=%.3f missLat=%.1fns util=%.2f memo=%.2f ctrLate=%.2f wbCls=%.2f",
				w.Name, sc, r.PerfNormalizedTo(base), r.AvgMissLatNS, r.BusUtilization,
				r.MemoHitRate, r.CounterLateFrac, r.CounterlessWBFraction())
		}
	}
}

package core

import (
	"testing"

	"counterlight/internal/cipher"
	"counterlight/internal/epoch"
)

func allocTestEngine(t *testing.T) *Engine {
	t.Helper()
	opts := DefaultEngineOptions()
	opts.MemSize = 1 << 20
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func allocTestBlock(seed byte) cipher.Block {
	var b cipher.Block
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

// TestReadHitNoAllocs pins the fault-free read path at zero
// allocations per operation in both encryption modes — the hot-path
// guarantee the clbench engine/read_hit benchmark gates in CI.
func TestReadHitNoAllocs(t *testing.T) {
	e := allocTestEngine(t)
	if err := e.Write(0, allocTestBlock(1), epoch.CounterMode); err != nil {
		t.Fatal(err)
	}
	if err := e.Write(64, allocTestBlock(2), epoch.Counterless); err != nil {
		t.Fatal(err)
	}
	for name, addr := range map[string]uint64{"counter": 0, "counterless": 64} {
		// Warm up once (lazy pad-cache fill) and check correctness.
		if _, _, err := e.Read(addr); err != nil {
			t.Fatal(err)
		}
		if allocs := testing.AllocsPerRun(200, func() {
			if _, _, err := e.Read(addr); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("%s read hit allocates %.1f per op, want 0", name, allocs)
		}
	}
}

// TestPrecomputeReadPads checks the batch precompute stage: it derives
// pads only for counter-mode blocks, subsequent reads decrypt
// correctly from the cache, and the steady-state path (engine-owned
// buffers already grown) performs no allocation.
func TestPrecomputeReadPads(t *testing.T) {
	e := allocTestEngine(t)
	// Two address sets that alias to the same pad-cache slots, so
	// precomputing one always evicts the other: every AllocsPerRun
	// iteration below exercises the full PadBatch path rather than the
	// everything-cached early exit.
	const n = 16
	setA := make([]uint64, n)
	setB := make([]uint64, n)
	want := make(map[uint64]cipher.Block, 2*n)
	for i := 0; i < n; i++ {
		setA[i] = uint64(i) * 64
		setB[i] = setA[i] + padCacheSize*64
		for _, addr := range []uint64{setA[i], setB[i]} {
			blk := allocTestBlock(byte(addr >> 6))
			if err := e.Write(addr, blk, epoch.CounterMode); err != nil {
				t.Fatal(err)
			}
			want[addr] = blk
		}
	}
	// One counterless block and one unwritten address must be skipped.
	if err := e.Write(setA[0]+512*64, allocTestBlock(0xcc), epoch.Counterless); err != nil {
		t.Fatal(err)
	}
	mixed := append(append([]uint64{}, setA...), setA[0]+512*64, 1<<19+64*63)
	if got := e.PrecomputeReadPads(mixed); got != n {
		t.Fatalf("PrecomputeReadPads = %d, want %d (counterless/unwritten must be skipped)", got, n)
	}
	// Cached pads must decrypt to the written plaintext.
	for _, addr := range setA {
		plain, info, err := e.Read(addr)
		if err != nil {
			t.Fatal(err)
		}
		if plain != want[addr] {
			t.Fatalf("read after precompute returned wrong plaintext at %#x", addr)
		}
		if info.Mode != epoch.CounterMode {
			t.Fatalf("block at %#x not in counter mode", addr)
		}
	}
	// Everything cached: a second call derives nothing.
	e.PrecomputeReadPads(setA)
	if got := e.PrecomputeReadPads(setA); got != 0 {
		t.Fatalf("second PrecomputeReadPads = %d, want 0", got)
	}
	// Steady state (buffers grown, cache thrashing between the two
	// aliasing sets) must not allocate.
	e.PrecomputeReadPads(setB)
	if allocs := testing.AllocsPerRun(100, func() {
		if got := e.PrecomputeReadPads(setA); got != n {
			t.Fatalf("aliased precompute = %d, want %d", got, n)
		}
		if got := e.PrecomputeReadPads(setB); got != n {
			t.Fatalf("aliased precompute = %d, want %d", got, n)
		}
	}); allocs != 0 {
		t.Errorf("steady-state PrecomputeReadPads allocates %.1f per call pair, want 0", allocs)
	}
}

// TestEngineCipherBackends checks that an engine on each backend is
// bit-exact with the default: same stored codewords, same read
// results, and that the reference twins expose the same keys.
func TestEngineCipherBackends(t *testing.T) {
	build := func(backend string) *Engine {
		opts := DefaultEngineOptions()
		opts.MemSize = 1 << 20
		opts.Cipher = backend
		e, err := NewEngine(opts)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	for _, backend := range []string{"ttable", "stdlib"} {
		// A fresh reference twin per backend: engine counters advance
		// on every write, so a shared oracle would drift ahead.
		ref := build("ref")
		e := build(backend)
		if e.CipherBackend() != backend {
			t.Fatalf("CipherBackend() = %q, want %q", e.CipherBackend(), backend)
		}
		for i, mode := range []epoch.Mode{epoch.CounterMode, epoch.Counterless, epoch.CounterMode} {
			addr := uint64(i) * 64
			blk := allocTestBlock(byte(i))
			if err := ref.Write(addr, blk, mode); err != nil {
				t.Fatal(err)
			}
			if err := e.Write(addr, blk, mode); err != nil {
				t.Fatal(err)
			}
			refCW, _ := ref.Snapshot(addr)
			cw, _ := e.Snapshot(addr)
			if refCW != cw {
				t.Fatalf("%s: stored codeword diverges from ref at %#x", backend, addr)
			}
			plain, _, err := e.Read(addr)
			if err != nil {
				t.Fatal(err)
			}
			if plain != blk {
				t.Fatalf("%s: read returned wrong plaintext", backend)
			}
		}
		// The reference twins must agree with the engine's own ciphers
		// on a sample MAC/pad (same keys, different backend).
		var b cipher.Block
		if got, want := e.ReferenceCounterCipher().Pad(5, 128), e.CounterCipher().Pad(5, 128); got != want {
			t.Fatalf("%s: reference counter cipher diverges", backend)
		}
		if got, want := e.ReferenceCounterlessCipher(0).MAC(128, b, 7), e.CounterlessCipher(0).MAC(128, b, 7); got != want {
			t.Fatalf("%s: reference counterless cipher diverges", backend)
		}
		if e.ReferenceCounterlessCipher(0).Backend() != "ref" {
			t.Fatalf("reference twin not on ref backend")
		}
	}
	// An engine already on ref reuses its own ciphers as the twins.
	refEng := build("ref")
	if refEng.ReferenceCounterCipher() != refEng.CounterCipher() {
		t.Fatal("ref engine should expose its own cipher as the reference twin")
	}
	// Unknown backend must fail loudly.
	opts := DefaultEngineOptions()
	opts.Cipher = "aes-ni"
	if _, err := NewEngine(opts); err == nil {
		t.Fatal("NewEngine accepted unknown cipher backend")
	}
}

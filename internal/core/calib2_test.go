package core

import (
	"testing"

	"counterlight/internal/trace"
)

func TestCalibrationRegular(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	for _, w := range trace.RegularSet() {
		cfg := DefaultConfig(NoEnc)
		cfg.WarmupTime = 4 * ms
		cfg.WindowTime = 2 * ms
		base, err := Run(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-10s noenc: %s", w.Name, base)
		for _, sc := range []Scheme{Counterless, CounterLight} {
			c2 := cfg
			c2.Scheme = sc
			r, _ := Run(c2, w)
			t.Logf("%-10s %-14s perf=%.3f missLat=%.1fns util=%.2f wbCls=%.2f",
				w.Name, sc, r.PerfNormalizedTo(base), r.AvgMissLatNS, r.BusUtilization, r.CounterlessWBFraction())
		}
	}
}

func TestCalibrationStress(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	for _, name := range []string{"omnetpp", "canneal", "streamcluster", "bfs", "mcf"} {
		w, _ := trace.ByName(name)
		cfg := DefaultConfig(NoEnc)
		cfg.BandwidthGBs = 6.4
		cfg.WarmupTime = 4 * ms
		cfg.WindowTime = 2 * ms
		base, err := Run(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Scheme = Counterless
		cls, _ := Run(cfg, w)
		cfg.Scheme = CounterLight
		cl, _ := Run(cfg, w)
		cfg.DynamicSwitch = false
		clNS, _ := Run(cfg, w)
		t.Logf("%-14s util(noenc)=%.2f cls=%.3f cl=%.3f cl/cls=%.3f clNoSwitch=%.3f wbCls=%.2f",
			name, base.BusUtilization, cls.PerfNormalizedTo(base), cl.PerfNormalizedTo(base),
			cl.PerfNormalizedTo(cls), clNS.PerfNormalizedTo(base), cl.CounterlessWBFraction())
	}
}

package core

import (
	"math/rand"
	"testing"

	"counterlight/internal/cipher"
	"counterlight/internal/epoch"
)

// The §IV-D ciphertext side channel: under ONE counterless key, two
// VMs writing the same plaintext to the same block produce the same
// ciphertext, so an attacker VM that knows its own plaintext learns
// the victim's. Per-VM keys break the equality; counter mode never
// exhibits it because the counter advances.
func TestCiphertextSideChannel(t *testing.T) {
	opts := DefaultEngineOptions()
	opts.VMs = 2
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	var secret cipher.Block
	copy(secret[:], []byte("the victim's database record"))
	const addr = 0x2000

	// Attacker VM (0) writes a known plaintext and captures the bus.
	if err := e.WriteAs(0, addr, secret, epoch.Counterless); err != nil {
		t.Fatal(err)
	}
	attacker, _ := e.Snapshot(addr)

	// Victim VM (1) later reuses the block for the same value.
	if err := e.WriteAs(1, addr, secret, epoch.Counterless); err != nil {
		t.Fatal(err)
	}
	victim, _ := e.Snapshot(addr)

	if attacker.Data == victim.Data {
		t.Error("two VMs produced identical counterless ciphertext — side channel open")
	}

	// Counter mode with the shared global key: same plaintext, same
	// address, two writes — the counter still makes them differ.
	if err := e.WriteAs(0, addr, secret, epoch.CounterMode); err != nil {
		t.Fatal(err)
	}
	first, _ := e.Snapshot(addr)
	if err := e.WriteAs(0, addr, secret, epoch.CounterMode); err != nil {
		t.Fatal(err)
	}
	second, _ := e.Snapshot(addr)
	if first.Data == second.Data {
		t.Error("counter mode repeated a ciphertext across writes")
	}
}

// Per-VM round trips: each VM reads back its own data.
func TestPerVMRoundTrip(t *testing.T) {
	opts := DefaultEngineOptions()
	opts.VMs = 4
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(500))
	for vm := 0; vm < 4; vm++ {
		addr := uint64(vm+1) * 4096
		var plain cipher.Block
		rng.Read(plain[:])
		if err := e.WriteAs(vm, addr, plain, epoch.Counterless); err != nil {
			t.Fatal(err)
		}
		got, info, err := e.Read(addr)
		if err != nil {
			t.Fatalf("vm %d: %v", vm, err)
		}
		if got != plain || info.Mode != epoch.Counterless {
			t.Errorf("vm %d: round trip failed", vm)
		}
	}
}

func TestWriteAsValidatesVM(t *testing.T) {
	e := newEngine(t) // 1 VM
	if err := e.WriteAs(1, 0, cipher.Block{}, epoch.CounterMode); err == nil {
		t.Error("out-of-range VM accepted")
	}
	if err := e.WriteAs(-1, 0, cipher.Block{}, epoch.CounterMode); err == nil {
		t.Error("negative VM accepted")
	}
}

// §IV-C: when a block's counter would exceed the maximum
// EncryptionMetadata value, the block permanently switches to
// counterless mode.
func TestCounterSaturationSwitchesPermanently(t *testing.T) {
	opts := DefaultEngineOptions()
	opts.CounterLimit = 6 // tiny limit to force saturation quickly
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	var plain cipher.Block
	const addr = 0x3000
	sawCounterless := false
	for i := 0; i < 20; i++ {
		if err := e.Write(addr, plain, epoch.CounterMode); err != nil {
			t.Fatal(err)
		}
		_, info, err := e.Read(addr)
		if err != nil {
			t.Fatal(err)
		}
		if info.Mode == epoch.Counterless {
			sawCounterless = true
		} else if sawCounterless {
			t.Fatal("block returned to counter mode after saturation")
		}
	}
	if !sawCounterless {
		t.Fatal("counter never saturated despite the tiny limit")
	}
	// Even explicit counter-mode requests stay counterless now.
	if err := e.Write(addr, plain, epoch.CounterMode); err != nil {
		t.Fatal(err)
	}
	_, info, err := e.Read(addr)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode != epoch.Counterless {
		t.Error("saturated block served in counter mode")
	}
	// Other blocks are unaffected.
	if err := e.Write(addr+64, plain, epoch.CounterMode); err != nil {
		t.Fatal(err)
	}
	_, info, err = e.Read(addr + 64)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode != epoch.CounterMode {
		t.Error("saturation leaked to a different block")
	}
}

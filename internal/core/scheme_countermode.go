package core

// counterModePipeline is the RMCC baseline (paper §II): split counters
// in a counter cache, integrity-tree verification, and AES
// memoization. With verify=false it degrades to Fig. 9's diagnostic
// (CounterModeSingle): each read miss fetches only the missing block's
// own counter and all writeback counter/tree traffic is dropped,
// isolating the latency cost of that one access.
type counterModePipeline struct {
	counterTraffic
	verify bool
}

func newCounterModePipeline(ctx MCContext, verify bool) *counterModePipeline {
	return &counterModePipeline{counterTraffic: newCounterTraffic(ctx), verify: verify}
}

func (p *counterModePipeline) ReadMiss(addr uint64, tm, dataDone int64, demand bool) int64 {
	ctx := p.ctx
	cfg := ctx.Config()
	ctr := p.blockMeta(addr / cfg.BlockSize)
	cbAddr := ctx.Layout().CounterBlockAddr(addr)
	cc := ctx.CounterCache()
	ccDone := tm + cfg.CounterCacheLat
	var ctrKnown int64
	if hit, ready := cc.Lookup(cbAddr, ccDone); hit {
		ctrKnown = ready
	} else {
		// The counter fetch starts only after the counter cache
		// reports the miss (§IV-A), and can finish after the data.
		ctrKnown = ctx.DRAMRead(cbAddr, ccDone)
		if ev, ok := cc.Insert(cbAddr, ctrKnown, false); ok && ev.Dirty {
			ctx.PostDRAMWrite(ctrKnown, ev.Addr)
		}
		if p.verify {
			// Verify the counter through the tree: fetch nodes until
			// one hits in the counter cache. Bandwidth cost;
			// verification is off the use-latency path.
			ctx.PostTreeWalk(ctrKnown, addr, 0, false)
		}
	}
	otpReady := ctrKnown + p.memoOTP(ctr, cfg.MemoLat)
	ready := max(dataDone, otpReady)
	if demand {
		ctx.CounterArrival(ctrKnown - dataDone)
	}
	return ready
}

func (p *counterModePipeline) Writeback(addr uint64, tw int64) {
	ctx := p.ctx
	cfg := ctx.Config()
	if !p.verify {
		// Fig. 9's diagnostic drops all writeback counter traffic but
		// keeps counters advancing logically.
		p.bumpCounter(addr / cfg.BlockSize)
		return
	}
	ctx.PostCounterUpdate(tw+cfg.CounterCacheLat, addr)
	ctx.CountWriteback(false)
}

package core

import (
	"math/rand"
	"testing"

	"counterlight/internal/cipher"
	"counterlight/internal/epoch"
)

func newSystem(t *testing.T, opts SystemOptions) *System {
	t.Helper()
	s, err := NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSystemDefaults(t *testing.T) {
	s := newSystem(t, SystemOptions{Engine: DefaultEngineOptions()})
	if s.Monitor().MaxAccesses() != 40000 { // 100 µs / 2.5 ns
		t.Errorf("default capacity = %d", s.Monitor().MaxAccesses())
	}
}

// Quiet traffic: writebacks run in counter mode; reads round-trip.
func TestSystemQuietUsesCounterMode(t *testing.T) {
	s := newSystem(t, DefaultSystemOptions())
	rng := rand.New(rand.NewSource(900))
	now := int64(0)
	for i := 0; i < 50; i++ {
		var plain cipher.Block
		rng.Read(plain[:])
		addr := uint64(i) * 64
		mode, err := s.WriteAt(now, addr, plain)
		if err != nil {
			t.Fatal(err)
		}
		if mode != epoch.CounterMode {
			t.Fatalf("quiet write %d used %v", i, mode)
		}
		got, _, err := s.ReadAt(now, addr)
		if err != nil || got != plain {
			t.Fatalf("read %d failed: %v", i, err)
		}
		now += 1_000_000 // 1 µs apart: far below the threshold
	}
}

// Saturating traffic crosses the threshold; subsequent writebacks flip
// to counterless mode, then recover after a quiet epoch.
func TestSystemSwitchesUnderLoad(t *testing.T) {
	opts := DefaultSystemOptions()
	s := newSystem(t, opts)
	var plain cipher.Block

	// Seed one block, then flood the first epoch past the threshold.
	if err := s.Engine.Write(0, plain, epoch.CounterMode); err != nil {
		t.Fatal(err)
	}
	thr := int64(s.Monitor().Threshold())
	for i := int64(0); i < thr+10; i++ {
		if _, _, err := s.ReadAt(i, 0); err != nil {
			t.Fatal(err)
		}
	}
	mode, err := s.WriteAt(thr+11, 64, plain)
	if err != nil {
		t.Fatal(err)
	}
	if mode != epoch.Counterless {
		t.Fatalf("writeback under load used %v", mode)
	}
	// Two quiet epochs later, counter mode returns.
	later := 3 * opts.EpochLen
	mode, err = s.WriteAt(later, 128, plain)
	if err != nil {
		t.Fatal(err)
	}
	if mode != epoch.CounterMode {
		t.Fatalf("writeback after recovery used %v", mode)
	}
	// The block written counterless reads back fine either way.
	got, info, err := s.ReadAt(later+1, 64)
	if err != nil || got != plain {
		t.Fatal("counterless block unreadable")
	}
	if info.Mode != epoch.Counterless {
		t.Errorf("block mode = %v", info.Mode)
	}
}

// The System's mode decisions must be recorded per block: mixed-mode
// histories stay consistent.
func TestSystemMixedHistory(t *testing.T) {
	s := newSystem(t, DefaultSystemOptions())
	rng := rand.New(rand.NewSource(901))
	shadow := map[uint64]cipher.Block{}
	now := int64(0)
	for i := 0; i < 200; i++ {
		addr := uint64(rng.Intn(64)) * 64
		var plain cipher.Block
		rng.Read(plain[:])
		if _, err := s.WriteAt(now, addr, plain); err != nil {
			t.Fatal(err)
		}
		shadow[addr] = plain
		// Occasionally flood to force counterless epochs.
		if i%50 == 25 {
			for j := 0; j < int(s.Monitor().Threshold())+1; j++ {
				s.Monitor().Record(now)
			}
		}
		now += 2_000_000
	}
	for addr, want := range shadow {
		got, _, err := s.ReadAt(now, addr)
		if err != nil || got != want {
			t.Fatalf("block %#x lost after mixed-mode history: %v", addr, err)
		}
	}
}

package core

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"counterlight/internal/trace"
)

// The SchemePipeline conformance goldens: Result fields captured from
// the pre-refactor simulator (scheme behavior inline in mcRead/mcWrite,
// commit c216e6f) on the calibration seeds. The refactored pipelines
// must reproduce these bit-identically — the refactor moves code, it
// must not move numbers.
//
// Regenerate (e.g. after an intentional timing-model change) with:
//
//	CONFORMANCE_REGEN=1 go test ./internal/core -run TestSchemeConformance -v
//
// and paste the emitted table over conformanceGoldens.

// conformanceCase pins one simulated window.
type conformanceCase struct {
	workload string
	scheme   Scheme
	bw       float64
	seed     int64
}

// conformanceGolden is the expected Result, floats in shortest
// round-trip form so equality is bit-exact.
type conformanceGolden struct {
	instr, llcMiss, llcWB          uint64
	dramReads, dramWrites, rowHits uint64
	wbCls, wbTotal                 uint64
	avgMissLatNS, memoHitRate      string
	counterLateFrac                string
}

func conformanceCases() []conformanceCase {
	var out []conformanceCase
	for _, sc := range []Scheme{NoEnc, Counterless, CounterMode, CounterModeSingle, CounterLight} {
		// canneal at 6.4 GB/s saturates the channel, exercising the
		// epoch monitor's counterless switching; mcf at 25.6 GB/s is the
		// dependent-load case where counter arrival timing matters.
		out = append(out,
			conformanceCase{workload: "canneal", scheme: sc, bw: 6.4, seed: 1},
			conformanceCase{workload: "mcf", scheme: sc, bw: 25.6, seed: 2},
		)
	}
	return out
}

func (c conformanceCase) config() Config {
	cfg := fastCfg(c.scheme)
	cfg.BandwidthGBs = c.bw
	cfg.Seed = c.seed
	cfg.WarmupTime = 300 * us
	cfg.WindowTime = 400 * us
	return cfg
}

func (c conformanceCase) String() string {
	return fmt.Sprintf("%s/%s/bw%.1f/seed%d", c.workload, c.scheme, c.bw, c.seed)
}

// f64 renders a float in its shortest exact form.
func f64(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func goldenOf(r Result) conformanceGolden {
	return conformanceGolden{
		instr:           r.Instructions,
		llcMiss:         r.LLCMisses,
		llcWB:           r.LLCWritebacks,
		dramReads:       r.DRAM.Reads,
		dramWrites:      r.DRAM.Writes,
		rowHits:         r.DRAM.RowHits,
		wbCls:           r.WBCounterless,
		wbTotal:         r.WBTotal,
		avgMissLatNS:    f64(r.AvgMissLatNS),
		memoHitRate:     f64(r.MemoHitRate),
		counterLateFrac: f64(r.CounterLateFrac),
	}
}

// TestSchemeConformance locks every scheme's refactored pipeline to the
// pre-refactor simulator output.
func TestSchemeConformance(t *testing.T) {
	regen := os.Getenv("CONFORMANCE_REGEN") != ""
	for _, c := range conformanceCases() {
		c := c
		t.Run(c.String(), func(t *testing.T) {
			w, ok := trace.ByName(c.workload)
			if !ok {
				t.Fatalf("workload %s missing", c.workload)
			}
			r, err := Run(c.config(), w)
			if err != nil {
				t.Fatal(err)
			}
			got := goldenOf(r)
			if regen {
				fmt.Printf("\t%q: {%d, %d, %d, %d, %d, %d, %d, %d, %q, %q, %q},\n",
					c.String(), got.instr, got.llcMiss, got.llcWB,
					got.dramReads, got.dramWrites, got.rowHits,
					got.wbCls, got.wbTotal,
					got.avgMissLatNS, got.memoHitRate, got.counterLateFrac)
				return
			}
			want, ok := conformanceGoldens[c.String()]
			if !ok {
				t.Fatalf("no golden for %s (CONFORMANCE_REGEN=1 to capture)", c)
			}
			if got != want {
				t.Errorf("result diverged from pre-refactor golden:\n got: %+v\nwant: %+v", got, want)
			}
		})
	}
}

// conformanceGoldens maps case name to the pre-refactor Result fields.
var conformanceGoldens = map[string]conformanceGolden{
	"canneal/noenc/bw6.4/seed1":              {249537, 11531, 3386, 34581, 3386, 105, 0, 0, "300.0356381059752", "0", "0"},
	"mcf/noenc/bw25.6/seed2":                 {258954, 23831, 1176, 71478, 1176, 69, 0, 0, "47.44006395031681", "0", "0"},
	"canneal/counterless/bw6.4/seed1":        {237294, 10947, 3144, 32828, 3144, 96, 0, 0, "321.25212332145793", "0", "0"},
	"mcf/counterless/bw25.6/seed2":           {231708, 21194, 1046, 63562, 1046, 58, 0, 0, "56.24931216381995", "0", "0"},
	"canneal/countermode/bw6.4/seed1":        {142609, 6332, 948, 35934, 3327, 877, 0, 948, "595.2311179722047", "1", "0.05290587492103601"},
	"mcf/countermode/bw25.6/seed2":           {229581, 20569, 1012, 120429, 4552, 1699, 0, 1012, "58.637631095337646", "1", "0.1418153532014196"},
	"canneal/countermode-single/bw6.4/seed1": {196561, 9066, 2225, 36001, 2225, 594, 0, 0, "400.23857555702625", "1", "0.05735715861460401"},
	"mcf/countermode-single/bw25.6/seed2":    {232800, 21992, 1088, 87864, 1088, 654, 0, 0, "53.38547771917061", "1", "0.10462895598399417"},
	"canneal/counterlight/bw6.4/seed1":       {249150, 11543, 3391, 34617, 3391, 103, 3391, 3391, "300.04479805943", "1", "0"},
	"mcf/counterlight/bw25.6/seed2":          {261435, 24079, 1187, 75393, 4355, 148, 0, 1187, "46.74212450683168", "1", "0"},
}

package core

import (
	"fmt"
	"slices"
	"sync"

	"counterlight/internal/cache"
	"counterlight/internal/ctrblock"
	"counterlight/internal/epoch"
)

// MCContext is the narrow seam between a SchemePipeline and the shared
// memory-controller substrate (DRAM channel, counter cache, memoization
// table, epoch monitor, event queue, observability). Pipelines see the
// substrate only through this interface, so a new scheme cannot reach
// into simulator internals and the simulator cannot grow per-scheme
// branches back.
//
// All times are picoseconds of simulated time.
type MCContext interface {
	// Config is the run's (validated, immutable) configuration.
	Config() *Config
	// Measuring reports whether the run is inside the measurement
	// window (warmup traffic must not count toward Result fields).
	Measuring() bool

	// DRAMRead issues a metadata fetch (counter block, tree node) on
	// the DRAM channel at time t, recording it on the epoch bandwidth
	// monitor, and returns its completion time.
	DRAMRead(addr uint64, t int64) int64
	// PostDRAMWrite schedules a posted metadata write (e.g. a dirty
	// counter-cache eviction) through the global event queue so state
	// mutations happen in timestamp order.
	PostDRAMWrite(t int64, addr uint64)
	// PostCounterUpdate schedules the counter-block half of a
	// counter-mode writeback; it is delivered back to the pipeline's
	// CounterUpdate at time t.
	PostCounterUpdate(t int64, addr uint64)
	// PostTreeWalk schedules one integrity-tree level of a walk; it is
	// delivered back to the pipeline's TreeWalkStep at time t.
	PostTreeWalk(t int64, addr uint64, level int, dirty bool)

	// CounterCache is the shared on-chip metadata cache (64 KB, 32-way
	// under Table I).
	CounterCache() *cache.Cache
	// Layout maps data addresses to counter-block and tree-node
	// addresses.
	Layout() *ctrblock.Store

	// MemoLookup probes the AES memoization table, emitting the
	// hit/miss trace event and window statistics.
	MemoLookup(ctr uint32) bool
	// NextWriteCounter picks the next counter value for a writeback
	// under the memoization-friendly update policy (a plain increment
	// when memoization is disabled).
	NextWriteCounter(old uint32) uint32

	// WritebackMode is the epoch monitor's current counter-vs-
	// counterless decision for writebacks arriving at time t.
	WritebackMode(t int64) epoch.Mode

	// CounterArrival records one Fig. 8 sample: counter-known time
	// minus data-arrival time for a demand LLC miss.
	CounterArrival(delta int64)
	// CountWriteback counts a mode-decided writeback toward the
	// Fig. 21 mix (WBTotal, and WBCounterless when counterless).
	CountWriteback(counterless bool)
}

// SchemePipeline is one memory-protection design's timing behavior on
// the memory controller's hot paths. Each scheme (NoEnc, Counterless,
// CounterMode, CounterLight, and any future design) is a self-contained
// pipeline owning its OTP-latency model, counter and tree-walk traffic,
// memoization interaction, and writeback-mode decisions, wired to the
// shared substrate through MCContext.
//
// A pipeline instance belongs to exactly one run and is never shared,
// so implementations may keep per-block state in plain maps.
type SchemePipeline interface {
	// ReadMiss is the LLC-read-miss decrypt path: given the miss's MC
	// arrival time tm and the DRAM completion time of the data block,
	// return when the decrypted data is usable (Figs. 7 and 13).
	// demand distinguishes demand misses from prefetches.
	ReadMiss(addr uint64, tm, dataDone int64, demand bool) int64
	// Writeback performs the scheme's metadata work for an LLC
	// writeback arriving at tw (the data write itself is charged by
	// the substrate; writebacks are posted and never stall the core).
	Writeback(addr uint64, tw int64)
	// CounterUpdate services a deferred counter-block update the
	// pipeline scheduled via PostCounterUpdate.
	CounterUpdate(addr uint64, t int64)
	// TreeWalkStep services one integrity-tree level the pipeline
	// scheduled via PostTreeWalk.
	TreeWalkStep(addr uint64, level int, dirty bool, t int64)
}

// metaFlag marks a counterless block in a pipeline's per-block
// metadata (the uint32 view of ctrblock.CounterlessFlag).
const metaFlag = uint32(ctrblock.CounterlessFlag)

// modeOf is the one source of truth, shared by the timing pipelines
// and the functional Engine, for which encryption mode a block's
// EncryptionMetadata value selects.
func modeOf(meta uint64) epoch.Mode {
	if meta == ctrblock.CounterlessFlag {
		return epoch.Counterless
	}
	return epoch.CounterMode
}

// PipelineFactory builds a scheme's pipeline for one run.
type PipelineFactory func(cfg *Config, ctx MCContext) SchemePipeline

// schemeRegistry maps Scheme ids to their name and pipeline factory.
// Guarded by a mutex so tests or future external schemes can register
// at init time; every per-run lookup takes the read lock once, off the
// hot paths.
var schemeRegistry = struct {
	sync.RWMutex
	m map[Scheme]schemeEntry
}{m: make(map[Scheme]schemeEntry)}

type schemeEntry struct {
	name  string
	build PipelineFactory
}

// RegisterScheme installs a scheme's name and pipeline factory,
// making it accepted by Config.Validate and runnable by Run. The
// built-in schemes self-register; new designs (a Sealer-style in-SRAM
// AES, a BipBip-style low-latency cipher) plug in here without
// touching the simulator. Call it from an init function: registration
// after simulations have started racing is not supported.
func RegisterScheme(s Scheme, name string, build PipelineFactory) {
	if build == nil || name == "" {
		panic("core: RegisterScheme needs a name and a factory")
	}
	schemeRegistry.Lock()
	defer schemeRegistry.Unlock()
	if _, dup := schemeRegistry.m[s]; dup {
		panic(fmt.Sprintf("core: scheme %d registered twice", int(s)))
	}
	schemeRegistry.m[s] = schemeEntry{name: name, build: build}
}

// lookupScheme returns the registry entry for s.
func lookupScheme(s Scheme) (schemeEntry, bool) {
	schemeRegistry.RLock()
	defer schemeRegistry.RUnlock()
	e, ok := schemeRegistry.m[s]
	return e, ok
}

// SchemeByName resolves a registered scheme name (the Scheme.String
// form) back to its id — the CLI-facing inverse of RegisterScheme.
func SchemeByName(name string) (Scheme, bool) {
	schemeRegistry.RLock()
	defer schemeRegistry.RUnlock()
	for s, e := range schemeRegistry.m {
		if e.name == name {
			return s, true
		}
	}
	return 0, false
}

// SchemeNames lists every registered scheme name in id order, for
// help text and error messages.
func SchemeNames() []string {
	schemeRegistry.RLock()
	defer schemeRegistry.RUnlock()
	ids := make([]Scheme, 0, len(schemeRegistry.m))
	for s := range schemeRegistry.m {
		ids = append(ids, s)
	}
	slices.Sort(ids)
	names := make([]string, len(ids))
	for i, s := range ids {
		names[i] = schemeRegistry.m[s].name
	}
	return names
}

// newSchemePipeline builds the run's pipeline — the single remaining
// scheme dispatch on the MC paths, taken once per run.
func newSchemePipeline(cfg *Config, ctx MCContext) (SchemePipeline, error) {
	e, ok := lookupScheme(cfg.Scheme)
	if !ok {
		return nil, fmt.Errorf("core: unknown scheme %d", int(cfg.Scheme))
	}
	return e.build(cfg, ctx), nil
}

func init() {
	RegisterScheme(NoEnc, "noenc", func(_ *Config, ctx MCContext) SchemePipeline {
		return &noEncPipeline{ctx: ctx}
	})
	RegisterScheme(Counterless, "counterless", func(_ *Config, ctx MCContext) SchemePipeline {
		return &counterlessPipeline{ctx: ctx}
	})
	RegisterScheme(CounterMode, "countermode", func(_ *Config, ctx MCContext) SchemePipeline {
		return newCounterModePipeline(ctx, true)
	})
	RegisterScheme(CounterModeSingle, "countermode-single", func(_ *Config, ctx MCContext) SchemePipeline {
		return newCounterModePipeline(ctx, false)
	})
	RegisterScheme(CounterLight, "counterlight", func(_ *Config, ctx MCContext) SchemePipeline {
		return newCounterLightPipeline(ctx)
	})
}

// counterTraffic is the counter-block machinery shared by every
// counter-carrying pipeline: the per-block EncryptionMetadata map, the
// memoization-aware OTP latency model, deferred counter-block updates,
// and integrity-tree walks.
type counterTraffic struct {
	ctx  MCContext
	meta map[uint64]uint32 // data block index -> counter (or metaFlag)
}

func newCounterTraffic(ctx MCContext) counterTraffic {
	return counterTraffic{ctx: ctx, meta: make(map[uint64]uint32)}
}

// blockMeta returns the block's current EncryptionMetadata value.
func (ct *counterTraffic) blockMeta(blk uint64) uint32 { return ct.meta[blk] }

// bumpCounter advances a block's counter with the memoization-friendly
// policy (or a plain increment when memoization is disabled).
func (ct *counterTraffic) bumpCounter(blk uint64) {
	old := ct.meta[blk]
	if old == metaFlag {
		old = 0 // re-entering counter mode; real HW reads the counter block
	}
	if ct.ctx.Config().MemoizeEnabled {
		ct.meta[blk] = ct.ctx.NextWriteCounter(old)
	} else {
		ct.meta[blk] = old + 1
	}
}

// memoOTP charges the memoization table (hit: hitLat) or a full AES
// recomputation, counting window statistics through the context.
func (ct *counterTraffic) memoOTP(ctr uint32, hitLat int64) int64 {
	cfg := ct.ctx.Config()
	if !cfg.MemoizeEnabled {
		return cfg.AESLat
	}
	if ct.ctx.MemoLookup(ctr) {
		return hitLat
	}
	return cfg.AESLat
}

// CounterUpdate is the counter-block half of a counter-mode writeback:
// hit or fetch the counter block, dirty it, advance the counter, and
// kick off the tree walk.
func (ct *counterTraffic) CounterUpdate(addr uint64, t int64) {
	ctx := ct.ctx
	blk := addr / ctx.Config().BlockSize
	cbAddr := ctx.Layout().CounterBlockAddr(addr)
	cc := ctx.CounterCache()
	if hit, _ := cc.Lookup(cbAddr, t); hit {
		cc.Write(cbAddr, t)
		ct.bumpCounter(blk)
		ctx.PostTreeWalk(t, addr, 0, true)
		return
	}
	done := ctx.DRAMRead(cbAddr, t)
	if ev, ok := cc.Insert(cbAddr, done, true); ok && ev.Dirty {
		ctx.PostDRAMWrite(done, ev.Addr)
	}
	ct.bumpCounter(blk)
	ctx.PostTreeWalk(done, addr, 0, true)
}

// TreeWalkStep fetches one integrity-tree level of a walk, scheduling
// the next level after the fetch completes. The walk stops at the
// first counter-cache hit (that level and everything above it was
// verified when it was brought in).
func (ct *counterTraffic) TreeWalkStep(addr uint64, level int, dirty bool, t int64) {
	ctx := ct.ctx
	nodes := ctx.Layout().TreeNodeAddrs(addr)
	if level >= len(nodes) {
		return
	}
	na := nodes[level]
	cc := ctx.CounterCache()
	if hit, _ := cc.Lookup(na, t); hit {
		if dirty {
			cc.Write(na, t)
		}
		return
	}
	done := ctx.DRAMRead(na, t)
	if ev, ok := cc.Insert(na, done, dirty); ok && ev.Dirty {
		ctx.PostDRAMWrite(done, ev.Addr)
	}
	ctx.PostTreeWalk(done, addr, level+1, dirty)
}

// noCounterTraffic gives schemes without counter metadata (NoEnc,
// Counterless) no-op writeback and deferred-event handlers.
type noCounterTraffic struct{}

func (noCounterTraffic) Writeback(uint64, int64)               {}
func (noCounterTraffic) CounterUpdate(uint64, int64)           {}
func (noCounterTraffic) TreeWalkStep(uint64, int, bool, int64) {}

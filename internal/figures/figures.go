// Package figures regenerates every table and figure of the paper's
// evaluation (§III, §VI). Each FigN function runs the experiment on
// the simulator and returns a printable table; cmd/clbench renders
// them and bench_test.go wraps them as benchmarks.
//
// Runs are memoized in a Runner so figures that share configurations
// (e.g. Figs. 5, 16, 17, 18, 19 all use the 25.6 GB/s irregular runs)
// do not repeat simulations.
package figures

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"counterlight/internal/core"
	"counterlight/internal/obs"
	"counterlight/internal/stats"
	"counterlight/internal/trace"
)

// Figure is one regenerated table/figure.
type Figure struct {
	ID      string
	Title   string
	Columns []string // first column is the row label
	Rows    [][]string
	Notes   []string
}

// String renders the figure as an aligned text table.
func (f Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", f.ID, f.Title)
	widths := make([]int, len(f.Columns))
	for i, c := range f.Columns {
		widths[i] = len(c)
	}
	for _, r := range f.Rows {
		for i, v := range r {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	line := func(cells []string) {
		for i, v := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], v)
		}
		b.WriteByte('\n')
	}
	line(f.Columns)
	for _, r := range f.Rows {
		line(r)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the figure as RFC-4180-ish CSV (header row first),
// for piping into plotting tools.
func (f Figure) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, v := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(v, ",\"\n") {
				v = "\"" + strings.ReplaceAll(v, "\"", "\"\"") + "\""
			}
			b.WriteString(v)
		}
		b.WriteByte('\n')
	}
	writeRow(f.Columns)
	for _, r := range f.Rows {
		writeRow(r)
	}
	return b.String()
}

// runKey identifies a memoized simulation.
type runKey struct {
	workload  string
	scheme    core.Scheme
	bwTenths  int // bandwidth GB/s * 10
	aesLat    int64
	threshold int // percent
	dynSwitch bool
	prefetch  bool
	cores     int
	memoOff   bool
}

// Runner runs and memoizes simulations.
type Runner struct {
	// Quick shrinks the measurement windows ~2x for bench/test use.
	Quick bool
	// Workers bounds how many simulations a sweep runs at once
	// (core.Run is re-entrant). <= 1 keeps the classic serial order.
	// Parallelism never changes a figure: sweeps only prewarm the run
	// cache, and the (serial) assembly phase reads results from it.
	Workers int
	// Log receives progress lines (nil to disable). Parallel sweeps
	// call it from worker goroutines, so it must be safe for
	// concurrent use.
	Log func(string)
	// Observe, when set, is called with each simulation's workload and
	// configuration just before core.Run; it may attach observability
	// (cfg.Obs, cfg.Epochs, cfg.Progress — none of which perturb the
	// result) and returns a completion callback, or nil. The
	// monitoring server's run pool and clbench's snapshot writer hook
	// in here. Cache hits skip Observe entirely: no simulation runs.
	// Parallel sweeps call it from worker goroutines, so it must be
	// safe for concurrent use.
	Observe func(w trace.Workload, cfg *core.Config) func(core.Result, error)

	mu    sync.Mutex // guards cache
	cache map[runKey]core.Result

	// metrics counts completed simulations and their cumulative wall
	// time (figures_runs_total, figures_run_wall_ns_total).
	metrics *obs.Registry
}

// NewRunner creates a serial Runner; set Workers to sweep in parallel.
func NewRunner(quick bool) *Runner {
	return &Runner{Quick: quick, cache: make(map[runKey]core.Result), metrics: obs.NewRegistry()}
}

// Metrics exposes the runner's sweep counters: figures_runs_total and
// figures_run_wall_ns_total (cumulative simulate wall time, the
// numerator of a sweep's parallel speedup).
func (r *Runner) Metrics() *obs.Registry { return r.metrics }

// variant describes a configuration delta from the Table I defaults.
type variant struct {
	scheme    core.Scheme
	bw        float64
	aes256    bool
	threshold float64
	noSwitch  bool
	noPrefet  bool
	cores     int
	memoOff   bool
}

// cfgFor materializes a variant's configuration and its cache key.
func (r *Runner) cfgFor(w trace.Workload, v variant) (core.Config, runKey) {
	cfg := core.DefaultConfig(v.scheme)
	if v.bw != 0 {
		cfg.BandwidthGBs = v.bw
	}
	if v.aes256 {
		cfg = cfg.WithAES256()
	}
	if v.threshold != 0 {
		cfg.Threshold = v.threshold
	}
	if v.noSwitch {
		cfg.DynamicSwitch = false
	}
	if v.noPrefet {
		cfg.PrefetchEnabled = false
	}
	if v.cores != 0 {
		cfg.Cores = v.cores
	}
	if v.memoOff {
		cfg.MemoizeEnabled = false
	}
	if r.Quick {
		cfg.WarmupTime /= 2
		cfg.WindowTime /= 2
	}
	key := runKey{
		workload:  w.Name,
		scheme:    cfg.Scheme,
		bwTenths:  int(cfg.BandwidthGBs * 10),
		aesLat:    cfg.AESLat,
		threshold: int(cfg.Threshold * 100),
		dynSwitch: cfg.DynamicSwitch,
		prefetch:  cfg.PrefetchEnabled,
		cores:     cfg.Cores,
		memoOff:   !cfg.MemoizeEnabled,
	}
	return cfg, key
}

func (r *Runner) run(w trace.Workload, v variant) (core.Result, error) {
	cfg, key := r.cfgFor(w, v)
	r.mu.Lock()
	res, ok := r.cache[key]
	r.mu.Unlock()
	if ok {
		return res, nil
	}
	if r.Log != nil {
		r.Log(fmt.Sprintf("run %s/%s bw=%.1f aes=%dns th=%d%% switch=%v",
			w.Name, cfg.Scheme, cfg.BandwidthGBs, cfg.AESLat/1000, key.threshold, cfg.DynamicSwitch))
	}
	var done func(core.Result, error)
	if r.Observe != nil {
		done = r.Observe(w, &cfg)
	}
	start := time.Now()
	res, err := core.Run(cfg, w)
	if done != nil {
		done(res, err)
	}
	if err != nil {
		return core.Result{}, fmt.Errorf("figures: %s/%s: %w", w.Name, cfg.Scheme, err)
	}
	wall := time.Since(start)
	r.metrics.Counter("figures_runs_total").Inc()
	r.metrics.Counter("figures_run_wall_ns_total").Add(uint64(wall.Nanoseconds()))
	if r.Log != nil {
		r.Log(fmt.Sprintf("done %s/%s in %.2fs", w.Name, cfg.Scheme, wall.Seconds()))
	}
	r.mu.Lock()
	r.cache[key] = res
	r.mu.Unlock()
	return res, nil
}

// job is one workload×variant cell of a sweep matrix.
type job struct {
	w trace.Workload
	v variant
}

// cross builds the full sweep matrix: every workload under every
// variant.
func cross(ws []trace.Workload, vs ...variant) []job {
	jobs := make([]job, 0, len(ws)*len(vs))
	for _, w := range ws {
		for _, v := range vs {
			jobs = append(jobs, job{w, v})
		}
	}
	return jobs
}

// prewarm fills the run cache for the jobs through the Do pool.
// Duplicate and already-cached jobs are dropped before any worker
// starts. With Workers <= 1 it is a no-op and the assembly phase
// simulates lazily, exactly like the serial runner always has.
func (r *Runner) prewarm(jobs []job) error {
	if r.Workers <= 1 {
		return nil
	}
	seen := make(map[runKey]bool, len(jobs))
	var todo []job
	r.mu.Lock()
	for _, j := range jobs {
		_, key := r.cfgFor(j.w, j.v)
		if seen[key] {
			continue
		}
		seen[key] = true
		if _, ok := r.cache[key]; !ok {
			todo = append(todo, j)
		}
	}
	r.mu.Unlock()

	tasks := make([]func() error, 0, len(todo))
	for _, j := range todo {
		j := j
		tasks = append(tasks, func() error {
			_, err := r.run(j.w, j.v)
			return err
		})
	}
	return r.Do(tasks...)
}

// Do runs the tasks through the Runner's bounded worker pool (at most
// max(1, Workers) at a time) and returns the first error encountered;
// every task runs regardless. The sweep prewarmer and the
// differential-verification harness (internal/check) share this pool,
// so a single -j flag budgets all of a process's concurrent work.
func (r *Runner) Do(tasks ...func() error) error {
	workers := r.Workers
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for _, task := range tasks {
		wg.Add(1)
		go func(task func() error) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := task(); err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
		}(task)
	}
	wg.Wait()
	return firstErr
}

func pct(v float64) string { return fmt.Sprintf("%.3f", v) }
func pc1(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
func ns1(v float64) string { return fmt.Sprintf("%.1f", v) }

// Sec3Micro reproduces §III's real-system microbenchmark: the pointer
// chase with prefetchers off, one access at a time; the per-miss delta
// between counterless and no encryption is the AES latency.
func (r *Runner) Sec3Micro() (Figure, error) {
	f := Figure{
		ID:      "Sec3",
		Title:   "Pointer-chase microbenchmark: per-miss latency (ns), counterless vs no encryption",
		Columns: []string{"config", "miss latency (ns)", "delta vs noenc (ns)"},
	}
	micro := trace.MicroPointerChase()
	if err := r.prewarm(cross([]trace.Workload{micro},
		variant{scheme: core.NoEnc, noPrefet: true, cores: 1},
		variant{scheme: core.Counterless, noPrefet: true, cores: 1},
		variant{scheme: core.Counterless, aes256: true, noPrefet: true, cores: 1},
	)); err != nil {
		return f, err
	}
	v := variant{scheme: core.NoEnc, noPrefet: true, cores: 1}
	base, err := r.run(micro, v)
	if err != nil {
		return f, err
	}
	v.scheme = core.Counterless
	cls, err := r.run(micro, v)
	if err != nil {
		return f, err
	}
	v.aes256 = true
	cls256, err := r.run(micro, v)
	if err != nil {
		return f, err
	}
	f.Rows = [][]string{
		{"no encryption", ns1(base.AvgMissLatNS), "0.0"},
		{"counterless AES-128", ns1(cls.AvgMissLatNS), ns1(cls.AvgMissLatNS - base.AvgMissLatNS)},
		{"counterless AES-256", ns1(cls256.AvgMissLatNS), ns1(cls256.AvgMissLatNS - base.AvgMissLatNS)},
	}
	f.Notes = append(f.Notes, "paper: TME adds ~10 ns (AES-128) per LLC miss on an Intel Silver 4314; AES-256 simulated at 14 ns")
	return f, nil
}

// Fig5 reproduces Fig. 5: counterless performance normalized to no
// encryption for the irregular set, AES-128 and AES-256.
func (r *Runner) Fig5() (Figure, error) {
	f := Figure{
		ID:      "Fig5",
		Title:   "Counterless performance normalized to no encryption (irregular workloads)",
		Columns: []string{"workload", "AES-128", "AES-256"},
	}
	if err := r.prewarm(cross(trace.IrregularSet(),
		variant{scheme: core.NoEnc},
		variant{scheme: core.Counterless},
		variant{scheme: core.Counterless, aes256: true},
	)); err != nil {
		return f, err
	}
	var v128, v256 []float64
	for _, w := range trace.IrregularSet() {
		base, err := r.run(w, variant{scheme: core.NoEnc})
		if err != nil {
			return f, err
		}
		c128, err := r.run(w, variant{scheme: core.Counterless})
		if err != nil {
			return f, err
		}
		c256, err := r.run(w, variant{scheme: core.Counterless, aes256: true})
		if err != nil {
			return f, err
		}
		p128 := c128.PerfNormalizedTo(base)
		p256 := c256.PerfNormalizedTo(base)
		v128 = append(v128, p128)
		v256 = append(v256, p256)
		f.Rows = append(f.Rows, []string{w.Name, pct(p128), pct(p256)})
	}
	f.Rows = append(f.Rows, []string{"mean", pct(stats.Mean(v128)), pct(stats.Mean(v256))})
	f.Notes = append(f.Notes, "paper: average 0.91 (AES-128, real system) and 0.87 (AES-256, simulated)")
	return f, nil
}

// Fig8 reproduces Fig. 8: the distribution of counter arrival minus
// data arrival across all LLC misses under RMCC (counter mode with
// memoization).
func (r *Runner) Fig8() (Figure, error) {
	f := Figure{
		ID:      "Fig8",
		Title:   "Counter arrival minus data arrival across LLC misses (counter mode/RMCC)",
		Columns: []string{"workload", "<=0ns", "(0,5]ns", "(5,10]ns", ">10ns", "counter late"},
	}
	if err := r.prewarm(cross(trace.IrregularSet(), variant{scheme: core.CounterMode})); err != nil {
		return f, err
	}
	var late []float64
	for _, w := range trace.IrregularSet() {
		res, err := r.run(w, variant{scheme: core.CounterMode})
		if err != nil {
			return f, err
		}
		fr := res.CounterLateHist.Fractions()
		late = append(late, res.CounterLateFrac)
		f.Rows = append(f.Rows, []string{
			w.Name, pc1(fr[0]), pc1(fr[1]), pc1(fr[2]), pc1(fr[3]), pc1(res.CounterLateFrac),
		})
	}
	f.Rows = append(f.Rows, []string{"mean", "", "", "", "", pc1(stats.Mean(late))})
	f.Notes = append(f.Notes, "paper: counter arrives later than data for 22% of all LLC misses")
	return f, nil
}

// Fig9 reproduces Fig. 9: the slowdown caused strictly by fetching the
// missing block's one counter per read miss (all writeback counter and
// tree traffic dropped), with counterless as the reference.
func (r *Runner) Fig9() (Figure, error) {
	f := Figure{
		ID:      "Fig9",
		Title:   "Overhead of the single per-miss counter access vs counterless (normalized to no encryption)",
		Columns: []string{"workload", "single-counter", "counterless"},
	}
	if err := r.prewarm(cross(trace.IrregularSet(),
		variant{scheme: core.NoEnc},
		variant{scheme: core.CounterModeSingle},
		variant{scheme: core.Counterless},
	)); err != nil {
		return f, err
	}
	var vs, vc []float64
	for _, w := range trace.IrregularSet() {
		base, err := r.run(w, variant{scheme: core.NoEnc})
		if err != nil {
			return f, err
		}
		single, err := r.run(w, variant{scheme: core.CounterModeSingle})
		if err != nil {
			return f, err
		}
		cls, err := r.run(w, variant{scheme: core.Counterless})
		if err != nil {
			return f, err
		}
		ps := single.PerfNormalizedTo(base)
		pc := cls.PerfNormalizedTo(base)
		vs = append(vs, ps)
		vc = append(vc, pc)
		f.Rows = append(f.Rows, []string{w.Name, pct(ps), pct(pc)})
	}
	f.Rows = append(f.Rows, []string{"mean", pct(stats.Mean(vs)), pct(stats.Mean(vc))})
	f.Notes = append(f.Notes, "paper: the one counter access alone costs 7% on average, almost as much as counterless encryption's 9%")
	return f, nil
}

// Fig16 reproduces Fig. 16: Counter-light and counterless normalized
// to no encryption under AES-128 and AES-256 at 25.6 GB/s.
func (r *Runner) Fig16() (Figure, error) {
	f := Figure{
		ID:      "Fig16",
		Title:   "Performance normalized to no encryption, 25.6 GB/s (irregular workloads)",
		Columns: []string{"workload", "counterless-128", "counterlight-128", "counterless-256", "counterlight-256"},
	}
	if err := r.prewarm(cross(trace.IrregularSet(),
		variant{scheme: core.NoEnc},
		variant{scheme: core.Counterless},
		variant{scheme: core.CounterLight},
		variant{scheme: core.Counterless, aes256: true},
		variant{scheme: core.CounterLight, aes256: true},
	)); err != nil {
		return f, err
	}
	var cl128s, cls128s, cl256s, cls256s []float64
	for _, w := range trace.IrregularSet() {
		base, err := r.run(w, variant{scheme: core.NoEnc})
		if err != nil {
			return f, err
		}
		get := func(s core.Scheme, aes256 bool) (float64, error) {
			res, err := r.run(w, variant{scheme: s, aes256: aes256})
			if err != nil {
				return 0, err
			}
			return res.PerfNormalizedTo(base), nil
		}
		cls128, err := get(core.Counterless, false)
		if err != nil {
			return f, err
		}
		cl128, err := get(core.CounterLight, false)
		if err != nil {
			return f, err
		}
		cls256, err := get(core.Counterless, true)
		if err != nil {
			return f, err
		}
		cl256, err := get(core.CounterLight, true)
		if err != nil {
			return f, err
		}
		cls128s = append(cls128s, cls128)
		cl128s = append(cl128s, cl128)
		cls256s = append(cls256s, cls256)
		cl256s = append(cl256s, cl256)
		f.Rows = append(f.Rows, []string{w.Name, pct(cls128), pct(cl128), pct(cls256), pct(cl256)})
	}
	f.Rows = append(f.Rows, []string{"mean",
		pct(stats.Mean(cls128s)), pct(stats.Mean(cl128s)),
		pct(stats.Mean(cls256s)), pct(stats.Mean(cl256s))})
	f.Notes = append(f.Notes,
		"paper: counter-light <=2% average slowdown; improvement over counterless 8.6% (AES-128) and 13.0% (AES-256)")
	return f, nil
}

// Fig17 reproduces Fig. 17: average LLC miss latency overhead vs no
// encryption.
func (r *Runner) Fig17() (Figure, error) {
	f := Figure{
		ID:      "Fig17",
		Title:   "Average LLC miss latency overhead vs no encryption (ns)",
		Columns: []string{"workload", "counterless-128", "counterlight-128", "counterless-256", "counterlight-256"},
	}
	if err := r.prewarm(cross(trace.IrregularSet(),
		variant{scheme: core.NoEnc},
		variant{scheme: core.Counterless},
		variant{scheme: core.CounterLight},
		variant{scheme: core.Counterless, aes256: true},
		variant{scheme: core.CounterLight, aes256: true},
	)); err != nil {
		return f, err
	}
	var d128c, d128l, d256c, d256l []float64
	for _, w := range trace.IrregularSet() {
		base, err := r.run(w, variant{scheme: core.NoEnc})
		if err != nil {
			return f, err
		}
		delta := func(s core.Scheme, aes256 bool) (float64, error) {
			res, err := r.run(w, variant{scheme: s, aes256: aes256})
			if err != nil {
				return 0, err
			}
			return res.AvgMissLatNS - base.AvgMissLatNS, nil
		}
		c128, err := delta(core.Counterless, false)
		if err != nil {
			return f, err
		}
		l128, err := delta(core.CounterLight, false)
		if err != nil {
			return f, err
		}
		c256, err := delta(core.Counterless, true)
		if err != nil {
			return f, err
		}
		l256, err := delta(core.CounterLight, true)
		if err != nil {
			return f, err
		}
		d128c = append(d128c, c128)
		d128l = append(d128l, l128)
		d256c = append(d256c, c256)
		d256l = append(d256l, l256)
		f.Rows = append(f.Rows, []string{w.Name, ns1(c128), ns1(l128), ns1(c256), ns1(l256)})
	}
	f.Rows = append(f.Rows, []string{"mean",
		ns1(stats.Mean(d128c)), ns1(stats.Mean(d128l)),
		ns1(stats.Mean(d256c)), ns1(stats.Mean(d256l))})
	f.Notes = append(f.Notes,
		"paper: counter-light saves 7.2 ns (AES-128) / 11.2 ns (AES-256) of miss latency vs counterless")
	return f, nil
}

// Fig18 reproduces Fig. 18: DRAM bandwidth utilization under 25.6 and
// 6.4 GB/s.
func (r *Runner) Fig18() (Figure, error) {
	f := Figure{
		ID:      "Fig18",
		Title:   "DRAM bandwidth utilization",
		Columns: []string{"workload", "noenc@25.6", "counterless@25.6", "counterlight@25.6", "noenc@6.4", "counterlight@6.4"},
	}
	if err := r.prewarm(cross(trace.IrregularSet(),
		variant{scheme: core.NoEnc},
		variant{scheme: core.Counterless},
		variant{scheme: core.CounterLight},
		variant{scheme: core.NoEnc, bw: 6.4},
		variant{scheme: core.CounterLight, bw: 6.4},
	)); err != nil {
		return f, err
	}
	var u0, u1, u2, u3, u4 []float64
	for _, w := range trace.IrregularSet() {
		vals := make([]float64, 5)
		for i, v := range []variant{
			{scheme: core.NoEnc},
			{scheme: core.Counterless},
			{scheme: core.CounterLight},
			{scheme: core.NoEnc, bw: 6.4},
			{scheme: core.CounterLight, bw: 6.4},
		} {
			res, err := r.run(w, v)
			if err != nil {
				return f, err
			}
			vals[i] = res.BusUtilization
		}
		u0 = append(u0, vals[0])
		u1 = append(u1, vals[1])
		u2 = append(u2, vals[2])
		u3 = append(u3, vals[3])
		u4 = append(u4, vals[4])
		f.Rows = append(f.Rows, []string{w.Name,
			pc1(vals[0]), pc1(vals[1]), pc1(vals[2]), pc1(vals[3]), pc1(vals[4])})
	}
	f.Rows = append(f.Rows, []string{"mean",
		pc1(stats.Mean(u0)), pc1(stats.Mean(u1)), pc1(stats.Mean(u2)),
		pc1(stats.Mean(u3)), pc1(stats.Mean(u4))})
	f.Notes = append(f.Notes,
		"paper: 22% (no encryption) -> 36% (counter-light) at 25.6 GB/s; 73% at 6.4 GB/s")
	return f, nil
}

// Fig19 reproduces Fig. 19: DRAM energy per instruction under
// Counter-light, normalized to counterless (AES-128).
func (r *Runner) Fig19() (Figure, error) {
	f := Figure{
		ID:      "Fig19",
		Title:   "DRAM energy per instruction, counter-light normalized to counterless",
		Columns: []string{"workload", "normalized energy/instr"},
	}
	if err := r.prewarm(cross(trace.IrregularSet(),
		variant{scheme: core.Counterless},
		variant{scheme: core.CounterLight},
	)); err != nil {
		return f, err
	}
	var vals []float64
	for _, w := range trace.IrregularSet() {
		cls, err := r.run(w, variant{scheme: core.Counterless})
		if err != nil {
			return f, err
		}
		cl, err := r.run(w, variant{scheme: core.CounterLight})
		if err != nil {
			return f, err
		}
		ratio := cl.EnergyPerInst / cls.EnergyPerInst
		vals = append(vals, ratio)
		f.Rows = append(f.Rows, []string{w.Name, pct(ratio)})
	}
	f.Rows = append(f.Rows, []string{"mean", pct(stats.Mean(vals))})
	f.Notes = append(f.Notes, "paper: 5.1% average energy saving; omnetpp can exceed 1.0")
	return f, nil
}

// Fig20 reproduces Fig. 20: performance under the starved 6.4 GB/s
// channel, normalized to no encryption.
func (r *Runner) Fig20() (Figure, error) {
	f := Figure{
		ID:      "Fig20",
		Title:   "Performance at 6.4 GB/s normalized to no encryption",
		Columns: []string{"workload", "counterless", "counterlight", "counterlight/counterless"},
	}
	if err := r.prewarm(cross(trace.IrregularSet(),
		variant{scheme: core.NoEnc, bw: 6.4},
		variant{scheme: core.Counterless, bw: 6.4},
		variant{scheme: core.CounterLight, bw: 6.4},
	)); err != nil {
		return f, err
	}
	var worst float64 = 10
	var cls6, cl6 []float64
	for _, w := range trace.IrregularSet() {
		base, err := r.run(w, variant{scheme: core.NoEnc, bw: 6.4})
		if err != nil {
			return f, err
		}
		cls, err := r.run(w, variant{scheme: core.Counterless, bw: 6.4})
		if err != nil {
			return f, err
		}
		cl, err := r.run(w, variant{scheme: core.CounterLight, bw: 6.4})
		if err != nil {
			return f, err
		}
		pc := cls.PerfNormalizedTo(base)
		pl := cl.PerfNormalizedTo(base)
		rel := pl / pc
		if rel < worst {
			worst = rel
		}
		cls6 = append(cls6, pc)
		cl6 = append(cl6, pl)
		f.Rows = append(f.Rows, []string{w.Name, pct(pc), pct(pl), pct(rel)})
	}
	f.Rows = append(f.Rows, []string{"mean", pct(stats.Mean(cls6)), pct(stats.Mean(cl6)), ""})
	f.Notes = append(f.Notes,
		fmt.Sprintf("worst counter-light/counterless ratio: %.3f (paper: worst case 0.986, i.e. 1.4%% slower)", worst))
	return f, nil
}

// Fig21 reproduces Fig. 21: the share of LLC writebacks using
// counterless mode vs the bandwidth threshold, at 6.4 GB/s (plus the
// 25.6 GB/s reference at the default threshold).
func (r *Runner) Fig21() (Figure, error) {
	f := Figure{
		ID:      "Fig21",
		Title:   "LLC writebacks using counterless mode (counter-light)",
		Columns: []string{"workload", "th=10%@6.4", "th=60%@6.4", "th=80%@6.4", "th=60%@25.6"},
	}
	if err := r.prewarm(cross(trace.IrregularSet(),
		variant{scheme: core.CounterLight, bw: 6.4, threshold: 0.10},
		variant{scheme: core.CounterLight, bw: 6.4, threshold: 0.60},
		variant{scheme: core.CounterLight, bw: 6.4, threshold: 0.80},
		variant{scheme: core.CounterLight, bw: 25.6, threshold: 0.60},
	)); err != nil {
		return f, err
	}
	var m10, m60, m80, mRef []float64
	for _, w := range trace.IrregularSet() {
		get := func(th, bw float64) (float64, error) {
			res, err := r.run(w, variant{scheme: core.CounterLight, bw: bw, threshold: th})
			if err != nil {
				return 0, err
			}
			return res.CounterlessWBFraction(), nil
		}
		f10, err := get(0.10, 6.4)
		if err != nil {
			return f, err
		}
		f60, err := get(0.60, 6.4)
		if err != nil {
			return f, err
		}
		f80, err := get(0.80, 6.4)
		if err != nil {
			return f, err
		}
		ref, err := get(0.60, 25.6)
		if err != nil {
			return f, err
		}
		m10 = append(m10, f10)
		m60 = append(m60, f60)
		m80 = append(m80, f80)
		mRef = append(mRef, ref)
		f.Rows = append(f.Rows, []string{w.Name, pc1(f10), pc1(f60), pc1(f80), pc1(ref)})
	}
	f.Rows = append(f.Rows, []string{"mean",
		pc1(stats.Mean(m10)), pc1(stats.Mean(m60)), pc1(stats.Mean(m80)), pc1(stats.Mean(mRef))})
	f.Notes = append(f.Notes,
		"paper: 100% / 91% / ~70% at thresholds 10/60/80% under 6.4 GB/s; only 3% at 25.6 GB/s")
	return f, nil
}

// Fig22 reproduces Fig. 22: performance under different thresholds at
// 6.4 GB/s, normalized to counterless.
func (r *Runner) Fig22() (Figure, error) {
	f := Figure{
		ID:      "Fig22",
		Title:   "Performance vs bandwidth threshold at 6.4 GB/s, normalized to counterless",
		Columns: []string{"workload", "th=10%", "th=60%", "th=80%"},
	}
	if err := r.prewarm(cross(trace.IrregularSet(),
		variant{scheme: core.Counterless, bw: 6.4},
		variant{scheme: core.CounterLight, bw: 6.4, threshold: 0.10},
		variant{scheme: core.CounterLight, bw: 6.4, threshold: 0.60},
		variant{scheme: core.CounterLight, bw: 6.4, threshold: 0.80},
	)); err != nil {
		return f, err
	}
	var m10, m60, m80 []float64
	for _, w := range trace.IrregularSet() {
		cls, err := r.run(w, variant{scheme: core.Counterless, bw: 6.4})
		if err != nil {
			return f, err
		}
		get := func(th float64) (float64, error) {
			res, err := r.run(w, variant{scheme: core.CounterLight, bw: 6.4, threshold: th})
			if err != nil {
				return 0, err
			}
			return res.PerfNormalizedTo(cls), nil
		}
		p10, err := get(0.10)
		if err != nil {
			return f, err
		}
		p60, err := get(0.60)
		if err != nil {
			return f, err
		}
		p80, err := get(0.80)
		if err != nil {
			return f, err
		}
		m10 = append(m10, p10)
		m60 = append(m60, p60)
		m80 = append(m80, p80)
		f.Rows = append(f.Rows, []string{w.Name, pct(p10), pct(p60), pct(p80)})
	}
	f.Rows = append(f.Rows, []string{"mean", pct(stats.Mean(m10)), pct(stats.Mean(m60)), pct(stats.Mean(m80))})
	return f, nil
}

// Fig23 reproduces Fig. 23: the regular workloads at 25.6 GB/s (plus
// the quarter-bandwidth variant the text mentions).
func (r *Runner) Fig23() (Figure, error) {
	f := Figure{
		ID:      "Fig23",
		Title:   "Regular workloads normalized to no encryption",
		Columns: []string{"workload", "counterless@25.6", "counterlight@25.6", "counterless@6.4", "counterlight@6.4"},
	}
	if err := r.prewarm(cross(trace.RegularSet(),
		variant{scheme: core.NoEnc, bw: 25.6},
		variant{scheme: core.Counterless, bw: 25.6},
		variant{scheme: core.CounterLight, bw: 25.6},
		variant{scheme: core.NoEnc, bw: 6.4},
		variant{scheme: core.Counterless, bw: 6.4},
		variant{scheme: core.CounterLight, bw: 6.4},
	)); err != nil {
		return f, err
	}
	var a, b, c, d []float64
	for _, w := range trace.RegularSet() {
		get := func(s core.Scheme, bw float64) (float64, error) {
			base, err := r.run(w, variant{scheme: core.NoEnc, bw: bw})
			if err != nil {
				return 0, err
			}
			res, err := r.run(w, variant{scheme: s, bw: bw})
			if err != nil {
				return 0, err
			}
			return res.PerfNormalizedTo(base), nil
		}
		p1, err := get(core.Counterless, 25.6)
		if err != nil {
			return f, err
		}
		p2, err := get(core.CounterLight, 25.6)
		if err != nil {
			return f, err
		}
		p3, err := get(core.Counterless, 6.4)
		if err != nil {
			return f, err
		}
		p4, err := get(core.CounterLight, 6.4)
		if err != nil {
			return f, err
		}
		a, b, c, d = append(a, p1), append(b, p2), append(c, p3), append(d, p4)
		f.Rows = append(f.Rows, []string{w.Name, pct(p1), pct(p2), pct(p3), pct(p4)})
	}
	f.Rows = append(f.Rows, []string{"mean", pct(stats.Mean(a)), pct(stats.Mean(b)), pct(stats.Mean(c)), pct(stats.Mean(d))})
	f.Notes = append(f.Notes, "paper: 96.6% (counterless) vs 99.5% (counter-light) at full bandwidth")
	return f, nil
}

// AblationNoSwitch reproduces the §VI sensitivity study: Counter-light
// without dynamic mode switching, at 6.4 GB/s, normalized to
// counterless.
func (r *Runner) AblationNoSwitch() (Figure, error) {
	f := Figure{
		ID:      "AblA",
		Title:   "Ablation: counter-light without dynamic switching at 6.4 GB/s, normalized to counterless",
		Columns: []string{"workload", "with switch", "without switch"},
	}
	if err := r.prewarm(cross(trace.IrregularSet(),
		variant{scheme: core.Counterless, bw: 6.4},
		variant{scheme: core.CounterLight, bw: 6.4},
		variant{scheme: core.CounterLight, bw: 6.4, noSwitch: true},
	)); err != nil {
		return f, err
	}
	var on, off []float64
	for _, w := range trace.IrregularSet() {
		cls, err := r.run(w, variant{scheme: core.Counterless, bw: 6.4})
		if err != nil {
			return f, err
		}
		sw, err := r.run(w, variant{scheme: core.CounterLight, bw: 6.4})
		if err != nil {
			return f, err
		}
		nosw, err := r.run(w, variant{scheme: core.CounterLight, bw: 6.4, noSwitch: true})
		if err != nil {
			return f, err
		}
		pOn := sw.PerfNormalizedTo(cls)
		pOff := nosw.PerfNormalizedTo(cls)
		on = append(on, pOn)
		off = append(off, pOff)
		f.Rows = append(f.Rows, []string{w.Name, pct(pOn), pct(pOff)})
	}
	f.Rows = append(f.Rows, []string{"mean", pct(stats.Mean(on)), pct(stats.Mean(off))})
	f.Notes = append(f.Notes,
		"paper: without switching, average degradation is 20% vs counterless; omnetpp loses 51%; GraphColoring improves")
	return f, nil
}

// AblationMemo measures the memoization table's contribution under
// Counter-light.
func (r *Runner) AblationMemo() (Figure, error) {
	f := Figure{
		ID:      "AblM",
		Title:   "Ablation: counter-light with the memoization table disabled, normalized to no encryption",
		Columns: []string{"workload", "memo on", "memo off"},
	}
	if err := r.prewarm(cross(trace.IrregularSet(),
		variant{scheme: core.NoEnc},
		variant{scheme: core.CounterLight},
		variant{scheme: core.CounterLight, memoOff: true},
	)); err != nil {
		return f, err
	}
	var on, off []float64
	for _, w := range trace.IrregularSet() {
		base, err := r.run(w, variant{scheme: core.NoEnc})
		if err != nil {
			return f, err
		}
		cl, err := r.run(w, variant{scheme: core.CounterLight})
		if err != nil {
			return f, err
		}
		res, err := r.run(w, variant{scheme: core.CounterLight, memoOff: true})
		if err != nil {
			return f, err
		}
		pOn := cl.PerfNormalizedTo(base)
		pOff := res.PerfNormalizedTo(base)
		on = append(on, pOn)
		off = append(off, pOff)
		f.Rows = append(f.Rows, []string{w.Name, pct(pOn), pct(pOff)})
	}
	f.Rows = append(f.Rows, []string{"mean", pct(stats.Mean(on)), pct(stats.Mean(off))})
	f.Notes = append(f.Notes, "without memoized counter-AES results, counter-mode reads recompute AES from the decoded counter (still overlapped with the tail of the burst)")
	return f, nil
}

// TableI prints the system configuration actually used, mirroring the
// paper's Table I.
func TableI() Figure {
	cfg := core.DefaultConfig(core.CounterLight)
	f := Figure{
		ID:      "TableI",
		Title:   "System configuration",
		Columns: []string{"parameter", "value"},
	}
	f.Rows = [][]string{
		{"CPU", fmt.Sprintf("%d OoO cores, 3.2 GHz, MLP window %d", cfg.Cores, cfg.MLP)},
		{"Prefetchers", "next-line (deg 2) + stride (deg 2) trained on L1 misses"},
		{"L1/L2/L3", fmt.Sprintf("%dKB/%dMB/%dMB; %d/%d/%d ns", cfg.L1Size>>10, cfg.L2Size>>20, cfg.L3Size>>20, cfg.L1Lat/1000, cfg.L2Lat/1000, cfg.L3Lat/1000)},
		{"Counter$/Memo table", fmt.Sprintf("%dKB %d-way, %d entries", cfg.CounterCacheSize>>10, cfg.CounterCacheWays, cfg.MemoEntries)},
		{"AES-128/AES-256/SHA-3", fmt.Sprintf("%d ns / 14 ns / %d ns", cfg.AESLat/1000, cfg.SHA3Lat/1000)},
		{"Memory", fmt.Sprintf("%d GB, %.1f GB/s (stress: 6.4 GB/s)", cfg.MemorySize>>30, cfg.BandwidthGBs)},
		{"tCL/tRCD/tRP", "13.75/13.75/13.75 ns"},
		{"Channels/Ranks", "1/8"},
		{"Bandwidth threshold", fmt.Sprintf("%.0f%%, %d us epochs", cfg.Threshold*100, cfg.EpochLen/1_000_000)},
	}
	return f
}

// All runs every figure in paper order.
func (r *Runner) All() ([]Figure, error) {
	out := []Figure{TableI()}
	for _, gen := range []func() (Figure, error){
		r.Sec3Micro, r.Fig5, r.Fig8, r.Fig9, r.Fig16, r.Fig17, r.Fig18,
		r.Fig19, r.Fig20, r.Fig21, r.Fig22, r.Fig23,
		r.AblationNoSwitch, r.AblationMemo,
		func() (Figure, error) { return SecIVE(0) },
	} {
		fig, err := gen()
		if err != nil {
			return nil, err
		}
		out = append(out, fig)
	}
	return out, nil
}

package figures

import (
	"encoding/binary"
	"math/rand"

	"counterlight/internal/cipher"
	"counterlight/internal/entropy"
)

// SecIVE reproduces the §IV-E entropy experiment: encrypt
// program-like plaintexts under each mode, decrypt them under the
// WRONG mode, and measure how often the wrong decryption's byte
// entropy reaches the 5.5-bit threshold (it should, ≥99.9% of the
// time) while the correct plaintext stays below it. This is what lets
// the error-correction path disambiguate the two EncryptionMetadata
// hypotheses with only a marginal DUE-probability increase.
func SecIVE(blocks int) (Figure, error) {
	f := Figure{
		ID:      "SecIVE",
		Title:   "Entropy of wrongly-decrypted blocks vs original plaintext (5.5-bit threshold)",
		Columns: []string{"plaintext family", "wrong-mode >= 5.5", "plaintext < 5.5", "mean wrong bits", "mean plain bits"},
	}
	if blocks <= 0 {
		blocks = 4000
	}
	cls, err := cipher.NewCounterless(make([]byte, 16), make([]byte, 16), []byte("mac"))
	if err != nil {
		return f, err
	}
	cm, err := cipher.NewCounterMode(make([]byte, 16), 0xE417, nil)
	if err != nil {
		return f, err
	}
	rng := rand.New(rand.NewSource(31337))

	families := []struct {
		name string
		gen  func() cipher.Block
	}{
		{"pointers", func() cipher.Block {
			var b cipher.Block
			base := uint64(0x7f2b_0000_0000) + uint64(rng.Intn(1<<20))
			for i := 0; i < 8; i++ {
				binary.LittleEndian.PutUint64(b[8*i:], base+uint64(rng.Intn(1<<16)))
			}
			return b
		}},
		{"small ints", func() cipher.Block {
			var b cipher.Block
			for i := 0; i < 16; i++ {
				binary.LittleEndian.PutUint32(b[4*i:], uint32(rng.Intn(4096)))
			}
			return b
		}},
		{"ascii text", func() cipher.Block {
			var b cipher.Block
			const alpha = "etaoin shrdlu cmfwyp ETAOIN,.0123456789"
			for i := range b {
				b[i] = alpha[rng.Intn(len(alpha))]
			}
			return b
		}},
		{"sparse struct", func() cipher.Block {
			var b cipher.Block
			for i := 0; i < 20; i++ {
				b[rng.Intn(32)] = byte(rng.Intn(256))
			}
			return b
		}},
	}

	for _, fam := range families {
		wrongHigh, plainLow := 0, 0
		wrongBits, plainBits := 0.0, 0.0
		n := 0
		for i := 0; i < blocks/len(families); i++ {
			plain := fam.gen()
			if entropy.LooksRandom(plain) {
				continue // the experiment conditions on structured plaintext
			}
			n++
			addr := uint64(rng.Intn(1<<26)) &^ 63
			// Counter-mode ciphertext decrypted as counterless, and
			// vice versa — both wrong-mode decryptions of Fig. 14.
			var wrong cipher.Block
			if i%2 == 0 {
				ct := cm.Encrypt(uint64(i+1), addr, plain)
				wrong = cls.Decrypt(addr, ct)
			} else {
				ct := cls.Encrypt(addr, plain)
				wrong = cm.Decrypt(uint64(i+1), addr, ct)
			}
			if entropy.LooksRandom(wrong) {
				wrongHigh++
			}
			plainLow++ // by construction plain is below threshold here
			wrongBits += entropy.Bits(wrong)
			plainBits += entropy.Bits(plain)
		}
		if n == 0 {
			continue
		}
		f.Rows = append(f.Rows, []string{
			fam.name,
			pc1(float64(wrongHigh) / float64(n)),
			pc1(float64(plainLow) / float64(n)),
			ns1(wrongBits / float64(n)),
			ns1(plainBits / float64(n)),
		})
	}
	f.Notes = append(f.Notes,
		"paper: >=99.9% of wrongly decrypted blocks measure >=5.5 bits (max 6), all plaintexts < 5.5",
		"DUE probability grows only by 2^-61 * (1 - 0.999) instead of doubling to 2^-60")
	return f, nil
}

package figures

import (
	"strings"
	"testing"
)

func TestTableI(t *testing.T) {
	f := TableI()
	if f.ID != "TableI" || len(f.Rows) < 8 {
		t.Errorf("TableI = %+v", f)
	}
	s := f.String()
	for _, want := range []string{"13.75", "25.6", "60%", "OoO"} {
		if !strings.Contains(s, want) {
			t.Errorf("TableI output missing %q:\n%s", want, s)
		}
	}
}

func TestFigureString(t *testing.T) {
	f := Figure{
		ID:      "X",
		Title:   "test",
		Columns: []string{"a", "bbbb"},
		Rows:    [][]string{{"longer", "1"}},
		Notes:   []string{"n"},
	}
	s := f.String()
	if !strings.Contains(s, "=== X: test ===") || !strings.Contains(s, "note: n") {
		t.Errorf("rendering wrong:\n%s", s)
	}
	// Column alignment: the header row pads "a" to the width of "longer".
	lines := strings.Split(s, "\n")
	if len(lines) < 3 || !strings.HasPrefix(lines[1], "a     ") {
		t.Errorf("alignment wrong: %q", lines[1])
	}
}

// TestSec3MicroQuick validates the full figure plumbing on the
// cheapest experiment: the result must show the counterless AES delta.
func TestSec3MicroQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation")
	}
	r := NewRunner(true)
	fig, err := r.Sec3Micro()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(fig.Rows))
	}
	// Cached second call must be instant and identical.
	fig2, err := r.Sec3Micro()
	if err != nil {
		t.Fatal(err)
	}
	if fig.Rows[1][1] != fig2.Rows[1][1] {
		t.Error("memoized run differs")
	}
}

// The runner cache must key on every variant dimension.
func TestRunnerCacheKeys(t *testing.T) {
	r := NewRunner(true)
	k1 := runKey{workload: "x", scheme: 1, bwTenths: 256, aesLat: 10000, threshold: 60, dynSwitch: true, prefetch: true, cores: 4}
	k2 := k1
	k2.threshold = 80
	if k1 == k2 {
		t.Error("distinct variants collide")
	}
	if len(r.cache) != 0 {
		t.Error("fresh runner has cached entries")
	}
}

func TestFigureCSV(t *testing.T) {
	f := Figure{
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"x,y", `say "hi"`}, {"plain", "1"}},
	}
	got := f.CSV()
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\nplain,1\n"
	if got != want {
		t.Errorf("CSV:\n%q\nwant\n%q", got, want)
	}
}

// TestRunnerCacheKeysMemo extends the key-collision check to the
// memoization toggle.
func TestRunnerCacheKeysMemo(t *testing.T) {
	k1 := runKey{workload: "x", scheme: 1, bwTenths: 256, aesLat: 10000, threshold: 60, dynSwitch: true, prefetch: true, cores: 4}
	k2 := k1
	k2.memoOff = true
	if k1 == k2 {
		t.Error("memoOff variants collide")
	}
}

// TestParallelSweepMatchesSerial renders the cheapest figure with a
// serial runner and a 4-worker runner; the tables must be identical
// (parallelism only prewarms the cache, never changes results).
func TestParallelSweepMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	serial := NewRunner(true)
	par := NewRunner(true)
	par.Workers = 4
	fs, err := serial.Sec3Micro()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := par.Sec3Micro()
	if err != nil {
		t.Fatal(err)
	}
	if fs.String() != fp.String() {
		t.Errorf("parallel sweep diverged:\n%s\nvs\n%s", fs, fp)
	}
	if got := par.Metrics().Snapshot().Value("figures_runs_total"); got != 3 {
		t.Errorf("figures_runs_total = %v, want 3", got)
	}
}

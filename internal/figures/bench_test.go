// Benchmarks that regenerate every table and figure of the paper's
// evaluation (one benchmark per figure, §III + §VI). Results in
// figure form come from cmd/clbench; these benchmarks exist so
// `go test -bench=.` exercises the full experiment matrix and
// reports its cost.
//
// The Runner memoizes simulations, so benchmarks that share
// configurations (e.g. Fig5/Fig16/Fig17/Fig18/Fig19) reuse each
// other's runs after the first iteration.
package figures

import (
	"sync"
	"testing"
)

var (
	runnerOnce sync.Once
	runner     *Runner
)

// sharedRunner returns the memoizing figure runner (quick windows).
func sharedRunner() *Runner {
	runnerOnce.Do(func() { runner = NewRunner(true) })
	return runner
}

func benchFigure(b *testing.B, gen func(*Runner) (Figure, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		fig, err := gen(sharedRunner())
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Rows) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkSec3Micro regenerates the §III pointer-chase microbenchmark
// (the per-miss AES latency measurement).
func BenchmarkSec3Micro(b *testing.B) {
	benchFigure(b, (*Runner).Sec3Micro)
}

// BenchmarkFig05 regenerates Fig. 5 (counterless vs no encryption,
// AES-128/AES-256, irregular set).
func BenchmarkFig05(b *testing.B) { benchFigure(b, (*Runner).Fig5) }

// BenchmarkFig08 regenerates Fig. 8 (counter-arrival distribution).
func BenchmarkFig08(b *testing.B) { benchFigure(b, (*Runner).Fig8) }

// BenchmarkFig09 regenerates Fig. 9 (single-counter-access overhead).
func BenchmarkFig09(b *testing.B) { benchFigure(b, (*Runner).Fig9) }

// BenchmarkFig16 regenerates Fig. 16 (the headline performance figure).
func BenchmarkFig16(b *testing.B) { benchFigure(b, (*Runner).Fig16) }

// BenchmarkFig17 regenerates Fig. 17 (LLC miss latency overhead).
func BenchmarkFig17(b *testing.B) { benchFigure(b, (*Runner).Fig17) }

// BenchmarkFig18 regenerates Fig. 18 (bandwidth utilization).
func BenchmarkFig18(b *testing.B) { benchFigure(b, (*Runner).Fig18) }

// BenchmarkFig19 regenerates Fig. 19 (energy per instruction).
func BenchmarkFig19(b *testing.B) { benchFigure(b, (*Runner).Fig19) }

// BenchmarkFig20 regenerates Fig. 20 (6.4 GB/s stress test).
func BenchmarkFig20(b *testing.B) { benchFigure(b, (*Runner).Fig20) }

// BenchmarkFig21 regenerates Fig. 21 (counterless-writeback share vs
// threshold).
func BenchmarkFig21(b *testing.B) { benchFigure(b, (*Runner).Fig21) }

// BenchmarkFig22 regenerates Fig. 22 (performance vs threshold).
func BenchmarkFig22(b *testing.B) { benchFigure(b, (*Runner).Fig22) }

// BenchmarkFig23 regenerates Fig. 23 (regular workloads).
func BenchmarkFig23(b *testing.B) { benchFigure(b, (*Runner).Fig23) }

// BenchmarkAblationNoSwitch regenerates the §VI no-dynamic-switching
// sensitivity study.
func BenchmarkAblationNoSwitch(b *testing.B) {
	benchFigure(b, (*Runner).AblationNoSwitch)
}

// BenchmarkAblationMemo regenerates the memoization-table ablation.
func BenchmarkAblationMemo(b *testing.B) {
	benchFigure(b, (*Runner).AblationMemo)
}

// BenchmarkEntropy regenerates the §IV-E entropy-disambiguation study.
func BenchmarkEntropy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := SecIVE(2000)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Rows) == 0 {
			b.Fatal("empty entropy figure")
		}
	}
}

package attack

import (
	"math/rand"
	"testing"
)

// Eq. 1/2 counting: the paper's numbers for the simplest solvable case.
func TestSystemSizeCounting(t *testing.T) {
	s := MinimalSolvableCase()
	if s.Alpha != 2 || s.C != 2 {
		t.Fatalf("minimal case = %+v", s)
	}
	if n := s.Unknowns(); n != 512 {
		t.Errorf("unknowns = %d, want 512", n)
	}
	if m := s.Equations(); m != 512 {
		t.Errorf("equations = %d, want 512", m)
	}
	if !s.Solvable() {
		t.Error("α=c=2 must be formally solvable")
	}
	// α=1 or c=1 is underdetermined.
	if (SystemSize{Alpha: 1, C: 2}).Solvable() {
		t.Error("α=1,c=2 should be underdetermined (m=256 < n=384)")
	}
}

// Eq. 3: MQ equation count.
func TestMQCounting(t *testing.T) {
	s := SystemSize{Alpha: 2, C: 2}
	if m := s.MQEquations(); m != 760*4+160*4 {
		t.Errorf("MQ equations = %d, want %d", m, 760*4+160*4)
	}
	if n := s.MQUnknownsLowerBound(); n != 512 {
		t.Errorf("MQ unknowns lower bound = %d, want 512", n)
	}
}

// The paper's conclusion: relinearization (m >= n(n-1)/2) never
// applies, for any α, c an attacker could set up.
func TestRelinearizationNeverApplies(t *testing.T) {
	for alpha := 1; alpha <= 64; alpha++ {
		for c := 1; c <= 64; c++ {
			s := SystemSize{Alpha: alpha, C: c}
			if s.RelinearizationApplies() {
				t.Fatalf("relinearization applies at α=%d c=%d: m=%d n=%d",
					alpha, c, s.MQEquations(), s.MQUnknownsLowerBound())
			}
		}
	}
	// Sanity: the check itself is not a tautology — a dense-enough
	// fake system would pass it.
	fake := SystemSize{Alpha: 2, C: 2}
	if n := fake.MQUnknownsLowerBound(); fake.MQEquations() >= n*(n-1)/2 {
		t.Skip("unreachable")
	}
}

// CNF gate encodings must match their boolean semantics exhaustively.
func TestGateEncodings(t *testing.T) {
	check := func(name string, build func(f *CNF, a, b int) int, truth func(a, b bool) bool) {
		for av := 0; av < 2; av++ {
			for bv := 0; bv < 2; bv++ {
				f := &CNF{}
				a, b := f.NewVar(), f.NewVar()
				o := build(f, a, b)
				// Force inputs.
				f.Unit(sign(a, av == 1))
				f.Unit(sign(b, bv == 1))
				want := truth(av == 1, bv == 1)
				f.Unit(sign(o, want))
				s := NewSolver(f)
				if s.Solve() != Sat {
					t.Errorf("%s(%d,%d)=%v rejected", name, av, bv, want)
				}
				// The wrong output value must be unsatisfiable.
				f2 := &CNF{}
				a2, b2 := f2.NewVar(), f2.NewVar()
				o2 := build(f2, a2, b2)
				f2.Unit(sign(a2, av == 1))
				f2.Unit(sign(b2, bv == 1))
				f2.Unit(sign(o2, !want))
				if NewSolver(f2).Solve() != Unsat {
					t.Errorf("%s(%d,%d)=%v wrongly accepted", name, av, bv, !want)
				}
			}
		}
	}
	check("xor", func(f *CNF, a, b int) int { return f.XOR2(a, b) }, func(a, b bool) bool { return a != b })
	check("and", func(f *CNF, a, b int) int { return f.AND2(a, b) }, func(a, b bool) bool { return a && b })
	check("or", func(f *CNF, a, b int) int { return f.OR2(a, b) }, func(a, b bool) bool { return a || b })
}

func sign(v int, val bool) int {
	if val {
		return v
	}
	return -v
}

func TestMUXEncoding(t *testing.T) {
	for sel := 0; sel < 2; sel++ {
		for av := 0; av < 2; av++ {
			for bv := 0; bv < 2; bv++ {
				f := &CNF{}
				s, a, b := f.NewVar(), f.NewVar(), f.NewVar()
				o := f.MUX(s, a, b)
				f.Unit(sign(s, sel == 1))
				f.Unit(sign(a, av == 1))
				f.Unit(sign(b, bv == 1))
				want := bv == 1
				if sel == 1 {
					want = av == 1
				}
				f.Unit(sign(o, want))
				if NewSolver(f).Solve() != Sat {
					t.Errorf("MUX(%d,%d,%d) rejected correct output", sel, av, bv)
				}
			}
		}
	}
}

// The S-box CNF must implement the table exactly.
func TestSBox4Encoding(t *testing.T) {
	for v := 0; v < 16; v++ {
		f := &CNF{}
		in := []int{f.NewVar(), f.NewVar(), f.NewVar(), f.NewVar()}
		out := f.SBox4(in)
		for b := 0; b < 4; b++ {
			f.Unit(sign(in[b], v>>b&1 == 1))
		}
		s := NewSolver(f)
		if s.Solve() != Sat {
			t.Fatalf("SBox4 CNF unsat for input %d", v)
		}
		m := s.Assignment()
		got := 0
		for b := 0; b < 4; b++ {
			if m[out[b]] {
				got |= 1 << b
			}
		}
		if got != int(SBox4Table[v]) {
			t.Errorf("SBox4(%#x) CNF = %#x, want %#x", v, got, SBox4Table[v])
		}
	}
}

// DPLL solver basics.
func TestSolverBasics(t *testing.T) {
	// (a ∨ b) ∧ (¬a) forces b.
	f := &CNF{}
	a, b := f.NewVar(), f.NewVar()
	f.AddClause(a, b)
	f.AddClause(-a)
	s := NewSolver(f)
	if s.Solve() != Sat {
		t.Fatal("simple formula unsat")
	}
	m := s.Assignment()
	if m[a] || !m[b] {
		t.Errorf("assignment = a:%v b:%v", m[a], m[b])
	}
	// a ∧ ¬a is unsat.
	f2 := &CNF{}
	x := f2.NewVar()
	f2.Unit(x)
	f2.Unit(-x)
	if NewSolver(f2).Solve() != Unsat {
		t.Error("contradiction not detected")
	}
}

func TestSolverRandom3SAT(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	// Easy under-constrained instances must be satisfiable; the model
	// must actually satisfy all clauses.
	for trial := 0; trial < 20; trial++ {
		f := &CNF{}
		const vars = 20
		for i := 0; i < vars; i++ {
			f.NewVar()
		}
		for i := 0; i < 40; i++ {
			var cl []int
			for j := 0; j < 3; j++ {
				v := rng.Intn(vars) + 1
				if rng.Intn(2) == 0 {
					v = -v
				}
				cl = append(cl, v)
			}
			f.AddClause(cl...)
		}
		s := NewSolver(f)
		if s.Solve() != Sat {
			continue // rare unsat draws are fine
		}
		m := s.Assignment()
		for _, cl := range f.Clauses {
			ok := false
			for _, lit := range cl {
				v := lit
				if v < 0 {
					v = -v
				}
				if (lit > 0) == m[v] {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatal("model does not satisfy a clause")
			}
		}
	}
}

// The truncated combiner instance must be satisfiable (the ground
// truth exists) and a found model must reproduce every observed OTP —
// i.e. a successful attack at toy scale.
func TestInstanceSolvableAtToyWidth(t *testing.T) {
	// Width 4 is the widest width that solves quickly — already at
	// width 8 the search exceeds millions of decisions (see
	// TestExponentialBlowup), which is the paper's point.
	inst, err := BuildInstance(2, 2, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSolver(inst.CNF)
	if got := s.Solve(); got != Sat {
		t.Fatalf("toy instance result = %v, want Sat", got)
	}
	if !inst.VerifySolution(s.Assignment()) {
		t.Error("solver model does not reproduce the observed OTPs")
	}
}

func TestBuildInstanceErrors(t *testing.T) {
	if _, err := BuildInstance(2, 2, 5, 1); err == nil {
		t.Error("non-power-of-two width accepted")
	}
	if _, err := BuildInstance(2, 2, 128, 1); err == nil {
		t.Error("width beyond 64 accepted")
	}
	if _, err := BuildInstance(0, 2, 8, 1); err == nil {
		t.Error("zero alpha accepted")
	}
}

// The ground truth itself must satisfy the circuit equations — the
// reference evaluator and the CNF circuit implement the same function.
func TestCircuitMatchesEvaluator(t *testing.T) {
	inst, err := BuildInstance(2, 2, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Force the secret values and check satisfiability.
	for i, cv := range inst.CtrVars {
		for b := range cv {
			inst.CNF.Unit(sign(cv[b], inst.SecretCtr[i]>>b&1 == 1))
		}
	}
	for a, av := range inst.AdrVars {
		for b := range av {
			inst.CNF.Unit(sign(av[b], inst.SecretAdr[a]>>b&1 == 1))
		}
	}
	if NewSolver(inst.CNF).Solve() != Sat {
		t.Error("ground truth does not satisfy the CNF circuit")
	}
}

// The blow-up demonstration: doubling the word width takes the solver
// from hundreds of decisions to blowing a generous decision budget —
// the miniature version of MiniSat's two fruitless months at w=128.
func TestExponentialBlowup(t *testing.T) {
	run := func(w int, cap uint64) (uint64, SolveResult) {
		inst, err := BuildInstance(2, 2, w, 3)
		if err != nil {
			t.Fatal(err)
		}
		s := NewSolver(inst.CNF)
		s.MaxDecisions = cap
		res := s.Solve()
		return s.Decisions, res
	}
	d4, r4 := run(4, 1_000_000)
	if r4 != Sat {
		t.Fatalf("width 4: result %v, want Sat", r4)
	}
	d8, r8 := run(8, 50*d4+10_000)
	t.Logf("decisions: w=4: %d (Sat), w=8: %d (%v)", d4, d8, r8)
	switch r8 {
	case Aborted:
		// Expected: w=8 blows a budget 50x the w=4 cost.
	case Sat:
		if d8 < 50*d4 {
			t.Errorf("w=8 solved in %d decisions; expected >= 50x the w=4 cost (%d)", d8, d4)
		}
	default:
		t.Fatalf("width 8: unexpected unsat")
	}
}

func TestExtractWord(t *testing.T) {
	assign := []bool{false, true, false, true} // vars 1..3
	if got := ExtractWord([]int{1, 2, 3}, assign); got != 0b101 {
		t.Errorf("ExtractWord = %#b, want 101", got)
	}
}

func BenchmarkSolveToyInstance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		inst, _ := BuildInstance(2, 2, 4, int64(i))
		s := NewSolver(inst.CNF)
		if s.Solve() != Sat {
			b.Fatal("toy instance unsat")
		}
	}
}

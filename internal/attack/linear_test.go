package attack

import "testing"

func TestBuildLinearInstanceErrors(t *testing.T) {
	if _, err := BuildLinearInstance(2, 2, 1, 1); err == nil {
		t.Error("width 1 accepted")
	}
	if _, err := BuildLinearInstance(2, 2, 65, 1); err == nil {
		t.Error("width 65 accepted")
	}
	if _, err := BuildLinearInstance(0, 2, 8, 1); err == nil {
		t.Error("zero alpha accepted")
	}
}

// The linear combiner falls to Gaussian elimination instantly, even at
// the full 64-bit width and with many blocks/counters — the contrast
// motivating the paper's nonlinear mixing (§IV-F).
func TestLinearBreakRecovers(t *testing.T) {
	for _, tc := range []struct{ alpha, c, w int }{
		{2, 2, 8},
		{2, 2, 64}, // full width: still instant
		{4, 8, 32},
		{8, 4, 64},
	} {
		inst, err := BuildLinearInstance(tc.alpha, tc.c, tc.w, 77)
		if err != nil {
			t.Fatal(err)
		}
		res := LinearBreak(inst)
		if !res.Recovered {
			t.Fatalf("alpha=%d c=%d w=%d: linear break failed (free=%d)",
				tc.alpha, tc.c, tc.w, res.FreeVars)
		}
		// The recovered values must predict OTPs for every pair,
		// which LinearBreak already verified; check a sample again
		// through the public predictor.
		if res.PredictOTP(0, 0, tc.w) != inst.OTPs[0][0] {
			t.Error("PredictOTP mismatch")
		}
	}
}

// The recovered solution differs from the hidden secrets by at most
// the gauge freedom, but it must be functionally equivalent: equal
// OTPs on every pair (that is what lets the attacker decrypt).
func TestLinearBreakFunctionalEquivalence(t *testing.T) {
	inst, err := BuildLinearInstance(3, 3, 16, 9)
	if err != nil {
		t.Fatal(err)
	}
	res := LinearBreak(inst)
	if !res.Recovered {
		t.Fatal("break failed")
	}
	for a := 0; a < inst.Alpha; a++ {
		for i := 0; i < inst.C; i++ {
			want := evalLinearCombiner(inst.SecretCtr[i], inst.SecretAdr[a], inst.W)
			got := evalLinearCombiner(res.RecoveredCtr[i], res.RecoveredAdr[a], inst.W)
			if got != want {
				t.Fatalf("pair (%d,%d): recovered values not equivalent", a, i)
			}
		}
	}
}

// The gauge freedom is small (the attacker enumerates 2^FreeVars
// candidates); it must not grow with the number of observations.
func TestLinearBreakFreeVarsBounded(t *testing.T) {
	small, _ := BuildLinearInstance(2, 2, 16, 3)
	big, _ := BuildLinearInstance(8, 8, 16, 3)
	rs := LinearBreak(small)
	rb := LinearBreak(big)
	if !rs.Recovered || !rb.Recovered {
		t.Fatal("breaks failed")
	}
	if rb.FreeVars > rs.FreeVars {
		t.Errorf("free variables grew with observations: %d -> %d", rs.FreeVars, rb.FreeVars)
	}
	if rs.FreeVars > 2*16 {
		t.Errorf("gauge freedom %d too large to enumerate", rs.FreeVars)
	}
}

// Underdetermined systems (one block) must not fake a recovery that
// fails verification; the attack reports honestly either way.
func TestLinearBreakUnderdetermined(t *testing.T) {
	inst, err := BuildLinearInstance(1, 1, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	res := LinearBreak(inst)
	// With one OTP there are w equations and 2w unknowns; any solution
	// that reproduces the single OTP counts as "recovered" for that
	// observation set (and indeed decrypts that one block).
	if res.Recovered {
		if res.PredictOTP(0, 0, 16) != inst.OTPs[0][0] {
			t.Error("claimed recovery does not reproduce the OTP")
		}
	}
	if res.Equations != 16 || res.Unknowns != 32 {
		t.Errorf("system size = %d eq / %d unk", res.Equations, res.Unknowns)
	}
}

func BenchmarkLinearBreakFullWidth(b *testing.B) {
	inst, _ := BuildLinearInstance(4, 4, 64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !LinearBreak(inst).Recovered {
			b.Fatal("break failed")
		}
	}
}

package attack

// CNF is a conjunctive-normal-form formula under construction.
// Variables are positive integers; a negative literal -v means ¬v.
type CNF struct {
	NumVars int
	Clauses [][]int
}

// NewVar allocates a fresh variable and returns its positive literal.
func (f *CNF) NewVar() int {
	f.NumVars++
	return f.NumVars
}

// AddClause appends one clause (a disjunction of literals).
func (f *CNF) AddClause(lits ...int) {
	c := make([]int, len(lits))
	copy(c, lits)
	f.Clauses = append(f.Clauses, c)
}

// Unit forces lit to be true.
func (f *CNF) Unit(lit int) { f.AddClause(lit) }

// XOR2 returns a literal equivalent to a ⊕ b (Tseitin encoding).
func (f *CNF) XOR2(a, b int) int {
	o := f.NewVar()
	// o = a ⊕ b
	f.AddClause(-o, a, b)
	f.AddClause(-o, -a, -b)
	f.AddClause(o, -a, b)
	f.AddClause(o, a, -b)
	return o
}

// AND2 returns a literal equivalent to a ∧ b.
func (f *CNF) AND2(a, b int) int {
	o := f.NewVar()
	f.AddClause(-o, a)
	f.AddClause(-o, b)
	f.AddClause(o, -a, -b)
	return o
}

// OR2 returns a literal equivalent to a ∨ b.
func (f *CNF) OR2(a, b int) int {
	o := f.NewVar()
	f.AddClause(o, -a)
	f.AddClause(o, -b)
	f.AddClause(-o, a, b)
	return o
}

// MUX returns a literal equivalent to (sel ? a : b).
func (f *CNF) MUX(sel, a, b int) int {
	o := f.NewVar()
	// sel -> (o == a); !sel -> (o == b)
	f.AddClause(-sel, -a, o)
	f.AddClause(-sel, a, -o)
	f.AddClause(sel, -b, o)
	f.AddClause(sel, b, -o)
	return o
}

// XORWord XORs two equal-length literal vectors bitwise.
func (f *CNF) XORWord(a, b []int) []int {
	out := make([]int, len(a))
	for i := range a {
		out[i] = f.XOR2(a[i], b[i])
	}
	return out
}

// RotLFixed rotates a literal vector left by a constant amount —
// free (pure wiring).
func RotLFixed(a []int, n int) []int {
	w := len(a)
	n %= w
	out := make([]int, w)
	for i := range a {
		out[(i+n)%w] = a[i]
	}
	return out
}

// BarrelRotL rotates a left by an amount given by select literals
// (sel[k] rotates by 2^k), building the log-depth mux network of a
// hardware barrel shifter. This is how the circuit rotates by an
// amount derived from the (unknown) address-AES bits.
func (f *CNF) BarrelRotL(a []int, sel []int) []int {
	cur := a
	for k, s := range sel {
		shifted := RotLFixed(cur, 1<<k)
		next := make([]int, len(cur))
		for i := range cur {
			next[i] = f.MUX(s, shifted[i], cur[i])
		}
		cur = next
	}
	return cur
}

// SBox4Table is the PRESENT cipher's 4-bit S-box, standing in for the
// AES S-box in the truncated circuit (any strongly nonlinear 4-bit
// permutation serves the demonstration).
var SBox4Table = [16]uint8{0xC, 5, 6, 0xB, 9, 0, 0xA, 0xD, 3, 0xE, 0xF, 8, 4, 7, 1, 2}

// SBox4 applies the 4-bit S-box to a group of four literals
// (in[0] = LSB) by encoding each output bit's truth table.
func (f *CNF) SBox4(in []int) []int {
	if len(in) != 4 {
		panic("attack: SBox4 needs exactly 4 literals")
	}
	out := []int{f.NewVar(), f.NewVar(), f.NewVar(), f.NewVar()}
	// For every input combination, force the output bits.
	for v := 0; v < 16; v++ {
		// Clause prefix: ¬(in == v) ∨ ...
		prefix := make([]int, 4)
		for b := 0; b < 4; b++ {
			if v>>b&1 == 1 {
				prefix[b] = -in[b]
			} else {
				prefix[b] = in[b]
			}
		}
		sv := SBox4Table[v]
		for b := 0; b < 4; b++ {
			lit := out[b]
			if sv>>b&1 == 0 {
				lit = -lit
			}
			f.AddClause(prefix[0], prefix[1], prefix[2], prefix[3], lit)
		}
	}
	return out
}

// SBoxWord applies SBox4 to every 4-bit group of a word.
func (f *CNF) SBoxWord(a []int) []int {
	if len(a)%4 != 0 {
		panic("attack: word width must be a multiple of 4")
	}
	out := make([]int, 0, len(a))
	for i := 0; i < len(a); i += 4 {
		out = append(out, f.SBox4(a[i:i+4])...)
	}
	return out
}

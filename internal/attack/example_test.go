package attack_test

import (
	"fmt"

	"counterlight/internal/attack"
)

// The §IV-F counting argument in three lines: the minimal formally
// solvable system (α = c = 2) has 512 unknowns and 512 equations, but
// its MQ form is far too sparse for polynomial-time relinearization.
func ExampleSystemSize() {
	s := attack.MinimalSolvableCase()
	fmt.Println("unknowns:", s.Unknowns(), "equations:", s.Equations())
	fmt.Println("solvable in principle:", s.Solvable())
	fmt.Println("relinearization applies:", s.RelinearizationApplies())
	// Output:
	// unknowns: 512 equations: 512
	// solvable in principle: true
	// relinearization applies: false
}

// A linear OTP combiner is broken by plain Gaussian elimination: the
// attacker recovers values that reproduce (and therefore predict)
// every pad. This is why Counter-light's combiner is nonlinear.
func ExampleLinearBreak() {
	inst, err := attack.BuildLinearInstance(4, 4, 64, 1)
	if err != nil {
		panic(err)
	}
	res := attack.LinearBreak(inst)
	fmt.Println("recovered:", res.Recovered)
	fmt.Println("forged pad matches:", res.PredictOTP(0, 0, 64) == inst.OTPs[0][0])
	// Output:
	// recovered: true
	// forged pad matches: true
}

// Package attack models the algebraic attack analysis of paper §IV-F.
//
// An attacker who observes one-time pads (e.g. via known plaintext)
// for α memory blocks that shared c counter values can write boolean
// equations relating the unknown 128-bit counter-only and address-only
// AES results to the observed OTP bits. The paper counts unknowns and
// equations (Eqs. 1-4), converts the system to multivariate-quadratic
// (MQ) form, and shows m < n(n-1)/2, so the polynomial-time
// relinearization attack does not apply; a SAT solver on the CNF form
// made no progress in two months.
//
// This package reproduces the counting analysis exactly, generates the
// CNF instances for a (truncated) version of the real combining
// circuit, and includes a small DPLL SAT solver whose exponential
// scaling on those instances demonstrates the blow-up in miniature.
package attack

// SystemSize describes an algebraic system for α blocks sharing c
// counter values.
type SystemSize struct {
	Alpha int // memory blocks with observed OTPs
	C     int // distinct counter values shared by those blocks
}

// Unknowns returns n = 128(α + c): each AES result contributes 128
// unknown bits (Eq. 1).
func (s SystemSize) Unknowns() int { return 128 * (s.Alpha + s.C) }

// Equations returns m = 128·α·c: each (block, counter) pair yields a
// 128-bit OTP, each bit one boolean equation (Eq. 2).
func (s SystemSize) Equations() int { return 128 * s.Alpha * s.C }

// MQEquations returns the equation count after conversion to
// multivariate-quadratic form: m = 760·α·c + 160(α + c) (Eq. 3).
func (s SystemSize) MQEquations() int {
	return 760*s.Alpha*s.C + 160*(s.Alpha+s.C)
}

// MQUnknownsLowerBound returns the paper's lower bound on MQ-form
// variables: n ≥ 128(α + c) (Eq. 4; conversion only adds variables).
func (s SystemSize) MQUnknownsLowerBound() int { return 128 * (s.Alpha + s.C) }

// Solvable reports whether the plain (pre-MQ) system is formally
// solvable, i.e. has at least as many equations as unknowns. The
// simplest solvable case is α = c = 2 (m = n = 512).
func (s SystemSize) Solvable() bool {
	return s.Equations() >= s.Unknowns()
}

// RelinearizationApplies reports whether the polynomial-time MQ attack
// of Thomae-Wolf applies: it requires m ≥ n(n-1)/2. The paper's
// conclusion is that it never does for this construction.
func (s SystemSize) RelinearizationApplies() bool {
	n := s.MQUnknownsLowerBound()
	// Compare against the most attacker-favourable case: the FEWEST
	// unknowns (the lower bound) and the full MQ equation count.
	return s.MQEquations() >= n*(n-1)/2
}

// MinimalSolvableCase returns the smallest solvable system (α=2, c=2),
// the case the paper fed to MiniSat for two months without success.
func MinimalSolvableCase() SystemSize { return SystemSize{Alpha: 2, C: 2} }

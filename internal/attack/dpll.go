package attack

// Solver is a DPLL SAT solver with unit propagation — deliberately in
// the MiniSat family (the paper's tool) but simpler, since its purpose
// is to demonstrate the exponential blow-up of the attack instances,
// not to win competitions.
type Solver struct {
	numVars int
	clauses [][]int
	assign  []int8 // 0 unknown, +1 true, -1 false (indexed by var)

	// Statistics.
	Decisions    uint64
	Propagations uint64
	Conflicts    uint64
	// MaxDecisions aborts the search when exceeded (0 = unlimited),
	// standing in for the paper's "two months without an answer".
	MaxDecisions uint64
	aborted      bool
}

// NewSolver wraps a CNF formula.
func NewSolver(f *CNF) *Solver {
	return &Solver{
		numVars: f.NumVars,
		clauses: f.Clauses,
		assign:  make([]int8, f.NumVars+1),
	}
}

// Result of a solve attempt.
type SolveResult int

const (
	// Unsat means the formula has no satisfying assignment.
	Unsat SolveResult = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Aborted means MaxDecisions was exhausted first.
	Aborted
)

// Solve runs the search. On Sat, Assignment() returns the model.
func (s *Solver) Solve() SolveResult {
	if !s.propagate() {
		return Unsat
	}
	if s.search() {
		return Sat
	}
	if s.aborted {
		return Aborted
	}
	return Unsat
}

// Assignment returns the model as a truth vector indexed by variable.
func (s *Solver) Assignment() []bool {
	out := make([]bool, s.numVars+1)
	for v := 1; v <= s.numVars; v++ {
		out[v] = s.assign[v] > 0
	}
	return out
}

func (s *Solver) value(lit int) int8 {
	if lit > 0 {
		return s.assign[lit]
	}
	return -s.assign[-lit]
}

func (s *Solver) set(lit int) {
	if lit > 0 {
		s.assign[lit] = 1
	} else {
		s.assign[-lit] = -1
	}
}

func (s *Solver) unset(lit int) {
	if lit > 0 {
		s.assign[lit] = 0
	} else {
		s.assign[-lit] = 0
	}
}

// propagate runs unit propagation to a fixed point; false on conflict.
// It returns the literals it assigned through the trail out-parameter
// when called from search (see propagateTrail).
func (s *Solver) propagate() bool {
	_, ok := s.propagateTrail()
	return ok
}

func (s *Solver) propagateTrail() (trail []int, ok bool) {
	for {
		progress := false
		for _, cl := range s.clauses {
			unassigned := 0
			var unit int
			satisfied := false
			for _, lit := range cl {
				switch s.value(lit) {
				case 1:
					satisfied = true
				case 0:
					unassigned++
					unit = lit
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			switch unassigned {
			case 0:
				s.Conflicts++
				return trail, false // conflict
			case 1:
				s.set(unit)
				trail = append(trail, unit)
				s.Propagations++
				progress = true
			}
		}
		if !progress {
			return trail, true
		}
	}
}

// search is recursive DPLL.
func (s *Solver) search() bool {
	if s.MaxDecisions > 0 && s.Decisions > s.MaxDecisions {
		s.aborted = true
		return false
	}
	// Pick the first unassigned variable.
	branch := 0
	for v := 1; v <= s.numVars; v++ {
		if s.assign[v] == 0 {
			branch = v
			break
		}
	}
	if branch == 0 {
		return true // complete assignment, all clauses satisfied
	}
	for _, lit := range []int{branch, -branch} {
		s.Decisions++
		s.set(lit)
		trail, ok := s.propagateTrail()
		if ok && s.search() {
			return true
		}
		for _, l := range trail {
			s.unset(l)
		}
		s.unset(lit)
		if s.aborted {
			return false
		}
	}
	return false
}

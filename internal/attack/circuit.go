package attack

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// The truncated combiner mirrors mix.Nonlinear's structure at word
// width w (a multiple of 4, power of two ≤ 64):
//
//	t   = rotl(C, sel1(A)) ⊕ A
//	t  ^= rotl(t, r1)
//	u   = SBox4(t)            (per 4-bit group)
//	out = rotl(u, sel2(A)) ⊕ C
//
// where sel1/sel2 take log2(w) bits from A. Both the reference
// evaluator below and the CNF circuit implement exactly this function,
// so generated instances are satisfiable by construction.

const truncR1 = 3 // fixed diffusion rotation in the truncated circuit

// evalCombiner computes the truncated combiner on concrete values.
func evalCombiner(c, a uint64, w int) uint64 {
	mask := uint64(1)<<w - 1
	lg := bits.TrailingZeros(uint(w))
	sel1 := int(a & (uint64(w) - 1))
	sel2 := int(a >> lg & (uint64(w) - 1))
	rot := func(v uint64, n int) uint64 {
		n %= w
		return (v<<n | v>>(w-n)) & mask
	}
	t := rot(c, sel1) ^ a
	t ^= rot(t, truncR1)
	t &= mask
	var u uint64
	for i := 0; i < w; i += 4 {
		u |= uint64(SBox4Table[t>>i&0xF]) << i
	}
	return (rot(u, sel2) ^ c) & mask
}

// buildCombiner encodes the truncated combiner over literal vectors
// for the unknown counter-AES word (cv) and address-AES word (av).
func buildCombiner(f *CNF, cv, av []int) []int {
	w := len(cv)
	lg := bits.TrailingZeros(uint(w))
	sel1 := av[:lg]
	sel2 := av[lg : 2*lg]
	t := f.XORWord(f.BarrelRotL(cv, sel1), av)
	t = f.XORWord(t, RotLFixed(t, truncR1))
	u := f.SBoxWord(t)
	return f.XORWord(f.BarrelRotL(u, sel2), cv)
}

// Instance is a generated attack problem: recover the secret AES words
// from observed OTPs.
type Instance struct {
	CNF     *CNF
	W       int
	Alpha   int
	C       int
	CtrVars [][]int // counter-AES unknowns, C words of W literals
	AdrVars [][]int // address-AES unknowns, Alpha words of W literals
	// The hidden ground truth (for verification in tests).
	SecretCtr []uint64
	SecretAdr []uint64
	OTPs      [][]uint64 // OTPs[a][c] observed by the attacker
}

// BuildInstance generates the SAT instance for α blocks sharing c
// counters at word width w: the attacker knows every OTP bit and must
// solve for the 2·(α+c)·w unknown AES bits, exactly the setup of
// §IV-F scaled down from 128-bit words.
func BuildInstance(alpha, c, w int, seed int64) (*Instance, error) {
	if w < 4 || w > 64 || w&(w-1) != 0 {
		return nil, fmt.Errorf("attack: width %d must be a power of two in [4,64]", w)
	}
	if alpha < 1 || c < 1 {
		return nil, fmt.Errorf("attack: need at least one block and counter")
	}
	if 2*bits.TrailingZeros(uint(w)) > w {
		return nil, fmt.Errorf("attack: width %d too small for two rotate selectors", w)
	}
	rng := rand.New(rand.NewSource(seed))
	inst := &Instance{CNF: &CNF{}, W: w, Alpha: alpha, C: c}
	mask := uint64(1)<<w - 1
	for i := 0; i < c; i++ {
		inst.SecretCtr = append(inst.SecretCtr, rng.Uint64()&mask)
		inst.CtrVars = append(inst.CtrVars, newWord(inst.CNF, w))
	}
	for a := 0; a < alpha; a++ {
		inst.SecretAdr = append(inst.SecretAdr, rng.Uint64()&mask)
		inst.AdrVars = append(inst.AdrVars, newWord(inst.CNF, w))
	}
	inst.OTPs = make([][]uint64, alpha)
	for a := 0; a < alpha; a++ {
		inst.OTPs[a] = make([]uint64, c)
		for i := 0; i < c; i++ {
			otp := evalCombiner(inst.SecretCtr[i], inst.SecretAdr[a], w)
			inst.OTPs[a][i] = otp
			outs := buildCombiner(inst.CNF, inst.CtrVars[i], inst.AdrVars[a])
			for b := 0; b < w; b++ {
				lit := outs[b]
				if otp>>b&1 == 0 {
					lit = -lit
				}
				inst.CNF.Unit(lit)
			}
		}
	}
	return inst, nil
}

func newWord(f *CNF, w int) []int {
	out := make([]int, w)
	for i := range out {
		out[i] = f.NewVar()
	}
	return out
}

// ExtractWord reads a word value out of a solver assignment.
func ExtractWord(vars []int, assign []bool) uint64 {
	var v uint64
	for i, lit := range vars {
		if assign[lit] {
			v |= 1 << i
		}
	}
	return v
}

// VerifySolution checks that an assignment's recovered AES words
// reproduce every observed OTP (a successful key-independent attack).
func (inst *Instance) VerifySolution(assign []bool) bool {
	for a := 0; a < inst.Alpha; a++ {
		av := ExtractWord(inst.AdrVars[a], assign)
		for i := 0; i < inst.C; i++ {
			cv := ExtractWord(inst.CtrVars[i], assign)
			if evalCombiner(cv, av, inst.W) != inst.OTPs[a][i] {
				return false
			}
		}
	}
	return true
}

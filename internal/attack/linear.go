package attack

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// This file demonstrates the other half of §IV-F's argument: why the
// combining logic must be NONLINEAR. If the OTP were a linear function
// of the two AES results — e.g. OTP = rotl(C, r1) ⊕ rotl(A, r2) with
// fixed rotations, the simplest "combiner" one might try — then every
// observed OTP bit is a GF(2)-linear equation over the unknown AES
// bits, and plain Gaussian elimination recovers the secrets in
// polynomial time from a handful of observations. The LinearBreak
// attack below does exactly that and succeeds instantly at full
// 64-bit width, in sharp contrast to the SAT solver's hopeless search
// against the S-box construction (see dpll.go and circuit.go).

// linearCombine is the weak combiner: rotl(C, r1) ⊕ rotl(A, r2).
const (
	linR1 = 5
	linR2 = 17
)

func rotW(v uint64, n, w int) uint64 {
	mask := uint64(1)<<w - 1
	n %= w
	return (v<<n | v>>(w-n)) & mask
}

// evalLinearCombiner computes the weak combiner at word width w.
func evalLinearCombiner(c, a uint64, w int) uint64 {
	return rotW(c, linR1, w) ^ rotW(a, linR2, w)
}

// LinearInstance is an attack problem against the linear combiner.
type LinearInstance struct {
	W         int
	Alpha, C  int
	OTPs      [][]uint64 // OTPs[a][c]
	SecretCtr []uint64
	SecretAdr []uint64
}

// BuildLinearInstance generates observations of the linear combiner
// with hidden secrets, mirroring BuildInstance for the nonlinear case.
func BuildLinearInstance(alpha, c, w int, seed int64) (*LinearInstance, error) {
	if w < 2 || w > 64 {
		return nil, fmt.Errorf("attack: width %d out of range [2,64]", w)
	}
	if alpha < 1 || c < 1 {
		return nil, fmt.Errorf("attack: need at least one block and counter")
	}
	rng := rand.New(rand.NewSource(seed))
	mask := uint64(1)<<w - 1
	if w == 64 {
		mask = ^uint64(0)
	}
	inst := &LinearInstance{W: w, Alpha: alpha, C: c}
	for i := 0; i < c; i++ {
		inst.SecretCtr = append(inst.SecretCtr, rng.Uint64()&mask)
	}
	for a := 0; a < alpha; a++ {
		inst.SecretAdr = append(inst.SecretAdr, rng.Uint64()&mask)
	}
	inst.OTPs = make([][]uint64, alpha)
	for a := 0; a < alpha; a++ {
		inst.OTPs[a] = make([]uint64, c)
		for i := 0; i < c; i++ {
			inst.OTPs[a][i] = evalLinearCombiner(inst.SecretCtr[i], inst.SecretAdr[a], w)
		}
	}
	return inst, nil
}

// LinearBreakResult reports the Gaussian-elimination attack outcome.
type LinearBreakResult struct {
	Recovered    bool
	Equations    int
	Unknowns     int
	FreeVars     int // dimension of the solution space (gauge freedom)
	RecoveredCtr []uint64
	RecoveredAdr []uint64
}

// LinearBreak mounts the polynomial-time attack: set up one GF(2)
// equation per observed OTP bit over the (alpha+c)·w unknown AES bits
// and solve by Gaussian elimination. The system has a one-dimensional
// gauge freedom per rotation relation (XORing a constant pattern into
// all C's and the matching pattern into all A's preserves every OTP);
// the attack resolves it by pinning the free variables to the values
// a real attacker would enumerate (2^FreeVars candidates — here we
// verify recovery up to that enumeration by checking OTP consistency).
func LinearBreak(inst *LinearInstance) LinearBreakResult {
	w := inst.W
	nUnknowns := (inst.Alpha + inst.C) * w
	// Variable layout: C_i bit b -> i*w + b; A_a bit b -> (C + a)*w + b.
	ctrVar := func(i, b int) int { return i*w + b }
	adrVar := func(a, b int) int { return (inst.C+a)*w + b }

	// Each equation: XOR of two unknowns equals an OTP bit:
	// OTP[a][i] bit o = C_i bit ((o - r1) mod w) ⊕ A_a bit ((o - r2) mod w).
	type row struct {
		bits []uint64 // bitset over unknowns
		rhs  uint64
	}
	words := (nUnknowns + 63) / 64
	var rowsM []row
	for a := 0; a < inst.Alpha; a++ {
		for i := 0; i < inst.C; i++ {
			for o := 0; o < w; o++ {
				r := row{bits: make([]uint64, words)}
				cb := ctrVar(i, ((o-linR1)%w+w)%w)
				ab := adrVar(a, ((o-linR2)%w+w)%w)
				r.bits[cb/64] ^= 1 << (cb % 64)
				r.bits[ab/64] ^= 1 << (ab % 64)
				r.rhs = inst.OTPs[a][i] >> o & 1
				rowsM = append(rowsM, r)
			}
		}
	}
	res := LinearBreakResult{Equations: len(rowsM), Unknowns: nUnknowns}

	// Gaussian elimination over GF(2).
	pivotOf := make([]int, 0, nUnknowns) // pivot row index per pivot column order
	pivotCol := make([]int, 0, nUnknowns)
	rowUsed := make([]bool, len(rowsM))
	for col := 0; col < nUnknowns; col++ {
		pivot := -1
		for ri := range rowsM {
			if rowUsed[ri] {
				continue
			}
			if rowsM[ri].bits[col/64]>>(col%64)&1 == 1 {
				pivot = ri
				break
			}
		}
		if pivot == -1 {
			continue // free variable
		}
		rowUsed[pivot] = true
		pivotOf = append(pivotOf, pivot)
		pivotCol = append(pivotCol, col)
		for ri := range rowsM {
			if ri == pivot {
				continue
			}
			if rowsM[ri].bits[col/64]>>(col%64)&1 == 1 {
				for wv := range rowsM[ri].bits {
					rowsM[ri].bits[wv] ^= rowsM[pivot].bits[wv]
				}
				rowsM[ri].rhs ^= rowsM[pivot].rhs
			}
		}
	}
	// Consistency check: any zero row with rhs 1 means no solution.
	for ri := range rowsM {
		if rowUsed[ri] {
			continue
		}
		zero := true
		for _, wv := range rowsM[ri].bits {
			if wv != 0 {
				zero = false
				break
			}
		}
		if zero && rowsM[ri].rhs == 1 {
			return res // inconsistent: not recovered
		}
	}
	res.FreeVars = nUnknowns - len(pivotCol)

	// Back-substitute with free variables set to 0 — one candidate in
	// the small solution space the attacker enumerates.
	solution := make([]uint64, words)
	for k := len(pivotCol) - 1; k >= 0; k-- {
		r := rowsM[pivotOf[k]]
		v := r.rhs
		for wv := range r.bits {
			v ^= uint64(bits.OnesCount64(r.bits[wv]&solution[wv])) & 1
		}
		// Remove the pivot's own contribution if it was counted.
		col := pivotCol[k]
		if solution[col/64]>>(col%64)&1 == 1 {
			v ^= 1
		}
		if v == 1 {
			solution[col/64] |= 1 << (col % 64)
		}
	}
	getBit := func(v int) uint64 { return solution[v/64] >> (v % 64) & 1 }
	res.RecoveredCtr = make([]uint64, inst.C)
	for i := 0; i < inst.C; i++ {
		for b := 0; b < w; b++ {
			res.RecoveredCtr[i] |= getBit(ctrVar(i, b)) << b
		}
	}
	res.RecoveredAdr = make([]uint64, inst.Alpha)
	for a := 0; a < inst.Alpha; a++ {
		for b := 0; b < w; b++ {
			res.RecoveredAdr[a] |= getBit(adrVar(a, b)) << b
		}
	}
	// The candidate succeeds if it reproduces every observed OTP — and
	// then it also predicts the OTP of any future (block, counter)
	// pair, which is the full break.
	for a := 0; a < inst.Alpha; a++ {
		for i := 0; i < inst.C; i++ {
			if evalLinearCombiner(res.RecoveredCtr[i], res.RecoveredAdr[a], w) != inst.OTPs[a][i] {
				return res
			}
		}
	}
	res.Recovered = true
	return res
}

// PredictOTP uses recovered values to forge the pad for a new
// (counter, address) combination — demonstrating that the linear break
// generalizes beyond the observed pairs.
func (r LinearBreakResult) PredictOTP(ctrIdx, adrIdx, w int) uint64 {
	return evalLinearCombiner(r.RecoveredCtr[ctrIdx], r.RecoveredAdr[adrIdx], w)
}

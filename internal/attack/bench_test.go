package attack

import "testing"

// BenchmarkAttackToyInstance measures the §IV-F SAT experiment at the
// widest tractable width.
func BenchmarkAttackToyInstance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		inst, err := BuildInstance(2, 2, 4, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		s := NewSolver(inst.CNF)
		if s.Solve() != Sat {
			b.Fatal("toy instance unsat")
		}
	}
}

package obs

import (
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Errorf("counter after reset = %d, want 0", c.Value())
	}

	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
}

func TestHistogramBinningMatchesStats(t *testing.T) {
	// Same semantics as stats.Histogram: bin i is [edges[i-1], edges[i]).
	h, err := NewHistogram(0, 5000, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{-1, 0, 4999, 5000, 10000, 20000} {
		h.Add(v)
	}
	want := []uint64{1, 2, 1, 2}
	bins := h.Bins()
	for i := range want {
		if bins[i] != want[i] {
			t.Errorf("bin %d = %d, want %d (all: %v)", i, bins[i], want[i], bins)
		}
	}
	if h.Total() != 6 {
		t.Errorf("total = %d, want 6", h.Total())
	}
	if h.Sum() != -1+0+4999+5000+10000+20000 {
		t.Errorf("sum = %d", h.Sum())
	}
	h.Reset()
	if h.Total() != 0 || h.Bins()[1] != 0 {
		t.Errorf("reset left samples: total=%d bins=%v", h.Total(), h.Bins())
	}
}

func TestHistogramRejectsBadEdges(t *testing.T) {
	if _, err := NewHistogram(); err == nil {
		t.Error("no edges accepted")
	}
	if _, err := NewHistogram(5, 5); err == nil {
		t.Error("non-ascending edges accepted")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits", L("level", "l1"))
	b := r.Counter("hits", L("level", "l1"))
	if a != b {
		t.Error("same (name, labels) returned distinct counters")
	}
	c := r.Counter("hits", L("level", "l2"))
	if a == c {
		t.Error("distinct labels returned the same counter")
	}
	a.Add(3)
	c.Inc()
	snap := r.Snapshot()
	if v := snap.Value("hits", L("level", "l1")); v != 3 {
		t.Errorf("l1 hits = %v, want 3", v)
	}
	if v := snap.Value("hits", L("level", "l2")); v != 1 {
		t.Errorf("l2 hits = %v, want 1", v)
	}
}

func TestRegistryRegisterReplaces(t *testing.T) {
	r := NewRegistry()
	var first, second Counter
	first.Add(10)
	second.Add(2)
	r.RegisterCounter("reads_total", &first)
	r.RegisterCounter("reads_total", &second)
	snap := r.Snapshot()
	if got := snap.Value("reads_total"); got != 2 {
		t.Errorf("replaced series reads %v, want 2 (the newer instrument)", got)
	}
	if len(snap.Series) != 1 {
		t.Errorf("got %d series, want 1", len(snap.Series))
	}
}

// TestConcurrentIncrements exercises the lock-free hot path from many
// goroutines; run under `go test -race` (the standard check gate does).
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("concurrent_total")
	g := r.Gauge("level")
	h, err := r.Histogram("lat_ps", []int64{10, 100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Add(int64(i % 2000))
				// Concurrent get-or-create of the same series must
				// also be safe.
				r.Counter("concurrent_total")
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Errorf("counter = %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != workers*perWorker {
		t.Errorf("gauge = %d, want %d", g.Value(), workers*perWorker)
	}
	if h.Total() != workers*perWorker {
		t.Errorf("histogram total = %d, want %d", h.Total(), workers*perWorker)
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz")
	r.Counter("aa", L("x", "2"))
	r.Counter("aa", L("x", "1"))
	r.Gauge("mm")
	snap := r.Snapshot()
	var ids []string
	for _, s := range snap.Series {
		ids = append(ids, s.ID())
	}
	want := []string{`aa{x="1"}`, `aa{x="2"}`, "mm", "zz"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("order = %v, want %v", ids, want)
		}
	}
}

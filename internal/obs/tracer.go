package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Trace event phases (a subset of the Chrome trace_event vocabulary).
const (
	PhaseInstant = byte('i') // a point event on the timeline
	PhaseCounter = byte('C') // a sampled counter track
)

// Trace categories used across the MC pipeline.
const (
	CatEpoch = "epoch" // bandwidth-monitor mode decisions
	CatMemo  = "memo"  // memoization-table hits/misses/evictions
	CatECC   = "ecc"   // correction attempts and hypothesis choices
	CatCtr   = "counter"
	CatDRAM  = "dram"
	CatSim   = "sim"
)

// Arg is one integer argument attached to a trace event.
type Arg struct {
	Key string
	Val int64
}

// A constructs an Arg.
func A(key string, val int64) Arg { return Arg{Key: key, Val: val} }

// Event is one traced occurrence, stamped with simulator picosecond
// time.
type Event struct {
	TS   int64 // simulated time in ps
	Ph   byte  // PhaseInstant or PhaseCounter
	Cat  string
	Name string
	Args []Arg
}

// DefaultTraceCap is the ring capacity used when NewTracer is given a
// non-positive one: 64k events, a few MB, enough for several epochs
// of dense pipeline activity.
const DefaultTraceCap = 1 << 16

// Tracer is a bounded ring buffer of events. When full, the oldest
// event is evicted for each new one. All methods are safe for
// concurrent use, and every method is a no-op on a nil receiver so
// call sites need no enabled-checks.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event
	start   int // index of oldest event
	n       int
	dropped Counter // registry-exportable so silent eviction is observable
}

// NewTracer builds a tracer holding up to capacity events
// (DefaultTraceCap when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Emit records one event at simulated time ts.
func (t *Tracer) Emit(ts int64, ph byte, cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	e := Event{TS: ts, Ph: ph, Cat: cat, Name: name}
	if len(args) > 0 {
		e.Args = append([]Arg(nil), args...)
	}
	t.mu.Lock()
	if t.n < len(t.buf) {
		t.buf[(t.start+t.n)%len(t.buf)] = e
		t.n++
	} else {
		t.buf[t.start] = e
		t.start = (t.start + 1) % len(t.buf)
		t.dropped.Inc()
	}
	t.mu.Unlock()
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns how many events were evicted to make room.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Value()
}

// RegisterMetrics exposes the ring's eviction count through a
// registry (trace_dropped_events_total), so truncation of the
// telemetry stream is itself observable on /metrics.
func (t *Tracer) RegisterMetrics(reg *Registry, labels ...Label) {
	if t == nil {
		return
	}
	reg.RegisterCounter("trace_dropped_events_total", &t.dropped, labels...)
}

// Events returns the buffered events oldest-first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(t.start+i)%len(t.buf)]
	}
	return out
}

// chromeEvent is the trace_event JSON shape Perfetto and
// chrome://tracing load. ts is in microseconds.
type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat"`
	Ph   string           `json:"ph"`
	TS   float64          `json:"ts"`
	PID  int              `json:"pid"`
	TID  int              `json:"tid"`
	S    string           `json:"s,omitempty"`
	Args map[string]int64 `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the buffered events as Chrome trace_event
// JSON ("JSON Object Format"), with simulated picoseconds mapped onto
// the format's microsecond timestamps. Open the file at
// https://ui.perfetto.dev or chrome://tracing.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: tracing was not enabled")
	}
	evs := t.Events()
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(evs)), DisplayTimeUnit: "ns"}
	for _, e := range evs {
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Cat,
			Ph:   string(rune(e.Ph)),
			TS:   float64(e.TS) / 1e6, // ps -> µs
			PID:  1,
			TID:  1,
		}
		if e.Ph == PhaseInstant {
			ce.S = "g" // global-scope instant: renders as a full-height marker
		}
		if len(e.Args) > 0 {
			ce.Args = make(map[string]int64, len(e.Args))
			for _, a := range e.Args {
				ce.Args[a.Key] = a.Val
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Observer bundles the two halves of the observability layer for
// threading through the simulator: a metrics registry and an optional
// tracer (nil when tracing is off).
type Observer struct {
	Metrics *Registry
	Trace   *Tracer
}

// NewObserver builds an observer. traceCap <= 0 disables tracing;
// otherwise it sets the event ring capacity.
func NewObserver(traceCap int) *Observer {
	o := &Observer{Metrics: NewRegistry()}
	if traceCap > 0 {
		o.Trace = NewTracer(traceCap)
	}
	return o
}

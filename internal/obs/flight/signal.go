package flight

import (
	"fmt"
	"os"
	"os/signal"
)

// DumpOnSignal installs a handler that writes the recorder to path
// every time one of sigs arrives (conventionally SIGQUIT, mirroring
// the Go runtime's own dump-on-demand signal). Returns a stop
// function that uninstalls the handler.
func DumpOnSignal(r *Ring, path string, sigs ...os.Signal) (stop func()) {
	if r == nil || path == "" || len(sigs) == 0 {
		return func() {}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sigs...)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				if err := r.DumpFile(path); err != nil {
					fmt.Fprintf(os.Stderr, "flight: dump to %s failed: %v\n", path, err)
				} else {
					fmt.Fprintf(os.Stderr, "flight: dumped %d events to %s\n", r.Recorded(), path)
				}
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}

package flight

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestRingBasics records under capacity and checks retention, order,
// and counters.
func TestRingBasics(t *testing.T) {
	r := NewRing(16)
	if r.Size() != 16 {
		t.Fatalf("Size = %d, want 16", r.Size())
	}
	for i := 0; i < 10; i++ {
		r.Record(KindSubmit, int32(i%4), uint64(i)*64, int64(i), 0)
	}
	if r.Recorded() != 10 || r.Evicted() != 0 {
		t.Fatalf("recorded %d evicted %d, want 10, 0", r.Recorded(), r.Evicted())
	}
	evs := r.Snapshot()
	if len(evs) != 10 {
		t.Fatalf("snapshot holds %d events, want 10", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d seq %d, want %d (sequence order)", i, ev.Seq, i+1)
		}
		if ev.Addr != uint64(i)*64 || ev.A != int64(i) {
			t.Fatalf("event %d payload %+v corrupted", i, ev)
		}
	}
}

// TestRingOverflow wraps the ring several times over: only the newest
// size events survive and the eviction counter accounts for the rest.
func TestRingOverflow(t *testing.T) {
	r := NewRing(16)
	const total = 100
	for i := 1; i <= total; i++ {
		r.Record(KindNote, 0, 0, int64(i), 0)
	}
	if r.Recorded() != total {
		t.Fatalf("recorded %d, want %d", r.Recorded(), total)
	}
	if want := uint64(total - 16); r.Evicted() != want {
		t.Fatalf("evicted %d, want %d", r.Evicted(), want)
	}
	evs := r.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("snapshot holds %d, want 16", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(total - 16 + i + 1); ev.Seq != want {
			t.Fatalf("slot %d seq %d, want %d (only newest retained)", i, ev.Seq, want)
		}
	}
}

// TestRingSizeRounding pins rounding: below the 16 minimum and
// non-powers of two round up.
func TestRingSizeRounding(t *testing.T) {
	for in, want := range map[int]int{0: 16, 1: 16, 16: 16, 17: 32, 100: 128} {
		if got := NewRing(in).Size(); got != want {
			t.Fatalf("NewRing(%d).Size = %d, want %d", in, got, want)
		}
	}
}

// TestRingNilSafe: a nil ring is a disabled recorder everywhere.
func TestRingNilSafe(t *testing.T) {
	var r *Ring
	r.Record(KindFault, 1, 2, 3, 4)
	r.Note(0, 0, 0)
	if r.Size() != 0 || r.Recorded() != 0 || r.Evicted() != 0 || r.Snapshot() != nil {
		t.Fatal("nil ring accessors must read zero")
	}
	if err := r.WriteJSON(nil); err != nil {
		t.Fatalf("nil ring WriteJSON = %v", err)
	}
	if err := r.DumpFile(""); err != nil {
		t.Fatalf("nil ring DumpFile = %v", err)
	}
	r.RegisterMetrics(nil)
	r.RefreshMetrics(nil)
}

// TestRingConcurrent hammers the ring from many writers while a
// reader snapshots continuously: no panics, snapshots contain only
// committed events with intact payloads (Seq consistent with A).
func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, ev := range r.Snapshot() {
				// Writers store A = int64(their seq); a torn slot
				// would break this invariant.
				if ev.A != int64(ev.Seq) {
					t.Errorf("torn event: seq %d carries payload %d", ev.Seq, ev.A)
					return
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// A carries the claimed sequence so the reader can
				// detect torn slots; replicate Record's protocol with
				// that payload.
				s := r.seq.Add(1)
				sl := &r.slots[s&r.mask]
				sl.seq.Store(0)
				sl.store(Event{TimeNs: nanotime(), Kind: KindNote, A: int64(s)})
				sl.seq.Store(s)
			}
		}()
	}
	wg.Wait()
	close(stop)
	if r.Recorded() != workers*per {
		t.Fatalf("recorded %d, want %d", r.Recorded(), workers*per)
	}
}

// TestRingJSON checks the dump shape: counters, kind names as
// strings, and decodability.
func TestRingJSON(t *testing.T) {
	r := NewRing(16)
	r.Record(KindDegrade, 2, 128, 7, 3)
	r.Record(KindWatermark, -1, 0, 6, 4)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"degrade"`, `"watermark"`, `"recorded": 2`, `"evicted": 0`} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %s:\n%s", want, out)
		}
	}
	var d struct {
		Recorded uint64 `json:"recorded"`
		Events   []struct {
			Seq  uint64 `json:"seq"`
			Kind string `json:"kind"`
			Addr uint64 `json:"addr"`
		} `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Recorded != 2 || len(d.Events) != 2 || d.Events[0].Kind != "degrade" || d.Events[0].Addr != 128 {
		t.Fatalf("decoded dump %+v malformed", d)
	}
}

// TestRecordNoAllocs gates the always-on contract: recording must not
// allocate.
func TestRecordNoAllocs(t *testing.T) {
	r := NewRing(64)
	var i int64
	if allocs := testing.AllocsPerRun(1000, func() {
		i++
		r.Record(KindSubmit, 0, uint64(i), i, 0)
	}); allocs != 0 {
		t.Errorf("Record allocates %.1f per event, want 0", allocs)
	}
}

// TestKindNames pins the wire names dumps are parsed by.
func TestKindNames(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNote: "note", KindSubmit: "submit", KindDegrade: "degrade",
		KindWatermark: "watermark", KindModeSwitch: "mode_switch",
		KindEpochSwitch: "epoch_switch", KindFault: "fault",
		KindDivergence: "divergence", KindHealth: "health",
	} {
		if k.String() != want {
			t.Fatalf("kind %d = %q, want %q", k, k.String(), want)
		}
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Fatalf("unknown kind = %q", got)
	}
}

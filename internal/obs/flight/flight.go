// Package flight is the always-on flight recorder: a bounded
// lock-free ring of recent annotated events that can be dumped as
// JSON after the fact — on demand, on SIGQUIT, or automatically by
// the check harness when a differential mismatch occurs.
//
// The recorder answers the question the metrics registry cannot:
// "what was the engine doing in the moments before this failure?"
// Counters aggregate; the ring keeps the last N concrete events
// (degradations, watermark moves, epoch switches, fault injections,
// sampled submits) with their relative timestamps and shard/address
// context, at a cost low enough to leave on in production runs: one
// atomic add plus a few stores per event, no locks, no allocations.
//
// Writers never block and never fail; when the ring wraps, the oldest
// events are overwritten and counted as evicted. Snapshot detects
// slots that are mid-write (torn) by a sequence protocol and skips
// them rather than waiting.
package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"counterlight/internal/obs"
)

// Kind classifies a recorded event.
type Kind uint8

const (
	// KindNote: free-form marker (A/B meaning depends on the caller).
	KindNote Kind = iota
	// KindSubmit: sampled request submission (Addr = block address,
	// A = op kind, B = queue depth at submit).
	KindSubmit
	// KindDegrade: an Auto write demoted to counterless (Addr = block
	// address, A = queue depth, B = effective watermark).
	KindDegrade
	// KindWatermark: adaptive controller moved the watermark
	// (A = old, B = new).
	KindWatermark
	// KindModeSwitch: a shard's resolved write mode changed
	// (A = old mode, B = new mode).
	KindModeSwitch
	// KindEpochSwitch: the epoch monitor changed start-of-epoch mode
	// (A = old mode, B = new mode).
	KindEpochSwitch
	// KindFault: a fault was injected (Addr = site, A = fault kind).
	KindFault
	// KindDivergence: the check harness observed a differential
	// mismatch (Addr = op address, A = op index).
	KindDivergence
	// KindHealth: an SLO evaluation changed state (A = old, B = new).
	KindHealth
	// KindCrash: an NVM persistence domain lost power (A = persistence
	// step at which the crash fired, B = journal sequence).
	KindCrash
	// KindRecovery: NVM recovery completed (A = journal entries
	// replayed, B = seq of the snapshot slot recovered from).
	KindRecovery
	// KindJournal: one journal entry from the tail of a failing
	// shard's journal, dumped so a divergence report is self-contained
	// (Addr = op address, A = op tag, B = journal seq).
	KindJournal
)

var kindNames = [...]string{
	KindNote:        "note",
	KindSubmit:      "submit",
	KindDegrade:     "degrade",
	KindWatermark:   "watermark",
	KindModeSwitch:  "mode_switch",
	KindEpochSwitch: "epoch_switch",
	KindFault:       "fault",
	KindDivergence:  "divergence",
	KindHealth:      "health",
	KindCrash:       "crash",
	KindRecovery:    "recovery",
	KindJournal:     "journal",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one recorded moment. Fixed-size and self-contained so a
// slot write is a handful of stores; A and B are kind-specific
// annotations (see the Kind constants).
type Event struct {
	Seq    uint64 `json:"seq"`
	TimeNs int64  `json:"t_ns"` // nanoseconds since process start
	Kind   Kind   `json:"-"`
	Shard  int32  `json:"shard"`
	Addr   uint64 `json:"addr"`
	A      int64  `json:"a"`
	B      int64  `json:"b"`
}

// MarshalJSON emits the kind as its string name alongside the fixed
// fields, so dumps read without the enum table at hand.
func (e Event) MarshalJSON() ([]byte, error) {
	type wire struct {
		Seq    uint64 `json:"seq"`
		TimeNs int64  `json:"t_ns"`
		Kind   string `json:"kind"`
		Shard  int32  `json:"shard"`
		Addr   uint64 `json:"addr"`
		A      int64  `json:"a"`
		B      int64  `json:"b"`
	}
	return json.Marshal(wire{e.Seq, e.TimeNs, e.Kind.String(), e.Shard, e.Addr, e.A, e.B})
}

var procStart = time.Now()

// nanotime is the recorder's monotonic clock (ns since process start).
func nanotime() int64 { return int64(time.Since(procStart)) }

// slot is one ring cell. seq doubles as the commit protocol: 0 marks
// a slot mid-write (dirty); a committed slot stores the 1-based event
// sequence that wrote it. The payload fields are individual atomics —
// a seqlock over plain memory would be invalid under the Go memory
// model — with kind and shard packed into one word.
type slot struct {
	seq     atomic.Uint64
	timeNs  atomic.Int64
	kindShd atomic.Uint64 // kind<<32 | uint32(shard)
	addr    atomic.Uint64
	a, b    atomic.Int64
}

func (sl *slot) store(ev Event) {
	sl.timeNs.Store(ev.TimeNs)
	sl.kindShd.Store(uint64(ev.Kind)<<32 | uint64(uint32(ev.Shard)))
	sl.addr.Store(ev.Addr)
	sl.a.Store(ev.A)
	sl.b.Store(ev.B)
}

func (sl *slot) load(seq uint64) Event {
	ks := sl.kindShd.Load()
	return Event{
		Seq:    seq,
		TimeNs: sl.timeNs.Load(),
		Kind:   Kind(ks >> 32),
		Shard:  int32(uint32(ks)),
		Addr:   sl.addr.Load(),
		A:      sl.a.Load(),
		B:      sl.b.Load(),
	}
}

// Ring is the bounded lock-free event buffer (MPMC writers, snapshot
// readers). A nil *Ring is a disabled recorder: every method no-ops.
type Ring struct {
	slots []slot
	mask  uint64
	seq   atomic.Uint64 // 1-based global event sequence
}

// NewRing builds a recorder holding the most recent size events
// (rounded up to a power of two, minimum 16).
func NewRing(size int) *Ring {
	n := 16
	for n < size {
		n <<= 1
	}
	return &Ring{slots: make([]slot, n), mask: uint64(n - 1)}
}

// Size reports the ring capacity.
func (r *Ring) Size() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Record appends one event. Never blocks, never allocates; wrapping
// overwrites the oldest slot.
func (r *Ring) Record(kind Kind, shard int32, addr uint64, a, b int64) {
	if r == nil {
		return
	}
	s := r.seq.Add(1)
	sl := &r.slots[s&r.mask]
	sl.seq.Store(0) // dirty: snapshots skip this slot until committed
	sl.store(Event{TimeNs: nanotime(), Kind: kind, Shard: shard, Addr: addr, A: a, B: b})
	sl.seq.Store(s)
}

// Note records a free-form marker event.
func (r *Ring) Note(shard int32, a, b int64) { r.Record(KindNote, shard, 0, a, b) }

// Recorded returns the total number of events ever recorded.
func (r *Ring) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Evicted returns how many events have been overwritten by wrapping.
func (r *Ring) Evicted() uint64 {
	if r == nil {
		return 0
	}
	s := r.seq.Load()
	if n := uint64(len(r.slots)); s > n {
		return s - n
	}
	return 0
}

// Snapshot copies the currently retained events in sequence order.
// Slots being written concurrently (or overwritten during the scan)
// are skipped — the snapshot is a best-effort consistent sample, the
// right trade for a diagnostic dump taken while writers keep running.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		sl := &r.slots[i]
		seq := sl.seq.Load()
		if seq == 0 {
			continue // never written, or mid-write
		}
		ev := sl.load(seq)
		// Re-check: if the sequence moved while we copied, the copy
		// may be torn — drop it.
		if sl.seq.Load() != seq {
			continue
		}
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Dump is the JSON shape written by WriteJSON/DumpFile and served
// over HTTP.
type Dump struct {
	Recorded uint64  `json:"recorded"`
	Evicted  uint64  `json:"evicted"`
	Size     int     `json:"size"`
	Events   []Event `json:"events"`
}

func (r *Ring) dump() Dump {
	return Dump{Recorded: r.Recorded(), Evicted: r.Evicted(), Size: r.Size(), Events: r.Snapshot()}
}

// WriteJSON writes the recorder state as indented JSON.
func (r *Ring) WriteJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.dump())
}

// DumpFile writes the recorder state to path (0644, truncating).
func (r *Ring) DumpFile(path string) error {
	if r == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// RegisterMetrics exposes the recorder's counters in reg.
func (r *Ring) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	if r == nil || reg == nil {
		return
	}
	// The registry has no pull hook, so these gauges hold the values
	// as of the last RegisterMetrics/RefreshMetrics call; callers
	// refresh before snapshots.
	reg.Gauge("flight_recorded_total", labels...).Set(int64(r.Recorded()))
	reg.Gauge("flight_evicted_total", labels...).Set(int64(r.Evicted()))
}

// RefreshMetrics re-publishes the recorder counters into reg (same
// series RegisterMetrics created).
func (r *Ring) RefreshMetrics(reg *obs.Registry, labels ...obs.Label) {
	if r == nil || reg == nil {
		return
	}
	reg.Gauge("flight_recorded_total", labels...).Set(int64(r.Recorded()))
	reg.Gauge("flight_evicted_total", labels...).Set(int64(r.Evicted()))
}

package serve

import (
	"encoding/json"
	"net/http"
	"sort"

	"counterlight/internal/obs/flight"
	"counterlight/internal/obs/prof"
)

// This file is the self-observation surface: /api/profile serves the
// online profilers' streaming estimates, /health and /api/slo serve
// the rolling SLO verdict, and /api/flight serves the flight
// recorder's event ring. All three follow the server's observer
// contract — reads snapshot lock-free or briefly-locked state and
// never touch a hot path.

// ProfileEntry is one named profiler snapshot on /api/profile.
type ProfileEntry struct {
	Name string `json:"name"`
	prof.Snapshot
}

// AddProfile attaches a named profiler to /api/profile. Safe to call
// while serving; entries render sorted by name.
func (s *Server) AddProfile(name string, pf *prof.Profiler) {
	if pf == nil {
		return
	}
	s.obsMu.Lock()
	defer s.obsMu.Unlock()
	if s.profilers == nil {
		s.profilers = map[string]*prof.Profiler{}
	}
	s.profilers[name] = pf
}

// SetHealth installs the health source /health and /api/slo serve:
// a function returning the current verdict, conventionally wrapping
// a prof.Evaluator fed by the owner's SLO loop. Nil reverts to the
// default always-OK response.
func (s *Server) SetHealth(fn func() prof.Health) {
	s.obsMu.Lock()
	s.health = fn
	s.obsMu.Unlock()
}

// SetFlight attaches a flight recorder to /api/flight.
func (s *Server) SetFlight(r *flight.Ring) {
	s.obsMu.Lock()
	s.flight = r
	s.obsMu.Unlock()
}

// handleProfile serves every attached profiler's snapshot, sorted by
// name.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	s.obsMu.Lock()
	names := make([]string, 0, len(s.profilers))
	for name := range s.profilers {
		names = append(names, name)
	}
	pfs := make([]*prof.Profiler, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		pfs = append(pfs, s.profilers[name])
	}
	s.obsMu.Unlock()

	entries := make([]ProfileEntry, len(names))
	for i, name := range names {
		entries[i] = ProfileEntry{Name: name, Snapshot: pfs[i].Snapshot()}
	}
	writeJSON(w, entries)
}

// currentHealth reads the installed health source (always-OK when
// none is installed).
func (s *Server) currentHealth() prof.Health {
	s.obsMu.Lock()
	fn := s.health
	s.obsMu.Unlock()
	if fn == nil {
		return prof.Health{State: prof.StateOK}
	}
	return fn()
}

// handleHealth is the load-balancer-shaped endpoint: 200 with the
// verdict JSON while OK or DEGRADED (degraded still serves), 503 once
// FAILING.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := s.currentHealth()
	if h.State == prof.StateFailing {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		writeJSONBody(w, h)
		return
	}
	writeJSON(w, h)
}

// handleSLO always serves 200 with the full verdict — the
// dashboard-shaped view of the same evaluation /health gates on.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.currentHealth())
}

// handleFlight dumps the attached flight recorder (404 when none).
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	s.obsMu.Lock()
	rec := s.flight
	s.obsMu.Unlock()
	if rec == nil {
		http.Error(w, "no flight recorder attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	rec.WriteJSON(w) //nolint:errcheck // client gone; nothing to report
}

// writeJSONBody encodes after the caller has already written headers
// and a status code (writeJSON would be too late to change status).
func writeJSONBody(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to report
}

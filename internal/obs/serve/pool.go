package serve

import (
	"encoding/json"
	"strconv"
	"sync"

	"counterlight/internal/core"
	"counterlight/internal/obs"
	"counterlight/internal/obs/timeseries"
	"counterlight/internal/trace"
)

// Run is one tracked simulation: its identity, its per-epoch
// recorder, its metrics registry, and a small set of live fields the
// epoch stream keeps fresh for /api/runs.
type Run struct {
	ID       int
	Scheme   string
	Workload string
	TotalPS  int64 // warmup + measurement window

	Recorder *timeseries.Recorder
	Registry *obs.Registry

	mu           sync.Mutex
	state        string // "running", "done", "failed"
	simPS        int64
	epochs       uint64
	mode         string
	modeSwitches uint64
	utilization  float64
	instructions uint64
	ipc          float64
	errText      string
}

// RunStatus is the JSON shape of one run on /api/runs.
type RunStatus struct {
	ID              int     `json:"id"`
	Scheme          string  `json:"scheme"`
	Workload        string  `json:"workload"`
	State           string  `json:"state"`
	PercentComplete float64 `json:"percent_complete"`
	SimPS           int64   `json:"sim_ps"`
	TotalPS         int64   `json:"total_ps"`
	Epochs          uint64  `json:"epochs"`
	Mode            string  `json:"mode"`
	ModeSwitches    uint64  `json:"mode_switches"`
	Utilization     float64 `json:"utilization"`
	Instructions    uint64  `json:"instructions"`
	IPC             float64 `json:"ipc"`
	Error           string  `json:"error,omitempty"`
}

// Status snapshots the run's live state.
func (r *Run) Status() RunStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := RunStatus{
		ID:       r.ID,
		Scheme:   r.Scheme,
		Workload: r.Workload,
		State:    r.state,
		SimPS:    r.simPS,
		TotalPS:  r.TotalPS,
		Epochs:   r.epochs,
		Mode:     r.mode,

		ModeSwitches: r.modeSwitches,
		Utilization:  r.utilization,
		Instructions: r.instructions,
		IPC:          r.ipc,
		Error:        r.errText,
	}
	if r.state != "running" {
		st.PercentComplete = 100
	} else if r.TotalPS > 0 {
		st.PercentComplete = 100 * float64(r.simPS) / float64(r.TotalPS)
		if st.PercentComplete > 100 {
			st.PercentComplete = 100
		}
	}
	return st
}

// observe updates the live fields from one epoch sample.
func (r *Run) observe(s obs.EpochSample) {
	r.mu.Lock()
	r.simPS = s.TS
	r.epochs = s.Epoch
	r.mode = s.Mode
	if s.SwitchedMid {
		r.mode = "counterless"
	}
	r.modeSwitches = s.ModeSwitches
	r.utilization = s.Utilization
	r.instructions = s.Instructions
	r.ipc = s.IPC
	r.mu.Unlock()
}

// finish marks the run complete (or failed).
func (r *Run) finish(err error) {
	r.mu.Lock()
	if err != nil {
		r.state = "failed"
		r.errText = err.Error()
	} else {
		r.state = "done"
		r.simPS = r.TotalPS
	}
	r.mu.Unlock()
}

// streamSample is the SSE payload for one epoch event: the run it
// belongs to plus the sample itself.
type streamSample struct {
	Run    int             `json:"run"`
	Sample obs.EpochSample `json:"sample"`
}

// Pool tracks every in-flight and completed run the server knows
// about. It is the publication side of the monitoring service: the
// CLIs register runs here (directly via Attach, or through Observe
// wired into a figures.Runner), and the HTTP handlers read it.
type Pool struct {
	hub *hub

	mu     sync.Mutex
	nextID int
	runs   []*Run

	started   obs.Counter
	completed obs.Counter
	failed    obs.Counter
}

func newPool(h *hub) *Pool { return &Pool{hub: h} }

// registerMetrics exposes the pool's run counters.
func (p *Pool) registerMetrics(reg *obs.Registry) {
	reg.RegisterCounter("serve_runs_started_total", &p.started)
	reg.RegisterCounter("serve_runs_completed_total", &p.completed)
	reg.RegisterCounter("serve_runs_failed_total", &p.failed)
}

// Attach registers a run about to start and wires its telemetry into
// the pool: the config gains an observer registry (if it has none), a
// per-epoch recorder, and a publisher that keeps the run's live
// status fresh and streams samples to SSE clients. The caller must
// invoke the returned completion callback when core.Run returns.
//
// Attach composes with whatever observability the caller already
// configured — an existing cfg.Epochs publisher keeps receiving every
// sample.
func (p *Pool) Attach(workload string, cfg *core.Config) (*Run, func(error)) {
	if cfg.Obs == nil {
		cfg.Obs = obs.NewObserver(0)
	}
	run := &Run{
		Scheme:   cfg.Scheme.String(),
		Workload: workload,
		TotalPS:  cfg.WarmupTime + cfg.WindowTime,
		Recorder: timeseries.NewRecorder(0),
		Registry: cfg.Obs.Metrics,
		state:    "running",
	}

	p.mu.Lock()
	p.nextID++
	run.ID = p.nextID
	p.runs = append(p.runs, run)
	p.mu.Unlock()
	p.started.Inc()

	run.Recorder.RegisterMetrics(run.Registry, obs.L("scheme", run.Scheme))
	cfg.Epochs = obs.Tee(cfg.Epochs, run.Recorder, obs.PublisherFunc(func(s obs.EpochSample) {
		run.observe(s)
		if data, err := json.Marshal(streamSample{Run: run.ID, Sample: s}); err == nil {
			p.hub.publish("epoch", data)
		}
	}))

	done := func(err error) {
		run.finish(err)
		if err != nil {
			p.failed.Inc()
		} else {
			p.completed.Inc()
		}
		if data, jerr := json.Marshal(run.Status()); jerr == nil {
			p.hub.publish("run", data)
		}
	}
	return run, done
}

// Observe is a figures.Runner-compatible hook (assign it to
// Runner.Observe): every simulation a sweep actually executes shows
// up as a tracked run.
func (p *Pool) Observe(w trace.Workload, cfg *core.Config) func(core.Result, error) {
	_, done := p.Attach(w.Name, cfg)
	return func(_ core.Result, err error) { done(err) }
}

// Runs lists every tracked run in start order.
func (p *Pool) Runs() []*Run {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*Run(nil), p.runs...)
}

// Get returns the run with the given id.
func (p *Pool) Get(id int) (*Run, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range p.runs {
		if r.ID == id {
			return r, true
		}
	}
	return nil, false
}

// metricsSnapshot merges every run's registry into one exposition,
// adding a run="<id>" label so identical schemes in different runs
// stay distinct series.
func (p *Pool) metricsSnapshot() obs.Snapshot {
	var out obs.Snapshot
	seen := make(map[*obs.Registry]bool)
	for _, run := range p.Runs() {
		if seen[run.Registry] {
			continue // clsim -baseline shares one registry across runs
		}
		seen[run.Registry] = true
		snap := run.Registry.Snapshot()
		for _, s := range snap.Series {
			if s.Labels == nil {
				s.Labels = make(map[string]string, 1)
			}
			s.Labels["run"] = strconv.Itoa(run.ID)
			out.Series = append(out.Series, s)
		}
	}
	return out
}

package serve

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"counterlight/internal/core"
	"counterlight/internal/mcpool"
	"counterlight/internal/obs"
)

// TestMergeRegistryAndMetricsJSON mounts an external registry on the
// server and requires its series on every metrics surface.
func TestMergeRegistryAndMetricsJSON(t *testing.T) {
	srv := New()
	ext := obs.NewRegistry()
	ext.Counter("mcpool_submitted_total").Add(42)
	srv.MergeRegistry(ext)
	srv.MergeRegistry(nil) // must be a no-op, not a panic

	rr, body := get(t, srv.Handler(), "/metrics")
	if rr.Code != http.StatusOK || !strings.Contains(body, "mcpool_submitted_total 42") {
		t.Errorf("/metrics status %d, missing merged series in:\n%s", rr.Code, body)
	}

	rr, body = get(t, srv.Handler(), "/metrics.json")
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics.json status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	snap, err := obs.ReadSnapshot(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics.json not a snapshot: %v", err)
	}
	if v := snap.Value("mcpool_submitted_total"); v != 42 {
		t.Errorf("merged counter = %v, want 42", v)
	}
	if _, ok := snap.Get("serve_runs_started_total"); !ok {
		t.Error("server's own series missing from /metrics.json")
	}
}

// TestAttribEndpoint drives a small attributed mcpool and reads the
// per-stage breakdown back through /api/attrib.
func TestAttribEndpoint(t *testing.T) {
	srv := New()
	pool, err := mcpool.New(mcpool.Config{
		Shards:      2,
		Attribution: true,
		Engine:      testEngineOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	reg := obs.NewRegistry()
	pool.RegisterMetrics(reg)
	srv.MergeRegistry(reg)

	sched := mcpool.Schedule(mcpool.ScheduleConfig{Ops: 500, Blocks: 128, Seed: 5})
	futs, err := pool.SubmitBatch(sched)
	if err != nil {
		t.Fatal(err)
	}
	for _, fut := range futs {
		if resp := fut.Wait(); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}

	rr, body := get(t, srv.Handler(), "/api/attrib")
	if rr.Code != http.StatusOK {
		t.Fatalf("/api/attrib status %d", rr.Code)
	}
	var rows []AttribRow
	if err := json.Unmarshal([]byte(body), &rows); err != nil {
		t.Fatalf("/api/attrib not JSON: %v\n%s", err, body)
	}
	// 2 shards × (4 stages + total) = 10 stage-labelled histograms.
	if len(rows) != 10 {
		t.Fatalf("got %d attrib rows, want 10:\n%s", len(rows), body)
	}
	byStage := map[string]uint64{}
	for _, row := range rows {
		if row.Labels["shard"] == "" {
			t.Errorf("row %s/%s lost its shard label", row.Name, row.Stage)
		}
		byStage[row.Stage] += row.Count
		if row.Count > 0 && row.P99Ns < row.P50Ns {
			t.Errorf("row %s/%s: p99 %d < p50 %d", row.Name, row.Stage, row.P99Ns, row.P50Ns)
		}
	}
	for _, stage := range append(append([]string(nil), mcpool.StageNames...), "total") {
		if byStage[stage] != uint64(len(sched)) {
			t.Errorf("stage %s: %d samples across shards, want %d", stage, byStage[stage], len(sched))
		}
	}
}

// testEngineOptions mirrors mcpool's test sizing: a small memory so
// pools build fast.
func testEngineOptions() core.EngineOptions {
	opts := core.DefaultEngineOptions()
	opts.MemSize = 1 << 20
	return opts
}

package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"counterlight/internal/obs/flight"
	"counterlight/internal/obs/prof"
)

func TestProfileEndpoint(t *testing.T) {
	srv := New()

	// Empty surface: still valid JSON, an empty list.
	rr, body := get(t, srv.Handler(), "/api/profile")
	if rr.Code != http.StatusOK {
		t.Fatalf("empty /api/profile returned %d", rr.Code)
	}
	var entries []ProfileEntry
	if err := json.Unmarshal([]byte(body), &entries); err != nil {
		t.Fatalf("empty /api/profile body not JSON: %v\n%s", err, body)
	}
	if len(entries) != 0 {
		t.Fatalf("empty /api/profile served %d entries", len(entries))
	}

	// Live data: feed two profilers, check both show up sorted with
	// the observations they took.
	pfB := prof.New("stdlib")
	pfA := prof.New("ref")
	for i := 0; i < 10_000; i++ {
		pfA.Service.Observe(1000)
		pfB.Service.Observe(2000)
	}
	srv.AddProfile("pool", pfB)
	srv.AddProfile("engine", pfA)
	srv.AddProfile("nil-is-ignored", nil)

	rr, body = get(t, srv.Handler(), "/api/profile")
	if rr.Code != http.StatusOK {
		t.Fatalf("/api/profile returned %d", rr.Code)
	}
	if err := json.Unmarshal([]byte(body), &entries); err != nil {
		t.Fatalf("/api/profile body not JSON: %v\n%s", err, body)
	}
	if len(entries) != 2 {
		t.Fatalf("/api/profile served %d entries, want 2", len(entries))
	}
	if entries[0].Name != "engine" || entries[1].Name != "pool" {
		t.Fatalf("entries not sorted by name: %q, %q", entries[0].Name, entries[1].Name)
	}
	if entries[0].Backend != "ref" || entries[1].Backend != "stdlib" {
		t.Fatalf("backends wrong: %q, %q", entries[0].Backend, entries[1].Backend)
	}
	if n := entries[0].Service.Count; n == 0 {
		t.Fatal("engine profiler served zero service observations")
	}
	if a, b := entries[0].Service.EWMA, entries[1].Service.EWMA; !(a > 0 && b > a) {
		t.Fatalf("service EWMAs not ordered: engine %.0f vs pool %.0f", a, b)
	}
}

func TestHealthEndpointStates(t *testing.T) {
	srv := New()

	// No source installed: always OK.
	rr, body := get(t, srv.Handler(), "/health")
	if rr.Code != http.StatusOK {
		t.Fatalf("default /health returned %d", rr.Code)
	}
	var h prof.Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/health body not JSON: %v\n%s", err, body)
	}
	if h.State != prof.StateOK {
		t.Fatalf("default /health state %v, want ok", h.State)
	}

	// Installed source drives both the code and the body; FAILING
	// flips to 503 while still serving the verdict, and /api/slo
	// stays 200 throughout.
	cur := prof.Health{State: prof.StateDegraded, Checks: []prof.SLOCheck{
		{Name: "submit_p99_ns", State: prof.StateDegraded, Value: 1.5e6, Limit: 1e6},
	}}
	srv.SetHealth(func() prof.Health { return cur })

	rr, body = get(t, srv.Handler(), "/health")
	if rr.Code != http.StatusOK {
		t.Fatalf("degraded /health returned %d, want 200 (degraded still serves)", rr.Code)
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.State != prof.StateDegraded || len(h.Checks) != 1 {
		t.Fatalf("degraded verdict not served: %+v", h)
	}

	cur.State = prof.StateFailing
	rr, body = get(t, srv.Handler(), "/health")
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("failing /health returned %d, want 503", rr.Code)
	}
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("failing /health body not JSON: %v\n%s", err, body)
	}
	if h.State != prof.StateFailing {
		t.Fatalf("failing verdict not served: %+v", h)
	}

	rr, _ = get(t, srv.Handler(), "/api/slo")
	if rr.Code != http.StatusOK {
		t.Fatalf("/api/slo returned %d while failing, want 200", rr.Code)
	}

	// Nil reverts to the always-OK default.
	srv.SetHealth(nil)
	rr, _ = get(t, srv.Handler(), "/health")
	if rr.Code != http.StatusOK {
		t.Fatalf("/health after SetHealth(nil) returned %d", rr.Code)
	}
}

func TestFlightEndpoint(t *testing.T) {
	srv := New()

	rr, _ := get(t, srv.Handler(), "/api/flight")
	if rr.Code != http.StatusNotFound {
		t.Fatalf("/api/flight with no ring returned %d, want 404", rr.Code)
	}

	rec := flight.NewRing(64)
	rec.Record(flight.KindWatermark, 2, 0, 48, 32)
	rec.Note(-1, 7, 0)
	srv.SetFlight(rec)

	rr, body := get(t, srv.Handler(), "/api/flight")
	if rr.Code != http.StatusOK {
		t.Fatalf("/api/flight returned %d", rr.Code)
	}
	var dump flight.Dump
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/api/flight body not JSON: %v\n%s", err, body)
	}
	if dump.Recorded != 2 || len(dump.Events) != 2 {
		t.Fatalf("/api/flight dump wrong: recorded %d, %d events", dump.Recorded, len(dump.Events))
	}
}

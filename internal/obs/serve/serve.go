// Package serve is the HTTP half of the live-telemetry subsystem: a
// monitoring service that exposes the metrics registries, per-run
// status, per-epoch time series, and a server-sent-event stream of
// the simulations tracked in its Pool. The storage half is
// internal/obs/timeseries.
//
// The server is strictly an observer. It attaches to runs through the
// obs.Publisher seam and per-run registries; nothing on the simulator
// hot path blocks on a client, and shutting the server down
// mid-stream leaves every Result bit-identical to an unserved run.
package serve

import (
	"context"
	"embed"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"

	"counterlight/internal/obs"
	"counterlight/internal/obs/flight"
	"counterlight/internal/obs/prof"
	"counterlight/internal/obs/timeseries"
)

//go:embed static/index.html
var staticFS embed.FS

// Server is the monitoring HTTP service. Create one with New, attach
// runs through Pool(), and serve with Handler() or ListenAndServe.
type Server struct {
	hub  *hub
	pool *Pool
	reg  *obs.Registry // server-side metrics (SSE clients, run counts)
	mux  *http.ServeMux

	mergedMu sync.Mutex
	merged   []*obs.Registry // external registries (MergeRegistry)

	// Self-observation surface (health.go): named profilers on
	// /api/profile, the /health verdict source, the /api/flight ring.
	obsMu     sync.Mutex
	profilers map[string]*prof.Profiler
	health    func() prof.Health
	flight    *flight.Ring

	mu   sync.Mutex
	http *http.Server
}

// New builds a monitoring server with an empty run pool.
func New() *Server {
	s := &Server{
		hub: newHub(),
		reg: obs.NewRegistry(),
		mux: http.NewServeMux(),
	}
	s.pool = newPool(s.hub)
	s.hub.registerMetrics(s.reg)
	s.pool.registerMetrics(s.reg)
	s.routes()
	return s
}

// Pool returns the run pool; register simulations on it before (or
// while) serving.
func (s *Server) Pool() *Pool { return s.pool }

// Handler returns the server's routing table, for tests and for
// mounting under an existing server.
func (s *Server) Handler() http.Handler { return s.mux }

// MergeRegistry adds an external registry to the server's metrics
// surfaces: its series appear on /metrics, /metrics.json, and (for
// stage-labelled latency histograms) /api/attrib alongside the
// server's own and every run's. Use it to mount component registries
// — e.g. an mcpool's shard metrics — on the monitoring server without
// routing them through a Run.
func (s *Server) MergeRegistry(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.mergedMu.Lock()
	s.merged = append(s.merged, reg)
	s.mergedMu.Unlock()
}

// Handle mounts an external handler on the server's mux — e.g. a
// cluster's request-plane API under "/v1/". Register before
// ListenAndServe; the pattern follows http.ServeMux syntax.
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /{$}", s.handleIndex)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	s.mux.HandleFunc("GET /api/runs", s.handleRuns)
	s.mux.HandleFunc("GET /api/runs/{id}", s.handleRun)
	s.mux.HandleFunc("GET /api/runs/{id}/series", s.handleSeries)
	s.mux.HandleFunc("GET /api/attrib", s.handleAttrib)
	s.mux.HandleFunc("GET /api/stream", s.handleStream)
	s.mux.HandleFunc("GET /api/profile", s.handleProfile)
	s.mux.HandleFunc("GET /api/slo", s.handleSLO)
	s.mux.HandleFunc("GET /api/flight", s.handleFlight)
	s.mux.HandleFunc("GET /health", s.handleHealth)

	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// ListenAndServe binds addr (use ":0" for an ephemeral port), starts
// serving in the background, and returns the bound address. Stop with
// Shutdown.
func (s *Server) ListenAndServe(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	hs := &http.Server{Handler: s.mux}
	s.mu.Lock()
	s.http = hs
	s.mu.Unlock()
	go hs.Serve(ln) //nolint:errcheck // ErrServerClosed after Shutdown
	return ln.Addr().String(), nil
}

// Shutdown closes the SSE hub (releasing every streaming handler) and
// then gracefully stops the HTTP server.
func (s *Server) Shutdown(ctx context.Context) error {
	s.hub.close()
	s.mu.Lock()
	hs := s.http
	s.http = nil
	s.mu.Unlock()
	if hs == nil {
		return nil
	}
	return hs.Shutdown(ctx)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	page, err := staticFS.ReadFile("static/index.html")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write(page)
}

// mergedSnapshot combines the server's own registry, every run's
// registry (run="<id>"-labelled), and every MergeRegistry registry
// into one snapshot.
func (s *Server) mergedSnapshot() obs.Snapshot {
	snap := s.reg.Snapshot()
	runs := s.pool.metricsSnapshot()
	snap.Series = append(snap.Series, runs.Series...)
	s.mergedMu.Lock()
	merged := append([]*obs.Registry(nil), s.merged...)
	s.mergedMu.Unlock()
	for _, reg := range merged {
		snap.Series = append(snap.Series, reg.Snapshot().Series...)
	}
	return snap
}

// handleMetrics renders the merged snapshot as a Prometheus
// exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.mergedSnapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := snap.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleMetricsJSON renders the merged snapshot in the clreport
// -compare interchange format.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.mergedSnapshot().WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// AttribRow is one stage of one latency-attribution histogram on
// /api/attrib: the series identity plus its distribution reduced to
// count, mean, and conservative upper-edge percentiles.
type AttribRow struct {
	Name   string            `json:"name"`
	Stage  string            `json:"stage"`
	Labels map[string]string `json:"labels,omitempty"`
	Count  uint64            `json:"count"`
	MeanNs int64             `json:"mean_ns"`
	P50Ns  int64             `json:"p50_ns"`
	P95Ns  int64             `json:"p95_ns"`
	P99Ns  int64             `json:"p99_ns"`
}

// handleAttrib reports every stage-labelled latency histogram in the
// merged snapshot — the obs.Attributor export convention — as a JSON
// breakdown: per-stage counts and percentiles, in the snapshot's
// deterministic series order.
func (s *Server) handleAttrib(w http.ResponseWriter, r *http.Request) {
	snap := s.mergedSnapshot()
	rows := []AttribRow{}
	for _, se := range snap.Series {
		if se.Kind != obs.KindHistogram || se.Labels["stage"] == "" {
			continue
		}
		row := AttribRow{
			Name:  se.Name,
			Stage: se.Labels["stage"],
			Count: uint64(se.Value),
			P50Ns: se.Quantile(0.50),
			P95Ns: se.Quantile(0.95),
			P99Ns: se.Quantile(0.99),
		}
		if row.Count > 0 {
			row.MeanNs = se.Sum / int64(row.Count)
		}
		row.Labels = make(map[string]string, len(se.Labels))
		for k, v := range se.Labels {
			if k != "stage" {
				row.Labels[k] = v
			}
		}
		if len(row.Labels) == 0 {
			row.Labels = nil
		}
		rows = append(rows, row)
	}
	writeJSON(w, rows)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone; nothing to report
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	runs := s.pool.Runs()
	out := make([]RunStatus, len(runs))
	for i, run := range runs {
		out[i] = run.Status()
	}
	writeJSON(w, out)
}

// runFromPath resolves the {id} wildcard to a tracked run.
func (s *Server) runFromPath(w http.ResponseWriter, r *http.Request) (*Run, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		http.Error(w, "bad run id", http.StatusBadRequest)
		return nil, false
	}
	run, ok := s.pool.Get(id)
	if !ok {
		http.Error(w, fmt.Sprintf("no run %d", id), http.StatusNotFound)
		return nil, false
	}
	return run, true
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	run, ok := s.runFromPath(w, r)
	if !ok {
		return
	}
	writeJSON(w, run.Status())
}

// handleSeries exports a run's per-epoch samples. ?max=N downsamples
// to at most N points; ?format=csv switches from JSON to CSV.
func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	run, ok := s.runFromPath(w, r)
	if !ok {
		return
	}
	samples := run.Recorder.Samples()
	if maxStr := r.URL.Query().Get("max"); maxStr != "" {
		max, err := strconv.Atoi(maxStr)
		if err != nil || max <= 0 {
			http.Error(w, "bad max", http.StatusBadRequest)
			return
		}
		samples = timeseries.Downsample(samples, max)
	}
	format := r.URL.Query().Get("format")
	switch format {
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
	default:
		http.Error(w, fmt.Sprintf("unknown format %q", format), http.StatusBadRequest)
		return
	}
	if err := timeseries.WriteTo(w, samples, format); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleStream is the SSE endpoint: every epoch sample (and run
// completion) is pushed as it happens. ?run=N filters to one run.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	var filter int
	if runStr := r.URL.Query().Get("run"); runStr != "" {
		id, err := strconv.Atoi(runStr)
		if err != nil {
			http.Error(w, "bad run id", http.StatusBadRequest)
			return
		}
		filter = id
	}

	ch, cancel := s.hub.subscribe()
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	for {
		select {
		case <-r.Context().Done():
			return
		case e, open := <-ch:
			if !open {
				return // hub closed: server shutting down
			}
			if filter != 0 && !eventForRun(e.data, filter) {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.name, e.data)
			fl.Flush()
		}
	}
}

// eventForRun reports whether an event payload belongs to run id.
// Epoch payloads carry {"run":N,...}; run payloads carry {"id":N,...}.
func eventForRun(data []byte, id int) bool {
	var probe struct {
		Run int `json:"run"`
		ID  int `json:"id"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return false
	}
	return probe.Run == id || probe.ID == id
}

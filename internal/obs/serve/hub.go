package serve

import (
	"sync"

	"counterlight/internal/obs"
)

// sseEvent is one server-sent event: a name and a pre-encoded JSON
// payload.
type sseEvent struct {
	name string
	data []byte
}

// subBuffer is each subscriber's channel depth. A slow client that
// falls this far behind starts losing events (counted, never blocking
// the publisher).
const subBuffer = 256

// hub fans epoch and run events out to SSE subscribers. Publishing
// never blocks: the simulator side must stay timing-neutral, so a
// full subscriber buffer drops the event for that subscriber and
// advances the drop counter instead of waiting.
type hub struct {
	mu     sync.Mutex
	subs   map[chan sseEvent]struct{}
	closed bool

	clients obs.Gauge
	dropped obs.Counter
}

func newHub() *hub {
	return &hub{subs: make(map[chan sseEvent]struct{})}
}

// subscribe registers a new client. The returned cancel is idempotent
// and must be called when the client goes away. After the hub closes,
// the returned channel is already closed.
func (h *hub) subscribe() (<-chan sseEvent, func()) {
	ch := make(chan sseEvent, subBuffer)
	h.mu.Lock()
	if h.closed {
		close(ch)
		h.mu.Unlock()
		return ch, func() {}
	}
	h.subs[ch] = struct{}{}
	h.clients.Set(int64(len(h.subs)))
	h.mu.Unlock()

	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			if _, ok := h.subs[ch]; ok {
				delete(h.subs, ch)
				close(ch)
			}
			h.clients.Set(int64(len(h.subs)))
			h.mu.Unlock()
		})
	}
	return ch, cancel
}

// publish delivers the event to every subscriber without blocking.
func (h *hub) publish(name string, data []byte) {
	e := sseEvent{name: name, data: data}
	h.mu.Lock()
	for ch := range h.subs {
		select {
		case ch <- e:
		default:
			h.dropped.Inc()
		}
	}
	h.mu.Unlock()
}

// close drains the hub: every subscriber's channel is closed (their
// handlers return, letting http.Server.Shutdown complete) and future
// subscribes get a closed channel.
func (h *hub) close() {
	h.mu.Lock()
	if !h.closed {
		h.closed = true
		for ch := range h.subs {
			close(ch)
		}
		h.subs = make(map[chan sseEvent]struct{})
		h.clients.Set(0)
	}
	h.mu.Unlock()
}

// registerMetrics exposes the hub's client gauge and drop counter.
func (h *hub) registerMetrics(reg *obs.Registry) {
	reg.RegisterGauge("serve_sse_clients", &h.clients)
	reg.RegisterCounter("serve_sse_dropped_events_total", &h.dropped)
}

package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"

	"counterlight/internal/core"
	"counterlight/internal/obs"
)

// TestStreamUnderConcurrentRuns is the SSE correctness probe for
// simultaneous publishers: several runs attach and publish epoch
// samples from racing goroutines while a streaming client listens.
// Every run must appear on the stream, every received payload must be
// well-formed JSON attributed to a real run, and all completion
// events must arrive. Run under -race this doubles as a data-race
// probe of the hub's publish/subscribe path.
func TestStreamUnderConcurrentRuns(t *testing.T) {
	srv := New()
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	resp, err := http.Get("http://" + addr + "/api/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	const runs, samplesPerRun = 4, 8
	var wg sync.WaitGroup
	for r := 0; r < runs; r++ {
		cfg := testCfg(core.CounterLight)
		_, done := srv.Pool().Attach("mcf", &cfg)
		wg.Add(1)
		go func(cfg *core.Config) {
			defer wg.Done()
			for i := 1; i <= samplesPerRun; i++ {
				cfg.Epochs.PublishEpoch(fakeSample(i))
			}
			done(nil)
		}(&cfg)
	}
	wg.Wait()

	// All events were published before any could be dropped only if
	// the client drains fast enough; the hub's buffer (256) comfortably
	// holds runs*(samplesPerRun+1) = 36, so every event must arrive.
	want := runs * (samplesPerRun + 1)
	events, err := readSSE(bufio.NewReader(resp.Body), want)
	if len(events) != want {
		t.Fatalf("got %d SSE events (err %v), want %d", len(events), err, want)
	}

	epochsByRun := map[int]int{}
	doneRuns := map[int]bool{}
	for _, e := range events {
		switch e.name {
		case "epoch":
			var msg struct {
				Run    int             `json:"run"`
				Sample obs.EpochSample `json:"sample"`
			}
			if jerr := json.Unmarshal([]byte(e.data), &msg); jerr != nil {
				t.Fatalf("epoch event not JSON: %v (%q)", jerr, e.data)
			}
			if msg.Run < 1 || msg.Run > runs {
				t.Fatalf("epoch event for unknown run %d", msg.Run)
			}
			epochsByRun[msg.Run]++
		case "run":
			var st RunStatus
			if jerr := json.Unmarshal([]byte(e.data), &st); jerr != nil {
				t.Fatalf("run event not JSON: %v (%q)", jerr, e.data)
			}
			if st.State != "done" {
				t.Errorf("run %d completed in state %q", st.ID, st.State)
			}
			doneRuns[st.ID] = true
		default:
			t.Errorf("unexpected SSE event %q", e.name)
		}
	}
	for r := 1; r <= runs; r++ {
		if epochsByRun[r] != samplesPerRun {
			t.Errorf("run %d: %d epoch events, want %d", r, epochsByRun[r], samplesPerRun)
		}
		if !doneRuns[r] {
			t.Errorf("run %d: no completion event", r)
		}
	}
}

// TestStreamRunFilterUnderConcurrentRuns asserts ?run=N isolation
// while other runs publish concurrently: the filtered stream must
// deliver run N's events and nothing else.
func TestStreamRunFilterUnderConcurrentRuns(t *testing.T) {
	srv := New()
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	// Attach two runs before subscribing so the filter target exists.
	cfgA := testCfg(core.CounterLight)
	_, doneA := srv.Pool().Attach("mcf", &cfgA)
	cfgB := testCfg(core.CounterLight)
	_, doneB := srv.Pool().Attach("mcf", &cfgB)

	resp, err := http.Get("http://" + addr + "/api/stream?run=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	const n = 6
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 1; i <= n; i++ {
			cfgA.Epochs.PublishEpoch(fakeSample(i))
		}
		doneA(nil)
	}()
	go func() {
		defer wg.Done()
		for i := 1; i <= n; i++ {
			cfgB.Epochs.PublishEpoch(fakeSample(i))
		}
		doneB(nil)
	}()
	wg.Wait()

	events, err := readSSE(bufio.NewReader(resp.Body), n+1)
	if len(events) != n+1 {
		t.Fatalf("got %d filtered events (err %v), want %d", len(events), err, n+1)
	}
	for _, e := range events {
		var probe struct {
			Run int `json:"run"`
			ID  int `json:"id"`
		}
		if jerr := json.Unmarshal([]byte(e.data), &probe); jerr != nil {
			t.Fatalf("event not JSON: %v (%q)", jerr, e.data)
		}
		if probe.Run != 2 && probe.ID != 2 {
			t.Errorf("filtered stream leaked event for run %d/%d: %s", probe.Run, probe.ID, e.data)
		}
	}
}

package serve

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestHubConcurrentChurn hammers the hub's full lifecycle from many
// goroutines at once — subscribe, read, double-cancel, publish, and a
// mid-flight close — so the race detector can see every lock ordering.
// The disconnect path (cancel racing publish racing close) is exactly
// where a naive hub corrupts its subscriber map.
func TestHubConcurrentChurn(t *testing.T) {
	h := newHub()
	var wg sync.WaitGroup

	// Publishers: keep events flowing through the whole churn.
	stop := make(chan struct{})
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.publish("epoch", []byte(`{"run":1}`))
				}
			}
		}()
	}

	// Subscribers: churn through subscribe → read a little → cancel,
	// with cancel called twice (it must be idempotent) and sometimes
	// from a second goroutine.
	for s := 0; s < 32; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ch, cancel := h.subscribe()
				// Drain a few events (or observe closure).
				for j := 0; j < 3; j++ {
					if _, open := <-ch; !open {
						break
					}
				}
				if s%2 == 0 {
					done := make(chan struct{})
					go func() { cancel(); close(done) }()
					cancel()
					<-done
				} else {
					cancel()
					cancel()
				}
			}
		}(s)
	}

	// Let the churn run, then close the hub underneath it: subscribers
	// mid-read must observe closed channels, not deadlock.
	time.Sleep(20 * time.Millisecond)
	h.close()
	h.close() // idempotent
	close(stop)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("hub churn deadlocked")
	}

	// Post-close: publishing is a no-op, subscribing yields a closed
	// channel, and the client gauge reads zero.
	h.publish("epoch", []byte("{}"))
	ch, cancel := h.subscribe()
	defer cancel()
	if _, open := <-ch; open {
		t.Error("subscribe after close returned an open channel")
	}
	if got := h.clients.Value(); got != 0 {
		t.Errorf("client gauge = %d after close, want 0", got)
	}
}

// TestShutdownWithLiveSSEClients points real HTTP streaming clients at
// a live server, churns connects/disconnects while Shutdown fires, and
// requires every client to come unstuck. This is the server-level
// disconnect path the hub churn test exercises in miniature.
func TestShutdownWithLiveSSEClients(t *testing.T) {
	srv := New()
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			ctx := context.Background()
			if c%2 == 0 {
				// Half the clients hang up on their own mid-stream.
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, 30*time.Millisecond)
				defer cancel()
			}
			req, err := http.NewRequestWithContext(ctx, "GET", "http://"+addr+"/api/stream", nil)
			if err != nil {
				errs <- err
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errs <- fmt.Errorf("client %d connect: %w", c, err)
				return
			}
			defer resp.Body.Close()
			br := bufio.NewReader(resp.Body)
			for {
				if _, err := br.ReadString('\n'); err != nil {
					return // stream ended: shutdown or client timeout
				}
			}
		}(c)
	}

	// Give the clients time to attach, keep events flowing, then pull
	// the rug.
	time.Sleep(50 * time.Millisecond)
	srv.Pool().hub.publish("epoch", []byte(`{"run":1}`))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with live clients: %v", err)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("SSE clients still blocked after Shutdown")
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"counterlight/internal/core"
	"counterlight/internal/obs"
	"counterlight/internal/trace"
)

const us = int64(1_000_000) // picoseconds

// testCfg mirrors core's fastCfg: a shrunken hierarchy and short
// windows so runs finish quickly while still reaching steady state.
func testCfg(scheme core.Scheme) core.Config {
	cfg := core.DefaultConfig(scheme)
	cfg.L1Size = 16 << 10
	cfg.L2Size = 128 << 10
	cfg.L3Size = 1 << 20
	cfg.WarmupTime = 400 * us
	cfg.WindowTime = 600 * us
	return cfg
}

// fakeSample builds a deterministic epoch sample for handler tests.
func fakeSample(i int) obs.EpochSample {
	s := obs.EpochSample{
		TS:           int64(i) * 100 * us,
		Epoch:        uint64(i),
		Utilization:  0.5 + 0.01*float64(i),
		Mode:         "counter",
		ModeSwitches: uint64(i / 3),
		MetaReads:    uint64(10 * i),
		MetaWrites:   uint64(4 * i),
		QueueDepth:   int64(i),
		Instructions: uint64(1000 * i),
		IPC:          1.5,
		Measuring:    true,
	}
	if i%3 == 0 {
		s.SwitchedMid = true
	}
	return s
}

// attachFake registers a run on the pool and feeds it n synthetic
// samples through the publisher seam, as a real simulation would.
func attachFake(t *testing.T, srv *Server, n int, finish error) *core.Config {
	t.Helper()
	cfg := testCfg(core.CounterLight)
	_, done := srv.Pool().Attach("mcf", &cfg)
	for i := 1; i <= n; i++ {
		cfg.Epochs.PublishEpoch(fakeSample(i))
	}
	done(finish)
	return &cfg
}

func get(t *testing.T, h http.Handler, path string) (*httptest.ResponseRecorder, string) {
	t.Helper()
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
	return rr, rr.Body.String()
}

func TestMetricsEndpoint(t *testing.T) {
	srv := New()
	attachFake(t, srv, 5, nil)

	rr, body := get(t, srv.Handler(), "/metrics")
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE serve_runs_started_total counter",
		"serve_runs_started_total 1",
		"serve_runs_completed_total 1",
		"serve_runs_failed_total 0",
		"serve_sse_clients 0",
		// the run's registry shows up labelled run="1"
		`timeseries_evictions_total{run="1",scheme="counterlight"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

func TestRunsAPI(t *testing.T) {
	srv := New()
	attachFake(t, srv, 5, nil)
	attachFake(t, srv, 2, fmt.Errorf("boom"))

	rr, body := get(t, srv.Handler(), "/api/runs")
	if rr.Code != http.StatusOK {
		t.Fatalf("/api/runs status %d", rr.Code)
	}
	var runs []RunStatus
	if err := json.Unmarshal([]byte(body), &runs); err != nil {
		t.Fatalf("/api/runs not JSON: %v", err)
	}
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(runs))
	}
	if runs[0].ID != 1 || runs[0].Scheme != "counterlight" || runs[0].Workload != "mcf" ||
		runs[0].State != "done" || runs[0].PercentComplete != 100 {
		t.Errorf("run 1 status wrong: %+v", runs[0])
	}
	if runs[1].State != "failed" || runs[1].Error != "boom" {
		t.Errorf("run 2 should be failed: %+v", runs[1])
	}
	if runs[0].Epochs != 5 || runs[0].ModeSwitches != 1 {
		t.Errorf("run 1 live fields not updated: %+v", runs[0])
	}

	rr, body = get(t, srv.Handler(), "/api/runs/2")
	if rr.Code != http.StatusOK {
		t.Fatalf("/api/runs/2 status %d", rr.Code)
	}
	var one RunStatus
	if err := json.Unmarshal([]byte(body), &one); err != nil || one.ID != 2 {
		t.Errorf("/api/runs/2 = %+v (err %v)", one, err)
	}

	if rr, _ := get(t, srv.Handler(), "/api/runs/99"); rr.Code != http.StatusNotFound {
		t.Errorf("/api/runs/99 status %d, want 404", rr.Code)
	}
	if rr, _ := get(t, srv.Handler(), "/api/runs/zzz"); rr.Code != http.StatusBadRequest {
		t.Errorf("/api/runs/zzz status %d, want 400", rr.Code)
	}
}

func TestSeriesEndpoint(t *testing.T) {
	srv := New()
	attachFake(t, srv, 6, nil)

	rr, body := get(t, srv.Handler(), "/api/runs/1/series")
	if rr.Code != http.StatusOK {
		t.Fatalf("series status %d", rr.Code)
	}
	var samples []obs.EpochSample
	if err := json.Unmarshal([]byte(body), &samples); err != nil {
		t.Fatalf("series not JSON: %v", err)
	}
	if len(samples) != 6 {
		t.Fatalf("got %d samples, want 6", len(samples))
	}
	if !reflect.DeepEqual(samples[2], fakeSample(3)) {
		t.Errorf("sample 3 = %+v, want %+v", samples[2], fakeSample(3))
	}

	rr, body = get(t, srv.Handler(), "/api/runs/1/series?max=2")
	if rr.Code != http.StatusOK {
		t.Fatalf("downsampled series status %d", rr.Code)
	}
	samples = nil
	if err := json.Unmarshal([]byte(body), &samples); err != nil || len(samples) != 2 {
		t.Errorf("max=2 gave %d samples (err %v)", len(samples), err)
	}

	rr, body = get(t, srv.Handler(), "/api/runs/1/series?format=csv")
	if rr.Code != http.StatusOK {
		t.Fatalf("csv series status %d", rr.Code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	wantHeader := "ts_ps,epoch,utilization,mode,switched_mid,mode_switches,memo_hit_rate," +
		"meta_reads,meta_writes,queue_depth,bus_backlog_ps,instructions,ipc,measuring"
	if lines[0] != wantHeader {
		t.Errorf("csv header = %q", lines[0])
	}
	if len(lines) != 7 {
		t.Errorf("csv has %d lines, want header + 6 rows", len(lines))
	}

	if rr, _ := get(t, srv.Handler(), "/api/runs/1/series?format=xml"); rr.Code != http.StatusBadRequest {
		t.Errorf("format=xml status %d, want 400", rr.Code)
	}
	if rr, _ := get(t, srv.Handler(), "/api/runs/1/series?max=nope"); rr.Code != http.StatusBadRequest {
		t.Errorf("max=nope status %d, want 400", rr.Code)
	}
}

func TestIndexAndPprof(t *testing.T) {
	srv := New()
	rr, body := get(t, srv.Handler(), "/")
	if rr.Code != http.StatusOK || !strings.Contains(body, "live telemetry") {
		t.Errorf("index status %d", rr.Code)
	}
	if rr, _ := get(t, srv.Handler(), "/debug/pprof/cmdline"); rr.Code != http.StatusOK {
		t.Errorf("pprof cmdline status %d", rr.Code)
	}
}

// sseEventMsg is one parsed server-sent event.
type sseEventMsg struct {
	name string
	data string
}

// readSSE consumes events from an SSE body until want have arrived or
// the stream ends.
func readSSE(r *bufio.Reader, want int) ([]sseEventMsg, error) {
	var out []sseEventMsg
	var cur sseEventMsg
	for len(out) < want {
		line, err := r.ReadString('\n')
		if err != nil {
			return out, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.data != "":
			out = append(out, cur)
			cur = sseEventMsg{}
		}
	}
	return out, nil
}

// TestStreamDeliversEpochEvents runs a real starved-channel simulation
// against a live server and requires the SSE stream to deliver
// per-epoch samples, including at least one mode-switch event.
func TestStreamDeliversEpochEvents(t *testing.T) {
	srv := New()
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	resp, err := http.Get("http://" + addr + "/api/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}

	cfg := testCfg(core.CounterLight)
	cfg.BandwidthGBs = 6.4 // starve the channel so modes switch
	_, done := srv.Pool().Attach("mcf", &cfg)
	w, ok := trace.ByName("mcf")
	if !ok {
		t.Fatal("mcf workload missing")
	}
	runErr := make(chan error, 1)
	go func() {
		_, err := core.Run(cfg, w)
		done(err)
		runErr <- err
	}()

	events, err := readSSE(bufio.NewReader(resp.Body), 2)
	if len(events) < 2 {
		t.Fatalf("got %d SSE events (err %v), want >= 2", len(events), err)
	}
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}

	sawSwitch := false
	for _, e := range events {
		if e.name != "epoch" {
			continue
		}
		var msg struct {
			Run    int             `json:"run"`
			Sample obs.EpochSample `json:"sample"`
		}
		if jerr := json.Unmarshal([]byte(e.data), &msg); jerr != nil {
			t.Fatalf("epoch event not JSON: %v (%q)", jerr, e.data)
		}
		if msg.Run != 1 {
			t.Errorf("epoch event for run %d, want 1", msg.Run)
		}
		if msg.Sample.SwitchedMid || msg.Sample.ModeSwitches > 0 {
			sawSwitch = true
		}
	}
	// The first two epochs of a starved counterlight run switch to
	// counterless almost immediately; require the stream to show it.
	if !sawSwitch {
		// Drain more of the stream before declaring failure: switch
		// timing depends on warmup behavior.
		more, _ := readSSE(bufio.NewReader(resp.Body), 20)
		for _, e := range more {
			if strings.Contains(e.data, `"switched_mid":true`) ||
				strings.Contains(e.data, `"mode":"counterless"`) {
				sawSwitch = true
				break
			}
		}
	}
	if !sawSwitch {
		t.Error("no mode-switch event observed on the SSE stream")
	}
}

// TestServeDoesNotPerturbResult is the live-telemetry determinism
// guarantee end to end: a run attached to a live monitoring server
// with a streaming client must produce a Result bit-identical to a
// bare run.
func TestServeDoesNotPerturbResult(t *testing.T) {
	cfg := testCfg(core.CounterLight)
	cfg.BandwidthGBs = 6.4
	w, ok := trace.ByName("mcf")
	if !ok {
		t.Fatal("mcf workload missing")
	}
	bare, err := core.Run(cfg, w)
	if err != nil {
		t.Fatal(err)
	}

	srv := New()
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	// A live SSE consumer, reading for the whole run.
	resp, err := http.Get("http://" + addr + "/api/stream")
	if err != nil {
		t.Fatal(err)
	}
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		br := bufio.NewReader(resp.Body)
		for {
			if _, err := br.ReadString('\n'); err != nil {
				return
			}
		}
	}()

	served := testCfg(core.CounterLight)
	served.BandwidthGBs = 6.4
	run, done := srv.Pool().Attach("mcf", &served)
	observed, err := core.Run(served, w)
	done(err)
	if err != nil {
		t.Fatal(err)
	}

	if bare.Instructions != observed.Instructions || bare.LLCMisses != observed.LLCMisses ||
		bare.DRAM != observed.DRAM || bare.AvgMissLatNS != observed.AvgMissLatNS ||
		bare.WBCounterless != observed.WBCounterless || bare.WBTotal != observed.WBTotal {
		t.Errorf("serving changed the run:\nbare:   %v\nserved: %v", bare, observed)
	}
	if len(bare.EpochHistory) != len(observed.EpochHistory) {
		t.Errorf("epoch history diverged: %d vs %d records",
			len(bare.EpochHistory), len(observed.EpochHistory))
	}
	if run.Recorder.Len() != len(observed.EpochHistory) {
		t.Errorf("recorder has %d samples, history %d", run.Recorder.Len(), len(observed.EpochHistory))
	}

	// Graceful shutdown must release the streaming client.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case <-consumerDone:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE consumer still blocked after Shutdown")
	}
	resp.Body.Close()
}

// TestHubDropsWhenSubscriberStalls: a stalled subscriber loses events
// (counted) without ever blocking the publisher.
func TestHubDropsWhenSubscriberStalls(t *testing.T) {
	h := newHub()
	ch, cancel := h.subscribe()
	defer cancel()
	for i := 0; i < subBuffer+10; i++ {
		h.publish("epoch", []byte("{}"))
	}
	if got := h.dropped.Value(); got != 10 {
		t.Errorf("dropped = %d, want 10", got)
	}
	if len(ch) != subBuffer {
		t.Errorf("buffered = %d, want %d", len(ch), subBuffer)
	}
}

func TestHubSubscribeAfterClose(t *testing.T) {
	h := newHub()
	h.close()
	ch, cancel := h.subscribe()
	defer cancel()
	if _, open := <-ch; open {
		t.Error("subscribe after close returned an open channel")
	}
}

package obs

// EpochSample is the per-epoch telemetry tuple published at every
// closed epoch boundary of the bandwidth monitor — the fixed record
// the live-telemetry recorder buffers and the monitoring server
// streams. Cumulative fields (instructions, traffic, switches) count
// from the start of the run, so consumers can difference adjacent
// samples for per-epoch rates.
type EpochSample struct {
	// TS is the epoch boundary in simulated picoseconds.
	TS int64 `json:"ts_ps"`
	// Epoch is the 1-based index of the epoch that just closed.
	Epoch uint64 `json:"epoch"`
	// Utilization is the closed epoch's access-count utilization
	// (accesses / channel capacity), the quantity the mode threshold
	// compares against.
	Utilization float64 `json:"utilization"`
	// Mode is the writeback mode the closed epoch started in
	// ("counter" or "counterless").
	Mode string `json:"mode"`
	// SwitchedMid reports a mid-epoch counter->counterless fallback
	// inside the closed epoch.
	SwitchedMid bool `json:"switched_mid"`
	// ModeSwitches is the cumulative mid-epoch fallback count.
	ModeSwitches uint64 `json:"mode_switches"`
	// MemoHitRate is the RMCC memoization table's cumulative read-path
	// hit rate (0 when no lookups have happened yet).
	MemoHitRate float64 `json:"memo_hit_rate"`
	// MetaReads / MetaWrites count the scheme's cumulative
	// counter-block and integrity-tree overhead traffic on the DRAM
	// channel (zero for schemes without counter metadata).
	MetaReads  uint64 `json:"meta_reads"`
	MetaWrites uint64 `json:"meta_writes"`
	// QueueDepth is the simulator event-queue depth at the boundary —
	// the closest thing the model has to an MC request queue.
	QueueDepth int64 `json:"queue_depth"`
	// BusBacklogPS is the DRAM data-bus backlog (how far the bus is
	// scheduled ahead of sim time) at the boundary, in picoseconds.
	BusBacklogPS int64 `json:"bus_backlog_ps"`
	// ECCTrials is the cumulative ECC correction-trial distribution
	// (per-bin counts) when a functional engine shares the registry;
	// nil on pure timing runs, which model no ECC trials.
	ECCTrials []uint64 `json:"ecc_trials,omitempty"`
	// Instructions / IPC are the measurement window's progress so far
	// (zero during warmup).
	Instructions uint64  `json:"instructions"`
	IPC          float64 `json:"ipc"`
	// Measuring reports whether the boundary fell inside the
	// measurement window (false during warmup).
	Measuring bool `json:"measuring"`
}

// Publisher receives the per-epoch telemetry stream. Implementations
// must be cheap and must never block: PublishEpoch is called from
// inside the simulator's event loop (though only ~once per 100 µs of
// simulated time), and — like every obs hook — must not influence
// timing. The simulator skips all sample assembly when no publisher
// is attached, keeping the hot path allocation-free.
type Publisher interface {
	PublishEpoch(EpochSample)
}

// teePublisher fans one epoch stream out to several publishers.
type teePublisher []Publisher

func (t teePublisher) PublishEpoch(s EpochSample) {
	for _, p := range t {
		p.PublishEpoch(s)
	}
}

// Tee combines publishers into one that forwards every sample to each
// in order. Nil entries are dropped; Tee() of nothing (or only nils)
// returns nil, so callers can build chains unconditionally.
func Tee(ps ...Publisher) Publisher {
	var t teePublisher
	for _, p := range ps {
		if p != nil {
			t = append(t, p)
		}
	}
	switch len(t) {
	case 0:
		return nil
	case 1:
		return t[0]
	}
	return t
}

// PublisherFunc adapts a function to the Publisher interface.
type PublisherFunc func(EpochSample)

// PublishEpoch calls f.
func (f PublisherFunc) PublishEpoch(s EpochSample) { f(s) }

// Package obs is the simulator's unified observability layer: a
// metrics registry and a sim-time event tracer shared by every stage
// of the memory-controller pipeline.
//
// # Metrics
//
// A Registry holds named, optionally labeled series of three
// instrument kinds: Counter (monotonic uint64), Gauge (int64 level),
// and Histogram (fixed-bin int64 samples, binned exactly like
// stats.Histogram). Instruments increment through atomic operations,
// so hot-path emission is lock-free and safe under `go test -race`.
// Components own their instruments and register them into a shared
// registry (RegisterCounter et al.), keeping their legacy Stats()
// accessors as thin views over the same storage; ad-hoc series can be
// created in place with the get-or-create accessors (Counter, Gauge,
// Histogram).
//
// Snapshot() produces a deterministic, sorted copy of every series,
// which WritePrometheus renders in the Prometheus text exposition
// format and WriteJSON as a stable JSON document (re-readable with
// ReadSnapshot, e.g. by `clreport -compare`).
//
// # Tracing
//
// A Tracer is a bounded ring buffer of typed events stamped with
// simulator picosecond time: epoch mode switches, memoization-table
// hits/misses/evictions, ECC correction attempts, counter saturation,
// and periodic DRAM queue-depth samples. When the buffer fills, the
// oldest events are evicted (Dropped() counts them). A nil *Tracer is
// valid and drops every Emit, so call sites need no guards.
// WriteChromeTrace exports the buffer as Chrome trace_event JSON,
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// Observability never perturbs the simulation: instruments and events
// are write-only from the model's point of view, and the periodic
// sampler reads simulator state without advancing it.
package obs

package obs

import (
	"fmt"
	"sync"
	"time"
)

// This file is the latency-attribution half of the metrics layer: a
// pooled per-operation span that decomposes an operation's wall-clock
// latency into a fixed set of pipeline stages, each recorded into its
// own Histogram. The design constraints come from the mcpool hot
// path:
//
//   - off by default: a nil *Attributor hands out nil *Spans, and
//     every Span method is nil-safe, so disabled attribution costs
//     one nil check per call site;
//   - zero-alloc in steady state: spans are recycled through a
//     sync.Pool, and Mark/Finish touch only atomic histogram bins;
//   - exact decomposition: Finish records last-mark minus start, so
//     the per-stage durations sum to the recorded total to the
//     nanosecond, and every finished span adds exactly one sample to
//     every stage histogram — per-stage counts always equal the
//     end-to-end count (the invariant the mcpool race test asserts).

// DefaultLatencyEdges is the nanosecond bin layout attribution
// histograms use unless told otherwise: 200ns to 50ms, roughly
// logarithmic — wide enough for an in-process engine call and a
// saturated queue alike.
var DefaultLatencyEdges = []int64{
	200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000,
	100_000, 200_000, 500_000, 1_000_000, 2_000_000, 5_000_000,
	10_000_000, 50_000_000,
}

// Attributor decomposes per-operation latency into named stages. Each
// stage owns one Histogram; a separate total histogram records the
// end-to-end latency. A nil *Attributor is a valid, disabled
// attributor.
type Attributor struct {
	stages []string
	hists  []*Histogram
	total  *Histogram
	pool   sync.Pool
}

// NewAttributor builds an attributor with the given stage names and
// histogram bin edges (DefaultLatencyEdges when none are given).
func NewAttributor(stages []string, edges ...int64) (*Attributor, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("obs: attributor needs at least one stage")
	}
	if len(edges) == 0 {
		edges = DefaultLatencyEdges
	}
	a := &Attributor{
		stages: append([]string(nil), stages...),
		hists:  make([]*Histogram, len(stages)),
	}
	for i := range stages {
		h, err := NewHistogram(edges...)
		if err != nil {
			return nil, err
		}
		a.hists[i] = h
	}
	total, err := NewHistogram(edges...)
	if err != nil {
		return nil, err
	}
	a.total = total
	a.pool.New = func() any { return new(Span) }
	return a, nil
}

// Stages returns the stage names, in mark order.
func (a *Attributor) Stages() []string {
	if a == nil {
		return nil
	}
	return append([]string(nil), a.stages...)
}

// StageHist returns stage i's histogram (nil when out of range or the
// attributor is disabled).
func (a *Attributor) StageHist(i int) *Histogram {
	if a == nil || i < 0 || i >= len(a.hists) {
		return nil
	}
	return a.hists[i]
}

// TotalHist returns the end-to-end latency histogram.
func (a *Attributor) TotalHist() *Histogram {
	if a == nil {
		return nil
	}
	return a.total
}

// Register exposes the attributor through a registry: one stageName
// series per stage (stage="<name>"-labelled) plus one totalName series
// labelled stage="total". Distinct metric names keep the per-stage
// and end-to-end distributions from double-counting in Prometheus
// sums. No-op on a nil attributor.
func (a *Attributor) Register(reg *Registry, stageName, totalName string, labels ...Label) {
	if a == nil {
		return
	}
	for i, st := range a.stages {
		ls := append(append([]Label(nil), labels...), L("stage", st))
		reg.RegisterHistogram(stageName, a.hists[i], ls...)
	}
	ls := append(append([]Label(nil), labels...), L("stage", "total"))
	reg.RegisterHistogram(totalName, a.total, ls...)
}

// Span tracks one operation through the attributor's stages. Obtain
// one with Start, call Mark once per stage in order, then Finish. A
// nil *Span no-ops everywhere.
type Span struct {
	a     *Attributor
	start time.Time
	last  time.Time
}

// Start begins a span now. Returns nil — a disabled span — when the
// attributor is nil.
func (a *Attributor) Start() *Span {
	if a == nil {
		return nil
	}
	s := a.pool.Get().(*Span)
	s.a = a
	s.start = time.Now()
	s.last = s.start
	return s
}

// Mark records the time since the previous mark (or Start) into stage
// i's histogram.
func (s *Span) Mark(i int) {
	if s == nil {
		return
	}
	now := time.Now()
	s.a.hists[i].Add(now.Sub(s.last).Nanoseconds())
	s.last = now
}

// Finish records the end-to-end latency — the span of the marks, so
// the total always equals the sum of the stage durations exactly —
// and recycles the span. The span must not be used after Finish.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	a := s.a
	a.total.Add(s.last.Sub(s.start).Nanoseconds())
	s.a = nil
	a.pool.Put(s)
}

// Discard recycles the span without recording anything — for
// operations refused before they entered the pipeline (e.g. a
// TrySubmit bounced by a full queue). The span must not be used after
// Discard.
func (s *Span) Discard() {
	if s == nil {
		return
	}
	a := s.a
	s.a = nil
	a.pool.Put(s)
}

// StageSummary is one stage's latency distribution reduced to the
// numbers a breakdown table shows. Percentiles are conservative
// upper-bin-edge readings (see Histogram.Quantile).
type StageSummary struct {
	Stage  string `json:"stage"`
	Count  uint64 `json:"count"`
	MeanNs int64  `json:"mean_ns"`
	P50Ns  int64  `json:"p50_ns"`
	P95Ns  int64  `json:"p95_ns"`
	P99Ns  int64  `json:"p99_ns"`
}

// Summary reduces the attributor to one StageSummary per stage plus a
// final "total" row. Nil (disabled) attributors summarize to nil.
func (a *Attributor) Summary() []StageSummary {
	if a == nil {
		return nil
	}
	return SummarizeAttributors([]*Attributor{a})
}

// SummarizeAttributors merges several same-shaped attributors (e.g.
// one per mcpool shard) into one summary: per stage, the bins are
// summed across attributors before the percentiles are read. All
// attributors must share stage names and edges; nil entries are
// skipped.
func SummarizeAttributors(as []*Attributor) []StageSummary {
	var ref *Attributor
	for _, a := range as {
		if a != nil {
			ref = a
			break
		}
	}
	if ref == nil {
		return nil
	}
	out := make([]StageSummary, 0, len(ref.stages)+1)
	for i, st := range ref.stages {
		out = append(out, mergeStage(st, as, func(a *Attributor) *Histogram { return a.hists[i] }))
	}
	out = append(out, mergeStage("total", as, func(a *Attributor) *Histogram { return a.total }))
	return out
}

// mergeStage sums one stage's histograms across attributors and
// reduces them to a StageSummary.
func mergeStage(name string, as []*Attributor, pick func(*Attributor) *Histogram) StageSummary {
	var edges []int64
	var counts []uint64
	var sum int64
	var total uint64
	for _, a := range as {
		if a == nil {
			continue
		}
		h := pick(a)
		if edges == nil {
			edges = h.Edges()
			counts = make([]uint64, len(edges)+1)
		}
		for i, c := range h.Bins() {
			counts[i] += c
		}
		sum += h.Sum()
		total += h.Total()
	}
	s := StageSummary{Stage: name, Count: total}
	if total > 0 {
		s.MeanNs = sum / int64(total)
		s.P50Ns = QuantileFromBins(edges, counts, 0.50)
		s.P95Ns = QuantileFromBins(edges, counts, 0.95)
		s.P99Ns = QuantileFromBins(edges, counts, 0.99)
	}
	return s
}

// QuantileFromBins reads quantile q out of a fixed-bin distribution:
// the upper edge of the bin containing the q-th sample — a
// conservative "p50 ≤ X" bound, which is all a fixed-bin histogram can
// honestly claim. Samples in the overflow bin report the last edge.
// Returns 0 when the distribution is empty.
func QuantileFromBins(edges []int64, counts []uint64, q float64) int64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(edges) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(total))
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum > target {
			if i < len(edges) {
				return edges[i]
			}
			return edges[len(edges)-1] // overflow bin
		}
	}
	return edges[len(edges)-1]
}

// Quantile is QuantileFromBins over the histogram's own bins.
func (h *Histogram) Quantile(q float64) int64 {
	return QuantileFromBins(h.edges, h.Bins(), q)
}

// Quantile reads a quantile from a snapshotted histogram series (0
// for non-histogram series).
func (s Series) Quantile(q float64) int64 {
	if s.Kind != KindHistogram {
		return 0
	}
	return QuantileFromBins(s.Edges, s.Counts, q)
}

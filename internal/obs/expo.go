package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// promLabels renders a label set (plus an optional extra pair) in
// Prometheus {k="v",...} syntax.
func promLabels(labels map[string]string, extraKey, extraVal string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf(`%s="%s"`, k, escapeLabel(labels[k])))
	}
	if extraKey != "" {
		parts = append(parts, fmt.Sprintf(`%s="%s"`, extraKey, escapeLabel(extraVal)))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// formatValue renders a float that is almost always an integer count
// without a spurious fractional part.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format (version 0.0.4). Histograms emit cumulative
// _bucket series with le bin edges (in the histogram's native unit,
// picoseconds for latency series), plus _sum and _count.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	typed := make(map[string]bool)
	for _, se := range s.Series {
		if !typed[se.Name] {
			typed[se.Name] = true
			fmt.Fprintf(bw, "# TYPE %s %s\n", se.Name, se.Kind)
		}
		switch se.Kind {
		case KindHistogram:
			var cum uint64
			for i, c := range se.Counts {
				cum += c
				le := "+Inf"
				if i < len(se.Edges) {
					le = strconv.FormatInt(se.Edges[i], 10)
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", se.Name, promLabels(se.Labels, "le", le), cum)
			}
			fmt.Fprintf(bw, "%s_sum%s %d\n", se.Name, promLabels(se.Labels, "", ""), se.Sum)
			fmt.Fprintf(bw, "%s_count%s %d\n", se.Name, promLabels(se.Labels, "", ""), uint64(se.Value))
		default:
			fmt.Fprintf(bw, "%s%s %s\n", se.Name, promLabels(se.Labels, "", ""), formatValue(se.Value))
		}
	}
	return bw.Flush()
}

// WriteJSON renders the snapshot as an indented JSON document that
// ReadSnapshot can load back (the `clreport -compare` interchange
// format).
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot parses a snapshot previously written with WriteJSON.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("obs: parsing snapshot: %w", err)
	}
	return s, nil
}

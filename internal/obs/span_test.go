package obs

import (
	"sync"
	"testing"
)

func TestAttributorStageAccounting(t *testing.T) {
	a, err := NewAttributor([]string{"queue", "service"})
	if err != nil {
		t.Fatal(err)
	}
	const ops = 100
	for i := 0; i < ops; i++ {
		sp := a.Start()
		sp.Mark(0)
		sp.Mark(1)
		sp.Finish()
	}
	for i, st := range a.Stages() {
		if got := a.StageHist(i).Total(); got != ops {
			t.Errorf("stage %s: %d samples, want %d", st, got, ops)
		}
	}
	if got := a.TotalHist().Total(); got != ops {
		t.Errorf("total: %d samples, want %d", got, ops)
	}
	// The total must equal the sum of the stage durations exactly:
	// Finish records last-mark minus start, not a third clock reading.
	var stageSum int64
	for i := range a.Stages() {
		stageSum += a.StageHist(i).Sum()
	}
	if total := a.TotalHist().Sum(); total != stageSum {
		t.Errorf("total ns %d != stage-sum ns %d", total, stageSum)
	}
}

func TestAttributorNilSafe(t *testing.T) {
	var a *Attributor
	sp := a.Start()
	if sp != nil {
		t.Fatal("nil attributor handed out a live span")
	}
	sp.Mark(0) // must not panic
	sp.Finish()
	if a.Summary() != nil {
		t.Error("nil attributor produced a summary")
	}
	if a.Stages() != nil || a.StageHist(0) != nil || a.TotalHist() != nil {
		t.Error("nil attributor exposed instruments")
	}
}

func TestAttributorSteadyStateAllocs(t *testing.T) {
	a, err := NewAttributor([]string{"queue", "service"})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pool.
	for i := 0; i < 100; i++ {
		sp := a.Start()
		sp.Mark(0)
		sp.Mark(1)
		sp.Finish()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		sp := a.Start()
		sp.Mark(0)
		sp.Mark(1)
		sp.Finish()
	})
	if allocs > 0 {
		t.Errorf("steady-state span cycle allocates %.1f objects/op, want 0", allocs)
	}
}

func TestAttributorRegister(t *testing.T) {
	a, err := NewAttributor([]string{"queue", "service"})
	if err != nil {
		t.Fatal(err)
	}
	sp := a.Start()
	sp.Mark(0)
	sp.Mark(1)
	sp.Finish()
	reg := NewRegistry()
	a.Register(reg, "stage_latency_ns", "op_latency_ns", L("shard", "3"))
	snap := reg.Snapshot()
	for _, st := range []string{"queue", "service"} {
		se, ok := snap.Get("stage_latency_ns", L("stage", st), L("shard", "3"))
		if !ok {
			t.Fatalf("stage %q not registered", st)
		}
		if se.Value != 1 {
			t.Errorf("stage %q count %v, want 1", st, se.Value)
		}
	}
	se, ok := snap.Get("op_latency_ns", L("stage", "total"), L("shard", "3"))
	if !ok || se.Value != 1 {
		t.Fatalf("total series missing or wrong: %+v ok=%v", se, ok)
	}
	if q := se.Quantile(0.5); q <= 0 {
		t.Errorf("series quantile %d, want > 0", q)
	}
}

func TestSummarizeAttributors(t *testing.T) {
	mk := func(n int) *Attributor {
		a, err := NewAttributor([]string{"queue", "service"})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			sp := a.Start()
			sp.Mark(0)
			sp.Mark(1)
			sp.Finish()
		}
		return a
	}
	sum := SummarizeAttributors([]*Attributor{mk(3), nil, mk(5)})
	if len(sum) != 3 {
		t.Fatalf("got %d rows, want 3 (2 stages + total)", len(sum))
	}
	for _, row := range sum {
		if row.Count != 8 {
			t.Errorf("row %s count %d, want 8", row.Stage, row.Count)
		}
	}
	if sum[len(sum)-1].Stage != "total" {
		t.Errorf("last row %q, want total", sum[len(sum)-1].Stage)
	}
	if SummarizeAttributors([]*Attributor{nil, nil}) != nil {
		t.Error("all-nil summarize should be nil")
	}
}

func TestAttributorConcurrent(t *testing.T) {
	a, err := NewAttributor([]string{"queue", "service"})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := a.Start()
				sp.Mark(0)
				sp.Mark(1)
				sp.Finish()
			}
		}()
	}
	wg.Wait()
	want := uint64(goroutines * per)
	if got := a.TotalHist().Total(); got != want {
		t.Errorf("total count %d, want %d", got, want)
	}
	for i := range a.Stages() {
		if got := a.StageHist(i).Total(); got != want {
			t.Errorf("stage %d count %d, want %d", i, got, want)
		}
	}
}

func TestQuantileFromBins(t *testing.T) {
	h, err := NewHistogram(10, 20, 30)
	if err != nil {
		t.Fatal(err)
	}
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	for _, v := range []int64{1, 5, 12, 15, 25, 35} {
		h.Add(v)
	}
	if got := h.Quantile(0); got != 10 {
		t.Errorf("p0 = %d, want 10", got)
	}
	if got := h.Quantile(0.5); got != 20 {
		t.Errorf("p50 = %d, want 20", got)
	}
	if got := h.Quantile(1); got != 30 {
		t.Errorf("p100 = %d, want 30 (overflow reports last edge)", got)
	}
}

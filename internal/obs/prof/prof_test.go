package prof

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// exactQuantile is the nearest-rank reference the P² estimates are
// graded against.
func exactQuantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// TestP2GoldenQuantiles feeds fixed-seed streams from three shapes of
// distribution through the P² estimator and requires the estimates to
// land within a relative tolerance of the exact quantiles. P² is an
// approximation; the tolerances bound how wrong the watermark policy's
// inputs can be, they do not assert exactness.
func TestP2GoldenQuantiles(t *testing.T) {
	dists := []struct {
		name string
		gen  func(r *rand.Rand) float64
		tol  map[float64]float64 // quantile → allowed relative error
	}{
		// Uniform: P² is near-exact here.
		{"uniform", func(r *rand.Rand) float64 { return 1000 + 9000*r.Float64() },
			map[float64]float64{0.50: 0.05, 0.90: 0.05, 0.99: 0.05}},
		// Exponential: latency-shaped right tail.
		{"exponential", func(r *rand.Rand) float64 { return 500 * r.ExpFloat64() },
			map[float64]float64{0.50: 0.10, 0.90: 0.10, 0.99: 0.15}},
		// Lognormal: heavy tail, the hardest case for 5 markers.
		{"lognormal", func(r *rand.Rand) float64 { return math.Exp(6 + 1.0*r.NormFloat64()) },
			map[float64]float64{0.50: 0.15, 0.90: 0.20, 0.99: 0.35}},
	}
	const n = 20000
	for _, d := range dists {
		for seed := int64(1); seed <= 3; seed++ {
			r := rand.New(rand.NewSource(seed))
			ests := map[float64]*p2{}
			for _, q := range []float64{0.50, 0.90, 0.99} {
				e := newP2(q)
				ests[q] = &e
			}
			samples := make([]float64, 0, n)
			for i := 0; i < n; i++ {
				x := d.gen(r)
				samples = append(samples, x)
				for _, e := range ests {
					e.observe(x)
				}
			}
			sort.Float64s(samples)
			for q, e := range ests {
				want := exactQuantile(samples, q)
				got := e.value()
				relErr := math.Abs(got-want) / want
				if relErr > d.tol[q] {
					t.Errorf("%s seed %d p%.0f: P² %.1f vs exact %.1f (rel err %.3f > %.3f)",
						d.name, seed, q*100, got, want, relErr, d.tol[q])
				}
			}
		}
	}
}

// TestP2SmallStreams pins the pre-marker fallback: under five samples
// the estimator must return nearest-rank quantiles of what it has, and
// the n==5 transition must not lose samples.
func TestP2SmallStreams(t *testing.T) {
	e := newP2(0.50)
	if got := e.value(); got != 0 {
		t.Fatalf("empty estimator value = %v, want 0", got)
	}
	e.observe(10)
	if got := e.value(); got != 10 {
		t.Fatalf("single-sample p50 = %v, want 10", got)
	}
	for _, x := range []float64{30, 20, 50, 40} {
		e.observe(x)
	}
	// 5 samples {10,20,30,40,50}: markers initialized, median marker is 30.
	if got := e.value(); got != 30 {
		t.Fatalf("5-sample p50 = %v, want 30", got)
	}
}

// TestProbeSampling pins the 1-in-N contract: every observation is
// counted, only one in SampleEvery reads the clock and folds.
func TestProbeSampling(t *testing.T) {
	p := NewProbe(8)
	if got := p.SampleEvery(); got != 8 {
		t.Fatalf("SampleEvery = %d, want 8", got)
	}
	starts := 0
	for i := 0; i < 64; i++ {
		if t0 := p.Start(); t0 != 0 {
			starts++
			p.Done(t0)
		}
	}
	if starts != 8 {
		t.Fatalf("sampled %d of 64 observations, want 8", starts)
	}
	if got := p.Count(); got != 64 {
		t.Fatalf("Count = %d, want 64", got)
	}
	s := p.Snapshot()
	if s.Sampled != 8 || s.Dropped != 0 {
		t.Fatalf("snapshot sampled=%d dropped=%d, want 8, 0", s.Sampled, s.Dropped)
	}

	// Non-power-of-two periods round up.
	if got := NewProbe(5).SampleEvery(); got != 8 {
		t.Fatalf("NewProbe(5).SampleEvery = %d, want 8", got)
	}
	if got := NewProbe(1).SampleEvery(); got != 1 {
		t.Fatalf("NewProbe(1).SampleEvery = %d, want 1", got)
	}
}

// TestProbeNilSafe: a nil probe (and a nil profiler) must be usable as
// a disabled instrument from every call site.
func TestProbeNilSafe(t *testing.T) {
	var p *Probe
	if t0 := p.Start(); t0 != 0 {
		t.Fatalf("nil probe Start = %d, want 0", t0)
	}
	p.Done(0)
	p.DoneN(0, 4)
	p.Observe(7)
	if p.EWMA() != 0 || p.Count() != 0 || p.SampleEvery() != 0 {
		t.Fatal("nil probe accessors must read zero")
	}
	if s := p.Snapshot(); s != (ProbeSnapshot{}) {
		t.Fatalf("nil probe snapshot = %+v, want zero", s)
	}

	var pf *Profiler
	pf.Register(nil)
	if s := pf.Snapshot(); s.Backend != "" || s.PadBatch.Count != 0 {
		t.Fatal("nil profiler snapshot must be zero")
	}
}

// TestProbeEWMA checks convergence: a constant stream converges to the
// constant, and a step change moves the estimate toward the new level.
func TestProbeEWMA(t *testing.T) {
	p := NewProbe(1)
	for i := 0; i < 100; i++ {
		p.Observe(1000)
	}
	if got := p.EWMA(); got != 1000 {
		t.Fatalf("constant-stream EWMA = %v, want 1000", got)
	}
	for i := 0; i < 100; i++ {
		p.Observe(2000)
	}
	if got := p.EWMA(); got < 1990 || got > 2000 {
		t.Fatalf("post-step EWMA = %v, want ≈2000", got)
	}
}

// TestProbeConcurrent hammers one probe from many goroutines: no
// torn state, counts add up (folded + dropped == selected samples),
// and the estimates stay within the observed value range.
func TestProbeConcurrent(t *testing.T) {
	p := NewProbe(4)
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p.Observe(int64(100 + (w+i)%100))
			}
		}(w)
	}
	wg.Wait()
	s := p.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("Count = %d, want %d", s.Count, workers*per)
	}
	if s.Sampled+s.Dropped != s.Count/4 {
		t.Fatalf("sampled %d + dropped %d != selected %d", s.Sampled, s.Dropped, s.Count/4)
	}
	if s.EWMA < 100 || s.EWMA > 199 {
		t.Fatalf("EWMA %v outside observed range [100, 199]", s.EWMA)
	}
	if s.P50 < 100 || s.P99 > 199 {
		t.Fatalf("quantiles p50=%v p99=%v outside observed range", s.P50, s.P99)
	}
}

// TestProbeNoAllocs gates the hot-path contract: Start/Done and
// Observe must not allocate, sampled or not.
func TestProbeNoAllocs(t *testing.T) {
	p := NewProbe(4)
	if allocs := testing.AllocsPerRun(1000, func() {
		p.Done(p.Start())
	}); allocs != 0 {
		t.Errorf("Start/Done allocates %.1f per op, want 0", allocs)
	}
	var v int64
	if allocs := testing.AllocsPerRun(1000, func() {
		v++
		p.Observe(v)
	}); allocs != 0 {
		t.Errorf("Observe allocates %.1f per op, want 0", allocs)
	}
}

package prof

import (
	"fmt"
	"sync"
)

// HealthState is the three-level SLO verdict served by /health.
type HealthState int

const (
	// StateOK: every configured check is within its limit.
	StateOK HealthState = iota
	// StateDegraded: at least one check exceeds its limit but stays
	// under limit × FailFactor.
	StateDegraded
	// StateFailing: at least one check exceeds limit × FailFactor.
	StateFailing
)

func (s HealthState) String() string {
	switch s {
	case StateOK:
		return "OK"
	case StateDegraded:
		return "DEGRADED"
	case StateFailing:
		return "FAILING"
	default:
		return "UNKNOWN"
	}
}

// MarshalText lets the state render as its name in JSON payloads.
func (s HealthState) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a state name back, so /health and /api/slo
// payloads round-trip (clreport -health consumes them).
func (s *HealthState) UnmarshalText(b []byte) error {
	switch string(b) {
	case "OK":
		*s = StateOK
	case "DEGRADED":
		*s = StateDegraded
	case "FAILING":
		*s = StateFailing
	default:
		return fmt.Errorf("prof: unknown health state %q", b)
	}
	return nil
}

// SLOConfig declares the objectives /health evaluates. Zero-valued
// limits disable the corresponding check, so an empty config always
// reports OK.
type SLOConfig struct {
	// SubmitP99Ns: the submit→wait p99 latency objective (P² estimate
	// over the profiler's sampled stream).
	SubmitP99Ns int64
	// MaxDegradedFrac: ceiling on the fraction of writes demoted to
	// counterless in the current window.
	MaxDegradedFrac float64
	// MaxDropFrac: ceiling on the flight recorder / profiler drop
	// fraction in the current window.
	MaxDropFrac float64
	// FailFactor scales a limit into its FAILING threshold; a check at
	// value > limit×FailFactor is FAILING, > limit is DEGRADED.
	// Defaults to 2.
	FailFactor float64
}

// SLOInput is one evaluation's raw readings. Counter-like fields
// (Writes, DegradedWrites, Recorded, Dropped) are cumulative; the
// evaluator differences them against the previous evaluation so each
// verdict covers the window since the last one.
type SLOInput struct {
	SubmitP99Ns    int64
	Writes         uint64
	DegradedWrites uint64
	Recorded       uint64
	Dropped        uint64
}

// SLOCheck is one objective's verdict within a Health report.
type SLOCheck struct {
	Name  string      `json:"name"`
	State HealthState `json:"state"`
	Value float64     `json:"value"`
	Limit float64     `json:"limit"`
}

// Health is the aggregate verdict: worst state across checks.
type Health struct {
	State  HealthState `json:"state"`
	Checks []SLOCheck  `json:"checks"`
}

// Evaluator turns successive SLOInput readings into rolling Health
// verdicts. Safe for concurrent use; Eval and Last are cold-path.
type Evaluator struct {
	cfg SLOConfig

	mu   sync.Mutex
	prev SLOInput
	seen bool
	last Health
}

// NewEvaluator builds an evaluator for cfg, defaulting FailFactor
// to 2.
func NewEvaluator(cfg SLOConfig) *Evaluator {
	if cfg.FailFactor <= 0 {
		cfg.FailFactor = 2
	}
	return &Evaluator{cfg: cfg, last: Health{State: StateOK}}
}

// Config returns the objectives the evaluator enforces.
func (e *Evaluator) Config() SLOConfig { return e.cfg }

// grade maps a measured value against its limit (0 disables).
func (e *Evaluator) grade(name string, value, limit float64) SLOCheck {
	c := SLOCheck{Name: name, State: StateOK, Value: value, Limit: limit}
	if limit <= 0 {
		return c
	}
	switch {
	case value > limit*e.cfg.FailFactor:
		c.State = StateFailing
	case value > limit:
		c.State = StateDegraded
	}
	return c
}

// Eval grades in against the configured objectives over the window
// since the previous call and returns the aggregate verdict. The
// first call has no window, so fraction checks read 0.
func (e *Evaluator) Eval(in SLOInput) Health {
	if e == nil {
		return Health{State: StateOK}
	}
	e.mu.Lock()
	defer e.mu.Unlock()

	frac := func(part, whole uint64) float64 {
		if whole == 0 {
			return 0
		}
		return float64(part) / float64(whole)
	}
	var degFrac, dropFrac float64
	if e.seen {
		degFrac = frac(in.DegradedWrites-e.prev.DegradedWrites, in.Writes-e.prev.Writes)
		dropFrac = frac(in.Dropped-e.prev.Dropped,
			(in.Recorded-e.prev.Recorded)+(in.Dropped-e.prev.Dropped))
	}
	e.prev, e.seen = in, true

	h := Health{State: StateOK}
	h.Checks = append(h.Checks,
		e.grade("submit_p99_ns", float64(in.SubmitP99Ns), float64(e.cfg.SubmitP99Ns)),
		e.grade("degraded_write_frac", degFrac, e.cfg.MaxDegradedFrac),
		e.grade("recorder_drop_frac", dropFrac, e.cfg.MaxDropFrac),
	)
	for _, c := range h.Checks {
		if c.State > h.State {
			h.State = c.State
		}
	}
	e.last = h
	return h
}

// Last returns the most recent verdict (OK before any Eval).
func (e *Evaluator) Last() Health {
	if e == nil {
		return Health{State: StateOK}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.last
}

package prof

import "counterlight/internal/obs"

// Default sampling periods. Cipher-level probes fire once per block
// (tens of millions of times per second), so they sample sparsely;
// pool-level probes fire once per batch or request and can afford
// denser sampling.
const (
	DefaultPadSample    = 64 // pad batches per sample
	DefaultMACSample    = 64 // MAC computations per sample
	DefaultPoolSample   = 16 // batches / submits per sample
	DefaultSubmitSample = 32 // submit→wait round trips per sample
)

// Profiler is the fixed probe set the engine stack exposes: what the
// adaptive watermark policy and the SLO evaluator need to know about
// the hot path, and nothing more.
//
//   - PadBatch: per-pad latency of the batched AES pad path (cipher
//     layer, DoneN over batch size) — the measured replacement for the
//     static Rounds() cost model.
//   - MAC: MAC64 latency (counter-mode OTP finalize and counterless
//     keccak alike).
//   - Service: per-op shard service time (mcpool worker, batch
//     elapsed / ops).
//   - Occupancy: ops per drained batch (direct-valued).
//   - SubmitWait: submit→wait round-trip latency as the caller sees
//     it — the quantity the p99 SLO is written against.
//
// A nil *Profiler disables every probe (each field reads as nil).
type Profiler struct {
	Backend string // cipher backend label, "" if unknown

	PadBatch   *Probe
	MAC        *Probe
	Service    *Probe
	Occupancy  *Probe
	SubmitWait *Probe
}

// New builds a profiler with default sampling periods. backend labels
// the registry series (and the /api/profile payload) with the cipher
// backend whose latencies are being measured.
func New(backend string) *Profiler {
	return &Profiler{
		Backend:    backend,
		PadBatch:   NewProbe(DefaultPadSample),
		MAC:        NewProbe(DefaultMACSample),
		Service:    NewProbe(DefaultPoolSample),
		Occupancy:  NewProbe(DefaultPoolSample),
		SubmitWait: NewProbe(DefaultSubmitSample),
	}
}

// Register binds every probe's gauges into reg. Series are named
// prof_<probe>_{ns,ops} with a stat label per estimator and a backend
// label when known; extra labels apply to all series.
func (pf *Profiler) Register(reg *obs.Registry, labels ...obs.Label) {
	if pf == nil || reg == nil {
		return
	}
	ls := append([]obs.Label(nil), labels...)
	if pf.Backend != "" {
		ls = append(ls, obs.L("backend", pf.Backend))
	}
	pf.PadBatch.register(reg, "prof_pad_batch_ns", ls...)
	pf.MAC.register(reg, "prof_mac_ns", ls...)
	pf.Service.register(reg, "prof_service_ns", ls...)
	pf.Occupancy.register(reg, "prof_batch_occupancy_ops", ls...)
	pf.SubmitWait.register(reg, "prof_submit_wait_ns", ls...)
}

// Snapshot is the JSON shape served by /api/profile and embedded in
// clserve -metrics-json output.
type Snapshot struct {
	Backend    string        `json:"backend,omitempty"`
	PadBatch   ProbeSnapshot `json:"pad_batch_ns"`
	MAC        ProbeSnapshot `json:"mac_ns"`
	Service    ProbeSnapshot `json:"service_ns"`
	Occupancy  ProbeSnapshot `json:"batch_occupancy_ops"`
	SubmitWait ProbeSnapshot `json:"submit_wait_ns"`
}

// Snapshot captures every probe's current estimates (zero value on a
// nil profiler).
func (pf *Profiler) Snapshot() Snapshot {
	if pf == nil {
		return Snapshot{}
	}
	return Snapshot{
		Backend:    pf.Backend,
		PadBatch:   pf.PadBatch.Snapshot(),
		MAC:        pf.MAC.Snapshot(),
		Service:    pf.Service.Snapshot(),
		Occupancy:  pf.Occupancy.Snapshot(),
		SubmitWait: pf.SubmitWait.Snapshot(),
	}
}

// Package prof is the online hot-path profiler: lock-free, sampled
// streaming estimators of the latencies the engine's own control
// policies need to know about themselves.
//
// The design constraints are the same ones obs.Span answers for
// attribution, one level further down:
//
//   - never block: the estimator state behind a Probe is guarded by a
//     try-lock; a sampled observation that loses the race is counted
//     as dropped, not waited for. The hot path performs one atomic
//     add (the sampling decision) per call in the common case.
//   - zero steady-state allocations: all estimator state is inline,
//     timestamps are monotonic int64 nanoseconds, and nothing escapes.
//   - constant memory: an EWMA and P² quantile markers summarize an
//     unbounded stream in a handful of words, unlike a histogram no
//     bin layout has to be guessed in advance.
//
// A Probe combines a 1-in-N sampler, an EWMA, and three P² quantile
// estimators (p50/p90/p99), mirrored into registry gauges on every
// accepted sample so /metrics and -metrics-json see live values. A
// Profiler is the fixed set of probes the engine stack exposes:
// pad-batch latency, MAC64 latency, shard service time, batch
// occupancy, and submit→wait latency. All methods are nil-safe, so a
// disabled profiler costs one nil check per site.
package prof

import (
	"math"
	"sort"
	"sync/atomic"
	"time"

	"counterlight/internal/obs"
)

// procStart anchors the package's monotonic clock; Nanotime readings
// are nanoseconds since process start (comparable only to each other).
var procStart = time.Now()

// Nanotime returns a monotonic nanosecond reading, allocation-free.
func Nanotime() int64 { return int64(time.Since(procStart)) }

// p2 is one P² (Jain & Chlamtac 1985) streaming quantile estimator:
// five markers track the running quantile of an unbounded stream in
// constant space, adjusting marker heights with a piecewise-parabolic
// fit. Not safe for concurrent use — Probe serializes access.
type p2 struct {
	p    float64    // target quantile in (0, 1)
	n    int64      // observations so far
	q    [5]float64 // marker heights
	pos  [5]float64 // marker positions (1-based)
	init [5]float64 // first five observations, until n reaches 5
}

func newP2(p float64) p2 { return p2{p: p} }

// observe folds one sample into the estimator.
func (e *p2) observe(x float64) {
	if e.n < 5 {
		e.init[e.n] = x
		e.n++
		if e.n == 5 {
			s := e.init
			sort.Float64s(s[:])
			e.q = s
			e.pos = [5]float64{1, 2, 3, 4, 5}
		}
		return
	}
	// Find the cell k the sample falls into, extending the extremes.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	e.n++
	// Desired marker positions for the current count.
	w := [5]float64{0, e.p / 2, e.p, (1 + e.p) / 2, 1}
	for i := 1; i <= 3; i++ {
		desired := 1 + float64(e.n-1)*w[i]
		d := desired - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			qn := e.parabolic(i, s)
			if !(e.q[i-1] < qn && qn < e.q[i+1]) {
				qn = e.linear(i, s)
			}
			e.q[i] = qn
			e.pos[i] += s
		}
	}
}

// parabolic is the piecewise-parabolic (P²) height prediction for
// marker i moved by s.
func (e *p2) parabolic(i int, s float64) float64 {
	return e.q[i] + s/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+s)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-s)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback height prediction when the parabola would
// break marker monotonicity.
func (e *p2) linear(i int, s float64) float64 {
	j := i + int(s)
	return e.q[i] + s*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// value returns the current quantile estimate. Before five samples it
// falls back to the nearest-rank quantile of what it has.
func (e *p2) value() float64 {
	if e.n >= 5 {
		return e.q[2]
	}
	if e.n == 0 {
		return 0
	}
	s := e.init
	sort.Float64s(s[:e.n])
	i := int(e.p * float64(e.n))
	if i >= int(e.n) {
		i = int(e.n) - 1
	}
	return s[i]
}

// Probe is one sampled streaming estimator: it counts every
// observation, folds one in N into an EWMA and three P² quantile
// estimators (p50/p90/p99), and mirrors the estimates into registry
// gauges. All methods are nil-safe; a nil *Probe is a disabled probe.
type Probe struct {
	mask    uint64 // sample when count&mask == 0 (sampleEvery-1, pow2)
	alpha   float64
	n       atomic.Uint64 // total observations (including unsampled)
	sampled atomic.Uint64 // observations folded into the estimators
	dropped atomic.Uint64 // sampled observations lost to contention

	lock          atomic.Uint32 // try-lock over the estimator state below
	ewma          float64
	q50, q90, q99 p2

	ewmaBits atomic.Uint64 // EWMA mirror readable outside the lock

	// Registry mirrors, refreshed on every accepted sample.
	gEwma, gP50, gP90, gP99, gCount obs.Gauge
}

// defaultAlpha is the EWMA smoothing factor: each accepted sample
// contributes 10%, so the estimate spans roughly the last 20 samples.
const defaultAlpha = 0.1

// NewProbe builds a probe sampling one in sampleEvery observations
// (rounded up to a power of two; values <= 1 sample everything).
func NewProbe(sampleEvery int) *Probe {
	every := uint64(1)
	for int(every) < sampleEvery {
		every <<= 1
	}
	return &Probe{
		mask:  every - 1,
		alpha: defaultAlpha,
		q50:   newP2(0.50),
		q90:   newP2(0.90),
		q99:   newP2(0.99),
	}
}

// Start begins one sampled timing: it counts the observation and
// returns a nonzero monotonic timestamp only when this observation
// was selected by the 1-in-N sampler (or 0 on a nil probe), so
// unsampled operations never read the clock.
func (p *Probe) Start() int64 {
	if p == nil {
		return 0
	}
	if p.n.Add(1)&p.mask != 0 {
		return 0
	}
	return Nanotime()
}

// Done completes a timing begun by Start; a zero start (unsampled or
// disabled) is a no-op.
func (p *Probe) Done(t0 int64) {
	if t0 == 0 {
		return
	}
	p.fold(float64(Nanotime() - t0))
}

// DoneN completes a timing that covered k items, observing the
// per-item latency (elapsed/k). Zero start or k <= 0 is a no-op.
func (p *Probe) DoneN(t0 int64, k int) {
	if t0 == 0 || k <= 0 {
		return
	}
	p.fold(float64(Nanotime()-t0) / float64(k))
}

// Observe counts one direct-valued observation (queue depth, batch
// occupancy, an externally measured duration), folding it into the
// estimators when the sampler selects it.
func (p *Probe) Observe(v int64) {
	if p == nil {
		return
	}
	if p.n.Add(1)&p.mask != 0 {
		return
	}
	p.fold(float64(v))
}

// fold updates the estimator state under the try-lock. Contended
// samples are dropped (and counted), never waited for.
func (p *Probe) fold(v float64) {
	if !p.lock.CompareAndSwap(0, 1) {
		p.dropped.Add(1)
		return
	}
	if p.sampled.Add(1) == 1 {
		p.ewma = v
	} else {
		p.ewma += p.alpha * (v - p.ewma)
	}
	p.q50.observe(v)
	p.q90.observe(v)
	p.q99.observe(v)
	p.ewmaBits.Store(math.Float64bits(p.ewma))
	p.gEwma.Set(int64(p.ewma))
	p.gP50.Set(int64(p.q50.value()))
	p.gP90.Set(int64(p.q90.value()))
	p.gP99.Set(int64(p.q99.value()))
	p.gCount.Set(int64(p.n.Load()))
	p.lock.Store(0)
}

// EWMA returns the exponentially weighted moving average of the
// sampled observations (0 before the first sample or on nil).
func (p *Probe) EWMA() float64 {
	if p == nil {
		return 0
	}
	return math.Float64frombits(p.ewmaBits.Load())
}

// Count returns the total number of observations (sampled or not).
func (p *Probe) Count() uint64 {
	if p == nil {
		return 0
	}
	return p.n.Load()
}

// SampleEvery reports the probe's sampling period.
func (p *Probe) SampleEvery() uint64 {
	if p == nil {
		return 0
	}
	return p.mask + 1
}

// ProbeSnapshot is one probe's state reduced to JSON-able numbers.
// Quantiles are P² estimates over the sampled stream, not exact.
type ProbeSnapshot struct {
	Count   uint64  `json:"count"`
	Sampled uint64  `json:"sampled"`
	Dropped uint64  `json:"dropped"`
	EWMA    float64 `json:"ewma"`
	P50     float64 `json:"p50"`
	P90     float64 `json:"p90"`
	P99     float64 `json:"p99"`
}

// Snapshot reads the probe's current estimates. It spins briefly for
// the estimator lock — writers hold it for nanoseconds — so it is a
// cold-path call, not a hot-path one.
func (p *Probe) Snapshot() ProbeSnapshot {
	if p == nil {
		return ProbeSnapshot{}
	}
	for !p.lock.CompareAndSwap(0, 1) {
		// Writers drop rather than wait, so the lock is always about
		// to be free; spinning here cannot deadlock.
	}
	s := ProbeSnapshot{
		Count:   p.n.Load(),
		Sampled: p.sampled.Load(),
		Dropped: p.dropped.Load(),
		EWMA:    p.ewma,
		P50:     p.q50.value(),
		P90:     p.q90.value(),
		P99:     p.q99.value(),
	}
	p.lock.Store(0)
	return s
}

// register binds the probe's gauge mirrors into a registry under name
// with stat=ewma|p50|p90|p99|count labels. Gauges refresh on sampled
// observations, so they lag the stream by at most one sampling period.
func (p *Probe) register(reg *obs.Registry, name string, labels ...obs.Label) {
	if p == nil {
		return
	}
	stat := func(s string, g *obs.Gauge) {
		ls := append(append([]obs.Label(nil), labels...), obs.L("stat", s))
		reg.RegisterGauge(name, g, ls...)
	}
	stat("ewma", &p.gEwma)
	stat("p50", &p.gP50)
	stat("p90", &p.gP90)
	stat("p99", &p.gP99)
	stat("count", &p.gCount)
}

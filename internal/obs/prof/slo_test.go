package prof

import "testing"

// TestSLOStateMachine walks the evaluator through the three states on
// each check and pins the worst-check-wins aggregation.
func TestSLOStateMachine(t *testing.T) {
	e := NewEvaluator(SLOConfig{
		SubmitP99Ns:     1_000_000, // 1ms
		MaxDegradedFrac: 0.10,
		MaxDropFrac:     0.01,
	})

	// First eval: within every limit; fraction checks have no window
	// yet and read 0.
	h := e.Eval(SLOInput{SubmitP99Ns: 500_000, Writes: 100, DegradedWrites: 50})
	if h.State != StateOK {
		t.Fatalf("first eval state = %v, want OK", h.State)
	}

	// Second eval: 20 degraded of 100 new writes = 0.20 > 0.10 limit
	// but ≤ 0.20 fail threshold → DEGRADED.
	h = e.Eval(SLOInput{SubmitP99Ns: 500_000, Writes: 200, DegradedWrites: 70})
	if h.State != StateDegraded {
		t.Fatalf("degraded-frac eval state = %v, want DEGRADED", h.State)
	}
	if got := h.Checks[1].Value; got != 0.20 {
		t.Fatalf("degraded frac = %v, want 0.20 (windowed, not cumulative)", got)
	}

	// Third eval: p99 at 3ms > 1ms×2 → FAILING dominates even though
	// the degraded fraction recovered.
	h = e.Eval(SLOInput{SubmitP99Ns: 3_000_000, Writes: 300, DegradedWrites: 70})
	if h.State != StateFailing {
		t.Fatalf("p99 eval state = %v, want FAILING", h.State)
	}
	if e.Last().State != StateFailing {
		t.Fatalf("Last() = %v, want FAILING", e.Last().State)
	}

	// Fourth eval: everything back in budget → OK again.
	h = e.Eval(SLOInput{SubmitP99Ns: 400_000, Writes: 400, DegradedWrites: 72})
	if h.State != StateOK {
		t.Fatalf("recovery eval state = %v, want OK", h.State)
	}
}

// TestSLOZeroConfig: unset limits disable their checks, so an empty
// config is always OK no matter the readings.
func TestSLOZeroConfig(t *testing.T) {
	e := NewEvaluator(SLOConfig{})
	e.Eval(SLOInput{})
	h := e.Eval(SLOInput{SubmitP99Ns: 1 << 40, Writes: 10, DegradedWrites: 10, Recorded: 1, Dropped: 100})
	if h.State != StateOK {
		t.Fatalf("zero-config state = %v, want OK", h.State)
	}
	for _, c := range h.Checks {
		if c.State != StateOK {
			t.Fatalf("check %s = %v, want OK with limit unset", c.Name, c.State)
		}
	}
}

// TestSLODropFraction pins the recorder-drop check's window math.
func TestSLODropFraction(t *testing.T) {
	e := NewEvaluator(SLOConfig{MaxDropFrac: 0.10, FailFactor: 3})
	e.Eval(SLOInput{Recorded: 100, Dropped: 0})
	// Window: 80 recorded, 20 dropped → 0.20 > 0.10, ≤ 0.30 → DEGRADED.
	h := e.Eval(SLOInput{Recorded: 180, Dropped: 20})
	if h.State != StateDegraded {
		t.Fatalf("drop eval state = %v, want DEGRADED", h.State)
	}
	if got := h.Checks[2].Value; got != 0.20 {
		t.Fatalf("drop frac = %v, want 0.20", got)
	}
	// Window: 10 recorded, 90 dropped → 0.90 > 0.30 → FAILING.
	h = e.Eval(SLOInput{Recorded: 190, Dropped: 110})
	if h.State != StateFailing {
		t.Fatalf("drop eval state = %v, want FAILING", h.State)
	}
}

// TestHealthStateText pins the wire names /health clients parse.
func TestHealthStateText(t *testing.T) {
	for st, want := range map[HealthState]string{
		StateOK: "OK", StateDegraded: "DEGRADED", StateFailing: "FAILING",
	} {
		if st.String() != want {
			t.Fatalf("state %d String = %q, want %q", st, st.String(), want)
		}
		b, err := st.MarshalText()
		if err != nil || string(b) != want {
			t.Fatalf("state %d MarshalText = %q, %v", st, b, err)
		}
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestTracerRingOverflowEvictsOldest(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Emit(int64(i)*1000, PhaseInstant, CatMemo, "hit", A("i", int64(i)))
	}
	if tr.Len() != 4 {
		t.Errorf("len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", tr.Dropped())
	}
	evs := tr.Events()
	if evs[0].TS != 2000 || evs[len(evs)-1].TS != 5000 {
		t.Errorf("ring kept wrong window: first=%d last=%d", evs[0].TS, evs[len(evs)-1].TS)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Errorf("events out of order at %d: %v", i, evs)
		}
	}
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	tr.Emit(1, PhaseInstant, CatEpoch, "mode_switch") // must not panic
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Error("nil tracer reported state")
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Error("nil tracer export should error")
	}
}

func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer(16)
	tr.Emit(2_000_000, PhaseInstant, CatEpoch, "mode_switch", A("mode", 1))
	tr.Emit(3_000_000, PhaseCounter, CatDRAM, "bus_backlog_ps", A("value", 12500))

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	// The file must be valid JSON with the trace_event object shape.
	var doc struct {
		TraceEvents []struct {
			Name string           `json:"name"`
			Cat  string           `json:"cat"`
			Ph   string           `json:"ph"`
			TS   float64          `json:"ts"`
			PID  int              `json:"pid"`
			S    string           `json:"s"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	e0, e1 := doc.TraceEvents[0], doc.TraceEvents[1]
	if e0.Ph != "i" || e0.S != "g" || e0.TS != 2.0 || e0.Args["mode"] != 1 {
		t.Errorf("instant event mangled: %+v", e0)
	}
	if e1.Ph != "C" || e1.Name != "bus_backlog_ps" || e1.Args["value"] != 12500 {
		t.Errorf("counter event mangled: %+v", e1)
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				tr.Emit(int64(i), PhaseInstant, CatMemo, "hit")
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != 64 {
		t.Errorf("len = %d, want full ring of 64", tr.Len())
	}
	if tr.Dropped() != 4*1000-64 {
		t.Errorf("dropped = %d, want %d", tr.Dropped(), 4*1000-64)
	}
}

package obs

import (
	"bytes"
	"strings"
	"testing"
)

func buildTestRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	r.Counter("dram_reads_total", L("scheme", "counterlight")).Add(42)
	r.Gauge("queue_depth").Set(7)
	h, err := r.Histogram("counter_late_ps", []int64{0, 5000})
	if err != nil {
		t.Fatal(err)
	}
	h.Add(-100)
	h.Add(2000)
	h.Add(2000)
	h.Add(9000)
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	r := buildTestRegistry(t)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE counter_late_ps histogram",
		`counter_late_ps_bucket{le="0"} 1`,
		`counter_late_ps_bucket{le="5000"} 3`,
		`counter_late_ps_bucket{le="+Inf"} 4`,
		"counter_late_ps_sum 12900",
		"counter_late_ps_count 4",
		"# TYPE dram_reads_total counter",
		`dram_reads_total{scheme="counterlight"} 42`,
		"# TYPE queue_depth gauge",
		"queue_depth 7",
		"",
	}, "\n")
	if buf.String() != want {
		t.Errorf("prometheus exposition:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := buildTestRegistry(t)
	snap := r.Snapshot()
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Series) != len(snap.Series) {
		t.Fatalf("round trip lost series: %d -> %d", len(snap.Series), len(back.Series))
	}
	if v := back.Value("dram_reads_total", L("scheme", "counterlight")); v != 42 {
		t.Errorf("counter after round trip = %v, want 42", v)
	}
	hs, ok := back.Get("counter_late_ps")
	if !ok {
		t.Fatal("histogram series missing after round trip")
	}
	if hs.Kind != KindHistogram || len(hs.Counts) != 3 || hs.Counts[1] != 2 || hs.Sum != 12900 {
		t.Errorf("histogram series mangled: %+v", hs)
	}
}

func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", L("path", `a"b\c`+"\n")).Inc()
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `path="a\"b\\c\n"`) {
		t.Errorf("label not escaped: %s", buf.String())
	}
}

package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value dimension of a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing event count with atomic
// increments. The zero value is ready to use. A Counter must not be
// copied after first use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Reset zeroes the counter (per-measurement-window accounting; the
// simulator's windows reset, unlike long-lived Prometheus counters).
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is an instantaneous level (queue depth, backlog) with atomic
// updates. The zero value is ready to use. A Gauge must not be copied
// after first use.
type Gauge struct {
	v atomic.Int64
}

// Set stores the current level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the level by delta.
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Reset zeroes the gauge.
func (g *Gauge) Reset() { g.v.Store(0) }

// Histogram is a fixed-bin histogram over int64 samples with atomic
// per-bin counts. Binning matches stats.Histogram exactly: bin i
// covers [edges[i-1], edges[i]); samples below the first edge land in
// bin 0 and samples at or above the last edge land in the overflow
// bin, so the two types are drop-in interchangeable for Fig. 8-style
// distributions.
type Histogram struct {
	edges  []int64
	counts []atomic.Uint64 // len(edges)+1, last is overflow
	total  atomic.Uint64
	sum    atomic.Int64
}

// NewHistogram builds a histogram with the given ascending bin edges.
func NewHistogram(edges ...int64) (*Histogram, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("obs: histogram needs at least one edge")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, fmt.Errorf("obs: histogram edges not ascending at %d", i)
		}
	}
	return &Histogram{
		edges:  append([]int64(nil), edges...),
		counts: make([]atomic.Uint64, len(edges)+1),
	}, nil
}

// Add records one sample.
func (h *Histogram) Add(v int64) {
	i := sort.Search(len(h.edges), func(i int) bool { return v < h.edges[i] })
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
}

// Edges returns a copy of the bin edges.
func (h *Histogram) Edges() []int64 { return append([]int64(nil), h.edges...) }

// Bins returns the per-bin counts: len(edges)+1 entries, the last
// being the overflow bin.
func (h *Histogram) Bins() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Total returns the number of samples recorded.
func (h *Histogram) Total() uint64 { return h.total.Load() }

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Reset zeroes every bin (per-measurement-window accounting).
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.sum.Store(0)
}

// Series kinds in snapshots and expositions.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// series is one registered (name, labels) -> instrument binding.
type series struct {
	name   string
	labels []Label // sorted by key
	key    string  // canonical name+labels identity
	kind   string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry is a collection of metric series. Registration takes a
// mutex; reads and writes of registered instruments are lock-free.
type Registry struct {
	mu     sync.Mutex
	byKey  map[string]*series
	sorted bool
	order  []*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*series)}
}

func canonLabels(labels []Label) []Label {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

func seriesKey(name string, labels []Label) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0xff)
		b.WriteString(l.Key)
		b.WriteByte(0xfe)
		b.WriteString(l.Value)
	}
	return b.String()
}

// add installs (or replaces) a series. Replacement semantics let a
// fresh run re-register its components over a stale run's series; use
// labels (e.g. scheme=...) to keep multiple runs side by side.
func (r *Registry) add(s *series) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byKey[s.key]; ok {
		*old = *s
		return old
	}
	r.byKey[s.key] = s
	r.order = append(r.order, s)
	r.sorted = false
	return s
}

// lookup returns the existing series for key, if any.
func (r *Registry) lookup(key string) (*series, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byKey[key]
	return s, ok
}

// RegisterCounter binds an existing Counter into the registry,
// replacing any series with the same name and labels.
func (r *Registry) RegisterCounter(name string, c *Counter, labels ...Label) {
	ls := canonLabels(labels)
	r.add(&series{name: name, labels: ls, key: seriesKey(name, ls), kind: KindCounter, c: c})
}

// RegisterGauge binds an existing Gauge into the registry.
func (r *Registry) RegisterGauge(name string, g *Gauge, labels ...Label) {
	ls := canonLabels(labels)
	r.add(&series{name: name, labels: ls, key: seriesKey(name, ls), kind: KindGauge, g: g})
}

// RegisterHistogram binds an existing Histogram into the registry.
func (r *Registry) RegisterHistogram(name string, h *Histogram, labels ...Label) {
	ls := canonLabels(labels)
	r.add(&series{name: name, labels: ls, key: seriesKey(name, ls), kind: KindHistogram, h: h})
}

// Counter returns the counter registered under (name, labels),
// creating it if absent.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	ls := canonLabels(labels)
	key := seriesKey(name, ls)
	if s, ok := r.lookup(key); ok && s.kind == KindCounter {
		return s.c
	}
	c := &Counter{}
	r.add(&series{name: name, labels: ls, key: key, kind: KindCounter, c: c})
	return c
}

// Gauge returns the gauge registered under (name, labels), creating
// it if absent.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	ls := canonLabels(labels)
	key := seriesKey(name, ls)
	if s, ok := r.lookup(key); ok && s.kind == KindGauge {
		return s.g
	}
	g := &Gauge{}
	r.add(&series{name: name, labels: ls, key: key, kind: KindGauge, g: g})
	return g
}

// Histogram returns the histogram registered under (name, labels),
// creating it with the given edges if absent.
func (r *Registry) Histogram(name string, edges []int64, labels ...Label) (*Histogram, error) {
	ls := canonLabels(labels)
	key := seriesKey(name, ls)
	if s, ok := r.lookup(key); ok && s.kind == KindHistogram {
		return s.h, nil
	}
	h, err := NewHistogram(edges...)
	if err != nil {
		return nil, err
	}
	r.add(&series{name: name, labels: ls, key: key, kind: KindHistogram, h: h})
	return h, nil
}

// FindHistogram returns the histogram registered under (name, labels)
// if one exists, without creating it — a read-only probe for samplers
// that only report distributions someone else is recording.
func (r *Registry) FindHistogram(name string, labels ...Label) *Histogram {
	ls := canonLabels(labels)
	if s, ok := r.lookup(seriesKey(name, ls)); ok && s.kind == KindHistogram {
		return s.h
	}
	return nil
}

// Series is one metric series in a Snapshot. For counters and gauges
// Value holds the reading; for histograms Value is the sample total
// and Edges/Counts/Sum carry the distribution.
type Series struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	Edges  []int64           `json:"edges,omitempty"`
	Counts []uint64          `json:"counts,omitempty"`
	Sum    int64             `json:"sum,omitempty"`
}

// labelString renders labels as {k="v",...} for sorting and display.
func (s Series) labelString() string {
	if len(s.Labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%q", k, s.Labels[k])
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// ID is the series' stable identity: name plus sorted labels.
func (s Series) ID() string { return s.Name + s.labelString() }

// Snapshot is a point-in-time copy of every series in a registry,
// sorted by name then labels for deterministic output.
type Snapshot struct {
	Series []Series `json:"series"`
}

// Snapshot copies the current value of every registered series.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	if !r.sorted {
		sort.SliceStable(r.order, func(i, j int) bool { return r.order[i].key < r.order[j].key })
		r.sorted = true
	}
	order := append([]*series(nil), r.order...)
	r.mu.Unlock()

	snap := Snapshot{Series: make([]Series, 0, len(order))}
	for _, s := range order {
		out := Series{Name: s.name, Kind: s.kind}
		if len(s.labels) > 0 {
			out.Labels = make(map[string]string, len(s.labels))
			for _, l := range s.labels {
				out.Labels[l.Key] = l.Value
			}
		}
		switch s.kind {
		case KindCounter:
			out.Value = float64(s.c.Value())
		case KindGauge:
			out.Value = float64(s.g.Value())
		case KindHistogram:
			out.Edges = s.h.Edges()
			out.Counts = s.h.Bins()
			out.Sum = s.h.Sum()
			out.Value = float64(s.h.Total())
		}
		snap.Series = append(snap.Series, out)
	}
	return snap
}

// Get returns the first series whose name matches and whose labels
// include every given label (subset match). ok is false when absent.
func (s Snapshot) Get(name string, labels ...Label) (Series, bool) {
	for _, se := range s.Series {
		if se.Name != name {
			continue
		}
		match := true
		for _, l := range labels {
			if se.Labels[l.Key] != l.Value {
				match = false
				break
			}
		}
		if match {
			return se, true
		}
	}
	return Series{}, false
}

// Value is Get reduced to the numeric reading (0 when absent).
func (s Snapshot) Value(name string, labels ...Label) float64 {
	se, ok := s.Get(name, labels...)
	if !ok {
		return 0
	}
	return se.Value
}

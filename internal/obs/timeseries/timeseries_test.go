package timeseries

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"counterlight/internal/obs"
)

func sampleN(i int) obs.EpochSample {
	return obs.EpochSample{
		TS:           int64(i) * 100_000_000, // 100 µs epochs
		Epoch:        uint64(i),
		Utilization:  float64(i%10) / 10,
		Mode:         "counter",
		Instructions: uint64(i) * 1000,
		QueueDepth:   int64(i % 7),
	}
}

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(4)
	for i := 1; i <= 6; i++ {
		r.PublishEpoch(sampleN(i))
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := r.Evicted(); got != 2 {
		t.Errorf("Evicted = %d, want 2", got)
	}
	ss := r.Samples()
	for i, want := range []uint64{3, 4, 5, 6} {
		if ss[i].Epoch != want {
			t.Errorf("sample %d epoch = %d, want %d", i, ss[i].Epoch, want)
		}
	}
	last, ok := r.Last()
	if !ok || last.Epoch != 6 {
		t.Errorf("Last = %+v ok=%v, want epoch 6", last, ok)
	}

	reg := obs.NewRegistry()
	r.RegisterMetrics(reg)
	if got := reg.Snapshot().Value("timeseries_evictions_total"); got != 2 {
		t.Errorf("timeseries_evictions_total = %v, want 2", got)
	}
}

func TestRecorderConcurrentAccess(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.PublishEpoch(sampleN(i))
				_ = r.Samples()
				_, _ = r.Last()
			}
		}()
	}
	wg.Wait()
	if r.Len() != 64 {
		t.Errorf("Len = %d, want full ring of 64", r.Len())
	}
}

func TestDownsample(t *testing.T) {
	var in []obs.EpochSample
	for i := 1; i <= 10; i++ {
		s := sampleN(i)
		s.Utilization = float64(i)
		s.SwitchedMid = i == 4
		in = append(in, s)
	}
	out := Downsample(in, 5)
	if len(out) != 5 {
		t.Fatalf("len = %d, want 5", len(out))
	}
	// Window [3,4]: mean utilization 3.5, SwitchedMid from epoch 4,
	// cumulative fields from the last epoch in the window.
	if out[1].Utilization != 3.5 {
		t.Errorf("window util = %v, want 3.5", out[1].Utilization)
	}
	if !out[1].SwitchedMid {
		t.Error("window lost the SwitchedMid epoch")
	}
	if out[1].Epoch != 4 {
		t.Errorf("window epoch = %d, want 4", out[1].Epoch)
	}
	// No-op cases return the input unchanged.
	if got := Downsample(in, 0); len(got) != len(in) {
		t.Errorf("max=0 downsampled to %d", len(got))
	}
	if got := Downsample(in, 100); len(got) != len(in) {
		t.Errorf("max>len downsampled to %d", len(got))
	}
}

func TestCSVExportGolden(t *testing.T) {
	s := obs.EpochSample{
		TS: 100_000_000, Epoch: 1, Utilization: 0.75, Mode: "counterless",
		SwitchedMid: true, ModeSwitches: 2, MemoHitRate: 0.5,
		MetaReads: 10, MetaWrites: 3, QueueDepth: 5, BusBacklogPS: 1200,
		Instructions: 42, IPC: 1.25, Measuring: true,
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []obs.EpochSample{s}); err != nil {
		t.Fatal(err)
	}
	want := "ts_ps,epoch,utilization,mode,switched_mid,mode_switches,memo_hit_rate,meta_reads,meta_writes,queue_depth,bus_backlog_ps,instructions,ipc,measuring\n" +
		"100000000,1,0.750000,counterless,true,2,0.500000,10,3,5,1200,42,1.250000,true\n"
	if buf.String() != want {
		t.Errorf("CSV mismatch:\ngot:  %q\nwant: %q", buf.String(), want)
	}
}

func TestJSONExportRoundTrip(t *testing.T) {
	in := []obs.EpochSample{sampleN(1), sampleN(2)}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out []obs.EpochSample
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[1].Epoch != 2 || out[1].TS != in[1].TS {
		t.Errorf("round trip mismatch: %+v", out)
	}
	// Empty set must encode as [], not null.
	buf.Reset()
	if err := WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "[]" {
		t.Errorf("empty export = %q, want []", got)
	}
}

func TestWriteToFormats(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTo(&buf, nil, "bogus"); err == nil {
		t.Error("unknown format accepted")
	}
	if err := WriteTo(&buf, nil, "csv"); err != nil {
		t.Error(err)
	}
	if FormatForPath("epochs.csv") != "csv" || FormatForPath("epochs.json") != "json" {
		t.Error("FormatForPath mismatch")
	}
}

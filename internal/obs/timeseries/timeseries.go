// Package timeseries buffers the per-epoch telemetry stream
// (obs.EpochSample) in a bounded ring so long-running simulations can
// be inspected while they execute and exported afterwards. The
// recorder is the storage half of the live-telemetry subsystem; the
// HTTP half lives in internal/obs/serve.
//
// Like every obs component, recording is pure observation: attaching
// a Recorder to a run leaves its Result bit-identical.
package timeseries

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"

	"counterlight/internal/obs"
)

// DefaultCap is the ring capacity used when NewRecorder is given a
// non-positive one: 16k epochs = 1.6 s of simulated time at the
// 100 µs epoch length, far beyond any figure's window.
const DefaultCap = 1 << 14

// Recorder is a bounded ring buffer of per-epoch samples. When full,
// the oldest sample is evicted for each new one and the eviction
// counter advances. All methods are safe for concurrent use: the
// simulator appends from its event loop while HTTP handlers read.
type Recorder struct {
	mu      sync.Mutex
	buf     []obs.EpochSample
	start   int // index of oldest sample
	n       int
	evicted obs.Counter
}

// NewRecorder builds a recorder holding up to capacity samples
// (DefaultCap when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	return &Recorder{buf: make([]obs.EpochSample, capacity)}
}

// PublishEpoch appends one sample, evicting the oldest when full.
// Recorder implements obs.Publisher.
func (r *Recorder) PublishEpoch(s obs.EpochSample) {
	r.mu.Lock()
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = s
		r.n++
	} else {
		r.buf[r.start] = s
		r.start = (r.start + 1) % len(r.buf)
		r.evicted.Inc()
	}
	r.mu.Unlock()
}

// Len returns the number of buffered samples.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Evicted returns how many samples were evicted to make room.
func (r *Recorder) Evicted() uint64 { return r.evicted.Value() }

// Samples returns the buffered samples oldest-first.
func (r *Recorder) Samples() []obs.EpochSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]obs.EpochSample, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// Last returns the most recent sample (ok is false when empty).
func (r *Recorder) Last() (obs.EpochSample, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return obs.EpochSample{}, false
	}
	return r.buf[(r.start+r.n-1)%len(r.buf)], true
}

// RegisterMetrics exposes the recorder's eviction count through a
// registry (timeseries_evictions_total), so silent truncation of the
// telemetry buffer is itself observable.
func (r *Recorder) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.RegisterCounter("timeseries_evictions_total", &r.evicted, labels...)
}

// Downsample reduces samples to at most max points by windowed
// aggregation, for rendering long runs without shipping every epoch.
// Each window reports its last sample's cumulative fields and
// timestamp, the window-mean utilization and IPC, the window-max
// queue depth and bus backlog, and SwitchedMid when any epoch in the
// window fell back mid-epoch. max <= 0 or max >= len returns the
// input unchanged.
func Downsample(samples []obs.EpochSample, max int) []obs.EpochSample {
	if max <= 0 || len(samples) <= max {
		return samples
	}
	out := make([]obs.EpochSample, 0, max)
	// Ceil division keeps len(out) <= max.
	win := (len(samples) + max - 1) / max
	for i := 0; i < len(samples); i += win {
		end := i + win
		if end > len(samples) {
			end = len(samples)
		}
		w := samples[i:end]
		agg := w[len(w)-1] // cumulative fields come from the last epoch
		var util, ipc float64
		for _, s := range w {
			util += s.Utilization
			ipc += s.IPC
			if s.SwitchedMid {
				agg.SwitchedMid = true
			}
			if s.QueueDepth > agg.QueueDepth {
				agg.QueueDepth = s.QueueDepth
			}
			if s.BusBacklogPS > agg.BusBacklogPS {
				agg.BusBacklogPS = s.BusBacklogPS
			}
		}
		agg.Utilization = util / float64(len(w))
		agg.IPC = ipc / float64(len(w))
		out = append(out, agg)
	}
	return out
}

// csvHeader is the stable column order of the CSV export.
var csvHeader = []string{
	"ts_ps", "epoch", "utilization", "mode", "switched_mid",
	"mode_switches", "memo_hit_rate", "meta_reads", "meta_writes",
	"queue_depth", "bus_backlog_ps", "instructions", "ipc", "measuring",
}

// WriteCSV renders samples as CSV with a header row, one row per
// epoch, for piping into plotting tools.
func WriteCSV(w io.Writer, samples []obs.EpochSample) error {
	var b []byte
	for i, h := range csvHeader {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, h...)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return err
	}
	for _, s := range samples {
		row := fmt.Sprintf("%d,%d,%.6f,%s,%t,%d,%.6f,%d,%d,%d,%d,%d,%.6f,%t\n",
			s.TS, s.Epoch, s.Utilization, s.Mode, s.SwitchedMid,
			s.ModeSwitches, s.MemoHitRate, s.MetaReads, s.MetaWrites,
			s.QueueDepth, s.BusBacklogPS, s.Instructions, s.IPC, s.Measuring)
		if _, err := io.WriteString(w, row); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders samples as an indented JSON array.
func WriteJSON(w io.Writer, samples []obs.EpochSample) error {
	if samples == nil {
		samples = []obs.EpochSample{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(samples)
}

// WriteTo writes samples to w in the named format ("csv" or "json").
func WriteTo(w io.Writer, samples []obs.EpochSample, format string) error {
	switch format {
	case "csv":
		return WriteCSV(w, samples)
	case "json", "":
		return WriteJSON(w, samples)
	}
	return fmt.Errorf("timeseries: unknown format %q", format)
}

// FormatForPath picks the export format from a file extension
// (".csv" -> csv, anything else -> json).
func FormatForPath(path string) string {
	if strings.HasSuffix(path, ".csv") {
		return "csv"
	}
	return "json"
}

var _ obs.Publisher = (*Recorder)(nil)

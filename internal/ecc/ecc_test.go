package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"counterlight/internal/cipher"
	"counterlight/internal/crypto/keccak"
)

// Two toy MAC functions standing in for the two modes. They only need
// to be strong enough that a wrong trial has negligible match chance.
func macCounter(ct cipher.Block, meta uint64) uint64 {
	return keccak.MAC64([]byte("ctr"), ct[:], u64(meta))
}

func macCounterless(ct cipher.Block, meta uint64) uint64 {
	return keccak.MAC64([]byte("cls"), ct[:], u64(meta))
}

func u64(v uint64) []byte {
	b := make([]byte, 8)
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return b
}

func hyps(counterVal uint64) []Hypothesis {
	const counterlessFlag = 0xFFFFFFFF
	return []Hypothesis{
		{Name: "counter", Meta: counterVal, MAC: macCounter},
		{Name: "counterless", Meta: counterlessFlag, MAC: macCounterless},
	}
}

func randBlock(rng *rand.Rand) cipher.Block {
	var b cipher.Block
	rng.Read(b[:])
	return b
}

func TestChipsRoundTrip(t *testing.T) {
	f := func(b cipher.Block) bool {
		return ChipsToBlock(BlockToChips(b)) == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEncodeDecodeMeta(t *testing.T) {
	f := func(b cipher.Block, mac, meta uint64) bool {
		cw := Encode(b, mac, meta)
		return cw.DecodeMeta() == meta && cw.Block() == b && cw.MAC == mac
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestVerifyCleanBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	ct := randBlock(rng)
	const meta = 12345
	cw := Encode(ct, macCounter(ct, meta), meta)
	gotMeta, ok := Verify(cw, macCounter)
	if !ok || gotMeta != meta {
		t.Errorf("Verify clean block: ok=%v meta=%d", ok, gotMeta)
	}
}

func TestVerifyDetectsTamper(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ct := randBlock(rng)
	cw := Encode(ct, macCounter(ct, 7), 7)
	// Tamper with each chip in turn; Verify must fail for all.
	for chip := 0; chip < TotalChips; chip++ {
		bad := cw
		switch {
		case chip < DataChips:
			bad.Data[chip] ^= 0xDEAD
		case chip == MACChip:
			bad.MAC ^= 0xDEAD
		default:
			bad.Parity ^= 0xDEAD
		}
		if _, ok := Verify(bad, macCounter); ok {
			t.Errorf("Verify passed with chip %d corrupted", chip)
		}
	}
}

// corrupt flips deterministic bits in one chip of the codeword.
func corrupt(cw CodeWord, chip int, pattern uint64) CodeWord {
	switch {
	case chip < DataChips:
		cw.Data[chip] ^= pattern
	case chip == MACChip:
		cw.MAC ^= pattern
	default:
		cw.Parity ^= pattern
	}
	return cw
}

// Any single bad chip must be corrected, under both true modes, and
// the correction must identify the right chip, data, and metadata.
func TestCorrectSingleChipAllPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const counterVal = 987
	const counterlessFlag = 0xFFFFFFFF
	for _, mode := range []struct {
		name string
		meta uint64
		mac  MACFunc
		hyp  int
	}{
		{"counter", counterVal, macCounter, 0},
		{"counterless", counterlessFlag, macCounterless, 1},
	} {
		for chip := 0; chip < TotalChips; chip++ {
			ct := randBlock(rng)
			cw := Encode(ct, mode.mac(ct, mode.meta), mode.meta)
			bad := corrupt(cw, chip, 0xBADC0FFEE0DD+uint64(chip))
			res := Correct(bad, hyps(counterVal))
			if !res.OK {
				t.Fatalf("%s mode, chip %d: correction failed (DUE=%v, matches=%d)",
					mode.name, chip, res.DUE, len(res.Candidates))
			}
			if res.BadChip != chip {
				t.Errorf("%s mode, chip %d: identified chip %d", mode.name, chip, res.BadChip)
			}
			if res.Data != ct {
				t.Errorf("%s mode, chip %d: data not restored", mode.name, chip)
			}
			if res.Meta != mode.meta {
				t.Errorf("%s mode, chip %d: meta = %d, want %d", mode.name, chip, res.Meta, mode.meta)
			}
			if res.Hypothesis != mode.hyp {
				t.Errorf("%s mode, chip %d: hypothesis %d, want %d", mode.name, chip, res.Hypothesis, mode.hyp)
			}
		}
	}
}

// A clean block must come back as a single no-error match.
func TestCorrectCleanBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ct := randBlock(rng)
	cw := Encode(ct, macCounter(ct, 55), 55)
	res := Correct(cw, hyps(55))
	if !res.OK || res.BadChip != -1 || res.Data != ct {
		t.Errorf("clean block: OK=%v badChip=%d", res.OK, res.BadChip)
	}
}

// Two bad chips exceed chipkill's correction power: must be a DUE,
// never a silent miscorrection to the wrong data.
func TestCorrectDoubleChipIsDUE(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 20; trial++ {
		ct := randBlock(rng)
		cw := Encode(ct, macCounter(ct, 5), 5)
		c1 := rng.Intn(TotalChips)
		c2 := rng.Intn(TotalChips)
		for c2 == c1 {
			c2 = rng.Intn(TotalChips)
		}
		bad := corrupt(corrupt(cw, c1, rng.Uint64()|1), c2, rng.Uint64()|1)
		res := Correct(bad, hyps(5))
		if res.OK && res.Data != ct {
			t.Fatalf("trial %d: silent miscorrection (chips %d,%d)", trial, c1, c2)
		}
		if !res.DUE {
			// A two-chip error can only "succeed" by MAC collision
			// (probability 2^-64); treat success here as failure.
			t.Fatalf("trial %d: two-chip error not flagged DUE", trial)
		}
	}
}

// The dual-hypothesis machinery (Fig. 14): a block written in counter
// mode whose parity chip died must still be corrected even though the
// decoded metadata is garbage — the counter-block hypothesis supplies
// the right value.
func TestCorrectRecoversMetaFromHypothesis(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	ct := randBlock(rng)
	const counterVal = 424242
	cw := Encode(ct, macCounter(ct, counterVal), counterVal)
	bad := corrupt(cw, ParityChip, 0xFFFF0000FFFF)
	if m := bad.DecodeMeta(); m == counterVal {
		t.Fatal("test setup: metadata should decode wrong")
	}
	res := Correct(bad, hyps(counterVal))
	if !res.OK || res.Meta != counterVal || res.BadChip != ParityChip {
		t.Errorf("parity-chip recovery failed: %+v", res)
	}
}

// With only ONE hypothesis (plain Synergy), correction still works for
// blocks whose metadata matches the hypothesis.
func TestCorrectSingleHypothesis(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	ct := randBlock(rng)
	cw := Encode(ct, macCounter(ct, 0), 0)
	bad := corrupt(cw, 3, 0x1111)
	res := Correct(bad, []Hypothesis{{Name: "synergy", Meta: 0, MAC: macCounter}})
	if !res.OK || res.BadChip != 3 || res.Data != ct {
		t.Errorf("single-hypothesis correction failed: %+v", res)
	}
}

// Exhaustive single-bit errors in every bit position of every chip.
func TestCorrectEveryBitPosition(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	ct := randBlock(rng)
	const meta = 31337
	cw := Encode(ct, macCounter(ct, meta), meta)
	for chip := 0; chip < TotalChips; chip++ {
		for bit := 0; bit < 64; bit += 7 { // sample bits to keep runtime low
			bad := corrupt(cw, chip, 1<<bit)
			res := Correct(bad, hyps(meta))
			if !res.OK || res.Data != ct || res.Meta != meta {
				t.Fatalf("chip %d bit %d: not corrected", chip, bit)
			}
		}
	}
}

// Candidates must be exposed for ambiguous corrections so the entropy
// disambiguator can pick: force ambiguity by using a weak (constant)
// MAC function, which makes every trial match.
func TestAmbiguousCorrectionExposesCandidates(t *testing.T) {
	weak := func(ct cipher.Block, meta uint64) uint64 { return 0 }
	var ct cipher.Block
	cw := Encode(ct, 0, 7)
	res := Correct(cw, []Hypothesis{
		{Name: "a", Meta: 7, MAC: weak},
		{Name: "b", Meta: 9, MAC: weak},
	})
	if !res.DUE {
		t.Fatal("expected DUE from ambiguous trials")
	}
	if len(res.Candidates) < 2 {
		t.Errorf("want >=2 candidates, got %d", len(res.Candidates))
	}
}

// Property: encode/verify round trip for arbitrary data and metadata.
func TestQuickVerify(t *testing.T) {
	f := func(ct cipher.Block, meta uint32) bool {
		m := uint64(meta)
		cw := Encode(ct, macCounter(ct, m), m)
		got, ok := Verify(cw, macCounter)
		return ok && got == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkVerify(b *testing.B) {
	var ct cipher.Block
	cw := Encode(ct, macCounter(ct, 1), 1)
	for i := 0; i < b.N; i++ {
		Verify(cw, macCounter)
	}
}

func BenchmarkCorrectSingleChip(b *testing.B) {
	rng := rand.New(rand.NewSource(28))
	ct := randBlock(rng)
	cw := Encode(ct, macCounter(ct, 9), 9)
	bad := corrupt(cw, 4, 0xFF)
	h := hyps(9)
	for i := 0; i < b.N; i++ {
		Correct(bad, h)
	}
}

package ecc_test

import (
	"fmt"

	"counterlight/internal/cipher"
	"counterlight/internal/crypto/keccak"
	"counterlight/internal/ecc"
)

// A block's EncryptionMetadata (its counter value, or the counterless
// flag) travels inside the Synergy chipkill parity: encoding is one
// extra XOR at write time, decoding a 4-level XOR tree at read time,
// and a single dead chip is healed by trial-and-error correction.
func Example() {
	mac := func(ct cipher.Block, meta uint64) uint64 {
		var m [8]byte
		for i := range m {
			m[i] = byte(meta >> (8 * i))
		}
		return keccak.MAC64([]byte("key"), ct[:], m[:])
	}

	var ciphertext cipher.Block
	copy(ciphertext[:], []byte("encrypted payload"))
	const counter = 7

	cw := ecc.Encode(ciphertext, mac(ciphertext, counter), counter)
	meta, ok := ecc.Verify(cw, mac)
	fmt.Println("clean read:", ok, "meta =", meta)

	// Chip 3 dies.
	cw.Data[3] ^= 0xDEAD_BEEF
	_, ok = ecc.Verify(cw, mac)
	fmt.Println("after fault, fast path:", ok)

	res := ecc.Correct(cw, []ecc.Hypothesis{{Name: "counter", Meta: counter, MAC: mac}})
	fmt.Println("corrected:", res.OK, "bad chip =", res.BadChip, "meta =", res.Meta)
	// Output:
	// clean read: true meta = 7
	// after fault, fast path: false
	// corrected: true bad chip = 3 meta = 7
}

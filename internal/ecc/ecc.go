// Package ecc implements the Synergy chipkill-correct code (Saileshwar
// et al., HPCA'18) and Counter-light's extension of it (paper §IV-C,
// Figs. 3, 12, 14).
//
// A DDR5 rank has 8 data chips and 2 ECC chips; each 64-byte block
// therefore carries 16 bytes of ECC storage. Synergy spends 8 bytes on
// a MAC (which doubles as the error-detection code) and 8 bytes on a
// parity word Parity = D1 ⊕ … ⊕ D8 ⊕ MAC used for correction-by-trial:
// assume each chip in turn is faulty, reconstruct it from the parity,
// and accept the unique reconstruction whose MAC verifies.
//
// Counter-light additionally XORs the block's EncryptionMetadata (the
// 4-byte counter value, or the all-ones counterless flag) into the
// parity. On a read the metadata is decoded as
// Parity ⊕ D1 ⊕ … ⊕ D8 ⊕ MAC — a log2(9)-deep XOR tree — and verified
// through the MAC, which also takes the metadata as input. During
// error correction the metadata itself is suspect, so correction runs
// under two hypotheses (Fig. 14): the counter value read from the
// counter block, and the counterless flag.
package ecc

import (
	"encoding/binary"

	"counterlight/internal/cipher"
)

// Chips in a rank: 8 data + MAC + parity.
const (
	DataChips  = 8
	MACChip    = 8
	ParityChip = 9
	TotalChips = 10
)

// CodeWord is the full content of one memory block across all ten
// chips of the rank.
type CodeWord struct {
	Data   [DataChips]uint64 // D1..D8, chip i holds bytes 8i..8i+7 of the block
	MAC    uint64
	Parity uint64
}

// xorData folds the eight data words together.
func (cw *CodeWord) xorData() uint64 {
	var x uint64
	for _, d := range cw.Data {
		x ^= d
	}
	return x
}

// BlockToChips splits a 64-byte block into per-chip words.
func BlockToChips(b cipher.Block) [DataChips]uint64 {
	var d [DataChips]uint64
	for i := range d {
		d[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return d
}

// ChipsToBlock reassembles a 64-byte block from per-chip words.
func ChipsToBlock(d [DataChips]uint64) cipher.Block {
	var b cipher.Block
	for i := range d {
		binary.LittleEndian.PutUint64(b[8*i:], d[i])
	}
	return b
}

// Encode builds the codeword for a (ciphertext) block: the parity
// covers the data chips, the MAC chip, and — unlike plain Synergy —
// the EncryptionMetadata word (Fig. 12). meta is the 4-byte
// EncryptionMetadata zero-extended to 8 bytes; the upper 4 bytes are
// reserved for other ECC-encoded information (e.g. spatial-safety
// locks, §IV-C) and stay zero here.
func Encode(ct cipher.Block, mac uint64, meta uint64) CodeWord {
	cw := CodeWord{Data: BlockToChips(ct), MAC: mac}
	cw.Parity = meta ^ cw.xorData() ^ mac
	return cw
}

// DecodeMeta recovers the EncryptionMetadata from a (presumed
// error-free) codeword: Parity ⊕ D1 ⊕ … ⊕ D8 ⊕ MAC. In hardware this
// is a 4-level XOR tree; the paper charges it at well under a DRAM
// burst (§IV-D: the metadata is available 0.75 ns after the pad
// computation begins because parity arrives with the first half of the
// burst).
func (cw *CodeWord) DecodeMeta() uint64 {
	return cw.Parity ^ cw.xorData() ^ cw.MAC
}

// Block returns the data chips as a 64-byte block.
func (cw *CodeWord) Block() cipher.Block { return ChipsToBlock(cw.Data) }

// MACFunc recomputes the block's MAC for candidate data and metadata.
// The function is mode-specific: SHA-3 in counterless mode, OTP ⊕
// GF dot product in counter mode (Fig. 14's caption).
type MACFunc func(ct cipher.Block, meta uint64) uint64

// Hypothesis is one assumed EncryptionMetadata value with the MAC
// construction that the corresponding mode would have used.
type Hypothesis struct {
	Name string  // for diagnostics, e.g. "counter" or "counterless"
	Meta uint64  // assumed EncryptionMetadata value
	MAC  MACFunc // MAC recomputation under this mode
}

// Candidate is one trial whose recomputed MAC matched.
type Candidate struct {
	Data       cipher.Block // candidate corrected ciphertext
	Meta       uint64       // metadata under the candidate's hypothesis
	Hypothesis int          // index into the hypotheses slice
	BadChip    int          // 0..7 data, 8 MAC, 9 parity; -1 when block was clean
}

// Correction reports the outcome of trial-and-error correction.
type Correction struct {
	OK         bool        // exactly one trial matched
	DUE        bool        // zero or multiple matches: detected uncorrectable
	Candidate              // the winning candidate (valid when OK)
	Candidates []Candidate // every matching trial; >1 means ambiguity (see §IV-E)
	Trials     int         // correction trials run (the observability layer histograms this)
}

// Verify checks a codeword assuming no errors: decode the metadata,
// recompute the MAC, compare. It returns the decoded metadata and
// whether the MAC matched. This is the fault-free fast path of every
// LLC read miss (Fig. 13).
func Verify(cw CodeWord, mac MACFunc) (meta uint64, ok bool) {
	meta = cw.DecodeMeta()
	return meta, mac(cw.Block(), meta) == cw.MAC
}

// Correct runs Synergy's trial-and-error correction extended with
// multiple EncryptionMetadata hypotheses (Fig. 14). For each
// hypothesis it derives the original Synergy parity by cancelling the
// assumed metadata out of the fetched parity, then runs the ten
// trials: each data chip assumed bad, the MAC chip assumed bad, and
// the parity chip assumed bad. Exactly one matching trial overall
// corrects the block; zero or multiple matches is a DUE.
//
// Doubling the hypotheses doubles the number of trials, which is how
// the paper arrives at the 2^-60 vs 2^-61 DUE comparison (§IV-E).
func Correct(cw CodeWord, hyps []Hypothesis) Correction {
	var cands []Candidate
	trials := 0
	record := func(c Candidate) { cands = append(cands, c) }
	for hi, h := range hyps {
		origParity := cw.Parity ^ h.Meta // cancel metadata out of the parity

		// Trial: no chip bad / parity chip bad. Data and MAC are
		// consistent on their own; metadata equals the hypothesis only
		// if the parity decodes to it, otherwise the parity chip is
		// the faulty one.
		trials++
		if h.MAC(cw.Block(), h.Meta) == cw.MAC {
			bad := ParityChip
			if cw.DecodeMeta() == h.Meta {
				bad = -1 // clean block
			}
			record(Candidate{Data: cw.Block(), Meta: h.Meta, Hypothesis: hi, BadChip: bad})
		}

		// Trials: data chip i bad. Reconstruct D_i from the parity.
		xorAll := cw.xorData()
		for i := 0; i < DataChips; i++ {
			rebuilt := origParity ^ (xorAll ^ cw.Data[i]) ^ cw.MAC
			if rebuilt == cw.Data[i] {
				continue // identical to the no-error trial; don't double count
			}
			cand := cw.Data
			cand[i] = rebuilt
			blk := ChipsToBlock(cand)
			trials++
			if h.MAC(blk, h.Meta) == cw.MAC {
				record(Candidate{Data: blk, Meta: h.Meta, Hypothesis: hi, BadChip: i})
			}
		}

		// Trial: MAC chip bad. Reconstruct the MAC from the parity.
		rebuiltMAC := origParity ^ xorAll
		trials++
		if rebuiltMAC != cw.MAC && h.MAC(cw.Block(), h.Meta) == rebuiltMAC {
			record(Candidate{Data: cw.Block(), Meta: h.Meta, Hypothesis: hi, BadChip: MACChip})
		}
	}
	if len(cands) == 1 {
		return Correction{OK: true, Candidate: cands[0], Candidates: cands, Trials: trials}
	}
	return Correction{DUE: true, Candidates: cands, Trials: trials}
}

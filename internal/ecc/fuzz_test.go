package ecc

import (
	"encoding/binary"
	"testing"

	"counterlight/internal/cipher"
)

// fuzzWord reads the i-th 8-byte word of the fuzz input, zero-padded.
func fuzzWord(data []byte, i int) uint64 {
	var w [8]byte
	if 8*i < len(data) {
		copy(w[:], data[8*i:])
	}
	return binary.LittleEndian.Uint64(w[:])
}

// fuzzBlock expands fuzz input into a 64-byte block.
func fuzzBlock(data []byte) cipher.Block {
	var b cipher.Block
	copy(b[:], data)
	return b
}

// FuzzMetadataDecode pins the algebra that makes Counter-light free:
// the metadata is recoverable from the parity for ANY block/MAC/meta
// combination (Encode∘DecodeMeta is the identity), the codeword stays
// chipkill-consistent (parity equals meta ⊕ data ⊕ MAC), and every
// single-bit corruption anywhere in the codeword disturbs the decoded
// metadata by exactly that bit's column — which is what lets the MAC
// catch it.
func FuzzMetadataDecode(f *testing.F) {
	f.Add([]byte("counter-light"), uint64(7), uint64(0xFFFFFFFF))
	f.Add(make([]byte, 64), uint64(0), uint64(0))
	f.Fuzz(func(t *testing.T, data []byte, mac, meta uint64) {
		ct := fuzzBlock(data)
		cw := Encode(ct, mac, meta)
		if got := cw.DecodeMeta(); got != meta {
			t.Fatalf("DecodeMeta(Encode(meta=%#x)) = %#x", meta, got)
		}
		if cw.Block() != ct {
			t.Fatal("Encode does not store the ciphertext verbatim")
		}
		if cw.MAC != mac {
			t.Fatal("Encode does not store the MAC verbatim")
		}
		// Any single-bit flip on any chip shifts the decoded metadata
		// by exactly that bit: the XOR tree has no blind spots.
		bit := uint64(1) << (mac % 64)
		chip := int(meta % TotalChips)
		mut := cw
		switch {
		case chip < DataChips:
			mut.Data[chip] ^= bit
		case chip == MACChip:
			mut.MAC ^= bit
		default:
			mut.Parity ^= bit
		}
		if got := mut.DecodeMeta(); got != meta^bit {
			t.Fatalf("bit %#x on chip %d: DecodeMeta = %#x, want %#x", bit, chip, got, meta^bit)
		}
	})
}

// FuzzEccRecovery drives the two-hypothesis trial-and-error correction
// with arbitrary plaintext blocks, counters, modes, and fault sites:
//
//   - a clean codeword verifies on the fast path;
//   - any single-chip corruption (any nonzero pattern, any chip) is
//     corrected to the exact original data, metadata, and chip under
//     the stored mode's hypothesis;
//   - a two-chip corruption is never silently consumed: it must land
//     as a DUE or — with ≥2^63-probability arguments out of scope for
//     a fuzzer — as a correct reconstruction, never wrong data.
func FuzzEccRecovery(f *testing.F) {
	f.Add([]byte("some boring plaintext........"), uint64(3), uint64(1), byte(0), false)
	f.Add([]byte{}, uint64(0), uint64(1)<<63, byte(9), true)
	f.Fuzz(func(t *testing.T, data []byte, counterVal, pattern uint64, chipSel byte, counterless bool) {
		if pattern == 0 {
			pattern = 1
		}
		counterVal &= 0xFFFFFFFE // a legal counter, distinct from the flag
		const counterlessFlag = 0xFFFFFFFF

		ct := fuzzBlock(data)
		meta := counterVal
		mac := macCounter(ct, meta)
		if counterless {
			meta = counterlessFlag
			mac = macCounterless(ct, meta)
		}
		cw := Encode(ct, mac, meta)

		if gotMeta, ok := Verify(cw, pickMAC(counterless)); !ok || gotMeta != meta {
			t.Fatalf("clean codeword failed fast-path verify (meta %#x ok=%v)", gotMeta, ok)
		}

		chip := int(chipSel) % TotalChips
		mut := cw
		switch {
		case chip < DataChips:
			mut.Data[chip] ^= pattern
		case chip == MACChip:
			mut.MAC ^= pattern
		default:
			mut.Parity ^= pattern
		}
		res := Correct(mut, hyps(counterVal))
		if !res.OK {
			t.Fatalf("single-chip fault (chip %d pattern %#x) not corrected: %+v", chip, pattern, res)
		}
		if res.Data != ct || res.Meta != meta || res.BadChip != chip {
			t.Fatalf("wrong correction: data ok=%v meta %#x (want %#x) chip %d (want %d)",
				res.Data == ct, res.Meta, meta, res.BadChip, chip)
		}

		// Second, different chip: beyond chipkill. Derive the second
		// site from the pattern so the fuzzer controls it.
		chip2 := (chip + 1 + int(pattern%uint64(TotalChips-1))) % TotalChips
		switch {
		case chip2 < DataChips:
			mut.Data[chip2] ^= pattern | 2
		case chip2 == MACChip:
			mut.MAC ^= pattern | 2
		default:
			mut.Parity ^= pattern | 2
		}
		res = Correct(mut, hyps(counterVal))
		if res.OK && (res.Data != ct || res.Meta != meta) {
			t.Fatalf("double-chip fault (%d,%d) silently consumed: meta %#x", chip, chip2, res.Meta)
		}
	})
}

// pickMAC selects the toy MAC function matching the stored mode.
func pickMAC(counterless bool) MACFunc {
	if counterless {
		return macCounterless
	}
	return macCounter
}

package check

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"counterlight/internal/cipher"
	"counterlight/internal/cluster"
	"counterlight/internal/figures"
	"counterlight/internal/mcpool"
	"counterlight/internal/obs"
	"counterlight/internal/obs/flight"
)

// Cluster chaos mode: the same generated programs the concurrent
// harness replays, driven through a multi-node cluster while a
// controller kills and restarts a node mid-traffic. The oracle is
// layered:
//
//  1. Transport: every op is either acknowledged or rejected with a
//     capacity error (ErrNodeDown while the killed node is dark) —
//     acknowledged ops appear in exactly one segment journal, tagged;
//     rejected ops appear in none.
//  2. Order: each block is owned by one (node, shard) stream, so the
//     tags in that stream — across segments, in seq order — must be
//     strictly increasing (the submitter's program order survives the
//     kill).
//  3. Continuity: per-shard journal seqs must be strictly increasing
//     across the kill/restart boundary. A recovery that silently lost
//     durable entries restarts the seq counter low and reuses seqs —
//     this is what catches cluster.Config.BreakRecovery even when the
//     lost record was a read.
//  4. Bit-identity: cluster.Verify re-executes every segment from its
//     durable baseline and demands journaled responses reproduce
//     exactly (internal/cluster/verify.go).
//  5. Read-back: after the chaos settles, the last acknowledged write
//     of every fault-free block must read back bit-identically — lost
//     durable writes surface here as stale plaintext.

// ClusterConfig shapes one cluster chaos replay.
type ClusterConfig struct {
	Nodes      int    // cluster nodes (default 2)
	Submitters int    // racing submitter goroutines (default 4)
	Shards     int    // per-node pool shards (default 2)
	QueueDepth int    // per-shard queue bound (default 64)
	BatchMax   int    // per-lock-acquisition batch cap (default 8)
	Variant    string // engine variant (default aes128)
	// Chaos kills KillNode once KillAfter ops have been submitted and
	// restarts it Downtime later, mid-traffic.
	Chaos     bool
	KillNode  int           // node to kill (default 1)
	KillAfter int           // submission count that triggers the kill (default len/3)
	Downtime  time.Duration // dark interval before restart (default 2ms)
	// BreakRecovery plumbs the teeth knob through: restarts recover
	// from a journal whose newest record was dropped, and the harness
	// MUST flag the run (self-test of the oracle).
	BreakRecovery bool
	// Flight, when non-nil, is attached to the cluster: kills,
	// restarts, and shard recoveries land in the ring.
	Flight *flight.Ring
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.Nodes <= 0 {
		c.Nodes = 2
	}
	if c.Submitters <= 0 {
		c.Submitters = 4
	}
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 8
	}
	if c.Variant == "" {
		c.Variant = "aes128"
	}
	if c.KillNode <= 0 || c.KillNode >= c.Nodes {
		c.KillNode = c.Nodes - 1
	}
	if c.Downtime <= 0 {
		c.Downtime = 2 * time.Millisecond
	}
	return c
}

// ClusterResult is one program driven through a chaos cluster.
type ClusterResult struct {
	Variant  string
	Ops      int
	Acked    int // ops acknowledged (applied by some engine)
	Rejected int // ops shed with a capacity error during the dark window
	Kills    int
	Restarts int
	// Div is the first oracle violation found (nil on a clean run).
	Div *Divergence
}

// ClusterReplay drives prog through a cluster with racing submitters
// and optional mid-traffic chaos, then runs the full oracle stack.
func ClusterReplay(prog Program, ccfg ClusterConfig) (ClusterResult, error) {
	ccfg = ccfg.withDefaults()
	v, err := VariantByName(ccfg.Variant)
	if err != nil {
		return ClusterResult{}, err
	}
	for i, op := range prog.Ops {
		if op.Kind == OpFault && op.Stuck {
			return ClusterResult{}, fmt.Errorf("check: op %d: stuck-at faults are not replayable concurrently", i)
		}
		if op.Kind == OpFlush {
			return ClusterResult{}, fmt.Errorf("check: op %d: NVM flush ops are not replayable concurrently", i)
		}
	}
	cl, err := cluster.New(cluster.Config{
		Nodes:           ccfg.Nodes,
		MaxDegradedFrac: -1, // per-address failure, not cluster-wide 429s: the oracle wants the hole visible
		BreakRecovery:   ccfg.BreakRecovery,
		Flight:          ccfg.Flight,
		Node: mcpool.Config{
			Shards:     ccfg.Shards,
			QueueDepth: ccfg.QueueDepth,
			BatchMax:   ccfg.BatchMax,
			Watermark:  -1, // explicit modes only
			Journal:    true,
			Persist:    true,
			Engine:     v.Options(false),
		},
	})
	if err != nil {
		return ClusterResult{}, err
	}
	defer cl.Close()
	res := ClusterResult{Variant: v.Name, Ops: len(prog.Ops)}

	// Fan out: submitter g owns every block ≡ g (mod G), preserving
	// per-block program order. acked/rejected are indexed by op and
	// single-writer (one goroutine per block), so no locking.
	acked := make([]bool, len(prog.Ops))
	rejected := make([]bool, len(prog.Ops))
	var submitted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < ccfg.Submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i, op := range prog.Ops {
				if int(op.Block)%ccfg.Submitters != g {
					continue
				}
				req := mcpool.Request{Addr: uint64(op.Block) * 64, Tag: i}
				switch op.Kind {
				case OpWrite:
					req.Kind = mcpool.OpWrite
					req.VM = int(op.VM) % v.VMs
					req.Mode = op.Mode
					req.Data = op.Payload()
				case OpRead:
					req.Kind = mcpool.OpRead
				case OpFault:
					req.Kind = mcpool.OpFault
					req.Chip = int(op.Chip)
					req.Pattern = op.Pattern
				}
				resp := cl.SubmitWait(req)
				submitted.Add(1)
				if errors.Is(resp.Err, cluster.ErrNodeDown) || errors.Is(resp.Err, cluster.ErrOverloaded) || errors.Is(resp.Err, cluster.ErrDraining) {
					rejected[i] = true // shed in the dark window, never applied
					continue
				}
				// Engine-level errors (a DUE under injected faults) are
				// applied, journaled responses — the verifier owns them.
				acked[i] = true
			}
		}(g)
	}

	chaosErr := make(chan error, 1)
	if ccfg.Chaos {
		killAfter := ccfg.KillAfter
		if killAfter <= 0 {
			killAfter = len(prog.Ops) / 3
		}
		go func() {
			for submitted.Load() < int64(killAfter) {
				time.Sleep(100 * time.Microsecond)
			}
			if err := cl.Kill(ccfg.KillNode); err != nil {
				chaosErr <- err
				return
			}
			res.Kills++
			time.Sleep(ccfg.Downtime)
			if _, err := cl.Restart(ccfg.KillNode); err != nil {
				chaosErr <- err
				return
			}
			res.Restarts++
			chaosErr <- nil
		}()
	} else {
		chaosErr <- nil
	}
	wg.Wait()
	if err := <-chaosErr; err != nil {
		return res, err
	}
	for _, ok := range acked {
		if ok {
			res.Acked++
		}
	}
	for _, ok := range rejected {
		if ok {
			res.Rejected++
		}
	}

	// Read-back oracle before the drain fence: the last acknowledged
	// write of every fault-free block must survive the chaos.
	res.Div = clusterReadBack(cl, prog, acked)
	cl.Drain()
	if res.Div == nil {
		res.Div = clusterHistoryCheck(cl, ccfg, prog, acked, rejected)
	}
	if res.Div == nil {
		ms, err := cl.Verify()
		if err != nil {
			return res, err
		}
		if len(ms) > 0 {
			res.Div = div("cluster-verify", "%d bit-identity mismatches, first: %s", len(ms), ms[0])
		}
	}
	return res, nil
}

// clusterReadBack reads every block whose last acknowledged op
// history is fault-free and compares against the last acknowledged
// write's payload.
func clusterReadBack(cl *cluster.Cluster, prog Program, acked []bool) *Divergence {
	lastWrite := map[uint32]int{}
	faulted := map[uint32]bool{}
	for i, op := range prog.Ops {
		if !acked[i] {
			continue
		}
		switch op.Kind {
		case OpWrite:
			lastWrite[op.Block] = i
		case OpFault:
			faulted[op.Block] = true
		}
	}
	for block, i := range lastWrite {
		if faulted[block] {
			continue
		}
		resp := cl.Read(uint64(block) * 64)
		if resp.Err != nil {
			d := div("cluster-readback-error", "block %#x: read after chaos failed: %v", uint64(block)*64, resp.Err)
			d.OpIndex = i
			return d
		}
		if want := prog.Ops[i].Payload(); resp.Plain != want {
			d := div("cluster-stale-read", "block %#x: read after chaos returned stale data (acknowledged write lost)", uint64(block)*64)
			d.OpIndex = i
			return d
		}
	}
	return nil
}

// clusterHistoryCheck walks every node's segment history enforcing
// oracle layers 1–3: exactly-once tagged coverage, per-block program
// order, and per-shard seq continuity across restarts.
func clusterHistoryCheck(cl *cluster.Cluster, ccfg ClusterConfig, prog Program, acked, rejected []bool) *Divergence {
	covered := make([]bool, len(prog.Ops))
	lastTag := map[uint32]int{} // block → last tag seen in its stream
	for node := 0; node < cl.Nodes(); node++ {
		for sh := 0; sh < ccfg.Shards; sh++ {
			var lastSeq uint64
			for segIdx, seg := range cl.History(node) {
				if sh >= len(seg.Journals) {
					continue
				}
				for _, entry := range seg.Journals[sh] {
					if entry.Seq <= lastSeq {
						return div("cluster-seq-reuse",
							"node %d shard %d seg %d: seq %d after %d — recovery lost durable entries and reused sequence numbers",
							node, sh, segIdx, entry.Seq, lastSeq)
					}
					lastSeq = entry.Seq
					i, ok := entry.Req.Tag.(int)
					if !ok {
						continue // untagged read-back traffic
					}
					if i < 0 || i >= len(prog.Ops) {
						return div("cluster-journal-tag", "node %d shard %d seq %d: unmappable tag %v", node, sh, entry.Seq, entry.Req.Tag)
					}
					if covered[i] {
						d := div("cluster-journal-duplicate", "op applied twice (node %d shard %d seq %d)", node, sh, entry.Seq)
						d.OpIndex = i
						return d
					}
					covered[i] = true
					block := uint32(entry.Req.Addr / cipher.BlockSize)
					if last, ok := lastTag[block]; ok && i < last {
						d := div("cluster-order", "block %#x: op %d journaled after op %d — program order lost across the restart",
							entry.Req.Addr, i, last)
						d.OpIndex = i
						return d
					}
					lastTag[block] = i
				}
			}
		}
	}
	for i := range prog.Ops {
		switch {
		case acked[i] && !covered[i]:
			d := div("cluster-journal-gap", "acknowledged op never appeared in any segment journal")
			d.OpIndex = i
			return d
		case rejected[i] && covered[i]:
			d := div("cluster-ghost-op", "rejected op appeared in a segment journal anyway")
			d.OpIndex = i
			return d
		}
	}
	return nil
}

// ClusterFailure is one diverging seed of a cluster campaign.
type ClusterFailure struct {
	Seed int64
	Div  Divergence
}

// ClusterReport aggregates one cluster chaos campaign.
type ClusterReport struct {
	Programs int
	Ops      int
	Acked    int
	Rejected int
	Kills    int
	Restarts int
	Failures []ClusterFailure
}

// OK reports whether the campaign found no divergences.
func (r ClusterReport) OK() bool { return len(r.Failures) == 0 }

// RunClusterCampaign generates seeds programs and runs each through
// ClusterReplay, fanning seeds over the Runner's worker pool.
// Statistics land in reg under check_cluster_* names; pass nil to
// skip metrics.
func RunClusterCampaign(seeds int, seedStart int64, ccfg ClusterConfig, pool *figures.Runner, reg *obs.Registry) (ClusterReport, error) {
	cfg := ConcurrentGenConfig()
	report := ClusterReport{}
	var mu sync.Mutex
	tasks := make([]func() error, seeds)
	for i := 0; i < seeds; i++ {
		seed := seedStart + int64(i)
		tasks[i] = func() error {
			prog := Generate(seed, cfg)
			res, err := ClusterReplay(prog, ccfg)
			if err != nil {
				return err
			}
			mu.Lock()
			report.Programs++
			report.Ops += res.Ops
			report.Acked += res.Acked
			report.Rejected += res.Rejected
			report.Kills += res.Kills
			report.Restarts += res.Restarts
			if res.Div != nil {
				report.Failures = append(report.Failures, ClusterFailure{Seed: seed, Div: *res.Div})
			}
			mu.Unlock()
			return nil
		}
	}
	if err := pool.Do(tasks...); err != nil {
		return report, err
	}
	sort.Slice(report.Failures, func(i, j int) bool { return report.Failures[i].Seed < report.Failures[j].Seed })
	if reg != nil {
		labels := []obs.Label{{Key: "campaign", Value: "cluster"}}
		reg.Counter("check_cluster_programs_total", labels...).Add(uint64(report.Programs))
		reg.Counter("check_cluster_ops_total", labels...).Add(uint64(report.Ops))
		reg.Counter("check_cluster_acked_total", labels...).Add(uint64(report.Acked))
		reg.Counter("check_cluster_rejected_total", labels...).Add(uint64(report.Rejected))
		reg.Counter("check_cluster_kills_total", labels...).Add(uint64(report.Kills))
		reg.Counter("check_cluster_restarts_total", labels...).Add(uint64(report.Restarts))
		reg.Counter("check_cluster_divergences_total", labels...).Add(uint64(len(report.Failures)))
	}
	return report, nil
}

package check

import (
	"testing"

	"counterlight/internal/epoch"
)

// FuzzEngineOps feeds arbitrary bytes through the repro-token decoder
// and replays whatever parses against the oracle. The decoder is the
// mutation surface: valid tokens explore op sequences the generator's
// distribution never draws (adversarial interleavings, degenerate
// payloads, fault storms), and invalid ones exercise every validation
// branch. Any oracle divergence with correction enabled is a real bug;
// the failure message carries the replayable token.
func FuzzEngineOps(f *testing.F) {
	for _, seed := range []int64{1, 2, 3} {
		cfg := DefaultGenConfig()
		cfg.Ops = 64
		f.Add(Repro{Variant: "aes128", Program: Generate(seed, cfg)}.TokenBytes())
	}
	f.Add(Repro{Variant: "ctr-sat", Program: Program{Seed: 0, Blocks: 1, Ops: []Op{
		{Kind: OpWrite, Block: 0, Mode: epoch.CounterMode, Pay: PayLow, PaySeed: 1},
		{Kind: OpFault, Block: 0, Chip: 9, Pattern: 1},
		{Kind: OpRead, Block: 0},
	}}}.TokenBytes())
	f.Add(Repro{Variant: "multi-vm", Program: Program{Seed: 0, Blocks: 2, Ops: []Op{
		{Kind: OpWrite, Block: 1, VM: 2, Mode: epoch.Counterless, Pay: PayRandom, PaySeed: 7},
		{Kind: OpFault, Block: 1, Chip: 8, Stuck: true},
		{Kind: OpRead, Block: 1},
		{Kind: OpRead, Block: 0},
	}}}.TokenBytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := parseTokenBytes(data)
		if err != nil {
			return // invalid tokens must error, not panic — done here
		}
		// Keep per-exec cost bounded; the parser's own caps are sized
		// for real campaigns, not fuzz throughput.
		if len(r.Program.Ops) > 1024 || r.Program.Blocks > 4096 {
			t.Skip("oversized program")
		}
		// Correction stays ON: with it, the chipkill contract must hold
		// for every decodable program.
		r.ECCOff = false
		rr, err := Replay(r)
		if err != nil {
			return // unknown variant name in the fuzzed bytes
		}
		if rr.Div != nil {
			t.Fatalf("oracle divergence (gen seed %d): %v\nrepro token: %s",
				r.Program.Seed, rr.Div, r.Token())
		}
	})
}

package check

import (
	"math/rand"

	"counterlight/internal/ecc"
	"counterlight/internal/epoch"
	"counterlight/internal/fault"
)

// GenConfig shapes the random program generator. The defaults mix
// address reuse (a small hot set), mid-stream mode flips, epoch-
// boundary write bursts, and a light sprinkle of faults — enough to
// reach every datapath corner in a few hundred ops.
type GenConfig struct {
	Ops       int     // program length (ops may slightly exceed: bursts and double faults append atomically)
	Blocks    uint32  // address-space size in blocks
	Hot       int     // hot-set size; most accesses reuse these blocks
	VMs       int     // VM ids drawn for writes (variants clamp further)
	FaultRate float64 // per-op probability of a fault injection
	BurstRate float64 // per-op probability of an epoch-boundary write burst
	FlipRate  float64 // per-op probability the ambient writeback mode flips
	FlushRate float64 // per-op probability of an NVM flush (crash programs; 0 draws no rng)
	Kinds     []fault.Kind
	Regions   []fault.Region
}

// DefaultGenConfig is the campaign default: 400 ops over 256 blocks.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Ops:       400,
		Blocks:    256,
		Hot:       16,
		VMs:       3,
		FaultRate: 0.04,
		BurstRate: 0.03,
		FlipRate:  0.025,
		Kinds:     []fault.Kind{fault.SingleChip, fault.DoubleChip, fault.StuckAtZero, fault.BitFlip},
		Regions:   []fault.Region{fault.AnyRegion, fault.DataRegion, fault.MACRegion, fault.ParityRegion},
	}
}

// CrashGenConfig is the crash campaign's generator shape: the classic
// defaults plus explicit NVM flushes, so crash points land before,
// inside, and after snapshot writes as well as between journal ops.
func CrashGenConfig() GenConfig {
	cfg := DefaultGenConfig()
	cfg.FlushRate = 0.02
	return cfg
}

// Generate derives a program from the seed alone: same seed and
// config, same program, always. The seed is carried in the Program so
// every failure report can print it.
func Generate(seed int64, cfg GenConfig) Program {
	if cfg.Ops <= 0 {
		cfg.Ops = 400
	}
	if cfg.Blocks == 0 {
		cfg.Blocks = 256
	}
	if cfg.Blocks > maxTokenBlocks {
		cfg.Blocks = maxTokenBlocks
	}
	if cfg.Hot <= 0 || uint32(cfg.Hot) > cfg.Blocks {
		cfg.Hot = int(min(16, cfg.Blocks))
	}
	if cfg.VMs <= 0 {
		cfg.VMs = 1
	}
	if len(cfg.Kinds) == 0 {
		cfg.Kinds = DefaultGenConfig().Kinds
	}
	if len(cfg.Regions) == 0 {
		cfg.Regions = DefaultGenConfig().Regions
	}

	rng := rand.New(rand.NewSource(seed))
	p := Program{Seed: seed, Blocks: cfg.Blocks}

	hot := make([]uint32, cfg.Hot)
	for i := range hot {
		hot[i] = uint32(rng.Intn(int(cfg.Blocks)))
	}
	pickBlock := func() uint32 {
		if rng.Float64() < 0.7 {
			return hot[rng.Intn(len(hot))]
		}
		return uint32(rng.Intn(int(cfg.Blocks)))
	}

	var written []uint32
	seen := make(map[uint32]bool)
	mode := epoch.CounterMode

	write := func(blk uint32, m epoch.Mode) {
		p.Ops = append(p.Ops, Op{
			Kind:    OpWrite,
			Block:   blk,
			VM:      uint8(rng.Intn(cfg.VMs)),
			Mode:    m,
			Pay:     PayloadKind(rng.Intn(int(PayRandom) + 1)),
			PaySeed: rng.Uint32(),
		})
		if !seen[blk] {
			seen[blk] = true
			written = append(written, blk)
		}
	}

	for len(p.Ops) < cfg.Ops {
		// Explicit flushes only exist in crash programs; the guard
		// keeps FlushRate == 0 from consuming rng draws, so classic
		// campaign seeds keep generating identical programs.
		if cfg.FlushRate > 0 && rng.Float64() < cfg.FlushRate {
			p.Ops = append(p.Ops, Op{Kind: OpFlush})
			continue
		}
		if rng.Float64() < cfg.FlipRate {
			if mode == epoch.CounterMode {
				mode = epoch.Counterless
			} else {
				mode = epoch.CounterMode
			}
		}
		r := rng.Float64()
		switch {
		case r < cfg.FaultRate && len(written) > 0:
			blk := written[rng.Intn(len(written))]
			kind := cfg.Kinds[rng.Intn(len(cfg.Kinds))]
			region := cfg.Regions[rng.Intn(len(cfg.Regions))]
			chips := region.Chips()
			chip := chips[rng.Intn(len(chips))]
			switch kind {
			case fault.SingleChip:
				p.Ops = append(p.Ops, Op{Kind: OpFault, Block: blk, Chip: uint8(chip), Pattern: rng.Uint64() | 1})
			case fault.DoubleChip:
				chip2 := (chip + 1 + rng.Intn(ecc.TotalChips-1)) % ecc.TotalChips
				p.Ops = append(p.Ops,
					Op{Kind: OpFault, Block: blk, Chip: uint8(chip), Pattern: rng.Uint64() | 1},
					Op{Kind: OpFault, Block: blk, Chip: uint8(chip2), Pattern: rng.Uint64() | 1})
			case fault.StuckAtZero:
				p.Ops = append(p.Ops, Op{Kind: OpFault, Block: blk, Chip: uint8(chip), Stuck: true})
			case fault.BitFlip:
				p.Ops = append(p.Ops, Op{Kind: OpFault, Block: blk, Chip: uint8(chip), Pattern: 1 << rng.Intn(64)})
			}
			// A faulted block is usually read back promptly, the way a
			// campaign would.
			if rng.Float64() < 0.9 {
				p.Ops = append(p.Ops, Op{Kind: OpRead, Block: blk})
			}
		case r < cfg.FaultRate+cfg.BurstRate:
			// Epoch-boundary stress: a burst of writes to one block
			// alternating modes, the §IV-B switch pattern at its
			// sharpest.
			blk := pickBlock()
			m := mode
			for n := 4 + rng.Intn(5); n > 0; n-- {
				write(blk, m)
				if m == epoch.CounterMode {
					m = epoch.Counterless
				} else {
					m = epoch.CounterMode
				}
			}
		case r < cfg.FaultRate+cfg.BurstRate+0.45:
			write(pickBlock(), mode)
		default:
			// Reads mostly revisit written blocks; a few probe fresh
			// addresses to keep the unwritten-read path covered.
			if len(written) > 0 && rng.Float64() < 0.95 {
				p.Ops = append(p.Ops, Op{Kind: OpRead, Block: written[rng.Intn(len(written))]})
			} else {
				p.Ops = append(p.Ops, Op{Kind: OpRead, Block: pickBlock()})
			}
		}
	}
	return p
}

package check

// Crash-consistency differential mode: generated programs run through
// the NVM persistence engine with a crash point armed at an arbitrary
// persistence step, power fails, recovery rebuilds the engine from the
// durable regions, and the recovered state is diffed bit-for-bit
// against a never-crashed oracle that replayed exactly the durable
// prefix. Any disagreement — a lost block, a stale counter, a wrong
// codeword, a different read-back — is a crash-consistency bug, and
// shrinks to a replayable token just like the serial campaigns.
//
// The oracle is sound because the NVM engine journals every mutation
// before its data persists: the durable journal entries always form a
// prefix of the applied mutations (in op-tag order), so "replay every
// mutating op with tag ≤ RecoveryReport.LastTag on a fresh engine"
// reconstructs precisely the state a crash-free execution of the
// durable prefix would have reached. Counter evolution matches because
// the memoization table's shared write value W is a deterministic
// function of the write sequence alone.

import (
	"fmt"
	"sort"
	"sync"

	"counterlight/internal/core"
	"counterlight/internal/ecc"
	"counterlight/internal/fault"
	"counterlight/internal/figures"
	"counterlight/internal/nvm"
	"counterlight/internal/obs"
	"counterlight/internal/obs/flight"
)

// CrashResult is one crash-replay run: workload, crash, recovery,
// diff.
type CrashResult struct {
	Variant string
	Ops     int    // program length
	Applied int    // ops fully applied before power failed
	Crashed bool   // whether the armed crash point actually fired
	Steps   uint64 // persistence steps the run executed
	Report  nvm.RecoveryReport
	// Div is the first disagreement between the recovered engine and
	// the never-crashed oracle; nil means recovery was exact.
	Div *Divergence
}

// resolveStuck materializes a stuck-at-zero fault's XOR pattern from
// the engine's current codeword — the same point-in-time resolution
// the serial checker uses, and deterministic across the NVM run and
// the oracle because both apply the identical op prefix.
func resolveStuck(e *core.Engine, op Op) uint64 {
	if !op.Stuck {
		return op.Pattern
	}
	cw, ok := e.Snapshot(uint64(op.Block) * 64)
	if !ok {
		return 1 // unwritten block: injection fails either way
	}
	var p uint64
	switch {
	case int(op.Chip) < ecc.DataChips:
		p = cw.Data[op.Chip]
	case int(op.Chip) == ecc.MACChip:
		p = cw.MAC
	default:
		p = cw.Parity
	}
	if p == 0 {
		p = 1
	}
	return p
}

// applyCrashOps drives prog through the NVM engine serially, tagging
// each op with its index, until the program ends or power fails. It
// returns the number of ops that fully completed; the only error it
// can surface besides nvm.ErrCrashed is a genuine engine failure.
func applyCrashOps(nv *nvm.Engine, v Variant, prog Program) (int, error) {
	applied := 0
	for i, op := range prog.Ops {
		addr := uint64(op.Block) * 64
		var err error
		switch op.Kind {
		case OpWrite:
			err = nv.Write(int64(i), int(op.VM)%v.VMs, addr, op.Payload(), op.Mode)
		case OpRead:
			_, _, err = nv.Read(addr)
			if err != nil && err != nvm.ErrCrashed {
				err = nil // DUEs and unwritten reads are data, not failures
			}
		case OpFault:
			err = nv.InjectFault(int64(i), addr, int(op.Chip), resolveStuck(nv.Core(), op))
			if err != nil && err != nvm.ErrCrashed {
				err = nil // fault on a never-written block is a no-op
			}
		case OpFlush:
			err = nv.Flush()
		}
		if err != nil {
			return applied, err
		}
		applied++
	}
	return applied, nil
}

// CrashReplay runs the repro's program through the NVM engine with its
// crash point armed, recovers from the resulting domain, and diffs the
// recovered state bit-for-bit against a never-crashed oracle of the
// durable prefix. fl may be nil; when set, the crash, the recovery,
// and any divergence land in the ring. Divergences are data, not
// errors; the returned error is a setup failure only.
func CrashReplay(r Repro, fl *flight.Ring) (CrashResult, error) {
	v, err := VariantByName(r.Variant)
	if err != nil {
		return CrashResult{}, err
	}
	cfg := nvm.Config{Engine: v.Options(r.ECCOff), Flight: fl, BreakRecovery: r.BreakRecovery}
	nv, err := nvm.New(cfg)
	if err != nil {
		return CrashResult{}, err
	}
	res := CrashResult{Variant: v.Name, Ops: len(r.Program.Ops)}
	if r.Crash && r.CrashStep > 0 {
		nv.ArmCrash(&fault.CrashPoint{Step: r.CrashStep})
	}
	applied, err := applyCrashOps(nv, v, r.Program)
	if err != nil && err != nvm.ErrCrashed {
		return res, err
	}
	res.Applied = applied
	res.Crashed = nv.Crashed()
	res.Steps = nv.Domain().Steps()

	rec, rep, rerr := nvm.Recover(nv.Domain(), cfg)
	res.Report = rep
	if rerr != nil {
		res.Div = div("recovery-failed", "recovery errored: %v", rerr)
		res.Div.OpIndex = applied
		fl.Record(flight.KindDivergence, -1, 0, int64(applied), 0)
		return res, nil
	}

	// Never-crashed oracle: a fresh engine replaying exactly the
	// durable prefix — every mutating op whose tag recovery reports
	// as durable, in program order. Reads never touch durable state
	// and are skipped.
	oracle, err := core.NewEngine(v.Options(r.ECCOff))
	if err != nil {
		return res, err
	}
	for i, op := range r.Program.Ops {
		if int64(i) > rep.LastTag {
			break
		}
		addr := uint64(op.Block) * 64
		switch op.Kind {
		case OpWrite:
			if werr := oracle.WriteAs(int(op.VM)%v.VMs, addr, op.Payload(), op.Mode); werr != nil {
				return res, fmt.Errorf("check: crash oracle write op %d: %w", i, werr)
			}
		case OpFault:
			// Unwritten-block faults fail here exactly as they failed
			// (and went unjournaled) in the NVM run.
			_ = oracle.InjectFault(addr, int(op.Chip), resolveStuck(oracle, op))
		}
	}
	res.Div = diffRecovered(rec.Core(), oracle)
	if res.Div != nil {
		res.Div.OpIndex = applied
		fl.Record(flight.KindDivergence, -1, 0, int64(applied), 0)
	}
	return res, nil
}

// diffRecovered compares a recovered engine against the oracle over
// the union of their block sets: codeword, counter, permanent-
// counterless flag, VM ownership, and the externally visible read-back
// (plaintext + error status) must all match exactly.
func diffRecovered(re, oracle *core.Engine) *Divergence {
	want, got := oracle.Blocks(), re.Blocks()
	wantSet := make(map[uint64]bool, len(want))
	for _, a := range want {
		wantSet[a] = true
	}
	for _, a := range got {
		if !wantSet[a] {
			return div("recovery-extra-block", "block %#x exists after recovery but not in the never-crashed oracle", a)
		}
	}
	gotSet := make(map[uint64]bool, len(got))
	for _, a := range got {
		gotSet[a] = true
	}
	for _, a := range want {
		if !gotSet[a] {
			return div("recovery-lost-block", "block %#x present in the oracle but lost by recovery", a)
		}
	}
	for _, a := range want {
		ocw, _ := oracle.Snapshot(a)
		rcw, _ := re.Snapshot(a)
		if ocw != rcw {
			return div("recovery-codeword", "block %#x codeword differs after recovery", a)
		}
		if oc, rc := oracle.Counters().Counter(a), re.Counters().Counter(a); oc != rc {
			return div("recovery-counter", "block %#x counter %d after recovery, oracle says %d", a, rc, oc)
		}
		if op, rp := oracle.IsPermanentCounterless(a), re.IsPermanentCounterless(a); op != rp {
			return div("recovery-permcl", "block %#x permanently-counterless=%v after recovery, oracle says %v", a, rp, op)
		}
		if ov, rv := oracle.VMOf(a), re.VMOf(a); ov != rv {
			return div("recovery-vm", "block %#x owned by VM %d after recovery, oracle says %d", a, rv, ov)
		}
		oplain, _, oerr := oracle.Read(a)
		rplain, _, rerr := re.Read(a)
		if (oerr == nil) != (rerr == nil) {
			return div("recovery-read", "block %#x read ok=%v after recovery, oracle ok=%v (recovered: %v, oracle: %v)",
				a, rerr == nil, oerr == nil, rerr, oerr)
		}
		if oerr == nil && oplain != rplain {
			return div("recovery-read", "block %#x reads back different plaintext after recovery", a)
		}
	}
	return nil
}

// crashSeedSalt decorrelates the crash-step draw from the program
// generator's rng stream, so the same seed yields independent workload
// and crash-point choices.
const crashSeedSalt = 0xc7a54c0de

// GenerateCrashRepro derives a crash repro from the seed alone: the
// seed's program, plus a crash step drawn uniformly from the run's
// actual persistence-step count (measured by a crash-free dry run), so
// crashes land between journal halves, mid-batch, and mid-flush alike.
func GenerateCrashRepro(seed int64, variant string, cfg GenConfig) (Repro, error) {
	v, err := VariantByName(variant)
	if err != nil {
		return Repro{}, err
	}
	prog := Generate(seed, cfg)
	nv, err := nvm.New(nvm.Config{Engine: v.Options(false)})
	if err != nil {
		return Repro{}, err
	}
	if _, err := applyCrashOps(nv, v, prog); err != nil {
		return Repro{}, err
	}
	r := Repro{Variant: variant, Program: prog, Crash: true}
	if steps := nv.Domain().Steps(); steps > 0 {
		r.CrashStep = 1 + splitmix(uint64(seed)^crashSeedSalt)%steps
	}
	return r, nil
}

// ShrinkCrash minimizes a diverging crash repro: ddmin over the op
// sequence, crash-step halving toward the earliest still-failing
// step, then payload/pattern canonicalization. Any divergence counts
// as a failure, so a shrink that surfaces a simpler crash bug wins.
func ShrinkCrash(r Repro) Repro {
	fails := func(cand Repro) bool {
		res, err := CrashReplay(cand, nil)
		return err == nil && res.Div != nil
	}
	if !fails(r) {
		return r
	}
	p := cloneProgram(r.Program)
	with := func(prog Program) Repro {
		out := r
		out.Program = prog
		return out
	}

	// ddmin: remove op chunks, halving the chunk size on a pass with
	// no progress. Removing ops shifts where the fixed crash step
	// lands; the failure class may change, and that is fine.
	for chunk := max(1, len(p.Ops)/2); chunk >= 1; {
		removed := false
		for start := 0; start < len(p.Ops); {
			end := start + chunk
			if end > len(p.Ops) {
				end = len(p.Ops)
			}
			cand := p
			cand.Ops = append(append([]Op(nil), p.Ops[:start]...), p.Ops[end:]...)
			if len(cand.Ops) > 0 && fails(with(cand)) {
				p = cand
				removed = true
			} else {
				start = end
			}
		}
		if !removed {
			if chunk == 1 {
				break
			}
			chunk /= 2
		}
		if chunk > len(p.Ops) && len(p.Ops) > 0 {
			chunk = len(p.Ops)
		}
	}

	// Pull the crash earlier by halving: a smaller durable prefix is a
	// smaller failure explanation.
	for r.Crash && r.CrashStep > 1 {
		cand := with(p)
		cand.CrashStep = r.CrashStep / 2
		if !fails(cand) {
			break
		}
		r.CrashStep = cand.CrashStep
	}

	// Canonicalize payloads and fault patterns, as in Shrink.
	for i := range p.Ops {
		op := p.Ops[i]
		switch op.Kind {
		case OpWrite:
			if op.Pay != PayZero || op.PaySeed != 0 {
				cand := cloneProgram(p)
				cand.Ops[i].Pay = PayZero
				cand.Ops[i].PaySeed = 0
				if fails(with(cand)) {
					p = cand
				}
			}
		case OpFault:
			if op.Stuck || op.Pattern != 1 {
				cand := cloneProgram(p)
				cand.Ops[i].Stuck = false
				cand.Ops[i].Pattern = 1
				if fails(with(cand)) {
					p = cand
				}
			}
		}
	}
	return with(p)
}

// CrashCampaignConfig shapes a crash-injection campaign.
type CrashCampaignConfig struct {
	// Variants to run each seed on; default {"aes128", "ctr-sat"} —
	// the base matrix plus the saturation-heavy variant whose
	// permanent-counterless transitions are the hardest metadata to
	// recover.
	Variants []string
	// Gen shapes program generation; the zero value means
	// CrashGenConfig() (the defaults plus explicit flushes).
	Gen GenConfig
	// BreakRecovery arms the intentional recovery bug on every run —
	// the campaign's own teeth-check.
	BreakRecovery bool
	// Flight, when non-nil, receives crash/recovery/divergence events.
	Flight *flight.Ring
}

// CrashFailure is one diverging seed of a crash campaign.
type CrashFailure struct {
	Seed    int64
	Variant string
	Div     Divergence
	Token   string // shrunk repro token, replayable with clcheck -repro
}

// CrashReport aggregates one crash campaign.
type CrashReport struct {
	Programs int
	Ops      int
	Crashes  int // runs whose crash point actually fired
	Replayed int // journal entries replayed across all recoveries
	Failures []CrashFailure
}

// OK reports whether the campaign found no divergences.
func (r CrashReport) OK() bool { return len(r.Failures) == 0 }

// RunCrashCampaign generates seeds crash repros per variant and runs
// each through CrashReplay, fanning work over the Runner's pool.
// Failures are shrunk to tokens. Statistics land in reg under
// check_crash_* names; pass nil to skip metrics.
func RunCrashCampaign(seeds int, seedStart int64, ccfg CrashCampaignConfig, pool *figures.Runner, reg *obs.Registry) (CrashReport, error) {
	if len(ccfg.Variants) == 0 {
		ccfg.Variants = []string{"aes128", "ctr-sat"}
	}
	gen := ccfg.Gen
	if gen.Ops == 0 {
		gen = CrashGenConfig()
	}
	report := CrashReport{}
	var mu sync.Mutex
	var tasks []func() error
	for i := 0; i < seeds; i++ {
		seed := seedStart + int64(i)
		for _, variant := range ccfg.Variants {
			tasks = append(tasks, func() error {
				r, err := GenerateCrashRepro(seed, variant, gen)
				if err != nil {
					return err
				}
				r.BreakRecovery = ccfg.BreakRecovery
				res, err := CrashReplay(r, ccfg.Flight)
				if err != nil {
					return err
				}
				var fail *CrashFailure
				if res.Div != nil {
					shrunk := ShrinkCrash(r)
					fail = &CrashFailure{Seed: seed, Variant: variant, Div: *res.Div, Token: shrunk.Token()}
				}
				mu.Lock()
				report.Programs++
				report.Ops += res.Ops
				if res.Crashed {
					report.Crashes++
				}
				report.Replayed += res.Report.Replayed
				if fail != nil {
					report.Failures = append(report.Failures, *fail)
				}
				mu.Unlock()
				return nil
			})
		}
	}
	if err := pool.Do(tasks...); err != nil {
		return report, err
	}
	sort.Slice(report.Failures, func(i, j int) bool {
		if report.Failures[i].Seed != report.Failures[j].Seed {
			return report.Failures[i].Seed < report.Failures[j].Seed
		}
		return report.Failures[i].Variant < report.Failures[j].Variant
	})
	if reg != nil {
		labels := []obs.Label{{Key: "campaign", Value: "crash"}}
		reg.Counter("check_crash_programs_total", labels...).Add(uint64(report.Programs))
		reg.Counter("check_crash_ops_total", labels...).Add(uint64(report.Ops))
		reg.Counter("check_crash_crashes_total", labels...).Add(uint64(report.Crashes))
		reg.Counter("check_crash_replayed_total", labels...).Add(uint64(report.Replayed))
		reg.Counter("check_crash_divergences_total", labels...).Add(uint64(len(report.Failures)))
	}
	return report, nil
}

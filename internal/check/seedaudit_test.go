package check

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestSeedAudit enforces the repo's reproducibility rule: every use of
// math/rand under internal/ and cmd/ must flow from an explicit seed.
// Three violation classes:
//
//   - rand.Seed(...) — reseeds the shared global source;
//   - package-level rand.Intn/Uint64/... calls — draw from the
//     implicitly seeded global source, so a failure can't be replayed;
//   - rand.New/NewSource whose seed expression mentions the time
//     package — a time-derived seed is a fresh seed every run.
//
// A deterministic simulator whose test failures can't be reproduced
// from a printed seed is worse than a flaky one, because the failure
// evaporates before it can be debugged.
func TestSeedAudit(t *testing.T) {
	root := repoRoot(t)
	fset := token.NewFileSet()
	var violations []string
	for _, dir := range []string{"internal", "cmd"} {
		err := filepath.WalkDir(filepath.Join(root, dir), func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, 0)
			if err != nil {
				return fmt.Errorf("parse %s: %w", path, err)
			}
			violations = append(violations, auditFile(fset, f)...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range violations {
		t.Errorf("implicit randomness: %s", v)
	}
}

// globalRandFns are the math/rand package-level functions backed by
// the global source.
var globalRandFns = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true,
	"ExpFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
}

// auditFile scans one parsed file for the three violation classes.
func auditFile(fset *token.FileSet, f *ast.File) []string {
	randName, timeName := "", ""
	for _, imp := range f.Imports {
		path, _ := strconv.Unquote(imp.Path.Value)
		local := ""
		if imp.Name != nil {
			local = imp.Name.Name
		}
		switch path {
		case "math/rand", "math/rand/v2":
			if local == "" {
				local = "rand"
			}
			randName = local
		case "time":
			if local == "" {
				local = "time"
			}
			timeName = local
		}
	}
	if randName == "" || randName == "_" || randName == "." {
		return nil
	}
	var out []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != randName || pkg.Obj != nil {
			return true
		}
		pos := fset.Position(call.Pos())
		switch {
		case sel.Sel.Name == "Seed":
			out = append(out, fmt.Sprintf("%s: %s.Seed reseeds the global source", pos, randName))
		case globalRandFns[sel.Sel.Name]:
			out = append(out, fmt.Sprintf("%s: %s.%s draws from the implicit global source",
				pos, randName, sel.Sel.Name))
		case sel.Sel.Name == "New" || sel.Sel.Name == "NewSource":
			if timeName != "" && mentionsPackage(call.Args, timeName) {
				out = append(out, fmt.Sprintf("%s: %s.%s seeded from the clock — unreproducible",
					pos, randName, sel.Sel.Name))
			}
		}
		return true
	})
	return out
}

// mentionsPackage reports whether any expression references the given
// package identifier (e.g. time.Now().UnixNano() inside a seed).
func mentionsPackage(exprs []ast.Expr, pkgName string) bool {
	found := false
	for _, e := range exprs {
		ast.Inspect(e, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == pkgName && id.Obj == nil {
					found = true
					return false
				}
			}
			return true
		})
	}
	return found
}

// repoRoot walks up from the package directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above package directory")
		}
		dir = parent
	}
}

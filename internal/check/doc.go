// Package check is the differential-verification harness: it fuzzes
// the whole Counter-light datapath against a small, obviously-correct
// reference oracle.
//
// The paper's correctness story rests on three subtle mechanisms —
// per-block EncryptionMetadata encoded in the chipkill parity, RMCC
// memoization equivalence with direct AES, and two-hypothesis
// trial-and-error correction disambiguated by the ciphertext-entropy
// test (§IV-E). All five scheme pipelines share that metadata
// semantics through one dispatch layer, so a single decode bug would
// silently corrupt every figure. This package makes the contract
// executable:
//
//   - Generate (gen.go) derives a random but fully seeded program of
//     reads, writes, mode flips, and fault injections — address reuse,
//     epoch-boundary write bursts, counter-saturation stress.
//
//   - Replay (harness.go) runs a program op by op against a real
//     core.Engine and, after every operation, checks the engine's
//     observable state against the Oracle (oracle.go): a plain map of
//     address → plaintext/mode/counter plus the set of outstanding
//     chip faults. Invariant probes ride along: counter monotonicity
//     per block, RMCC memoized pads equal to direct AES, metadata
//     decode agreeing with the engine_modes.go mode semantics, and
//     entropy-resolved corrections only on genuinely low-entropy
//     plaintext.
//
//   - Differential (harness.go) replays the same program on several
//     engine variants (AES-128/256, tiny memo table, multi-VM,
//     entropy off) and demands bit-identical plaintext and mode
//     sequences within each comparable group.
//
//   - SchemeSweep (scheme.go) runs all registered timing schemes over
//     shared seeds on a short Table-I window and cross-checks Result
//     invariants plus bit-exact determinism.
//
//   - Shrink (shrink.go) minimizes a failing program with
//     delta-debugging and emits a replayable repro token
//     (`clcheck -repro <token>`).
//
// The expectations are contract-based, not implementation-based: the
// oracle always expects chipkill to correct single-chip faults, so
// running a campaign with correction disabled (the known-bad
// mutation, EngineOptions.DisableCorrection) must produce divergences
// — which is how CI proves the harness detects real bugs instead of
// vacuously passing.
package check

package check

import (
	"testing"
	"time"

	"counterlight/internal/figures"
	"counterlight/internal/obs"
)

// A chaos-free cluster replay of generated programs is a superset of
// the concurrent differential check: everything acknowledged, nothing
// rejected, all five oracle layers clean.
func TestClusterReplayClean(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		prog := Generate(seed, ConcurrentGenConfig())
		res, err := ClusterReplay(prog, ClusterConfig{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Div != nil {
			t.Fatalf("seed %d: %s", seed, res.Div)
		}
		if res.Rejected != 0 || res.Acked != res.Ops {
			t.Fatalf("seed %d: %d acked + %d rejected of %d ops without chaos", seed, res.Acked, res.Rejected, res.Ops)
		}
	}
}

// Chaos mode: a node dies and recovers mid-traffic. Ops routed into
// the dark window shed; everything acknowledged must still verify and
// read back bit-identically.
func TestClusterReplayChaos(t *testing.T) {
	var sawRejects bool
	for seed := int64(11); seed <= 13; seed++ {
		prog := Generate(seed, ConcurrentGenConfig())
		res, err := ClusterReplay(prog, ClusterConfig{Chaos: true, Downtime: 3 * time.Millisecond})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Div != nil {
			t.Fatalf("seed %d: %s", seed, res.Div)
		}
		if res.Kills != 1 || res.Restarts != 1 {
			t.Fatalf("seed %d: kills %d restarts %d", seed, res.Kills, res.Restarts)
		}
		if res.Acked+res.Rejected != res.Ops {
			t.Fatalf("seed %d: %d acked + %d rejected != %d ops", seed, res.Acked, res.Rejected, res.Ops)
		}
		sawRejects = sawRejects || res.Rejected > 0
	}
	if !sawRejects {
		t.Log("no ops landed in any dark window (kill raced ahead of traffic); chaos still exercised kill/restart")
	}
}

// The oracle's teeth: BreakRecovery drops each shard's newest durable
// record before recovery, so a restart silently loses state. The
// harness must flag it — via seq reuse, stale read-back, or a verify
// mismatch. An undetected broken recovery means the whole chaos
// campaign proves nothing.
func TestClusterReplayBreakRecoveryDetected(t *testing.T) {
	detected := 0
	for seed := int64(21); seed <= 23; seed++ {
		prog := Generate(seed, ConcurrentGenConfig())
		res, err := ClusterReplay(prog, ClusterConfig{Chaos: true, BreakRecovery: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Div != nil {
			t.Logf("seed %d detected: %s", seed, res.Div)
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("broken recovery slipped past every oracle layer — the chaos campaign has no teeth")
	}
}

// The campaign driver aggregates across seeds and lands metrics.
func TestRunClusterCampaign(t *testing.T) {
	runner := figures.NewRunner(true)
	runner.Workers = 2
	reg := obs.NewRegistry()
	report, err := RunClusterCampaign(4, 100, ClusterConfig{Chaos: true}, runner, reg)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		for _, f := range report.Failures {
			t.Errorf("seed %d: %s", f.Seed, &f.Div)
		}
	}
	if report.Programs != 4 || report.Kills != 4 || report.Restarts != 4 {
		t.Fatalf("report %+v", report)
	}
	labels := []obs.Label{{Key: "campaign", Value: "cluster"}}
	if got := reg.Counter("check_cluster_programs_total", labels...).Value(); got != 4 {
		t.Fatalf("programs metric %d, want 4", got)
	}
}

package check

// Shrink minimizes a failing repro to the smallest program that still
// diverges, using delta debugging over the op sequence followed by
// payload/pattern canonicalization and address compaction. The result
// replays the *same class* of failure (any divergence counts — a
// minimization that surfaces a simpler bug is a win, not a miss); its
// Token() is what CI prints and `clcheck -repro` replays.
//
// Shrinking replays the program once per candidate, so it is O(n log n)
// engine runs on the already-truncated sequence — cheap at campaign
// program sizes.
func Shrink(r Repro) Repro {
	fails := func(p Program) bool {
		rr, err := Replay(Repro{Variant: r.Variant, ECCOff: r.ECCOff, Program: p})
		return err == nil && rr.Div != nil
	}
	rr, err := Replay(r)
	if err != nil || rr.Div == nil {
		return r // not failing (or unknown variant): nothing to shrink
	}

	// Everything after the first divergence is dead weight.
	p := r.Program
	if n := rr.Div.OpIndex + 1; n < len(p.Ops) {
		p.Ops = append([]Op(nil), p.Ops[:n]...)
	} else {
		p.Ops = append([]Op(nil), p.Ops...)
	}

	// ddmin: remove chunks, halving the chunk size on a full pass with
	// no progress, down to single ops.
	for chunk := max(1, len(p.Ops)/2); chunk >= 1; {
		removed := false
		for start := 0; start < len(p.Ops); {
			end := start + chunk
			if end > len(p.Ops) {
				end = len(p.Ops)
			}
			cand := p
			cand.Ops = append(append([]Op(nil), p.Ops[:start]...), p.Ops[end:]...)
			if len(cand.Ops) > 0 && fails(cand) {
				p = cand
				removed = true
				// keep start: the next chunk slid into place
			} else {
				start = end
			}
		}
		if !removed {
			if chunk == 1 {
				break
			}
			chunk /= 2
		}
		if chunk > len(p.Ops) && len(p.Ops) > 0 {
			chunk = len(p.Ops)
		}
	}

	// Canonicalize: zero payloads, single-bit fault patterns. Each
	// simplification is kept only if the program still fails.
	for i := range p.Ops {
		op := p.Ops[i]
		switch op.Kind {
		case OpWrite:
			if op.Pay != PayZero || op.PaySeed != 0 {
				cand := cloneProgram(p)
				cand.Ops[i].Pay = PayZero
				cand.Ops[i].PaySeed = 0
				if fails(cand) {
					p = cand
				}
			}
		case OpFault:
			if op.Stuck || op.Pattern != 1 {
				cand := cloneProgram(p)
				cand.Ops[i].Stuck = false
				cand.Ops[i].Pattern = 1
				if fails(cand) {
					p = cand
				}
			}
		}
	}

	// Compact the address space: renumber blocks in order of first use.
	remap := make(map[uint32]uint32)
	cand := cloneProgram(p)
	for i, op := range cand.Ops {
		n, ok := remap[op.Block]
		if !ok {
			n = uint32(len(remap))
			remap[op.Block] = n
		}
		cand.Ops[i].Block = n
	}
	cand.Blocks = uint32(len(remap))
	if cand.Blocks == 0 {
		cand.Blocks = 1
	}
	if fails(cand) {
		p = cand
	}

	return Repro{Variant: r.Variant, ECCOff: r.ECCOff, Program: p}
}

func cloneProgram(p Program) Program {
	p.Ops = append([]Op(nil), p.Ops...)
	return p
}

package check

import (
	"fmt"
	"sort"
	"sync"

	"counterlight/internal/core"
	"counterlight/internal/epoch"
	"counterlight/internal/fault"
	"counterlight/internal/figures"
	"counterlight/internal/mcpool"
	"counterlight/internal/obs"
	"counterlight/internal/obs/flight"
)

// This file is the concurrent differential mode: the same generated
// programs the serial harness replays, but driven through the
// mcpool sharded engine by racing submitter goroutines, then checked
// by replaying each shard's applied-op journal through a fresh serial
// engine + oracle. The journal pins the exact interleaving the pool
// chose, so the serialized replay must match it bit for bit —
// plaintexts, ReadInfo, applied modes, and the shard engine's final
// EngineStats. Run under -race this doubles as a data-race probe of
// the whole submit/batch/apply path.
//
// Ops are partitioned by block across submitters (block ≡ g mod G),
// so each block's program order survives any thread interleaving —
// the same single-writer-per-address discipline a real MC's
// per-bank queues enforce. Cross-block order is genuinely racy; the
// oracle's invariants are per-block, so every legal interleaving must
// still check clean. In particular the §IV-C saturation handoff and
// the split-counter RMW window (ctrblock.SplitBlock.Increment's
// contract) are replayed under whatever interleaving the race chose.

// ConcurrentConfig shapes one concurrent differential replay.
type ConcurrentConfig struct {
	Submitters int    // racing submitter goroutines (default 4)
	Shards     int    // pool shards (default 4)
	QueueDepth int    // per-shard queue bound (default 64)
	BatchMax   int    // per-lock-acquisition batch cap (default 8)
	Variant    string // engine variant (default aes128)
	// Attribution turns on the pool's per-op latency spans for the
	// replay. The differential check is unchanged: attribution must
	// leave every journal entry and engine counter bit-identical, so
	// campaigns run with it on prove the observer is an observer.
	Attribution bool
	// AdaptiveWatermark turns on the pool's measurement-driven
	// watermark controller for the replay, with a small AdaptEvery so
	// adaptation races the submitters. Replay programs carry explicit
	// modes only, so no matter where the watermark moves, every
	// journal entry must stay bit-identical — this is the proof that
	// adaptation moves only the Auto degradation knee, never the
	// ciphertext.
	AdaptiveWatermark bool
	// ECCOff disables trial-and-error correction in both the pool's
	// shard engines and the serialized replay engines, so injected
	// faults surface as raw DUEs instead of being healed — the cheap
	// way to make a known-bad concurrent program for self-tests.
	ECCOff bool
	// Flight, when non-nil, is attached to the replay pool; on any
	// divergence the harness records the failing shard's journal tail
	// (KindJournal, newest last) followed by a KindDivergence event,
	// so the ring holds the moments leading up to the failure and the
	// exact op order that produced it.
	Flight *flight.Ring
}

func (c ConcurrentConfig) withDefaults() ConcurrentConfig {
	if c.Submitters <= 0 {
		c.Submitters = 4
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 8
	}
	if c.Variant == "" {
		c.Variant = "aes128"
	}
	return c
}

// ConcurrentGenConfig is the generator config for concurrent
// campaigns: the serial defaults minus stuck-at faults, whose pattern
// depends on a point-in-time codeword snapshot no concurrent
// frontend can take atomically with the injection.
func ConcurrentGenConfig() GenConfig {
	cfg := DefaultGenConfig()
	cfg.Kinds = []fault.Kind{fault.SingleChip, fault.DoubleChip, fault.BitFlip}
	return cfg
}

// ConcurrentResult is one program driven through the pool and
// re-checked serially.
type ConcurrentResult struct {
	Variant string
	Ops     int
	// Stats sums the shard engines' counters after the run.
	Stats core.EngineStats
	// Div is the first disagreement found: pool response vs.
	// serialized replay, oracle violation, or journal coverage gap.
	Div *Divergence
	// WatermarkMoves counts the adaptive controller's watermark moves
	// during the replay (0 unless AdaptiveWatermark): proof in the
	// passing case that adaptation actually raced the submitters.
	WatermarkMoves uint64
}

// ConcurrentReplay drives prog through a sharded mcpool with racing
// submitters, then proves the concurrent execution equivalent to a
// serial one: each shard's journal is replayed on a fresh engine with
// the oracle in lockstep, and every journaled response — plaintext,
// ReadInfo, applied mode, error — must match the serial replay
// exactly, as must the shard's final EngineStats.
func ConcurrentReplay(prog Program, ccfg ConcurrentConfig) (ConcurrentResult, error) {
	ccfg = ccfg.withDefaults()
	v, err := VariantByName(ccfg.Variant)
	if err != nil {
		return ConcurrentResult{}, err
	}
	for i, op := range prog.Ops {
		if op.Kind == OpFault && op.Stuck {
			return ConcurrentResult{}, fmt.Errorf("check: op %d: stuck-at faults are not replayable concurrently", i)
		}
		if op.Kind == OpFlush {
			return ConcurrentResult{}, fmt.Errorf("check: op %d: NVM flush ops are not replayable concurrently", i)
		}
	}
	pcfg := mcpool.Config{
		Shards:      ccfg.Shards,
		QueueDepth:  ccfg.QueueDepth,
		BatchMax:    ccfg.BatchMax,
		Watermark:   -1, // explicit modes only: no load-dependent degradation
		Journal:     true,
		Attribution: ccfg.Attribution,
		Flight:      ccfg.Flight,
		Engine:      v.Options(ccfg.ECCOff),
	}
	if ccfg.AdaptiveWatermark {
		// Adapt as often as the pool allows so watermark moves race
		// the submitters; the replay's explicit modes must make every
		// move invisible in the journals.
		pcfg.AdaptiveWatermark = true
		pcfg.AdaptEvery = 2
	}
	pool, err := mcpool.New(pcfg)
	if err != nil {
		return ConcurrentResult{}, err
	}
	res := ConcurrentResult{Variant: v.Name, Ops: len(prog.Ops)}

	// Fan the program out: submitter g owns every block ≡ g (mod G)
	// and submits its ops in program order, pipelined.
	var wg sync.WaitGroup
	subErrs := make([]error, ccfg.Submitters)
	for g := 0; g < ccfg.Submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var futs []*mcpool.Future
			for i, op := range prog.Ops {
				if int(op.Block)%ccfg.Submitters != g {
					continue
				}
				req := mcpool.Request{Addr: uint64(op.Block) * 64, Tag: i}
				switch op.Kind {
				case OpWrite:
					req.Kind = mcpool.OpWrite
					req.VM = int(op.VM) % v.VMs
					req.Mode = op.Mode
					req.Data = op.Payload()
				case OpRead:
					req.Kind = mcpool.OpRead
				case OpFault:
					req.Kind = mcpool.OpFault
					req.Chip = int(op.Chip)
					req.Pattern = op.Pattern
				}
				fut, err := pool.Submit(req)
				if err != nil {
					subErrs[g] = err
					return
				}
				futs = append(futs, fut)
			}
			for _, fut := range futs {
				fut.Wait()
			}
		}(g)
	}
	wg.Wait()
	pool.Flush()
	for _, err := range subErrs {
		if err != nil {
			pool.Close()
			return res, err
		}
	}

	// Serialized oracle replay, shard by shard, in the exact order the
	// pool applied the ops.
	covered := make([]bool, len(prog.Ops))
	for s := 0; s < pool.NumShards() && res.Div == nil; s++ {
		journal := pool.JournalOf(s)
		c, err := newCheckerFor(v, ccfg.ECCOff)
		if err != nil {
			pool.Close()
			return res, err
		}
		for _, entry := range journal {
			i, ok := entry.Req.Tag.(int)
			if !ok || i < 0 || i >= len(prog.Ops) {
				res.Div = div("journal-tag", "shard %d seq %d: unmappable tag %v", s, entry.Seq, entry.Req.Tag)
				break
			}
			if covered[i] {
				res.Div = div("journal-duplicate", "op applied twice (shard %d seq %d)", s, entry.Seq)
				res.Div.OpIndex = i
				break
			}
			covered[i] = true
			op := prog.Ops[i]
			var d *Divergence
			switch op.Kind {
			case OpWrite:
				d = c.write(op)
				if d == nil {
					if entry.Resp.Err != nil {
						d = div("concurrent-write-error", "pool write failed where serial replay succeeded: %v", entry.Resp.Err)
					} else {
						applied := op.Mode
						if c.e.IsPermanentCounterless(uint64(op.Block) * 64) {
							applied = epoch.Counterless
						}
						if entry.Resp.Mode != applied {
							d = div("concurrent-mode-mismatch",
								"pool stored block %#x in %v, serial replay of the same order stored %v",
								uint64(op.Block)*64, entry.Resp.Mode, applied)
						}
					}
				}
			case OpRead:
				var out ReadOutcome
				out, d = c.read(op)
				if d == nil {
					switch {
					case out.OK != (entry.Resp.Err == nil):
						d = div("concurrent-read-status", "pool read ok=%v, serial replay ok=%v (pool err: %v)",
							entry.Resp.Err == nil, out.OK, entry.Resp.Err)
					case out.Plain != entry.Resp.Plain:
						d = div("concurrent-plaintext", "pool plaintext differs from serial replay at block %#x", uint64(op.Block)*64)
					case out.Info != entry.Resp.Info:
						d = div("concurrent-readinfo", "pool ReadInfo %+v, serial replay %+v", entry.Resp.Info, out.Info)
					}
				}
			case OpFault:
				wantErr := !c.oracle.block(op.Block).written
				if (entry.Resp.Err != nil) != wantErr {
					d = div("concurrent-fault-status", "pool fault err=%v, oracle written=%v", entry.Resp.Err, !wantErr)
				} else {
					d = c.fault(op)
				}
			}
			if d != nil {
				if d.OpIndex == 0 {
					d.OpIndex = i
				}
				res.Div = d
				break
			}
		}
		if res.Div == nil {
			// The serialized replay consumed the same ops in the same
			// order, so the shard engine's counters must match exactly.
			if pStats, sStats := pool.ShardStats(s), c.e.Stats(); pStats != sStats {
				res.Div = div("concurrent-stats", "shard %d stats %+v, serial replay %+v", s, pStats, sStats)
			}
			st := c.e.Stats()
			res.Stats.Reads += st.Reads
			res.Stats.Writes += st.Writes
			res.Stats.CounterModeWrites += st.CounterModeWrites
			res.Stats.CounterlessWrites += st.CounterlessWrites
			res.Stats.MemoHits += st.MemoHits
			res.Stats.MemoMisses += st.MemoMisses
			res.Stats.Corrections += st.Corrections
			res.Stats.EntropyResolved += st.EntropyResolved
			res.Stats.DUEs += st.DUEs
			res.Stats.MACFailures += st.MACFailures
		}
		if res.Div != nil {
			// The failing shard's journal tail goes into the ring
			// first, newest last, so the dump that follows the
			// KindDivergence marker is self-contained: it shows the
			// exact op order the pool chose leading into the failure.
			tail := journal
			if len(tail) > 16 {
				tail = tail[len(tail)-16:]
			}
			for _, entry := range tail {
				tag := int64(-1)
				if t, ok := entry.Req.Tag.(int); ok {
					tag = int64(t)
				}
				ccfg.Flight.Record(flight.KindJournal, int32(s), entry.Req.Addr, tag, int64(entry.Seq))
			}
		}
	}
	res.WatermarkMoves = pool.WatermarkMoves()
	pool.Close()
	if res.Div == nil {
		for i, ok := range covered {
			if !ok {
				res.Div = div("journal-gap", "op never appeared in any shard journal")
				res.Div.OpIndex = i
				break
			}
		}
	}
	if res.Div != nil {
		// Annotate the black box: the ring now ends with the failure
		// it should explain.
		ccfg.Flight.Record(flight.KindDivergence, -1, 0, int64(res.Div.OpIndex), 0)
	}
	return res, nil
}

// ConcurrentFailure is one diverging seed of a concurrent campaign.
type ConcurrentFailure struct {
	Seed int64
	Div  Divergence
}

// ConcurrentReport aggregates one concurrent campaign.
type ConcurrentReport struct {
	Programs int
	Ops      int
	Failures []ConcurrentFailure
}

// OK reports whether the campaign found no divergences.
func (r ConcurrentReport) OK() bool { return len(r.Failures) == 0 }

// RunConcurrentCampaign generates seeds programs and runs each
// through ConcurrentReplay, fanning seeds over the Runner's worker
// pool. Statistics land in reg under check_concurrent_* names; pass
// nil to skip metrics.
func RunConcurrentCampaign(seeds int, seedStart int64, ccfg ConcurrentConfig, pool *figures.Runner, reg *obs.Registry) (ConcurrentReport, error) {
	cfg := ConcurrentGenConfig()
	report := ConcurrentReport{}
	var mu sync.Mutex
	tasks := make([]func() error, seeds)
	for i := 0; i < seeds; i++ {
		seed := seedStart + int64(i)
		tasks[i] = func() error {
			prog := Generate(seed, cfg)
			res, err := ConcurrentReplay(prog, ccfg)
			if err != nil {
				return err
			}
			mu.Lock()
			report.Programs++
			report.Ops += res.Ops
			if res.Div != nil {
				report.Failures = append(report.Failures, ConcurrentFailure{Seed: seed, Div: *res.Div})
			}
			mu.Unlock()
			return nil
		}
	}
	if err := pool.Do(tasks...); err != nil {
		return report, err
	}
	sort.Slice(report.Failures, func(i, j int) bool { return report.Failures[i].Seed < report.Failures[j].Seed })
	if reg != nil {
		labels := []obs.Label{{Key: "campaign", Value: "concurrent"}}
		reg.Counter("check_concurrent_programs_total", labels...).Add(uint64(report.Programs))
		reg.Counter("check_concurrent_ops_total", labels...).Add(uint64(report.Ops))
		reg.Counter("check_concurrent_divergences_total", labels...).Add(uint64(len(report.Failures)))
	}
	return report, nil
}

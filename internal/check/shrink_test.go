package check

import (
	"testing"

	"counterlight/internal/epoch"
)

// TestShrinkMinimizesGeneratedFailure takes a whole generated program
// whose eccOff replay diverges and checks the shrinker boils it down
// to a tiny, canonicalized, still-failing repro.
func TestShrinkMinimizesGeneratedFailure(t *testing.T) {
	cfg := DefaultGenConfig()
	var failing Repro
	found := false
	for seed := int64(1); seed <= 20 && !found; seed++ {
		prog := Generate(seed, cfg)
		r := Repro{Variant: "aes128", ECCOff: true, Program: prog}
		rr, err := Replay(r)
		if err != nil {
			t.Fatal(err)
		}
		if rr.Div != nil {
			failing, found = r, true
		}
	}
	if !found {
		t.Fatal("no seed in 1..20 diverged under eccOff — generator fault rate broken?")
	}

	min := Shrink(failing)
	if len(min.Program.Ops) >= len(failing.Program.Ops) {
		t.Fatalf("shrinker made no progress: %d -> %d ops",
			len(failing.Program.Ops), len(min.Program.Ops))
	}
	if len(min.Program.Ops) > 8 {
		t.Errorf("minimal eccOff repro should be a handful of ops, got %d (seed %d)",
			len(min.Program.Ops), failing.Program.Seed)
	}
	rr, err := Replay(min)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Div == nil {
		t.Fatalf("shrunken repro no longer fails (seed %d)", failing.Program.Seed)
	}
	// Address compaction: the blocks actually referenced fit Blocks.
	for _, op := range min.Program.Ops {
		if op.Block >= min.Program.Blocks {
			t.Fatalf("compacted repro references block %d of %d", op.Block, min.Program.Blocks)
		}
	}
}

// TestShrinkPassesThroughHealthyRepro pins the shrinker's contract on
// non-failing input: untouched.
func TestShrinkPassesThroughHealthyRepro(t *testing.T) {
	prog := Program{Seed: 3, Blocks: 2, Ops: []Op{
		{Kind: OpWrite, Block: 0, Mode: epoch.Counterless, Pay: PayRandom, PaySeed: 77},
		{Kind: OpRead, Block: 0},
	}}
	r := Repro{Variant: "aes128", Program: prog}
	min := Shrink(r)
	if len(min.Program.Ops) != len(prog.Ops) {
		t.Fatalf("shrinker modified a healthy program: %d -> %d ops",
			len(prog.Ops), len(min.Program.Ops))
	}
}

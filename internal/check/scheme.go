package check

import (
	"fmt"
	"math"
	"sync"

	"counterlight/internal/core"
	"counterlight/internal/figures"
	"counterlight/internal/trace"
)

// SchemeIssue is one timing-pipeline invariant violation found by the
// sweep — the scheme-level analogue of a Divergence.
type SchemeIssue struct {
	Scheme string
	Seed   int64
	Detail string
}

func (i SchemeIssue) String() string {
	return fmt.Sprintf("scheme %s seed %d: %s", i.Scheme, i.Seed, i.Detail)
}

// schemeWindowDivisor shortens the Table-I warmup/measurement windows
// for the sweep: invariants hold at any window length, so the sweep
// runs 1/8-length windows to keep a multi-seed × five-scheme matrix
// fast.
const schemeWindowDivisor = 8

// SchemeSweep runs every registered timing scheme across the seeds on
// the §III pointer-chase microbenchmark and cross-checks Result
// invariants no scheme may break:
//
//   - the run makes progress (Instructions > 0, IPC > 0) and its
//     numbers are finite;
//   - BusUtilization and MemoHitRate are proper fractions;
//   - WBCounterless never exceeds WBTotal, and only mode-switching
//     schemes count writebacks at all (noenc/counterless report 0);
//   - noenc fetches no counters, so its memo hit rate is 0;
//   - re-running counterlight with identical config is bit-identical
//     (the simulator is deterministic by construction; a violation
//     means shared mutable state leaked between runs).
//
// Seeds fan out over the Runner's pool; scheme runs for one seed stay
// sequential so issues read in a stable order.
func SchemeSweep(seeds []int64, pool *figures.Runner) ([]SchemeIssue, error) {
	w := trace.MicroPointerChase()
	var mu sync.Mutex
	var issues []SchemeIssue
	found := func(scheme string, seed int64, format string, args ...any) {
		mu.Lock()
		issues = append(issues, SchemeIssue{Scheme: scheme, Seed: seed, Detail: fmt.Sprintf(format, args...)})
		mu.Unlock()
	}

	tasks := make([]func() error, len(seeds))
	for i, seed := range seeds {
		tasks[i] = func() error {
			for _, name := range core.SchemeNames() {
				s, ok := core.SchemeByName(name)
				if !ok {
					return fmt.Errorf("check: scheme %q vanished from the registry", name)
				}
				cfg := core.DefaultConfig(s)
				cfg.Seed = seed
				cfg.WarmupTime /= schemeWindowDivisor
				cfg.WindowTime /= schemeWindowDivisor
				res, err := core.Run(cfg, w)
				if err != nil {
					return fmt.Errorf("check: %s seed %d: %w", name, seed, err)
				}
				if res.Instructions == 0 || res.IPC <= 0 {
					found(name, seed, "no progress: %d instructions, IPC %g", res.Instructions, res.IPC)
				}
				for _, v := range []struct {
					name string
					val  float64
				}{
					{"IPC", res.IPC},
					{"BusUtilization", res.BusUtilization},
					{"MemoHitRate", res.MemoHitRate},
					{"AvgMissLatNS", res.AvgMissLatNS},
				} {
					if math.IsNaN(v.val) || math.IsInf(v.val, 0) {
						found(name, seed, "%s is not finite: %g", v.name, v.val)
					}
				}
				if res.BusUtilization < 0 || res.BusUtilization > 1 {
					found(name, seed, "BusUtilization %g outside [0,1]", res.BusUtilization)
				}
				if res.MemoHitRate < 0 || res.MemoHitRate > 1 {
					found(name, seed, "MemoHitRate %g outside [0,1]", res.MemoHitRate)
				}
				if res.WBCounterless > res.WBTotal {
					found(name, seed, "WBCounterless %d > WBTotal %d", res.WBCounterless, res.WBTotal)
				}
				switch name {
				case "noenc":
					if res.MemoHitRate != 0 {
						found(name, seed, "noenc has a memo hit rate (%g) but fetches no counters", res.MemoHitRate)
					}
					fallthrough
				case "counterless":
					if res.WBTotal != 0 {
						found(name, seed, "%s counted %d mode-decided writebacks", name, res.WBTotal)
					}
				}
			}

			// Determinism: the same config must reproduce the same
			// Result, field for field.
			cfg := core.DefaultConfig(core.CounterLight)
			cfg.Seed = seed
			cfg.WarmupTime /= schemeWindowDivisor
			cfg.WindowTime /= schemeWindowDivisor
			a, err := core.Run(cfg, w)
			if err != nil {
				return err
			}
			b, err := core.Run(cfg, w)
			if err != nil {
				return err
			}
			if a.Instructions != b.Instructions || a.IPC != b.IPC ||
				a.LLCMisses != b.LLCMisses || a.LLCWritebacks != b.LLCWritebacks ||
				a.BusUtilization != b.BusUtilization || a.MemoHitRate != b.MemoHitRate ||
				a.WBCounterless != b.WBCounterless || a.WBTotal != b.WBTotal {
				found("counterlight", seed,
					"nondeterministic rerun: instructions %d/%d, misses %d/%d, wb %d/%d",
					a.Instructions, b.Instructions, a.LLCMisses, b.LLCMisses, a.WBTotal, b.WBTotal)
			}
			return nil
		}
	}
	if err := pool.Do(tasks...); err != nil {
		return issues, err
	}
	return issues, nil
}

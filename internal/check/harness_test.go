package check

import (
	"testing"

	"counterlight/internal/epoch"
	"counterlight/internal/figures"
)

// pool returns a parallel runner for tests (the harness shares the
// figure sweeps' worker pool).
func pool(workers int) *figures.Runner {
	r := figures.NewRunner(true)
	r.Workers = workers
	return r
}

// TestDifferentialCleanSeeds is the harness's main self-check: across
// a spread of seeds, every variant must agree with the oracle on every
// operation and with its group peers on every read.
func TestDifferentialCleanSeeds(t *testing.T) {
	seeds := []int64{1, 2, 3, 7, 1234}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		prog := Generate(seed, DefaultGenConfig())
		results, div, err := Differential(prog, false)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if div != nil {
			t.Fatalf("seed %d: divergence: %v", seed, div)
		}
		for _, rr := range results {
			if rr.Stats.Writes == 0 || rr.Stats.Reads == 0 {
				t.Fatalf("seed %d: variant %s did no work: %+v", seed, rr.Variant, rr.Stats)
			}
		}
	}
}

// TestCounterSaturationSweep drives one block past the ctr-sat
// variant's tiny counter limit: the oracle must accept the §IV-C
// permanent switch to counterless mode (and reject any counter motion
// afterwards), while the default-limit variant keeps counting.
func TestCounterSaturationSweep(t *testing.T) {
	prog := Program{Seed: 42, Blocks: 1}
	for i := 0; i < satCounterLimit+8; i++ {
		prog.Ops = append(prog.Ops,
			Op{Kind: OpWrite, Block: 0, Mode: epoch.CounterMode, Pay: PayLow, PaySeed: uint32(i)},
			Op{Kind: OpRead, Block: 0},
		)
	}
	sat, err := Replay(Repro{Variant: "ctr-sat", Program: prog})
	if err != nil {
		t.Fatal(err)
	}
	if sat.Div != nil {
		t.Fatalf("ctr-sat saturation run diverged: %v", sat.Div)
	}
	last := sat.Reads[len(sat.Reads)-1]
	if last.Mode != epoch.Counterless {
		t.Fatalf("ctr-sat block should end permanently counterless, read mode %v", last.Mode)
	}
	base, err := Replay(Repro{Variant: "aes128", Program: prog})
	if err != nil {
		t.Fatal(err)
	}
	if base.Div != nil {
		t.Fatalf("default-limit run diverged: %v", base.Div)
	}
	if last := base.Reads[len(base.Reads)-1]; last.Mode != epoch.CounterMode {
		t.Fatalf("default-limit block should stay in counter mode, read mode %v", last.Mode)
	}
}

// TestKnownBadMetadataFlip is the acceptance check for the harness's
// teeth: flip one metadata (parity-chip) bit with correction disabled
// and the oracle must diverge — the chipkill contract says single-chip
// faults always correct, and the mutated engine can't.
func TestKnownBadMetadataFlip(t *testing.T) {
	prog := Program{Seed: 0, Blocks: 1, Ops: []Op{
		{Kind: OpWrite, Block: 0, Mode: epoch.CounterMode, Pay: PayText, PaySeed: 9},
		{Kind: OpFault, Block: 0, Chip: 9, Pattern: 1}, // one metadata bit
		{Kind: OpRead, Block: 0},
	}}
	// Healthy engine: corrected, no divergence.
	good, err := Replay(Repro{Variant: "aes128", Program: prog})
	if err != nil {
		t.Fatal(err)
	}
	if good.Div != nil {
		t.Fatalf("healthy engine diverged on a single metadata bit flip: %v", good.Div)
	}
	// Correction disabled: the same program must diverge...
	bad, err := Replay(Repro{Variant: "aes128", ECCOff: true, Program: prog})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Div == nil {
		t.Fatal("DisableCorrection engine did not diverge — the harness has no teeth")
	}
	if bad.Div.Kind != "uncorrected-single-fault" {
		t.Fatalf("wrong divergence kind %q: %v", bad.Div.Kind, bad.Div)
	}
	// ...and minimize to a token that replays the same failure.
	min := Shrink(Repro{Variant: "aes128", ECCOff: true, Program: prog})
	if n := len(min.Program.Ops); n != 3 {
		t.Fatalf("minimal repro should be write+fault+read, got %d ops", n)
	}
	rt, err := ParseToken(min.Token())
	if err != nil {
		t.Fatalf("minimized token does not parse: %v", err)
	}
	rr, err := Replay(rt)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Div == nil {
		t.Fatal("minimized token no longer reproduces the divergence")
	}
}

// TestTokenRoundTrip pins the repro-token encoding: every generated
// program must survive encode → parse bit-exactly.
func TestTokenRoundTrip(t *testing.T) {
	for _, seed := range []int64{0, 1, 99} {
		prog := Generate(seed, DefaultGenConfig())
		for _, eccOff := range []bool{false, true} {
			r := Repro{Variant: "multi-vm", ECCOff: eccOff, Program: prog}
			rt, err := ParseToken(r.Token())
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if rt.Variant != r.Variant || rt.ECCOff != r.ECCOff ||
				rt.Program.Seed != prog.Seed || rt.Program.Blocks != prog.Blocks ||
				len(rt.Program.Ops) != len(prog.Ops) {
				t.Fatalf("seed %d: token header did not round-trip: %+v", seed, rt)
			}
			for i := range prog.Ops {
				if rt.Program.Ops[i] != prog.Ops[i] {
					t.Fatalf("seed %d: op %d did not round-trip: %+v vs %+v",
						seed, i, rt.Program.Ops[i], prog.Ops[i])
				}
			}
		}
	}
}

// TestTokenRejectsGarbage pins the decoder's validation: truncation,
// bad magic, and out-of-range fields are errors, never panics or
// out-of-range programs.
func TestTokenRejectsGarbage(t *testing.T) {
	good := Repro{Variant: "aes128", Program: Generate(5, DefaultGenConfig())}
	raw := good.TokenBytes()
	if _, err := parseTokenBytes(raw[:0]); err == nil {
		t.Error("empty token accepted")
	}
	if _, err := parseTokenBytes([]byte("nope")); err == nil {
		t.Error("bad magic accepted")
	}
	for _, cut := range []int{5, 10, len(raw) / 2, len(raw) - 1} {
		if _, err := parseTokenBytes(raw[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if _, err := ParseToken("!!!not-base64!!!"); err == nil {
		t.Error("non-base64 token accepted")
	}
}

// TestCampaignDefaultClean runs a small default campaign end to end
// through the worker pool: zero divergences expected.
func TestCampaignDefaultClean(t *testing.T) {
	spec := DefaultCampaign(6, 100)
	if testing.Short() {
		spec.Seeds = 2
	}
	report, err := RunCampaign(spec, pool(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("default campaign failed: %+v", report.Failures)
	}
	if report.Programs != spec.Seeds {
		t.Fatalf("ran %d of %d programs", report.Programs, spec.Seeds)
	}
}

// TestCampaignKnownBad loads the checked-in known-bad campaign (ECC
// disabled, parity-region single-bit faults) and requires it to
// diverge, minimize, and verify — the CI self-test of the harness.
func TestCampaignKnownBad(t *testing.T) {
	spec, err := LoadCampaign("testdata/knownbad.json")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.ExpectDivergence || !spec.ECCOff {
		t.Fatalf("knownbad.json lost its point: %+v", spec)
	}
	if testing.Short() {
		spec.Seeds = 2
	}
	report, err := RunCampaign(spec, pool(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("known-bad campaign produced no verified minimized divergence: %d failures %+v",
			len(report.Failures), report.Failures)
	}
	for _, f := range report.Failures {
		if f.Token != "" && !f.Verified {
			t.Errorf("seed %d: minimized token failed to re-diverge: %s", f.Seed, f.Token)
		}
	}
}

// TestSchemeSweep cross-checks every registered timing scheme's Result
// invariants and counterlight's run-to-run determinism.
func TestSchemeSweep(t *testing.T) {
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	issues, err := SchemeSweep(seeds, pool(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, iss := range issues {
		t.Errorf("%v", iss)
	}
}

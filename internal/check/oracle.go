package check

import (
	"counterlight/internal/cipher"
	"counterlight/internal/epoch"
)

// oblock is the oracle's view of one memory block: the plaintext and
// mode of the last write, the counter the block should hold, and the
// XOR-accumulated fault pattern per chip. It is deliberately dumb — a
// handful of assignments with no crypto — so its correctness is
// auditable by eye.
type oblock struct {
	written bool
	plain   cipher.Block
	mode    epoch.Mode
	ctr     uint32 // last counter the block was encrypted under (0 if never counter-mode)
	vm      int    // VM whose key owns the block (last writer)
	permCL  bool   // counter saturated; counterless forever (§IV-C)
	chips   map[int]uint64
}

// Oracle is the reference model the engine is checked against: a plain
// map of block index → oblock. It never computes AES or MACs itself;
// the harness recomputes those through the engine's exported cipher
// handles and compares codewords bit for bit.
type Oracle struct {
	blocks map[uint32]*oblock
}

// NewOracle returns an empty reference model.
func NewOracle() *Oracle {
	return &Oracle{blocks: make(map[uint32]*oblock)}
}

// block returns the model for blk, creating an unwritten one.
func (o *Oracle) block(blk uint32) *oblock {
	b, ok := o.blocks[blk]
	if !ok {
		b = &oblock{chips: make(map[int]uint64)}
		o.blocks[blk] = b
	}
	return b
}

// noteWrite records a completed write: new plaintext and mode, all
// outstanding faults gone (the write overwrote the whole codeword).
func (o *Oracle) noteWrite(blk uint32, plain cipher.Block, mode epoch.Mode, ctr uint32, vm int, permCL bool) {
	b := o.block(blk)
	b.written = true
	b.plain = plain
	b.mode = mode
	b.ctr = ctr
	b.vm = vm
	b.permCL = permCL
	clear(b.chips)
}

// noteFault XOR-accumulates a fault pattern on one chip. Two identical
// faults cancel; a zero accumulated pattern means the chip is clean.
func (o *Oracle) noteFault(blk uint32, chip int, pattern uint64) {
	b := o.block(blk)
	b.chips[chip] ^= pattern
	if b.chips[chip] == 0 {
		delete(b.chips, chip)
	}
}

// faultyChips returns the chips whose accumulated pattern is nonzero.
func (b *oblock) faultyChips() []int {
	out := make([]int, 0, len(b.chips))
	for c := range b.chips {
		out = append(out, c)
	}
	return out
}

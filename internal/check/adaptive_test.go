package check

import (
	"testing"

	"counterlight/internal/obs/flight"
)

// TestConcurrentReplayAdaptiveWatermark is the acceptance gate for
// the measurement-driven degradation policy: seeded programs race
// through a pool whose watermark controller re-evaluates every two
// batches — so watermark moves genuinely race the submitters — and
// every journal must still replay bit-identical against the serial
// oracle. Replay programs carry explicit modes only, which is exactly
// the point: adaptation is allowed to move the Auto degradation knee
// and nothing else, so no watermark position may ever change a
// response, a stored mode, or an engine counter. CI runs this under
// -race via `make concurrent-race`.
func TestConcurrentReplayAdaptiveWatermark(t *testing.T) {
	ccfg := ConcurrentConfig{
		Submitters:        4,
		Shards:            4,
		AdaptiveWatermark: true,
	}
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	moved := uint64(0)
	for seed := int64(1); seed <= int64(seeds); seed++ {
		prog := Generate(seed, ConcurrentGenConfig())
		res, err := ConcurrentReplay(prog, ccfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Div != nil {
			t.Fatalf("seed %d diverged with adaptive watermark on: %s", seed, res.Div.String())
		}
		moved += res.WatermarkMoves
	}
	// The proof is vacuous if the controller never actually moved;
	// with AdaptEvery=2 and hundreds of batches per program it must.
	if moved == 0 {
		t.Fatal("watermark never moved across the campaign: adaptation did not race the replay")
	}
	t.Logf("%d watermark moves across %d seeds, all journals bit-identical", moved, seeds)

	// Journal-level identity: the same deterministic partitioning
	// (Submitters == Shards) with adaptation on and off must produce
	// bit-identical journals entry for entry.
	prog := Generate(3, ConcurrentGenConfig())
	off := concurrentJournal(t, prog, ConcurrentConfig{Submitters: 4, Shards: 4})
	on := concurrentJournal(t, prog, ccfg)
	if len(off) != len(on) {
		t.Fatalf("journal lengths differ: %d static vs %d adaptive", len(off), len(on))
	}
	for i := range off {
		a, b := off[i], on[i]
		if a.Seq != b.Seq || a.Req.Tag != b.Req.Tag || a.Req.Mode != b.Req.Mode ||
			a.Resp.Mode != b.Resp.Mode || a.Resp.Plain != b.Resp.Plain ||
			a.Resp.Info != b.Resp.Info || (a.Resp.Err == nil) != (b.Resp.Err == nil) {
			t.Fatalf("journal entry %d differs with adaptive watermark on:\n  static:   %+v\n  adaptive: %+v", i, a, b)
		}
	}
}

// TestConcurrentReplayFlightCapture proves the harness's black-box
// hook: a replay with a flight ring attached records pool activity,
// and a forced divergence (a corrupted journal check via an
// impossible variant is hard to stage, so we check the pass-path
// plumbing plus the divergence event API) leaves the ring dumpable.
func TestConcurrentReplayFlightCapture(t *testing.T) {
	rec := flight.NewRing(512)
	prog := Generate(5, ConcurrentGenConfig())
	res, err := ConcurrentReplay(prog, ConcurrentConfig{
		Submitters:        4,
		Shards:            4,
		AdaptiveWatermark: true,
		Flight:            rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Div != nil {
		t.Fatalf("unexpected divergence: %s", res.Div.String())
	}
	if rec.Recorded() == 0 {
		t.Fatal("flight ring recorded nothing during the replay")
	}
	kinds := map[flight.Kind]bool{}
	for _, ev := range rec.Snapshot() {
		kinds[ev.Kind] = true
	}
	if !kinds[flight.KindSubmit] {
		t.Error("no sampled submit events captured")
	}
	if !kinds[flight.KindWatermark] {
		t.Error("no watermark events captured despite adaptation")
	}
}

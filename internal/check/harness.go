package check

import (
	"fmt"

	"counterlight/internal/cipher"
	"counterlight/internal/core"
	"counterlight/internal/ctrblock"
	"counterlight/internal/ecc"
	"counterlight/internal/entropy"
	"counterlight/internal/epoch"
)

// Divergence is one disagreement between the engine and the oracle (or
// between two variants of a differential group). Kind is a stable slug
// campaigns can aggregate on; Detail is human-oriented.
type Divergence struct {
	OpIndex int
	Kind    string
	Detail  string
}

func (d *Divergence) String() string {
	return fmt.Sprintf("op %d: %s: %s", d.OpIndex, d.Kind, d.Detail)
}

// ReadOutcome is the externally visible result of one OpRead — the
// tuple that must be bit-identical across a differential group. Info
// carries the full service detail (memo hit, correction, bad chip);
// cross-variant comparison ignores it (hit rates legitimately differ
// across memo sizes) but the concurrent differential mode compares it
// bit-for-bit against the serialized replay.
type ReadOutcome struct {
	OpIndex int
	OK      bool
	Plain   cipher.Block
	Mode    epoch.Mode
	Info    core.ReadInfo
}

// RunResult is one program replayed on one variant. Div is nil when
// the engine agreed with the oracle on every operation.
type RunResult struct {
	Variant string
	Reads   []ReadOutcome
	Stats   core.EngineStats
	Div     *Divergence
}

// checker walks a program op by op, driving the engine and the oracle
// in lockstep.
type checker struct {
	e      *core.Engine
	v      Variant
	oracle *Oracle
	limit  uint32 // effective counter limit
}

// newCheckerFor builds a fresh checker (engine + oracle) for one
// variant — the shared setup of Replay and the concurrent journal
// replay in concurrent.go.
func newCheckerFor(v Variant, eccOff bool) (*checker, error) {
	opts := v.Options(eccOff)
	e, err := core.NewEngine(opts)
	if err != nil {
		return nil, fmt.Errorf("check: variant %s: %w", v.Name, err)
	}
	limit := opts.CounterLimit
	if limit == 0 {
		limit = ctrblock.CounterMax
	}
	return &checker{e: e, v: v, oracle: NewOracle(), limit: limit}, nil
}

// Replay runs the repro's program against its variant's engine,
// checking every operation against the oracle. It stops at the first
// divergence (the shrinker depends on that). The returned error is a
// setup failure only (unknown variant); divergences are data, not
// errors.
func Replay(r Repro) (RunResult, error) {
	v, err := VariantByName(r.Variant)
	if err != nil {
		return RunResult{}, err
	}
	c, err := newCheckerFor(v, r.ECCOff)
	if err != nil {
		return RunResult{}, err
	}
	res := RunResult{Variant: v.Name}
	for i, op := range r.Program.Ops {
		var div *Divergence
		switch op.Kind {
		case OpWrite:
			div = c.write(op)
		case OpRead:
			var out ReadOutcome
			out, div = c.read(op)
			out.OpIndex = i
			res.Reads = append(res.Reads, out)
		case OpFault:
			div = c.fault(op)
		case OpFlush:
			// NVM-only: the serial engine has no persistence domain, so
			// a flush changes nothing observable here.
		}
		if div != nil {
			div.OpIndex = i
			res.Div = div
			break
		}
	}
	res.Stats = c.e.Stats()
	return res, nil
}

func div(kind, format string, args ...any) *Divergence {
	return &Divergence{Kind: kind, Detail: fmt.Sprintf(format, args...)}
}

// write drives one OpWrite and checks the stored codeword against an
// independent recomputation from the oracle's plaintext.
func (c *checker) write(op Op) *Divergence {
	addr := uint64(op.Block) * 64
	vm := int(op.VM) % c.v.VMs
	plain := op.Payload()
	b := c.oracle.block(op.Block)
	prevCtr := b.ctr
	prevPermCL := b.permCL

	if err := c.e.WriteAs(vm, addr, plain, op.Mode); err != nil {
		return div("write-error", "WriteAs(vm=%d, %#x, %v) failed: %v", vm, addr, op.Mode, err)
	}
	cw, ok := c.e.Snapshot(addr)
	if !ok {
		return div("write-lost", "no codeword stored at %#x after write", addr)
	}
	meta := cw.DecodeMeta()
	permCL := c.e.IsPermanentCounterless(addr)
	ctrNow := c.e.Counters().Counter(addr)

	switch {
	case meta == ctrblock.CounterlessFlag:
		// Counterless-effective write: requested, forced by an earlier
		// saturation, or saturating right now (§IV-C).
		if op.Mode == epoch.CounterMode {
			if !permCL {
				return div("mode-mismatch", "counter-mode write stored counterless without permanent flag at %#x", addr)
			}
			if !prevPermCL {
				// Fresh saturation claim: legal only when the block's
				// own counter ran out of headroom. The engine falls
				// back from an over-limit W to old+1, so saturation is
				// strictly per-block (§IV-C): old+1 must exceed the
				// limit, i.e. the counter was already sitting on it.
				if uint64(prevCtr)+1 <= uint64(c.limit) {
					return div("spurious-saturation",
						"block %#x saturated with ctr=%d, limit=%d — the counter had headroom",
						addr, prevCtr, c.limit)
				}
			}
		}
		if ctrNow != prevCtr {
			return div("counter-moved", "counterless write moved counter %d -> %d at %#x", prevCtr, ctrNow, addr)
		}
		// Independent recomputation through the VM's own key — on the
		// reference AES backend, so an engine running a fast backend
		// (ttable, stdlib) is checked against a genuinely independent
		// implementation rather than against itself.
		cls := c.e.ReferenceCounterlessCipher(vm)
		ct := cls.Encrypt(addr, plain)
		mac := cls.MAC(addr, ct, uint32(ctrblock.CounterlessFlag))
		if want := ecc.Encode(ct, mac, ctrblock.CounterlessFlag); cw != want {
			return div("codeword-mismatch", "counterless codeword at %#x differs from direct recomputation", addr)
		}
		c.oracle.noteWrite(op.Block, plain, epoch.Counterless, prevCtr, vm, permCL)

	case meta <= ctrblock.CounterMax:
		if op.Mode != epoch.CounterMode {
			return div("mode-mismatch", "counterless write stored counter metadata %d at %#x", meta, addr)
		}
		if permCL || prevPermCL {
			return div("saturation-ignored", "permanently counterless block %#x wrote counter metadata %d", addr, meta)
		}
		if uint64(ctrNow) != meta {
			return div("meta-counter-mismatch", "stored meta %d but counter store says %d at %#x", meta, ctrNow, addr)
		}
		if ctrNow <= prevCtr {
			return div("counter-not-monotonic", "counter %d -> %d at %#x", prevCtr, ctrNow, addr)
		}
		if ctrNow > c.limit {
			return div("counter-over-limit", "counter %d exceeds limit %d at %#x", ctrNow, c.limit, addr)
		}
		// Independent recomputation through the global counter key,
		// again on the reference backend (see the counterless arm).
		cm := c.e.ReferenceCounterCipher()
		ct := cm.Encrypt(meta, addr, plain)
		mac := cm.MAC(meta, addr, plain, ctrNow)
		if want := ecc.Encode(ct, mac, meta); cw != want {
			return div("codeword-mismatch", "counter-mode codeword at %#x differs from direct recomputation", addr)
		}
		// RMCC invariant: a memoized pad must equal direct AES.
		if c.e.Memo().Peek(ctrNow) {
			w, _ := c.e.Memo().Lookup(ctrNow)
			if w != cm.CounterAES(uint64(ctrNow)) {
				return div("memo-pad-mismatch", "memoized counter-AES for ctr=%d differs from direct AES", ctrNow)
			}
		}
		c.oracle.noteWrite(op.Block, plain, epoch.CounterMode, ctrNow, vm, false)

	default:
		return div("meta-illegal", "stored metadata %#x is neither a counter nor the flag at %#x", meta, addr)
	}
	return nil
}

// read drives one OpRead and checks the outcome against the oracle's
// contract: clean blocks read back exactly, single-chip faults always
// correct (chipkill), multi-chip faults are always detected.
func (c *checker) read(op Op) (ReadOutcome, *Divergence) {
	addr := uint64(op.Block) * 64
	b := c.oracle.block(op.Block)
	got, info, err := c.e.Read(addr)
	out := ReadOutcome{OK: err == nil, Plain: got, Mode: info.Mode, Info: info}

	if !b.written {
		if err == nil {
			return out, div("unwritten-read-succeeded", "read of never-written block %#x returned data", addr)
		}
		return out, nil
	}
	faulty := b.faultyChips()
	switch len(faulty) {
	case 0:
		if err != nil {
			return out, div("clean-read-failed", "fault-free block %#x: %v", addr, err)
		}
		if got != b.plain {
			return out, div("plaintext-mismatch", "fault-free block %#x decrypted to wrong plaintext", addr)
		}
		if info.Mode != b.mode {
			return out, div("mode-mismatch", "block %#x read as %v, oracle says %v", addr, info.Mode, b.mode)
		}
		if info.Corrected {
			return out, div("phantom-correction", "fault-free block %#x reported a correction (chip %d)", addr, info.BadChip)
		}
	case 1:
		// Chipkill contract: a single faulty chip always corrects.
		// This expectation deliberately ignores DisableCorrection —
		// the known-bad mutation must diverge here.
		if err != nil {
			return out, div("uncorrected-single-fault", "single-chip fault (chip %d) at %#x not corrected: %v", faulty[0], addr, err)
		}
		if got != b.plain {
			return out, div("plaintext-mismatch", "corrected block %#x decrypted to wrong plaintext", addr)
		}
		if !info.Corrected {
			return out, div("silent-fault", "single-chip fault (chip %d) at %#x read without correction", faulty[0], addr)
		}
		if info.BadChip != faulty[0] {
			return out, div("wrong-bad-chip", "correction at %#x blamed chip %d, fault was on chip %d", addr, info.BadChip, faulty[0])
		}
		if info.Mode != b.mode {
			return out, div("mode-mismatch", "corrected block %#x read as %v, oracle says %v", addr, info.Mode, b.mode)
		}
		if info.EntropyResolved && entropy.Bits(b.plain) >= entropy.Threshold {
			return out, div("entropy-overconfident",
				"entropy disambiguation accepted a high-entropy plaintext (%.3f bits) at %#x",
				entropy.Bits(b.plain), addr)
		}
	default:
		// Beyond chipkill's reach: detection (a DUE) is the only
		// acceptable outcome; any "success" is silent corruption.
		if err == nil {
			return out, div("multi-fault-consumed", "%d-chip fault at %#x read back without an error", len(faulty), addr)
		}
	}
	return out, nil
}

// fault drives one OpFault. Faulting a never-written block is a no-op
// (the engine has no codeword to corrupt); on a written block the
// injection must succeed and is mirrored into the oracle.
func (c *checker) fault(op Op) *Divergence {
	addr := uint64(op.Block) * 64
	b := c.oracle.block(op.Block)
	pattern := op.Pattern
	if op.Stuck {
		cw, ok := c.e.Snapshot(addr)
		if !ok {
			return nil
		}
		switch {
		case int(op.Chip) < ecc.DataChips:
			pattern = cw.Data[op.Chip]
		case int(op.Chip) == ecc.MACChip:
			pattern = cw.MAC
		default:
			pattern = cw.Parity
		}
		if pattern == 0 {
			pattern = 1
		}
	}
	err := c.e.InjectFault(addr, int(op.Chip), pattern)
	if !b.written {
		if err == nil {
			return div("fault-on-unwritten", "injected a fault into never-written block %#x", addr)
		}
		return nil
	}
	if err != nil {
		return div("fault-rejected", "InjectFault(%#x, chip %d): %v", addr, op.Chip, err)
	}
	c.oracle.noteFault(op.Block, int(op.Chip), pattern)
	return nil
}

// Differential replays one program across the whole variant matrix and
// cross-checks read outcomes within each comparable group. It returns
// every per-variant result plus the first divergence found: a
// per-variant oracle disagreement takes precedence (it shrinks
// better); otherwise a cross-variant outcome mismatch.
func Differential(prog Program, eccOff bool) ([]RunResult, *Divergence, error) {
	results := make([]RunResult, 0, len(Variants))
	for _, v := range Variants {
		rr, err := Replay(Repro{Variant: v.Name, ECCOff: eccOff, Program: prog})
		if err != nil {
			return nil, nil, err
		}
		results = append(results, rr)
	}
	for _, rr := range results {
		if rr.Div != nil {
			d := *rr.Div
			d.Detail = fmt.Sprintf("[%s] %s", rr.Variant, d.Detail)
			return results, &d, nil
		}
	}
	// Cross-variant: within a group, every read must agree exactly.
	ref := make(map[string]*RunResult)
	for i := range results {
		rr := &results[i]
		v := Variants[i]
		base, ok := ref[v.Group]
		if !ok {
			ref[v.Group] = rr
			continue
		}
		if len(rr.Reads) != len(base.Reads) {
			return results, div("differential", "[%s vs %s] read counts differ: %d vs %d",
				base.Variant, rr.Variant, len(base.Reads), len(rr.Reads)), nil
		}
		for j := range rr.Reads {
			a, b := base.Reads[j], rr.Reads[j]
			if a.OK != b.OK || a.Mode != b.Mode || a.Plain != b.Plain {
				d := div("differential", "[%s vs %s] read outcomes differ (ok %v/%v, mode %v/%v)",
					base.Variant, rr.Variant, a.OK, b.OK, a.Mode, b.Mode)
				d.OpIndex = a.OpIndex
				return results, d, nil
			}
		}
	}
	return results, nil, nil
}

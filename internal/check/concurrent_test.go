package check

import (
	"runtime"
	"testing"

	"counterlight/internal/epoch"
	"counterlight/internal/figures"
	"counterlight/internal/mcpool"
)

// TestConcurrentDifferentialCampaign is the concurrent acceptance
// gate: hundreds of seeded programs race through the sharded pool and
// every shard journal must replay serially with zero divergences —
// plaintexts, ReadInfo, modes, and EngineStats all bit-identical.
// CI runs this under -race, making it a data-race probe of the whole
// Submit/batch/apply path as well.
func TestConcurrentDifferentialCampaign(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 24
	}
	runner := figures.NewRunner(true)
	runner.Workers = runtime.GOMAXPROCS(0)
	for _, variant := range []string{"aes128", "multi-vm"} {
		report, err := RunConcurrentCampaign(seeds, 1, ConcurrentConfig{Variant: variant}, runner, nil)
		if err != nil {
			t.Fatalf("variant %s: %v", variant, err)
		}
		if report.Programs != seeds {
			t.Fatalf("variant %s: ran %d/%d programs", variant, report.Programs, seeds)
		}
		for _, f := range report.Failures {
			t.Errorf("variant %s seed %d: %s", variant, f.Seed, f.Div.String())
		}
		if !report.OK() {
			t.Fatalf("variant %s: %d/%d seeds diverged", variant, len(report.Failures), seeds)
		}
	}
}

// TestConcurrentSaturationInterleaving replays the §IV-C saturation
// handoff — the lost-update window the satellite audit flagged —
// under racing submitters on the tiny-counter-limit variant, and
// demonstrates the run is deterministic when each submitter feeds
// exactly one shard (Submitters == Shards makes block ≡ g (mod G)
// the shard-routing function itself): two runs must produce
// bit-identical journals, and the serialized replay must agree with
// both.
func TestConcurrentSaturationInterleaving(t *testing.T) {
	ccfg := ConcurrentConfig{Submitters: 4, Shards: 4, Variant: "ctr-sat"}
	// Few blocks, write-heavy: counters cross satCounterLimit fast.
	cfg := ConcurrentGenConfig()
	cfg.Ops = 600
	cfg.Blocks = 32
	cfg.Hot = 4
	cfg.FaultRate = 0.01
	prog := Generate(7, cfg)

	var prev []mcpool.Applied
	for run := 0; run < 2; run++ {
		res, err := ConcurrentReplay(prog, ccfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Div != nil {
			t.Fatalf("run %d diverged: %s", run, res.Div.String())
		}
		// Re-drive the pool directly to capture the journals (the
		// replay API keeps its pool internal), same partitioning.
		journal := concurrentJournal(t, prog, ccfg)
		forced := 0
		for _, e := range journal {
			if e.Req.Kind == mcpool.OpWrite && e.Req.Mode == epoch.CounterMode && e.Resp.Mode == epoch.Counterless {
				forced++
			}
		}
		if forced == 0 {
			t.Fatal("no counter-mode write was forced counterless: the saturation handoff was never exercised")
		}
		if run == 0 {
			prev = journal
			continue
		}
		if len(journal) != len(prev) {
			t.Fatalf("journal lengths differ across identical runs: %d vs %d", len(prev), len(journal))
		}
		for i := range journal {
			a, b := prev[i], journal[i]
			if a.Seq != b.Seq || a.Req.Tag != b.Req.Tag || a.Req.Mode != b.Req.Mode ||
				a.Resp.Mode != b.Resp.Mode || a.Resp.Plain != b.Resp.Plain ||
				(a.Resp.Err == nil) != (b.Resp.Err == nil) {
				t.Fatalf("journal entry %d differs across identical runs:\n  %+v\n  %+v", i, a, b)
			}
		}
	}
}

// TestConcurrentReplayAttributionBitIdentical is the acceptance gate
// for latency attribution: the same seeded programs must replay with
// zero divergences with attribution on (the full plaintext / ReadInfo
// / mode / EngineStats differential check against the serial oracle
// replay), and — on the deterministic Submitters == Shards
// partitioning — the applied-op journals with attribution on and off
// must be bit-identical. Spans observe the pipeline; they must not
// steer it.
func TestConcurrentReplayAttributionBitIdentical(t *testing.T) {
	ccfg := ConcurrentConfig{Submitters: 4, Shards: 4, Attribution: true}
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		prog := Generate(seed, ConcurrentGenConfig())
		res, err := ConcurrentReplay(prog, ccfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Div != nil {
			t.Fatalf("seed %d diverged with attribution on: %s", seed, res.Div.String())
		}
	}

	prog := Generate(3, ConcurrentGenConfig())
	off := concurrentJournal(t, prog, ConcurrentConfig{Submitters: 4, Shards: 4})
	on := concurrentJournal(t, prog, ccfg)
	if len(off) != len(on) {
		t.Fatalf("journal lengths differ: %d off vs %d on", len(off), len(on))
	}
	for i := range off {
		a, b := off[i], on[i]
		if a.Seq != b.Seq || a.Req.Tag != b.Req.Tag || a.Req.Mode != b.Req.Mode ||
			a.Resp.Mode != b.Resp.Mode || a.Resp.Plain != b.Resp.Plain ||
			a.Resp.Info != b.Resp.Info || (a.Resp.Err == nil) != (b.Resp.Err == nil) {
			t.Fatalf("journal entry %d differs with attribution on:\n  off: %+v\n  on:  %+v", i, a, b)
		}
	}
}

// concurrentJournal runs prog through a fresh pool with the same
// partitioning ConcurrentReplay uses and returns the concatenated
// per-shard journals (shard-major order — deterministic when
// Submitters == Shards).
func concurrentJournal(t *testing.T, prog Program, ccfg ConcurrentConfig) []mcpool.Applied {
	t.Helper()
	ccfg = ccfg.withDefaults()
	v, err := VariantByName(ccfg.Variant)
	if err != nil {
		t.Fatal(err)
	}
	pcfg := mcpool.Config{
		Shards:      ccfg.Shards,
		QueueDepth:  ccfg.QueueDepth,
		BatchMax:    ccfg.BatchMax,
		Watermark:   -1,
		Journal:     true,
		Attribution: ccfg.Attribution,
		Flight:      ccfg.Flight,
		Engine:      v.Options(false),
	}
	if ccfg.AdaptiveWatermark {
		pcfg.AdaptiveWatermark = true
		pcfg.AdaptEvery = 2
	}
	pool, err := mcpool.New(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	done := make(chan error, ccfg.Submitters)
	for g := 0; g < ccfg.Submitters; g++ {
		go func(g int) {
			var futs []*mcpool.Future
			for i, op := range prog.Ops {
				if int(op.Block)%ccfg.Submitters != g {
					continue
				}
				req := mcpool.Request{Addr: uint64(op.Block) * 64, Tag: i}
				switch op.Kind {
				case OpWrite:
					req.Kind = mcpool.OpWrite
					req.VM = int(op.VM) % v.VMs
					req.Mode = op.Mode
					req.Data = op.Payload()
				case OpRead:
					req.Kind = mcpool.OpRead
				case OpFault:
					req.Kind = mcpool.OpFault
					req.Chip = int(op.Chip)
					req.Pattern = op.Pattern
				}
				fut, err := pool.Submit(req)
				if err != nil {
					done <- err
					return
				}
				futs = append(futs, fut)
			}
			for _, fut := range futs {
				fut.Wait()
			}
			done <- nil
		}(g)
	}
	for g := 0; g < ccfg.Submitters; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	pool.Flush()
	var journal []mcpool.Applied
	for s := 0; s < pool.NumShards(); s++ {
		journal = append(journal, pool.JournalOf(s)...)
	}
	return journal
}

package check

import (
	"encoding/base64"
	"encoding/binary"
	"fmt"

	"counterlight/internal/cipher"
	"counterlight/internal/epoch"
)

// OpKind is one program step's operation.
type OpKind uint8

const (
	// OpWrite encrypts and stores a block.
	OpWrite OpKind = iota
	// OpRead fetches, verifies, and decrypts a block.
	OpRead
	// OpFault XORs a pattern into one chip of a stored block.
	OpFault
	// OpFlush drains the NVM write-pending metadata queue (crash
	// programs only; serial and concurrent replay skip/reject it).
	OpFlush
)

// PayloadKind selects how a write's plaintext is materialized.
// Payloads are derived, not stored: a (kind, seed) pair expands
// deterministically to 64 bytes, which keeps repro tokens small and
// lets the shrinker canonicalize data.
type PayloadKind uint8

const (
	// PayZero is the all-zero block (entropy 0).
	PayZero PayloadKind = iota
	// PayLow repeats a 4-byte pattern (entropy ≤ 2 bits — always
	// below the §IV-E threshold, so the entropy classifier must
	// recognise it as plaintext).
	PayLow
	// PayText draws from a 16-symbol alphabet (entropy ≤ 4 bits,
	// text-like).
	PayText
	// PayRandom is a full-entropy pseudo-random block (which the
	// classifier is allowed to mistake for a wrong decryption).
	PayRandom
)

// Op is one generated program step. Addresses are block indices (the
// byte address is Block*64); fault sites are concrete so replays are
// exact.
type Op struct {
	Kind    OpKind
	Block   uint32
	VM      uint8       // write: VM id (clamped to the variant's VM count)
	Mode    epoch.Mode  // write: requested encryption mode
	Pay     PayloadKind // write: payload class
	PaySeed uint32      // write: payload expansion seed
	Chip    uint8       // fault: chip 0..9
	Stuck   bool        // fault: stuck-at-zero (pattern read from the chip)
	Pattern uint64      // fault: XOR pattern (ignored when Stuck)
}

// splitmix is the 64-bit SplitMix finalizer, the payload expander's
// PRNG step.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Payload materializes the write's 64-byte plaintext.
func (op Op) Payload() cipher.Block {
	var b cipher.Block
	switch op.Pay {
	case PayZero:
		// all zero
	case PayLow:
		s := splitmix(uint64(op.PaySeed))
		for i := range b {
			b[i] = byte(s >> (8 * (uint(i) % 4)))
		}
	case PayText:
		x := uint64(op.PaySeed)
		const alphabet = "etaoin shrdlu.\nE"
		for i := range b {
			x = splitmix(x)
			b[i] = alphabet[x&15]
		}
	case PayRandom:
		x := uint64(op.PaySeed) ^ 0xF0F0F0F0
		for i := 0; i < len(b); i += 8 {
			x = splitmix(x)
			binary.LittleEndian.PutUint64(b[i:], x)
		}
	}
	return b
}

// Program is a replayable op sequence over a fixed block count.
type Program struct {
	Seed   int64 // generator seed (printed on every failure)
	Blocks uint32
	Ops    []Op
}

// Repro pairs a program with the engine variant it ran on — exactly
// what a token must capture to replay a failure. Crash repros
// additionally pin the persistence step at which power fails, so a
// token replays the exact crash, not just the workload.
type Repro struct {
	Variant string
	ECCOff  bool // run with trial-and-error correction disabled
	Program Program

	Crash         bool   // NVM crash repro: cut power at CrashStep
	CrashStep     uint64 // 1-based persistence step the crash fires on
	BreakRecovery bool   // arm the intentional recovery bug (self-test)
}

// Program/token size caps: decode rejects anything bigger, so a
// hostile or fuzzer-mangled token cannot allocate unbounded state.
const (
	maxTokenOps    = 1 << 17
	maxTokenBlocks = 1 << 16
)

const tokenMagic = "clk1"

// TokenBytes is the raw (pre-base64) encoding of the repro.
func (r Repro) TokenBytes() []byte {
	buf := []byte(tokenMagic)
	buf = append(buf, byte(len(r.Variant)))
	buf = append(buf, r.Variant...)
	var flags byte
	if r.ECCOff {
		flags |= 1
	}
	if r.Crash {
		flags |= 4
	}
	if r.BreakRecovery {
		flags |= 8
	}
	buf = append(buf, flags)
	if r.Crash {
		buf = binary.AppendUvarint(buf, r.CrashStep)
	}
	buf = binary.AppendUvarint(buf, uint64(r.Program.Seed))
	buf = binary.AppendUvarint(buf, uint64(r.Program.Blocks))
	buf = binary.AppendUvarint(buf, uint64(len(r.Program.Ops)))
	for _, op := range r.Program.Ops {
		buf = append(buf, byte(op.Kind))
		buf = binary.AppendUvarint(buf, uint64(op.Block))
		switch op.Kind {
		case OpWrite:
			buf = append(buf, op.VM, byte(op.Mode), byte(op.Pay))
			buf = binary.AppendUvarint(buf, uint64(op.PaySeed))
		case OpFault:
			var fl byte
			if op.Stuck {
				fl |= 1
			}
			buf = append(buf, op.Chip, fl)
			buf = binary.AppendUvarint(buf, op.Pattern)
		}
	}
	return buf
}

// Token renders the repro as the string clcheck -repro accepts.
func (r Repro) Token() string {
	return base64.RawURLEncoding.EncodeToString(r.TokenBytes())
}

// byteReader walks the raw token, failing sticky on truncation.
type byteReader struct {
	buf []byte
	pos int
	err error
}

func (b *byteReader) u8() byte {
	if b.err != nil {
		return 0
	}
	if b.pos >= len(b.buf) {
		b.err = fmt.Errorf("check: truncated token at byte %d", b.pos)
		return 0
	}
	v := b.buf[b.pos]
	b.pos++
	return v
}

func (b *byteReader) uvarint() uint64 {
	if b.err != nil {
		return 0
	}
	v, n := binary.Uvarint(b.buf[b.pos:])
	if n <= 0 {
		b.err = fmt.Errorf("check: bad varint at byte %d", b.pos)
		return 0
	}
	b.pos += n
	return v
}

// parseTokenBytes decodes and validates a raw token. Every field is
// bounds-checked; the returned repro is always safe to Replay.
func parseTokenBytes(data []byte) (Repro, error) {
	var r Repro
	if len(data) < len(tokenMagic) || string(data[:len(tokenMagic)]) != tokenMagic {
		return r, fmt.Errorf("check: not a repro token (bad magic)")
	}
	br := &byteReader{buf: data, pos: len(tokenMagic)}
	nameLen := int(br.u8())
	if br.err == nil && br.pos+nameLen > len(data) {
		return r, fmt.Errorf("check: truncated variant name")
	}
	if br.err == nil {
		r.Variant = string(data[br.pos : br.pos+nameLen])
		br.pos += nameLen
	}
	flags := br.u8()
	if flags&^byte(1|4|8) != 0 {
		return r, fmt.Errorf("check: unknown token flags %#x", flags)
	}
	r.ECCOff = flags&1 != 0
	r.Crash = flags&4 != 0
	r.BreakRecovery = flags&8 != 0
	if r.BreakRecovery && !r.Crash {
		return r, fmt.Errorf("check: break-recovery flag without crash flag")
	}
	if r.Crash {
		r.CrashStep = br.uvarint()
	}
	r.Program.Seed = int64(br.uvarint())
	blocks := br.uvarint()
	nops := br.uvarint()
	if br.err != nil {
		return r, br.err
	}
	if blocks == 0 || blocks > maxTokenBlocks {
		return r, fmt.Errorf("check: block count %d out of [1,%d]", blocks, maxTokenBlocks)
	}
	if nops > maxTokenOps {
		return r, fmt.Errorf("check: op count %d exceeds %d", nops, maxTokenOps)
	}
	r.Program.Blocks = uint32(blocks)
	r.Program.Ops = make([]Op, 0, nops)
	for i := uint64(0); i < nops; i++ {
		var op Op
		op.Kind = OpKind(br.u8())
		op.Block = uint32(br.uvarint())
		switch op.Kind {
		case OpWrite:
			op.VM = br.u8()
			m := br.u8()
			if m > 1 {
				return r, fmt.Errorf("check: op %d: bad mode %d", i, m)
			}
			op.Mode = epoch.Mode(m)
			p := br.u8()
			if p > uint8(PayRandom) {
				return r, fmt.Errorf("check: op %d: bad payload kind %d", i, p)
			}
			op.Pay = PayloadKind(p)
			op.PaySeed = uint32(br.uvarint())
		case OpRead, OpFlush:
			// block only (flush ignores it but keeps the frame uniform)
		case OpFault:
			op.Chip = br.u8()
			fl := br.u8()
			op.Stuck = fl&1 != 0
			op.Pattern = br.uvarint()
			if op.Chip > 9 {
				return r, fmt.Errorf("check: op %d: bad chip %d", i, op.Chip)
			}
		default:
			return r, fmt.Errorf("check: op %d: unknown kind %d", i, op.Kind)
		}
		if br.err != nil {
			return r, br.err
		}
		if op.Block >= r.Program.Blocks {
			return r, fmt.Errorf("check: op %d: block %d out of range %d", i, op.Block, r.Program.Blocks)
		}
		r.Program.Ops = append(r.Program.Ops, op)
	}
	return r, br.err
}

// ParseToken decodes a clcheck -repro token.
func ParseToken(s string) (Repro, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return Repro{}, fmt.Errorf("check: token is not base64url: %w", err)
	}
	return parseTokenBytes(raw)
}

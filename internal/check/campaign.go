package check

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"counterlight/internal/fault"
	"counterlight/internal/figures"
	"counterlight/internal/obs"
)

// CampaignSpec is a JSON-loadable fuzz campaign: how many seeded
// programs to generate, what faults to sprinkle, which variants to run
// them on, and whether divergences are the failure mode or the whole
// point (ExpectDivergence is the known-bad self-test: a campaign with
// correction disabled MUST diverge, or the harness itself is broken).
type CampaignSpec struct {
	Name      string  `json:"name"`
	Seeds     int     `json:"seeds"`
	SeedStart int64   `json:"seed_start"`
	Ops       int     `json:"ops"`
	Blocks    uint32  `json:"blocks"`
	FaultRate float64 `json:"fault_rate"`
	// FaultKinds and FaultRegions use the fault package's String
	// names ("single-chip", "parity", ...; "meta" aliases "parity").
	FaultKinds   []string `json:"fault_kinds"`
	FaultRegions []string `json:"fault_regions"`
	// Variants lists engine variants to run each program on; empty
	// means the full differential matrix with cross-variant checks.
	Variants         []string `json:"variants"`
	ECCOff           bool     `json:"ecc_off"`
	ExpectDivergence bool     `json:"expect_divergence"`
}

// DefaultCampaign is clcheck's no-flags campaign: the full matrix with
// the generator defaults.
func DefaultCampaign(seeds int, seedStart int64) CampaignSpec {
	return CampaignSpec{Name: "default", Seeds: seeds, SeedStart: seedStart}
}

// LoadCampaign reads a CampaignSpec from a JSON file.
func LoadCampaign(path string) (CampaignSpec, error) {
	var spec CampaignSpec
	data, err := os.ReadFile(path)
	if err != nil {
		return spec, err
	}
	if err := json.Unmarshal(data, &spec); err != nil {
		return spec, fmt.Errorf("check: campaign %s: %w", path, err)
	}
	if spec.Seeds <= 0 {
		spec.Seeds = 16
	}
	return spec, nil
}

// genConfig translates the spec's generator knobs.
func (spec CampaignSpec) genConfig() (GenConfig, error) {
	cfg := DefaultGenConfig()
	if spec.Ops > 0 {
		cfg.Ops = spec.Ops
	}
	if spec.Blocks > 0 {
		cfg.Blocks = spec.Blocks
	}
	if spec.FaultRate > 0 {
		cfg.FaultRate = spec.FaultRate
	}
	if len(spec.FaultKinds) > 0 {
		cfg.Kinds = cfg.Kinds[:0]
		for _, name := range spec.FaultKinds {
			k, ok := fault.KindByName(name)
			if !ok {
				return cfg, fmt.Errorf("check: unknown fault kind %q", name)
			}
			cfg.Kinds = append(cfg.Kinds, k)
		}
	}
	if len(spec.FaultRegions) > 0 {
		cfg.Regions = cfg.Regions[:0]
		for _, name := range spec.FaultRegions {
			r, ok := fault.RegionByName(name)
			if !ok {
				return cfg, fmt.Errorf("check: unknown fault region %q", name)
			}
			cfg.Regions = append(cfg.Regions, r)
		}
	}
	return cfg, nil
}

// Failure is one diverging seed, minimized to a replayable token.
type Failure struct {
	Seed     int64
	Div      Divergence
	Token    string // minimized repro token (clcheck -repro)
	Verified bool   // the minimized token was re-parsed and re-diverged
}

// CampaignReport aggregates one campaign run.
type CampaignReport struct {
	Spec       CampaignSpec
	Programs   int
	Ops        int
	Faults     int // fault ops executed
	Failures   []Failure
	EngineDUEs uint64 // DUEs across all engine runs (visibility, not a check)
}

// OK reports whether the campaign met its expectation: zero
// divergences normally, at least one verified minimized divergence
// when ExpectDivergence is set.
func (r CampaignReport) OK() bool {
	if r.Spec.ExpectDivergence {
		for _, f := range r.Failures {
			if f.Verified {
				return true
			}
		}
		return false
	}
	return len(r.Failures) == 0
}

// maxShrink bounds how many diverging seeds a campaign minimizes; the
// rest are reported unshrunken (shrinking is the expensive part, and
// a handful of minimal repros is all a bug hunt needs).
const maxShrink = 4

// RunCampaign generates and checks spec.Seeds programs, fanning the
// seeds out over the Runner's worker pool (the same -j budget the
// figure sweeps use). Campaign statistics land in reg under check_*
// names; pass nil to skip metrics.
func RunCampaign(spec CampaignSpec, pool *figures.Runner, reg *obs.Registry) (CampaignReport, error) {
	cfg, err := spec.genConfig()
	if err != nil {
		return CampaignReport{Spec: spec}, err
	}
	variants := Variants
	if len(spec.Variants) > 0 {
		variants = variants[:0:0]
		for _, name := range spec.Variants {
			v, err := VariantByName(name)
			if err != nil {
				return CampaignReport{Spec: spec}, err
			}
			variants = append(variants, v)
		}
	}

	report := CampaignReport{Spec: spec}
	var mu sync.Mutex
	shrunk := 0
	tasks := make([]func() error, spec.Seeds)
	for i := 0; i < spec.Seeds; i++ {
		seed := spec.SeedStart + int64(i)
		tasks[i] = func() error {
			prog := Generate(seed, cfg)

			var firstDiv *Divergence
			var divVariant string
			var dues uint64
			if len(spec.Variants) == 0 {
				results, d, err := Differential(prog, spec.ECCOff)
				if err != nil {
					return err
				}
				firstDiv = d
				if d != nil && len(results) > 0 {
					// Attribute the shrink to a variant that diverged
					// on its own oracle, or the first variant for
					// cross-variant mismatches.
					divVariant = results[0].Variant
					for _, rr := range results {
						if rr.Div != nil {
							divVariant = rr.Variant
							break
						}
					}
				}
				for _, rr := range results {
					dues += rr.Stats.DUEs
				}
			} else {
				for _, v := range variants {
					rr, err := Replay(Repro{Variant: v.Name, ECCOff: spec.ECCOff, Program: prog})
					if err != nil {
						return err
					}
					dues += rr.Stats.DUEs
					if rr.Div != nil && firstDiv == nil {
						firstDiv = rr.Div
						divVariant = v.Name
					}
				}
			}

			faults := 0
			for _, op := range prog.Ops {
				if op.Kind == OpFault {
					faults++
				}
			}

			mu.Lock()
			report.Programs++
			report.Ops += len(prog.Ops)
			report.Faults += faults
			report.EngineDUEs += dues
			doShrink := firstDiv != nil && shrunk < maxShrink
			if doShrink {
				shrunk++
			}
			mu.Unlock()
			if firstDiv == nil {
				return nil
			}

			f := Failure{Seed: seed, Div: *firstDiv}
			if doShrink {
				// Minimize outside the lock — shrinking replays the
				// program many times.
				min := Shrink(Repro{Variant: divVariant, ECCOff: spec.ECCOff, Program: prog})
				f.Token = min.Token()
				// Round-trip the token and confirm it still diverges —
				// the artifact CI uploads must replay.
				if rt, err := ParseToken(f.Token); err == nil {
					if rr, err := Replay(rt); err == nil && rr.Div != nil {
						f.Verified = true
					}
				}
			}
			mu.Lock()
			report.Failures = append(report.Failures, f)
			mu.Unlock()
			return nil
		}
	}
	if err := pool.Do(tasks...); err != nil {
		return report, err
	}

	if reg != nil {
		labels := []obs.Label{{Key: "campaign", Value: spec.Name}}
		reg.Counter("check_programs_total", labels...).Add(uint64(report.Programs))
		reg.Counter("check_ops_total", labels...).Add(uint64(report.Ops))
		reg.Counter("check_faults_injected_total", labels...).Add(uint64(report.Faults))
		reg.Counter("check_divergences_total", labels...).Add(uint64(len(report.Failures)))
		reg.Counter("check_engine_dues_total", labels...).Add(uint64(report.EngineDUEs))
	}
	return report, nil
}

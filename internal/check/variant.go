package check

import (
	"fmt"

	"counterlight/internal/core"
)

// variantMemSize covers every block index a token can address
// (maxTokenBlocks · 64 bytes).
const variantMemSize = maxTokenBlocks * 64

// Variant is one engine configuration the differential harness runs
// programs on. Variants sharing a Group must produce bit-identical
// per-op read outcomes for the same program: key size, memo capacity,
// and VM count may change ciphertexts and hit rates but never the
// plaintext or mode a read returns. Variants that legitimately change
// visible behavior (a lower counter limit changes when saturation
// flips modes; disabling entropy disambiguation can turn a correction
// into a DUE) get their own group.
type Variant struct {
	Name  string
	Group string
	VMs   int
	opts  func() core.EngineOptions
}

// Options builds the engine options for one replay. eccOff layers the
// known-bad DisableCorrection mutation on top.
func (v Variant) Options(eccOff bool) core.EngineOptions {
	o := v.opts()
	o.DisableCorrection = eccOff
	return o
}

// satCounterLimit is the ctr-sat variant's deliberately tiny counter
// limit, low enough that a few hundred writes saturate blocks.
const satCounterLimit = 24

func baseOptions() core.EngineOptions {
	o := core.DefaultEngineOptions()
	o.MemSize = variantMemSize
	return o
}

// Variants is the engine-configuration matrix every program is
// replayed across.
var Variants = []Variant{
	{Name: "aes128", Group: "base", VMs: 1, opts: baseOptions},
	{Name: "aes256", Group: "base", VMs: 1, opts: func() core.EngineOptions {
		o := baseOptions()
		o.AESKeyBytes = 32
		return o
	}},
	{Name: "memo-tiny", Group: "base", VMs: 1, opts: func() core.EngineOptions {
		o := baseOptions()
		o.MemoEntries = 2
		return o
	}},
	{Name: "multi-vm", Group: "base", VMs: 3, opts: func() core.EngineOptions {
		o := baseOptions()
		o.VMs = 3
		return o
	}},
	{Name: "entropy-off", Group: "entropy-off", VMs: 1, opts: func() core.EngineOptions {
		o := baseOptions()
		o.EntropyDisambiguation = false
		return o
	}},
	{Name: "ctr-sat", Group: "ctr-sat", VMs: 1, opts: func() core.EngineOptions {
		o := baseOptions()
		o.CounterLimit = satCounterLimit
		return o
	}},
}

// VariantByName resolves a variant (for -repro tokens and campaign
// specs).
func VariantByName(name string) (Variant, error) {
	for _, v := range Variants {
		if v.Name == name {
			return v, nil
		}
	}
	return Variant{}, fmt.Errorf("check: unknown variant %q", name)
}

// VariantNames lists the matrix (help text, campaign validation).
func VariantNames() []string {
	names := make([]string, len(Variants))
	for i, v := range Variants {
		names[i] = v.Name
	}
	return names
}

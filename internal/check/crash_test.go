package check

import (
	"encoding/base64"
	"reflect"
	"testing"

	"counterlight/internal/epoch"
	"counterlight/internal/figures"
	"counterlight/internal/obs"
	"counterlight/internal/obs/flight"
)

// smallCrashGen keeps the crash self-tests quick: enough ops to cross
// journal appends, data persists, and explicit flushes, small enough to
// shrink in milliseconds.
func smallCrashGen() GenConfig {
	cfg := CrashGenConfig()
	cfg.Ops = 80
	cfg.Blocks = 32
	return cfg
}

// brokenRepro is the directed known-bad input: four counter-mode
// writes, no crash (the step never fires), and the intentional recovery
// bug armed. BreakRecovery drops the newest durable journal entry, so
// recovery loses block 3's counter/metadata while the data region still
// holds its codeword — exactly the class of bug the counter/metadata
// diff exists to catch. Counterless writes would NOT catch this (the
// dropped entry carries nothing the data region lacks), which is why
// the directed program is all counter-mode.
func brokenRepro() Repro {
	prog := Program{Seed: 0, Blocks: 4}
	for i := uint32(0); i < 4; i++ {
		prog.Ops = append(prog.Ops, Op{Kind: OpWrite, Block: i, Mode: epoch.CounterMode, Pay: PayZero})
	}
	return Repro{Variant: "aes128", Program: prog, Crash: true, CrashStep: 1 << 40, BreakRecovery: true}
}

// A crash step past the end of the run means the power never fails:
// the run completes, recovery replays the full journal, and the diff
// must come back clean.
func TestCrashStepBeyondEnd(t *testing.T) {
	r, err := GenerateCrashRepro(7, "aes128", smallCrashGen())
	if err != nil {
		t.Fatal(err)
	}
	r.CrashStep = 1 << 40
	res, err := CrashReplay(r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashed {
		t.Error("crash point past the end of the run fired")
	}
	if res.Applied != res.Ops {
		t.Errorf("applied %d of %d ops without a crash", res.Applied, res.Ops)
	}
	if res.Div != nil {
		t.Errorf("crash-free NVM run diverged from the oracle: %v", res.Div)
	}
	// LastTag is the newest journaled (mutating) tag: at least the last
	// write's index, never past the end of the program.
	lastWrite := -1
	for i, op := range r.Program.Ops {
		if op.Kind == OpWrite {
			lastWrite = i
		}
	}
	if res.Report.LastTag < int64(lastWrite) || res.Report.LastTag >= int64(res.Ops) {
		t.Errorf("recovery LastTag %d outside [%d, %d)", res.Report.LastTag, lastWrite, res.Ops)
	}
}

// Every seed must recover exactly, wherever its crash step lands.
func TestCrashReplayCleanAcrossSeeds(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		for _, variant := range []string{"aes128", "ctr-sat"} {
			r, err := GenerateCrashRepro(seed, variant, smallCrashGen())
			if err != nil {
				t.Fatal(err)
			}
			res, err := CrashReplay(r, nil)
			if err != nil {
				t.Fatalf("seed %d [%s]: %v", seed, variant, err)
			}
			if res.Div != nil {
				t.Errorf("seed %d [%s] crash step %d: recovery diverged: %v\nrepro token: %s",
					seed, variant, r.CrashStep, res.Div, r.Token())
			}
		}
	}
}

// The intentional recovery bug must be caught by the directed repro —
// deterministically, every time.
func TestBreakRecoveryCaught(t *testing.T) {
	res, err := CrashReplay(brokenRepro(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Div == nil {
		t.Fatal("BreakRecovery dropped a counter-mode journal entry and nothing noticed — the crash harness has no teeth")
	}
	// The same program with recovery intact is clean.
	ok := brokenRepro()
	ok.BreakRecovery = false
	clean, err := CrashReplay(ok, nil)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Div != nil {
		t.Fatalf("un-broken recovery of the directed program diverged: %v", clean.Div)
	}
}

// ShrinkCrash must minimize a diverging repro to something that still
// fails and round-trips through a token.
func TestShrinkCrashMinimizes(t *testing.T) {
	r := brokenRepro()
	// Pad with noise the shrinker should strip: reads and counterless
	// writes contribute nothing to the broken-recovery divergence.
	noisy := cloneProgram(r.Program)
	noisy.Blocks = 8
	var ops []Op
	for i, op := range noisy.Ops {
		ops = append(ops,
			Op{Kind: OpRead, Block: uint32(i)},
			Op{Kind: OpWrite, Block: 4 + uint32(i%4), Mode: epoch.Counterless, Pay: PayRandom, PaySeed: 99},
			op)
	}
	noisy.Ops = ops
	r.Program = noisy

	min := ShrinkCrash(r)
	if len(min.Program.Ops) >= len(noisy.Ops) {
		t.Errorf("shrink removed nothing: %d ops in, %d out", len(noisy.Ops), len(min.Program.Ops))
	}
	res, err := CrashReplay(min, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Div == nil {
		t.Fatal("shrunk repro no longer diverges")
	}
	rt, err := ParseToken(min.Token())
	if err != nil {
		t.Fatalf("shrunk token does not parse: %v", err)
	}
	rr, err := CrashReplay(rt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Div == nil {
		t.Fatal("shrunk token no longer reproduces the divergence")
	}
}

// Crash repro tokens round-trip bit-exactly, flush ops included.
func TestCrashTokenRoundTrip(t *testing.T) {
	prog := Generate(3, smallCrashGen())
	hasFlush := false
	for _, op := range prog.Ops {
		if op.Kind == OpFlush {
			hasFlush = true
		}
	}
	if !hasFlush {
		prog.Ops = append(prog.Ops, Op{Kind: OpFlush})
	}
	for _, r := range []Repro{
		{Variant: "ctr-sat", Program: prog, Crash: true, CrashStep: 12345},
		{Variant: "aes128", ECCOff: true, Program: prog, Crash: true, CrashStep: 1, BreakRecovery: true},
	} {
		rt, err := ParseToken(r.Token())
		if err != nil {
			t.Fatal(err)
		}
		if rt.Variant != r.Variant || rt.ECCOff != r.ECCOff ||
			rt.Crash != r.Crash || rt.CrashStep != r.CrashStep || rt.BreakRecovery != r.BreakRecovery {
			t.Errorf("crash flags did not round-trip: got %+v", rt)
		}
		if rt.Program.Seed != prog.Seed || rt.Program.Blocks != prog.Blocks ||
			!reflect.DeepEqual(rt.Program.Ops, prog.Ops) {
			t.Error("program did not round-trip through a crash token")
		}
	}
}

// Classic (pre-crash) tokens still parse, with every crash field zero,
// and malformed crash flag combinations are rejected.
func TestCrashTokenCompat(t *testing.T) {
	classic := Repro{Variant: "aes128", Program: Generate(5, DefaultGenConfig())}
	rt, err := ParseToken(classic.Token())
	if err != nil {
		t.Fatal(err)
	}
	if rt.Crash || rt.CrashStep != 0 || rt.BreakRecovery {
		t.Errorf("classic token grew crash fields: %+v", rt)
	}

	// Flip flag bits in the raw bytes: break-recovery without crash and
	// unknown flags must both be rejected.
	raw := classic.TokenBytes()
	flagOff := len("clk1") + 1 + len(classic.Variant)
	for _, tc := range []struct {
		flags byte
		name  string
	}{
		{8, "break-recovery without crash"},
		{0x10, "unknown flag bit"},
	} {
		bad := append([]byte(nil), raw...)
		bad[flagOff] = tc.flags
		if _, err := ParseToken(base64.RawURLEncoding.EncodeToString(bad)); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

// CrashGenConfig programs contain explicit flushes; the classic
// default never does, and FlushRate 0 must not perturb the rng stream
// (classic seeds keep generating identical programs).
func TestCrashGenFlushes(t *testing.T) {
	flushes := 0
	for seed := int64(0); seed < 8; seed++ {
		for _, op := range Generate(seed, CrashGenConfig()).Ops {
			if op.Kind == OpFlush {
				flushes++
			}
		}
		for _, op := range Generate(seed, DefaultGenConfig()).Ops {
			if op.Kind == OpFlush {
				t.Fatal("classic generator produced a flush op")
			}
		}
	}
	if flushes == 0 {
		t.Error("8 crash-config seeds produced no flush ops")
	}
	a := Generate(11, DefaultGenConfig())
	cfg := DefaultGenConfig()
	cfg.FlushRate = 0
	if b := Generate(11, cfg); !reflect.DeepEqual(a, b) {
		t.Error("FlushRate 0 changed the generated program")
	}
}

// The campaign entry point: a pile of seeds, all clean, stats summed.
func TestCrashCampaignSeedsPass(t *testing.T) {
	pool := figures.NewRunner(true)
	reg := obs.NewRegistry()
	report, err := RunCrashCampaign(10, 0, CrashCampaignConfig{Gen: smallCrashGen()}, pool, reg)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("crash campaign found %d divergences; first: %+v", len(report.Failures), report.Failures[0])
	}
	if report.Programs != 20 { // 10 seeds × 2 default variants
		t.Errorf("ran %d programs, want 20", report.Programs)
	}
	if report.Crashes == 0 {
		t.Error("no crash point fired across the whole campaign")
	}
	if report.Replayed == 0 {
		t.Error("no journal entries were replayed across the whole campaign")
	}
}

// With BreakRecovery armed the campaign must catch the bug and shrink
// it to a token that still reproduces — the end-to-end teeth check.
func TestCrashCampaignBreakCaught(t *testing.T) {
	pool := figures.NewRunner(true)
	report, err := RunCrashCampaign(10, 0, CrashCampaignConfig{Gen: smallCrashGen(), BreakRecovery: true}, pool, nil)
	if err != nil {
		t.Fatal(err)
	}
	if report.OK() {
		t.Fatal("broken recovery survived a 10-seed campaign — the crash campaign has no teeth")
	}
	f := report.Failures[0]
	rt, err := ParseToken(f.Token)
	if err != nil {
		t.Fatalf("failure token does not parse: %v", err)
	}
	if !rt.Crash || !rt.BreakRecovery {
		t.Errorf("failure token lost its crash flags: %+v", rt)
	}
	res, err := CrashReplay(rt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Div == nil {
		t.Error("campaign failure token does not reproduce")
	}
}

// Satellite: a concurrent divergence must leave the failing shard's
// journal tail in the flight ring ahead of the divergence event, so
// the dump is a self-contained failure report.
func TestConcurrentDivergenceJournalTail(t *testing.T) {
	prog := Program{Seed: 0, Blocks: 1, Ops: []Op{
		{Kind: OpWrite, Block: 0, Mode: epoch.CounterMode, Pay: PayZero},
		{Kind: OpFault, Block: 0, Chip: 3, Pattern: 1},
		{Kind: OpRead, Block: 0},
	}}
	ring := flight.NewRing(64)
	res, err := ConcurrentReplay(prog, ConcurrentConfig{
		Submitters: 1, Shards: 1, ECCOff: true, Flight: ring,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Div == nil {
		t.Fatal("ECC-off single-fault program did not diverge")
	}
	var journals, divs int
	lastJournal, divAt := -1, -1
	for i, ev := range ring.Snapshot() {
		switch ev.Kind {
		case flight.KindJournal:
			journals++
			lastJournal = i
		case flight.KindDivergence:
			divs++
			if divAt < 0 {
				divAt = i
			}
		}
	}
	if journals == 0 {
		t.Error("no journal-tail events in the flight ring after a concurrent divergence")
	}
	if divs == 0 {
		t.Error("no divergence event in the flight ring")
	}
	if lastJournal >= 0 && divAt >= 0 && lastJournal > divAt {
		t.Error("journal tail recorded after the divergence event, want tail first")
	}
}

// NVM flush ops have no concurrent meaning and must be rejected up
// front, not silently dropped.
func TestConcurrentRejectsFlush(t *testing.T) {
	prog := Program{Seed: 0, Blocks: 1, Ops: []Op{{Kind: OpFlush}}}
	if _, err := ConcurrentReplay(prog, ConcurrentConfig{}); err == nil {
		t.Fatal("concurrent replay accepted an NVM flush op")
	}
}

// FuzzCrashPoints drives generated programs through the NVM engine
// with fuzzer-chosen crash steps: recovery must never panic and never
// diverge from the never-crashed oracle.
func FuzzCrashPoints(f *testing.F) {
	f.Add(int64(1), uint64(1))
	f.Add(int64(2), uint64(7))
	f.Add(int64(3), uint64(64))
	f.Add(int64(4), uint64(250))
	f.Add(int64(5), uint64(1<<40))
	f.Fuzz(func(t *testing.T, seed int64, crashStep uint64) {
		cfg := CrashGenConfig()
		cfg.Ops = 60
		cfg.Blocks = 32
		r := Repro{
			Variant: "aes128",
			Program: Generate(seed, cfg),
			Crash:   true,
		}
		if crashStep > 0 {
			r.CrashStep = crashStep
		} else {
			r.Crash = false
		}
		res, err := CrashReplay(r, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Div != nil {
			t.Fatalf("seed %d crash step %d: recovery diverged: %v\nrepro token: %s",
				seed, crashStep, res.Div, r.Token())
		}
	})
}

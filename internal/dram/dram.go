// Package dram models a DDR memory channel at transaction granularity:
// banked row buffers with tCL/tRCD/tRP timing, a shared data bus whose
// burst time is set by the channel bandwidth, and per-request
// completion times that reflect row hits, row misses, row conflicts,
// and bus contention.
//
// Table I's configuration: one channel, 8 ranks (×8 banks each),
// tCL = tRCD = tRP = 13.75 ns, and 25.6 GB/s (2.5 ns per 64-byte
// burst) or 6.4 GB/s (10 ns per burst) for the stress test. The bus
// serialization is what produces the bandwidth wall of Figs. 18/20;
// the row-state variance between a data access and its counter access
// is what produces Fig. 8's late-counter distribution.
package dram

import (
	"fmt"

	"counterlight/internal/obs"
)

// Config describes the channel geometry and timing. All times are in
// picoseconds.
type Config struct {
	Ranks        int
	BanksPerRank int
	RowBytes     uint64 // row-buffer (page) size per bank
	TCL          int64  // column access latency
	TRCD         int64  // row activate latency
	TRP          int64  // precharge latency
	BurstTime    int64  // data-bus occupancy per 64-byte transfer
	BlockSize    uint64

	// Refresh models periodic all-bank refresh: every TREFI, each
	// bank blocks for TRFC. Zero TREFI disables refresh (the default;
	// the evaluation's gem5 configs do the same, and refresh adds only
	// latency-tail noise to the figures).
	TREFI int64
	TRFC  int64
}

// DefaultConfig returns Table I's DRAM settings for the given channel
// bandwidth in GB/s (25.6 in the main evaluation, 6.4 in the stress
// test).
func DefaultConfig(bandwidthGBs float64) Config {
	return Config{
		Ranks:        8,
		BanksPerRank: 8,
		RowBytes:     8 * 1024,
		TCL:          13750,
		TRCD:         13750,
		TRP:          13750,
		BurstTime:    int64(64.0 / bandwidthGBs * 1000), // ps
		BlockSize:    64,
	}
}

// Stats counts DRAM events for the bandwidth and energy models.
type Stats struct {
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowMisses    uint64 // closed bank, activate needed
	RowConflicts uint64 // open different row: precharge + activate
	Refreshes    uint64 // accesses that waited for a refresh window
	BusBusyPS    int64  // accumulated data-bus occupancy
}

type bank struct {
	openRow     int64 // -1 when closed
	readyAt     int64 // earliest time the bank can start a new command
	refreshedAt int64 // start of the last refresh window applied
}

// Channel is one DRAM channel. Its event counts live in obs
// instruments so a registry can export them mid-run; Stats() stays
// the legacy view over the same storage.
type Channel struct {
	cfg     Config
	banks   []bank
	busFree int64 // earliest time the shared data bus is free

	reads, writes obs.Counter
	rowHits       obs.Counter
	rowMisses     obs.Counter
	rowConflicts  obs.Counter
	refreshes     obs.Counter
	busBusyPS     obs.Counter
}

// New builds a channel from the config.
func New(cfg Config) (*Channel, error) {
	if cfg.Ranks <= 0 || cfg.BanksPerRank <= 0 || cfg.RowBytes == 0 ||
		cfg.BurstTime <= 0 || cfg.BlockSize == 0 {
		return nil, fmt.Errorf("dram: invalid config %+v", cfg)
	}
	n := cfg.Ranks * cfg.BanksPerRank
	ch := &Channel{cfg: cfg, banks: make([]bank, n)}
	for i := range ch.banks {
		ch.banks[i].openRow = -1
	}
	return ch, nil
}

// Stats returns a copy of the counters (a thin view over the obs
// instruments).
func (c *Channel) Stats() Stats {
	return Stats{
		Reads:        c.reads.Value(),
		Writes:       c.writes.Value(),
		RowHits:      c.rowHits.Value(),
		RowMisses:    c.rowMisses.Value(),
		RowConflicts: c.rowConflicts.Value(),
		Refreshes:    c.refreshes.Value(),
		BusBusyPS:    int64(c.busBusyPS.Value()),
	}
}

// ResetStats zeroes the counters (per measurement window).
func (c *Channel) ResetStats() {
	c.reads.Reset()
	c.writes.Reset()
	c.rowHits.Reset()
	c.rowMisses.Reset()
	c.rowConflicts.Reset()
	c.refreshes.Reset()
	c.busBusyPS.Reset()
}

// RegisterMetrics exposes the channel's counters through a registry
// under the given labels.
func (c *Channel) RegisterMetrics(reg *obs.Registry, labels ...obs.Label) {
	reg.RegisterCounter("dram_reads_total", &c.reads, labels...)
	reg.RegisterCounter("dram_writes_total", &c.writes, labels...)
	reg.RegisterCounter("dram_row_hits_total", &c.rowHits, labels...)
	reg.RegisterCounter("dram_row_misses_total", &c.rowMisses, labels...)
	reg.RegisterCounter("dram_row_conflicts_total", &c.rowConflicts, labels...)
	reg.RegisterCounter("dram_refreshes_total", &c.refreshes, labels...)
	reg.RegisterCounter("dram_bus_busy_ps_total", &c.busBusyPS, labels...)
}

// BusBacklog reports how far ahead of now the shared data bus is
// booked — the channel's queueing pressure, sampled by the tracer.
func (c *Channel) BusBacklog(now int64) int64 {
	b := c.busFree - now
	if b < 0 {
		b = 0
	}
	return b
}

// BurstTime exposes the per-access bus occupancy (the epoch monitor's
// access-time unit).
func (c *Channel) BurstTime() int64 { return c.cfg.BurstTime }

// mapAddr decomposes an address into bank index and row. Banks are
// interleaved at block granularity across ranks and banks so that
// consecutive blocks hit different banks (standard XOR-free
// interleaving), and the row is the address within a bank.
func (c *Channel) mapAddr(addr uint64) (bankIdx int, row int64) {
	blk := addr / c.cfg.BlockSize
	nBanks := uint64(len(c.banks))
	bankIdx = int(blk % nBanks)
	// Bytes per bank per row: RowBytes. Consecutive blocks in the same
	// bank are RowBytes apart in the bank's local space.
	local := blk / nBanks * c.cfg.BlockSize
	row = int64(local / c.cfg.RowBytes)
	return bankIdx, row
}

// Access issues a read or write for the block at addr arriving at the
// controller at time now. It returns the completion time: when read
// data has fully arrived at the controller, or when write data has
// been accepted by the bank. Bank state and bus occupancy advance.
func (c *Channel) Access(addr uint64, now int64, write bool) int64 {
	bi, row := c.mapAddr(addr)
	b := &c.banks[bi]

	start := now
	if b.readyAt > start {
		start = b.readyAt
	}
	if c.cfg.TREFI > 0 {
		// Apply any refresh window that covers the start time: the
		// command waits until the refresh completes, and the row
		// buffer closes.
		refStart := start - start%c.cfg.TREFI
		if refStart > b.refreshedAt {
			b.refreshedAt = refStart
			if start < refStart+c.cfg.TRFC {
				start = refStart + c.cfg.TRFC
				b.openRow = -1
				c.refreshes.Inc()
			}
		}
	}

	var coreLatency int64
	switch {
	case b.openRow == row:
		c.rowHits.Inc()
		coreLatency = c.cfg.TCL
	case b.openRow == -1:
		c.rowMisses.Inc()
		coreLatency = c.cfg.TRCD + c.cfg.TCL
	default:
		c.rowConflicts.Inc()
		coreLatency = c.cfg.TRP + c.cfg.TRCD + c.cfg.TCL
	}
	b.openRow = row

	dataReady := start + coreLatency
	// The shared data bus serves bursts FCFS by arrival time: each
	// request reserves the next burst slot from when it arrives at the
	// controller. A request whose bank is still busy past its slot
	// transfers when the bank finishes instead (the slot goes idle);
	// this avoids head-of-line blocking the real controller's queue
	// reordering would also avoid, while keeping the hard bandwidth
	// ceiling of one burst per BurstTime.
	slot := c.busFree
	if now > slot {
		slot = now
	}
	slot += c.cfg.BurstTime
	c.busFree = slot
	done := dataReady + c.cfg.BurstTime
	if slot > done {
		done = slot
	}
	c.busBusyPS.Add(uint64(c.cfg.BurstTime))

	// The bank stays busy until the burst completes; writes add a
	// write-recovery hold modeled as one extra burst time.
	b.readyAt = done
	if write {
		b.readyAt += c.cfg.BurstTime
		c.writes.Inc()
	} else {
		c.reads.Inc()
	}
	return done
}

// RowState reports the row-buffer outcome the next access to addr
// would see, without issuing it (used by tests and diagnostics).
func (c *Channel) RowState(addr uint64) string {
	bi, row := c.mapAddr(addr)
	switch {
	case c.banks[bi].openRow == row:
		return "hit"
	case c.banks[bi].openRow == -1:
		return "miss"
	default:
		return "conflict"
	}
}

// BusUtilization returns the fraction of wall-clock time the data bus
// was busy over the interval [0, now].
func (c *Channel) BusUtilization(now int64) float64 {
	if now <= 0 {
		return 0
	}
	u := float64(c.busBusyPS.Value()) / float64(now)
	if u > 1 {
		u = 1
	}
	return u
}

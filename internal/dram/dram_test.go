package dram

import (
	"math/rand"
	"testing"
)

func newChan(t *testing.T, bw float64) *Channel {
	t.Helper()
	c, err := New(DefaultConfig(bw))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewErrors(t *testing.T) {
	bad := DefaultConfig(25.6)
	bad.Ranks = 0
	if _, err := New(bad); err == nil {
		t.Error("want error for zero ranks")
	}
	bad = DefaultConfig(25.6)
	bad.BurstTime = 0
	if _, err := New(bad); err == nil {
		t.Error("want error for zero burst time")
	}
}

func TestDefaultConfigBurstTimes(t *testing.T) {
	if bt := DefaultConfig(25.6).BurstTime; bt != 2500 {
		t.Errorf("25.6 GB/s burst = %d ps, want 2500", bt)
	}
	if bt := DefaultConfig(6.4).BurstTime; bt != 10000 {
		t.Errorf("6.4 GB/s burst = %d ps, want 10000", bt)
	}
}

// First access to a closed bank: tRCD + tCL + burst.
func TestColdAccessLatency(t *testing.T) {
	c := newChan(t, 25.6)
	done := c.Access(0, 0, false)
	want := int64(13750 + 13750 + 2500)
	if done != want {
		t.Errorf("cold access completes at %d, want %d", done, want)
	}
	s := c.Stats()
	if s.RowMisses != 1 || s.RowHits != 0 || s.RowConflicts != 0 {
		t.Errorf("stats = %+v", s)
	}
}

// A second access to the same row is a row hit: tCL + burst only.
func TestRowHit(t *testing.T) {
	c := newChan(t, 25.6)
	done1 := c.Access(0, 0, false)
	done2 := c.Access(64*64, done1, false) // same bank? no — pick same block's neighbor row-wise
	_ = done2
	// Access the exact same block again: same bank, same row.
	start := done1
	done := c.Access(0, start+100000, false) // long after bank is free
	gotLatency := done - (start + 100000)
	want := int64(13750 + 2500)
	if gotLatency != want {
		t.Errorf("row-hit latency = %d, want %d", gotLatency, want)
	}
	if c.Stats().RowHits == 0 {
		t.Error("row hit not counted")
	}
}

// Accessing a different row in the same bank is a conflict:
// tRP + tRCD + tCL + burst.
func TestRowConflict(t *testing.T) {
	c := newChan(t, 25.6)
	cfg := DefaultConfig(25.6)
	nBanks := uint64(cfg.Ranks * cfg.BanksPerRank)
	// Block 0 and block nBanks*rowBlocks map to bank 0, different rows.
	rowBlocks := cfg.RowBytes / cfg.BlockSize
	otherRow := nBanks * rowBlocks * cfg.BlockSize
	if c.RowState(0) != "miss" {
		t.Fatal("fresh bank should be closed")
	}
	done1 := c.Access(0, 0, false)
	if c.RowState(otherRow) != "conflict" {
		t.Fatalf("expected conflict state, got %s", c.RowState(otherRow))
	}
	start := done1 + 1000000
	done := c.Access(otherRow, start, false)
	want := int64(13750*3 + 2500)
	if done-start != want {
		t.Errorf("conflict latency = %d, want %d", done-start, want)
	}
	if c.Stats().RowConflicts != 1 {
		t.Errorf("conflicts = %d, want 1", c.Stats().RowConflicts)
	}
}

// Consecutive blocks interleave across banks.
func TestBankInterleaving(t *testing.T) {
	c := newChan(t, 25.6)
	b0, _ := c.mapAddr(0)
	b1, _ := c.mapAddr(64)
	if b0 == b1 {
		t.Error("consecutive blocks map to the same bank")
	}
}

// The shared bus caps throughput: n simultaneous requests to different
// banks cannot all complete before n burst slots have elapsed, and no
// request finishes before its own bank latency plus one burst.
func TestBusSerialization(t *testing.T) {
	c := newChan(t, 25.6)
	const n = 100
	var last int64
	for i := 0; i < n; i++ {
		done := c.Access(uint64(i)*64, 0, false) // distinct banks, all at t=0
		if done < 13750+13750+2500 {
			t.Errorf("burst %d completed at %d, faster than raw latency", i, done)
		}
		if done > last {
			last = done
		}
	}
	if last < n*2500 {
		t.Errorf("%d bursts done by %d ps, beating the bus ceiling %d", n, last, n*2500)
	}
}

// Bandwidth ceiling: with unlimited parallelism, sustained throughput
// approaches 64B per burst time and never exceeds it.
func TestBandwidthCeiling(t *testing.T) {
	c := newChan(t, 6.4)
	const n = 10000
	var done int64
	for i := 0; i < n; i++ {
		done = c.Access(uint64(i)*64, 0, false)
	}
	minTime := int64(n) * 10000 // n bursts at 10 ns each
	if done < minTime {
		t.Errorf("completed %d bursts in %d ps, below the bus floor %d", n, done, minTime)
	}
	if u := c.BusUtilization(done); u < 0.95 {
		t.Errorf("bus utilization under saturation = %v, want ~1", u)
	}
}

// Writes hold the bank longer (write recovery) but also complete.
func TestWriteAccess(t *testing.T) {
	c := newChan(t, 25.6)
	done := c.Access(0, 0, true)
	if done <= 0 {
		t.Fatal("write did not complete")
	}
	if c.Stats().Writes != 1 || c.Stats().Reads != 0 {
		t.Errorf("stats = %+v", c.Stats())
	}
}

// Sequential streaming sees mostly row hits; random access sees mostly
// misses/conflicts — the locality distinction behind the paper's
// regular/irregular split.
func TestLocalityRowBufferBehaviour(t *testing.T) {
	c := newChan(t, 25.6)
	now := int64(0)
	for i := 0; i < 10000; i++ {
		now = c.Access(uint64(i)*64, now, false)
	}
	seq := c.Stats()
	seqHitRate := float64(seq.RowHits) / float64(seq.Reads)

	c2 := newChan(t, 25.6)
	rng := rand.New(rand.NewSource(70))
	now = 0
	for i := 0; i < 10000; i++ {
		now = c2.Access(uint64(rng.Intn(1<<24))*64, now, false)
	}
	rnd := c2.Stats()
	rndHitRate := float64(rnd.RowHits) / float64(rnd.Reads)

	if seqHitRate < 0.9 {
		t.Errorf("sequential row-hit rate = %.2f, want > 0.9", seqHitRate)
	}
	if rndHitRate > 0.2 {
		t.Errorf("random row-hit rate = %.2f, want < 0.2", rndHitRate)
	}
}

// Completion must be monotone with arrival for the same bank.
func TestBankBusyDelaysNext(t *testing.T) {
	c := newChan(t, 25.6)
	done1 := c.Access(0, 0, false)
	done2 := c.Access(0, 0, false) // same block again, arrives while busy
	if done2 <= done1 {
		t.Errorf("second access to busy bank completed at %d <= %d", done2, done1)
	}
}

func TestResetStats(t *testing.T) {
	c := newChan(t, 25.6)
	c.Access(0, 0, false)
	c.ResetStats()
	if s := c.Stats(); s.Reads != 0 || s.BusBusyPS != 0 {
		t.Errorf("stats after reset = %+v", s)
	}
}

func TestBusUtilizationBounds(t *testing.T) {
	c := newChan(t, 25.6)
	if c.BusUtilization(0) != 0 {
		t.Error("utilization at t=0 must be 0")
	}
	c.Access(0, 0, false)
	if u := c.BusUtilization(2500); u != 1 {
		t.Errorf("clamped utilization = %v, want 1", u)
	}
}

func BenchmarkAccessRandom(b *testing.B) {
	c, _ := New(DefaultConfig(25.6))
	rng := rand.New(rand.NewSource(71))
	now := int64(0)
	for i := 0; i < b.N; i++ {
		now = c.Access(uint64(rng.Intn(1<<24))*64, now, false)
	}
}

// With refresh enabled, an access arriving inside a refresh window
// waits for tRFC and loses its open row; with refresh disabled nothing
// changes.
func TestRefreshModel(t *testing.T) {
	cfg := DefaultConfig(25.6)
	cfg.TREFI = 3_900_000 // 3.9 µs
	cfg.TRFC = 350_000    // 350 ns
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Open a row well before the next refresh boundary.
	c.Access(0, 0, false)
	// Arrive just after the second refresh boundary: must wait.
	arrive := 2*cfg.TREFI + 1
	done := c.Access(0, arrive, false)
	minDone := 2*cfg.TREFI + cfg.TRFC // refresh completes first
	if done < minDone {
		t.Errorf("access during refresh completed at %d, before refresh end %d", done, minDone)
	}
	if c.Stats().Refreshes == 0 {
		t.Error("refresh wait not counted")
	}
	// The refresh closed the row: same-row access counts a row miss,
	// not a hit.
	if c.Stats().RowHits != 0 {
		t.Errorf("row survived refresh: %+v", c.Stats())
	}

	// Disabled refresh: same sequence sees a row hit.
	c2, _ := New(DefaultConfig(25.6))
	c2.Access(0, 0, false)
	c2.Access(0, arrive, false)
	if c2.Stats().RowHits != 1 {
		t.Errorf("no-refresh run lost its row: %+v", c2.Stats())
	}
}

package fault

import (
	"testing"

	"counterlight/internal/core"
)

func newEngine(t *testing.T) *core.Engine {
	t.Helper()
	e, err := core.NewEngine(core.DefaultEngineOptions())
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// Chipkill's contract: every single-chip fault corrects to the
// original data and blames the right chip; nothing is ever silently
// wrong.
func TestSingleChipCampaign(t *testing.T) {
	e := newEngine(t)
	out, err := Campaign(e, SingleChip, 300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.SilentCorrupt != 0 {
		t.Fatalf("%d silent corruptions", out.SilentCorrupt)
	}
	if out.Corrected != out.Trials {
		t.Errorf("corrected %d/%d single-chip faults", out.Corrected, out.Trials)
	}
	if out.CorrectChipID != out.Corrected {
		t.Errorf("chip misidentified in %d corrections", out.Corrected-out.CorrectChipID)
	}
	if out.DUE != 0 {
		t.Errorf("%d spurious DUEs", out.DUE)
	}
}

// Double-chip faults exceed chipkill: every one must be a DUE, never
// silent corruption (the property Synergy's trial count is sized for).
func TestDoubleChipCampaign(t *testing.T) {
	e := newEngine(t)
	out, err := Campaign(e, DoubleChip, 300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.SilentCorrupt != 0 {
		t.Fatalf("%d silent corruptions from double-chip faults", out.SilentCorrupt)
	}
	if out.DUE != out.Trials {
		t.Errorf("DUE for %d/%d double-chip faults", out.DUE, out.Trials)
	}
}

func TestStuckAtZeroCampaign(t *testing.T) {
	e := newEngine(t)
	out, err := Campaign(e, StuckAtZero, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.SilentCorrupt != 0 || out.Corrected != out.Trials {
		t.Errorf("stuck-at-zero: %+v", out)
	}
}

func TestBitFlipCampaign(t *testing.T) {
	e := newEngine(t)
	out, err := Campaign(e, BitFlip, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.SilentCorrupt != 0 || out.Corrected != out.Trials {
		t.Errorf("bit-flip: %+v", out)
	}
	if out.CorrectChipID != out.Corrected {
		t.Errorf("single-bit faults misattributed: %+v", out)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		SingleChip: "single-chip", DoubleChip: "double-chip",
		StuckAtZero: "stuck-at-zero", BitFlip: "single-bit",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %s", int(k), k.String())
		}
	}
}

// Package fault runs fault-injection campaigns against the functional
// Counter-light engine, the reliability half of the paper's §IV-E
// evaluation: single-chip errors must always correct (chipkill),
// multi-chip errors must always be *detected* (DUE) rather than
// silently consumed, and corrections must identify the faulty chip.
//
// Injection sites are addressable by region: the eight data chips,
// the MAC chip, or the parity chip — which is where Counter-light
// stores the EncryptionMetadata (the metadata is XORed into the
// parity word, Fig. 12), so a parity-region campaign is precisely a
// metadata-bit fault campaign. The differential-verification harness
// (internal/check) layers its fault-op generator on Plan and Site.
package fault

import (
	"fmt"
	"math/rand"

	"counterlight/internal/cipher"
	"counterlight/internal/core"
	"counterlight/internal/ecc"
	"counterlight/internal/epoch"
)

// Kind selects the injected fault pattern.
type Kind int

const (
	// SingleChip corrupts one random chip with a random pattern.
	SingleChip Kind = iota
	// DoubleChip corrupts two distinct chips.
	DoubleChip
	// StuckAtZero models a dead chip (all bits forced low) by XORing
	// the chip's current content — equivalent to zeroing it.
	StuckAtZero
	// BitFlip corrupts exactly one bit of one chip.
	BitFlip
)

func (k Kind) String() string {
	switch k {
	case SingleChip:
		return "single-chip"
	case DoubleChip:
		return "double-chip"
	case StuckAtZero:
		return "stuck-at-zero"
	case BitFlip:
		return "single-bit"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// KindByName resolves a Kind from its String form.
func KindByName(name string) (Kind, bool) {
	for _, k := range []Kind{SingleChip, DoubleChip, StuckAtZero, BitFlip} {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// Region selects which chips of the rank a campaign may corrupt.
type Region int

const (
	// AnyRegion targets all ten chips uniformly (the classic
	// whole-rank campaign).
	AnyRegion Region = iota
	// DataRegion targets the eight data chips only.
	DataRegion
	// MACRegion targets the MAC chip.
	MACRegion
	// ParityRegion targets the parity chip — the EncryptionMetadata
	// region, since the metadata is XORed into the parity word. A
	// parity campaign stresses exactly the decode path the paper's
	// two-hypothesis correction exists for.
	ParityRegion
)

func (r Region) String() string {
	switch r {
	case AnyRegion:
		return "any"
	case DataRegion:
		return "data"
	case MACRegion:
		return "mac"
	case ParityRegion:
		return "parity"
	default:
		return fmt.Sprintf("region(%d)", int(r))
	}
}

// RegionByName resolves a Region from its String form ("meta" is
// accepted as an alias for "parity", the metadata region).
func RegionByName(name string) (Region, bool) {
	switch name {
	case "any":
		return AnyRegion, true
	case "data":
		return DataRegion, true
	case "mac":
		return MACRegion, true
	case "parity", "meta":
		return ParityRegion, true
	}
	return 0, false
}

// Chips lists the chip indices the region addresses.
func (r Region) Chips() []int {
	switch r {
	case DataRegion:
		return []int{0, 1, 2, 3, 4, 5, 6, 7}
	case MACRegion:
		return []int{ecc.MACChip}
	case ParityRegion:
		return []int{ecc.ParityChip}
	default:
		return []int{0, 1, 2, 3, 4, 5, 6, 7, ecc.MACChip, ecc.ParityChip}
	}
}

// Site is one concrete injection point: a chip and the XOR pattern
// applied to it. A zero pattern is a no-op (the fault is invisible).
type Site struct {
	Chip    int
	Pattern uint64
}

// Apply injects the site's fault into the stored block at addr.
func (s Site) Apply(e *core.Engine, addr uint64) error {
	return e.InjectFault(addr, s.Chip, s.Pattern)
}

// chipWord reads the current content of one chip from a snapshot.
func chipWord(cw ecc.CodeWord, chip int) uint64 {
	switch {
	case chip < ecc.DataChips:
		return cw.Data[chip]
	case chip == ecc.MACChip:
		return cw.MAC
	default:
		return cw.Parity
	}
}

// Plan draws the injection sites for one trial of the given kind
// within the region, consuming the rng exactly once per decision so
// campaigns replay bit-identically from a seed. StuckAtZero needs the
// block's current content, hence the engine and address.
//
// DoubleChip picks its first chip inside the region and its second
// anywhere in the rank (a two-chip fault confined to a one-chip
// region is impossible).
func Plan(rng *rand.Rand, kind Kind, region Region, e *core.Engine, addr uint64) ([]Site, error) {
	chips := region.Chips()
	chip := chips[rng.Intn(len(chips))]
	switch kind {
	case SingleChip:
		return []Site{{Chip: chip, Pattern: rng.Uint64() | 1}}, nil
	case DoubleChip:
		chip2 := (chip + 1 + rng.Intn(ecc.TotalChips-1)) % ecc.TotalChips
		return []Site{
			{Chip: chip, Pattern: rng.Uint64() | 1},
			{Chip: chip2, Pattern: rng.Uint64() | 1},
		}, nil
	case StuckAtZero:
		cw, ok := e.Snapshot(addr)
		if !ok {
			return nil, fmt.Errorf("fault: no block at %#x", addr)
		}
		cur := chipWord(cw, chip)
		if cur == 0 {
			cur = 1 // ensure the fault is visible
		}
		return []Site{{Chip: chip, Pattern: cur}}, nil
	case BitFlip:
		return []Site{{Chip: chip, Pattern: 1 << rng.Intn(64)}}, nil
	default:
		return nil, fmt.Errorf("fault: unknown kind %v", kind)
	}
}

// Outcome tallies a campaign.
type Outcome struct {
	Trials          int
	Corrected       int // read returned the original data via correction
	CorrectChipID   int // corrections that blamed the right chip
	DUE             int // detected uncorrectable error
	SilentCorrupt   int // read "succeeded" with WRONG data — must stay 0
	EntropyResolved int // corrections that needed the §IV-E entropy tiebreak
}

// Campaign injects n faults of the given kind into fresh blocks and
// reads them back, alternating encryption modes. It is CampaignIn
// over the whole rank.
func Campaign(e *core.Engine, kind Kind, n int, seed int64) (Outcome, error) {
	return CampaignIn(e, kind, AnyRegion, n, seed)
}

// CampaignIn is Campaign restricted to one region of the codeword, so
// campaigns can target the metadata bits (ParityRegion) specifically.
func CampaignIn(e *core.Engine, kind Kind, region Region, n int, seed int64) (Outcome, error) {
	rng := rand.New(rand.NewSource(seed))
	var out Outcome
	for i := 0; i < n; i++ {
		out.Trials++
		addr := uint64(i%4096)*64 + 64
		var plain cipher.Block
		rng.Read(plain[:])
		mode := epoch.CounterMode
		if i%2 == 1 {
			mode = epoch.Counterless
		}
		if err := e.Write(addr, plain, mode); err != nil {
			return out, fmt.Errorf("fault: write (seed=%d trial=%d): %w", seed, i, err)
		}

		sites, err := Plan(rng, kind, region, e, addr)
		if err != nil {
			return out, fmt.Errorf("fault: plan (seed=%d trial=%d): %w", seed, i, err)
		}
		for _, s := range sites {
			if err := s.Apply(e, addr); err != nil {
				return out, fmt.Errorf("fault: inject (seed=%d trial=%d): %w", seed, i, err)
			}
		}
		chip := sites[0].Chip

		got, info, err := e.Read(addr)
		switch {
		case err != nil:
			out.DUE++
		case got != plain:
			out.SilentCorrupt++
		default:
			if info.Corrected {
				out.Corrected++
				if info.BadChip == chip {
					out.CorrectChipID++
				}
				if info.EntropyResolved {
					out.EntropyResolved++
				}
			}
		}
	}
	return out, nil
}

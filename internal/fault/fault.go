// Package fault runs fault-injection campaigns against the functional
// Counter-light engine, the reliability half of the paper's §IV-E
// evaluation: single-chip errors must always correct (chipkill),
// multi-chip errors must always be *detected* (DUE) rather than
// silently consumed, and corrections must identify the faulty chip.
package fault

import (
	"fmt"
	"math/rand"

	"counterlight/internal/cipher"
	"counterlight/internal/core"
	"counterlight/internal/ecc"
	"counterlight/internal/epoch"
)

// Kind selects the injected fault pattern.
type Kind int

const (
	// SingleChip corrupts one random chip with a random pattern.
	SingleChip Kind = iota
	// DoubleChip corrupts two distinct chips.
	DoubleChip
	// StuckAtZero models a dead chip (all bits forced low) by XORing
	// the chip's current content — equivalent to zeroing it.
	StuckAtZero
	// BitFlip corrupts exactly one bit of one chip.
	BitFlip
)

func (k Kind) String() string {
	switch k {
	case SingleChip:
		return "single-chip"
	case DoubleChip:
		return "double-chip"
	case StuckAtZero:
		return "stuck-at-zero"
	case BitFlip:
		return "single-bit"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Outcome tallies a campaign.
type Outcome struct {
	Trials          int
	Corrected       int // read returned the original data via correction
	CorrectChipID   int // corrections that blamed the right chip
	DUE             int // detected uncorrectable error
	SilentCorrupt   int // read "succeeded" with WRONG data — must stay 0
	EntropyResolved int // corrections that needed the §IV-E entropy tiebreak
}

// Campaign injects n faults of the given kind into fresh blocks and
// reads them back, alternating encryption modes.
func Campaign(e *core.Engine, kind Kind, n int, seed int64) (Outcome, error) {
	rng := rand.New(rand.NewSource(seed))
	var out Outcome
	for i := 0; i < n; i++ {
		out.Trials++
		addr := uint64(i%4096)*64 + 64
		var plain cipher.Block
		rng.Read(plain[:])
		mode := epoch.CounterMode
		if i%2 == 1 {
			mode = epoch.Counterless
		}
		if err := e.Write(addr, plain, mode); err != nil {
			return out, fmt.Errorf("fault: write: %w", err)
		}

		chip := rng.Intn(ecc.TotalChips)
		switch kind {
		case SingleChip:
			if err := e.InjectFault(addr, chip, rng.Uint64()|1); err != nil {
				return out, err
			}
		case DoubleChip:
			chip2 := (chip + 1 + rng.Intn(ecc.TotalChips-1)) % ecc.TotalChips
			if err := e.InjectFault(addr, chip, rng.Uint64()|1); err != nil {
				return out, err
			}
			if err := e.InjectFault(addr, chip2, rng.Uint64()|1); err != nil {
				return out, err
			}
		case StuckAtZero:
			// Zero the chip by XORing its current content.
			cw, ok := e.Snapshot(addr)
			if !ok {
				return out, fmt.Errorf("fault: no block at %#x", addr)
			}
			var cur uint64
			switch {
			case chip < ecc.DataChips:
				cur = cw.Data[chip]
			case chip == ecc.MACChip:
				cur = cw.MAC
			default:
				cur = cw.Parity
			}
			if cur == 0 {
				cur = 1 // ensure the fault is visible
			}
			if err := e.InjectFault(addr, chip, cur); err != nil {
				return out, err
			}
		case BitFlip:
			if err := e.InjectFault(addr, chip, 1<<rng.Intn(64)); err != nil {
				return out, err
			}
		}

		got, info, err := e.Read(addr)
		switch {
		case err != nil:
			out.DUE++
		case got != plain:
			out.SilentCorrupt++
		default:
			if info.Corrected {
				out.Corrected++
				if info.BadChip == chip {
					out.CorrectChipID++
				}
				if info.EntropyResolved {
					out.EntropyResolved++
				}
			}
		}
	}
	return out, nil
}

package fault

// Crash-point fault sites. Where the codeword sites in this package
// flip bits in a rank, a crash point cuts power after an exact number
// of NVM persistence steps — journal half-appends, data-codeword
// persists, snapshot chunks, commits, truncations (see internal/nvm
// for the step taxonomy). The persistence domain calls Fire with its
// running step counter before every durable mutation; a firing point
// means the power failed before that mutation reached the medium.

// Arming selects whether an armed site fires once and disarms, or on
// every subsequent match. One-shot is the crash-campaign setting (one
// power failure per program); persistent arming models a medium that
// keeps rejecting writes, and is what the write-error soak tests use.
type Arming int

const (
	// OneShot sites fire on the first match and then disarm.
	OneShot Arming = iota
	// Persistent sites fire on every match.
	Persistent
)

func (a Arming) String() string {
	if a == Persistent {
		return "persistent"
	}
	return "one-shot"
}

// CrashPoint is an armed persistence-step trigger. The zero value
// (Step 0) never fires, so an unarmed domain costs one comparison per
// step.
type CrashPoint struct {
	Step uint64 // 1-based persistence step to fire at; 0 = disarmed
	Arm  Arming

	fired bool
	fires uint64
}

// Fire reports whether the crash fires at persistence step `step`
// (steps count from 1). A OneShot point fires at the first step ≥
// Step and then disarms; a Persistent point fires on every step ≥
// Step. Matching is ≥, not ==, so a point armed mid-run behind the
// counter still fires at the next step.
func (c *CrashPoint) Fire(step uint64) bool {
	if c == nil || c.Step == 0 || step < c.Step {
		return false
	}
	if c.Arm == OneShot && c.fired {
		return false
	}
	c.fired = true
	c.fires++
	return true
}

// Fired reports whether the point has fired at least once.
func (c *CrashPoint) Fired() bool { return c != nil && c.fired }

// Fires returns how many times the point has fired.
func (c *CrashPoint) Fires() uint64 {
	if c == nil {
		return 0
	}
	return c.fires
}

// CrashSchedule derives n crash steps in [1, maxStep] from seed — a
// campaign's injection schedule. Deterministic: the same seed always
// yields the same schedule, so a failing (seed, step) pair replays
// without recording anything beyond the seed.
func CrashSchedule(seed int64, n int, maxStep uint64) []uint64 {
	if maxStep == 0 {
		maxStep = 1
	}
	out := make([]uint64, 0, n)
	x := uint64(seed) ^ 0x9e3779b97f4a7c15
	for i := 0; i < n; i++ {
		x += 0x9e3779b97f4a7c15
		z := x
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		out = append(out, 1+z%maxStep)
	}
	return out
}

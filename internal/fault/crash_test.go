package fault

import (
	"math/rand"
	"reflect"
	"testing"

	"counterlight/internal/cipher"
	"counterlight/internal/ecc"
	"counterlight/internal/epoch"
)

// Region addressing is the campaign's aim: every region must expand to
// exactly the chips it names, and Plan must only ever pick sites
// inside the region it was given.
func TestRegionChips(t *testing.T) {
	cases := []struct {
		region Region
		want   []int
	}{
		{AnyRegion, []int{0, 1, 2, 3, 4, 5, 6, 7, ecc.MACChip, ecc.ParityChip}},
		{DataRegion, []int{0, 1, 2, 3, 4, 5, 6, 7}},
		{MACRegion, []int{ecc.MACChip}},
		{ParityRegion, []int{ecc.ParityChip}},
	}
	for _, tc := range cases {
		if got := tc.region.Chips(); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%v.Chips() = %v, want %v", tc.region, got, tc.want)
		}
	}
}

// Regions overlap by construction — AnyRegion covers all three narrow
// regions, and the narrow regions partition it. Site matching against
// overlapping regions must agree with that set algebra.
func TestRegionOverlap(t *testing.T) {
	inRegion := func(r Region, chip int) bool {
		for _, c := range r.Chips() {
			if c == chip {
				return true
			}
		}
		return false
	}
	for chip := 0; chip < ecc.TotalChips; chip++ {
		if !inRegion(AnyRegion, chip) {
			t.Errorf("chip %d not in AnyRegion", chip)
		}
		narrow := 0
		for _, r := range []Region{DataRegion, MACRegion, ParityRegion} {
			if inRegion(r, chip) {
				narrow++
			}
		}
		if narrow != 1 {
			t.Errorf("chip %d matched %d narrow regions, want exactly 1", chip, narrow)
		}
	}
	// MAC and parity regions are disjoint singletons.
	if inRegion(MACRegion, ecc.ParityChip) || inRegion(ParityRegion, ecc.MACChip) {
		t.Error("MAC and parity regions overlap")
	}
}

// Plan must respect its region: every drawn site's first chip lies in
// the region (DoubleChip's documented exception sends only the second
// chip rank-wide).
func TestPlanStaysInRegion(t *testing.T) {
	e := newEngine(t)
	var plain cipher.Block
	const addr = 64
	if err := e.Write(addr, plain, epoch.CounterMode); err != nil {
		t.Fatal(err)
	}
	for _, region := range []Region{AnyRegion, DataRegion, MACRegion, ParityRegion} {
		allowed := make(map[int]bool)
		for _, c := range region.Chips() {
			allowed[c] = true
		}
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 100; trial++ {
			for _, kind := range []Kind{SingleChip, DoubleChip, StuckAtZero, BitFlip} {
				sites, err := Plan(rng, kind, region, e, addr)
				if err != nil {
					t.Fatalf("%v/%v: %v", kind, region, err)
				}
				if !allowed[sites[0].Chip] {
					t.Fatalf("%v plan in %v picked chip %d outside the region", kind, region, sites[0].Chip)
				}
				for _, s := range sites {
					if s.Pattern == 0 {
						t.Fatalf("%v plan in %v drew an invisible zero pattern", kind, region)
					}
				}
			}
		}
	}
}

// Same seed, same plan: the generator consumes the rng once per
// decision, so two walks of the same seed must produce identical site
// sequences — the property every -repro token leans on.
func TestPlanSeedDeterminism(t *testing.T) {
	draw := func() [][]Site {
		e := newEngine(t)
		var plain cipher.Block
		const addr = 64
		if err := e.Write(addr, plain, epoch.CounterMode); err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		var out [][]Site
		for trial := 0; trial < 64; trial++ {
			kind := []Kind{SingleChip, DoubleChip, StuckAtZero, BitFlip}[trial%4]
			region := []Region{AnyRegion, DataRegion, MACRegion, ParityRegion}[trial%3]
			sites, err := Plan(rng, kind, region, e, addr)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, sites)
		}
		return out
	}
	if a, b := draw(), draw(); !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different injection schedules")
	}
}

// One-shot crash points fire exactly once; persistent points fire on
// every step at or past their arming step.
func TestCrashPointArming(t *testing.T) {
	one := &CrashPoint{Step: 3}
	var fires []uint64
	for s := uint64(1); s <= 6; s++ {
		if one.Fire(s) {
			fires = append(fires, s)
		}
	}
	if !reflect.DeepEqual(fires, []uint64{3}) {
		t.Errorf("one-shot fired at %v, want [3]", fires)
	}
	if !one.Fired() || one.Fires() != 1 {
		t.Errorf("one-shot: Fired=%v Fires=%d", one.Fired(), one.Fires())
	}

	per := &CrashPoint{Step: 3, Arm: Persistent}
	fires = nil
	for s := uint64(1); s <= 6; s++ {
		if per.Fire(s) {
			fires = append(fires, s)
		}
	}
	if !reflect.DeepEqual(fires, []uint64{3, 4, 5, 6}) {
		t.Errorf("persistent fired at %v, want [3 4 5 6]", fires)
	}
	if per.Fires() != 4 {
		t.Errorf("persistent Fires = %d, want 4", per.Fires())
	}

	// A point armed behind the counter fires at the next step (≥, not ==).
	late := &CrashPoint{Step: 2}
	if !late.Fire(10) {
		t.Error("late-armed point did not fire at the next step")
	}

	// The zero value and a nil pointer never fire.
	var unarmed CrashPoint
	var nilPoint *CrashPoint
	for s := uint64(1); s <= 4; s++ {
		if unarmed.Fire(s) || nilPoint.Fire(s) {
			t.Fatal("disarmed crash point fired")
		}
	}
	if nilPoint.Fired() || nilPoint.Fires() != 0 {
		t.Error("nil crash point claims to have fired")
	}
}

func TestArmingString(t *testing.T) {
	if OneShot.String() != "one-shot" || Persistent.String() != "persistent" {
		t.Errorf("Arming strings: %q, %q", OneShot.String(), Persistent.String())
	}
}

// Same seed, same schedule — and every step lands in [1, maxStep].
func TestCrashScheduleDeterminism(t *testing.T) {
	a := CrashSchedule(42, 256, 1000)
	b := CrashSchedule(42, 256, 1000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different crash schedules")
	}
	if len(a) != 256 {
		t.Fatalf("schedule length %d, want 256", len(a))
	}
	for i, s := range a {
		if s < 1 || s > 1000 {
			t.Fatalf("schedule[%d] = %d outside [1, 1000]", i, s)
		}
	}
	if c := CrashSchedule(43, 256, 1000); reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical schedules")
	}
	// maxStep 0 is clamped to 1, not a divide-by-zero.
	for _, s := range CrashSchedule(1, 8, 0) {
		if s != 1 {
			t.Fatalf("maxStep=0 schedule produced step %d", s)
		}
	}
}

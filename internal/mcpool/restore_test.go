package mcpool

import (
	"testing"

	"counterlight/internal/core"
	"counterlight/internal/obs/prof"
)

// SubmitWait's probe accounting on the error path: errored submits
// (ErrClosed) must complete the probe — every Start matched by a Done
// — so a shutdown burst shows up in the submit-wait distribution
// instead of leaking out of the sampled count. The probe samples 1 in
// DefaultSubmitSample starts, so 2×DefaultSubmitSample refused calls
// must land exactly 2 completed samples.
func TestSubmitWaitProbeRecordsErrors(t *testing.T) {
	pf := prof.New("test")
	p, err := New(Config{Shards: 1, Engine: testEngineOptions(), Profile: pf})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()

	n := 2 * prof.DefaultSubmitSample
	for i := 0; i < n; i++ {
		if resp := p.SubmitWait(Request{Kind: OpRead}); resp.Err != ErrClosed {
			t.Fatalf("SubmitWait on closed pool: err %v, want ErrClosed", resp.Err)
		}
	}
	sw := pf.SubmitWait.Snapshot()
	if sw.Count != uint64(n) {
		t.Errorf("probe Count %d, want %d (refused submits must still count)", sw.Count, n)
	}
	if want := uint64(2); sw.Sampled+sw.Dropped != want {
		t.Errorf("probe Sampled+Dropped %d+%d, want %d: errored submits vanished from the probe",
			sw.Sampled, sw.Dropped, want)
	}
}

// Shedding is the node-level admission signal: false while queues sit
// below the watermark, true once any shard's backlog reaches it, and
// always false with degradation disabled.
func TestShedding(t *testing.T) {
	off, err := New(Config{Shards: 1, Watermark: -1, Engine: testEngineOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer off.Close()
	if off.Shedding() {
		t.Fatal("Shedding true with degradation disabled")
	}

	p, err := New(Config{Shards: 1, QueueDepth: 64, BatchMax: 8, Watermark: 16, Engine: testEngineOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Shedding() {
		t.Fatal("Shedding true on an idle pool")
	}
	// Hold the shard lock so the worker stalls mid-batch, then pile a
	// backlog past the watermark: the worker can hold at most one
	// BatchMax batch, so at least 32-8 requests sit queued.
	s := p.shards[0]
	s.mu.Lock()
	var futs []*Future
	for i := 0; i < 32; i++ {
		fut, err := p.Submit(Request{Kind: OpWrite, Addr: uint64(i) * 64, Data: [64]byte{1}})
		if err != nil {
			s.mu.Unlock()
			t.Fatal(err)
		}
		futs = append(futs, fut)
	}
	shedding := p.Shedding()
	s.mu.Unlock()
	if !shedding {
		t.Error("Shedding false with backlog past the watermark")
	}
	for _, fut := range futs {
		if resp := fut.Wait(); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	p.Flush()
	if p.Shedding() {
		t.Error("Shedding true after the backlog drained")
	}
}

// RestoreShard splices recovered durable state under a fresh pool:
// the journal seq continues where the dead pool's durable epoch left
// off (no reuse, no gap at the splice point), and restoring over a
// shard that has already applied traffic is rejected.
func TestRestoreShardSeqSplice(t *testing.T) {
	opts := testEngineOptions()
	a, err := New(Config{Shards: 2, Watermark: -1, Persist: true, Engine: opts})
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range Schedule(ScheduleConfig{Ops: 400, Blocks: 64, Seed: 3}) {
		if resp := a.SubmitWait(req); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	seqs := a.FlushBarrier()
	plogs := make([][]byte, a.NumShards())
	for s := range plogs {
		plogs[s] = a.PersistedJournal(s)
	}
	a.Close()

	b, err := New(Config{Shards: 2, Watermark: -1, Persist: true, Engine: opts})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for s := 0; s < b.NumShards(); s++ {
		entries, _, err := DecodeJournal(plogs[s])
		if err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
		if err := b.RestoreShard(s, plogs[s], seqs[s], func(eng *core.Engine) error {
			for _, e := range entries {
				if err := e.Apply(eng); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatalf("shard %d: %v", s, err)
		}
	}
	if got := b.DurableSeqs(); got[0] != seqs[0] || got[1] != seqs[1] {
		t.Fatalf("durable seqs after restore %v, want %v", got, seqs)
	}
	// Restoring again — the shard has state now — must be refused.
	if err := b.RestoreShard(0, nil, 0, nil); err == nil {
		t.Fatal("RestoreShard over a restored shard succeeded")
	}
	// New traffic journals at seq > the restored epoch, no reuse.
	for _, req := range Schedule(ScheduleConfig{Ops: 200, Blocks: 64, Seed: 4}) {
		if resp := b.SubmitWait(req); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	b.FlushBarrier()
	for s := 0; s < b.NumShards(); s++ {
		entries, _, err := DecodeJournal(b.PersistedJournal(s))
		if err != nil {
			t.Fatalf("shard %d after splice: %v", s, err)
		}
		var last uint64
		for _, e := range entries {
			if e.Seq <= last {
				t.Fatalf("shard %d: seq %d after %d — splice reused or skipped sequence numbers", s, e.Seq, last)
			}
			last = e.Seq
		}
		if last <= seqs[s] {
			t.Fatalf("shard %d: no entries past the restored epoch %d", s, seqs[s])
		}
	}
}

package mcpool

import (
	"sync"
	"testing"
	"time"

	"counterlight/internal/core"
	"counterlight/internal/epoch"
	"counterlight/internal/obs"
)

func testEngineOptions() core.EngineOptions {
	opts := core.DefaultEngineOptions()
	opts.MemSize = 1 << 20 // 16384 blocks — plenty for these traces
	return opts
}

// TestShardRouting pins the routing function: pure (same address,
// same shard, always), block-interleaved like the DRAM bank map, and
// spread across every shard.
func TestShardRouting(t *testing.T) {
	p, err := New(Config{Shards: 8, Engine: testEngineOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	hit := make([]bool, p.NumShards())
	for block := uint64(0); block < 1024; block++ {
		addr := block * 64
		s := p.ShardOf(addr)
		if s != p.ShardOf(addr) {
			t.Fatalf("ShardOf(%#x) not deterministic", addr)
		}
		if want := int(block % 8); s != want {
			t.Fatalf("ShardOf(%#x) = %d, want block-interleaved %d", addr, s, want)
		}
		hit[s] = true
	}
	for s, ok := range hit {
		if !ok {
			t.Fatalf("shard %d never hit by 1024 consecutive blocks", s)
		}
	}
}

// serialReplay drives the same trace through a single bare engine,
// tracking per-block mode switches the way the pool does.
func serialReplay(t *testing.T, opts core.EngineOptions, sched []Request) (core.EngineStats, []Response, uint64) {
	t.Helper()
	eng, err := core.NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	resps := make([]Response, len(sched))
	lastMode := make(map[uint64]epoch.Mode)
	var switches uint64
	for i, req := range sched {
		switch req.Kind {
		case OpRead:
			plain, info, err := eng.Read(req.Addr)
			resps[i] = Response{Plain: plain, Info: info, Mode: info.Mode, Err: err}
		case OpWrite:
			err := eng.WriteAs(req.VM, req.Addr, req.Data, req.Mode)
			applied := req.Mode
			if err == nil && eng.IsPermanentCounterless(req.Addr) {
				applied = epoch.Counterless
			}
			resps[i] = Response{Mode: applied, Err: err}
			if err == nil {
				if last, ok := lastMode[req.Addr]; ok && last != applied {
					switches++
				}
				lastMode[req.Addr] = applied
			}
		default:
			t.Fatalf("op %d: unexpected kind %d", i, req.Kind)
		}
	}
	return eng.Stats(), resps, switches
}

// TestPoolMatchesSerialEngine is the bit-identical acceptance check
// at concurrency 1: a single-shard pool applying a trace in
// submission order must be indistinguishable — full EngineStats and
// every per-op response — from a bare serial engine. A 4-shard pool
// fed by one submitter must still agree on every per-op outcome and
// on all order-independent aggregates (memo hit/miss counts split
// across per-shard tables and are excluded).
func TestPoolMatchesSerialEngine(t *testing.T) {
	opts := testEngineOptions()
	sched := Schedule(ScheduleConfig{Ops: 4000, Blocks: 512, ReadFraction: 0.5, VMs: 2, Seed: 42})
	serialStats, serialResps, serialSwitches := serialReplay(t, opts, sched)

	for _, shards := range []int{1, 4} {
		p, err := New(Config{Shards: shards, Watermark: -1, Engine: opts})
		if err != nil {
			t.Fatal(err)
		}
		resps, err := RunPartitioned(p, sched, 1)
		if err != nil {
			t.Fatal(err)
		}
		p.Flush()
		agg := p.Aggregate()
		p.Close()

		for i := range resps {
			if (resps[i].Err == nil) != (serialResps[i].Err == nil) {
				t.Fatalf("shards=%d op %d: err %v, serial %v", shards, i, resps[i].Err, serialResps[i].Err)
			}
			if resps[i].Plain != serialResps[i].Plain {
				t.Fatalf("shards=%d op %d: plaintext diverged from serial engine", shards, i)
			}
			if resps[i].Mode != serialResps[i].Mode {
				t.Fatalf("shards=%d op %d: applied mode %v, serial %v", shards, i, resps[i].Mode, serialResps[i].Mode)
			}
			if shards == 1 && resps[i].Info != serialResps[i].Info {
				t.Fatalf("shards=1 op %d: ReadInfo %+v, serial %+v", i, resps[i].Info, serialResps[i].Info)
			}
		}

		if agg.Reads != serialStats.Reads || agg.Writes != serialStats.Writes ||
			agg.CounterModeWrites != serialStats.CounterModeWrites ||
			agg.CounterlessWrites != serialStats.CounterlessWrites ||
			agg.Corrections != serialStats.Corrections || agg.DUEs != serialStats.DUEs ||
			agg.MACFailures != serialStats.MACFailures {
			t.Fatalf("shards=%d: aggregate %+v diverged from serial %+v", shards, agg.EngineStats, serialStats)
		}
		if agg.ModeSwitches != serialSwitches {
			t.Fatalf("shards=%d: %d mode switches, serial counted %d", shards, agg.ModeSwitches, serialSwitches)
		}
		if shards == 1 && (agg.MemoHits != serialStats.MemoHits || agg.MemoMisses != serialStats.MemoMisses) {
			t.Fatalf("shards=1: memo hits/misses %d/%d, serial %d/%d",
				agg.MemoHits, agg.MemoMisses, serialStats.MemoHits, serialStats.MemoMisses)
		}
		if agg.Submitted != uint64(len(sched)) || agg.Completed != uint64(len(sched)) {
			t.Fatalf("shards=%d: submitted/completed %d/%d, want %d", shards, agg.Submitted, agg.Completed, len(sched))
		}
	}
}

// TestConcurrentBackpressure pins the bounded-queue contract
// white-box: with the shard lock held the worker stalls mid-batch, so
// TrySubmit must hit the QueueDepth bound exactly, Submit's would-be
// overflow is refused rather than buffered, and once the lock is
// released the backlog drains with the watermark degrading Auto
// writebacks and the contention counter recording the stall.
func TestConcurrentBackpressure(t *testing.T) {
	const (
		queueDepth = 8
		batchMax   = 4
	)
	p, err := New(Config{
		Shards:     1,
		QueueDepth: queueDepth,
		BatchMax:   batchMax,
		// Watermark defaults to 6 (3/4 of QueueDepth).
		Engine: testEngineOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	s := p.shards[0]

	s.mu.Lock()
	write := Request{Kind: OpWrite, Addr: 0, Auto: true}
	futs := make([]*Future, 0, queueDepth+batchMax+1)
	fut, err := p.Submit(write)
	if err != nil {
		t.Fatal(err)
	}
	futs = append(futs, fut)

	// Wait for the worker to pick up the first request and stall on
	// the held shard lock.
	deadline := time.Now().Add(5 * time.Second)
	for s.contention.Value() == 0 {
		if time.Now().After(deadline) {
			s.mu.Unlock()
			t.Fatal("worker never contended for the held shard lock")
		}
		time.Sleep(time.Millisecond)
	}

	accepted := 0
	for {
		fut, ok := p.TrySubmit(write)
		if !ok {
			break
		}
		futs = append(futs, fut)
		accepted++
		if accepted > queueDepth+batchMax {
			s.mu.Unlock()
			t.Fatalf("TrySubmit accepted %d requests past a full pipeline", accepted)
		}
	}
	// The stalled worker holds at most batchMax requests in hand; the
	// channel holds exactly QueueDepth more.
	if accepted < queueDepth {
		s.mu.Unlock()
		t.Fatalf("TrySubmit refused after %d accepts, want at least QueueDepth=%d", accepted, queueDepth)
	}
	if got := len(s.q); got != queueDepth {
		s.mu.Unlock()
		t.Fatalf("queue holds %d requests, bound is %d", got, queueDepth)
	}
	s.mu.Unlock()

	p.Flush()
	for _, f := range futs {
		if resp := f.Wait(); resp.Err != nil {
			t.Fatalf("queued write failed after drain: %v", resp.Err)
		}
	}
	agg := p.Aggregate()
	if agg.Contention == 0 {
		t.Fatal("contention stall left no trace in the contention counter")
	}
	if agg.DegradedWrites == 0 {
		t.Fatalf("backlog of %d never crossed watermark %d: no Auto write degraded", queueDepth, p.Watermark())
	}
	if agg.MaxQueueDepth < int64(p.Watermark()) {
		t.Fatalf("queue-depth high-water mark %d below watermark %d", agg.MaxQueueDepth, p.Watermark())
	}
	if agg.CounterlessWrites == 0 {
		t.Fatal("degraded Auto writes recorded no counterless writebacks")
	}
}

// TestConcurrentHammerAggregates runs genuinely concurrent submitters
// over disjoint block ranges — with unsynchronized metric readers
// polling mid-flight — and checks the pool's aggregate accounting
// closes exactly. The readers assert the memoize satellite's
// invariant (0 ≤ HitRate ≤ 1) under live concurrent lookups.
func TestConcurrentHammerAggregates(t *testing.T) {
	const (
		submitters = 4
		perWorker  = 1500
		blocks     = 256
	)
	p, err := New(Config{Shards: submitters, Watermark: -1, Engine: testEngineOptions()})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	p.RegisterMetrics(reg)

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range p.shards {
					if hr := s.eng.Memo().HitRate(); hr < 0 || hr > 1 {
						panic("HitRate out of [0,1] under concurrent traffic")
					}
				}
				p.Sample()
				reg.Snapshot()
			}
		}()
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var failure error
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Submitter g owns blocks ≡ g (mod submitters); with
			// Shards == submitters it feeds exactly one shard.
			sched := Schedule(ScheduleConfig{Ops: perWorker, Blocks: blocks / submitters, Seed: int64(g)})
			for i := range sched {
				sched[i].Addr = sched[i].Addr*uint64(submitters) + uint64(g)*64
			}
			resps, err := RunPartitioned(p, sched, 1)
			if err == nil {
				for _, resp := range resps {
					if resp.Err != nil {
						err = resp.Err
						break
					}
				}
			}
			if err != nil {
				mu.Lock()
				if failure == nil {
					failure = err
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	p.Flush()
	agg := p.Aggregate()
	p.Close()
	close(stop)
	readers.Wait()

	if failure != nil {
		t.Fatal(failure)
	}
	total := uint64(submitters * perWorker)
	if agg.Submitted != total || agg.Completed != total {
		t.Fatalf("submitted/completed %d/%d, want %d", agg.Submitted, agg.Completed, total)
	}
	if agg.Reads+agg.Writes != total {
		t.Fatalf("reads %d + writes %d != %d ops", agg.Reads, agg.Writes, total)
	}
	if agg.CounterModeWrites+agg.CounterlessWrites != agg.Writes {
		t.Fatalf("write mode split %d+%d != %d writes",
			agg.CounterModeWrites, agg.CounterlessWrites, agg.Writes)
	}
	if agg.DegradedWrites != 0 {
		t.Fatalf("watermark disabled but %d writes degraded", agg.DegradedWrites)
	}
	snap := reg.Snapshot()
	if got := snap.Value("mcpool_completed_total"); got != float64(total) {
		t.Fatalf("registry mcpool_completed_total = %v, want %d", got, total)
	}
}

// TestPoolClosedSubmit pins the shutdown contract: Submit and
// TrySubmit refuse after Close instead of panicking on a closed
// channel, and Close is idempotent.
func TestPoolClosedSubmit(t *testing.T) {
	p, err := New(Config{Shards: 2, Engine: testEngineOptions()})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close()
	if _, err := p.Submit(Request{Kind: OpWrite}); err == nil {
		t.Fatal("Submit after Close succeeded")
	}
	if _, ok := p.TrySubmit(Request{Kind: OpWrite}); ok {
		t.Fatal("TrySubmit after Close succeeded")
	}
}

package mcpool

import (
	"bytes"
	"strings"
	"testing"

	"counterlight/internal/core"
	"counterlight/internal/ecc"
	"counterlight/internal/epoch"
)

// sampleEntries exercises every field combination the wire format can
// carry: reads, writes with/without tags, faults with negative chips,
// counterless and counter modes, codewords present and absent.
func sampleEntries() []Entry {
	cw := ecc.CodeWord{MAC: 0xa5a5, Parity: 0x5a5a}
	for i := range cw.Data {
		cw.Data[i] = uint64(i) * 0x1111111111111111
	}
	return []Entry{
		{Seq: 1, Kind: OpRead, Addr: 0},
		{Seq: 2, Kind: OpWrite, Addr: 64, VM: 2, Mode: epoch.CounterMode,
			Meta: 7, Ctr: 7, Tag: 11, HasTag: true, CW: cw, HasCW: true},
		{Seq: 3, Kind: OpWrite, Addr: 128, VM: 0, Mode: epoch.Counterless,
			Meta: 1<<32 - 1, PermCL: true, CW: cw, HasCW: true},
		{Seq: 4, Kind: OpFault, Addr: 64, Chip: 9, Pattern: 1 << 63,
			Ctr: 7, Tag: -1, HasTag: true, CW: cw, HasCW: true},
		{Seq: 5, Kind: OpFault, Addr: 192, Chip: 0, Pattern: 1},
		{Seq: 1 << 40, Kind: OpWrite, Addr: 1 << 30, VM: 7, Mode: epoch.CounterMode,
			Meta: 1<<32 - 2, Ctr: 1<<32 - 2, Tag: 1 << 50, HasTag: true},
	}
}

// Round-trip property: encode → decode → re-encode must be
// byte-identical, and the decoded entries must equal the originals.
func TestJournalRoundTrip(t *testing.T) {
	entries := sampleEntries()
	var buf []byte
	for _, e := range entries {
		buf = AppendEntry(buf, e)
	}
	got, n, err := DecodeJournal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("decoded %d of %d bytes", n, len(buf))
	}
	if len(got) != len(entries) {
		t.Fatalf("decoded %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Errorf("entry %d round-tripped to %+v, want %+v", i, got[i], entries[i])
		}
	}
	var again []byte
	for _, e := range got {
		again = AppendEntry(again, e)
	}
	if !bytes.Equal(again, buf) {
		t.Error("re-encoding decoded entries is not byte-identical")
	}
}

// Every strict prefix of a record is a torn tail, never a panic and
// never a bogus decode.
func TestJournalTornTail(t *testing.T) {
	var buf []byte
	for _, e := range sampleEntries() {
		buf = AppendEntry(buf, e)
	}
	whole, _, err := DecodeJournal(buf)
	if err != nil {
		t.Fatal(err)
	}
	firstLen := 0
	{
		_, n, err := DecodeEntry(buf)
		if err != nil {
			t.Fatal(err)
		}
		firstLen = n
	}
	for cut := 1; cut < len(buf); cut++ {
		entries, n, err := DecodeJournal(buf[:cut])
		if n > cut {
			t.Fatalf("cut %d: consumed %d bytes beyond the data", cut, n)
		}
		if cut%firstLen == 0 && err == nil {
			continue // cut landed exactly on a record boundary
		}
		if err != ErrTorn && err != nil {
			// A cut can also land mid-stream on bytes that happen to
			// decode as garbage lengths; those must error, not panic.
			continue
		}
		if err == ErrTorn && len(entries) > len(whole) {
			t.Fatalf("cut %d: torn prefix decoded more entries than the whole", cut)
		}
	}
}

// Malformed journals — bad CRC, bad kind, bad mode, oversized length,
// unknown flags, trailing garbage — error cleanly, never panic.
func TestJournalMalformed(t *testing.T) {
	good := AppendEntry(nil, sampleEntries()[1])

	flip := func(off int) []byte {
		b := append([]byte(nil), good...)
		b[off] ^= 0xff
		return b
	}
	// Corrupt each body byte in turn: the CRC must catch every one.
	for off := 8; off < len(good); off++ {
		if _, _, err := DecodeEntry(flip(off)); err == nil || err == ErrTorn {
			t.Fatalf("body corruption at byte %d not rejected (err=%v)", off, err)
		} else if !strings.Contains(err.Error(), "CRC") {
			t.Fatalf("body corruption at byte %d: unexpected error %v", off, err)
		}
	}
	// Zero and oversized length prefixes are rejected before any
	// allocation.
	zero := append([]byte(nil), good...)
	zero[0], zero[1], zero[2], zero[3] = 0, 0, 0, 0
	if _, _, err := DecodeEntry(zero); err == nil {
		t.Error("zero length accepted")
	}
	huge := append([]byte(nil), good...)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0x7f
	if _, _, err := DecodeEntry(huge); err == nil || err == ErrTorn {
		t.Errorf("oversized length: err=%v, want corruption error", err)
	}
	if _, _, err := DecodeEntry(nil); err != ErrTorn {
		t.Errorf("empty data: err=%v, want ErrTorn", err)
	}
}

// Entry.Apply rebuilds a fresh engine to the journaled state.
func TestJournalApply(t *testing.T) {
	opts := testEngineOptions()
	src, err := core.NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	var plain [64]byte
	plain[0] = 0xab
	if err := src.WriteAs(0, 64, plain, epoch.CounterMode); err != nil {
		t.Fatal(err)
	}
	cw, _ := src.Snapshot(64)
	e := Entry{
		Seq: 1, Kind: OpWrite, Addr: 64, VM: 0, Mode: epoch.CounterMode,
		Meta: cw.DecodeMeta(), Ctr: src.Counters().Counter(64),
		CW: cw, HasCW: true,
	}
	dst, err := core.NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Apply(dst); err != nil {
		t.Fatal(err)
	}
	got, _, err := dst.Read(64)
	if err != nil {
		t.Fatalf("read after Apply: %v", err)
	}
	if got != plain {
		t.Error("Apply did not reproduce the journaled block")
	}
	// Applying the same entry again changes nothing (idempotence).
	if err := e.Apply(dst); err != nil {
		t.Fatal(err)
	}
	if got2, _, err := dst.Read(64); err != nil || got2 != plain {
		t.Error("re-Apply broke the block")
	}
}

// Pool lifecycle: run a trace with Persist on, take the persisted
// journal bytes as-of a FlushBarrier, replay them on fresh engines,
// and compare against the live shard engines block for block — the
// in-process model of crash-at-barrier recovery.
func TestPoolPersistLifecycle(t *testing.T) {
	opts := testEngineOptions()
	opts.VMs = 2
	p, err := New(Config{Shards: 4, Watermark: -1, Persist: true, Engine: opts})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	sched := Schedule(ScheduleConfig{Ops: 2000, Blocks: 256, ReadFraction: 0.4, VMs: 2, Seed: 7})
	for i := range sched {
		sched[i].Tag = i
		if _, err := p.Submit(sched[i]); err != nil {
			t.Fatal(err)
		}
	}
	seqs := p.FlushBarrier()
	if got := p.DurableSeqs(); len(got) != len(seqs) {
		t.Fatalf("DurableSeqs len %d, want %d", len(got), len(seqs))
	} else {
		for i := range got {
			if got[i] != seqs[i] {
				t.Fatalf("shard %d durable seq %d, want %d", i, got[i], seqs[i])
			}
		}
	}
	for s := 0; s < p.NumShards(); s++ {
		raw := p.PersistedJournal(s)
		entries, _, err := DecodeJournal(raw)
		if err != nil {
			t.Fatalf("shard %d journal: %v", s, err)
		}
		if len(entries) == 0 {
			t.Fatalf("shard %d journaled nothing", s)
		}
		var maxSeq uint64
		rebuilt, err := core.NewEngine(opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.Seq <= maxSeq {
				t.Fatalf("shard %d journal seq not increasing at %d", s, e.Seq)
			}
			maxSeq = e.Seq
			if err := e.Apply(rebuilt); err != nil {
				t.Fatalf("shard %d replay: %v", s, err)
			}
		}
		if maxSeq != seqs[s] {
			t.Errorf("shard %d journal tops out at seq %d, barrier says %d", s, maxSeq, seqs[s])
		}
		p.WithShardEngine(s, func(live *core.Engine) {
			lb, rb := live.Blocks(), rebuilt.Blocks()
			if len(lb) != len(rb) {
				t.Errorf("shard %d: rebuilt %d blocks, live %d", s, len(rb), len(lb))
				return
			}
			for _, a := range lb {
				lcw, lok := live.Snapshot(a)
				rcw, rok := rebuilt.Snapshot(a)
				if lok != rok || lcw != rcw {
					t.Errorf("shard %d block %#x: rebuilt codeword differs from live", s, a)
					return
				}
				if lc, rc := live.Counters().Counter(a), rebuilt.Counters().Counter(a); lc != rc {
					t.Errorf("shard %d block %#x: rebuilt counter %d, live %d", s, a, rc, lc)
					return
				}
				if lp, rp := live.IsPermanentCounterless(a), rebuilt.IsPermanentCounterless(a); lp != rp {
					t.Errorf("shard %d block %#x: rebuilt permCL %v, live %v", s, a, rp, lp)
					return
				}
			}
		})
	}
}

// FuzzJournalDecode: arbitrary bytes must decode to an error or a
// valid entry list — never a panic — and every successful decode must
// re-encode byte-identically (the round-trip property under fuzzing).
func FuzzJournalDecode(f *testing.F) {
	var whole []byte
	for _, e := range sampleEntries() {
		whole = AppendEntry(whole, e)
		f.Add(append([]byte(nil), whole...))
	}
	f.Add(whole[:len(whole)-3]) // torn tail
	crc := append([]byte(nil), whole...)
	crc[10] ^= 0x40 // body corruption
	f.Add(crc)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, n, err := DecodeJournal(data)
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if err != nil && err != ErrTorn {
			return // corruption: rejected is all we ask
		}
		var again []byte
		for _, e := range entries {
			again = AppendEntry(again, e)
		}
		if !bytes.Equal(again, data[:n]) {
			t.Fatalf("decoded prefix does not re-encode byte-identically")
		}
	})
}

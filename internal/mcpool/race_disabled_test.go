//go:build !race

package mcpool

const raceEnabled = false

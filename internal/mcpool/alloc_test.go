package mcpool

import (
	"errors"
	"testing"

	"counterlight/internal/cipher"
	"counterlight/internal/epoch"
)

// TestSubmitWaitMatchesFutures replays the same trace through the
// future-based Submit path and the pooled-channel SubmitWait path:
// responses must be identical op for op. Single submitter, so program
// order is the same on both sides.
func TestSubmitWaitMatchesFutures(t *testing.T) {
	opts := testEngineOptions()
	sched := Schedule(ScheduleConfig{Ops: 2000, Blocks: 256, ReadFraction: 0.5, VMs: 2, Seed: 7})

	futPool, err := New(Config{Shards: 4, Watermark: -1, Engine: opts})
	if err != nil {
		t.Fatal(err)
	}
	defer futPool.Close()
	waitPool, err := New(Config{Shards: 4, Watermark: -1, Engine: opts})
	if err != nil {
		t.Fatal(err)
	}
	defer waitPool.Close()

	for i, req := range sched {
		fut, err := futPool.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		want := fut.Wait()
		got := waitPool.SubmitWait(req)
		if (got.Err == nil) != (want.Err == nil) || got.Plain != want.Plain || got.Mode != want.Mode {
			t.Fatalf("op %d: SubmitWait %+v, Submit+Wait %+v", i, got, want)
		}
	}
}

// TestSubmitBatchWait pins the batch submit contract: responses land
// at the request's index, per-shard FIFO order is the slice order, and
// a closed pool surfaces ErrClosed while still collecting the
// already-submitted prefix.
func TestSubmitBatchWait(t *testing.T) {
	p, err := New(Config{Shards: 4, Watermark: -1, Engine: testEngineOptions()})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	reqs := make([]Request, 0, 2*n)
	var data cipher.Block
	for i := 0; i < n; i++ {
		data[0] = byte(i)
		reqs = append(reqs, Request{Kind: OpWrite, Addr: uint64(i) * 64, Mode: epoch.CounterMode, Data: data})
	}
	for i := 0; i < n; i++ {
		reqs = append(reqs, Request{Kind: OpRead, Addr: uint64(i) * 64})
	}
	resps := make([]Response, len(reqs))
	if err := p.SubmitBatchWait(reqs, resps); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		w, r := resps[i], resps[n+i]
		if w.Err != nil || r.Err != nil {
			t.Fatalf("block %d: write err %v, read err %v", i, w.Err, r.Err)
		}
		if r.Plain[0] != byte(i) {
			t.Fatalf("block %d: read back %#x, want %#x", i, r.Plain[0], byte(i))
		}
	}

	p.Close()
	if err := p.SubmitBatchWait(reqs[:2], resps[:2]); !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitBatchWait on closed pool = %v, want ErrClosed", err)
	}
	if got := p.SubmitWait(reqs[0]); !errors.Is(got.Err, ErrClosed) {
		t.Fatalf("SubmitWait on closed pool err = %v, want ErrClosed", got.Err)
	}
}

// The synchronous submit paths are the clserve hot path; once the
// channel pools and worker buffers are warm they must not allocate.
// This is the mcpool leg of the allocation-regression gate (the engine
// legs live in internal/core and internal/cipher).
func TestSubmitWaitNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under -race; channel reuse cannot be alloc-free")
	}
	p, err := New(Config{Shards: 4, Watermark: -1, Engine: testEngineOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const blocks = 256
	var req Request
	req.Kind = OpWrite
	req.Mode = epoch.CounterMode
	for i := 0; i < blocks; i++ {
		req.Addr = uint64(i) * 64
		req.Data[0] = byte(i)
		if resp := p.SubmitWait(req); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}

	var i uint64
	if allocs := testing.AllocsPerRun(200, func() {
		req.Addr = (i % blocks) * 64
		req.Data[0] = byte(i)
		i++
		if resp := p.SubmitWait(req); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}); allocs != 0 {
		t.Errorf("SubmitWait write allocates %.1f per op, want 0", allocs)
	}

	var rd Request
	rd.Kind = OpRead
	if allocs := testing.AllocsPerRun(200, func() {
		rd.Addr = (i % blocks) * 64
		i++
		if resp := p.SubmitWait(rd); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}); allocs != 0 {
		t.Errorf("SubmitWait read allocates %.1f per op, want 0", allocs)
	}

	// The batch path shares the channel pool plus a pooled slice; warm
	// it once, then require zero steady-state allocations too.
	reqs := make([]Request, 16)
	resps := make([]Response, 16)
	for j := range reqs {
		reqs[j] = Request{Kind: OpRead, Addr: uint64(j) * 64}
	}
	if err := p.SubmitBatchWait(reqs, resps); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(100, func() {
		if err := p.SubmitBatchWait(reqs, resps); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("SubmitBatchWait allocates %.1f per batch, want 0", allocs)
	}
}

// TestPrecomputeBitIdentity replays one trace through a precomputing
// pool and a DisablePrecompute pool: pad precompute is a pure
// prefetch, so every response must be bit-identical, and the
// batch-read path must actually engage it (reads arriving as one
// batch hit precomputed pads).
func TestPrecomputeBitIdentity(t *testing.T) {
	opts := testEngineOptions()
	sched := Schedule(ScheduleConfig{Ops: 4000, Blocks: 512, ReadFraction: 0.6, VMs: 2, Seed: 99})

	run := func(disable bool) []Response {
		p, err := New(Config{Shards: 4, BatchMax: 16, Watermark: -1, DisablePrecompute: disable, Engine: opts})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		// workers == shards: each submitter feeds exactly one shard
		// FIFO, so batching (and with it the precompute stage) kicks in
		// while the apply order stays deterministic.
		resps, err := RunPartitioned(p, sched, 4)
		if err != nil {
			t.Fatal(err)
		}
		return resps
	}

	with := run(false)
	without := run(true)
	for i := range with {
		a, b := with[i], without[i]
		if (a.Err == nil) != (b.Err == nil) || a.Plain != b.Plain || a.Mode != b.Mode {
			t.Fatalf("op %d: precompute on %+v, off %+v", i, a, b)
		}
	}
}

package mcpool

import (
	"testing"

	"counterlight/internal/crypto/aes"
	"counterlight/internal/epoch"
	"counterlight/internal/obs/flight"
	"counterlight/internal/obs/prof"
)

// TestWatermarkDefaults pins the static defaulting rules, including
// the tiny-queue boundary the old 3/4 rule got wrong (QueueDepth 1-2
// rounded to watermark 1, demoting every pipelined Auto write).
func TestWatermarkDefaults(t *testing.T) {
	for _, tc := range []struct {
		queueDepth, want int
	}{
		{1, 1}, // capacity 1: degrade only with a request already pending
		{2, 2}, // 3/4 would round to 1 = half-full; use genuinely-full
		{3, 2}, // first depth where 3/4 rounds sanely
		{4, 3},
		{256, 192},
	} {
		if got := defaultWatermark(tc.queueDepth); got != tc.want {
			t.Errorf("defaultWatermark(%d) = %d, want %d", tc.queueDepth, got, tc.want)
		}
	}

	// Through New: 0 QueueDepth means the 256 default, and an explicit
	// -1 watermark survives as "disabled".
	p, err := New(Config{Shards: 1, Engine: testEngineOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Watermark(); got != 192 {
		t.Errorf("default pool watermark = %d, want 192", got)
	}
	p.Close()

	p, err = New(Config{Shards: 1, QueueDepth: 2, Engine: testEngineOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Watermark(); got != 2 {
		t.Errorf("QueueDepth 2 pool watermark = %d, want 2 (full, not half-full)", got)
	}
	p.Close()

	p, err = New(Config{Shards: 1, Watermark: -1, Engine: testEngineOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Watermark(); got != -1 {
		t.Errorf("disabled pool watermark = %d, want -1", got)
	}
	p.Close()
}

// TestTinyQueueNotAlwaysDegraded is the regression the defaulting fix
// exists for: a QueueDepth-2 pool with a single in-flight submitter
// must not demote its Auto writes — the queue never reaches genuinely
// full from one closed-loop client.
func TestTinyQueueNotAlwaysDegraded(t *testing.T) {
	p, err := New(Config{Shards: 1, QueueDepth: 2, Engine: testEngineOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 64; i++ {
		resp := p.SubmitWait(Request{Kind: OpWrite, Addr: uint64(i) * 64, Auto: true})
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
		if resp.Degraded {
			t.Fatalf("op %d: closed-loop Auto write degraded on an empty queue", i)
		}
	}
}

// TestAdaptiveWatermarkMoves drives enough traffic through an
// adaptive pool for the controller to measure a service rate and move
// the watermark off its static seed, and checks the accounting
// surfaces (moves counter, flight events, live Watermark) agree.
func TestAdaptiveWatermarkMoves(t *testing.T) {
	rec := flight.NewRing(256)
	p, err := New(Config{
		Shards:            2,
		QueueDepth:        64,
		BatchMax:          8,
		AdaptiveWatermark: true,
		AdaptEvery:        2, // adapt fast so a short test observes moves
		Flight:            rec,
		Engine:            testEngineOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Profiler() == nil {
		t.Fatal("adaptive pool must create a profiler")
	}
	if p.FlightRing() != rec {
		t.Fatal("flight ring not attached")
	}

	seed := p.Watermark()
	var req Request
	req.Kind = OpWrite
	req.Mode = epoch.CounterMode
	for i := 0; i < 6000; i++ {
		req.Addr = uint64(i%1024) * 64
		req.Data[0] = byte(i)
		if resp := p.SubmitWait(req); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	p.Flush()

	if p.WatermarkMoves() == 0 {
		t.Fatalf("watermark never moved off its seed %d after 6000 ops", seed)
	}
	// The controller must have moved the watermark closer to the
	// Little's-law target implied by its own measurement (half-step
	// damping walks monotonically toward a stable target).
	perOp := p.Profiler().Service.EWMA()
	if perOp <= 0 {
		t.Fatal("service probe has no measurement")
	}
	target := int(float64(DefaultTargetDelayNs) / perOp)
	if target < 1 {
		target = 1
	}
	if target > 64 {
		target = 64
	}
	got := p.Watermark()
	if got < 1 || got > 64 {
		t.Fatalf("adaptive watermark %d escaped its [1, QueueDepth] clamp", got)
	}
	if abs(got-target) >= abs(seed-target) && got == seed {
		t.Errorf("watermark %d did not move toward measured target %d (seed %d, %.0f ns/op)",
			got, target, seed, perOp)
	}
	t.Logf("seed %d -> watermark %d (target %d at %.0f ns/op, %d moves)",
		seed, got, target, perOp, p.WatermarkMoves())
	var moves int
	for _, ev := range rec.Snapshot() {
		if ev.Kind == flight.KindWatermark {
			moves++
			if ev.A == ev.B {
				t.Errorf("watermark event records no-op move %d -> %d", ev.A, ev.B)
			}
		}
	}
	if moves == 0 {
		t.Error("no watermark events in the flight ring")
	}

	// The profiler saw the traffic.
	snap := p.Profiler().Snapshot()
	if snap.Service.Count == 0 || snap.SubmitWait.Count == 0 || snap.PadBatch.Count == 0 {
		t.Errorf("profiler missed the hot path: %+v", snap)
	}
}

// TestAdaptiveWatermarkIsMeasurementDriven is the acceptance-criteria
// check: the same workload through the slow reference AES backend and
// the fast stdlib backend must settle on different watermarks,
// proving the knee comes from measured service time, not the static
// Rounds() model. The ref backend's per-op cost is well over an order
// of magnitude higher, so its delay-bounded backlog is smaller.
func TestAdaptiveWatermarkIsMeasurementDriven(t *testing.T) {
	if testing.Short() {
		t.Skip("drives thousands of ops per backend")
	}
	// A 10ms target puts both backends' Little's-law targets well
	// inside (1, QueueDepth) — ref's measured per-op cost is several
	// times stdlib's, so the targets (and the settled watermarks)
	// must separate.
	run := func(backend string) (wm int, perOp float64) {
		opts := testEngineOptions()
		opts.Cipher = backend
		p, err := New(Config{
			Shards:            1,
			QueueDepth:        4096,
			BatchMax:          8,
			AdaptiveWatermark: true,
			AdaptEvery:        2,
			TargetDelayNs:     10_000_000,
			Engine:            opts,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		var req Request
		req.Kind = OpWrite
		req.Mode = epoch.CounterMode
		for i := 0; i < 4000; i++ {
			req.Addr = uint64(i%512) * 64
			req.Data[0] = byte(i)
			if resp := p.SubmitWait(req); resp.Err != nil {
				t.Fatal(resp.Err)
			}
		}
		p.Flush()
		return p.Watermark(), p.Profiler().Service.EWMA()
	}

	wmRef, perOpRef := run(aes.BackendRef)
	wmStd, perOpStd := run(aes.BackendStdlib)
	t.Logf("ref: watermark %d (%.0f ns/op); stdlib: watermark %d (%.0f ns/op)",
		wmRef, perOpRef, wmStd, perOpStd)
	if perOpRef <= perOpStd {
		t.Skipf("ref backend measured faster than stdlib (%.0f vs %.0f ns/op) — cannot grade divergence", perOpRef, perOpStd)
	}
	if wmRef >= wmStd {
		t.Errorf("watermarks do not reflect measured cost: ref %d >= stdlib %d", wmRef, wmStd)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TestAdaptiveSubmitWaitNoAllocs extends the zero-alloc gate to the
// fully instrumented configuration: profiler probes on, flight
// recorder on, adaptive watermark on.
func TestAdaptiveSubmitWaitNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under -race; channel reuse cannot be alloc-free")
	}
	p, err := New(Config{
		Shards:            4,
		AdaptiveWatermark: true,
		Profile:           prof.New(""),
		Flight:            flight.NewRing(256),
		Engine:            testEngineOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const blocks = 256
	var req Request
	req.Kind = OpWrite
	req.Mode = epoch.CounterMode
	for i := 0; i < blocks; i++ {
		req.Addr = uint64(i) * 64
		req.Data[0] = byte(i)
		if resp := p.SubmitWait(req); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}

	var i uint64
	if allocs := testing.AllocsPerRun(200, func() {
		req.Addr = (i % blocks) * 64
		req.Data[0] = byte(i)
		i++
		if resp := p.SubmitWait(req); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}); allocs != 0 {
		t.Errorf("instrumented SubmitWait write allocates %.1f per op, want 0", allocs)
	}

	var rd Request
	rd.Kind = OpRead
	if allocs := testing.AllocsPerRun(200, func() {
		rd.Addr = (i % blocks) * 64
		i++
		if resp := p.SubmitWait(rd); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}); allocs != 0 {
		t.Errorf("instrumented SubmitWait read allocates %.1f per op, want 0", allocs)
	}
}

// TestFlightRecordsPoolEvents checks the pool's recorder coverage:
// sampled submits, degradations (with queue-vs-watermark context),
// and fault injections all land in the ring.
func TestFlightRecordsPoolEvents(t *testing.T) {
	rec := flight.NewRing(1024)
	// Watermark 0 is "default", so use a 1-deep queue with watermark 1
	// plus an open-loop burst to force degradations deterministically.
	p, err := New(Config{Shards: 1, QueueDepth: 8, Watermark: 1, Flight: rec, Engine: testEngineOptions()})
	if err != nil {
		t.Fatal(err)
	}
	futs := make([]*Future, 0, 256)
	for i := 0; i < 256; i++ {
		fut, err := p.Submit(Request{Kind: OpWrite, Addr: uint64(i%32) * 64, Auto: true})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, fut)
	}
	for _, f := range futs {
		if resp := f.Wait(); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	if resp := p.SubmitWait(Request{Kind: OpFault, Addr: 64, Chip: 1, Pattern: 0xFF}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	p.Close()

	kinds := map[flight.Kind]int{}
	for _, ev := range rec.Snapshot() {
		kinds[ev.Kind]++
	}
	if kinds[flight.KindSubmit] == 0 {
		t.Error("no sampled submit events recorded")
	}
	if kinds[flight.KindDegrade] == 0 {
		t.Error("no degradation events recorded despite watermark-1 backlog")
	}
	if kinds[flight.KindFault] == 0 {
		t.Error("no fault event recorded")
	}
}

package mcpool

import (
	"runtime"
	"testing"

	"counterlight/internal/core"
)

// benchPool builds a pool at a fixed shard/batch configuration — the
// same shapes cmd/clbench -bench-json pins for the perf trajectory.
func benchPool(b *testing.B, shards, batchMax int, attribution bool) *Pool {
	b.Helper()
	opts := core.DefaultEngineOptions()
	opts.MemSize = 1 << 22
	pool, err := New(Config{
		Shards:      shards,
		BatchMax:    batchMax,
		Attribution: attribution,
		Engine:      opts,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(pool.Close)
	return pool
}

func benchmarkThroughput(b *testing.B, shards, batchMax int, attribution bool) {
	pool := benchPool(b, shards, batchMax, attribution)
	sched := Schedule(ScheduleConfig{Ops: 4096, Blocks: 1024, ReadFraction: 0.5, Seed: 42})
	workers := runtime.GOMAXPROCS(0)
	// Warm up so engine table builds don't land in the timed region.
	if _, err := RunPartitioned(pool, sched, workers); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunPartitioned(pool, sched, workers); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(sched)), "ops/iter")
}

// BenchmarkPoolThroughputS4B8 drives the mixed fixed-seed schedule
// through a 4-shard pool with small batches.
func BenchmarkPoolThroughputS4B8(b *testing.B) { benchmarkThroughput(b, 4, 8, false) }

// BenchmarkPoolThroughputS8B32 is the default-shaped pool: 8 shards,
// full batches.
func BenchmarkPoolThroughputS8B32(b *testing.B) { benchmarkThroughput(b, 8, 32, false) }

// BenchmarkPoolThroughputAttributed is S8B32 with latency attribution
// on — the delta against BenchmarkPoolThroughputS8B32 is the span
// overhead, which is supposed to be noise.
func BenchmarkPoolThroughputAttributed(b *testing.B) { benchmarkThroughput(b, 8, 32, true) }

// BenchmarkPoolSubmitWait measures one closed-loop submit→wait round
// trip on a warm pool — the per-request latency floor, on the pooled
// zero-alloc SubmitWait path clserve uses.
func BenchmarkPoolSubmitWait(b *testing.B) {
	pool := benchPool(b, 8, 32, false)
	var req Request
	req.Kind = OpWrite
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Addr = uint64(i%1024) * 64
		req.Data[0] = byte(i)
		if resp := pool.SubmitWait(req); resp.Err != nil {
			b.Fatal(resp.Err)
		}
	}
}

// BenchmarkPoolSubmitFuture is the same round trip through the
// future-based Submit path; the delta against BenchmarkPoolSubmitWait
// is the future allocation cost the pooled path removes.
func BenchmarkPoolSubmitFuture(b *testing.B) {
	pool := benchPool(b, 8, 32, false)
	var req Request
	req.Kind = OpWrite
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Addr = uint64(i%1024) * 64
		req.Data[0] = byte(i)
		fut, err := pool.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		if resp := fut.Wait(); resp.Err != nil {
			b.Fatal(resp.Err)
		}
	}
}

package mcpool

import (
	"reflect"
	"sync"
	"testing"
)

// runJournaled drives a deterministic trace through a journaling pool
// with a single submitter per shard (the submitting goroutine is the
// only producer, so each shard's FIFO queue pins its apply order) and
// returns every shard's journal.
func runJournaled(t *testing.T, attribution bool, sched []Request) [][]Applied {
	t.Helper()
	p, err := New(Config{
		Shards:      4,
		QueueDepth:  64,
		BatchMax:    8,
		Watermark:   -1, // explicit modes only: the trace must be load-independent
		Journal:     true,
		Attribution: attribution,
		Engine:      testEngineOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	futs := make([]*Future, 0, len(sched))
	for i, req := range sched {
		req.Tag = i
		fut, err := p.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, fut)
	}
	for _, fut := range futs {
		if resp := fut.Wait(); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	p.Flush()
	journals := make([][]Applied, p.NumShards())
	for s := range journals {
		journals[s] = p.JournalOf(s)
	}
	return journals
}

// TestAttributionJournalBitIdentical is the tentpole's safety proof
// at the journal level: the same trace applied with attribution off
// and on must produce bit-identical per-shard journals — same
// sequence numbers, same resolved requests, same responses
// (plaintexts, ReadInfo, modes, errors). Attribution observes the
// pipeline; it must never steer it.
func TestAttributionJournalBitIdentical(t *testing.T) {
	sched := Schedule(ScheduleConfig{Ops: 4000, Blocks: 512, Seed: 99})
	off := runJournaled(t, false, sched)
	on := runJournaled(t, true, sched)
	if len(off) != len(on) {
		t.Fatalf("shard counts differ: %d vs %d", len(off), len(on))
	}
	for s := range off {
		if len(off[s]) != len(on[s]) {
			t.Fatalf("shard %d: journal lengths differ: %d vs %d", s, len(off[s]), len(on[s]))
		}
		for i := range off[s] {
			if !reflect.DeepEqual(off[s][i], on[s][i]) {
				t.Fatalf("shard %d entry %d differs with attribution on:\noff: %+v\non:  %+v",
					s, i, off[s][i], on[s][i])
			}
		}
	}
}

// TestAttributionStageTotalsRace asserts the no-double-count /
// no-dropped-span invariant under genuinely racing submitters: after
// the pool quiesces, every stage histogram's sample count — summed
// across shards — equals the number of completed operations, as does
// the end-to-end histogram's, and each shard's stage durations sum to
// its end-to-end nanoseconds exactly. Run under -race (make race)
// this also probes the span pool for data races.
func TestAttributionStageTotalsRace(t *testing.T) {
	p, err := New(Config{
		Shards:      4,
		QueueDepth:  32,
		BatchMax:    8,
		Attribution: true,
		Engine:      testEngineOptions(),
	})
	if err != nil {
		t.Fatal(err)
	}

	const submitters = 8
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Submitter g owns blocks ≡ g (mod submitters): single
			// writer per address, like the check harness.
			sched := Schedule(ScheduleConfig{Ops: 1500, Blocks: 256, Seed: int64(g + 1)})
			var futs []*Future
			for _, req := range sched {
				req.Addr = (req.Addr/64*uint64(submitters) + uint64(g)) * 64
				fut, err := p.Submit(req)
				if err != nil {
					t.Error(err)
					return
				}
				futs = append(futs, fut)
			}
			for _, fut := range futs {
				fut.Wait()
			}
		}(g)
	}
	wg.Wait()
	p.Flush() // barrier fences must not show up in any histogram
	completed := p.Aggregate().Completed
	p.Close()

	stageTotals := make([]uint64, len(StageNames))
	var endToEnd uint64
	for s := 0; s < p.NumShards(); s++ {
		a := p.ShardAttribution(s)
		if a == nil {
			t.Fatalf("shard %d: attribution enabled but attributor is nil", s)
		}
		var stageSumNs int64
		for i := range StageNames {
			stageTotals[i] += a.StageHist(i).Total()
			stageSumNs += a.StageHist(i).Sum()
		}
		endToEnd += a.TotalHist().Total()
		if totalNs := a.TotalHist().Sum(); totalNs != stageSumNs {
			t.Errorf("shard %d: end-to-end %d ns != stage sum %d ns", s, totalNs, stageSumNs)
		}
	}
	if completed == 0 {
		t.Fatal("no completed ops")
	}
	for i, name := range StageNames {
		if stageTotals[i] != completed {
			t.Errorf("stage %s: %d samples, want %d (completed ops)", name, stageTotals[i], completed)
		}
	}
	if endToEnd != completed {
		t.Errorf("end-to-end: %d samples, want %d (completed ops)", endToEnd, completed)
	}

	sum := p.AttributionSummary()
	if len(sum) != len(StageNames)+1 {
		t.Fatalf("summary rows %d, want %d", len(sum), len(StageNames)+1)
	}
	for _, row := range sum {
		if row.Count != completed {
			t.Errorf("summary %s: count %d, want %d", row.Stage, row.Count, completed)
		}
	}
}

// TestAttributionOffByDefault pins the off state: no attributors, no
// summary, and no stage series in the registry.
func TestAttributionOffByDefault(t *testing.T) {
	p, err := New(Config{Shards: 2, Engine: testEngineOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.AttributionEnabled() {
		t.Error("attribution enabled without being asked")
	}
	if p.AttributionSummary() != nil {
		t.Error("summary non-nil with attribution off")
	}
	if p.ShardAttribution(0) != nil {
		t.Error("shard attributor non-nil with attribution off")
	}
}

//go:build race

package mcpool

// Under the race detector sync.Pool deliberately drops puts to widen
// race coverage, so the pooled-channel paths cannot stay alloc-free;
// allocation gates are skipped in race builds.
const raceEnabled = true
